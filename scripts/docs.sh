#!/usr/bin/env bash
# Builds the API documentation with Doxygen (WARN_AS_ERROR: any broken
# \ref or malformed doc comment fails the build).  Skips gracefully when
# doxygen is not installed, so CI images without it still pass — the check
# only runs where it can run.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v doxygen >/dev/null 2>&1; then
  echo "docs: doxygen not installed, skipping documentation build"
  exit 0
fi

mkdir -p build/docs
echo "docs: running doxygen (warnings are errors)"
doxygen docs/Doxyfile
echo "docs: HTML written to build/docs/html"
