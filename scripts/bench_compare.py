#!/usr/bin/env python3
"""Compare two mrlc-bench-v1 JSON files and flag regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]

Workloads are matched by name.  For each match the mean wall time and the
total phase times are compared; anything more than ``threshold`` slower
than the baseline is reported as a regression.  The *algorithmic work*
counters — ``simplex.pivots``, ``separation.maxflow_calls``, and the
sparse-LP pair ``simplex.sparse_nnz`` / ``simplex.sparse_refactorizations``
— get their own per-workload delta columns (the headline numbers for
warm-start / pricing / separation changes) and are excluded from the
generic drift warnings.
Service workloads (anything that bumped ``service.requests``) additionally
get first-class queries/sec and p99 request-latency columns, derived from
the completed-request counter over the measured wall time and from the
``service.request_us`` histogram; a shed rate that grew versus the
baseline is reported as a warning, never a failure (shedding is the
service doing its job under overload, but a regression in admission
capacity is worth a look).
Any other counter drift (seeded workloads should be bit-identical),
workloads missing from the current run, and workloads without a baseline
are reported as warnings, since they usually mean the algorithm or the
workload set changed on purpose.

Runs made with different thread-pool widths (``config.threads``, default 1
for files predating the field) are not wall-time comparable: timings are
skipped with a warning and only the counters — which the solver guarantees
are identical for every thread count — are diffed.

Runs are also grouped by problem variant (``config.variant``, default
``mrlc`` for files predating the field): the flag re-points every ira_*
workload at a different solver, so runs with different variants share
neither timings nor counters.  Both comparisons are skipped with a
warning; only workload presence is still checked.

Exit codes:
    0  no wall-time regressions (warnings alone do not fail)
    1  at least one wall-time regression
    2  usage / unreadable input
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_compare: cannot read {path}: {exc}")
    if doc.get("schema") != "mrlc-bench-v1":
        sys.exit(f"bench_compare: {path} is not an mrlc-bench-v1 file "
                 f"(schema {doc.get('schema')!r})")
    return doc


def by_name(doc, label, warnings):
    """Workloads keyed by name; entries without a usable name are skipped
    with a warning instead of crashing the whole comparison."""
    out = {}
    for index, workload in enumerate(doc.get("workloads", [])):
        name = workload.get("name") if isinstance(workload, dict) else None
        if not isinstance(name, str) or not name:
            warnings.append(
                f"{label}: workload #{index} has no name field; skipped")
            continue
        out[name] = workload
    return out


def relative_change(base, cur):
    if base <= 0.0:
        return 0.0
    return (cur - base) / base


def thread_count(doc):
    """Pool width the run used; files from before the field mean 1."""
    return doc.get("config", {}).get("threads", 1)


# Counters that measure how much work the solver did, reported as
# first-class columns rather than drift warnings.  A drop here is the
# point of a warm-start or separation change; an increase is visible in
# the same place a reviewer looks for the wall-time story.  The sparse-LP
# pair (accumulated constraint nonzeros and basis refactorizations) tells
# the revised-simplex story the same way pivots tell the pricing story.
WORK_COUNTERS = ("simplex.pivots", "separation.maxflow_calls",
                 "simplex.sparse_nnz", "simplex.sparse_refactorizations")


def work_delta(base_counters, cur_counters, key):
    b = base_counters.get(key, 0)
    c = cur_counters.get(key, 0)
    short = key.split(".")[-1]
    if b == c:
        return f"{short} {c} (=)"
    if not b:
        return f"{short} {b} -> {c}"
    return f"{short} {b} -> {c} ({relative_change(b, c):+.1%})"


def work_budget(doc):
    """Anytime work budget the run used; 0 (default) means unlimited."""
    return doc.get("config", {}).get("budget", 0)


def run_variant(doc):
    """Problem variant the ira_* workloads solved; files from before the
    field are mrlc runs by definition."""
    return doc.get("config", {}).get("variant", "mrlc")


def is_service_workload(workload):
    counters = workload.get("metrics", {}).get("counters", {})
    return "service.requests" in counters


def is_dataplane_workload(workload):
    # The counter key can appear with a zero delta in workloads that ran
    # after a data-plane one in the same process; only a nonzero count
    # marks an actual event-engine run.
    counters = workload.get("metrics", {}).get("counters", {})
    return counters.get("dataplane.events_processed", 0) > 0


def dataplane_events_per_sec(workload):
    """Simulation events retired per second of wall time, or None when
    timings were disabled (wall time is zeroed)."""
    counters = workload.get("metrics", {}).get("counters", {})
    total_ms = workload.get("wall_ms", {}).get("total", 0.0)
    if total_ms <= 0.0:
        return None
    return counters.get("dataplane.events_processed", 0) * 1000.0 / total_ms


def service_qps(workload):
    """Completed requests per second over the workload's total wall time,
    or None when timings were disabled (wall time is zeroed)."""
    counters = workload.get("metrics", {}).get("counters", {})
    total_ms = workload.get("wall_ms", {}).get("total", 0.0)
    if total_ms <= 0.0:
        return None
    return counters.get("service.completed", 0) * 1000.0 / total_ms


def service_p99_us(workload):
    """p99 of the end-to-end request latency histogram, or None when the
    run had timings off (the histogram is never registered then)."""
    hist = workload.get("metrics", {}).get("histograms", {})
    entry = hist.get("service.request_us")
    if not isinstance(entry, dict) or not entry.get("count"):
        return None
    return entry.get("p99", 0)


def service_shed_rate(workload):
    """Shed fraction of admitted requests, or None when the run admitted
    nothing at all (a rate over zero requests is meaningless, not 0%)."""
    counters = workload.get("metrics", {}).get("counters", {})
    requests = counters.get("service.requests", 0)
    if not requests:
        return None
    return counters.get("service.shed_overload", 0) / requests


def service_shed_count(workload):
    counters = workload.get("metrics", {}).get("counters", {})
    return counters.get("service.shed_overload", 0)


def fmt_qps(value):
    return "n/a" if value is None else f"{value:.1f}/s"


def fmt_p99(value):
    return "n/a" if value is None else f"{value} us"


def fmt_rate(value):
    return "n/a" if value is None else f"{value:.1%}"


def compare(baseline, current, threshold):
    regressions = []
    warnings = []
    base_workloads = by_name(baseline, "baseline", warnings)
    cur_workloads = by_name(current, "current", warnings)

    compare_times = thread_count(baseline) == thread_count(current)
    if not compare_times:
        warnings.append(
            f"thread counts differ (baseline {thread_count(baseline)}, "
            f"current {thread_count(current)}): wall times skipped, "
            f"counters still compared")
    compare_counters = run_variant(baseline) == run_variant(current)
    if not compare_counters:
        compare_times = False
        warnings.append(
            f"variant groups differ (baseline {run_variant(baseline)}, "
            f"current {run_variant(current)}): different solvers ran, so "
            f"wall times and counters are both skipped")
    else:
        print(f"variant group: {run_variant(baseline)}")
    if work_budget(baseline) != work_budget(current):
        warnings.append(
            f"work budgets differ (baseline {work_budget(baseline)}, "
            f"current {work_budget(current)}): counter drift is expected")

    for name in sorted(base_workloads.keys() | cur_workloads.keys()):
        if name not in cur_workloads:
            warnings.append(f"{name}: missing from current run")
            continue
        if name not in base_workloads:
            warnings.append(f"{name}: new workload (no baseline)")
            continue
        base, cur = base_workloads[name], cur_workloads[name]
        base_counters = base.get("metrics", {}).get("counters", {})
        cur_counters = cur.get("metrics", {}).get("counters", {})

        if compare_times:
            base_ms = base.get("wall_ms", {}).get("mean", 0.0)
            cur_ms = cur.get("wall_ms", {}).get("mean", 0.0)
            change = relative_change(base_ms, cur_ms)
            if base_ms > 0.0 and change > threshold:
                regressions.append(
                    f"{name}: mean wall time {base_ms:.3f} ms -> {cur_ms:.3f} ms "
                    f"({change:+.1%})")
            else:
                print(f"ok  {name}: {base_ms:.3f} ms -> {cur_ms:.3f} ms "
                      f"({change:+.1%})")
        else:
            reason = ("variant groups differ" if not compare_counters
                      else "thread counts differ")
            print(f"ok  {name}: wall time not compared ({reason})")

        if compare_counters and any(key in base_counters or key in cur_counters
                                    for key in WORK_COUNTERS):
            deltas = ", ".join(work_delta(base_counters, cur_counters, key)
                               for key in WORK_COUNTERS)
            print(f"     {name}: {deltas}")

        if is_dataplane_workload(base) or is_dataplane_workload(cur):
            print(f"     {name}: events/sec "
                  f"{fmt_qps(dataplane_events_per_sec(base))} -> "
                  f"{fmt_qps(dataplane_events_per_sec(cur))}")

        if is_service_workload(base) or is_service_workload(cur):
            base_rate = service_shed_rate(base)
            cur_rate = service_shed_rate(cur)
            print(f"     {name}: qps {fmt_qps(service_qps(base))} -> "
                  f"{fmt_qps(service_qps(cur))}, "
                  f"p99 {fmt_p99(service_p99_us(base))} -> "
                  f"{fmt_p99(service_p99_us(cur))}, "
                  f"shed {fmt_rate(base_rate)} -> {fmt_rate(cur_rate)}")
            # Warn only on a real admission-capacity regression: both runs
            # must have admitted traffic (the rate is undefined otherwise)
            # and the current run must actually have shed something — two
            # shed-nothing runs at different qps are not a regression.
            if (base_rate is not None and cur_rate is not None
                    and service_shed_count(cur) > 0
                    and cur_rate > base_rate + 1e-12):
                warnings.append(
                    f"{name}: shed rate grew {fmt_rate(base_rate)} -> "
                    f"{fmt_rate(cur_rate)} (overload shedding is graceful "
                    f"but admission capacity regressed)")

        for key in sorted(base_counters.keys() | cur_counters.keys()):
            if not compare_counters:
                break  # different variants solved different problems
            if key in WORK_COUNTERS:
                continue  # reported as a first-class column above
            # One-sided keys (a counter registered by only one of the two
            # builds) are phrased as additions/removals, not as a
            # "None -> 5" drift.
            if key not in base_counters:
                warnings.append(
                    f"{name}: counter {key} only in current "
                    f"({cur_counters[key]})")
            elif key not in cur_counters:
                warnings.append(
                    f"{name}: counter {key} only in baseline "
                    f"({base_counters[key]})")
            elif base_counters[key] != cur_counters[key]:
                warnings.append(
                    f"{name}: counter {key} drifted "
                    f"{base_counters[key]} -> {cur_counters[key]}")

    return regressions, warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown that counts as a regression "
                             "(default 0.10 = 10%%)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    regressions, warnings = compare(baseline, current, args.threshold)

    for warning in warnings:
        print(f"warn {warning}")
    for regression in regressions:
        print(f"REGRESSION {regression}")

    print(f"bench_compare: {len(regressions)} regression(s), "
          f"{len(warnings)} warning(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
