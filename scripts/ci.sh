#!/usr/bin/env bash
# Full verification pipeline, exactly as CI runs it:
#
#   1. tier-1: release configure + build + ctest (the gate every change
#      must pass);
#   2. sanitized: the same suite under ASan + UBSan, catching the memory
#      and UB bugs a release run hides;
#   3. docs: Doxygen with WARN_AS_ERROR (skipped when doxygen is absent);
#   4. bench: mrlc_bench sweep, compared against the committed
#      BENCH_solver.json baseline.  Timing deltas are a *report*, not a
#      gate — shared CI machines are too noisy to fail on wall clock.
#
# Usage: scripts/ci.sh [--release-only|--asan-only]
# Runs from any directory; build trees live in build-release/ and
# build-asan/ next to the sources (both gitignored).
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_release=1
run_asan=1
case "${1:-}" in
  --release-only) run_asan=0 ;;
  --asan-only) run_release=0 ;;
  "") ;;
  *)
    echo "usage: $0 [--release-only|--asan-only]" >&2
    exit 2
    ;;
esac

run_suite() {
  local preset="$1"
  (
    cd "$repo"
    echo "=== [$preset] configure ==="
    cmake --preset "$preset"
    echo "=== [$preset] build ==="
    cmake --build --preset "$preset" -j "$jobs"
    echo "=== [$preset] test ==="
    ctest --preset "$preset"
  )
}

[[ $run_release -eq 1 ]] && run_suite release
[[ $run_asan -eq 1 ]] && run_suite asan

echo "=== docs ==="
bash "$repo/scripts/docs.sh"

if [[ $run_release -eq 1 ]]; then
  echo "=== bench (non-fatal report) ==="
  bench_bin="$repo/build-release/tools/mrlc_bench"
  if [[ -x "$bench_bin" && -f "$repo/BENCH_solver.json" ]]; then
    "$bench_bin" --repeats 3 --out "$repo/build-release/BENCH_solver.json"
    python3 "$repo/scripts/bench_compare.py" \
      "$repo/BENCH_solver.json" "$repo/build-release/BENCH_solver.json" \
      || echo "bench: regressions reported above (informational only)"
  else
    echo "bench: skipped (no bench binary or no committed baseline)"
  fi
fi

echo "=== ci.sh: all requested suites passed ==="
