#!/usr/bin/env bash
# Full verification pipeline, exactly as CI runs it:
#
#   1. tier-1: release configure + build + ctest (the gate every change
#      must pass);
#   2. sanitized: the same suite under ASan + UBSan, catching the memory
#      and UB bugs a release run hides;
#   3. tsan: the concurrency smoke suite (thread pool, sharded metrics,
#      parallel separation) under ThreadSanitizer — TSan is incompatible
#      with ASan, so it gets its own build tree and only runs the tests
#      that exercise real multi-threading;
#   4. docs: Doxygen with WARN_AS_ERROR (skipped when doxygen is absent);
#   5. fault smoke: the stock DFL workload with every registered fault
#      point forced (release build) — a recoverable fault must exit 0
#      with a byte-identical tree, an unrecoverable one must exit with
#      the typed internal-error code; the corrupt-input corpus is fed to
#      the ASan mrlc_solve expecting the parse/validation exit code;
#   5b. engine parity gate: stock instances solved with --engine sparse
#      and --engine dense must print byte-identical trees, and an
#      --lp-crosscheck run (dense shadow oracle) must pass;
#   5c. variant parity gate: `mrlc_solve ira` and `mrlc_solve ira
#      --variant mrlc` must print byte-identical trees (the problem-variant
#      interface may not perturb the historical solver), and the
#      brute-force optimality suite must pass for every variant;
#   6. service smoke: a real mrlc_serve daemon on a Unix socket, driven
#      with mrlc_client (release build) — trees must be byte-identical to
#      the one-shot solver, an injected worker crash and a corrupt payload
#      must come back as *typed* replies with the daemon still serving,
#      and SIGTERM must drain cleanly (exit 0, final metrics flushed);
#   7. bench: mrlc_bench sweep, compared against the committed
#      BENCH_solver.json baseline.  Timing deltas are a *report*, not a
#      gate — shared CI machines are too noisy to fail on wall clock.
#
# Usage: scripts/ci.sh [--release-only|--asan-only|--tsan-only]
# Runs from any directory; build trees live in build-release/, build-asan/
# and build-tsan/ next to the sources (all gitignored).
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_release=1
run_asan=1
run_tsan=1
case "${1:-}" in
  --release-only) run_asan=0; run_tsan=0 ;;
  --asan-only) run_release=0; run_tsan=0 ;;
  --tsan-only) run_release=0; run_asan=0 ;;
  "") ;;
  *)
    echo "usage: $0 [--release-only|--asan-only|--tsan-only]" >&2
    exit 2
    ;;
esac

# The concurrency-heavy binaries; everything else is single-threaded and
# already covered by the release + ASan full suites.
tsan_smoke_targets=(test_parallel test_metrics test_separation test_stress test_des)

run_tsan_suite() {
  (
    cd "$repo"
    echo "=== [tsan] configure ==="
    cmake --preset tsan
    echo "=== [tsan] build (smoke targets) ==="
    cmake --build --preset tsan -j "$jobs" \
      $(printf -- '--target %s ' "${tsan_smoke_targets[@]}")
    echo "=== [tsan] run concurrency smoke suite ==="
    for t in "${tsan_smoke_targets[@]}"; do
      echo "--- $t ---"
      TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
        "$repo/build-tsan/tests/$t"
    done
  )
}

run_suite() {
  local preset="$1"
  (
    cd "$repo"
    echo "=== [$preset] configure ==="
    cmake --preset "$preset"
    echo "=== [$preset] build ==="
    cmake --build --preset "$preset" -j "$jobs"
    echo "=== [$preset] test ==="
    ctest --preset "$preset"
  )
}

# Fault-injection smoke: every registered fault point forced over the
# stock 16-node DFL workload.  The contract (docs/algorithms.md §14):
# a recoverable fault exits 0 with a tree byte-identical to the clean
# run; the unrecoverable one exits with the typed internal-error code.
# A differing tree with exit 0 is the one outcome that must never ship.
fault_smoke() {
  local bindir="$1" label="$2"
  local gen="$bindir/tools/mrlc_gen" solve="$bindir/tools/mrlc_solve"
  echo "=== [$label] fault-injection smoke ==="
  local net="$bindir/fault_smoke.net" clean="$bindir/fault_smoke_clean.txt"
  "$gen" dfl --nodes 16 --seed 7 > "$net"
  "$solve" ira --lifetime 100 < "$net" > "$clean"
  local f out rc
  for f in lp.force_cold lp.drop_basis cutpool.corrupt separation.flow_fail; do
    out="$bindir/fault_smoke_${f//./_}.txt"
    if ! MRLC_FAULTS="$f" "$solve" ira --lifetime 100 < "$net" > "$out"; then
      echo "ci: fault $f: expected a recovered exit-0 run" >&2
      exit 1
    fi
    if ! cmp -s "$clean" "$out"; then
      echo "ci: fault $f: recovered run returned a different tree" >&2
      exit 1
    fi
  done
  set +e
  MRLC_FAULTS=parallel.task_fail "$solve" ira --lifetime 100 < "$net" \
    > /dev/null 2>&1
  rc=$?
  set -e
  if [[ $rc -ne 5 ]]; then
    echo "ci: parallel.task_fail: expected the internal-error exit 5, got $rc" >&2
    exit 1
  fi
  echo "ci[$label]: every forced fault recovered identically or exited typed"
}

# LP engine parity gate: on stock instances the sparse revised simplex
# (the default engine) and the retained dense tableau must produce
# byte-identical trees, and a --lp-crosscheck run — the dense shadow
# oracle auditing every solve and resolve in-process — must pass end to
# end.  Objective parity is implied: the printed cost is part of the
# compared bytes.
engine_parity_smoke() {
  local bindir="$1" label="$2"
  local gen="$bindir/tools/mrlc_gen" solve="$bindir/tools/mrlc_solve"
  echo "=== [$label] LP engine parity gate ==="
  local dir="$bindir/engine_parity"
  rm -rf "$dir"
  mkdir -p "$dir"
  "$gen" dfl --seed 7 > "$dir/dfl.net"
  "$gen" random --nodes 24 --seed 11 --p 0.4 > "$dir/rand.net"
  local net
  for net in dfl rand; do
    "$solve" ira --lifetime 100 --engine sparse < "$dir/$net.net" \
      > "$dir/${net}_sparse.txt"
    "$solve" ira --lifetime 100 --engine dense < "$dir/$net.net" \
      > "$dir/${net}_dense.txt"
    if ! cmp -s "$dir/${net}_sparse.txt" "$dir/${net}_dense.txt"; then
      echo "ci: engine parity: sparse and dense trees differ on $net" >&2
      exit 1
    fi
    if ! "$solve" ira --lifetime 100 --lp-crosscheck < "$dir/$net.net" \
        > /dev/null; then
      echo "ci: engine parity: --lp-crosscheck audit failed on $net" >&2
      exit 1
    fi
  done
  echo "ci[$label]: sparse/dense trees byte-identical, cross-check audit clean"
}

# Variant parity gate: routing the historical MRLC solver through the
# problem-variant interface must be invisible — `ira` and `ira --variant
# mrlc` print byte-identical stdout on stock instances (strict and direct
# bound modes both).  The brute-force sweep then re-proves each variant
# optimal for its own objective against spanning-tree enumeration.
variant_parity_smoke() {
  local bindir="$1" label="$2"
  local gen="$bindir/tools/mrlc_gen" solve="$bindir/tools/mrlc_solve"
  echo "=== [$label] variant parity gate ==="
  local dir="$bindir/variant_parity"
  rm -rf "$dir"
  mkdir -p "$dir"
  "$gen" dfl --seed 7 > "$dir/dfl.net"
  "$gen" random --nodes 24 --seed 11 --p 0.4 > "$dir/rand.net"
  local net extra
  for net in dfl rand; do
    for extra in "" "--strict"; do
      "$solve" ira --lifetime 100 $extra < "$dir/$net.net" \
        > "$dir/${net}_legacy.txt"
      "$solve" ira --variant mrlc --lifetime 100 $extra < "$dir/$net.net" \
        > "$dir/${net}_routed.txt"
      if ! cmp -s "$dir/${net}_legacy.txt" "$dir/${net}_routed.txt"; then
        echo "ci: variant parity: --variant mrlc differs on $net ${extra:-(direct)}" >&2
        exit 1
      fi
    done
  done
  if ! "$bindir/tests/test_variant" \
      --gtest_filter='*BruteForce*' > "$dir/bruteforce.log" 2>&1; then
    cat "$dir/bruteforce.log" >&2
    echo "ci: variant parity: brute-force optimality suite failed" >&2
    exit 1
  fi
  echo "ci[$label]: --variant mrlc byte-identical, brute-force optimality clean"
}

# Service smoke: one daemon, one socket, the whole robustness contract.
# The service must answer with the *same bytes* as the one-shot anytime
# solver (`mrlc_solve ira --budget <huge>` — the direct-bound path the
# service runs), turn an injected worker crash and a corrupt payload into
# typed replies without dying, serve a repeated topology from the warm
# cache byte-identically, and drain on SIGTERM with exit 0 and a final
# metrics flush.
service_smoke() {
  local bindir="$1" label="$2"
  local gen="$bindir/tools/mrlc_gen" solve="$bindir/tools/mrlc_solve"
  local serve="$bindir/tools/mrlc_serve" client="$bindir/tools/mrlc_client"
  echo "=== [$label] solver-service smoke ==="
  local dir="$bindir/service_smoke"
  rm -rf "$dir"
  mkdir -p "$dir"
  local sock="$dir/mrlc.sock"

  "$gen" dfl --nodes 16 --seed 7 > "$dir/a.net"
  "$gen" random --nodes 14 --seed 11 > "$dir/b.net"
  # One-shot reference: the service always solves through the anytime
  # layer (direct bound), so the parity target is `ira` with a budget.
  "$solve" ira --lifetime 100 --budget 1000000000 < "$dir/a.net" \
    > "$dir/oneshot.tree"

  # Fault arrival 2 is the second solved request: request 1 below is the
  # parity check, request 2 the designated crash victim.
  "$serve" --socket "$sock" --no-timings --inject service.worker_crash:2 \
    --metrics-json "$dir/metrics.json" > "$dir/serve.log" 2>&1 &
  local serve_pid=$!
  local i
  for i in $(seq 1 100); do
    [[ -S "$sock" ]] && break
    sleep 0.1
  done
  if [[ ! -S "$sock" ]]; then
    echo "ci: mrlc_serve never bound $sock" >&2
    exit 1
  fi

  # 1. Byte parity with the one-shot solver.
  "$client" --socket "$sock" --lifetime 100 --budget 1000000000 \
    < "$dir/a.net" > "$dir/service.tree" 2> "$dir/client_parity.err"
  if ! cmp -s "$dir/oneshot.tree" "$dir/service.tree"; then
    echo "ci: service tree differs from one-shot mrlc_solve" >&2
    exit 1
  fi

  # 2. Injected worker crash -> typed `cancelled` reply (client exit 7),
  #    daemon keeps serving.
  local rc
  set +e
  "$client" --socket "$sock" --lifetime 100 --budget 1000000000 \
    < "$dir/b.net" > /dev/null 2> "$dir/client_crash.err"
  rc=$?
  set -e
  if [[ $rc -ne 7 ]]; then
    echo "ci: injected worker crash: expected the typed-cancelled exit 7, got $rc" >&2
    exit 1
  fi

  # 3. Corrupt payload -> typed `invalid_request` reply (client exit 4),
  #    daemon keeps serving.
  local corrupt
  corrupt="$(ls "$repo"/tests/data/corrupt/*.net | head -1)"
  set +e
  "$client" --socket "$sock" --lifetime 100 < "$corrupt" \
    > /dev/null 2> "$dir/client_corrupt.err"
  rc=$?
  set -e
  if [[ $rc -ne 4 ]]; then
    echo "ci: corrupt payload: expected the typed-invalid exit 4, got $rc" >&2
    exit 1
  fi
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "ci: mrlc_serve died on a malformed request" >&2
    exit 1
  fi

  # 4. Repeat of request 1 -> served from the warm result cache, still
  #    byte-identical.
  "$client" --socket "$sock" --lifetime 100 --budget 1000000000 \
    < "$dir/a.net" > "$dir/service_repeat.tree" 2> "$dir/client_repeat.err"
  if ! cmp -s "$dir/oneshot.tree" "$dir/service_repeat.tree"; then
    echo "ci: cached service reply differs from the first solve" >&2
    exit 1
  fi

  # 5. SIGTERM -> drain, exit 0, final metrics flushed.
  kill -TERM "$serve_pid"
  set +e
  wait "$serve_pid"
  rc=$?
  set -e
  if [[ $rc -ne 0 ]]; then
    echo "ci: mrlc_serve SIGTERM drain: expected exit 0, got $rc" >&2
    exit 1
  fi
  if ! grep -q "mrlc_serve: drained" "$dir/serve.log"; then
    echo "ci: mrlc_serve never reported a completed drain" >&2
    exit 1
  fi
  if ! grep -q '"service.completed"' "$dir/metrics.json"; then
    echo "ci: mrlc_serve drain did not flush the final metrics" >&2
    exit 1
  fi
  echo "ci[$label]: service parity, typed faults, warm cache, and drain all clean"
}

# The malformed-input corpus through the sanitized parser: each file must
# die with the documented parse/validation exit code — no crash, no tree,
# and (under ASan) no silent memory error on the way out.
corrupt_corpus() {
  local solve="$1" label="$2"
  echo "=== [$label] corrupt-input corpus ==="
  local f rc
  for f in "$repo"/tests/data/corrupt/*.net; do
    set +e
    "$solve" mst < "$f" > /dev/null 2>&1
    rc=$?
    set -e
    if [[ $rc -ne 4 ]]; then
      echo "ci: $(basename "$f"): expected the parse/validation exit 4, got $rc" >&2
      exit 1
    fi
  done
  echo "ci[$label]: every corrupt input rejected with exit 4"
}

[[ $run_release -eq 1 ]] && run_suite release
[[ $run_asan -eq 1 ]] && run_suite asan
[[ $run_tsan -eq 1 ]] && run_tsan_suite

[[ $run_release -eq 1 ]] && fault_smoke "$repo/build-release" release
[[ $run_release -eq 1 ]] && engine_parity_smoke "$repo/build-release" release
[[ $run_release -eq 1 ]] && variant_parity_smoke "$repo/build-release" release
[[ $run_release -eq 1 ]] && service_smoke "$repo/build-release" release
[[ $run_asan -eq 1 ]] && corrupt_corpus "$repo/build-asan/tools/mrlc_solve" asan

echo "=== docs ==="
bash "$repo/scripts/docs.sh"

if [[ $run_release -eq 1 ]]; then
  echo "=== bench (non-fatal report) ==="
  bench_bin="$repo/build-release/tools/mrlc_bench"
  if [[ -x "$bench_bin" && -f "$repo/BENCH_solver.json" ]]; then
    "$bench_bin" --repeats 3 --out "$repo/build-release/BENCH_solver.json"
    python3 "$repo/scripts/bench_compare.py" \
      "$repo/BENCH_solver.json" "$repo/build-release/BENCH_solver.json" \
      || echo "bench: regressions reported above (informational only)"
    # Hard gate (unlike the timing report): the warm-started LP must never
    # abandon its basis on a stock workload.  A nonzero fallback count
    # means a numerical-robustness regression even though results stay
    # correct via the cold path.
    echo "=== bench: warm-start fallback gate ==="
    python3 - "$repo/build-release/BENCH_solver.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1], encoding="utf-8"))
bad = [(w["name"], w["metrics"]["counters"].get("simplex.cold_fallbacks", 0))
       for w in doc.get("workloads", [])
       if w["metrics"]["counters"].get("simplex.cold_fallbacks", 0)]
if bad:
    sys.exit(f"ci: simplex.cold_fallbacks nonzero on stock workloads: {bad}")
print("ci: simplex.cold_fallbacks == 0 on every stock workload")
PY
  else
    echo "bench: skipped (no bench binary or no committed baseline)"
  fi
fi

echo "=== ci.sh: all requested suites passed ==="
