/// \file fig08_random_same_energy.cpp
/// \brief Reproduces Fig. 8: cost of AAML / IRA / MST on 100 random graphs
/// with uniform initial energy (3000 J).
///
/// Paper setup: 16 nodes, each link present with probability 0.7, link
/// quality uniform in (0.95, 1), LC = L_AAML.  Paper's shape: AAML costs
/// 400-800+ (reliability 57-75%), IRA ~30% of AAML (reliability 85-95%),
/// and IRA within ~20 millibits of the MST lower bound.

#include <iostream>
#include <vector>

#include "random_sweep.hpp"

int main(int argc, char** argv) {
  const mrlc::bench::BenchArgs bench_args = mrlc::bench::parse_bench_args(argc, argv);
  using namespace mrlc;
  bench::print_header("Fig. 8", "random graphs, same initial energy (3000 J)");

  const scenario::RandomNetworkConfig config;  // paper defaults
  const std::vector<bench::SweepRow> rows =
      bench::run_sweep(config, 100, 8, bench_args.variant);
  bench::print_sweep(rows, bench_args);

  std::cout << "\nexpected shape: AAML several times costlier and unstable; "
               "IRA tracks MST within a small additive gap\n";
  return 0;
}
