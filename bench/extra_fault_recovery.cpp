/// \file extra_fault_recovery.cpp
/// \brief Extension experiment (no counterpart figure in the paper): how
/// well does the distributed maintainer survive node deaths?
///
/// The paper's Section VI protocol repairs link-quality drift; this bench
/// stresses the fault-tolerant extension: G(n, p) networks run a churn +
/// crash schedule, and after every death the maintainer reattaches the
/// orphaned subtrees.  Reported per control-plane configuration:
///
/// * healed fraction — deaths fully absorbed without detaching anyone;
/// * reliability retained — Q(repaired tree) relative to a from-scratch
///   IRA rebuild on the surviving subnetwork (the centralized answer a
///   basestation could compute if it were reachable);
/// * control messages per death — floods plus, in lossy mode, the digest
///   beacons and anti-entropy pulls needed to re-converge the replicas.
///
/// Everything is seeded: two runs print identical tables.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/ira.hpp"
#include "distributed/churn.hpp"
#include "distributed/failure.hpp"
#include "distributed/simulator.hpp"
#include "scenario/random_net.hpp"
#include "wsn/metrics.hpp"

namespace {

struct Config {
  std::string label;
  bool lossy = false;
  int control_retx = 0;
  bool allow_relaxation = false;
};

struct Accumulator {
  int deaths = 0;
  int healed = 0;
  int degraded = 0;
  int partitioned = 0;
  long long repair_messages = 0;
  long long resync_rounds = 0;
  double retained_sum = 0.0;
  int retained_samples = 0;
  int inconsistent = 0;
};

Accumulator run_schedule(const Config& config, double link_probability) {
  using namespace mrlc;
  constexpr int kNodes = 50;
  constexpr int kFaultsPerRun = 8;
  constexpr int kChurnStepsPerFault = 3;
  constexpr int kRuns = 3;
  constexpr std::uint64_t kBaseSeed = 20150901;  // ICPP'15, nothing more

  core::IraOptions ira_options;
  ira_options.bound_mode = core::BoundMode::kDirect;

  Accumulator acc;
  for (int run = 0; run < kRuns; ++run) {
    Rng rng(kBaseSeed + static_cast<std::uint64_t>(run));
    scenario::RandomNetworkConfig net_config;
    net_config.node_count = kNodes;
    net_config.link_probability = link_probability;
    net_config.prr_min = 0.6;
    net_config.prr_max = 0.99;
    wsn::Network net = scenario::make_random_network(net_config, rng);

    const double bound = net.energy_model().node_lifetime(3000.0, 8);
    core::IraResult ira;
    try {
      ira = core::IterativeRelaxation(ira_options).solve(net, bound);
    } catch (const InfeasibleError&) {
      continue;
    }
    if (!ira.meets_bound) continue;

    dist::MaintainerOptions maintainer_options;
    maintainer_options.allow_lc_relaxation = config.allow_relaxation;
    dist::FloodOptions flood;
    flood.lossy = config.lossy;
    flood.control_retx = config.control_retx;
    flood.seed = kBaseSeed ^ (static_cast<std::uint64_t>(run) << 8);
    dist::ProtocolSimulator sim(net, ira.tree, bound, maintainer_options, flood);

    dist::ChurnOptions churn_options;
    churn_options.cost_noise_sigma = 0.03;
    dist::ChurnProcess churn(net, churn_options);

    Rng fault_rng = rng.fork(0xFA17);
    const dist::FailureSchedule schedule =
        dist::random_crash_schedule(net, kFaultsPerRun, 1000.0, fault_rng);
    for (const dist::FailureEvent& event : schedule.events) {
      for (int step = 0; step < kChurnStepsPerFault; ++step) {
        for (const dist::LinkEvent& link_event : churn.step(net, rng)) {
          link_event.kind == dist::LinkEvent::Kind::kDegraded
              ? sim.on_link_degraded(net, link_event.link)
              : sim.on_link_improved(net, link_event.link);
        }
      }
      if (!net.node_alive(event.node)) continue;

      const long long before = sim.stats().control_messages();
      const dist::RepairOutcome outcome = sim.on_node_failed(net, event.node);
      acc.repair_messages += sim.stats().control_messages() - before;
      ++acc.deaths;
      switch (outcome.status) {
        case dist::RepairStatus::kHealed: ++acc.healed; break;
        case dist::RepairStatus::kHealedDegraded: ++acc.degraded; break;
        case dist::RepairStatus::kPartitioned: ++acc.partitioned; break;
      }
      if (!sim.replicas_consistent()) ++acc.inconsistent;

      // Reliability retained vs a centralized from-scratch rebuild on the
      // compacted surviving subnetwork (only comparable when the repair
      // kept every survivor attached and the rebuild is feasible).
      if (sim.tree().member_count() == net.alive_node_count()) {
        const dist::CompactNetwork compact = dist::compact_alive_network(net);
        try {
          const core::IraResult rebuilt =
              core::IterativeRelaxation(ira_options).solve(compact.net, bound);
          if (rebuilt.meets_bound) {
            const double q_rebuilt =
                wsn::tree_reliability(compact.net, rebuilt.tree);
            if (q_rebuilt > 0.0) {
              acc.retained_sum +=
                  wsn::tree_reliability(net, sim.tree()) / q_rebuilt;
              ++acc.retained_samples;
            }
          }
        } catch (const InfeasibleError&) {
          // survivors disconnected or bound unreachable: no baseline
        }
      }
    }
    acc.resync_rounds += sim.stats().resync_rounds;
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrlc;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::print_header("Extra", "fault recovery of the distributed maintainer");
  bench::print_note(
      "extension experiment: crash schedules on G(50, p) under churn; "
      "repaired trees vs from-scratch IRA rebuilds on the survivors");

  const std::vector<Config> configs = {
      {"reliable floods", false, 0, false},
      {"lossy, retx 1", true, 1, false},
      {"lossy, retx 3", true, 3, false},
      {"lossy, retx 3, relax LC", true, 3, true},
  };

  Table table({"control plane", "p", "deaths", "healed", "degraded",
               "partitioned", "heal frac", "rel. retained", "msgs/death",
               "resync rounds"});
  for (const Config& config : configs) {
    for (const double link_probability : {0.12, 0.055}) {
      const Accumulator acc = run_schedule(config, link_probability);
      table.begin_row()
          .add(config.label)
          .add(link_probability, 3)
          .add(acc.deaths)
          .add(acc.healed)
          .add(acc.degraded)
          .add(acc.partitioned)
          .add(acc.deaths > 0 ? static_cast<double>(acc.healed) / acc.deaths
                              : 0.0,
               3)
          .add(acc.retained_samples > 0
                   ? acc.retained_sum / acc.retained_samples
                   : 0.0,
               4)
          .add(acc.deaths > 0
                   ? static_cast<double>(acc.repair_messages) / acc.deaths
                   : 0.0,
               1)
          .add(acc.resync_rounds);
      if (acc.inconsistent > 0) {
        std::cerr << "WARNING: " << acc.inconsistent
                  << " repairs left replicas inconsistent (" << config.label
                  << ", p " << link_probability << ")\n";
      }
    }
  }
  bench::emit(table, args);
  return 0;
}
