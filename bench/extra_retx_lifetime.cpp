/// \file extra_retx_lifetime.cpp
/// \brief Extension experiment (no counterpart figure in the paper):
/// what happens to the candidate trees when the deployment keeps ETX
/// retransmissions on?
///
/// The paper's Fig. 1 motivates MRLC by showing retransmissions burn
/// ~90% of the energy at low link quality — and then sidesteps the issue
/// by disabling them.  This bench closes the loop: it evaluates the same
/// trees under the retransmission-aware energy model
/// (`wsn::network_lifetime_retx`), validates the analytic rates against
/// the packet-level depletion simulator, and shows that the
/// retransmission-aware solver (`core::retx_aware_ira`) recovers the lost
/// lifetime at a modest reliability price.

#include <iostream>

#include "baselines/aaml.hpp"
#include "baselines/mst_baseline.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/ira.hpp"
#include "core/retx_ira.hpp"
#include "radio/depletion_sim.hpp"
#include "scenario/dfl.hpp"
#include "scenario/random_net.hpp"
#include "wsn/metrics.hpp"

int main(int argc, char** argv) {
  using namespace mrlc;
  const bench::BenchArgs bench_args = bench::parse_bench_args(argc, argv);
  bench::print_header("Extra", "retransmission-aware lifetime of candidate trees");
  bench::print_note(
      "extension experiment: the paper's trees re-evaluated under an ETX "
      "retransmit-until-delivered policy");

  const scenario::DflSystem sys = scenario::make_dfl_system();
  const baselines::AamlResult aaml =
      baselines::aaml(scenario::filter_links(sys.network, 0.95));

  core::IraOptions direct;
  direct.bound_mode = core::BoundMode::kDirect;
  const core::IraResult ira =
      core::IterativeRelaxation(direct).solve(sys.network, aaml.lifetime);
  const baselines::MstResult mst = baselines::mst_baseline(sys.network);

  // Retransmission-aware solve: scan downward from +30% over the plain
  // IRA tree's retx lifetime to the largest bound the (conservative,
  // bounded-violation) extension can actually certify.
  const double ira_retx = wsn::network_lifetime_retx(sys.network, ira.tree);
  bool retx_ok = false;
  double retx_bound = 0.0;
  core::RetxIraResult retx;
  for (const double factor : {1.3, 1.2, 1.1, 1.05, 1.0, 0.9}) {
    try {
      core::RetxIraResult candidate =
          core::retx_aware_ira(sys.network, factor * ira_retx);
      if (candidate.meets_bound) {
        retx = std::move(candidate);
        retx_bound = factor * ira_retx;
        retx_ok = true;
        break;
      }
    } catch (const InfeasibleError&) {
    }
  }

  Rng rng(2027);
  radio::RetxPolicy policy;
  policy.enabled = true;

  Table table({"tree", "reliability", "eq1_lifetime", "retx_lifetime_analytic",
               "retx_lifetime_simulated"});
  auto add_row = [&](const std::string& name, const wsn::AggregationTree& tree) {
    const radio::DepletionResult dep =
        radio::simulate_depletion(sys.network, tree, policy, 4000, rng);
    table.begin_row()
        .add(name)
        .add(wsn::tree_reliability(sys.network, tree), 3)
        .add(wsn::network_lifetime(sys.network, tree), 0)
        .add(wsn::network_lifetime_retx(sys.network, tree), 0)
        .add(dep.rounds_survived, 0);
  };
  add_row("MST (reliability-optimal)", mst.tree);
  add_row("IRA @ L_AAML (paper)", ira.tree);
  if (retx_ok) {
    add_row("retx-aware IRA (max certified)", retx.tree);
  }
  bench::emit(table, bench_args);

  if (retx_ok) {
    std::cout << "\nmax certified retx bound: " << retx_bound << " rounds ("
              << retx_bound / ira_retx << "x the plain IRA tree's retx "
              << "lifetime); reliability " << retx.reliability << " vs IRA's "
              << ira.reliability << '\n';
  } else {
    std::cout << "\nretx-aware solve could not certify any scanned bound\n";
  }
  std::cout << "expected shape: analytic and simulated retx lifetimes agree "
               "within Monte-Carlo noise; on the DFL instance reliability and "
               "retx-lifetime mostly align (strong links are cheap in both), "
               "so the certified bound sits near the plain tree's — the "
               "crafted divergence case lives in tests/retx_test.cpp\n";
  return 0;
}
