/// \file fig03_power_states.cpp
/// \brief Reproduces Fig. 3: TelosB power draw in the sending, receiving
/// and idle radio states (the paper measured these with a Monsoon
/// PowerMonitor; we synthesize equivalent traces — see radio/power_trace.hpp).
///
/// Paper's numbers: ~80 mW sending, ~60 mW receiving, ~80 uW idle; the
/// conclusion is that lifetime estimation may ignore idle consumption and
/// charge only the per-packet Tx/Rx energies (1.6e-4 J / 1.2e-4 J).

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "radio/power_trace.hpp"

int main(int argc, char** argv) {
  const mrlc::bench::BenchArgs bench_args = mrlc::bench::parse_bench_args(argc, argv);
  using namespace mrlc;
  bench::print_header("Fig. 3", "TelosB power draw per radio state");

  const radio::PowerTraceParams params;
  Rng rng(3);
  constexpr double kDurationMs = 2000.0;

  Table table({"state", "paper_avg", "measured_avg_mw", "p25_mw", "median_mw",
               "p75_mw", "trace_energy_mj"});
  const struct {
    radio::RadioState state;
    const char* name;
    const char* paper;
  } kStates[] = {
      {radio::RadioState::kSending, "sending", "80 mW"},
      {radio::RadioState::kReceiving, "receiving", "60 mW"},
      {radio::RadioState::kIdle, "idle", "0.08 mW"},
  };
  for (const auto& s : kStates) {
    const radio::PowerTrace trace =
        radio::synthesize_trace(s.state, kDurationMs, params, rng);
    const Summary summary = radio::summarize_trace(trace);
    table.begin_row()
        .add(std::string(s.name))
        .add(std::string(s.paper))
        .add(summary.mean, 3)
        .add(summary.p25, 3)
        .add(summary.median, 3)
        .add(summary.p75, 3)
        .add(trace.energy_mj(), 2);
  }
  mrlc::bench::emit(table, bench_args);

  std::cout << "\nderived per-packet energies used by the lifetime model: "
               "Tx = 1.6e-4 J, Rx = 1.2e-4 J (paper Section VII)\n";
  return 0;
}
