#pragma once

/// \file bench_util.hpp
/// \brief Shared helpers for the figure-reproduction binaries.

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/variant.hpp"

namespace mrlc::bench {

/// Shared CLI convention for the figure binaries: pass `--csv` to emit
/// machine-readable tables (for plotting) instead of aligned text, and
/// `--variant NAME` to route the solver rows through a problem variant
/// (`mrlc`, the default, is byte-identical to the historical path).
struct BenchArgs {
  bool csv = false;
  core::VariantId variant = core::VariantId::kMrlc;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv = true;
    } else if (std::strcmp(argv[i], "--variant") == 0 && i + 1 < argc) {
      const auto parsed = core::variant_from_string(argv[++i]);
      if (!parsed.has_value()) {
        std::cerr << "unknown variant " << argv[i]
                  << " (expected mrlc | etx | min_energy | max_lifetime)\n";
        std::exit(2);
      }
      args.variant = *parsed;
    }
  }
  return args;
}

/// Row label for the variant-routed solver column, e.g. "IRA" for mrlc
/// and "IRA[etx]" otherwise.
inline std::string variant_label(core::VariantId variant) {
  if (variant == core::VariantId::kMrlc) return "IRA";
  return std::string("IRA[") + core::to_string(variant) + "]";
}

inline void emit(const Table& table, const BenchArgs& args) {
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// The paper reports tree costs in what works out to be millibits:
/// cost_paper = 1000 * log2(ETX product) = 1000 * C_nats / ln 2.
/// (Fig. 7's MST row — cost 55, reliability 0.963 — pins this down:
/// -1000*log2(0.963) = 54.4.)  All bench tables print this unit so the
/// numbers are directly comparable to the published figures.
inline double to_millibits(double cost_nats) {
  return 1000.0 * cost_nats / std::log(2.0);
}

inline void print_header(const std::string& figure, const std::string& title) {
  std::cout << "\n================================================================\n"
            << figure << " — " << title << '\n'
            << "================================================================\n";
}

inline void print_note(const std::string& note) {
  std::cout << "note: " << note << '\n';
}

}  // namespace mrlc::bench
