#pragma once

/// \file bench_util.hpp
/// \brief Shared helpers for the figure-reproduction binaries.

#include <cmath>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"

namespace mrlc::bench {

/// Shared CLI convention for the figure binaries: pass `--csv` to emit
/// machine-readable tables (for plotting) instead of aligned text.
struct BenchArgs {
  bool csv = false;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) args.csv = true;
  }
  return args;
}

inline void emit(const Table& table, const BenchArgs& args) {
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// The paper reports tree costs in what works out to be millibits:
/// cost_paper = 1000 * log2(ETX product) = 1000 * C_nats / ln 2.
/// (Fig. 7's MST row — cost 55, reliability 0.963 — pins this down:
/// -1000*log2(0.963) = 54.4.)  All bench tables print this unit so the
/// numbers are directly comparable to the published figures.
inline double to_millibits(double cost_nats) {
  return 1000.0 * cost_nats / std::log(2.0);
}

inline void print_header(const std::string& figure, const std::string& title) {
  std::cout << "\n================================================================\n"
            << figure << " — " << title << '\n'
            << "================================================================\n";
}

inline void print_note(const std::string& note) {
  std::cout << "note: " << note << '\n';
}

}  // namespace mrlc::bench
