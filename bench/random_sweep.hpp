#pragma once

/// \file random_sweep.hpp
/// \brief Shared driver for the random-graph experiments (Figs. 8-10):
/// per-instance cost of AAML, IRA at LC = L_AAML, and MST.

#include <iostream>
#include <optional>
#include <vector>

#include "baselines/aaml.hpp"
#include "baselines/mst_baseline.hpp"
#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "core/ira.hpp"
#include "scenario/random_net.hpp"

namespace mrlc::bench {

struct SweepRow {
  double aaml_cost = 0.0;
  double aaml_reliability = 0.0;
  double ira_cost = 0.0;
  double ira_reliability = 0.0;
  bool ira_meets = false;
  double mst_cost = 0.0;
  double mst_reliability = 0.0;
  double lifetime_constraint = 0.0;
};

/// Runs one instance: AAML fixes the lifetime constraint, the selected
/// solver variant and MST compete on cost.  `kMrlc` takes the historical
/// direct-IRA path byte-for-byte (no variant layer runs); the other
/// variants route through `core::solve_variant` at the same bound —
/// `max_lifetime` treats it as a floor, and a variant whose feasibility
/// region is stricter than MRLC's (etx/min_energy charge conservative
/// energy rows) may report the instance infeasible, which the row records
/// as a violated bound with zeroed solver columns.
inline SweepRow run_instance(const wsn::Network& net,
                             core::VariantId variant = core::VariantId::kMrlc) {
  SweepRow row;
  const baselines::AamlResult aaml = baselines::aaml(net);
  if (variant == core::VariantId::kMrlc) {
    core::IraOptions options;
    options.bound_mode = core::BoundMode::kDirect;
    const core::IraResult ira =
        core::IterativeRelaxation(options).solve(net, aaml.lifetime);
    row.ira_cost = ira.cost;
    row.ira_reliability = ira.reliability;
    row.ira_meets = ira.meets_bound;
  } else {
    try {
      const core::VariantResult res =
          core::solve_variant(variant, net, aaml.lifetime);
      row.ira_cost = res.cost;
      row.ira_reliability = res.reliability;
      row.ira_meets = res.meets_bound;
    } catch (const InfeasibleError&) {
      row.ira_meets = false;  // conservative rows can exclude every tree
    }
  }
  const baselines::MstResult mst = baselines::mst_baseline(net);
  row.aaml_cost = aaml.cost;
  row.aaml_reliability = aaml.reliability;
  row.mst_cost = mst.cost;
  row.mst_reliability = mst.reliability;
  row.lifetime_constraint = aaml.lifetime;
  return row;
}

/// Runs `count` independent instances on the default pool (one RNG stream
/// each, so the rows are identical for every thread count).
inline std::vector<SweepRow> run_sweep(const scenario::RandomNetworkConfig& config,
                                       int count, std::uint64_t base_seed,
                                       core::VariantId variant = core::VariantId::kMrlc) {
  std::vector<SweepRow> rows(static_cast<std::size_t>(count));
  Rng base(base_seed);
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(count));
  for (auto& s : seeds) s = base();
  default_pool().for_each(count, [&](int i) {
    Rng rng(seeds[static_cast<std::size_t>(i)]);
    rows[static_cast<std::size_t>(i)] =
        run_instance(scenario::make_random_network(config, rng), variant);
  });
  return rows;
}

/// Prints the per-instance series (the paper plots one curve per
/// algorithm over 100 instances) followed by summary statistics.
inline void print_sweep(const std::vector<SweepRow>& rows,
                        const BenchArgs& args = {}) {
  const std::string solver = variant_label(args.variant);
  Table table({"instance", "AAML_cost_mb", solver + "_cost_mb", "MST_cost_mb",
               "AAML_rel", solver + "_rel", "MST_rel", solver + "_meets_LC"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    table.begin_row()
        .add(static_cast<long long>(i))
        .add(to_millibits(r.aaml_cost), 1)
        .add(to_millibits(r.ira_cost), 1)
        .add(to_millibits(r.mst_cost), 1)
        .add(r.aaml_reliability, 3)
        .add(r.ira_reliability, 3)
        .add(r.mst_reliability, 3)
        .add(r.ira_meets ? "yes" : "violated");
  }
  emit(table, args);

  std::vector<double> aaml_costs, ira_costs, mst_costs, gaps;
  int meets = 0;
  for (const SweepRow& r : rows) {
    aaml_costs.push_back(to_millibits(r.aaml_cost));
    ira_costs.push_back(to_millibits(r.ira_cost));
    mst_costs.push_back(to_millibits(r.mst_cost));
    gaps.push_back(to_millibits(r.ira_cost - r.mst_cost));
    meets += r.ira_meets ? 1 : 0;
  }
  const Summary a = summarize(aaml_costs);
  const Summary i = summarize(ira_costs);
  const Summary m = summarize(mst_costs);
  const Summary g = summarize(gaps);

  std::cout << "\nsummary over " << rows.size() << " instances (cost in millibits):\n";
  Table summary({"algorithm", "mean", "stddev", "min", "median", "max"});
  auto srow = [&](const char* name, const Summary& s) {
    summary.begin_row().add(std::string(name)).add(s.mean, 1).add(s.stddev, 1)
        .add(s.min, 1).add(s.median, 1).add(s.max, 1);
  };
  srow("AAML", a);
  srow((solver + "@L_AAML").c_str(), i);
  srow("MST (lower bound)", m);
  srow((solver + " - MST gap").c_str(), g);
  emit(summary, args);
  std::cout << solver << " met the lifetime constraint on " << meets << "/"
            << rows.size() << " instances\n";
}

}  // namespace mrlc::bench
