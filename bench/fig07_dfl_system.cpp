/// \file fig07_dfl_system.cpp
/// \brief Reproduces Fig. 7: total cost and reliability of AAML, IRA at
/// several lifetime constraints, and MST, on the (synthesized) DFL system.
///
/// Paper's numbers (their trace): AAML cost 378 / reliability 0.77; MST
/// cost 55 / reliability 0.963; IRA at LC = L_AAML cost 68 / reliability
/// 0.954, shrinking to the MST cost as the constraint loses bite.  Costs
/// are in millibits (1000 * log2 of the ETX product) — the unit that makes
/// the paper's cost/reliability pairs mutually consistent.
///
/// Reproduction notes (see EXPERIMENTS.md for the full discussion):
/// * AAML runs on the >= 0.95-PRR-filtered graph, as in the paper.
/// * IRA runs in the paper's evaluation regime (BoundMode::kDirect).  The
///   strict L' of Algorithm 1 (two children of headroom) is reported too;
///   at the paper's LC multiples it is typically undefined or infeasible,
///   which is why their higher-LC rows show "a little violation of
///   lifetime" — our implementation reports the violation explicitly
///   instead of hiding it.

#include <iostream>

#include "baselines/aaml.hpp"
#include "baselines/etx_spt.hpp"
#include "baselines/mst_baseline.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/branch_bound.hpp"
#include "core/ira.hpp"
#include "scenario/dfl.hpp"
#include "scenario/random_net.hpp"
#include "wsn/metrics.hpp"

int main(int argc, char** argv) {
  const mrlc::bench::BenchArgs bench_args = mrlc::bench::parse_bench_args(argc, argv);
  using namespace mrlc;
  bench::print_header("Fig. 7", "cost & reliability on the DFL system");

  const scenario::DflSystem sys = scenario::make_dfl_system();
  std::cout << "instance: " << sys.network.node_count() << " nodes, "
            << sys.network.link_count() << " links\n";

  const wsn::Network filtered = scenario::filter_links(sys.network, 0.95);
  const baselines::AamlResult aaml = baselines::aaml(filtered);
  const baselines::MstResult mst = baselines::mst_baseline(sys.network);

  Table table({"algorithm", "lifetime_constraint", "cost_millibits", "reliability",
               "achieved_lifetime", "meets_bound"});
  auto add_row = [&](const std::string& name, const std::string& constraint,
                     double cost, double reliability, double lifetime,
                     const std::string& meets) {
    table.begin_row()
        .add(name)
        .add(constraint)
        .add(bench::to_millibits(cost), 1)
        .add(reliability, 3)
        .add(lifetime, 0)
        .add(meets);
  };

  add_row("AAML (links>=0.95)", "-", aaml.cost, aaml.reliability, aaml.lifetime, "-");
  add_row("MST (lower bound)", "-", mst.cost, mst.reliability, mst.lifetime, "-");
  const baselines::EtxSptResult etx = baselines::etx_spt(sys.network);
  add_row("ETX shortest-path tree", "-", etx.cost, etx.reliability, etx.lifetime, "-");

  core::IraOptions direct;
  direct.bound_mode = core::BoundMode::kDirect;
  const core::IterativeRelaxation solver(direct);
  // The LC sweep routes through the selected --variant (mrlc takes the
  // historical direct-IRA path byte-for-byte); the strict-L' and
  // branch-and-bound rows below are MRLC-specific and stay on it.
  const std::string solver_name =
      bench::variant_label(bench_args.variant) + " (direct)";
  for (const double factor : {1.0, 1.5, 2.0, 2.5}) {
    const double lc = factor * aaml.lifetime;
    const std::string label = std::to_string(factor) + " x L_AAML";
    try {
      if (bench_args.variant == core::VariantId::kMrlc) {
        const core::IraResult res = solver.solve(sys.network, lc);
        add_row(solver_name, label, res.cost, res.reliability, res.lifetime,
                res.meets_bound ? "yes" : "violated");
      } else {
        const core::VariantResult res =
            core::solve_variant(bench_args.variant, sys.network, lc);
        add_row(solver_name, label, res.cost, res.reliability, res.lifetime,
                res.meets_bound ? "yes" : "violated");
      }
    } catch (const InfeasibleError&) {
      table.begin_row().add(solver_name).add(label).add("-").add("-").add("-").add(
          "infeasible");
    }
  }
  // The strict Algorithm-1 bound, where defined.
  for (const double factor : {0.5, 0.75, 1.0}) {
    const double lc = factor * aaml.lifetime;
    const std::string label = std::to_string(factor) + " x L_AAML";
    try {
      const core::IraResult res = core::IterativeRelaxation().solve(sys.network, lc);
      add_row("IRA (strict L')", label, res.cost, res.reliability, res.lifetime,
              res.meets_bound ? "yes" : "violated");
    } catch (const InfeasibleError&) {
      table.begin_row().add("IRA (strict L')").add(label).add("-").add("-").add("-").add(
          "infeasible");
    }
  }
  // Exact optimum at LC = L_AAML via branch-and-bound: the true optimality
  // gap of IRA at the paper's full scale (enumeration cannot do n = 16).
  try {
    const auto exact = core::branch_bound_mrlc(sys.network, aaml.lifetime);
    if (exact.has_value()) {
      add_row("EXACT (branch&bound)", "1.0 x L_AAML", exact->cost,
              exact->reliability, exact->lifetime, "yes");
    } else {
      table.begin_row().add("EXACT (branch&bound)").add("1.0 x L_AAML").add("-")
          .add("-").add("-").add("infeasible");
    }
  } catch (const std::invalid_argument&) {
    table.begin_row().add("EXACT (branch&bound)").add("1.0 x L_AAML").add("-")
        .add("-").add("-").add("budget exceeded");
  }
  mrlc::bench::emit(table, bench_args);

  std::cout << "\nexpected shape: cost(MST) <= cost(IRA@L_AAML) << cost(AAML); "
               "reliability ordering inverted;\n"
               "IRA meets L_AAML without giving up much reliability (paper: "
               "24% reliability gain over AAML at equal lifetime)\n";
  std::cout << "reliability gain of IRA@1.0xL_AAML over AAML: ";
  try {
    const core::IraResult res = solver.solve(sys.network, aaml.lifetime);
    std::cout << (res.reliability - aaml.reliability) / aaml.reliability * 100.0
              << "%\n";
  } catch (const InfeasibleError&) {
    std::cout << "(infeasible)\n";
  }
  return 0;
}
