/// \file fig01_retransmission_cost.cpp
/// \brief Reproduces Fig. 1: average packets per aggregation round vs.
/// average link quality, with ETX-style retransmission, for networks of
/// 16 / 32 / 64 nodes.
///
/// Paper's headline: at 16 nodes the per-round packet count grows from 15
/// (perfect links) to ~150 at 10% link quality — nodes spend ~90% of their
/// energy retransmitting, which motivates selecting reliable trees instead.

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "radio/packet_sim.hpp"
#include "scenario/random_net.hpp"
#include "wsn/aggregation_tree.hpp"
#include "graph/traversal.hpp"

namespace {

using namespace mrlc;

/// Builds a random connected network of `n` nodes whose links all carry
/// PRR `quality`, and its BFS aggregation tree.
std::pair<wsn::Network, wsn::AggregationTree> make_instance(int n, double quality,
                                                            Rng& rng) {
  scenario::RandomNetworkConfig config;
  config.node_count = n;
  config.link_probability = 0.3;
  config.prr_min = config.prr_max = 0.99;  // placeholder, overwritten below
  wsn::Network net = scenario::make_random_network(config, rng);
  for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
    net.set_link_prr(id, quality);
  }
  const graph::BfsTree bfs = graph::bfs_tree(net.topology(), net.sink());
  auto parents = bfs.parent_vertex;
  parents[static_cast<std::size_t>(net.sink())] = -1;
  wsn::AggregationTree tree = wsn::AggregationTree::from_parents(net, parents);
  return {std::move(net), std::move(tree)};
}

}  // namespace

int main(int argc, char** argv) {
  const mrlc::bench::BenchArgs bench_args = mrlc::bench::parse_bench_args(argc, argv);
  bench::print_header("Fig. 1", "avg packets per aggregation round vs link quality");
  bench::print_note(
      "retransmit-until-received (ETX) policy; expectation is (n-1)/q packets");

  constexpr int kRounds = 2000;
  Rng rng(1);

  Table table({"avg_link_quality", "n=16", "n=32", "n=64"});
  for (int q10 = 10; q10 >= 1; --q10) {
    const double quality = q10 / 10.0;
    table.begin_row().add(quality, 1);
    for (const int n : {16, 32, 64}) {
      auto [net, tree] = make_instance(n, quality, rng);
      radio::RetxPolicy retx;
      retx.enabled = true;
      const radio::AggregateResult agg =
          radio::simulate_rounds(net, tree, retx, kRounds, rng);
      table.add(agg.avg_packets_per_round, 1);
    }
  }
  mrlc::bench::emit(table, bench_args);

  std::cout << "\nexpected shape: ~ (n-1)/q; paper reports 15 -> 150 for n=16 "
               "as quality drops 1.0 -> 0.1\n";
  return 0;
}
