/// \file fig11_13_distributed.cpp
/// \brief Reproduces Figs. 11-13: the distributed updating protocol vs. the
/// centralized IRA over 100 rounds of link degradation on the DFL system.
///
/// Protocol of the paper's experiment: start from the IRA tree (every node
/// holds its Prüfer code); each round a randomly chosen tree link becomes
/// less reliable (its cost increases by 1e-3, i.e. PRR multiplied by
/// e^-0.001), the child reacts with the Link-Getting-Worse scheme, and we
/// compare against re-running centralized IRA on the current network.
///
/// * Fig. 11 — total tree cost over rounds (distributed within ~25 cost
///   units of IRA in the paper's scale).
/// * Fig. 12 — reliability over rounds (gap <= ~0.02).
/// * Fig. 13 — cumulative messages and average messages per update
///   (< 10 messages per update at n = 16).
///
/// The paper's 1e-3 per-round degradation is tiny (1.44 millibits), so we
/// also run a 50x-stronger variant that actually exercises re-parenting.

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/aaml.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/ira.hpp"
#include "core/variant.hpp"
#include "distributed/maintainer.hpp"
#include "distributed/simulator.hpp"
#include "scenario/dfl.hpp"
#include "scenario/random_net.hpp"
#include "wsn/metrics.hpp"

namespace {

using namespace mrlc;

void run_variant(double cost_increase_nats, std::uint64_t seed,
                 const bench::BenchArgs& bench_args) {
  scenario::DflSystem sys = scenario::make_dfl_system();
  const baselines::AamlResult aaml =
      baselines::aaml(scenario::filter_links(sys.network, 0.95));
  const double bound = aaml.lifetime;

  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IterativeRelaxation solver(options);

  // Centralized reference, routed through --variant (mrlc = the
  // historical direct-IRA path).  A variant whose feasibility region is
  // stricter than MRLC's (etx/min_energy charge conservative energy
  // rows) can be infeasible at LC = L_AAML; such rounds fall back to the
  // mrlc tree so the protocol comparison still has a reference.
  struct Central {
    wsn::AggregationTree tree;
    double cost = 0.0;
    double reliability = 0.0;
  };
  auto central = [&](const wsn::Network& net) -> Central {
    if (bench_args.variant != core::VariantId::kMrlc) {
      try {
        core::VariantResult r =
            core::solve_variant(bench_args.variant, net, bound);
        return {std::move(r.tree), r.cost, r.reliability};
      } catch (const InfeasibleError&) {
        // fall through to the mrlc reference
      }
    }
    core::IraResult r = solver.solve(net, bound);
    return {std::move(r.tree), r.cost, r.reliability};
  };

  const Central initial = central(sys.network);
  dist::ProtocolSimulator protocol(sys.network, initial.tree, bound);

  std::cout << "\nper-round cost increase: " << cost_increase_nats << " nats ("
            << bench::to_millibits(cost_increase_nats) << " millibits); "
            << "initial cost " << bench::to_millibits(initial.cost)
            << " mb, lifetime constraint " << bound << " rounds\n";

  Rng rng(seed);
  const std::string central_name = bench::variant_label(bench_args.variant);
  Table table({"round", "distributed_cost_mb", central_name + "_cost_mb",
               "distributed_rel", central_name + "_rel", "total_msgs",
               "avg_msgs_per_update", "flood_tx"});
  long long updates_so_far = 0;
  for (int round = 1; round <= 100; ++round) {
    // Degrade a random current tree link.
    const auto edges = protocol.tree().edge_ids();
    const wsn::EdgeId victim = edges[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(edges.size()) - 1))];
    const double new_prr = wsn::Network::cost_to_prr(
        sys.network.link_cost(victim) + cost_increase_nats);
    sys.network.set_link_prr(victim, new_prr);

    protocol.on_link_degraded(sys.network, victim);
    updates_so_far = protocol.maintainer().stats().updates_applied;

    if (round % 10 != 0) continue;
    const Central fresh = central(sys.network);
    const double dist_cost = wsn::tree_cost(sys.network, protocol.tree());
    const double dist_rel = wsn::tree_reliability(sys.network, protocol.tree());
    table.begin_row()
        .add(static_cast<long long>(round))
        .add(bench::to_millibits(dist_cost), 1)
        .add(bench::to_millibits(fresh.cost), 1)
        .add(dist_rel, 4)
        .add(fresh.reliability, 4)
        .add(static_cast<long long>(protocol.maintainer().stats().total_messages))
        .add(updates_so_far > 0
                 ? static_cast<double>(
                       protocol.maintainer().stats().total_messages) /
                       static_cast<double>(updates_so_far)
                 : 0.0,
             2)
        .add(static_cast<long long>(protocol.stats().flood_transmissions));
  }
  mrlc::bench::emit(table, bench_args);
  std::cout << "updates applied: " << protocol.maintainer().stats().updates_applied
            << "/" << protocol.maintainer().stats().degradation_events
            << " events; replicas consistent: "
            << (protocol.replicas_consistent() ? "yes" : "NO") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const mrlc::bench::BenchArgs bench_args = mrlc::bench::parse_bench_args(argc, argv);
  using namespace mrlc;
  bench::print_header("Figs. 11-13",
                      "distributed protocol vs centralized IRA over 100 rounds");

  std::cout << "\n--- paper's degradation rate (cost += 1e-3 nats/round) ---\n";
  run_variant(1e-3, 1113, bench_args);

  std::cout << "\n--- 50x degradation (cost += 0.05 nats/round), exercises "
               "re-parenting ---\n";
  run_variant(0.05, 1114, bench_args);

  std::cout << "\nexpected shape: distributed cost/reliability track the "
               "centralized IRA closely (paper: cost gap ~25 of ~300, "
               "reliability gap <= 0.02); avg messages per update < 10\n";
  return 0;
}
