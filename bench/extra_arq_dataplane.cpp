/// \file extra_arq_dataplane.cpp
/// \brief Extension experiment (no counterpart figure in the paper): the
/// ARQ data plane closed-loop demo.
///
/// Two questions the idealized pipeline cannot answer:
///
/// 1. *Observability* — the paper's Section VI protocol assumes nodes learn
///    link-quality changes instantly and exactly (an oracle).  Here repairs
///    can instead fire only from what senders observe: ACK outcomes of the
///    stop-and-wait ARQ on tree links plus sparse probe beacons, fed to an
///    EWMA estimator with hysteresis.  How much of the oracle's delivery
///    ratio does the estimator-driven loop recover, under i.i.d. losses and
///    under Gilbert–Elliott burst losses (where loss streaks mimic real
///    degradation and bait false repairs)?
///
/// 2. *Lifetime under ARQ* — `core::retx_aware_ira` guarantees its trees
///    meet the lifetime bound under the analytic retransmission energy
///    model.  The ARQ data plane spends strictly more (ACK overhead, and
///    attempts are confirmed by lossy ACKs: E[attempts] = 1/(q * q_ack) >
///    1/q).  Does the *measured* first-node-death extrapolation still meet
///    the bound the solver was given, i.e. does the model's conservatism
///    (each edge charged its worst role max(Tx, Rx)/q) absorb the ARQ
///    overhead?
///
/// Everything is seeded: two runs print identical tables.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/retx_ira.hpp"
#include "distributed/dataplane.hpp"
#include "scenario/random_net.hpp"
#include "wsn/metrics.hpp"

namespace {

using namespace mrlc;

constexpr int kNodes = 30;
constexpr double kLinkProbability = 0.25;
constexpr int kRounds = 400;
constexpr int kInstances = 4;
constexpr std::uint64_t kBaseSeed = 20150901;  // ICPP'15, nothing more
/// LC passed to the solver, as a fraction of the single-node budget at 8
/// children; low enough to stay feasible under the conservative LP on every
/// seeded instance while leaving the bound genuinely binding.
constexpr double kLcFraction = 0.35;

struct Instance {
  wsn::Network net;
  wsn::AggregationTree tree;
  double bound = 0.0;
};

std::vector<Instance> make_instances() {
  std::vector<Instance> instances;
  core::IraOptions ira_options;
  ira_options.bound_mode = core::BoundMode::kDirect;
  for (int i = 0; instances.size() < kInstances && i < 4 * kInstances; ++i) {
    Rng rng(kBaseSeed + static_cast<std::uint64_t>(i));
    scenario::RandomNetworkConfig config;
    config.node_count = kNodes;
    config.link_probability = kLinkProbability;
    config.prr_min = 0.65;
    config.prr_max = 0.98;
    wsn::Network net = scenario::make_random_network(config, rng);
    const double bound =
        kLcFraction * net.energy_model().node_lifetime(3000.0, 8);
    try {
      core::RetxIraResult res = core::retx_aware_ira(net, bound, ira_options);
      if (!res.meets_bound) continue;
      instances.push_back({std::move(net), std::move(res.tree), bound});
    } catch (const InfeasibleError&) {
      continue;  // conservative LP gave up on this draw; next seed
    }
  }
  return instances;
}

dist::DataPlaneOptions base_options(const Instance& inst, int index,
                                    dist::RepairMode repair,
                                    radio::ChannelModel model) {
  dist::DataPlaneOptions options;
  options.rounds = kRounds;
  options.repair = repair;
  options.channel.model = model;
  options.churn.cost_noise_sigma = 0.02;
  options.seed = kBaseSeed ^ (static_cast<std::uint64_t>(index) << 16);
  (void)inst;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::print_header("Extra", "ARQ data plane: estimation-driven repair");
  bench::print_note(
      "closed loop on G(30, 0.25): churn drifts the true PRRs; repairs fire "
      "from an oracle vs from ACK-fed EWMA estimators; same seeds per row");

  const std::vector<Instance> instances = make_instances();
  if (instances.empty()) {
    std::cerr << "no feasible instances drawn — aborting\n";
    return 1;
  }

  // --- Part 1: estimator-driven repair vs oracle, per channel model -------
  Table loop_table({"instance", "channel", "frozen", "oracle", "estimator",
                    "recovered", "repairs", "lag (rounds)", "false pos",
                    "est. MAE"});
  bool recovery_ok = true;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Instance& inst = instances[i];
    const int index = static_cast<int>(i);
    for (const auto model : {radio::ChannelModel::kBernoulli,
                             radio::ChannelModel::kGilbertElliott}) {
      const dist::DataPlaneResult frozen = run_dataplane(
          inst.net, inst.tree, inst.bound,
          base_options(inst, index, dist::RepairMode::kNone, model));
      const dist::DataPlaneResult oracle = run_dataplane(
          inst.net, inst.tree, inst.bound,
          base_options(inst, index, dist::RepairMode::kOracle, model));
      const dist::DataPlaneResult estimator = run_dataplane(
          inst.net, inst.tree, inst.bound,
          base_options(inst, index, dist::RepairMode::kEstimator, model));
      const double recovered =
          oracle.delivery_ratio > 0.0
              ? estimator.delivery_ratio / oracle.delivery_ratio
              : 1.0;
      if (recovered < 0.9) recovery_ok = false;
      loop_table.begin_row()
          .add(static_cast<int>(i))
          .add(model == radio::ChannelModel::kBernoulli ? "bernoulli" : "GE")
          .add(frozen.delivery_ratio, 4)
          .add(oracle.delivery_ratio, 4)
          .add(estimator.delivery_ratio, 4)
          .add(recovered, 4)
          .add(estimator.repairs_applied)
          .add(estimator.mean_detection_lag_rounds, 1)
          .add(estimator.false_positive_events)
          .add(estimator.estimate_mae, 4);
    }
  }
  bench::emit(loop_table, args);
  std::cout << (recovery_ok
                    ? "estimator recovers >= 90% of the oracle delivery "
                      "ratio on every row\n"
                    : "WARNING: estimator recovered < 90% of the oracle "
                      "delivery ratio on some row\n");

  // --- Part 2: measured ARQ lifetime vs the solver's guaranteed bound -----
  bench::print_header("Extra", "ARQ lifetime vs retx-aware guarantee");
  bench::print_note(
      "static links (no churn, no repair): measured first-node-death under "
      "full ARQ energy accounting vs the LC given to retx_aware_ira");
  Table life_table({"instance", "channel", "LC bound", "analytic retx",
                    "measured ARQ", "margin", "J/reading", "bound"});
  bool bound_ok = true;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Instance& inst = instances[i];
    const int index = static_cast<int>(i);
    const double analytic = wsn::network_lifetime_retx(inst.net, inst.tree);
    for (const auto model : {radio::ChannelModel::kBernoulli,
                             radio::ChannelModel::kGilbertElliott}) {
      dist::DataPlaneOptions options =
          base_options(inst, index, dist::RepairMode::kNone, model);
      options.churn.cost_noise_sigma = 0.0;  // freeze the true qualities
      const dist::DataPlaneResult res =
          run_dataplane(inst.net, inst.tree, inst.bound, options);
      const bool met = res.measured_lifetime_rounds >= inst.bound;
      if (!met) bound_ok = false;
      life_table.begin_row()
          .add(static_cast<int>(i))
          .add(model == radio::ChannelModel::kBernoulli ? "bernoulli" : "GE")
          .add(inst.bound, 0)
          .add(analytic, 0)
          .add(res.measured_lifetime_rounds, 0)
          .add(res.measured_lifetime_rounds / inst.bound, 3)
          .add(res.joules_per_reading * 1e3, 4)
          .add(met ? "met" : "VIOLATED");
    }
  }
  bench::emit(life_table, args);
  std::cout << (bound_ok ? "measured ARQ lifetime meets the solver's bound "
                           "on every instance\n"
                         : "WARNING: measured ARQ lifetime missed the "
                           "solver's bound on some instance\n");
  return recovery_ok && bound_ok ? 0 : 1;
}
