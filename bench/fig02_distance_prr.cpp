/// \file fig02_distance_prr.cpp
/// \brief Reproduces Fig. 2: packet reception ratio vs. distance (feet) for
/// TelosB transmission power levels 11, 15 and 19.
///
/// Paper's headline: at Tx = 19 quality degrades gently with distance; at
/// Tx = 11 and 15 the PRR collapses from ~100% at 4 ft to below 10% at
/// 16 ft.  We print both the deterministic curve (no shadowing) and the
/// mean over shadowing draws (what a measurement campaign would see).

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "radio/propagation.hpp"

int main(int argc, char** argv) {
  const mrlc::bench::BenchArgs bench_args = mrlc::bench::parse_bench_args(argc, argv);
  using namespace mrlc;
  bench::print_header("Fig. 2", "PRR vs distance for TelosB power levels 11/15/19");
  bench::print_note(
      "log-normal shadowing path loss + Zuniga-Krishnamachari SNR->PRR curve");

  const radio::PropagationParams params;
  Rng rng(2);
  constexpr int kDraws = 2000;

  Table table({"distance_ft", "tx19_expected", "tx19_mean", "tx15_expected",
               "tx15_mean", "tx11_expected", "tx11_mean"});
  for (int feet = 4; feet <= 16; ++feet) {
    const double meters = radio::feet_to_meters(static_cast<double>(feet));
    table.begin_row().add(static_cast<long long>(feet));
    for (const int level : {19, 15, 11}) {
      const double tx = radio::telosb_tx_power_dbm(level);
      table.add(radio::expected_prr(params, tx, meters), 3);
      RunningStats stats;
      for (int i = 0; i < kDraws; ++i) {
        stats.add(radio::sample_prr(params, tx, meters, rng));
      }
      table.add(stats.mean(), 3);
    }
  }
  mrlc::bench::emit(table, bench_args);

  std::cout << "\nexpected shape: ~1.0 at 4 ft for every level; tx11/tx15 fall "
               "below 0.1/0.25 by 16 ft while tx19 stays well above\n";
  return 0;
}
