/// \file fig09_random_diff_energy.cpp
/// \brief Reproduces Fig. 9: cost of AAML / IRA / MST on 100 random graphs
/// with heterogeneous initial energy (uniform in [1500 J, 5000 J]).
///
/// Paper's shape: the IRA and MST curves get even closer than in Fig. 8
/// (nodes with little energy end up as leaves, leaving high-energy nodes
/// free to take cheap links), while AAML remains unstable with cost spikes
/// at least 50% above IRA in most cases.

#include <iostream>
#include <vector>

#include "random_sweep.hpp"

int main(int argc, char** argv) {
  const mrlc::bench::BenchArgs bench_args = mrlc::bench::parse_bench_args(argc, argv);
  using namespace mrlc;
  bench::print_header("Fig. 9",
                      "random graphs, heterogeneous energy [1500 J, 5000 J]");

  scenario::RandomNetworkConfig config;
  config.energy_min_j = 1500.0;
  config.energy_max_j = 5000.0;
  const std::vector<bench::SweepRow> rows =
      bench::run_sweep(config, 100, 9, bench_args.variant);
  bench::print_sweep(rows, bench_args);

  std::cout << "\nexpected shape: IRA-MST gap narrows vs Fig. 8; AAML unstable "
               "with large spikes\n";
  return 0;
}
