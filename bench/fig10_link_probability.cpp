/// \file fig10_link_probability.cpp
/// \brief Reproduces Fig. 10: average cost vs link connection probability.
///
/// Paper setup: for each link probability, 100 random 16-node graphs;
/// the AAML curve *rises* with density (more links means AAML's
/// quality-blind balancing has more bad links to pick), while IRA and MST
/// stay flat (they only care about the cheapest links, which are plentiful
/// at every density).

#include <iostream>
#include <vector>

#include "random_sweep.hpp"

int main(int argc, char** argv) {
  const mrlc::bench::BenchArgs bench_args = mrlc::bench::parse_bench_args(argc, argv);
  using namespace mrlc;
  bench::print_header("Fig. 10", "average cost vs link connection probability");

  const std::string solver = bench::variant_label(bench_args.variant);
  Table table({"link_probability", "AAML_mean_cost_mb", solver + "_mean_cost_mb",
               "MST_mean_cost_mb", "instances"});
  for (const double p : {0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    scenario::RandomNetworkConfig config;
    config.link_probability = p;
    RunningStats aaml_cost, ira_cost, mst_cost;
    const int instances = 100;
    const std::vector<bench::SweepRow> rows =
        bench::run_sweep(config, instances, static_cast<std::uint64_t>(p * 1000),
                         bench_args.variant);
    for (const bench::SweepRow& row : rows) {
      aaml_cost.add(bench::to_millibits(row.aaml_cost));
      ira_cost.add(bench::to_millibits(row.ira_cost));
      mst_cost.add(bench::to_millibits(row.mst_cost));
    }
    table.begin_row()
        .add(p, 1)
        .add(aaml_cost.mean(), 1)
        .add(ira_cost.mean(), 1)
        .add(mst_cost.mean(), 1)
        .add(static_cast<long long>(instances));
  }
  mrlc::bench::emit(table, bench_args);

  std::cout << "\nexpected shape: AAML mean cost grows with link probability; "
               "IRA and MST stay nearly flat\n";
  return 0;
}
