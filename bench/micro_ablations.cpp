/// \file micro_ablations.cpp
/// \brief Ablation studies over the design choices DESIGN.md calls out:
///
/// 1. IRA bound mode — the paper's strict L' (lifetime guaranteed, smaller
///    feasible range) vs. the direct LC relaxation (cost <= OPT(LC), up to
///    +2 children violation).
/// 2. AAML variants — the paper-faithful strict-min search from a random
///    tree vs. the stronger lexicographic search from a BFS tree, and what
///    that does to the L_AAML constraint the other algorithms inherit.
/// 3. Simplex pricing — Dantzig with Bland fallback vs. Bland-only, on the
///    degenerate spanning-tree LPs.

#include <iostream>
#include <vector>

#include "baselines/aaml.hpp"
#include "baselines/greedy_mrlc.hpp"
#include "baselines/mst_baseline.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "core/ira.hpp"
#include "core/lp_formulation.hpp"
#include "core/separation.hpp"
#include "graph/mst.hpp"
#include "scenario/random_net.hpp"

namespace {

using namespace mrlc;

void ablate_bound_mode() {
  bench::print_header("Ablation 1", "IRA bound mode: paper-strict L' vs direct LC");
  Rng rng(21);
  const scenario::RandomNetworkConfig config;

  Table table({"LC_children_equiv", "strict_feasible", "strict_cost_mb",
               "direct_cost_mb", "direct_violations", "instances"});
  for (const int children : {4, 5, 6, 8}) {
    int strict_ok = 0;
    int direct_violations = 0;
    RunningStats strict_cost, direct_cost;
    const int instances = 30;
    Rng sweep_rng = rng.fork(static_cast<std::uint64_t>(children));
    for (int i = 0; i < instances; ++i) {
      const wsn::Network net = scenario::make_random_network(config, sweep_rng);
      const double bound = net.energy_model().node_lifetime(3000.0, children);
      try {
        const core::IraResult res = core::IterativeRelaxation().solve(net, bound);
        ++strict_ok;
        strict_cost.add(bench::to_millibits(res.cost));
      } catch (const InfeasibleError&) {
      }
      core::IraOptions direct;
      direct.bound_mode = core::BoundMode::kDirect;
      const core::IraResult res = core::IterativeRelaxation(direct).solve(net, bound);
      direct_cost.add(bench::to_millibits(res.cost));
      direct_violations += res.meets_bound ? 0 : 1;
    }
    table.begin_row()
        .add(static_cast<long long>(children))
        .add(std::to_string(strict_ok) + "/" + std::to_string(instances))
        .add(strict_cost.count() > 0 ? strict_cost.mean() : 0.0, 1)
        .add(direct_cost.mean(), 1)
        .add(static_cast<long long>(direct_violations))
        .add(static_cast<long long>(instances));
  }
  table.print(std::cout);
  std::cout << "takeaway: strict mode trades feasible range for a hard lifetime "
               "guarantee; direct mode always answers, rarely violating\n";
}

void ablate_aaml_variants() {
  bench::print_header("Ablation 2", "AAML search variants");
  Rng rng(22);
  const scenario::RandomNetworkConfig config;

  struct Variant {
    const char* name;
    baselines::AamlOptions options;
  };
  std::vector<Variant> variants;
  {
    baselines::AamlOptions o;  // paper-faithful default
    variants.push_back({"strict-min / random start", o});
    o.initial = baselines::AamlInitialTree::kBfs;
    variants.push_back({"strict-min / BFS start", o});
    o.mode = baselines::AamlSearchMode::kLexicographic;
    variants.push_back({"lexicographic / BFS start", o});
    o.initial = baselines::AamlInitialTree::kRandom;
    variants.push_back({"lexicographic / random start", o});
  }

  Table table({"variant", "mean_lifetime", "mean_cost_mb", "mean_steps"});
  const int instances = 30;
  std::vector<wsn::Network> nets;
  for (int i = 0; i < instances; ++i) {
    nets.push_back(scenario::make_random_network(config, rng));
  }
  for (const Variant& v : variants) {
    RunningStats lifetime, cost, steps;
    for (const wsn::Network& net : nets) {
      const baselines::AamlResult res = baselines::aaml(net, v.options);
      lifetime.add(res.lifetime);
      cost.add(bench::to_millibits(res.cost));
      steps.add(static_cast<double>(res.steps));
    }
    table.begin_row()
        .add(std::string(v.name))
        .add(lifetime.mean(), 0)
        .add(cost.mean(), 1)
        .add(steps.mean(), 1);
  }
  table.print(std::cout);
  std::cout << "takeaway: the lexicographic variant reaches much longer "
               "lifetimes (tighter LC for IRA); the strict-min/random variant "
               "reproduces the paper's mediocre plateaus\n";
}

void ablate_greedy_vs_ira() {
  bench::print_header("Ablation 4", "degree-capped Kruskal (greedy) vs IRA");
  Rng rng(24);
  // Harder instances than the paper's: sparser, wider quality spread,
  // uneven batteries — the regime where greedy choices start to hurt.
  scenario::RandomNetworkConfig config;
  config.link_probability = 0.35;
  config.prr_min = 0.5;
  config.energy_min_j = 1500.0;
  config.energy_max_j = 5000.0;

  Table table({"LC_children_equiv", "greedy_mean_cost_mb", "ira_mean_cost_mb",
               "greedy_stuck", "greedy_violations", "ira_violations", "instances"});
  for (const int children : {2, 3, 4}) {
    RunningStats greedy_cost, ira_cost;
    int stuck = 0;
    int greedy_violations = 0;
    int ira_violations = 0;
    const int instances = 40;
    Rng sweep_rng = rng.fork(static_cast<std::uint64_t>(children));
    core::IraOptions options;
    options.bound_mode = core::BoundMode::kDirect;
    const core::IterativeRelaxation solver(options);
    int solved = 0;
    for (int i = 0; i < instances; ++i) {
      const wsn::Network net = scenario::make_random_network(config, sweep_rng);
      const double bound = net.energy_model().node_lifetime(3000.0, children);
      core::IraResult ira;
      try {
        ira = solver.solve(net, bound);
      } catch (const InfeasibleError&) {
        continue;  // genuinely unachievable bound on this draw
      }
      ++solved;
      const baselines::GreedyMrlcResult greedy = baselines::greedy_mrlc(net, bound);
      greedy_cost.add(bench::to_millibits(greedy.cost));
      ira_cost.add(bench::to_millibits(ira.cost));
      stuck += greedy.cap_relaxations > 0 ? 1 : 0;
      greedy_violations += greedy.meets_bound ? 0 : 1;
      ira_violations += ira.meets_bound ? 0 : 1;
    }
    table.begin_row()
        .add(static_cast<long long>(children))
        .add(greedy_cost.mean(), 1)
        .add(ira_cost.mean(), 1)
        .add(static_cast<long long>(stuck))
        .add(static_cast<long long>(greedy_violations))
        .add(static_cast<long long>(ira_violations))
        .add(static_cast<long long>(solved));
  }
  table.print(std::cout);
  std::cout << "takeaway: the LP machinery is what turns the children caps "
               "into near-optimal trees; the greedy sweep matches only when "
               "the caps barely bind\n";
}

void ablate_separation_oracle() {
  bench::print_header("Ablation 5",
                      "subtour separation: exact max-flow sweep vs heuristic-only");
  Rng rng(26);
  scenario::RandomNetworkConfig config;
  config.prr_min = 0.5;  // wider costs make fractional cycles more likely

  const lp::SimplexSolver solver;
  int heuristic_unsound = 0;
  long long exact_solves = 0;
  long long heuristic_solves = 0;
  RunningStats exact_obj_gap;
  const int instances = 40;
  Rng sweep_rng = rng.fork(1);
  for (int i = 0; i < instances; ++i) {
    const wsn::Network net = scenario::make_random_network(config, sweep_rng);
    const int n = net.node_count();
    // A binding degree-capped LP (children ~ 3) keeps the relaxation
    // fractional enough to exercise separation.
    const double bound = net.energy_model().node_lifetime(3000.0, 3);
    std::vector<bool> all(static_cast<std::size_t>(n), true);

    core::MrlcLpFormulation exact_f(net.topology(),
                                    core::lifetime_degree_caps(net, all, bound));
    const core::CutLpResult exact = core::solve_with_subtour_cuts(
        exact_f, solver, 200, core::SeparationMode::kExact);
    core::MrlcLpFormulation heur_f(net.topology(),
                                   core::lifetime_degree_caps(net, all, bound));
    const core::CutLpResult heur = core::solve_with_subtour_cuts(
        heur_f, solver, 200, core::SeparationMode::kHeuristicOnly);
    if (exact.status != lp::SolveStatus::kOptimal ||
        heur.status != lp::SolveStatus::kOptimal) {
      continue;
    }
    exact_solves += exact.lp_solves;
    heuristic_solves += heur.lp_solves;
    exact_obj_gap.add(exact.objective - heur.objective);
    // Soundness check: does the heuristic's final point still violate a
    // subtour row the exact oracle can find?
    if (!core::find_violated_subtours(net.topology(), heur.edge_values).empty()) {
      ++heuristic_unsound;
    }
  }
  Table table({"oracle", "lp_solves_total", "unsound_terminations", "instances"});
  table.begin_row().add("exact (components + max-flow)").add(exact_solves)
      .add(0LL).add(static_cast<long long>(instances));
  table.begin_row().add("heuristic only (components)").add(heuristic_solves)
      .add(static_cast<long long>(heuristic_unsound))
      .add(static_cast<long long>(instances));
  table.print(std::cout);
  std::cout << "mean objective shortfall of the heuristic relaxation: "
            << bench::to_millibits(exact_obj_gap.mean())
            << " mb (its LP value is a weaker lower bound when it quits early)\n"
            << "takeaway: the max-flow sweep is what makes 'no cut found' a "
               "proof; components alone terminate on subtour-violating points\n";
}

void ablate_simplex_pricing() {
  bench::print_header("Ablation 3", "simplex pricing on the MRLC LPs");
  Rng rng(23);
  const scenario::RandomNetworkConfig config;

  Table table({"pricing", "total_pivots", "pivots_per_solve", "total_lp_solves"});
  for (const bool bland_only : {false, true}) {
    core::IraOptions options;
    options.bound_mode = core::BoundMode::kDirect;
    options.simplex.bland_after = bland_only ? 0 : 5000;
    long long iterations = 0;
    long long solves = 0;
    Rng sweep_rng = rng.fork(bland_only ? 1 : 2);
    for (int i = 0; i < 20; ++i) {
      const wsn::Network net = scenario::make_random_network(config, sweep_rng);
      const double bound = net.energy_model().node_lifetime(3000.0, 6);
      const core::IraResult res = core::IterativeRelaxation(options).solve(net, bound);
      solves += res.stats.lp_solves;
      iterations += res.stats.simplex_iterations;
    }
    table.begin_row()
        .add(std::string(bland_only ? "Bland only" : "Dantzig + Bland fallback"))
        .add(iterations)
        .add(static_cast<double>(iterations) / static_cast<double>(solves), 2)
        .add(solves);
  }
  table.print(std::cout);
  std::cout << "takeaway: Dantzig pricing with a Bland fallback converges in "
               "fewer pivots; Bland-only stays correct (anti-cycling) but slower\n";
}

}  // namespace

int main() {
  ablate_bound_mode();
  ablate_aaml_variants();
  ablate_greedy_vs_ira();
  ablate_separation_oracle();
  ablate_simplex_pricing();
  return 0;
}
