/// \file micro_algorithms.cpp
/// \brief google-benchmark microbenchmarks for every major component:
/// simplex solves, subtour separation, full IRA, baselines, the Prüfer
/// codec, and the packet simulator.  These are engineering benchmarks (no
/// counterpart figure in the paper); they document that the whole pipeline
/// is interactive-speed at the paper's scale and how it scales beyond it.

#include <benchmark/benchmark.h>

#include "baselines/aaml.hpp"
#include "baselines/mst_baseline.hpp"
#include "common/rng.hpp"
#include "core/ira.hpp"
#include "core/lp_formulation.hpp"
#include "core/separation.hpp"
#include "graph/mst.hpp"
#include "lp/simplex.hpp"
#include "prufer/codec.hpp"
#include "radio/packet_sim.hpp"
#include "scenario/dfl.hpp"
#include "scenario/random_net.hpp"

namespace {

using namespace mrlc;

wsn::Network make_net(int n, std::uint64_t seed) {
  Rng rng(seed);
  scenario::RandomNetworkConfig config;
  config.node_count = n;
  config.link_probability = 0.5;
  config.prr_min = 0.7;
  config.prr_max = 1.0;
  return scenario::make_random_network(config, rng);
}

void BM_IraSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const wsn::Network net = make_net(n, 42);
  const double bound = net.energy_model().node_lifetime(3000.0, 6);
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IterativeRelaxation solver(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(net, bound));
  }
}
BENCHMARK(BM_IraSolve)->Arg(8)->Arg(16)->Arg(24)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SubtourLpMst(benchmark::State& state) {
  // Cutting-plane subtour LP with no degree caps (integral MST, Lemma 1).
  const int n = static_cast<int>(state.range(0));
  const wsn::Network net = make_net(n, 7);
  const lp::SimplexSolver solver;
  for (auto _ : state) {
    core::MrlcLpFormulation formulation(
        net.topology(),
        std::vector<std::optional<double>>(static_cast<std::size_t>(n)));
    benchmark::DoNotOptimize(core::solve_with_subtour_cuts(formulation, solver));
  }
}
BENCHMARK(BM_SubtourLpMst)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_SeparationOracle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const wsn::Network net = make_net(n, 11);
  // A deliberately fractional point: every alive edge at (n-1)/|E|.
  const auto& g = net.topology();
  std::vector<double> x(static_cast<std::size_t>(g.edge_count()),
                        static_cast<double>(n - 1) / g.edge_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::find_violated_subtours(g, x));
  }
}
BENCHMARK(BM_SeparationOracle)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_Aaml(benchmark::State& state) {
  const wsn::Network net = make_net(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::aaml(net));
  }
}
BENCHMARK(BM_Aaml)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_MstBaseline(benchmark::State& state) {
  const wsn::Network net = make_net(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::mst_baseline(net));
  }
}
BENCHMARK(BM_MstBaseline)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_PruferRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // A path tree keeps the heaps busy (worst-ish case for the codec).
  prufer::ParentArray parent(static_cast<std::size_t>(n));
  parent[0] = -1;
  for (int v = 1; v < n; ++v) parent[static_cast<std::size_t>(v)] = v - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prufer::decode(prufer::encode(parent), n));
  }
}
BENCHMARK(BM_PruferRoundTrip)->Arg(16)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_PacketRound(benchmark::State& state) {
  const scenario::DflSystem sys = scenario::make_dfl_system();
  const baselines::MstResult mst = baselines::mst_baseline(sys.network);
  Rng rng(3);
  radio::RetxPolicy retx;
  retx.enabled = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio::simulate_round(sys.network, mst.tree, retx, rng));
  }
}
BENCHMARK(BM_PacketRound)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_SimplexDense(benchmark::State& state) {
  // A dense random LP of the size IRA produces at n = 16.
  Rng rng(13);
  lp::Model model;
  const int vars = static_cast<int>(state.range(0));
  for (int v = 0; v < vars; ++v) model.add_variable(rng.uniform(0.1, 2.0), 0.0, 1.0);
  lp::RowId total = model.add_constraint(lp::Relation::kEqual, vars / 3.0);
  for (int v = 0; v < vars; ++v) model.add_term(total, v, 1.0);
  for (int r = 0; r < vars / 2; ++r) {
    lp::RowId row = model.add_constraint(lp::Relation::kLessEqual, 2.0);
    for (int t = 0; t < 6; ++t) {
      model.add_term(row, static_cast<int>(rng.uniform_int(0, vars - 1)), 1.0);
    }
  }
  const lp::SimplexSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(model));
  }
}
BENCHMARK(BM_SimplexDense)->Arg(60)->Arg(120)->Arg(240)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
