#pragma once

/// \file helpers.hpp
/// \brief Shared fixtures: the paper's toy instances and small generators.

#include <vector>

#include "common/rng.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::testing {

/// The toy network of Fig. 4: sink 0 plus nodes 1..5.  Links (with PRR):
///   (1,0): 1.0   (4,0): 0.8   (5,0): 1.0
///   (2,4): 0.5   (3,4): 0.9   (2,3): 0.9
/// Fig. 4(a) uses {1-0, 4-0, 5-0, 2-4, 3-4}: reliability 0.36.
/// Fig. 4(b) uses {1-0, 4-0, 5-0, 2-3, 3-4}: reliability 0.648.
struct ToyNetwork {
  wsn::Network net{6, 0};
  wsn::EdgeId e10, e40, e50, e24, e34, e23;

  ToyNetwork() {
    e10 = net.add_link(1, 0, 1.0);
    e40 = net.add_link(4, 0, 0.8);
    e50 = net.add_link(5, 0, 1.0);
    e24 = net.add_link(2, 4, 0.5);
    e34 = net.add_link(3, 4, 0.9);
    e23 = net.add_link(2, 3, 0.9);
  }

  wsn::AggregationTree tree_a() const {
    return wsn::AggregationTree::from_edges(
        net, std::vector<wsn::EdgeId>{e10, e40, e50, e24, e34});
  }
  wsn::AggregationTree tree_b() const {
    return wsn::AggregationTree::from_edges(
        net, std::vector<wsn::EdgeId>{e10, e40, e50, e23, e34});
  }
};

/// Dense random connected network for property tests: all-pairs candidate
/// links kept with probability `p`, redrawn until connected.
inline wsn::Network small_random_network(int n, double p, Rng& rng,
                                         double prr_lo = 0.5, double prr_hi = 1.0) {
  for (;;) {
    wsn::Network net(n, 0);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.bernoulli(p)) net.add_link(u, v, rng.uniform(prr_lo, prr_hi));
      }
    }
    try {
      net.validate();
      return net;
    } catch (const InfeasibleError&) {
      continue;  // disconnected draw; retry
    }
  }
}

/// Uniform random spanning tree-ish: random parent assignment by random
/// BFS order over a connected network (not uniform over trees, but varied).
inline wsn::AggregationTree random_tree(const wsn::Network& net, Rng& rng) {
  const int n = net.node_count();
  std::vector<int> order;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  std::vector<int> frontier{net.sink()};
  seen[static_cast<std::size_t>(net.sink())] = true;
  while (!frontier.empty()) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frontier.size()) - 1));
    const int v = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
    order.push_back(v);
    for (graph::EdgeId id : net.topology().incident(v)) {
      const int w = net.topology().edge(id).other(v);
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        parent[static_cast<std::size_t>(w)] = v;
        frontier.push_back(w);
      }
    }
  }
  return wsn::AggregationTree::from_parents(net, parent);
}

}  // namespace mrlc::testing
