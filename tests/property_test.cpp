/// \file property_test.cpp
/// \brief Parameterized property sweeps across the whole stack
/// (TEST_P / INSTANTIATE_TEST_SUITE_P): each property is checked over a
/// grid of instance shapes rather than a single hand-picked case.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "baselines/greedy_mrlc.hpp"
#include "baselines/mst_baseline.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/exact.hpp"
#include "core/feasibility.hpp"
#include "core/ira.hpp"
#include "core/lp_formulation.hpp"
#include "core/separation.hpp"
#include "core/variant.hpp"
#include "graph/enumeration.hpp"
#include "graph/mst.hpp"
#include "helpers.hpp"
#include "lp/simplex.hpp"
#include "prufer/codec.hpp"
#include "radio/packet_sim.hpp"
#include "wsn/metrics.hpp"

namespace mrlc {
namespace {

using mrlc::testing::random_tree;
using mrlc::testing::small_random_network;

// ------------------------------------------------------ Prüfer sweeps --

class PruferSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(PruferSizeSweep, RoundTripManyRandomTrees) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 101);
  for (int trial = 0; trial < 40; ++trial) {
    const wsn::Network net = small_random_network(n, 0.8, rng);
    const wsn::AggregationTree tree = random_tree(net, rng);
    const prufer::Code code = prufer::encode(tree.parents());
    EXPECT_EQ(static_cast<int>(code.size()), n - 2);
    EXPECT_EQ(prufer::decode(code, n), tree.parents());
    // Eq. 23 on the same tree.
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(prufer::children_from_code(code, n, v), tree.children_count(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PruferSizeSweep,
                         ::testing::Values(3, 4, 5, 8, 13, 21, 34, 55));

// ----------------------------------------------- MST vs enumeration ----

struct GraphShape {
  int nodes;
  double density;
};

class MstAgreementSweep : public ::testing::TestWithParam<GraphShape> {};

TEST_P(MstAgreementSweep, PrimKruskalAndEnumerationAgree) {
  const auto [n, p] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000) + static_cast<std::uint64_t>(p * 100));
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net = small_random_network(n, p, rng, 0.3, 1.0);
    const auto prim = graph::prim_mst(net.topology(), 0);
    const auto kruskal = graph::kruskal_mst(net.topology());
    ASSERT_TRUE(prim.has_value());
    ASSERT_TRUE(kruskal.has_value());
    EXPECT_NEAR(prim->total_weight, kruskal->total_weight, 1e-9);

    double enumerated_best = 1e300;
    graph::for_each_spanning_tree(net.topology(), [&](const graph::SpanningTree& t) {
      enumerated_best = std::min(enumerated_best, t.total_weight);
      return true;
    });
    EXPECT_NEAR(enumerated_best, prim->total_weight, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MstAgreementSweep,
                         ::testing::Values(GraphShape{5, 0.5}, GraphShape{5, 0.9},
                                           GraphShape{6, 0.6}, GraphShape{7, 0.45},
                                           GraphShape{7, 0.8}, GraphShape{8, 0.4}));

// ------------------------------------------------- IRA contract sweep --

struct IraCase {
  int nodes;
  double density;
  int bound_children;  ///< LC = lifetime at this children count
};

class IraContractSweep : public ::testing::TestWithParam<IraCase> {};

TEST_P(IraContractSweep, DirectModeContractHolds) {
  const auto [n, p, children] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 7919 + children));
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IterativeRelaxation solver(options);
  for (int trial = 0; trial < 8; ++trial) {
    const wsn::Network net = small_random_network(n, p, rng, 0.5, 1.0);
    const double bound =
        net.energy_model().node_lifetime(3000.0, children) * 0.99;
    core::IraResult res;
    try {
      res = solver.solve(net, bound);
    } catch (const InfeasibleError&) {
      // Direct-mode infeasibility must be a real proof.
      EXPECT_FALSE(core::lp_lifetime_feasible(net, bound)) << "trial " << trial;
      continue;
    }
    // Spanning tree with consistent metrics...
    EXPECT_EQ(res.tree.edge_ids().size(), static_cast<std::size_t>(n - 1));
    EXPECT_NEAR(res.cost, wsn::tree_cost(net, res.tree), 1e-9);
    // ...children violation bounded by +2...
    for (int v = 0; v < n; ++v) {
      EXPECT_LE(static_cast<double>(res.tree.children_count(v)),
                net.max_children_real(v, bound) + 2.0 + 1e-6)
          << "trial " << trial << " node " << v;
    }
    // ...and cost never above the unconstrained-tree cost ceiling is not
    // meaningful; instead: cost at least the MST lower bound.
    const auto mst = graph::prim_mst(net.topology(), 0);
    ASSERT_TRUE(mst.has_value());
    EXPECT_GE(res.cost, mst->total_weight - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IraContractSweep,
    ::testing::Values(IraCase{6, 0.7, 2}, IraCase{6, 0.7, 4}, IraCase{8, 0.5, 3},
                      IraCase{8, 0.8, 5}, IraCase{10, 0.4, 4}, IraCase{10, 0.7, 6},
                      IraCase{12, 0.5, 5}));

class IraExactSweep : public ::testing::TestWithParam<IraCase> {};

TEST_P(IraExactSweep, DirectModeCostAtMostExactOptimum) {
  const auto [n, p, children] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 104729 + children));
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IterativeRelaxation solver(options);
  for (int trial = 0; trial < 6; ++trial) {
    const wsn::Network net = small_random_network(n, p, rng, 0.5, 1.0);
    const double bound = net.energy_model().node_lifetime(3000.0, children) * 0.99;
    const auto exact = core::exact_mrlc(net, bound);
    if (!exact.has_value()) continue;
    core::IraResult res;
    try {
      res = solver.solve(net, bound);
    } catch (const InfeasibleError&) {
      ADD_FAILURE() << "IRA infeasible though the exact solver found a tree";
      continue;
    }
    // Relaxing the bound can only help: cost(IRA, +2 slack) <= OPT(LC).
    EXPECT_LE(res.cost, exact->cost + 1e-6) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, IraExactSweep,
                         ::testing::Values(IraCase{6, 0.7, 2}, IraCase{7, 0.6, 3},
                                           IraCase{7, 0.9, 4}, IraCase{8, 0.5, 3}));

// ------------------------------------------- warm vs cold LP identity --

// Property: warm-started LP reoptimization is an implementation detail.
// IRA with warm_start on and off must return the same tree and the same
// per-solve counters on every instance — everything except the pivot count
// (simplex_iterations), which is exactly what warm starting shrinks.
class WarmColdSweep : public ::testing::TestWithParam<IraCase> {};

TEST_P(WarmColdSweep, WarmAndColdProduceIdenticalTreesAndCounters) {
  const auto [n, p, children] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 50423 + children));
  core::IraOptions warm_options;
  warm_options.bound_mode = core::BoundMode::kDirect;
  warm_options.warm_start = true;
  core::IraOptions cold_options = warm_options;
  cold_options.warm_start = false;
  const core::IterativeRelaxation warm_solver(warm_options);
  const core::IterativeRelaxation cold_solver(cold_options);

  long long warm_pivots = 0;
  long long cold_pivots = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const wsn::Network net = small_random_network(n, p, rng, 0.5, 1.0);
    const double bound =
        net.energy_model().node_lifetime(3000.0, children) * 0.99;
    core::IraResult warm_res;
    core::IraResult cold_res;
    bool warm_threw = false;
    bool cold_threw = false;
    try {
      warm_res = warm_solver.solve(net, bound);
    } catch (const InfeasibleError&) {
      warm_threw = true;
    }
    try {
      cold_res = cold_solver.solve(net, bound);
    } catch (const InfeasibleError&) {
      cold_threw = true;
    }
    ASSERT_EQ(warm_threw, cold_threw) << "trial " << trial;
    if (warm_threw) continue;

    // Bit-identical trees and metrics derived from them.
    EXPECT_EQ(warm_res.tree.parents(), cold_res.tree.parents())
        << "trial " << trial;
    EXPECT_EQ(warm_res.cost, cold_res.cost) << "trial " << trial;
    EXPECT_EQ(warm_res.reliability, cold_res.reliability) << "trial " << trial;
    EXPECT_EQ(warm_res.lifetime, cold_res.lifetime) << "trial " << trial;

    // Every counter but the pivot count agrees: the cut pool feeds
    // separation identically in both modes, so the sequence of fractional
    // points, cuts, and removals is the same.
    EXPECT_EQ(warm_res.stats.outer_iterations, cold_res.stats.outer_iterations)
        << "trial " << trial;
    EXPECT_EQ(warm_res.stats.lp_solves, cold_res.stats.lp_solves)
        << "trial " << trial;
    EXPECT_EQ(warm_res.stats.cuts_added, cold_res.stats.cuts_added)
        << "trial " << trial;
    EXPECT_EQ(warm_res.stats.edges_removed, cold_res.stats.edges_removed)
        << "trial " << trial;
    EXPECT_EQ(warm_res.stats.constraints_removed,
              cold_res.stats.constraints_removed)
        << "trial " << trial;
    EXPECT_EQ(warm_res.stats.used_fallback, cold_res.stats.used_fallback)
        << "trial " << trial;
    warm_pivots += warm_res.stats.simplex_iterations;
    cold_pivots += cold_res.stats.simplex_iterations;
  }
  // In aggregate the warm path never pivots more (equal only if no cut
  // rounds happened anywhere in the sweep).
  EXPECT_LE(warm_pivots, cold_pivots);
}

INSTANTIATE_TEST_SUITE_P(Cases, WarmColdSweep,
                         ::testing::Values(IraCase{8, 0.6, 3}, IraCase{10, 0.5, 4},
                                           IraCase{12, 0.4, 4}, IraCase{14, 0.5, 5}));

// ------------------------------------------- subtour LP integrality ----

class SubtourIntegralitySweep : public ::testing::TestWithParam<GraphShape> {};

TEST_P(SubtourIntegralitySweep, ExtremePointsAreIntegral) {
  const auto [n, p] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  const lp::SimplexSolver solver;
  for (int trial = 0; trial < 6; ++trial) {
    const wsn::Network net = small_random_network(n, p, rng, 0.3, 1.0);
    core::MrlcLpFormulation formulation(
        net.topology(),
        std::vector<std::optional<double>>(static_cast<std::size_t>(n)));
    const core::CutLpResult res = core::solve_with_subtour_cuts(formulation, solver);
    ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);
    for (double x : res.edge_values) {
      EXPECT_TRUE(x < 1e-6 || x > 1.0 - 1e-6) << "fractional extreme point";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SubtourIntegralitySweep,
                         ::testing::Values(GraphShape{5, 0.8}, GraphShape{7, 0.5},
                                           GraphShape{9, 0.4}, GraphShape{11, 0.35},
                                           GraphShape{13, 0.3}));

// ------------------------------------------------ packet-sim physics ---

class PacketQualitySweep : public ::testing::TestWithParam<double> {};

TEST_P(PacketQualitySweep, RetxCostMatchesInverseQuality) {
  const double q = GetParam();
  wsn::Network net(8, 0);
  for (int v = 1; v < 8; ++v) net.add_link(v - 1, v, q);
  const auto tree = wsn::AggregationTree::from_parents(
      net, std::vector<int>{-1, 0, 1, 2, 3, 4, 5, 6});
  Rng rng(static_cast<std::uint64_t>(q * 1e6));
  radio::RetxPolicy retx;
  retx.enabled = true;
  const radio::AggregateResult agg = radio::simulate_rounds(net, tree, retx, 4000, rng);
  EXPECT_NEAR(agg.avg_packets_per_round, 7.0 / q, 7.0 / q * 0.08);
}

TEST_P(PacketQualitySweep, NoRetxSuccessMatchesReliabilityProduct) {
  const double q = GetParam();
  wsn::Network net(6, 0);
  for (int v = 1; v < 6; ++v) net.add_link(v - 1, v, q);
  const auto tree =
      wsn::AggregationTree::from_parents(net, std::vector<int>{-1, 0, 1, 2, 3, 4});
  Rng rng(static_cast<std::uint64_t>(q * 2e6) + 3);
  const radio::AggregateResult agg =
      radio::simulate_rounds(net, tree, radio::RetxPolicy{}, 30000, rng);
  EXPECT_NEAR(agg.round_success_ratio, std::pow(q, 5), 0.015);
}

INSTANTIATE_TEST_SUITE_P(Qualities, PacketQualitySweep,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99));

// ------------------------------------------------- greedy sanity sweep --

class GreedySweep : public ::testing::TestWithParam<IraCase> {};

TEST_P(GreedySweep, GreedyWithinCapsIsValid) {
  const auto [n, p, children] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 613 + children));
  for (int trial = 0; trial < 8; ++trial) {
    const wsn::Network net = small_random_network(n, p, rng, 0.5, 1.0);
    const double bound = net.energy_model().node_lifetime(3000.0, children);
    const baselines::GreedyMrlcResult res = baselines::greedy_mrlc(net, bound);
    EXPECT_EQ(res.tree.edge_ids().size(), static_cast<std::size_t>(n - 1));
    if (res.cap_relaxations == 0) {
      EXPECT_TRUE(res.meets_bound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, GreedySweep,
                         ::testing::Values(IraCase{8, 0.6, 3}, IraCase{10, 0.5, 4},
                                           IraCase{12, 0.4, 5}, IraCase{16, 0.7, 6}));

// Property: a sharded counter is lossless for any writer count, including
// more writers than shards (slots are reused round-robin) — N threads each
// adding M times always merges to exactly N * M.
struct ShardLoad {
  int threads;
  int increments;
};

class ShardedCounterSweep : public ::testing::TestWithParam<ShardLoad> {};

TEST_P(ShardedCounterSweep, NThreadsTimesMIncrementsMergeExactly) {
  const auto [threads, increments] = GetParam();
  metrics::set_enabled(true);
  metrics::Counter& c = metrics::counter(
      "test.property_sharded_" + std::to_string(threads) + "_" +
      std::to_string(increments));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&c, increments = increments] {
      for (int i = 0; i < increments; ++i) c.add();
    });
  }
  for (std::thread& thread : pool) thread.join();
  EXPECT_EQ(c.value(), static_cast<long long>(threads) * increments);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

INSTANTIATE_TEST_SUITE_P(Loads, ShardedCounterSweep,
                         ::testing::Values(ShardLoad{1, 10'000},
                                           ShardLoad{2, 25'000},
                                           ShardLoad{8, 10'000},
                                           ShardLoad{17, 3'000},   // > kShardCount
                                           ShardLoad{32, 1'000}));

// Property: for any sample distribution, a histogram filled concurrently is
// indistinguishable (count, sum, extrema, quantiles) from one filled
// serially with the same multiset — shard merging introduces no error on
// top of the documented bucket resolution.
class ShardedHistogramSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShardedHistogramSweep, ConcurrentFillMatchesSerialFill) {
  const int distribution = GetParam();
  metrics::set_enabled(true);
  const auto sample = [distribution](int t, int i) -> long long {
    switch (distribution) {
      case 0: return i % 7;                                  // tiny exact values
      case 1: return (i * 37 + t * 101) % 5000;              // mid-range mix
      case 2: return (1LL << (i % 40)) + t;                  // log-spread
      default: return (i % 11 == 0) ? 1'000'000'000LL : i % 3;  // heavy tail
    }
  };
  metrics::Histogram& concurrent = metrics::histogram(
      "test.property_hist_conc_" + std::to_string(distribution));
  metrics::Histogram& serial = metrics::histogram(
      "test.property_hist_serial_" + std::to_string(distribution));
  constexpr int kThreads = 6;
  constexpr int kPerThread = 3'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&concurrent, t, &sample] {
      for (int i = 0; i < kPerThread; ++i) concurrent.record(sample(t, i));
    });
  }
  for (std::thread& thread : pool) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) serial.record(sample(t, i));
  }
  EXPECT_EQ(concurrent.count(), serial.count());
  EXPECT_EQ(concurrent.sum(), serial.sum());
  EXPECT_EQ(concurrent.min(), serial.min());
  EXPECT_EQ(concurrent.max(), serial.max());
  for (const double p : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(concurrent.percentile(p), serial.percentile(p)) << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, ShardedHistogramSweep,
                         ::testing::Values(0, 1, 2, 3));

// --------------------------------------------- variant edge-cost laws --

class VariantCostSweep : public ::testing::TestWithParam<core::VariantId> {};

// Every variant's edge cost is a penalty on lossiness: finite,
// non-negative, and monotone non-increasing in the link's PRR (the
// contract pinned in core/variant.hpp — the cut loop and branch-and-bound
// both assume costs never reward a worse channel).
TEST_P(VariantCostSweep, CostsAreFiniteNonNegativeAndMonotoneInPrr) {
  const core::VariantId id = GetParam();
  const core::ProblemVariant& variant = core::problem_variant(id);
  Rng rng(4242 + static_cast<std::uint64_t>(id));
  for (int trial = 0; trial < 8; ++trial) {
    wsn::Network net = small_random_network(9, 0.6, rng, 0.3, 0.95);
    for (const graph::EdgeId e : net.topology().alive_edge_ids()) {
      const double before = variant.edge_cost(net, e);
      EXPECT_TRUE(std::isfinite(before)) << core::to_string(id);
      EXPECT_GE(before, 0.0) << core::to_string(id);
      // Strictly improving the channel strictly lowers the cost (every
      // variant's cost is strictly decreasing in q on (0, 1]).
      net.set_link_prr(e, net.link_prr(e) + 0.04);
      const double after = variant.edge_cost(net, e);
      EXPECT_LT(after, before) << core::to_string(id) << " edge " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, VariantCostSweep, ::testing::ValuesIn(core::all_variants()),
    [](const ::testing::TestParamInfo<core::VariantId>& info) {
      return std::string(core::to_string(info.param));
    });

}  // namespace
}  // namespace mrlc
