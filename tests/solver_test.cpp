#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/solver.hpp"
#include "helpers.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {
namespace {

using mrlc::testing::small_random_network;

TEST(MrlcSolver, UsesStrictModeWhenItWorks) {
  mrlc::testing::ToyNetwork toy;
  const SolveReport report = MrlcSolver().solve(toy.net, 1.0e6);
  EXPECT_EQ(report.mode, SolveMode::kStrict);
  EXPECT_TRUE(report.result.meets_bound);
  EXPECT_FALSE(report.achievable.has_value());
  EXPECT_NE(report.narrative.find("strict"), std::string::npos);
}

TEST(MrlcSolver, FallsBackToDirectWhenStrictIsInfeasible) {
  // A bound near the max achievable: strict L' explodes, direct works.
  Rng rng(201);
  int fallbacks = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net = small_random_network(9, 0.7, rng, 0.6, 1.0);
    const LifetimeBracket bracket = bracket_max_lifetime(net);
    try {
      const SolveReport report = MrlcSolver().solve(net, bracket.lower * 0.999);
      if (report.mode == SolveMode::kDirectFallback) ++fallbacks;
      // Either way the result is a valid spanning tree.
      EXPECT_EQ(report.result.tree.edge_ids().size(),
                static_cast<std::size_t>(net.node_count() - 1));
    } catch (const InfeasibleError&) {
      // LP-infeasible at the constructive bound cannot happen.
      ADD_FAILURE() << "bound below the constructive optimum must be solvable";
    }
  }
  EXPECT_GT(fallbacks, 5) << "near-max bounds should usually need the fallback";
}

TEST(MrlcSolver, InfeasibleErrorCarriesAchievableBracket) {
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(1, 2, 0.9);
  const double unachievable =
      net.energy_model().node_lifetime(3000.0, 1) * 1.05;
  try {
    MrlcSolver().solve(net, unachievable);
    FAIL() << "expected InfeasibleError";
  } catch (const InfeasibleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("achievable lifetime is in ["), std::string::npos) << what;
  }
}

TEST(MrlcSolver, FallbackCanBeDisabled) {
  Rng rng(202);
  SolverOptions options;
  options.allow_direct_fallback = false;
  const MrlcSolver solver(options);
  int logic_errors = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net = small_random_network(9, 0.7, rng, 0.6, 1.0);
    const LifetimeBracket bracket = bracket_max_lifetime(net);
    try {
      solver.solve(net, bracket.lower * 0.999);
    } catch (const std::logic_error&) {
      ++logic_errors;  // strict failed, LP feasible, fallback forbidden
    } catch (const InfeasibleError&) {
    }
  }
  EXPECT_GT(logic_errors, 0);
}

TEST(MrlcSolver, CertificationReportsGap) {
  Rng rng(203);
  SolverOptions options;
  options.certify_with_exact = true;
  const MrlcSolver solver(options);
  for (int trial = 0; trial < 5; ++trial) {
    const wsn::Network net = small_random_network(8, 0.7, rng, 0.6, 1.0);
    const double bound = net.energy_model().node_lifetime(3000.0, 6);
    const SolveReport report = solver.solve(net, bound);
    ASSERT_TRUE(report.exact_cost.has_value());
    ASSERT_TRUE(report.optimality_gap.has_value());
    // Strict-mode result can exceed the LC-optimum (it solves at L'), but
    // never undercut it.
    EXPECT_GE(*report.optimality_gap, -1e-9);
    EXPECT_NE(report.narrative.find("optimality gap"), std::string::npos);
  }
}

TEST(MrlcSolver, RejectsBadInput) {
  mrlc::testing::ToyNetwork toy;
  EXPECT_THROW(MrlcSolver().solve(toy.net, 0.0), std::invalid_argument);
  wsn::Network disconnected(3, 0);
  disconnected.add_link(0, 1, 0.9);
  EXPECT_THROW(MrlcSolver().solve(disconnected, 1.0), InfeasibleError);
}

}  // namespace
}  // namespace mrlc::core
