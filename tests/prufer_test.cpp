#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "prufer/codec.hpp"
#include "prufer/updates.hpp"

namespace mrlc::prufer {
namespace {

/// The paper's running example (Fig. 5(a)): 9 nodes, root 0.
/// Children of 0: {7, 4, 8}; children of 2: {6}; children of 4: {3, 2};
/// children of 8: {5, 1}.
ParentArray paper_tree() {
  //            0  1  2  3  4  5  6  7  8
  return {     -1, 8, 4, 4, 0, 8, 2, 0, 0};
}

/// Generates a random parent array on n nodes rooted at 0: each node picks
/// a parent among nodes already attached (random recursive tree).
ParentArray random_parent_array(int n, Rng& rng) {
  ParentArray parent(static_cast<std::size_t>(n), -1);
  std::vector<int> order;
  for (int v = 1; v < n; ++v) order.push_back(v);
  rng.shuffle(order);
  std::vector<int> attached{0};
  for (int v : order) {
    parent[static_cast<std::size_t>(v)] = attached[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(attached.size()) - 1))];
    attached.push_back(v);
  }
  return parent;
}

// ---------------------------------------------------------------- codec --

TEST(PruferEncode, PaperExampleFig5) {
  // The paper reports P = (0, 2, 8, 4, 4, 0, 8).
  EXPECT_EQ(encode(paper_tree()), (Code{0, 2, 8, 4, 4, 0, 8}));
}

TEST(PruferDecode, PaperExampleSequence) {
  // The paper reports D = (7, 6, 5, 3, 2, 4, 1, 8, 0).
  const Code p{0, 2, 8, 4, 4, 0, 8};
  EXPECT_EQ(decode_sequence(p, 9),
            (std::vector<int>{7, 6, 5, 3, 2, 4, 1, 8, 0}));
}

TEST(PruferDecode, PaperExampleParents) {
  const Code p{0, 2, 8, 4, 4, 0, 8};
  EXPECT_EQ(decode(p, 9), paper_tree());
}

TEST(PruferCodec, TwoNodeTree) {
  const ParentArray two{-1, 0};
  EXPECT_TRUE(encode(two).empty());
  EXPECT_EQ(decode({}, 2), two);
}

TEST(PruferCodec, StarCenteredAtSink) {
  // This is the case where the paper's literal "append p_{n-2}" breaks;
  // the implementation must still round-trip it.
  const ParentArray star{-1, 0, 0, 0};
  const Code code = encode(star);
  EXPECT_EQ(code, (Code{0, 0}));
  EXPECT_EQ(decode(code, 4), star);
}

TEST(PruferCodec, PathTree) {
  const ParentArray path{-1, 0, 1, 2, 3};
  const Code code = encode(path);
  EXPECT_EQ(decode(code, 5), path);
}

TEST(PruferCodec, RoundTripRandomTrees) {
  Rng rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 24));
    const ParentArray parent = random_parent_array(n, rng);
    const Code code = encode(parent);
    EXPECT_EQ(static_cast<int>(code.size()), n - 2);
    EXPECT_EQ(decode(code, n), parent) << "trial " << trial << " n=" << n;
  }
}

TEST(PruferCodec, EveryCodeDecodesToATree) {
  // Prüfer is a bijection: any sequence in [0, n)^(n-2) is a valid tree.
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(3, 12));
    Code code(static_cast<std::size_t>(n - 2));
    for (int& c : code) c = static_cast<int>(rng.uniform_int(0, n - 1));
    const ParentArray parent = decode(code, n);
    EXPECT_NO_THROW(validate_parent_array(parent));
    EXPECT_EQ(encode(parent), code) << "bijection must hold";
  }
}

TEST(PruferCodec, CayleyCountViaDistinctCodes) {
  // All 4^2 = 16 codes on 4 nodes decode to 16 distinct labeled trees.
  std::set<ParentArray> trees;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      trees.insert(decode({a, b}, 4));
    }
  }
  EXPECT_EQ(trees.size(), 16u);
}

TEST(PruferChildren, Eq23MatchesDecodedTree) {
  Rng rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 16));
    const ParentArray parent = random_parent_array(n, rng);
    const Code code = encode(parent);
    std::map<int, int> children;
    for (int v = 1; v < n; ++v) ++children[parent[static_cast<std::size_t>(v)]];
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(children_from_code(code, n, v), children[v])
          << "trial " << trial << " node " << v;
    }
  }
}

TEST(PruferValidation, RejectsMalformedInput) {
  EXPECT_THROW(validate_parent_array({}), std::invalid_argument);
  EXPECT_THROW(validate_parent_array({0}), std::invalid_argument);       // root not -1
  EXPECT_THROW(validate_parent_array({-1, 5}), std::invalid_argument);   // out of range
  EXPECT_THROW(validate_parent_array({-1, 1}), std::invalid_argument);   // self-parent
  EXPECT_THROW(validate_parent_array({-1, 2, 1}), std::invalid_argument);  // cycle
  EXPECT_THROW(decode({7}, 3), std::invalid_argument);  // entry out of range
  EXPECT_THROW(decode({0, 0}, 3), std::invalid_argument);  // wrong length
  EXPECT_THROW(encode({-1}), std::invalid_argument);  // n < 2
}

// -------------------------------------------------------------- updates --

TEST(PruferUpdates, SubtreeMembersMatchesExample) {
  // Paper: removing (4, 0) separates component {6, 3, 2, 4}.
  const auto members = subtree_members(paper_tree(), 4);
  EXPECT_EQ(std::set<int>(members.begin(), members.end()),
            (std::set<int>{2, 3, 4, 6}));
}

TEST(PruferUpdates, ParentChangeMatchesPaperExample) {
  // Paper Fig. 5(b): node 4 changes parent from 0 to 7; the updated code is
  // a permutation-equivalent tree: verify by decoding.
  const Code p{0, 2, 8, 4, 4, 0, 8};
  const Code p2 = apply_parent_change(p, 9, 4, 7);
  const ParentArray parent = decode(p2, 9);
  EXPECT_EQ(parent[4], 7);
  // All other parent relations are untouched.
  const ParentArray before = paper_tree();
  for (int v = 0; v < 9; ++v) {
    if (v != 4) {
      EXPECT_EQ(parent[static_cast<std::size_t>(v)],
                before[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(PruferUpdates, ParentChangeRejectsCycles) {
  const Code p{0, 2, 8, 4, 4, 0, 8};
  // 2 is in 4's subtree: 4 -> 2 would be a cycle.
  EXPECT_THROW(apply_parent_change(p, 9, 4, 2), InfeasibleError);
  EXPECT_THROW(apply_parent_change(p, 9, 0, 3), std::invalid_argument);  // sink
  EXPECT_THROW(apply_parent_change(p, 9, 3, 3), std::invalid_argument);
}

TEST(PruferUpdates, ParentChangeIsReplicaDeterministic) {
  // Two replicas applying the same record end with identical codes.
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 12;
    const ParentArray parent = random_parent_array(n, rng);
    const Code code = encode(parent);
    // Pick a random valid parent change.
    const int child = static_cast<int>(rng.uniform_int(1, n - 1));
    const auto members = subtree_members(parent, child);
    std::vector<int> outside;
    for (int v = 0; v < n; ++v) {
      if (std::find(members.begin(), members.end(), v) == members.end()) {
        outside.push_back(v);
      }
    }
    const int new_parent = outside[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(outside.size()) - 1))];
    const Code a = apply_parent_change(code, n, child, new_parent);
    const Code b = apply_parent_change(code, n, child, new_parent);
    EXPECT_EQ(a, b);
    EXPECT_EQ(decode(a, n)[static_cast<std::size_t>(child)], new_parent);
  }
}

TEST(PruferUpdates, EvertAndAttachReversesPath) {
  // Take the paper tree, detach subtree at 4 and re-root it at 6 attached
  // to node 5: path 6 -> 2 -> 4 reverses.
  ParentArray parent = paper_tree();
  evert_and_attach(parent, 4, 6, 5);
  EXPECT_EQ(parent[6], 5);
  EXPECT_EQ(parent[2], 6);
  EXPECT_EQ(parent[4], 2);
  EXPECT_EQ(parent[3], 4);  // untouched branch
  EXPECT_NO_THROW(validate_parent_array(parent));
}

TEST(PruferUpdates, EvertDegenerateCaseIsPlainReparent) {
  ParentArray parent = paper_tree();
  evert_and_attach(parent, 4, 4, 7);  // new local root == subtree root
  EXPECT_EQ(parent[4], 7);
  EXPECT_NO_THROW(validate_parent_array(parent));
}

TEST(PruferUpdates, EvertRejectsBadInput) {
  ParentArray parent = paper_tree();
  // 5 is not in 4's subtree.
  EXPECT_THROW(evert_and_attach(parent, 4, 5, 7), std::invalid_argument);
  // attach target inside the subtree.
  ParentArray parent2 = paper_tree();
  EXPECT_THROW(evert_and_attach(parent2, 4, 6, 3), std::invalid_argument);
}

}  // namespace
}  // namespace mrlc::prufer
