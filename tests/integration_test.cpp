#include <gtest/gtest.h>

#include "baselines/aaml.hpp"
#include "baselines/mst_baseline.hpp"
#include "common/rng.hpp"
#include "core/ira.hpp"
#include "distributed/maintainer.hpp"
#include "radio/packet_sim.hpp"
#include "scenario/dfl.hpp"
#include "scenario/random_net.hpp"
#include "wsn/metrics.hpp"

/// End-to-end flows mirroring the paper's evaluation pipeline
/// (Section VII): scenario -> algorithms -> metrics -> protocol.

namespace mrlc {
namespace {

/// The qualitative Fig. 7 pipeline: on the DFL system, IRA at LC = L_AAML
/// must dominate AAML on cost/reliability and approach MST as the bound
/// loosens.
TEST(EndToEnd, DflSystemRankingMatchesFig7) {
  const scenario::DflSystem sys = scenario::make_dfl_system();

  // AAML runs on the >= 0.95-PRR-filtered graph, as in the paper.
  const wsn::Network filtered = scenario::filter_links(sys.network, 0.95);
  const baselines::AamlResult aaml = baselines::aaml(filtered);
  const baselines::MstResult mst = baselines::mst_baseline(sys.network);

  // IRA in the paper's evaluation regime (direct bound; see ira.hpp).
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IterativeRelaxation ira_solver(options);
  const core::IraResult ira1 = ira_solver.solve(sys.network, aaml.lifetime);
  const core::IraResult ira_tight =
      ira_solver.solve(sys.network, 0.5 * aaml.lifetime);

  // Lifetime guarantee at LC = L_AAML (the bound is loose enough here that
  // the direct relaxation meets it exactly).
  EXPECT_GE(ira1.lifetime, aaml.lifetime * (1.0 - 1e-12));

  // Cost ordering: MST <= IRA(0.5 LC) <= IRA(LC) << AAML.
  EXPECT_LE(mst.cost, ira_tight.cost + 1e-9);
  EXPECT_LE(ira_tight.cost, ira1.cost + 1e-9);
  EXPECT_LT(ira1.cost, aaml.cost);

  // Reliability ordering mirrors cost.
  EXPECT_GT(ira1.reliability, aaml.reliability);
  EXPECT_GE(mst.reliability, ira1.reliability - 1e-12);
}

TEST(EndToEnd, RandomGraphSweepIraBeatsAamlOnCost) {
  // Fig. 8 in miniature: 10 random instances, same energy.
  Rng rng(42);
  int ira_wins = 0;
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IterativeRelaxation solver(options);
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net =
        scenario::make_random_network(scenario::RandomNetworkConfig{}, rng);
    const baselines::AamlResult aaml = baselines::aaml(net);
    const core::IraResult ira = solver.solve(net, aaml.lifetime);
    const baselines::MstResult mst = baselines::mst_baseline(net);
    EXPECT_GE(ira.lifetime, aaml.lifetime * (1.0 - 1e-12));
    EXPECT_GE(ira.cost, mst.cost - 1e-9);
    if (ira.cost < aaml.cost) ++ira_wins;
  }
  EXPECT_GE(ira_wins, 8) << "IRA should almost always beat AAML on cost";
}

TEST(EndToEnd, SimulatedDeliveryMatchesAnalyticReliability) {
  // Packet-level simulation agrees with Q(T) for the IRA tree on the DFL
  // system — the reliability metric is not just a formula.
  const scenario::DflSystem sys = scenario::make_dfl_system();
  const baselines::AamlResult aaml = baselines::aaml(sys.network);
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IraResult ira =
      core::IterativeRelaxation(options).solve(sys.network, aaml.lifetime);
  Rng rng(7);
  const radio::AggregateResult agg =
      radio::simulate_rounds(sys.network, ira.tree, radio::RetxPolicy{}, 20000, rng);
  EXPECT_NEAR(agg.round_success_ratio, ira.reliability, 0.02);
}

TEST(EndToEnd, MaintainerTracksDegradingDflSystem) {
  // Figs. 11-13 in miniature: 20 degradation rounds on the DFL instance.
  scenario::DflSystem sys = scenario::make_dfl_system();
  const baselines::AamlResult aaml = baselines::aaml(sys.network);
  const double bound = aaml.lifetime;
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IterativeRelaxation solver(options);
  const core::IraResult ira = solver.solve(sys.network, bound);
  dist::DistributedMaintainer maintainer(sys.network, ira.tree, bound);

  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    const auto edges = maintainer.tree().edge_ids();
    const wsn::EdgeId victim = edges[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(edges.size()) - 1))];
    sys.network.set_link_prr(victim,
                             std::max(0.3, sys.network.link_prr(victim) * 0.7));
    maintainer.on_link_degraded(sys.network, victim);

    // Invariants after every event.
    EXPECT_GE(wsn::network_lifetime(sys.network, maintainer.tree()), bound);
    EXPECT_EQ(maintainer.tree().edge_ids().size(), 15u);
  }

  // The distributed tree should stay within a reasonable factor of a fresh
  // centralized IRA solution on the final state.
  const core::IraResult fresh = solver.solve(sys.network, bound);
  const double distributed_cost = wsn::tree_cost(sys.network, maintainer.tree());
  EXPECT_GE(distributed_cost, fresh.cost - 1e-9);  // centralized is a lower bound

  // Message accounting sane: fewer than n messages per event on average.
  const auto& stats = maintainer.stats();
  EXPECT_EQ(stats.degradation_events, 20);
  if (stats.updates_applied > 0) {
    EXPECT_LT(static_cast<double>(stats.total_messages) /
                  static_cast<double>(stats.updates_applied),
              static_cast<double>(sys.network.node_count()));
  }
}

TEST(EndToEnd, HeterogeneousEnergyPipeline) {
  // Fig. 9 in miniature.
  Rng rng(13);
  scenario::RandomNetworkConfig config;
  config.energy_min_j = 1500.0;
  config.energy_max_j = 5000.0;
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IterativeRelaxation solver(options);
  for (int trial = 0; trial < 5; ++trial) {
    const wsn::Network net = scenario::make_random_network(config, rng);
    const baselines::AamlResult aaml = baselines::aaml(net);
    const core::IraResult ira = solver.solve(net, aaml.lifetime);
    const baselines::MstResult mst = baselines::mst_baseline(net);
    EXPECT_GE(ira.cost, mst.cost - 1e-9);
    // Direct-mode contract: the children bound may be exceeded by at most
    // two per node (Singh–Lau-style additive violation).  With energies as
    // heterogeneous as [1500 J, 5000 J] that can be a large *lifetime*
    // ratio on low-energy nodes, so the guarantee is stated in children.
    for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
      const double cap = net.max_children_real(v, aaml.lifetime);
      EXPECT_LE(static_cast<double>(ira.tree.children_count(v)), cap + 2.0 + 1e-6)
          << "trial " << trial << " node " << v;
    }
  }
}

}  // namespace
}  // namespace mrlc
