/// \file robustness_test.cpp
/// \brief The PR's acceptance battery: Budget token semantics, anytime
/// statuses (optimal / budget-exhausted / infeasible / cancelled), the
/// 25%-budget anytime gate with thread-count determinism, and the fault
/// injection harness (every recoverable fault recovers to the identical
/// tree; `parallel.task_fail` surfaces as a typed error).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "baselines/mst_baseline.hpp"
#include "common/budget.hpp"
#include "common/faultpoint.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/anytime.hpp"
#include "core/ira.hpp"
#include "helpers.hpp"
#include "lp/instance.hpp"
#include "scenario/dfl.hpp"
#include "wsn/io.hpp"

namespace mrlc {
namespace {

// --------------------------------------------------------------- Budget --

TEST(Budget, WorkLimitExhaustsAtTheLimit) {
  Budget budget;
  budget.set_work_limit(3);
  EXPECT_TRUE(budget.charge());   // used 1
  EXPECT_TRUE(budget.charge());   // used 2
  EXPECT_TRUE(budget.charge());   // used 3 == limit: still within budget
  EXPECT_FALSE(budget.charge());  // used 4 > limit
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.used(), 4);
  // Sticky: headroom never comes back.
  EXPECT_FALSE(budget.charge());
}

TEST(Budget, ZeroLimitIsHardZero) {
  // A zero work limit means "no work at all": the token is exhausted
  // before any charge, so entry checkpoints (IRA outer loop, cut loop)
  // bail out with zero units used instead of letting one pivot through.
  Budget budget;
  budget.set_work_limit(0);
  EXPECT_TRUE(budget.exhausted()) << "hard zero: exhausted before any charge";
  EXPECT_FALSE(budget.charge());
  EXPECT_TRUE(budget.exhausted());
}

TEST(Budget, BulkChargeCountsEveryUnit) {
  Budget budget;
  budget.set_work_limit(100);
  EXPECT_TRUE(budget.charge(100));
  EXPECT_FALSE(budget.charge(1));
  EXPECT_EQ(budget.used(), 101);
}

TEST(Budget, CancelIsStickyAndCrossesCharges) {
  Budget budget;
  EXPECT_TRUE(budget.charge());
  budget.cancel();
  EXPECT_TRUE(budget.cancelled());
  EXPECT_TRUE(budget.exhausted());
  EXPECT_FALSE(budget.charge());
}

TEST(Budget, ZeroDeadlineIsHardZero) {
  // `--deadline-ms 0` means "already expired", not "poll the clock after
  // the first 64-unit stride": the token is exhausted before any charge.
  Budget budget;
  budget.set_deadline_ms(0);
  EXPECT_TRUE(budget.exhausted()) << "hard zero: expired before any charge";
  EXPECT_FALSE(budget.charge());
}

TEST(Budget, GenerousDeadlineLeavesHeadroom) {
  // A far-future deadline never trips inside a short charge run (the clock
  // is polled at stride boundaries, so cross several of them).
  Budget budget;
  budget.set_deadline_ms(60'000);
  bool headroom = true;
  for (int i = 0; i < 256; ++i) headroom = budget.charge();
  EXPECT_TRUE(headroom);
  EXPECT_FALSE(budget.exhausted());
  EXPECT_TRUE(budget.has_deadline());
}

TEST(Budget, UnlimitedNeverExhausts) {
  Budget budget;
  EXPECT_TRUE(budget.charge(1'000'000));
  EXPECT_FALSE(budget.exhausted());
  EXPECT_FALSE(budget.has_deadline());
}

// -------------------------------------------------------------- anytime --

TEST(Anytime, UnlimitedRunMatchesPlainIra) {
  const testing::ToyNetwork toy;
  const double bound = baselines::mst_baseline(toy.net).lifetime;

  core::IraOptions direct;
  direct.bound_mode = core::BoundMode::kDirect;
  const core::IraResult plain =
      core::IterativeRelaxation(direct).solve(toy.net, bound);

  const core::AnytimeResult anytime = core::solve_anytime(toy.net, bound);
  EXPECT_EQ(anytime.status, core::AnytimeStatus::kOptimal);
  EXPECT_FALSE(anytime.from_incumbent);
  EXPECT_DOUBLE_EQ(anytime.cost, plain.cost);
  EXPECT_EQ(wsn::tree_to_string(anytime.tree), wsn::tree_to_string(plain.tree));
  EXPECT_TRUE(anytime.meets_bound);
  // The certified gap is finite and consistent with the bound.
  EXPECT_GE(anytime.dual_bound, 0.0);
  EXPECT_GE(anytime.gap, 0.0);
  EXPECT_NEAR(anytime.gap, anytime.cost - anytime.dual_bound, 1e-9);
}

TEST(Anytime, ZeroBudgetReturnsTheSeedIncumbent) {
  const testing::ToyNetwork toy;
  const double bound = baselines::mst_baseline(toy.net).lifetime;
  Budget budget;
  budget.set_work_limit(0);
  core::AnytimeOptions options;
  options.budget = &budget;

  const core::AnytimeResult result = core::solve_anytime(toy.net, bound, options);
  EXPECT_EQ(result.status, core::AnytimeStatus::kFeasibleBudgetExhausted);
  EXPECT_TRUE(result.from_incumbent);
  EXPECT_EQ(budget.used(), 0) << "hard-zero budget must not run any LP work";
  EXPECT_TRUE(result.meets_bound) << "the MST achieves its own lifetime";
  EXPECT_EQ(result.tree.node_count(), toy.net.node_count());
  EXPECT_GE(result.gap, 0.0);
  EXPECT_FALSE(result.message.empty());
}

TEST(Anytime, CancellationComesBackAsItsOwnStatus) {
  const testing::ToyNetwork toy;
  const double bound = baselines::mst_baseline(toy.net).lifetime;
  Budget budget;
  budget.cancel();
  core::AnytimeOptions options;
  options.budget = &budget;

  const core::AnytimeResult result = core::solve_anytime(toy.net, bound, options);
  EXPECT_EQ(result.status, core::AnytimeStatus::kCancelled);
  EXPECT_TRUE(result.from_incumbent);
  EXPECT_EQ(result.tree.node_count(), toy.net.node_count());
}

/// The headline acceptance gate: on a stock bench workload, a budget of
/// 25% of the full run's work must yield a typed budget-exhausted result
/// carrying an LC-feasible tree and a finite certified gap — and the whole
/// outcome (tree, gap, units charged) must be bit-identical across thread
/// counts.
TEST(Anytime, QuarterBudgetYieldsFeasibleTreeDeterministically) {
  const wsn::Network net = scenario::make_dfl_system().network;
  const double bound = baselines::mst_baseline(net).lifetime;

  // Full run, with a budget attached only to meter the total work.
  Budget meter;
  core::AnytimeOptions metered;
  metered.budget = &meter;
  const core::AnytimeResult full = core::solve_anytime(net, bound, metered);
  ASSERT_EQ(full.status, core::AnytimeStatus::kOptimal);
  ASSERT_GT(meter.used(), 0);

  const auto run_quarter = [&](unsigned threads) {
    const unsigned before = default_thread_count();
    set_default_thread_count(threads);
    Budget budget;
    budget.set_work_limit(meter.used() / 4);
    core::AnytimeOptions options;
    options.budget = &budget;
    const core::AnytimeResult result = core::solve_anytime(net, bound, options);
    set_default_thread_count(before);
    return std::make_pair(result, budget.used());
  };

  const auto [serial, serial_used] = run_quarter(1);
  EXPECT_EQ(serial.status, core::AnytimeStatus::kFeasibleBudgetExhausted);
  EXPECT_TRUE(serial.meets_bound);
  EXPECT_EQ(serial.tree.node_count(), net.node_count());
  EXPECT_GE(serial.dual_bound, 0.0);
  EXPECT_GE(serial.gap, 0.0);
  EXPECT_LE(serial.cost, full.cost + full.gap + 1.0)
      << "incumbent cost must stay in a sane range";

  const auto [wide, wide_used] = run_quarter(8);
  EXPECT_EQ(wide.status, serial.status);
  EXPECT_EQ(wide_used, serial_used)
      << "budget charges must hit serial checkpoints only";
  EXPECT_EQ(wsn::tree_to_string(wide.tree), wsn::tree_to_string(serial.tree));
  EXPECT_DOUBLE_EQ(wide.cost, serial.cost);
  EXPECT_DOUBLE_EQ(wide.gap, serial.gap);
}

// --------------------------------------------------------------- faults --

/// Every fault test disarms the process-wide registry on both sides so a
/// failing assertion cannot leak an armed fault into later tests.
class FaultHarness : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_F(FaultHarness, ConfigureRejectsUnknownNamesListingTheRegistry) {
  try {
    fault::configure("no.such_fault");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no.such_fault"), std::string::npos) << what;
    EXPECT_NE(what.find("lp.force_cold"), std::string::npos)
        << "message must list the registered points: " << what;
  }
  EXPECT_THROW(fault::configure("lp.force_cold:zero"), std::invalid_argument);
  EXPECT_THROW(fault::configure("lp.force_cold:0"), std::invalid_argument);
  EXPECT_EQ(fault::registered().size(), 8u);
}

TEST_F(FaultHarness, OneShotFormFiresOnTheKthArrivalOnly) {
  fault::configure("lp.force_cold:2");
  EXPECT_FALSE(fault::fire("lp.force_cold"));
  EXPECT_TRUE(fault::fire("lp.force_cold"));
  EXPECT_FALSE(fault::fire("lp.force_cold"));
  EXPECT_EQ(fault::injected_count(), 1);
}

TEST_F(FaultHarness, UnarmedPointsNeverFire) {
  EXPECT_FALSE(fault::fire("lp.force_cold"));
  EXPECT_EQ(fault::injected_count(), 0);
}

/// The recoverable faults, each forced on *every* arrival over a full IRA
/// solve on the 16-node DFL instance, and the whole battery run once per
/// LP engine: the returned tree and cost must be identical to that
/// engine's clean run, and every injection must be matched by an audited
/// recovery.
TEST_F(FaultHarness, RecoverableFaultsReturnTheIdenticalTree) {
  const wsn::Network net = scenario::make_dfl_system().network;
  const double bound = baselines::mst_baseline(net).lifetime;
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;

  const lp::Engine saved = lp::default_engine();
  for (const lp::Engine engine : {lp::Engine::kSparse, lp::Engine::kDense}) {
    lp::set_default_engine(engine);
    const char* engine_name =
        engine == lp::Engine::kSparse ? "sparse" : "dense";
    const core::IraResult clean =
        core::IterativeRelaxation(options).solve(net, bound);
    const std::string clean_tree = wsn::tree_to_string(clean.tree);

    const struct {
      const char* name;
      bool must_fire;  ///< cutpool.corrupt needs pool hits this workload lacks
    } kFaults[] = {
        {"lp.force_cold", true},
        {"lp.drop_basis", true},
        {"separation.flow_fail", true},
        {"cutpool.corrupt", false},
    };
    for (const auto& f : kFaults) {
      fault::reset();
      fault::configure(f.name);
      const core::IraResult faulted =
          core::IterativeRelaxation(options).solve(net, bound);
      EXPECT_EQ(wsn::tree_to_string(faulted.tree), clean_tree)
          << engine_name << ": " << f.name;
      EXPECT_DOUBLE_EQ(faulted.cost, clean.cost)
          << engine_name << ": " << f.name;
      if (f.must_fire) {
        EXPECT_GT(fault::injected_count(), 0) << engine_name << ": " << f.name;
      }
      EXPECT_EQ(fault::injected_count(), fault::recovered_count())
          << engine_name << ": " << f.name
          << ": every injection needs an audited recovery";
    }
  }
  lp::set_default_engine(saved);
}

/// `lp.drop_basis` recovery at the LP layer, bit-for-bit: the cut loop
/// recovers from a dropped basis by replaying its solve trajectory on a
/// fresh bounded-visibility instance (core/lp_formulation.cpp).  For the
/// sparse engine the replayed instance must reconstruct the *identical*
/// factorized basis — same basic set, same primal values to the last bit,
/// same nonbasic bound sides — so the remaining cut rounds cannot diverge.
TEST_F(FaultHarness, DropBasisReplayReconstructsTheSparseBasisBitIdentically) {
  Rng rng(987654);
  const int vars = 6;
  lp::Model m;
  for (int v = 0; v < vars; ++v) {
    m.add_variable(rng.uniform(-3.0, 1.0), 0.0, rng.uniform(0.5, 4.0));
  }
  for (int r = 0; r < 2; ++r) {
    std::vector<lp::Term> terms;
    for (lp::VarId v = 0; v < vars; ++v) {
      terms.push_back({v, rng.uniform(0.0, 2.0)});
    }
    m.add_row(lp::Relation::kLessEqual, rng.uniform(3.0, 8.0), terms);
  }

  lp::SimplexOptions options;
  options.engine = lp::Engine::kSparse;
  lp::LpInstance live(m, options);
  struct Step {
    int rows;
    bool warm;
  };
  std::vector<Step> trajectory;
  ASSERT_EQ(live.solve().status, lp::SolveStatus::kOptimal);
  trajectory.push_back({m.constraint_count(), false});
  for (int cut = 0; cut < 4; ++cut) {
    std::vector<lp::Term> terms;
    for (lp::VarId v = 0; v < vars; ++v) {
      terms.push_back({v, rng.uniform(-0.5, 2.0)});
    }
    m.add_row(lp::Relation::kLessEqual, rng.uniform(0.5, 3.0), terms);
    live.sync_new_rows();
    ASSERT_EQ(live.resolve().status, lp::SolveStatus::kOptimal) << cut;
    trajectory.push_back({m.constraint_count(), true});
  }
  ASSERT_TRUE(live.has_basis());
  const lp::BasisSnapshot lost = live.basis_snapshot();

  // The fault arrives: the retained basis is silently invalidated.  Recover
  // exactly the way the cut loop does — replay the recorded trajectory on a
  // fresh instance that starts with only the first solve's rows visible.
  fault::configure("lp.drop_basis");
  ASSERT_TRUE(fault::fire("lp.drop_basis"));
  lp::LpInstance replayed(m, trajectory.front().rows, options);
  for (const Step& step : trajectory) {
    replayed.sync_new_rows(step.rows);
    const lp::Solution s = (step.warm && replayed.has_basis())
                               ? replayed.resolve()
                               : replayed.solve();
    ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  }
  fault::note_recovered("lp.drop_basis");

  EXPECT_TRUE(replayed.basis_snapshot() == lost)
      << "replay must reconstruct the dropped sparse basis bit-identically";
  EXPECT_EQ(fault::injected_count(), fault::recovered_count());
}

TEST_F(FaultHarness, PoolTaskFailureSurfacesAsTypedError) {
  const wsn::Network net = scenario::make_dfl_system().network;
  const double bound = baselines::mst_baseline(net).lifetime;
  fault::configure("parallel.task_fail");
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  try {
    core::IterativeRelaxation(options).solve(net, bound);
    FAIL() << "expected the injected task failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos)
        << e.what();
  }
  EXPECT_GT(fault::injected_count(), 0);
}

}  // namespace
}  // namespace mrlc
