#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/traversal.hpp"
#include "scenario/dfl.hpp"
#include "scenario/random_net.hpp"

namespace mrlc::scenario {
namespace {

// ------------------------------------------------------------------ DFL --

TEST(Dfl, DefaultGeometryHas16Nodes) {
  EXPECT_EQ(dfl_node_count(DflConfig{}), 16);
}

TEST(Dfl, GeometryValidation) {
  DflConfig config;
  config.side_m = 3.5;  // not a multiple of 0.9
  EXPECT_THROW(dfl_node_count(config), std::invalid_argument);
  config = DflConfig{};
  config.spacing_m = -1.0;
  EXPECT_THROW(dfl_node_count(config), std::invalid_argument);
}

TEST(Dfl, PositionsSitOnThePerimeter) {
  const DflSystem sys = make_dfl_system();
  ASSERT_EQ(sys.positions_m.size(), 16u);
  for (const auto& [x, y] : sys.positions_m) {
    const bool on_edge = std::abs(x) < 1e-9 || std::abs(x - 3.6) < 1e-9 ||
                         std::abs(y) < 1e-9 || std::abs(y - 3.6) < 1e-9;
    EXPECT_TRUE(on_edge) << "(" << x << ", " << y << ")";
    EXPECT_GE(x, -1e-9);
    EXPECT_LE(x, 3.6 + 1e-9);
  }
  // Adjacent nodes are 0.9 m apart.
  for (std::size_t i = 0; i + 1 < sys.positions_m.size(); ++i) {
    const double dx = sys.positions_m[i].first - sys.positions_m[i + 1].first;
    const double dy = sys.positions_m[i].second - sys.positions_m[i + 1].second;
    EXPECT_NEAR(std::hypot(dx, dy), 0.9, 1e-9);
  }
}

TEST(Dfl, NetworkIsConnectedAndConfigured) {
  const DflSystem sys = make_dfl_system();
  EXPECT_EQ(sys.network.node_count(), 16);
  EXPECT_EQ(sys.network.sink(), 0);
  EXPECT_TRUE(graph::is_connected(sys.network.topology()));
  for (int v = 0; v < 16; ++v) {
    EXPECT_DOUBLE_EQ(sys.network.initial_energy(v), 3000.0);
  }
  EXPECT_EQ(static_cast<std::size_t>(sys.network.link_count()),
            sys.true_prr.size());
}

TEST(Dfl, NeighboringLinksAreNearPerfect) {
  const DflSystem sys = make_dfl_system();
  // 0.9 m at any calibrated power level is essentially loss-free.
  for (int v = 0; v + 1 < 16; ++v) {
    const wsn::EdgeId link = sys.network.topology().find_edge(v, v + 1);
    ASSERT_NE(link, -1) << "adjacent pair " << v;
    EXPECT_GT(sys.network.link_prr(link), 0.9);
  }
}

TEST(Dfl, LinkQualityDiversityExists) {
  // The instance must be non-trivial: a mix of strong and weak links.
  const DflSystem sys = make_dfl_system();
  int strong = 0;
  int weak = 0;
  for (wsn::EdgeId id = 0; id < sys.network.link_count(); ++id) {
    if (sys.network.link_prr(id) > 0.95) ++strong;
    if (sys.network.link_prr(id) < 0.8) ++weak;
  }
  EXPECT_GT(strong, 10);
  EXPECT_GT(weak, 3);
}

TEST(Dfl, BeaconEstimatesTrackTruth) {
  const DflSystem sys = make_dfl_system();
  for (wsn::EdgeId id = 0; id < sys.network.link_count(); ++id) {
    const double estimate = sys.network.link_prr(id);
    const double truth = sys.true_prr[static_cast<std::size_t>(id)];
    // 1000 Bernoulli trials: the estimate is within a few std-devs.
    const double sigma = std::sqrt(truth * (1.0 - truth) / 1000.0);
    EXPECT_NEAR(estimate, truth, 5.0 * sigma + 1e-3) << "link " << id;
  }
}

TEST(Dfl, DeterministicPerSeed) {
  const DflSystem a = make_dfl_system();
  const DflSystem b = make_dfl_system();
  ASSERT_EQ(a.network.link_count(), b.network.link_count());
  for (wsn::EdgeId id = 0; id < a.network.link_count(); ++id) {
    EXPECT_DOUBLE_EQ(a.network.link_prr(id), b.network.link_prr(id));
  }
  DflConfig other;
  other.seed = 777;
  const DflSystem c = make_dfl_system(other);
  bool any_difference = c.network.link_count() != a.network.link_count();
  for (wsn::EdgeId id = 0;
       !any_difference && id < std::min(a.network.link_count(), c.network.link_count());
       ++id) {
    any_difference = a.network.link_prr(id) != c.network.link_prr(id);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Dfl, ScalesToLargerSquares) {
  DflConfig config;
  config.side_m = 7.2;  // 32 nodes
  EXPECT_EQ(dfl_node_count(config), 32);
  const DflSystem sys = make_dfl_system(config);
  EXPECT_EQ(sys.network.node_count(), 32);
  EXPECT_TRUE(graph::is_connected(sys.network.topology()));
}

TEST(Dfl, ConfigValidation) {
  DflConfig config;
  config.beacon_rounds = 0;
  EXPECT_THROW(make_dfl_system(config), std::invalid_argument);
  config = DflConfig{};
  config.min_link_prr = 0.0;
  EXPECT_THROW(make_dfl_system(config), std::invalid_argument);
}

// --------------------------------------------------------- random nets --

TEST(RandomNet, MatchesPaperParameters) {
  Rng rng(1);
  const RandomNetworkConfig config;  // paper defaults
  const wsn::Network net = make_random_network(config, rng);
  EXPECT_EQ(net.node_count(), 16);
  EXPECT_TRUE(graph::is_connected(net.topology()));
  for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
    EXPECT_GE(net.link_prr(id), 0.95);
    EXPECT_LE(net.link_prr(id), 1.0);
  }
  for (int v = 0; v < 16; ++v) EXPECT_DOUBLE_EQ(net.initial_energy(v), 3000.0);
}

TEST(RandomNet, LinkDensityNearP) {
  Rng rng(2);
  double total_links = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    total_links += make_random_network(RandomNetworkConfig{}, rng).link_count();
  }
  const double expected = 0.7 * 16 * 15 / 2;
  EXPECT_NEAR(total_links / trials, expected, expected * 0.08);
}

TEST(RandomNet, HeterogeneousEnergyRange) {
  Rng rng(3);
  RandomNetworkConfig config;
  config.energy_min_j = 1500.0;
  config.energy_max_j = 5000.0;
  const wsn::Network net = make_random_network(config, rng);
  double lo = 1e18;
  double hi = 0.0;
  for (int v = 0; v < net.node_count(); ++v) {
    lo = std::min(lo, net.initial_energy(v));
    hi = std::max(hi, net.initial_energy(v));
  }
  EXPECT_GE(lo, 1500.0);
  EXPECT_LE(hi, 5000.0);
  EXPECT_GT(hi - lo, 500.0);  // actually heterogeneous
}

TEST(RandomNet, RejectsBadConfig) {
  Rng rng(4);
  RandomNetworkConfig config;
  config.node_count = 1;
  EXPECT_THROW(make_random_network(config, rng), std::invalid_argument);
  config = RandomNetworkConfig{};
  config.link_probability = 0.0;
  EXPECT_THROW(make_random_network(config, rng), std::invalid_argument);
  config = RandomNetworkConfig{};
  config.prr_min = 0.9;
  config.prr_max = 0.5;
  EXPECT_THROW(make_random_network(config, rng), std::invalid_argument);
}

TEST(RandomNet, SparseDrawsEventuallyConnect) {
  Rng rng(5);
  RandomNetworkConfig config;
  config.node_count = 8;
  config.link_probability = 0.25;  // often disconnected, must retry
  for (int t = 0; t < 10; ++t) {
    const wsn::Network net = make_random_network(config, rng);
    EXPECT_TRUE(graph::is_connected(net.topology()));
  }
}

// ----------------------------------------------------------------- grid --

TEST(GridNetwork, ShapeAndTree) {
  GridNetworkConfig config;
  config.rows = 5;
  config.cols = 7;
  config.prr_min = 0.9;
  config.prr_max = 0.99;
  Rng rng(7);
  const wsn::Network net = make_grid_network(config, rng);
  EXPECT_EQ(net.node_count(), 35);
  // 4-neighbor lattice: rows*(cols-1) horizontal + (rows-1)*cols vertical.
  EXPECT_EQ(net.link_count(), 5 * 6 + 4 * 7);
  EXPECT_TRUE(graph::is_connected(net.topology()));
  for (wsn::EdgeId e = 0; e < net.link_count(); ++e) {
    EXPECT_GE(net.link_prr(e), 0.9);
    EXPECT_LE(net.link_prr(e), 0.99);
  }

  const wsn::AggregationTree tree = bfs_spanning_tree(net);
  EXPECT_EQ(tree.root(), net.sink());
  EXPECT_EQ(tree.member_count(), 35);
  // BFS parents: every node's hop count is its grid (Manhattan) distance.
  int hops = 0;
  wsn::VertexId v = 34;  // far corner: (4, 6)
  while (v != tree.root()) {
    v = tree.parent(v);
    ++hops;
  }
  EXPECT_EQ(hops, 4 + 6);
}

TEST(GridNetwork, DeterministicFromSeed) {
  GridNetworkConfig config;
  config.rows = 3;
  config.cols = 4;
  config.energy_min_j = 1500.0;
  config.energy_max_j = 5000.0;
  Rng rng_a(99), rng_b(99);
  const wsn::Network a = make_grid_network(config, rng_a);
  const wsn::Network b = make_grid_network(config, rng_b);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (wsn::EdgeId e = 0; e < a.link_count(); ++e) {
    EXPECT_EQ(a.link_prr(e), b.link_prr(e));
  }
  for (wsn::VertexId v = 0; v < a.node_count(); ++v) {
    EXPECT_EQ(a.initial_energy(v), b.initial_energy(v));
  }
}

}  // namespace
}  // namespace mrlc::scenario
