#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "lp/instance.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace mrlc::lp {
namespace {

constexpr double kTol = 1e-7;

// ---------------------------------------------------------------- model --

TEST(Model, VariableAndRowBookkeeping) {
  Model m;
  const VarId x = m.add_variable(2.0, 0.0, 5.0, "x");
  const VarId y = m.add_variable(-1.0);
  EXPECT_EQ(m.variable_count(), 2);
  EXPECT_DOUBLE_EQ(m.objective_coefficient(x), 2.0);
  EXPECT_DOUBLE_EQ(m.upper_bound(x), 5.0);
  EXPECT_EQ(m.variable_name(x), "x");
  EXPECT_EQ(m.upper_bound(y), kInfinity);

  const RowId r = m.add_row(Relation::kLessEqual, 4.0, {{x, 1.0}, {y, 2.0}});
  EXPECT_EQ(m.constraint_count(), 1);
  EXPECT_EQ(m.terms(r).size(), 2u);
}

TEST(Model, RejectsBadInput) {
  Model m;
  EXPECT_THROW(m.add_variable(0.0, 2.0, 1.0), std::invalid_argument);  // l > u
  EXPECT_THROW(m.add_variable(0.0, -kInfinity, 0.0), std::invalid_argument);
  const VarId x = m.add_variable(1.0);
  const RowId r = m.add_constraint(Relation::kEqual, 1.0);
  EXPECT_THROW(m.add_term(r, x + 5, 1.0), std::invalid_argument);
  EXPECT_THROW(m.add_term(r + 5, x, 1.0), std::invalid_argument);
}

TEST(Model, EvaluateAndFeasibility) {
  Model m;
  const VarId x = m.add_variable(1.0, 0.0, 10.0);
  const VarId y = m.add_variable(1.0, 0.0, 10.0);
  m.add_row(Relation::kLessEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Relation::kGreaterEqual, 1.0, {{x, 1.0}});
  EXPECT_TRUE(m.is_feasible({2.0, 3.0}));
  EXPECT_FALSE(m.is_feasible({3.0, 3.0}));  // row 0 violated
  EXPECT_FALSE(m.is_feasible({0.0, 1.0}));  // row 1 violated
  EXPECT_FALSE(m.is_feasible({2.0, 11.0}));  // bound violated
  EXPECT_DOUBLE_EQ(m.evaluate_objective({2.0, 3.0}), 5.0);
}

TEST(Model, DuplicateTermsAccumulate) {
  Model m;
  const VarId x = m.add_variable(1.0);
  const RowId r = m.add_constraint(Relation::kLessEqual, 4.0);
  m.add_term(r, x, 1.0);
  m.add_term(r, x, 2.0);
  EXPECT_DOUBLE_EQ(m.evaluate_row(r, {1.0}), 3.0);
}

// -------------------------------------------------------------- simplex --

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  (2, 6), obj 36.
  Model m;
  const VarId x = m.add_variable(-3.0);
  const VarId y = m.add_variable(-5.0);
  m.add_row(Relation::kLessEqual, 4.0, {{x, 1.0}});
  m.add_row(Relation::kLessEqual, 12.0, {{y, 2.0}});
  m.add_row(Relation::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, kTol);
  EXPECT_NEAR(s.values[0], 2.0, kTol);
  EXPECT_NEAR(s.values[1], 6.0, kTol);
}

TEST(Simplex, EqualityConstraintNeedsPhase1) {
  // min x + y  s.t. x + y = 3, x - y >= 1  ->  x=2, y=1 ... any point on the
  // segment has objective 3; check objective and feasibility.
  Model m;
  const VarId x = m.add_variable(1.0);
  const VarId y = m.add_variable(1.0);
  m.add_row(Relation::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Relation::kGreaterEqual, 1.0, {{x, 1.0}, {y, -1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, kTol);
  EXPECT_TRUE(m.is_feasible(s.values));
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_variable(1.0);
  m.add_row(Relation::kLessEqual, 1.0, {{x, 1.0}});
  m.add_row(Relation::kGreaterEqual, 2.0, {{x, 1.0}});
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualities) {
  Model m;
  const VarId x = m.add_variable(0.0);
  const VarId y = m.add_variable(0.0);
  m.add_row(Relation::kEqual, 1.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Relation::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const VarId x = m.add_variable(-1.0);  // min -x with x free upward
  m.add_row(Relation::kGreaterEqual, 0.0, {{x, 1.0}});
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, UpperBoundsAreRespected) {
  Model m;
  m.add_variable(-1.0, 0.0, 2.5);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 2.5, kTol);
}

TEST(Simplex, NonzeroLowerBoundsShiftCorrectly) {
  // min x + y  s.t. x + y >= 5, x >= 2, y in [1, 3].
  Model m;
  const VarId x = m.add_variable(1.0, 2.0);
  const VarId y = m.add_variable(1.0, 1.0, 3.0);
  m.add_row(Relation::kGreaterEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, kTol);
  EXPECT_GE(s.values[0], 2.0 - kTol);
  EXPECT_GE(s.values[1], 1.0 - kTol);
  EXPECT_LE(s.values[1], 3.0 + kTol);
}

TEST(Simplex, NegativeRhsRowsAreNormalized) {
  // min x  s.t. -x <= -3  (i.e. x >= 3).
  Model m;
  const VarId x = m.add_variable(1.0);
  m.add_row(Relation::kLessEqual, -3.0, {{x, -1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 3.0, kTol);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate vertex: multiple tight constraints at the optimum.
  Model m;
  const VarId x = m.add_variable(-1.0);
  const VarId y = m.add_variable(-1.0);
  m.add_row(Relation::kLessEqual, 1.0, {{x, 1.0}});
  m.add_row(Relation::kLessEqual, 1.0, {{y, 1.0}});
  m.add_row(Relation::kLessEqual, 2.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Relation::kLessEqual, 2.0, {{x, 2.0}, {y, 1.0} , {x, -1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, kTol);
}

TEST(Simplex, EmptyModelIsFeasible) {
  Model m;
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kOptimal);
}

TEST(Simplex, RedundantEqualityRowsHandled) {
  // Duplicate equality rows leave a redundant artificial basic at zero.
  Model m;
  const VarId x = m.add_variable(1.0);
  const VarId y = m.add_variable(2.0);
  m.add_row(Relation::kEqual, 2.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Relation::kEqual, 2.0, {{x, 1.0}, {y, 1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, kTol);
  EXPECT_NEAR(s.values[0], 2.0, kTol);
}

TEST(Simplex, SolutionIsBasic) {
  Model m;
  const VarId x = m.add_variable(-3.0);
  const VarId y = m.add_variable(-5.0);
  m.add_row(Relation::kLessEqual, 4.0, {{x, 1.0}});
  m.add_row(Relation::kLessEqual, 12.0, {{y, 2.0}});
  m.add_row(Relation::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.is_basic.size(), 2u);
  // At the optimal vertex both structurals are strictly positive => basic.
  EXPECT_TRUE(s.is_basic[0]);
  EXPECT_TRUE(s.is_basic[1]);
}

/// Brute-force LP check on random small instances: enumerate all vertices
/// of {x in [0,u]^2 : rows} by intersecting constraint pairs and compare.
TEST(Simplex, MatchesVertexEnumerationOnRandom2D) {
  Rng rng(31);
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Model m;
    const double c0 = rng.uniform(-5.0, 5.0);
    const double c1 = rng.uniform(-5.0, 5.0);
    const double u0 = rng.uniform(1.0, 5.0);
    const double u1 = rng.uniform(1.0, 5.0);
    m.add_variable(c0, 0.0, u0);
    m.add_variable(c1, 0.0, u1);
    // Two random <= rows with positive rhs keep the problem feasible
    // (origin always works) and bounded (boxed variables).
    struct Row {
      double a0, a1, b;
    };
    Row rows[2];
    for (auto& row : rows) {
      row = {rng.uniform(-2.0, 3.0), rng.uniform(-2.0, 3.0), rng.uniform(0.5, 6.0)};
      m.add_row(Relation::kLessEqual, row.b, {{0, row.a0}, {1, row.a1}});
    }
    const Solution s = SimplexSolver().solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    ASSERT_TRUE(m.is_feasible(s.values, 1e-6));

    // Enumerate candidate vertices: intersections of all boundary pairs.
    std::vector<std::array<double, 2>> candidates;
    std::vector<std::array<double, 3>> lines = {
        {1.0, 0.0, 0.0},  {0.0, 1.0, 0.0},  {1.0, 0.0, u0},  {0.0, 1.0, u1},
        {rows[0].a0, rows[0].a1, rows[0].b}, {rows[1].a0, rows[1].a1, rows[1].b}};
    for (std::size_t i = 0; i < lines.size(); ++i) {
      for (std::size_t j = i + 1; j < lines.size(); ++j) {
        const double det = lines[i][0] * lines[j][1] - lines[j][0] * lines[i][1];
        if (std::abs(det) < 1e-9) continue;
        const double px = (lines[i][2] * lines[j][1] - lines[j][2] * lines[i][1]) / det;
        const double py = (lines[i][0] * lines[j][2] - lines[j][0] * lines[i][2]) / det;
        candidates.push_back({px, py});
      }
    }
    double best = 0.0;  // origin is feasible with objective 0
    for (const auto& c : candidates) {
      if (m.is_feasible({c[0], c[1]}, 1e-9)) {
        best = std::min(best, c0 * c[0] + c1 * c[1]);
      }
    }
    EXPECT_NEAR(s.objective, best, 1e-5) << "trial " << trial;
    ++solved;
  }
  EXPECT_EQ(solved, 200);
}

// ------------------------------------------------- warm-started instance --

TEST(LpInstance, WarmResolveAfterCutMatchesColdSolve) {
  Model m;
  const VarId x = m.add_variable(-1.0, 0.0, 3.0, "x");
  const VarId y = m.add_variable(-3.0, 0.0, 3.0, "y");
  m.add_row(Relation::kLessEqual, 4.0, {{x, 1.0}, {y, 1.0}});

  LpInstance instance(m);
  const Solution first = instance.solve();
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_FALSE(first.warm_started);
  EXPECT_NEAR(first.objective, -10.0, kTol);  // (1, 3)
  ASSERT_TRUE(instance.has_basis());

  // A "cut" the previous optimum violates: x + 2y <= 5.
  m.add_row(Relation::kLessEqual, 5.0, {{x, 1.0}, {y, 2.0}});
  EXPECT_EQ(instance.sync_new_rows(), 1);
  const Solution warm = instance.resolve();
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(instance.cold_fallbacks(), 0);
  EXPECT_EQ(instance.warm_solves(), 1);
  EXPECT_NEAR(warm.objective, -7.5, kTol);  // (0, 2.5)

  // A fresh cold solve of the grown model agrees to the last bit of tol.
  LpInstance cold(m);
  const Solution reference = cold.solve();
  ASSERT_EQ(reference.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, reference.objective, kTol);
  ASSERT_EQ(warm.values.size(), reference.values.size());
  for (std::size_t i = 0; i < warm.values.size(); ++i) {
    EXPECT_NEAR(warm.values[i], reference.values[i], kTol);
  }
}

TEST(LpInstance, ResolveWithoutBasisFallsBackToCold) {
  Model m;
  const VarId x = m.add_variable(-1.0, 0.0, 2.0);
  m.add_row(Relation::kLessEqual, 1.5, {{x, 1.0}});
  LpInstance instance(m);
  // resolve() before any solve: no basis to reoptimize, must behave as a
  // cold solve (and not count as a fallback — nothing was abandoned).
  const Solution s = instance.resolve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_FALSE(s.warm_started);
  EXPECT_NEAR(s.objective, -1.5, kTol);
  EXPECT_EQ(instance.cold_fallbacks(), 0);
}

TEST(LpInstance, EqualityRowInvalidatesBasis) {
  Model m;
  const VarId x = m.add_variable(-1.0, 0.0, 4.0);
  const VarId y = m.add_variable(-1.0, 0.0, 4.0);
  m.add_row(Relation::kLessEqual, 6.0, {{x, 1.0}, {y, 1.0}});
  LpInstance instance(m);
  ASSERT_EQ(instance.solve().status, SolveStatus::kOptimal);
  ASSERT_TRUE(instance.has_basis());

  // Equality rows need an artificial column, so the incremental path
  // refuses them and the next solve is cold.
  m.add_row(Relation::kEqual, 3.0, {{x, 1.0}});
  instance.sync_new_rows();
  EXPECT_FALSE(instance.has_basis());
  const Solution s = instance.resolve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_FALSE(s.warm_started);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 3.0, kTol);
  EXPECT_NEAR(s.objective, -6.0, kTol);  // x = 3, y = 3
}

TEST(LpInstance, UpdateRhsReoptimizesWithoutRebuild) {
  Model m;
  const VarId x = m.add_variable(-1.0, 0.0, 10.0);
  const VarId y = m.add_variable(-2.0, 0.0, 10.0);
  const RowId budget = m.add_row(Relation::kLessEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Relation::kLessEqual, 3.0, {{y, 1.0}});
  LpInstance instance(m);
  ASSERT_EQ(instance.solve().status, SolveStatus::kOptimal);

  // Tighten, then loosen, the budget row; each time the warm result must
  // match a cold solve of the edited model.
  for (const double rhs : {2.0, 7.0}) {
    m.set_rhs(budget, rhs);
    instance.update_rhs(budget);
    const Solution warm = instance.resolve();
    ASSERT_EQ(warm.status, SolveStatus::kOptimal);
    LpInstance cold(m);
    const Solution reference = cold.solve();
    ASSERT_EQ(reference.status, SolveStatus::kOptimal);
    EXPECT_NEAR(warm.objective, reference.objective, kTol) << "rhs " << rhs;
    for (std::size_t i = 0; i < warm.values.size(); ++i) {
      EXPECT_NEAR(warm.values[i], reference.values[i], kTol) << "rhs " << rhs;
    }
  }
}

TEST(LpInstance, UpdateObjectiveReoptimizesWithoutRebuild) {
  Model m;
  const VarId x = m.add_variable(-1.0, 0.0, 5.0);
  const VarId y = m.add_variable(-1.0, 0.0, 5.0);
  m.add_row(Relation::kLessEqual, 6.0, {{x, 1.0}, {y, 1.0}});
  LpInstance instance(m);
  ASSERT_EQ(instance.solve().status, SolveStatus::kOptimal);

  // Flip the preference between x and y back and forth.
  for (const double cost : {-4.0, -0.25, -2.0}) {
    m.set_objective_coefficient(y, cost);
    instance.update_objective(y);
    const Solution warm = instance.resolve();
    ASSERT_EQ(warm.status, SolveStatus::kOptimal);
    LpInstance cold(m);
    const Solution reference = cold.solve();
    ASSERT_EQ(reference.status, SolveStatus::kOptimal);
    EXPECT_NEAR(warm.objective, reference.objective, kTol) << "cost " << cost;
    for (std::size_t i = 0; i < warm.values.size(); ++i) {
      EXPECT_NEAR(warm.values[i], reference.values[i], kTol) << "cost " << cost;
    }
  }
}

TEST(LpInstance, InfeasibleCutIsCertifiedByColdFallback) {
  Model m;
  const VarId x = m.add_variable(1.0, 0.0, 10.0);
  m.add_row(Relation::kGreaterEqual, 2.0, {{x, 1.0}});
  LpInstance instance(m);
  ASSERT_EQ(instance.solve().status, SolveStatus::kOptimal);

  // Contradictory cut: x <= 1 while x >= 2 stands.
  m.add_row(Relation::kLessEqual, 1.0, {{x, 1.0}});
  instance.sync_new_rows();
  const Solution s = instance.resolve();
  // The dual simplex surfaces the infeasibility, and the verdict is
  // re-certified by a cold two-phase run rather than trusted directly.
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  EXPECT_EQ(instance.cold_fallbacks(), 1);
}

TEST(LpInstance, WarmEqualsColdOnRandomCutSequences) {
  Rng rng(20260806);
  int optimal_pairs = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int vars = static_cast<int>(rng.uniform_int(2, 6));
    Model m;
    for (int v = 0; v < vars; ++v) {
      m.add_variable(rng.uniform(-3.0, 1.0), 0.0, rng.uniform(0.5, 4.0));
    }
    // Start with a couple of generous rows so the first solve is optimal.
    for (int r = 0; r < 2; ++r) {
      std::vector<Term> terms;
      for (VarId v = 0; v < vars; ++v) {
        terms.push_back({v, rng.uniform(0.0, 2.0)});
      }
      m.add_row(Relation::kLessEqual, rng.uniform(2.0, 8.0), terms);
    }
    LpInstance warm(m);
    ASSERT_EQ(warm.solve().status, SolveStatus::kOptimal) << "trial " << trial;

    // Append 4 random cut rows one at a time; after each, the warm result
    // must agree with a from-scratch cold solve (same status; on optimal,
    // same objective and point).
    for (int cut = 0; cut < 4; ++cut) {
      std::vector<Term> terms;
      for (VarId v = 0; v < vars; ++v) {
        terms.push_back({v, rng.uniform(-0.5, 2.0)});
      }
      m.add_row(Relation::kLessEqual, rng.uniform(-0.5, 3.0), terms);
      warm.sync_new_rows();
      const Solution ws = warm.resolve();
      LpInstance cold_instance(m);
      const Solution cs = cold_instance.solve();
      ASSERT_EQ(ws.status, cs.status) << "trial " << trial << " cut " << cut;
      if (cs.status != SolveStatus::kOptimal) break;
      EXPECT_NEAR(ws.objective, cs.objective, 1e-6)
          << "trial " << trial << " cut " << cut;
      for (std::size_t i = 0; i < ws.values.size(); ++i) {
        EXPECT_NEAR(ws.values[i], cs.values[i], 1e-6)
            << "trial " << trial << " cut " << cut << " var " << i;
      }
      ++optimal_pairs;
    }
  }
  EXPECT_GE(optimal_pairs, 50);
}

// ------------------------------------------------------- anti-cycling --

/// Beale's classic cycling example: under Dantzig pricing with the
/// lowest-index tie-break, the tableau revisits its initial basis every six
/// pivots without ever improving the objective.
Model beale_model() {
  Model m;
  const VarId x1 = m.add_variable(-0.75);
  const VarId x2 = m.add_variable(150.0);
  const VarId x3 = m.add_variable(-0.02);
  const VarId x4 = m.add_variable(6.0);
  m.add_row(Relation::kLessEqual, 0.0,
            {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}});
  m.add_row(Relation::kLessEqual, 0.0,
            {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}});
  m.add_row(Relation::kLessEqual, 1.0, {{x3, 1.0}});
  return m;
}

TEST(Simplex, BealeCyclingTableauTerminatesViaDegenerateStreakBland) {
  const Model m = beale_model();
  SimplexOptions options;
  options.engine = Engine::kDense;  // the cycle is a Dantzig-tableau artifact
  options.bland_after = 1000000;  // keep the stall-based trigger out of play
  options.max_iterations = 5000;
  options.bland_degenerate_streak = 10;
  LpInstance instance(m, options);
  const Solution s = instance.solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-9);  // x = (0.04, 0, 1, 0)
  EXPECT_NEAR(s.values[0], 0.04, 1e-9);
  EXPECT_NEAR(s.values[2], 1.0, 1e-9);
  EXPECT_GE(instance.bland_activations(), 1);
  EXPECT_LT(s.iterations, 100);  // escaped the cycle quickly, no stall
}

TEST(Simplex, BealeCyclingLpSolvesOnEverySparsePricingRule) {
  // The sparse engine must also survive Beale's LP — under every pricing
  // rule (Dantzig included, where the classic cycle lives) the
  // degenerate-streak Bland switchover guarantees termination.
  for (const Pricing pricing :
       {Pricing::kDevex, Pricing::kSteepestEdge, Pricing::kDantzig}) {
    const Model m = beale_model();
    SimplexOptions options;
    options.engine = Engine::kSparse;
    options.pricing = pricing;
    options.bland_after = 1000000;
    options.max_iterations = 5000;
    options.bland_degenerate_streak = 10;
    LpInstance instance(m, options);
    const Solution s = instance.solve();
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_NEAR(s.objective, -0.05, 1e-9);  // x = (0.04, 0, 1, 0)
    EXPECT_NEAR(s.values[0], 0.04, 1e-9);
    EXPECT_NEAR(s.values[2], 1.0, 1e-9);
    EXPECT_LT(s.iterations, 100);
  }
}

// --------------------------------------------------------- engine parity --

/// Structural "is an extreme point" check shared by the parity sweep: every
/// nonbasic variable must sit exactly on one of its bounds.  (The basic
/// count is engine-dependent — the dense tableau materializes bound rows —
/// so only the nonbasic-at-bound half of the invariant is portable.)
void ExpectBasicSolution(const Model& m, const Solution& s,
                         const char* label, int trial) {
  ASSERT_EQ(static_cast<int>(s.is_basic.size()), m.variable_count());
  for (VarId v = 0; v < m.variable_count(); ++v) {
    if (s.is_basic[static_cast<std::size_t>(v)]) continue;
    const double x = s.values[static_cast<std::size_t>(v)];
    const bool at_lower = std::abs(x - m.lower_bound(v)) <= kTol;
    const bool at_upper = m.upper_bound(v) < kInfinity &&
                          std::abs(x - m.upper_bound(v)) <= kTol;
    EXPECT_TRUE(at_lower || at_upper)
        << label << " trial " << trial << ": nonbasic variable " << v
        << " off its bounds at " << x;
  }
}

/// The tentpole's acceptance sweep: on 72 seeded instances — generic random
/// LPs, deliberately degenerate duplicated/zero-rhs rows, and Beale-style
/// cycling tableaus — the sparse engine and the dense oracle must agree on
/// status and optimal objective, both on the cold path and after warm
/// (sync + dual-simplex resolve) cut rounds, and both engines must return
/// extreme points that the model itself certifies feasible.
TEST(EngineParity, SparseMatchesDenseOracleOnSeededInstances) {
  Rng rng(20260809);
  int optimal = 0;
  constexpr int kTrials = 72;
  for (int trial = 0; trial < kTrials; ++trial) {
    Model m;
    if (trial % 9 == 7) {
      // A Beale-style degenerate cycling tableau, objective rescaled per
      // trial so each instance exercises its own pivot sequence.
      const double scale = 1.0 + 0.25 * static_cast<double>(trial % 5);
      m = beale_model();
      for (VarId v = 0; v < m.variable_count(); ++v) {
        m.set_objective_coefficient(v, m.objective_coefficient(v) * scale);
      }
    } else {
      const int vars = static_cast<int>(rng.uniform_int(2, 7));
      for (int v = 0; v < vars; ++v) {
        m.add_variable(rng.uniform(-3.0, 2.0), 0.0, rng.uniform(0.5, 4.0));
      }
      const int rows = static_cast<int>(rng.uniform_int(2, 5));
      for (int r = 0; r < rows; ++r) {
        std::vector<Term> terms;
        for (VarId v = 0; v < vars; ++v) {
          terms.push_back({v, rng.uniform(-0.5, 2.0)});
        }
        m.add_row(Relation::kLessEqual, rng.uniform(1.0, 8.0), terms);
        if (trial % 5 == 3) {
          // Degenerate block: the same row duplicated, plus a zero-rhs row
          // that pins its variables' optimal basis to a degenerate vertex.
          m.add_row(Relation::kLessEqual, rng.uniform(1.0, 8.0), terms);
          m.add_row(Relation::kLessEqual, 0.0,
                    {{static_cast<VarId>(r % vars), 1.0},
                     {static_cast<VarId>((r + 1) % vars), -1.0}});
        }
      }
    }

    SimplexOptions sparse_opts;
    sparse_opts.engine = Engine::kSparse;
    SimplexOptions dense_opts;
    dense_opts.engine = Engine::kDense;
    LpInstance sparse(m, sparse_opts);
    LpInstance dense(m, dense_opts);
    const Solution ss = sparse.solve();
    const Solution ds = dense.solve();
    ASSERT_EQ(ss.status, ds.status) << "trial " << trial;
    if (ss.status == SolveStatus::kOptimal) {
      const double scale = 1.0 + std::abs(ds.objective);
      EXPECT_NEAR(ss.objective, ds.objective, 1e-6 * scale)
          << "trial " << trial;
      EXPECT_TRUE(m.is_feasible(ss.values, 1e-6)) << "sparse, trial " << trial;
      EXPECT_TRUE(m.is_feasible(ds.values, 1e-6)) << "dense, trial " << trial;
      ExpectBasicSolution(m, ss, "sparse", trial);
      ExpectBasicSolution(m, ds, "dense", trial);
      ++optimal;
    } else {
      continue;  // nothing to warm-start from
    }

    // Warm/cold parity across engines: two cut rows appended one at a time;
    // after each, the sparse warm resolve, the dense warm resolve, and a
    // from-scratch cold solve must all land on the same optimum.
    for (int cut = 0; cut < 2; ++cut) {
      std::vector<Term> terms;
      for (VarId v = 0; v < m.variable_count(); ++v) {
        terms.push_back({v, rng.uniform(-0.5, 2.0)});
      }
      m.add_row(Relation::kLessEqual, rng.uniform(-0.5, 3.0), terms);
      sparse.sync_new_rows();
      dense.sync_new_rows();
      const Solution ws = sparse.resolve();
      const Solution wd = dense.resolve();
      ASSERT_EQ(ws.status, wd.status) << "trial " << trial << " cut " << cut;
      LpInstance cold(m, sparse_opts);
      const Solution cs = cold.solve();
      ASSERT_EQ(ws.status, cs.status) << "trial " << trial << " cut " << cut;
      if (ws.status != SolveStatus::kOptimal) break;
      const double scale = 1.0 + std::abs(cs.objective);
      EXPECT_NEAR(ws.objective, cs.objective, 1e-6 * scale)
          << "sparse warm vs cold, trial " << trial << " cut " << cut;
      EXPECT_NEAR(wd.objective, cs.objective, 1e-6 * scale)
          << "dense warm vs sparse cold, trial " << trial << " cut " << cut;
      EXPECT_TRUE(m.is_feasible(ws.values, 1e-6))
          << "sparse warm, trial " << trial << " cut " << cut;
    }
  }
  EXPECT_GE(optimal, 50) << "the sweep must mostly exercise the optimal path";
}

/// The cross-check oracle itself, on the same kind of workload: with
/// `cross_check` set the audit runs inside every solve/resolve and throws
/// on any disagreement, so a clean pass here means the shadow-oracle wiring
/// (mutation mirroring included) holds across warm rounds.
TEST(EngineParity, CrossCheckOracleAuditsCutRoundsCleanly) {
  Rng rng(424242);
  for (int trial = 0; trial < 12; ++trial) {
    Model m;
    const int vars = static_cast<int>(rng.uniform_int(2, 6));
    for (int v = 0; v < vars; ++v) {
      m.add_variable(rng.uniform(-3.0, 1.0), 0.0, rng.uniform(0.5, 4.0));
    }
    for (int r = 0; r < 2; ++r) {
      std::vector<Term> terms;
      for (VarId v = 0; v < vars; ++v) {
        terms.push_back({v, rng.uniform(0.0, 2.0)});
      }
      m.add_row(Relation::kLessEqual, rng.uniform(2.0, 8.0), terms);
    }
    SimplexOptions options;
    options.engine = Engine::kSparse;
    options.cross_check = true;
    LpInstance audited(m, options);
    ASSERT_EQ(audited.solve().status, SolveStatus::kOptimal) << trial;
    for (int cut = 0; cut < 3; ++cut) {
      std::vector<Term> terms;
      for (VarId v = 0; v < vars; ++v) {
        terms.push_back({v, rng.uniform(-0.5, 2.0)});
      }
      m.add_row(Relation::kLessEqual, rng.uniform(-0.5, 3.0), terms);
      audited.sync_new_rows();
      const Solution s = audited.resolve();  // throws if the engines diverge
      if (s.status != SolveStatus::kOptimal) break;
    }
  }
}

}  // namespace
}  // namespace mrlc::lp
