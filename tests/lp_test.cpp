#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace mrlc::lp {
namespace {

constexpr double kTol = 1e-7;

// ---------------------------------------------------------------- model --

TEST(Model, VariableAndRowBookkeeping) {
  Model m;
  const VarId x = m.add_variable(2.0, 0.0, 5.0, "x");
  const VarId y = m.add_variable(-1.0);
  EXPECT_EQ(m.variable_count(), 2);
  EXPECT_DOUBLE_EQ(m.objective_coefficient(x), 2.0);
  EXPECT_DOUBLE_EQ(m.upper_bound(x), 5.0);
  EXPECT_EQ(m.variable_name(x), "x");
  EXPECT_EQ(m.upper_bound(y), kInfinity);

  const RowId r = m.add_row(Relation::kLessEqual, 4.0, {{x, 1.0}, {y, 2.0}});
  EXPECT_EQ(m.constraint_count(), 1);
  EXPECT_EQ(m.terms(r).size(), 2u);
}

TEST(Model, RejectsBadInput) {
  Model m;
  EXPECT_THROW(m.add_variable(0.0, 2.0, 1.0), std::invalid_argument);  // l > u
  EXPECT_THROW(m.add_variable(0.0, -kInfinity, 0.0), std::invalid_argument);
  const VarId x = m.add_variable(1.0);
  const RowId r = m.add_constraint(Relation::kEqual, 1.0);
  EXPECT_THROW(m.add_term(r, x + 5, 1.0), std::invalid_argument);
  EXPECT_THROW(m.add_term(r + 5, x, 1.0), std::invalid_argument);
}

TEST(Model, EvaluateAndFeasibility) {
  Model m;
  const VarId x = m.add_variable(1.0, 0.0, 10.0);
  const VarId y = m.add_variable(1.0, 0.0, 10.0);
  m.add_row(Relation::kLessEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Relation::kGreaterEqual, 1.0, {{x, 1.0}});
  EXPECT_TRUE(m.is_feasible({2.0, 3.0}));
  EXPECT_FALSE(m.is_feasible({3.0, 3.0}));  // row 0 violated
  EXPECT_FALSE(m.is_feasible({0.0, 1.0}));  // row 1 violated
  EXPECT_FALSE(m.is_feasible({2.0, 11.0}));  // bound violated
  EXPECT_DOUBLE_EQ(m.evaluate_objective({2.0, 3.0}), 5.0);
}

TEST(Model, DuplicateTermsAccumulate) {
  Model m;
  const VarId x = m.add_variable(1.0);
  const RowId r = m.add_constraint(Relation::kLessEqual, 4.0);
  m.add_term(r, x, 1.0);
  m.add_term(r, x, 2.0);
  EXPECT_DOUBLE_EQ(m.evaluate_row(r, {1.0}), 3.0);
}

// -------------------------------------------------------------- simplex --

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  (2, 6), obj 36.
  Model m;
  const VarId x = m.add_variable(-3.0);
  const VarId y = m.add_variable(-5.0);
  m.add_row(Relation::kLessEqual, 4.0, {{x, 1.0}});
  m.add_row(Relation::kLessEqual, 12.0, {{y, 2.0}});
  m.add_row(Relation::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, kTol);
  EXPECT_NEAR(s.values[0], 2.0, kTol);
  EXPECT_NEAR(s.values[1], 6.0, kTol);
}

TEST(Simplex, EqualityConstraintNeedsPhase1) {
  // min x + y  s.t. x + y = 3, x - y >= 1  ->  x=2, y=1 ... any point on the
  // segment has objective 3; check objective and feasibility.
  Model m;
  const VarId x = m.add_variable(1.0);
  const VarId y = m.add_variable(1.0);
  m.add_row(Relation::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Relation::kGreaterEqual, 1.0, {{x, 1.0}, {y, -1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, kTol);
  EXPECT_TRUE(m.is_feasible(s.values));
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_variable(1.0);
  m.add_row(Relation::kLessEqual, 1.0, {{x, 1.0}});
  m.add_row(Relation::kGreaterEqual, 2.0, {{x, 1.0}});
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualities) {
  Model m;
  const VarId x = m.add_variable(0.0);
  const VarId y = m.add_variable(0.0);
  m.add_row(Relation::kEqual, 1.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Relation::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const VarId x = m.add_variable(-1.0);  // min -x with x free upward
  m.add_row(Relation::kGreaterEqual, 0.0, {{x, 1.0}});
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, UpperBoundsAreRespected) {
  Model m;
  m.add_variable(-1.0, 0.0, 2.5);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 2.5, kTol);
}

TEST(Simplex, NonzeroLowerBoundsShiftCorrectly) {
  // min x + y  s.t. x + y >= 5, x >= 2, y in [1, 3].
  Model m;
  const VarId x = m.add_variable(1.0, 2.0);
  const VarId y = m.add_variable(1.0, 1.0, 3.0);
  m.add_row(Relation::kGreaterEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, kTol);
  EXPECT_GE(s.values[0], 2.0 - kTol);
  EXPECT_GE(s.values[1], 1.0 - kTol);
  EXPECT_LE(s.values[1], 3.0 + kTol);
}

TEST(Simplex, NegativeRhsRowsAreNormalized) {
  // min x  s.t. -x <= -3  (i.e. x >= 3).
  Model m;
  const VarId x = m.add_variable(1.0);
  m.add_row(Relation::kLessEqual, -3.0, {{x, -1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 3.0, kTol);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate vertex: multiple tight constraints at the optimum.
  Model m;
  const VarId x = m.add_variable(-1.0);
  const VarId y = m.add_variable(-1.0);
  m.add_row(Relation::kLessEqual, 1.0, {{x, 1.0}});
  m.add_row(Relation::kLessEqual, 1.0, {{y, 1.0}});
  m.add_row(Relation::kLessEqual, 2.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Relation::kLessEqual, 2.0, {{x, 2.0}, {y, 1.0} , {x, -1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, kTol);
}

TEST(Simplex, EmptyModelIsFeasible) {
  Model m;
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kOptimal);
}

TEST(Simplex, RedundantEqualityRowsHandled) {
  // Duplicate equality rows leave a redundant artificial basic at zero.
  Model m;
  const VarId x = m.add_variable(1.0);
  const VarId y = m.add_variable(2.0);
  m.add_row(Relation::kEqual, 2.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Relation::kEqual, 2.0, {{x, 1.0}, {y, 1.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, kTol);
  EXPECT_NEAR(s.values[0], 2.0, kTol);
}

TEST(Simplex, SolutionIsBasic) {
  Model m;
  const VarId x = m.add_variable(-3.0);
  const VarId y = m.add_variable(-5.0);
  m.add_row(Relation::kLessEqual, 4.0, {{x, 1.0}});
  m.add_row(Relation::kLessEqual, 12.0, {{y, 2.0}});
  m.add_row(Relation::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.is_basic.size(), 2u);
  // At the optimal vertex both structurals are strictly positive => basic.
  EXPECT_TRUE(s.is_basic[0]);
  EXPECT_TRUE(s.is_basic[1]);
}

/// Brute-force LP check on random small instances: enumerate all vertices
/// of {x in [0,u]^2 : rows} by intersecting constraint pairs and compare.
TEST(Simplex, MatchesVertexEnumerationOnRandom2D) {
  Rng rng(31);
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Model m;
    const double c0 = rng.uniform(-5.0, 5.0);
    const double c1 = rng.uniform(-5.0, 5.0);
    const double u0 = rng.uniform(1.0, 5.0);
    const double u1 = rng.uniform(1.0, 5.0);
    m.add_variable(c0, 0.0, u0);
    m.add_variable(c1, 0.0, u1);
    // Two random <= rows with positive rhs keep the problem feasible
    // (origin always works) and bounded (boxed variables).
    struct Row {
      double a0, a1, b;
    };
    Row rows[2];
    for (auto& row : rows) {
      row = {rng.uniform(-2.0, 3.0), rng.uniform(-2.0, 3.0), rng.uniform(0.5, 6.0)};
      m.add_row(Relation::kLessEqual, row.b, {{0, row.a0}, {1, row.a1}});
    }
    const Solution s = SimplexSolver().solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    ASSERT_TRUE(m.is_feasible(s.values, 1e-6));

    // Enumerate candidate vertices: intersections of all boundary pairs.
    std::vector<std::array<double, 2>> candidates;
    std::vector<std::array<double, 3>> lines = {
        {1.0, 0.0, 0.0},  {0.0, 1.0, 0.0},  {1.0, 0.0, u0},  {0.0, 1.0, u1},
        {rows[0].a0, rows[0].a1, rows[0].b}, {rows[1].a0, rows[1].a1, rows[1].b}};
    for (std::size_t i = 0; i < lines.size(); ++i) {
      for (std::size_t j = i + 1; j < lines.size(); ++j) {
        const double det = lines[i][0] * lines[j][1] - lines[j][0] * lines[i][1];
        if (std::abs(det) < 1e-9) continue;
        const double px = (lines[i][2] * lines[j][1] - lines[j][2] * lines[i][1]) / det;
        const double py = (lines[i][0] * lines[j][2] - lines[j][0] * lines[i][2]) / det;
        candidates.push_back({px, py});
      }
    }
    double best = 0.0;  // origin is feasible with objective 0
    for (const auto& c : candidates) {
      if (m.is_feasible({c[0], c[1]}, 1e-9)) {
        best = std::min(best, c0 * c[0] + c1 * c[1]);
      }
    }
    EXPECT_NEAR(s.objective, best, 1e-5) << "trial " << trial;
    ++solved;
  }
  EXPECT_EQ(solved, 200);
}

}  // namespace
}  // namespace mrlc::lp
