#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "radio/packet_sim.hpp"
#include "radio/power_trace.hpp"
#include "radio/propagation.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::radio {
namespace {

// ---------------------------------------------------------- propagation --

TEST(Propagation, TelosbPowerTable) {
  EXPECT_DOUBLE_EQ(telosb_tx_power_dbm(31), 0.0);
  EXPECT_DOUBLE_EQ(telosb_tx_power_dbm(19), -5.0);
  EXPECT_DOUBLE_EQ(telosb_tx_power_dbm(11), -10.0);
  EXPECT_DOUBLE_EQ(telosb_tx_power_dbm(3), -25.0);
  // Interpolated between datasheet points.
  EXPECT_DOUBLE_EQ(telosb_tx_power_dbm(17), -6.0);
  EXPECT_THROW(telosb_tx_power_dbm(2), std::invalid_argument);
  EXPECT_THROW(telosb_tx_power_dbm(32), std::invalid_argument);
}

TEST(Propagation, PathLossGrowsWithDistance) {
  const PropagationParams p;
  EXPECT_LT(mean_path_loss_db(p, 1.0), mean_path_loss_db(p, 2.0));
  EXPECT_LT(mean_path_loss_db(p, 2.0), mean_path_loss_db(p, 4.0));
  // 10 * exponent dB per decade.
  EXPECT_NEAR(mean_path_loss_db(p, 10.0) - mean_path_loss_db(p, 1.0),
              10.0 * p.path_loss_exponent, 1e-9);
  EXPECT_THROW(mean_path_loss_db(p, 0.0), std::invalid_argument);
}

TEST(Propagation, PrrCurveIsMonotoneInSnr) {
  double previous = 0.0;
  for (double snr = -5.0; snr <= 25.0; snr += 1.0) {
    const double prr = prr_from_snr_db(snr, 34.0);
    EXPECT_GE(prr, previous - 1e-15);
    EXPECT_GE(prr, 0.0);
    EXPECT_LE(prr, 1.0);
    previous = prr;
  }
  // Saturation at both ends.
  EXPECT_LT(prr_from_snr_db(-5.0, 34.0), 0.01);
  EXPECT_GT(prr_from_snr_db(25.0, 34.0), 0.999);
}

TEST(Propagation, LargerFramesAreHarder) {
  EXPECT_GT(prr_from_snr_db(7.0, 20.0), prr_from_snr_db(7.0, 120.0));
}

TEST(Propagation, ExpectedPrrReproducesFig2Shapes) {
  const PropagationParams p;
  // At 4 ft every power level is essentially loss-free.
  for (int level : {11, 15, 19}) {
    const double tx = telosb_tx_power_dbm(level);
    EXPECT_GT(expected_prr(p, tx, feet_to_meters(4.0)), 0.95) << "level " << level;
  }
  // At 16 ft the low power levels collapse below 10% while level 19 stays
  // clearly higher (the paper's headline observation).
  const double prr19 = expected_prr(p, telosb_tx_power_dbm(19), feet_to_meters(16.0));
  const double prr15 = expected_prr(p, telosb_tx_power_dbm(15), feet_to_meters(16.0));
  const double prr11 = expected_prr(p, telosb_tx_power_dbm(11), feet_to_meters(16.0));
  EXPECT_LT(prr11, 0.10);
  EXPECT_LT(prr15, 0.25);
  EXPECT_GT(prr19, 0.35);
  EXPECT_GT(prr19, prr15);
  EXPECT_GT(prr15, prr11);
}

TEST(Propagation, SampledPrrIsClampedAndSeeded) {
  const PropagationParams p;
  Rng rng1(5), rng2(5);
  for (int i = 0; i < 100; ++i) {
    const double a = sample_prr(p, -5.0, 3.0, rng1);
    const double b = sample_prr(p, -5.0, 3.0, rng2);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GE(a, p.min_prr);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Propagation, ValidatesParams) {
  PropagationParams p;
  p.min_prr = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = PropagationParams{};
  p.frame_bytes = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

// ------------------------------------------------------------ packet sim --

TEST(PacketSim, PerfectLinksDeliverEverything) {
  wsn::Network net(4, 0);
  net.add_link(0, 1, 1.0);
  net.add_link(1, 2, 1.0);
  net.add_link(2, 3, 1.0);
  const auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1, 2});
  Rng rng(1);
  const RoundResult r = simulate_round(net, tree, RetxPolicy{}, rng);
  EXPECT_EQ(r.packets_sent, 3u);  // one packet per non-sink node
  EXPECT_EQ(r.readings_delivered, 4);
  EXPECT_TRUE(r.round_complete);
}

TEST(PacketSim, NoRetxRoundSuccessMatchesReliability) {
  // Empirical round success over many rounds ~ Q(T).
  mrlc::testing::ToyNetwork toy;
  const auto tree = toy.tree_b();
  Rng rng(2);
  const AggregateResult agg =
      simulate_rounds(toy.net, tree, RetxPolicy{}, 20000, rng);
  EXPECT_NEAR(agg.round_success_ratio, wsn::tree_reliability(toy.net, tree), 0.02);
  // Without retransmissions exactly n-1 packets go out per round.
  EXPECT_DOUBLE_EQ(agg.avg_packets_per_round, 5.0);
}

TEST(PacketSim, RetxPacketsScaleAsInverseQuality) {
  // Fig. 1's mechanism: with retransmissions, expected transmissions per
  // link are 1/q, so a line of n nodes sends ~ (n-1)/q packets per round.
  wsn::Network net(6, 0);
  for (int v = 1; v < 6; ++v) net.add_link(v - 1, v, 0.5);
  const auto tree =
      wsn::AggregationTree::from_parents(net, {-1, 0, 1, 2, 3, 4});
  Rng rng(3);
  RetxPolicy retx;
  retx.enabled = true;
  const AggregateResult agg = simulate_rounds(net, tree, retx, 5000, rng);
  EXPECT_NEAR(agg.avg_packets_per_round, 5.0 / 0.5, 0.4);
  EXPECT_NEAR(agg.avg_readings_delivered, 6.0, 0.01);
}

TEST(PacketSim, RetxAttemptCapDropsPackets) {
  wsn::Network net(2, 0);
  net.add_link(0, 1, 0.01);
  const auto tree = wsn::AggregationTree::from_parents(net, {-1, 0});
  Rng rng(4);
  RetxPolicy retx;
  retx.enabled = true;
  retx.max_attempts_per_link = 3;
  const AggregateResult agg = simulate_rounds(net, tree, retx, 2000, rng);
  EXPECT_LE(agg.avg_packets_per_round, 3.0 + 1e-9);
  EXPECT_LT(agg.round_success_ratio, 0.2);
}

TEST(PacketSim, LostSubtreeReadingsNeverArrive) {
  // Chain 0 <- 1 <- 2 with a dead-ish middle link: when (1,0) fails the
  // sink gets only its own reading.
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.5);
  net.add_link(1, 2, 1.0);
  const auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1});
  Rng rng(5);
  int saw_partial = 0;
  for (int i = 0; i < 200; ++i) {
    const RoundResult r = simulate_round(net, tree, RetxPolicy{}, rng);
    if (!r.round_complete) {
      EXPECT_EQ(r.readings_delivered, 1);  // all-or-nothing through node 1
      ++saw_partial;
    }
  }
  EXPECT_GT(saw_partial, 30);
}

TEST(PacketSim, DroppedPacketsAndReadingsConserve) {
  // Losses must be visible, not silent: every round satisfies
  // delivered + lost == node_count, and without retransmissions every
  // failed transmission is a counted drop.
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net =
        mrlc::testing::small_random_network(12, 0.4, rng, 0.3, 0.95);
    const auto tree = mrlc::testing::random_tree(net, rng);
    for (int round = 0; round < 50; ++round) {
      const RoundResult r = simulate_round(net, tree, RetxPolicy{}, rng);
      EXPECT_EQ(r.readings_delivered + r.readings_lost, net.node_count());
      EXPECT_EQ(r.packets_sent,
                static_cast<std::uint64_t>(net.node_count() - 1));
      EXPECT_LE(r.packets_dropped, r.packets_sent);
      // Every loss is accounted: a round with no drops delivered everything,
      // and a drop always costs the sink at least the sender's own reading.
      if (r.packets_dropped == 0) {
        EXPECT_TRUE(r.round_complete);
      }
      EXPECT_GE(static_cast<std::uint64_t>(r.readings_lost), r.packets_dropped);
    }
  }
}

TEST(PacketSim, RetryHistogramAccountsEveryPacket) {
  wsn::Network net(4, 0);
  net.add_link(0, 1, 0.5);
  net.add_link(1, 2, 0.5);
  net.add_link(2, 3, 0.5);
  const auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1, 2});
  Rng rng(12);
  RetxPolicy retx;
  retx.enabled = true;
  retx.max_attempts_per_link = 6;
  const int kRounds = 400;
  const AggregateResult agg = simulate_rounds(net, tree, retx, kRounds, rng);
  ASSERT_EQ(agg.retry_histogram.size(), 6u);
  std::uint64_t packets = 0;
  std::uint64_t transmissions = 0;
  for (std::size_t k = 0; k < agg.retry_histogram.size(); ++k) {
    packets += agg.retry_histogram[k];
    transmissions += agg.retry_histogram[k] * (k + 1);
  }
  // One logical packet per non-sink node per round; the total transmission
  // count reassembles exactly from the histogram (no bucket overflowed).
  EXPECT_EQ(packets, static_cast<std::uint64_t>(3 * kRounds));
  EXPECT_DOUBLE_EQ(static_cast<double>(transmissions) / kRounds,
                   agg.avg_packets_per_round);
  EXPECT_GE(agg.avg_packets_dropped_per_round, 0.0);
}

TEST(PacketSim, HistogramCapAbsorbsLongRuns) {
  // max_attempts 10000 but only 32 buckets: the last bucket collects every
  // run of >= 32 attempts, so totals still conserve.
  wsn::Network net(2, 0);
  net.add_link(0, 1, 0.02);
  const auto tree = wsn::AggregationTree::from_parents(net, {-1, 0});
  Rng rng(13);
  RetxPolicy retx;
  retx.enabled = true;
  const int kRounds = 300;
  const AggregateResult agg = simulate_rounds(net, tree, retx, kRounds, rng);
  ASSERT_EQ(agg.retry_histogram.size(), 32u);
  std::uint64_t packets = 0;
  for (const std::uint64_t count : agg.retry_histogram) packets += count;
  EXPECT_EQ(packets, static_cast<std::uint64_t>(kRounds));
  EXPECT_GT(agg.retry_histogram.back(), 0u);  // q=0.02 runs overflow often
}

TEST(PacketSim, GilbertElliottKeepsLongRunDeliveryButFailsInBursts) {
  // Same nominal PRR, same retx policy: the burst channel delivers the same
  // long-run fraction of attempts, but its failures cluster so attempt-capped
  // packets drop far more often than under i.i.d. loss.
  wsn::Network net(2, 0);
  net.add_link(0, 1, 0.8);
  const auto tree = wsn::AggregationTree::from_parents(net, {-1, 0});
  RetxPolicy retx;
  retx.enabled = true;
  retx.max_attempts_per_link = 3;
  ChannelConfig bursty;
  bursty.model = ChannelModel::kGilbertElliott;
  bursty.mean_bad_burst = 10.0;
  Rng rng1(14), rng2(14);
  const AggregateResult iid = simulate_rounds(net, tree, retx, 20000, rng1);
  const AggregateResult ge =
      simulate_rounds(net, tree, retx, bursty, 20000, rng2);
  // i.i.d.: P(drop) = 0.2^3 = 0.008.  Bursty: a round that starts in Bad
  // usually burns all 3 attempts inside the burst and drops (~0.9^2 = 0.81).
  // Bad-start rounds consume ~3 channel slots vs 1 for good-start rounds, so
  // the per-round bad fraction sits below the per-slot stationary 0.2 and the
  // measured drop rate lands near 0.06-0.07 -- still ~8x the i.i.d. rate.
  EXPECT_LT(iid.avg_packets_dropped_per_round, 0.02);
  EXPECT_GT(ge.avg_packets_dropped_per_round,
            5.0 * iid.avg_packets_dropped_per_round);
}

TEST(PacketSim, InputValidation) {
  wsn::Network net(2, 0);
  net.add_link(0, 1, 1.0);
  const auto tree = wsn::AggregationTree::from_parents(net, {-1, 0});
  Rng rng(6);
  RetxPolicy bad;
  bad.max_attempts_per_link = 0;
  EXPECT_THROW(simulate_round(net, tree, bad, rng), std::invalid_argument);
  EXPECT_THROW(simulate_rounds(net, tree, RetxPolicy{}, 0, rng),
               std::invalid_argument);
}

// ----------------------------------------------------------- power trace --

TEST(PowerTrace, StateAveragesMatchPaperFig3) {
  const PowerTraceParams params;
  Rng rng(7);
  const PowerTrace send = synthesize_trace(RadioState::kSending, 500.0, params, rng);
  const PowerTrace recv = synthesize_trace(RadioState::kReceiving, 500.0, params, rng);
  const PowerTrace idle = synthesize_trace(RadioState::kIdle, 500.0, params, rng);
  EXPECT_NEAR(send.average_mw(), 80.0, 2.0);
  EXPECT_NEAR(recv.average_mw(), 60.0, 2.0);
  EXPECT_NEAR(idle.average_mw(), 0.08, 0.02);
}

TEST(PowerTrace, EnergyIntegratesPower) {
  const PowerTraceParams params;
  Rng rng(8);
  const PowerTrace t = synthesize_trace(RadioState::kReceiving, 1000.0, params, rng);
  // E[mJ] = avg mW * duration ms * 1e-3.
  EXPECT_NEAR(t.energy_mj(), t.average_mw() * t.duration_ms() * 1e-3, 1e-9);
}

TEST(PowerTrace, SamplesAreNonNegativeAndCounted) {
  const PowerTraceParams params;
  Rng rng(9);
  const PowerTrace t = synthesize_trace(RadioState::kSending, 100.0, params, rng);
  EXPECT_EQ(t.samples_mw.size(), static_cast<std::size_t>(100.0 / params.sample_period_ms));
  for (double s : t.samples_mw) EXPECT_GE(s, 0.0);
  EXPECT_THROW(synthesize_trace(RadioState::kIdle, 0.0, params, rng),
               std::invalid_argument);
}

TEST(PowerTrace, SummaryUsesAllSamples) {
  const PowerTraceParams params;
  Rng rng(10);
  const PowerTrace t = synthesize_trace(RadioState::kIdle, 50.0, params, rng);
  const Summary s = summarize_trace(t);
  EXPECT_EQ(s.count, t.samples_mw.size());
  EXPECT_NEAR(s.mean, t.average_mw(), 1e-9);
}

}  // namespace
}  // namespace mrlc::radio

// --------------------------------------------------------- depletion ----

#include "radio/depletion_sim.hpp"

namespace mrlc::radio {
namespace {

TEST(Depletion, MatchesEq1OnPerfectLinks) {
  wsn::Network net(5, 0);
  net.add_link(0, 1, 1.0);
  net.add_link(1, 2, 1.0);
  net.add_link(1, 3, 1.0);
  net.add_link(3, 4, 1.0);
  const auto tree =
      wsn::AggregationTree::from_parents(net, std::vector<int>{-1, 0, 1, 1, 3});
  Rng rng(81);
  const DepletionResult res = simulate_depletion(net, tree, RetxPolicy{}, 100, rng);
  // Perfect links, no retransmissions: exactly Eq. 1.
  EXPECT_NEAR(res.rounds_survived, res.analytic_lifetime,
              res.analytic_lifetime * 1e-9);
  EXPECT_EQ(res.first_dead, wsn::bottleneck_node(net, tree));
}

TEST(Depletion, LossyLinksWithoutRetxLastAtLeastAsLong) {
  // Without retransmissions every link carries exactly one attempt per
  // round, so rates match Eq. 1 for transmitting nodes; the sink (charged
  // a phantom Tx by Eq. 1) can only do better.
  mrlc::testing::ToyNetwork toy;
  const auto tree = toy.tree_a();
  Rng rng(82);
  const DepletionResult res =
      simulate_depletion(toy.net, tree, RetxPolicy{}, 4000, rng);
  EXPECT_GE(res.rounds_survived, res.analytic_lifetime * 0.999);
}

TEST(Depletion, RetransmissionsShortenLifetime) {
  // A chain of mediocre links with ETX retransmission: each node burns
  // ~Tx/q per round, so the lifetime shrinks by roughly the link quality.
  wsn::Network net(4, 0);
  const double q = 0.5;
  net.add_link(0, 1, q);
  net.add_link(1, 2, q);
  net.add_link(2, 3, q);
  const auto tree =
      wsn::AggregationTree::from_parents(net, std::vector<int>{-1, 0, 1, 2});
  Rng rng(83);
  RetxPolicy retx;
  retx.enabled = true;
  const DepletionResult res = simulate_depletion(net, tree, retx, 4000, rng);
  EXPECT_LT(res.rounds_survived, res.analytic_lifetime * 0.75);
  // The middle nodes pay ~(Tx + Rx)/q instead of Tx + Rx.
  const double expected_rate =
      (net.energy_model().tx_joules + net.energy_model().rx_joules) / q;
  EXPECT_NEAR(res.joules_per_round[1], expected_rate, expected_rate * 0.05);
}

TEST(Depletion, SinkConsumesOnlyRx) {
  wsn::Network net(2, 0);
  net.add_link(0, 1, 1.0);
  const auto tree = wsn::AggregationTree::from_parents(net, std::vector<int>{-1, 0});
  Rng rng(84);
  const DepletionResult res = simulate_depletion(net, tree, RetxPolicy{}, 50, rng);
  EXPECT_NEAR(res.joules_per_round[0], net.energy_model().rx_joules, 1e-12);
  EXPECT_NEAR(res.joules_per_round[1], net.energy_model().tx_joules, 1e-12);
  // Eq. 1 charges the sink Tx although it never transmits, so the paper's
  // analytic lifetime is conservative here.
  EXPECT_GE(res.rounds_survived, res.analytic_lifetime);
}

TEST(Depletion, RejectsBadInput) {
  mrlc::testing::ToyNetwork toy;
  Rng rng(85);
  EXPECT_THROW(simulate_depletion(toy.net, toy.tree_a(), RetxPolicy{}, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mrlc::radio
