#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/ira.hpp"
#include "distributed/churn.hpp"
#include "distributed/maintainer.hpp"
#include "helpers.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::dist {
namespace {

using mrlc::testing::small_random_network;

TEST(Churn, QualitiesStayInClampedDomain) {
  Rng rng(71);
  wsn::Network net = small_random_network(10, 0.6, rng, 0.3, 0.99);
  ChurnOptions options;
  options.cost_noise_sigma = 0.5;  // violent churn
  ChurnProcess churn(net, options);
  for (int step = 0; step < 200; ++step) {
    churn.step(net, rng);
    for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
      EXPECT_GE(net.link_prr(id), options.min_prr - 1e-12);
      EXPECT_LE(net.link_prr(id), options.max_prr + 1e-12);
    }
  }
  EXPECT_EQ(churn.steps_taken(), 200);
}

TEST(Churn, DeterministicForSameSeed) {
  Rng build_rng(72);
  const wsn::Network base = small_random_network(8, 0.6, build_rng);
  wsn::Network a = base;
  wsn::Network b = base;
  ChurnProcess churn_a(a);
  ChurnProcess churn_b(b);
  Rng rng_a(5), rng_b(5);
  for (int step = 0; step < 50; ++step) {
    const auto ea = churn_a.step(a, rng_a);
    const auto eb = churn_b.step(b, rng_b);
    ASSERT_EQ(ea.size(), eb.size());
    for (wsn::EdgeId id = 0; id < a.link_count(); ++id) {
      EXPECT_DOUBLE_EQ(a.link_prr(id), b.link_prr(id));
    }
  }
}

TEST(Churn, EventsClassifyDirectionCorrectly) {
  Rng rng(73);
  wsn::Network net = small_random_network(10, 0.6, rng, 0.4, 0.95);
  ChurnOptions options;
  options.cost_noise_sigma = 0.2;
  options.event_threshold = 0.02;
  ChurnProcess churn(net, options);
  int events_seen = 0;
  for (int step = 0; step < 100; ++step) {
    for (const LinkEvent& event : churn.step(net, rng)) {
      ++events_seen;
      EXPECT_GE(event.link, 0);
      EXPECT_LT(event.link, net.link_count());
      if (event.kind == LinkEvent::Kind::kDegraded) {
        EXPECT_LT(event.new_prr, event.old_prr + 1e-12);
      } else {
        EXPECT_GT(event.new_prr, event.old_prr - 1e-12);
      }
      EXPECT_DOUBLE_EQ(event.new_prr, net.link_prr(event.link));
    }
  }
  EXPECT_GT(events_seen, 10) << "violent churn must produce events";
}

TEST(Churn, SilentBelowThreshold) {
  Rng rng(74);
  wsn::Network net = small_random_network(8, 0.6, rng, 0.5, 0.9);
  ChurnOptions options;
  options.cost_noise_sigma = 1e-6;  // negligible noise
  options.mean_reversion = 0.0;
  ChurnProcess churn(net, options);
  for (int step = 0; step < 50; ++step) {
    EXPECT_TRUE(churn.step(net, rng).empty());
  }
}

TEST(Churn, MeanReversionPullsBackToAnchor) {
  Rng rng(75);
  wsn::Network net(2, 0);
  const wsn::EdgeId link = net.add_link(0, 1, 0.9);
  ChurnOptions options;
  options.cost_noise_sigma = 0.0;  // pure reversion
  options.mean_reversion = 0.3;
  ChurnProcess churn(net, options);
  net.set_link_prr(link, 0.4);  // perturb far from the anchor
  for (int step = 0; step < 60; ++step) churn.step(net, rng);
  EXPECT_NEAR(net.link_prr(link), 0.9, 0.01);
}

TEST(Churn, RejectsBadOptions) {
  Rng rng(76);
  const wsn::Network net = small_random_network(6, 0.7, rng);
  ChurnOptions bad;
  bad.mean_reversion = 1.5;
  EXPECT_THROW(ChurnProcess(net, bad), std::invalid_argument);
  bad = ChurnOptions{};
  bad.min_prr = 0.9;
  bad.max_prr = 0.5;
  EXPECT_THROW(ChurnProcess(net, bad), std::invalid_argument);
  bad = ChurnOptions{};
  bad.event_threshold = 0.0;
  EXPECT_THROW(ChurnProcess(net, bad), std::invalid_argument);
}

TEST(Churn, ClampsPrrAtBothBoundaries) {
  // Huge cost shocks must never push a PRR outside [min_prr, max_prr].
  Rng rng(90);
  wsn::Network net = small_random_network(8, 0.8, rng, 0.3, 0.99);
  ChurnOptions options;
  options.cost_noise_sigma = 10.0;  // jumps far past both clamps
  options.min_prr = 0.05;
  options.max_prr = 0.95;
  ChurnProcess churn(net, options);
  bool hit_floor = false;
  bool hit_ceiling = false;
  for (int step = 0; step < 20; ++step) {
    churn.step(net, rng);
    for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
      const double prr = net.link_prr(id);
      ASSERT_GE(prr, options.min_prr * (1 - 1e-12));
      ASSERT_LE(prr, options.max_prr * (1 + 1e-12));
      if (prr <= options.min_prr * (1 + 1e-9)) hit_floor = true;
      if (prr >= options.max_prr * (1 - 1e-9)) hit_ceiling = true;
    }
  }
  // With sigma 10 the walk saturates; both clamps must actually engage.
  EXPECT_TRUE(hit_floor);
  EXPECT_TRUE(hit_ceiling);
}

TEST(Churn, SubThresholdNoiseRaisesNoEvents) {
  // Noise far below the relative event threshold must stay silent forever:
  // the estimator does not re-broadcast measurement jitter.
  Rng rng(91);
  wsn::Network net = small_random_network(10, 0.7, rng, 0.5, 0.95);
  ChurnOptions options;
  options.cost_noise_sigma = 1e-5;
  options.event_threshold = 0.05;
  ChurnProcess churn(net, options);
  for (int step = 0; step < 300; ++step) {
    EXPECT_TRUE(churn.step(net, rng).empty()) << "event storm at step " << step;
  }
}

TEST(Churn, EventThresholdHasHysteresis) {
  // The reference point moves only when an event fires, so a drop fires
  // exactly once and small wiggles around the new level stay silent.
  wsn::Network net(2, 0);
  const wsn::EdgeId link = net.add_link(0, 1, 0.9);
  ChurnOptions options;
  options.mean_reversion = 0.0;
  options.cost_noise_sigma = 0.0;  // churn adds nothing; we drive PRR by hand
  options.event_threshold = 0.05;
  ChurnProcess churn(net, options);
  Rng rng(92);

  net.set_link_prr(link, 0.8);  // -11% vs the reported 0.9
  auto events = churn.step(net, rng);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, LinkEvent::Kind::kDegraded);
  EXPECT_EQ(events[0].new_prr, 0.8);

  EXPECT_TRUE(churn.step(net, rng).empty()) << "same level must not re-fire";

  net.set_link_prr(link, 0.78);  // -2.5% vs the new reference 0.8
  EXPECT_TRUE(churn.step(net, rng).empty()) << "sub-threshold wiggle fired";

  net.set_link_prr(link, 0.75);  // -6.25% vs 0.8: past the threshold again
  events = churn.step(net, rng);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, LinkEvent::Kind::kDegraded);

  net.set_link_prr(link, 0.77);  // +2.7% vs 0.75: silent again
  EXPECT_TRUE(churn.step(net, rng).empty());
}

TEST(Churn, MismatchedNetworkRejected) {
  Rng rng(77);
  wsn::Network a = small_random_network(6, 0.9, rng);
  wsn::Network b = small_random_network(9, 0.9, rng);
  ChurnProcess churn(a);
  EXPECT_THROW(churn.step(b, rng), std::invalid_argument);
}

/// End-to-end: churn drives the maintainer; the tree stays a valid
/// spanning tree satisfying the lifetime bound throughout.
TEST(Churn, DrivesMaintainerSafely) {
  Rng rng(78);
  wsn::Network net = small_random_network(12, 0.6, rng, 0.5, 0.99);
  const double bound = net.energy_model().node_lifetime(3000.0, 6);
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IraResult initial = core::IterativeRelaxation(options).solve(net, bound);
  if (!initial.meets_bound) GTEST_SKIP() << "instance too tight for the driver";

  DistributedMaintainer maintainer(net, initial.tree, bound);
  ChurnOptions churn_options;
  churn_options.cost_noise_sigma = 0.05;
  ChurnProcess churn(net, churn_options);
  for (int step = 0; step < 100; ++step) {
    for (const LinkEvent& event : churn.step(net, rng)) {
      if (event.kind == LinkEvent::Kind::kDegraded) {
        maintainer.on_link_degraded(net, event.link);
      } else {
        maintainer.on_link_improved(net, event.link);
      }
    }
    EXPECT_EQ(maintainer.tree().edge_ids().size(),
              static_cast<std::size_t>(net.node_count() - 1));
    EXPECT_GE(wsn::network_lifetime(net, maintainer.tree()), bound * (1 - 1e-12))
        << "step " << step;
  }
}

}  // namespace
}  // namespace mrlc::dist
