/// \file tools_cli_test.cpp
/// \brief End-to-end tests of the command-line tools: mrlc_gen piped into
/// mrlc_solve, the --metrics-json contract (parseable JSON containing every
/// key listed in tests/data/metrics_keys.golden, with nonzero core
/// counters), and the mrlc_bench sweep in deterministic mode.
///
/// The tool binary paths arrive as compile definitions
/// (MRLC_TOOL_GEN/MRLC_TOOL_SOLVE/MRLC_TOOL_BENCH), so the test always
/// exercises the binaries built alongside it.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
#ifndef _WIN32
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
  return status;
#endif
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------------------------ JSON parser --
//
// Minimal recursive-descent JSON reader: just enough to validate
// well-formedness and pull out object keys and numeric values.  No JSON
// library ships with the toolchain, and the metrics emitter is exactly the
// kind of hand-rolled printer that deserves an independent parse.

struct JsonParser {
  const std::string& text;
  std::size_t at = 0;
  bool ok = true;
  /// Flattened "a.b.c" key -> raw value token for numbers/strings/bools.
  std::map<std::string, std::string> scalars;
  std::vector<std::string> keys;  ///< every object key seen, bare

  explicit JsonParser(const std::string& t) : text(t) {}

  void skip_ws() {
    while (at < text.size() && (text[at] == ' ' || text[at] == '\n' ||
                                text[at] == '\t' || text[at] == '\r')) {
      ++at;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (at < text.size() && text[at] == c) {
      ++at;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    skip_ws();
    std::string out;
    if (at >= text.size() || text[at] != '"') {
      ok = false;
      return out;
    }
    ++at;
    while (at < text.size() && text[at] != '"') {
      if (text[at] == '\\' && at + 1 < text.size()) ++at;
      out += text[at++];
    }
    if (at >= text.size()) {
      ok = false;
      return out;
    }
    ++at;  // closing quote
    return out;
  }

  void parse_value(const std::string& prefix) {
    skip_ws();
    if (at >= text.size()) {
      ok = false;
      return;
    }
    const char c = text[at];
    if (c == '{') {
      ++at;
      skip_ws();
      if (consume('}')) return;
      do {
        const std::string key = parse_string();
        if (!ok || !consume(':')) {
          ok = false;
          return;
        }
        keys.push_back(key);
        parse_value(prefix.empty() ? key : prefix + "." + key);
        if (!ok) return;
      } while (consume(','));
      if (!consume('}')) ok = false;
    } else if (c == '[') {
      ++at;
      skip_ws();
      if (consume(']')) return;
      int index = 0;
      do {
        parse_value(prefix + "[" + std::to_string(index++) + "]");
        if (!ok) return;
      } while (consume(','));
      if (!consume(']')) ok = false;
    } else if (c == '"') {
      scalars[prefix] = parse_string();
    } else {
      std::string token;
      while (at < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[at])) != 0 ||
              text[at] == '-' || text[at] == '+' || text[at] == '.')) {
        token += text[at++];
      }
      if (token.empty()) {
        ok = false;
        return;
      }
      scalars[prefix] = token;
    }
  }

  bool parse() {
    parse_value("");
    skip_ws();
    return ok && at == text.size();
  }
};

/// Generates a 16-node network once and reuses it across tests.  The path
/// is per-process: gtest_discover_tests runs every TEST as its own process,
/// potentially in parallel, and concurrent regenerations of one shared
/// file race (one process truncates while another reads).
const std::string& network_path() {
  static const std::string path = [] {
    const std::string p =
        tmp_path("tools_cli_net_" + std::to_string(::getpid()) + ".txt");
    const int rc = run_command(std::string(MRLC_TOOL_GEN) +
                               " dfl --nodes 16 --seed 7 > " + p);
    EXPECT_EQ(rc, 0) << "mrlc_gen failed";
    return p;
  }();
  return path;
}

TEST(ToolsCli, GenPipesIntoSolve) {
  const std::string tree = tmp_path("tools_cli_tree.txt");
  const int rc = run_command(std::string(MRLC_TOOL_SOLVE) +
                             " mst < " + network_path() + " > " + tree +
                             " 2> /dev/null");
  ASSERT_EQ(rc, 0);
  EXPECT_NE(read_file(tree).find("tree"), std::string::npos);
}

TEST(ToolsCli, MetricsJsonParsesAndHasDocumentedKeys) {
  const std::string metrics_path = tmp_path("tools_cli_metrics.json");
  const int rc = run_command(std::string(MRLC_TOOL_SOLVE) +
                             " ira --lifetime 100 --metrics-json " +
                             metrics_path + " < " + network_path() +
                             " > /dev/null 2> /dev/null");
  ASSERT_EQ(rc, 0);

  const std::string json = read_file(metrics_path);
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse()) << "metrics JSON failed to parse near byte "
                              << parser.at << ":\n"
                              << json;

  EXPECT_EQ(parser.scalars["schema"], "mrlc-metrics-v1");

  // Every key the documentation promises must be present.
  std::ifstream golden(MRLC_METRICS_GOLDEN);
  ASSERT_TRUE(golden.is_open()) << "cannot open " << MRLC_METRICS_GOLDEN;
  std::string line;
  while (std::getline(golden, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(std::find(parser.keys.begin(), parser.keys.end(), line),
              parser.keys.end())
        << "documented key missing from metrics JSON: " << line;
  }

  // The acceptance bar: a real solve records real work.
  EXPECT_GT(std::stoll(parser.scalars["counters.ira.outer_iterations"]), 0);
  EXPECT_GT(std::stoll(parser.scalars["counters.simplex.pivots"]), 0);
  EXPECT_GT(std::stoll(parser.scalars["counters.separation.calls"]), 0);
}

TEST(ToolsCli, DataplaneMetricsJsonHasDocumentedKeys) {
  const std::string metrics_path = tmp_path("tools_cli_dataplane_metrics.json");
  const int rc = run_command(std::string(MRLC_TOOL_SOLVE) +
                             " dataplane --lifetime 100 --rounds 40"
                             " --repair estimator --metrics-json " +
                             metrics_path + " < " + network_path() +
                             " > /dev/null 2> /dev/null");
  ASSERT_EQ(rc, 0);

  const std::string json = read_file(metrics_path);
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse()) << "metrics JSON failed to parse near byte "
                              << parser.at << ":\n"
                              << json;

  std::ifstream golden(MRLC_DATAPLANE_METRICS_GOLDEN);
  ASSERT_TRUE(golden.is_open()) << "cannot open "
                                << MRLC_DATAPLANE_METRICS_GOLDEN;
  std::string line;
  while (std::getline(golden, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(std::find(parser.keys.begin(), parser.keys.end(), line),
              parser.keys.end())
        << "documented key missing from dataplane metrics JSON: " << line;
  }

  // A real run retires one event per node per round on the default
  // (event-driven) engine.
  EXPECT_GT(std::stoll(parser.scalars["counters.dataplane.events_processed"]),
            0);
  EXPECT_GT(std::stoll(parser.scalars["counters.des.windows"]), 0);
}

TEST(ToolsCli, MetricsDisabledByEnvironment) {
  const std::string metrics_path = tmp_path("tools_cli_metrics_off.json");
  const int rc = run_command("MRLC_METRICS=0 " + std::string(MRLC_TOOL_SOLVE) +
                             " ira --lifetime 100 --metrics-json " +
                             metrics_path + " < " + network_path() +
                             " > /dev/null 2> /dev/null");
  ASSERT_EQ(rc, 0);
  const std::string json = read_file(metrics_path);
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse());
  EXPECT_EQ(parser.scalars["enabled"], "false");
  // Counters may be registered but must have recorded nothing.
  const auto it = parser.scalars.find("counters.ira.outer_iterations");
  if (it != parser.scalars.end()) EXPECT_EQ(std::stoll(it->second), 0);
}

TEST(ToolsCli, BenchDeterministicModeIsReproducible) {
  const std::string first = tmp_path("tools_cli_bench1.json");
  const std::string second = tmp_path("tools_cli_bench2.json");
  const std::string base_cmd = std::string(MRLC_TOOL_BENCH) +
                               " --repeats 1 --no-timings --workload "
                               "ira_dfl_n16 --out ";
  ASSERT_EQ(run_command(base_cmd + first + " 2> /dev/null"), 0);
  ASSERT_EQ(run_command(base_cmd + second + " 2> /dev/null"), 0);
  EXPECT_EQ(read_file(first), read_file(second));

  const std::string json = read_file(first);
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse()) << json;
  EXPECT_EQ(parser.scalars["schema"], "mrlc-bench-v1");
  EXPECT_EQ(parser.scalars["workloads[0].name"], "ira_dfl_n16");
  EXPECT_GT(
      std::stoll(parser.scalars["workloads[0].metrics.counters.ira.solves"]),
      0);
}

// ------------------------------------------------------ exit-code contract --
//
// mrlc_solve documents: 0 solved, 2 feasible-budget-exhausted (incumbent
// printed), 3 infeasible, 4 bad usage / malformed input, 5 internal error.

TEST(ToolsCli, UsageAndBadFlagsExitFour) {
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " no-such-mode < " + network_path() +
                        " > /dev/null 2> /dev/null"),
            4);
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --lifetime < " + network_path() +
                        " > /dev/null 2> /dev/null"),
            4)
      << "flag with missing value";
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --lifetime 100 --threads banana < " +
                        network_path() + " > /dev/null 2> /dev/null"),
            4);
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --lifetime 100 --inject no.such_fault < " +
                        network_path() + " > /dev/null 2> /dev/null"),
            4);
  EXPECT_EQ(run_command("MRLC_FAULTS=no.such_fault " +
                        std::string(MRLC_TOOL_SOLVE) +
                        " ira --lifetime 100 < " + network_path() +
                        " > /dev/null 2> /dev/null"),
            4);
}

TEST(ToolsCli, CorruptCorpusExitsFour) {
  // Every file in the malformed-input corpus must die with the documented
  // parse/validation exit code — not a crash, not a tree.
  const char* kCorpus[] = {"energy_negative.net", "prr_zero.net",
                           "prr_above_one.net",   "truncated.net",
                           "bad_keyword.net",     "sink_out_of_range.net"};
  for (const char* name : kCorpus) {
    const std::string path = std::string(MRLC_CORRUPT_DIR) + "/" + name;
    EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) + " mst < " + path +
                          " > /dev/null 2> /dev/null"),
              4)
        << name;
  }
}

TEST(ToolsCli, InfeasibleBoundExitsThree) {
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --lifetime 1000000000 < " + network_path() +
                        " > /dev/null 2> /dev/null"),
            3);
}

TEST(ToolsCli, BudgetExhaustionExitsTwoWithDeterministicIncumbent) {
  // A tiny work budget forces the anytime path: exit 2, a valid incumbent
  // tree on stdout, and — the determinism contract — byte-identical output
  // for every thread count.
  const std::string serial = tmp_path("tools_cli_budget_t1.txt");
  const std::string wide = tmp_path("tools_cli_budget_t8.txt");
  const std::string base_cmd = std::string(MRLC_TOOL_SOLVE) +
                               " ira --lifetime 100 --budget 5 < " +
                               network_path();
  EXPECT_EQ(run_command(base_cmd + " --threads 1 > " + serial +
                        " 2> /dev/null"),
            2);
  EXPECT_EQ(run_command(base_cmd + " --threads 8 > " + wide +
                        " 2> /dev/null"),
            2);
  const std::string tree = read_file(serial);
  EXPECT_NE(tree.find("mrlc-tree"), std::string::npos);
  EXPECT_EQ(tree, read_file(wide));
}

TEST(ToolsCli, UnlimitedBudgetStillExitsZero) {
  // A generous budget must not change the happy path's exit code.
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --lifetime 100 --budget 100000000 < " +
                        network_path() + " > /dev/null 2> /dev/null"),
            0);
}

TEST(ToolsCli, ZeroBudgetIsHardZeroNotUnlimited) {
  // Regression: `--budget 0` once slipped one LP solve through before the
  // first charge noticed.  Zero must mean zero — the seeded incumbent
  // comes back (exit 2) with literally no work charged.
  const std::string out = tmp_path("tools_cli_budget0_tree.txt");
  const std::string err = tmp_path("tools_cli_budget0_err.txt");
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --lifetime 100 --budget 0 < " + network_path() +
                        " > " + out + " 2> " + err),
            2);
  EXPECT_NE(read_file(out).find("mrlc-tree"), std::string::npos);
  EXPECT_NE(read_file(err).find("budget used 0 work units"),
            std::string::npos);
}

TEST(ToolsCli, ZeroDeadlineIsHardZeroNotUnlimited) {
  // Same contract for `--deadline-ms 0`: already expired, so the anytime
  // layer returns the incumbent before the first clock-poll stride runs
  // 64 units of LP work.
  const std::string out = tmp_path("tools_cli_deadline0_tree.txt");
  const std::string err = tmp_path("tools_cli_deadline0_err.txt");
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --lifetime 100 --deadline-ms 0 < " +
                        network_path() + " > " + out + " 2> " + err),
            2);
  EXPECT_NE(read_file(out).find("mrlc-tree"), std::string::npos);
  EXPECT_NE(read_file(err).find("budget used 0 work units"),
            std::string::npos);
}

TEST(ToolsCli, InjectedRecoverableFaultsReproduceTheCleanTree) {
  const std::string clean = tmp_path("tools_cli_fault_clean.txt");
  ASSERT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --lifetime 100 < " + network_path() + " > " +
                        clean + " 2> /dev/null"),
            0);
  const std::string clean_tree = read_file(clean);
  for (const char* name : {"lp.force_cold", "lp.drop_basis",
                           "cutpool.corrupt", "separation.flow_fail"}) {
    const std::string out = tmp_path(std::string("tools_cli_fault_") + name);
    EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                          " ira --lifetime 100 --inject " + name + " < " +
                          network_path() + " > " + out + " 2> /dev/null"),
              0)
        << name;
    EXPECT_EQ(read_file(out), clean_tree) << name;
  }
}

TEST(ToolsCli, InjectedTaskFailureExitsFive) {
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --lifetime 100 --inject parallel.task_fail < " +
                        network_path() + " > /dev/null 2> /dev/null"),
            5);
}

TEST(ToolsCli, BenchCountersIdenticalAcrossThreadCounts) {
  // The PR 4/5 determinism invariant, end to end: every counter in the
  // bench output — pivots, cuts, max-flow calls, pool hits — is a pure
  // function of the workload, never of the pool width.  Only the recorded
  // `config.threads` field may differ.
  const std::string serial = tmp_path("tools_cli_bench_t1.json");
  const std::string wide = tmp_path("tools_cli_bench_t8.json");
  const std::string base_cmd = std::string(MRLC_TOOL_BENCH) +
                               " --repeats 1 --no-timings --workload "
                               "ira_dfl_n16 --out ";
  ASSERT_EQ(run_command(base_cmd + serial + " --threads 1 2> /dev/null"), 0);
  ASSERT_EQ(run_command(base_cmd + wide + " --threads 8 2> /dev/null"), 0);

  const auto strip_config_threads = [](std::string text) {
    std::istringstream in(text);
    std::string out;
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"config\"") == std::string::npos) {
        out += line;
        out += '\n';
      }
    }
    return out;
  };
  EXPECT_EQ(strip_config_threads(read_file(serial)),
            strip_config_threads(read_file(wide)));

  // The warm-start counters made it into the snapshot, and no solve on a
  // stock workload ever abandoned its warm basis.
  const std::string wide_json = read_file(wide);
  JsonParser parser(wide_json);
  ASSERT_TRUE(parser.parse()) << wide_json;
  EXPECT_GT(std::stoll(
                parser.scalars["workloads[0].metrics.counters.simplex.warm_solves"]),
            0);
  EXPECT_EQ(std::stoll(parser.scalars
                           ["workloads[0].metrics.counters.simplex.cold_fallbacks"]),
            0);
}

// --------------------------------------------------------- variant flags --

TEST(ToolsCli, SolveIraAndVariantMrlcAreByteIdenticalOnStdout) {
  // The tentpole parity contract, end to end through the CLI: the historic
  // `ira` mode and the variant front door with --variant mrlc must emit the
  // same tree bytes (stderr narrates differently; stdout may not).
  const std::string legacy = tmp_path("tools_cli_variant_legacy.txt");
  const std::string routed = tmp_path("tools_cli_variant_routed.txt");
  ASSERT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --lifetime 100 < " + network_path() + " > " +
                        legacy + " 2> /dev/null"),
            0);
  ASSERT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --variant mrlc --lifetime 100 < " +
                        network_path() + " > " + routed + " 2> /dev/null"),
            0);
  EXPECT_EQ(read_file(legacy), read_file(routed));
}

TEST(ToolsCli, SolveAcceptsEveryVariantAndRejectsUnknownOnes) {
  for (const char* name : {"etx", "min_energy", "max_lifetime"}) {
    EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                          " ira --variant " + name + " --lifetime 1 < " +
                          network_path() + " > /dev/null 2> /dev/null"),
              0)
        << name;
  }
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) +
                        " ira --variant bogus --lifetime 100 < " +
                        network_path() + " > /dev/null 2> /dev/null"),
            4);
}

TEST(ToolsCli, EveryVariantEmitsItsOwnSolveCounterAndGauge) {
  // mrlc_solve eagerly registers the whole ira.variant_solves.* family, so
  // every metrics document carries every key (the golden test pins that);
  // here each run must additionally have bumped *its own* counter and set
  // the solver.variant gauge to its ordinal.
  const char* kVariants[] = {"mrlc", "etx", "min_energy", "max_lifetime"};
  for (int ordinal = 0; ordinal < 4; ++ordinal) {
    const std::string name = kVariants[ordinal];
    const std::string metrics_path =
        tmp_path("tools_cli_variant_metrics_" + name + ".json");
    ASSERT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) + " ira --variant " +
                          name + " --lifetime 1 --metrics-json " +
                          metrics_path + " < " + network_path() +
                          " > /dev/null 2> /dev/null"),
              0)
        << name;
    const std::string json = read_file(metrics_path);
    JsonParser parser(json);
    ASSERT_TRUE(parser.parse()) << name;
    EXPECT_EQ(
        std::stoll(parser.scalars["counters.ira.variant_solves." + name]), 1)
        << name;
    for (const char* other : kVariants) {
      if (name == other) continue;
      EXPECT_EQ(std::stoll(
                    parser.scalars[std::string("counters.ira.variant_solves.") +
                                   other]),
                0)
          << name << " bled into " << other;
    }
    EXPECT_EQ(std::stoll(parser.scalars["gauges.solver.variant"]), ordinal)
        << name;
  }
}

TEST(ToolsCli, GenExpectedCostAnnotationIsDeterministicAndStaysParseable) {
  const std::string first = tmp_path("tools_cli_annot1.txt");
  const std::string second = tmp_path("tools_cli_annot2.txt");
  const std::string gen_cmd =
      std::string(MRLC_TOOL_GEN) +
      " random --nodes 12 --seed 3 --annotate-cost 100 --variant etx > ";
  ASSERT_EQ(run_command(gen_cmd + first + " 2> /dev/null"), 0);
  ASSERT_EQ(run_command(gen_cmd + second + " 2> /dev/null"), 0);
  // Generator and solver are pinned together: same seed, same annotation.
  EXPECT_EQ(read_file(first), read_file(second));
  EXPECT_NE(read_file(first).find("# expected-cost variant=etx lifetime=100 "
                                  "objective="),
            std::string::npos);
  // The annotation is a comment, so the file still solves downstream.
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_SOLVE) + " mst < " + first +
                        " > /dev/null 2> /dev/null"),
            0);
  // --variant is meaningless without --annotate-cost: usage error.
  EXPECT_EQ(run_command(std::string(MRLC_TOOL_GEN) +
                        " random --nodes 12 --seed 3 --variant etx "
                        "> /dev/null 2> /dev/null"),
            2);
}

}  // namespace
