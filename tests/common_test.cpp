#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"

namespace mrlc {
namespace {

// ---------------------------------------------------------------- check --

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(MRLC_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(MRLC_REQUIRE(true, "fine"));
}

TEST(Check, EnsureThrowsLogicError) {
  EXPECT_THROW(MRLC_ENSURE(false, "boom"), std::logic_error);
  EXPECT_NO_THROW(MRLC_ENSURE(true, "fine"));
}

TEST(Check, MessagesCarryContext) {
  try {
    MRLC_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Check, InfeasibleErrorIsRuntimeError) {
  EXPECT_THROW(throw InfeasibleError("x"), std::runtime_error);
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen, (std::set<std::int64_t>{3, 4, 5, 6, 7}));
  EXPECT_THROW(rng.uniform_int(7, 3), std::invalid_argument);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(14);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(15);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng base(99);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 3);
}

// ----------------------------------------------------------- statistics --

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(1.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_THROW(percentile(v, 1.5), std::invalid_argument);
}

TEST(Percentile, EdgeSizes) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.99), 7.0);
}

TEST(Summarize, FullSummary) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  const std::vector<double> v{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 3.0);
}

// ---------------------------------------------------------------- table --

TEST(Table, AlignsColumnsAndPrintsHeader) {
  Table t({"name", "value"});
  t.begin_row().add("alpha").add(1.5, 2);
  t.begin_row().add("b").add(22LL);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.begin_row().add("x,y").add("quo\"te");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"quo\"\"te\""), std::string::npos);
}

TEST(Table, RejectsMisuse) {
  Table t({"a"});
  EXPECT_THROW(t.add("no row yet"), std::invalid_argument);
  t.begin_row().add("ok");
  EXPECT_THROW(t.add("too many"), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, IncompleteRowRejectedOnNextRow) {
  Table t({"a", "b"});
  t.begin_row().add("only one");
  EXPECT_THROW(t.begin_row(), std::invalid_argument);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace mrlc

// --------------------------------------------------------------- parallel --

#include <atomic>

#include "common/parallel.hpp"

namespace mrlc {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingle) {
  int calls = 0;
  parallel_for(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](int i) { EXPECT_EQ(i, 0); ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_THROW(parallel_for(-1, [](int) {}), std::invalid_argument);
}

TEST(ParallelFor, SingleThreadModeIsOrdered) {
  std::vector<int> order;
  parallel_for(10, [&](int i) { order.push_back(i); }, /*max_threads=*/1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelFor, PropagatesBodyExceptions) {
  EXPECT_THROW(
      parallel_for(100, [&](int i) {
        if (i == 57) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ParallelFor, ResultsMatchSequential) {
  // Deterministic per-index computation: parallel == sequential.
  std::vector<double> par(1000), seq(1000);
  auto work = [](int i) {
    Rng rng(static_cast<std::uint64_t>(i));
    return rng.uniform() + i;
  };
  parallel_for(1000, [&](int i) { par[static_cast<std::size_t>(i)] = work(i); });
  for (int i = 0; i < 1000; ++i) seq[static_cast<std::size_t>(i)] = work(i);
  EXPECT_EQ(par, seq);
}

}  // namespace
}  // namespace mrlc
