#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/exact.hpp"
#include "core/ira.hpp"
#include "helpers.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {
namespace {

using mrlc::testing::small_random_network;

// ------------------------------------------------------------- L' bound --

TEST(StrictBound, MatchesFormula) {
  wsn::Network net(3, 0);
  net.add_link(0, 1, 1.0);
  net.add_link(1, 2, 1.0);
  // I_min = 3000, Rx = 1.2e-4: L' = I_min*LC / (I_min - 2*Rx*LC).
  const double lc = 1e6;
  const double expected = 3000.0 * lc / (3000.0 - 2.0 * 1.2e-4 * lc);
  EXPECT_NEAR(IterativeRelaxation::strict_bound(net, lc), expected, 1e-6);
  EXPECT_GT(IterativeRelaxation::strict_bound(net, lc), lc);  // stricter
}

TEST(StrictBound, ThrowsWhenHeadroomVanishes) {
  wsn::Network net(2, 0);
  net.add_link(0, 1, 1.0);
  // I_min - 2*Rx*LC <= 0  <=>  LC >= 3000 / (2 * 1.2e-4) = 1.25e7.
  EXPECT_THROW(IterativeRelaxation::strict_bound(net, 1.3e7), InfeasibleError);
  EXPECT_THROW(IterativeRelaxation::strict_bound(net, 0.0), std::invalid_argument);
}

// ----------------------------------------------------------- exact MRLC --

TEST(ExactMrlc, RespectsLifetimeBound) {
  mrlc::testing::ToyNetwork toy;
  // Unconstrained optimum uses the MST; a tight bound forbids hub nodes.
  const auto loose = exact_mrlc(toy.net, 1.0);
  ASSERT_TRUE(loose.has_value());
  EXPECT_GT(loose->reliability, 0.0);
  // With the default model, lifetime of a node with c children is
  // 3000/(1.6e-4 + 1.2e-4 c).  A bound just above the 3-children lifetime
  // forbids any node from keeping 3 children.
  const double three_children = toy.net.energy_model().node_lifetime(3000.0, 3);
  const auto tight = exact_mrlc(toy.net, three_children * 1.01);
  if (tight.has_value()) {
    EXPECT_GE(tight->lifetime, three_children * 1.01);
    for (int v = 0; v < toy.net.node_count(); ++v) {
      EXPECT_LE(tight->tree.children_count(v), 2);
    }
  }
}

TEST(ExactMrlc, NulloptWhenNoTreeQualifies) {
  // Path network: node 1 must have exactly 1 child; bound above the
  // 1-child lifetime is unachievable.
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(1, 2, 0.9);
  const double one_child = net.energy_model().node_lifetime(3000.0, 1);
  EXPECT_FALSE(exact_mrlc(net, one_child * 1.01).has_value());
  EXPECT_TRUE(exact_mrlc(net, one_child * 0.99).has_value());
}

TEST(ExactMaxLifetime, PrefersBalancedTrees) {
  // Star + path: the star center would have 3 children; the max-lifetime
  // tree spreads children across nodes when alternatives exist.
  wsn::Network net(4, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(0, 2, 0.9);
  net.add_link(0, 3, 0.9);
  net.add_link(1, 2, 0.9);
  net.add_link(2, 3, 0.9);
  const auto best = exact_max_lifetime(net);
  ASSERT_TRUE(best.has_value());
  int max_children = 0;
  for (int v = 0; v < 4; ++v) {
    max_children = std::max(max_children, best->tree.children_count(v));
  }
  EXPECT_LE(max_children, 2);
}

TEST(ExactMrlc, GuardsEnumerationBudget) {
  Rng rng(1);
  const wsn::Network net = small_random_network(9, 0.9, rng);
  EXPECT_THROW(exact_mrlc(net, 1.0, /*max_trees=*/10), std::invalid_argument);
}

// ------------------------------------------------------------------ IRA --

TEST(Ira, ReturnsMstWhenBoundIsLoose) {
  mrlc::testing::ToyNetwork toy;
  const IraResult res = IterativeRelaxation().solve(toy.net, 1.0);
  EXPECT_TRUE(res.meets_bound);
  // Loose bound: IRA should match the unconstrained optimum (the MST),
  // which is tree (b) of Fig. 4 with reliability 0.648.
  EXPECT_NEAR(res.reliability, 0.648, 1e-9);
}

TEST(Ira, HonorsTightBoundOnStarvedNode) {
  // Starve node 4 so its children bound binds: under this LC it may keep
  // at most one of its two potential children (2 and 3), forcing the
  // 4 -> 3 -> 2 chain.  The sink's three forced children stay feasible.
  mrlc::testing::ToyNetwork toy;
  toy.net.set_initial_energy(4, 1500.0);
  const double bound =
      toy.net.energy_model().node_lifetime(1500.0, 1) * 0.99;  // ~1 child at node 4
  const auto exact = exact_mrlc(toy.net, bound);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(exact->tree.children_count(4), 1);

  IraOptions options;
  options.bound_mode = BoundMode::kDirect;  // strict L' is undefined here
  const IraResult res = IterativeRelaxation(options).solve(toy.net, bound);
  // Direct-mode contract: cost at most OPT(LC), children violation <= 2.
  EXPECT_LE(res.cost, exact->cost + 1e-9);
  for (int v = 0; v < toy.net.node_count(); ++v) {
    EXPECT_LE(static_cast<double>(res.tree.children_count(v)),
              toy.net.max_children_real(v, bound) + 2.0 + 1e-6);
  }
}

TEST(Ira, ThrowsOnInfeasibleBound) {
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(1, 2, 0.9);
  const double one_child = net.energy_model().node_lifetime(3000.0, 1);
  EXPECT_THROW(IterativeRelaxation().solve(net, one_child * 1.01), InfeasibleError);
}

TEST(Ira, ThrowsOnDisconnectedNetwork) {
  wsn::Network net(4, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(2, 3, 0.9);
  EXPECT_THROW(IterativeRelaxation().solve(net, 1.0), InfeasibleError);
}

TEST(Ira, StatsAreReported) {
  mrlc::testing::ToyNetwork toy;
  const IraResult res = IterativeRelaxation().solve(toy.net, 1.0);
  EXPECT_GE(res.stats.outer_iterations, 1);
  EXPECT_GE(res.stats.lp_solves, 1);
  EXPECT_EQ(res.stats.constraints_removed, toy.net.node_count());
}

/// The paper's guarantee: IRA's cost is at most OPT(L') — the optimum under
/// the *stricter* bound — and at least OPT(LC).  Verified against brute
/// force on random instances.
TEST(Ira, CostSandwichedBetweenOptima) {
  Rng rng(2024);
  int feasible_instances = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const wsn::Network net = small_random_network(7, 0.7, rng, 0.6, 1.0);
    // A bound that bites but leaves the strict L' (about two children
    // tighter) usually satisfiable: just under the 5-children lifetime.
    const double bound = net.energy_model().node_lifetime(3000.0, 5) * 0.95;

    const double strict = IterativeRelaxation::strict_bound(net, bound);
    const auto opt_lc = exact_mrlc(net, bound);
    const auto opt_strict = exact_mrlc(net, strict);

    IraResult res;
    try {
      res = IterativeRelaxation().solve(net, bound);
    } catch (const InfeasibleError&) {
      // IRA works with the stricter L'; it may declare infeasibility when
      // only the LC-optimum exists.  That is within its contract.
      EXPECT_FALSE(opt_strict.has_value()) << "trial " << trial;
      continue;
    }
    ++feasible_instances;
    ASSERT_TRUE(opt_lc.has_value()) << "trial " << trial;
    EXPECT_TRUE(res.meets_bound) << "trial " << trial;
    EXPECT_GE(res.lifetime, bound) << "trial " << trial;
    // Sandwich: OPT(LC) <= cost(IRA) <= OPT(L').
    EXPECT_GE(res.cost, opt_lc->cost - 1e-9) << "trial " << trial;
    if (opt_strict.has_value()) {
      EXPECT_LE(res.cost, opt_strict->cost + 1e-6) << "trial " << trial;
    }
  }
  EXPECT_GT(feasible_instances, 10);  // the sweep must actually test something
}

/// Loosening the bound can only decrease (or keep) the achievable cost.
TEST(Ira, CostMonotoneInBound) {
  Rng rng(555);
  const wsn::Network net = small_random_network(8, 0.8, rng, 0.7, 1.0);
  const double base = net.energy_model().node_lifetime(3000.0, 3);
  double previous_cost = -1.0;
  for (const double factor : {1.3, 1.0, 0.7, 0.4}) {  // loosening
    IraResult res;
    try {
      res = IterativeRelaxation().solve(net, base * factor);
    } catch (const InfeasibleError&) {
      EXPECT_LT(previous_cost, 0.0) << "feasibility must be monotone";
      continue;
    }
    if (previous_cost >= 0.0) {
      EXPECT_LE(res.cost, previous_cost + 1e-6);
    }
    previous_cost = res.cost;
  }
}

TEST(Ira, TreeIsAlwaysValidSpanningTree) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const wsn::Network net = small_random_network(8, 0.6, rng, 0.5, 1.0);
    const double bound = net.energy_model().node_lifetime(3000.0, 4);
    try {
      const IraResult res = IterativeRelaxation().solve(net, bound);
      EXPECT_EQ(res.tree.node_count(), net.node_count());
      EXPECT_EQ(res.tree.root(), net.sink());
      EXPECT_EQ(res.tree.edge_ids().size(),
                static_cast<std::size_t>(net.node_count() - 1));
      EXPECT_NEAR(res.cost, wsn::tree_cost(net, res.tree), 1e-9);
      EXPECT_NEAR(res.reliability, wsn::tree_reliability(net, res.tree), 1e-12);
    } catch (const InfeasibleError&) {
      // acceptable outcome for tight draws
    }
  }
}

TEST(Ira, FallbackDisabledStillSolvesEasyCases) {
  mrlc::testing::ToyNetwork toy;
  IraOptions options;
  options.allow_slack_fallback = false;
  const IraResult res = IterativeRelaxation(options).solve(toy.net, 1.0);
  EXPECT_TRUE(res.meets_bound);
  EXPECT_FALSE(res.stats.used_fallback);
}

TEST(Ira, RejectsNonPositiveBound) {
  mrlc::testing::ToyNetwork toy;
  EXPECT_THROW(IterativeRelaxation().solve(toy.net, -5.0), std::invalid_argument);
}

}  // namespace
}  // namespace mrlc::core

// --------------------------------------------------------- branch-bound --

#include "core/branch_bound.hpp"
#include "graph/mst.hpp"

namespace mrlc::core {
namespace {

TEST(BranchBound, AgreesWithEnumerationOnSmallInstances) {
  Rng rng(3030);
  int compared = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const wsn::Network net = mrlc::testing::small_random_network(7, 0.7, rng, 0.5, 1.0);
    for (const int children : {2, 3, 5}) {
      const double bound = net.energy_model().node_lifetime(3000.0, children) * 0.99;
      const auto enumerated = exact_mrlc(net, bound);
      const auto bb = branch_bound_mrlc(net, bound);
      ASSERT_EQ(enumerated.has_value(), bb.has_value())
          << "trial " << trial << " children " << children;
      if (enumerated.has_value()) {
        EXPECT_NEAR(bb->cost, enumerated->cost, 1e-9)
            << "trial " << trial << " children " << children;
        EXPECT_GE(bb->lifetime, bound * (1 - 1e-9));
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 20);
}

TEST(BranchBound, HandlesPaperScaleInstances) {
  // 16 nodes, dense: enumeration is hopeless, branch-and-bound is not.
  Rng rng(3031);
  const wsn::Network net = mrlc::testing::small_random_network(16, 0.7, rng, 0.9, 1.0);
  const double bound = net.energy_model().node_lifetime(3000.0, 4) * 0.99;
  const auto bb = branch_bound_mrlc(net, bound);
  ASSERT_TRUE(bb.has_value());
  EXPECT_GE(bb->lifetime, bound * (1 - 1e-9));
  // Sandwich against the LP-based solver.
  IraOptions options;
  options.bound_mode = BoundMode::kDirect;
  const IraResult ira = IterativeRelaxation(options).solve(net, bound);
  EXPECT_LE(ira.cost, bb->cost + 1e-6) << "IRA has +2 slack, can only be cheaper";
  const auto mst = graph::prim_mst(net.topology(), 0);
  EXPECT_GE(bb->cost, mst->total_weight - 1e-9);
}

TEST(BranchBound, NulloptWhenNoTreeQualifies) {
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(1, 2, 0.9);
  const double one_child = net.energy_model().node_lifetime(3000.0, 1);
  EXPECT_FALSE(branch_bound_mrlc(net, one_child * 1.01).has_value());
  EXPECT_TRUE(branch_bound_mrlc(net, one_child * 0.99).has_value());
}

TEST(BranchBound, NodeBudgetGuard) {
  Rng rng(3000);
  const wsn::Network net = mrlc::testing::small_random_network(12, 0.9, rng, 0.5, 1.0);
  BranchBoundOptions options;
  options.max_nodes_explored = 5;
  // A binding bound (max ~2 children) forces branching: the greedy warm
  // start is not provably optimal, so the tiny budget must trip.
  const double bound = net.energy_model().node_lifetime(3000.0, 2) * 0.99;
  EXPECT_THROW(branch_bound_mrlc(net, bound, options), std::invalid_argument);
}

TEST(BranchBound, IraStrictModeCostAtMostBranchBoundAtStrictBound) {
  // cost(IRA strict) <= OPT(L'): verify with branch-and-bound computing
  // OPT at the strict bound.
  Rng rng(3033);
  int checked = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net = mrlc::testing::small_random_network(9, 0.7, rng, 0.6, 1.0);
    const double bound = net.energy_model().node_lifetime(3000.0, 6) * 0.95;
    IraResult res;
    try {
      res = IterativeRelaxation().solve(net, bound);
    } catch (const InfeasibleError&) {
      continue;
    }
    const double strict = IterativeRelaxation::strict_bound(net, bound);
    const auto opt_strict = branch_bound_mrlc(net, strict);
    if (!opt_strict.has_value()) continue;
    EXPECT_LE(res.cost, opt_strict->cost + 1e-6) << "trial " << trial;
    ++checked;
  }
  EXPECT_GT(checked, 3);
}

}  // namespace
}  // namespace mrlc::core
