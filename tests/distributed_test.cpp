#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/ira.hpp"
#include "distributed/maintainer.hpp"
#include "helpers.hpp"
#include "prufer/codec.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::dist {
namespace {

using mrlc::testing::small_random_network;

/// A network + IRA tree + maintainer, ready for event injection.
struct Fixture {
  wsn::Network net;
  double bound;
  DistributedMaintainer maintainer;

  static Fixture make(Rng& rng, int n = 10, double p = 0.6) {
    wsn::Network net = small_random_network(n, p, rng, 0.6, 1.0);
    const double bound = net.energy_model().node_lifetime(3000.0, 5);
    const core::IraResult ira = core::IterativeRelaxation().solve(net, bound);
    return Fixture{std::move(net), bound,
                   DistributedMaintainer(net, ira.tree, bound)};
  }
};

TEST(Maintainer, InitialCodeMatchesTree) {
  Rng rng(1);
  wsn::Network net = small_random_network(8, 0.7, rng);
  const double bound = net.energy_model().node_lifetime(3000.0, 5);
  const core::IraResult ira = core::IterativeRelaxation().solve(net, bound);
  DistributedMaintainer m(net, ira.tree, bound);
  EXPECT_EQ(prufer::decode(m.code(), net.node_count()), ira.tree.parents());
}

TEST(Maintainer, RequiresSinkZero) {
  wsn::Network net(3, 1);  // sink label 1
  net.add_link(0, 1, 0.9);
  net.add_link(1, 2, 0.9);
  auto tree = wsn::AggregationTree::from_parents(net, {1, -1, 1});
  EXPECT_THROW(DistributedMaintainer(net, tree, 1.0), std::invalid_argument);
}

TEST(Maintainer, DegradedNonTreeLinkIsNoop) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    wsn::Network net = small_random_network(10, 0.7, rng);
    const double bound = net.energy_model().node_lifetime(3000.0, 6);
    const core::IraResult ira = core::IterativeRelaxation().solve(net, bound);
    DistributedMaintainer m(net, ira.tree, bound);

    // Find a non-tree link.
    std::vector<bool> in_tree(static_cast<std::size_t>(net.link_count()), false);
    for (wsn::EdgeId id : ira.tree.edge_ids()) in_tree[static_cast<std::size_t>(id)] = true;
    wsn::EdgeId non_tree = -1;
    for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
      if (!in_tree[static_cast<std::size_t>(id)]) {
        non_tree = id;
        break;
      }
    }
    if (non_tree == -1) continue;
    const auto before = m.tree().parents();
    EXPECT_FALSE(m.on_link_degraded(net, non_tree));
    EXPECT_EQ(m.tree().parents(), before);
  }
}

TEST(Maintainer, DegradedTreeLinkIsReplacedWhenBetterExists) {
  // Diamond: 0-1 (will degrade), 0-2, 1-3, 2-3, 1-2.
  wsn::Network net(4, 0);
  const auto e01 = net.add_link(0, 1, 0.99);
  net.add_link(0, 2, 0.98);
  net.add_link(1, 3, 0.97);
  net.add_link(2, 3, 0.6);
  const auto e12 = net.add_link(1, 2, 0.96);
  (void)e12;
  const double bound = net.energy_model().node_lifetime(3000.0, 3);
  const core::IraResult ira = core::IterativeRelaxation().solve(net, bound);
  DistributedMaintainer m(net, ira.tree, bound);

  // Degrade 0-1 hard; the child side should switch to a better parent.
  net.set_link_prr(e01, 0.2);
  if (m.tree().parent_edge(1) == e01) {
    EXPECT_TRUE(m.on_link_degraded(net, e01));
    EXPECT_NE(m.tree().parent_edge(1), e01);
    EXPECT_GE(wsn::network_lifetime(net, m.tree()), bound);
  }
}

TEST(Maintainer, LifetimeBoundPreservedAcrossRandomDegradations) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    wsn::Network net = small_random_network(10, 0.6, rng, 0.7, 1.0);
    const double bound = net.energy_model().node_lifetime(3000.0, 4);
    core::IraResult ira;
    try {
      ira = core::IterativeRelaxation().solve(net, bound);
    } catch (const InfeasibleError&) {
      continue;
    }
    DistributedMaintainer m(net, ira.tree, bound);
    for (int round = 0; round < 20; ++round) {
      const auto tree_edges = m.tree().edge_ids();
      const wsn::EdgeId victim = tree_edges[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(tree_edges.size()) - 1))];
      net.set_link_prr(victim, std::max(0.05, net.link_prr(victim) * 0.5));
      m.on_link_degraded(net, victim);
      EXPECT_GE(wsn::network_lifetime(net, m.tree()), bound)
          << "trial " << trial << " round " << round;
      // Replica invariant: code always matches the tree.
      EXPECT_EQ(prufer::decode(m.code(), net.node_count()), m.tree().parents());
    }
  }
}

TEST(Maintainer, ImprovedLinkDisplacesCostlierParentEdge) {
  // Chain 0-1-2 plus a bad shortcut 0-2 that then improves.
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.99);
  net.add_link(1, 2, 0.7);
  const auto e02 = net.add_link(0, 2, 0.5);
  // Loose enough for the strict L' (four children of headroom).
  const double bound = net.energy_model().node_lifetime(3000.0, 4);
  const core::IraResult ira = core::IterativeRelaxation().solve(net, bound);
  DistributedMaintainer m(net, ira.tree, bound);
  ASSERT_EQ(m.tree().parent(2), 1);  // chain is optimal initially

  net.set_link_prr(e02, 0.999);  // shortcut now beats 1-2
  EXPECT_TRUE(m.on_link_improved(net, e02));
  EXPECT_EQ(m.tree().parent(2), 0);
  EXPECT_GE(wsn::network_lifetime(net, m.tree()), bound);
}

TEST(Maintainer, ImprovedLinkRespectsLifetimeBound) {
  // The improved link's new parent would exceed its children budget: the
  // protocol must refuse.
  wsn::Network net(4, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(1, 2, 0.9);
  net.add_link(1, 3, 0.9);
  const auto e13b = net.add_link(2, 3, 0.5);
  // Bound allowing at most 2 children -> node 1 already has 2 (nodes 2, 3)?
  // Build the tree explicitly: 1 under 0; 2,3 under 1.
  auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1, 1});
  const double bound = net.energy_model().node_lifetime(3000.0, 2);
  DistributedMaintainer m(net, tree, bound);
  // Improving 2-3 would let 3 hang under 2 (fine) or 2 under 3; both gain
  // nothing since 1's links are cheaper.  Force an impossible acceptance:
  net.set_link_prr(e13b, 0.99);
  m.on_link_improved(net, e13b);
  EXPECT_GE(wsn::network_lifetime(net, m.tree()), bound);
}

TEST(Maintainer, ImprovementChainTerminates) {
  Rng rng(4);
  wsn::Network net = small_random_network(12, 0.7, rng, 0.5, 1.0);
  const double bound = net.energy_model().node_lifetime(3000.0, 8);
  const core::IraResult ira = core::IterativeRelaxation().solve(net, bound);
  DistributedMaintainer m(net, ira.tree, bound);
  // Improve many random links; each event must settle and keep a tree.
  for (int round = 0; round < 30; ++round) {
    const wsn::EdgeId link = static_cast<wsn::EdgeId>(
        rng.uniform_int(0, net.link_count() - 1));
    net.set_link_prr(link, 0.999);
    m.on_link_improved(net, link);
    EXPECT_EQ(m.tree().edge_ids().size(),
              static_cast<std::size_t>(net.node_count() - 1));
  }
}

TEST(Maintainer, CostNeverIncreasesOnImprovementEvents) {
  Rng rng(5);
  wsn::Network net = small_random_network(10, 0.7, rng, 0.5, 1.0);
  const double bound = net.energy_model().node_lifetime(3000.0, 6);
  const core::IraResult ira = core::IterativeRelaxation().solve(net, bound);
  DistributedMaintainer m(net, ira.tree, bound);
  for (int round = 0; round < 20; ++round) {
    const wsn::EdgeId link = static_cast<wsn::EdgeId>(
        rng.uniform_int(0, net.link_count() - 1));
    const double before = wsn::tree_cost(net, m.tree());
    net.set_link_prr(link, std::min(1.0, net.link_prr(link) * 1.2));
    // Improving a link can only lower the current tree's cost (if the link
    // is in the tree) or trigger beneficial swaps.
    m.on_link_improved(net, link);
    EXPECT_LE(wsn::tree_cost(net, m.tree()), before + 1e-9);
  }
}

TEST(Maintainer, MessageAccountingIsConsistent) {
  Rng rng(6);
  wsn::Network net = small_random_network(10, 0.7, rng, 0.6, 1.0);
  const double bound = net.energy_model().node_lifetime(3000.0, 6);
  const core::IraResult ira = core::IterativeRelaxation().solve(net, bound);
  DistributedMaintainer m(net, ira.tree, bound);

  for (int round = 0; round < 15; ++round) {
    const auto tree_edges = m.tree().edge_ids();
    const wsn::EdgeId victim = tree_edges[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(tree_edges.size()) - 1))];
    net.set_link_prr(victim, std::max(0.05, net.link_prr(victim) * 0.4));
    m.on_link_degraded(net, victim);
  }
  const MaintainerStats& stats = m.stats();
  EXPECT_EQ(stats.degradation_events, 15);
  EXPECT_EQ(stats.messages_per_event.size(), 15u);
  long long sum = 0;
  for (int msgs : stats.messages_per_event) {
    EXPECT_GE(msgs, 0);
    // One broadcast costs at most n-1 transmissions (every non-leaf).
    EXPECT_LE(msgs, (net.node_count() - 1) * 4);  // a few chained updates max
    sum += msgs;
  }
  EXPECT_EQ(sum, stats.total_messages);
}

TEST(Maintainer, StatsCountEventTypes) {
  Rng rng(7);
  wsn::Network net = small_random_network(8, 0.8, rng);
  const double bound = net.energy_model().node_lifetime(3000.0, 6);
  const core::IraResult ira = core::IterativeRelaxation().solve(net, bound);
  DistributedMaintainer m(net, ira.tree, bound);
  m.on_link_improved(net, 0);
  m.on_link_improved(net, 1);
  m.on_link_degraded(net, 0);
  EXPECT_EQ(m.stats().improvement_events, 2);
  EXPECT_EQ(m.stats().degradation_events, 1);
}

}  // namespace
}  // namespace mrlc::dist

// ---------------------------------------------------- protocol simulator --

#include "distributed/simulator.hpp"

namespace mrlc::dist {
namespace {

ProtocolSimulator make_simulator(wsn::Network& net, double* bound_out, Rng& rng) {
  const double bound = net.energy_model().node_lifetime(3000.0, 6);
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IraResult ira = core::IterativeRelaxation(options).solve(net, bound);
  if (bound_out != nullptr) *bound_out = bound;
  (void)rng;
  return ProtocolSimulator(net, ira.tree, bound);
}

TEST(Simulator, ReplicasStartConsistent) {
  Rng rng(101);
  wsn::Network net = mrlc::testing::small_random_network(10, 0.6, rng);
  const ProtocolSimulator sim = make_simulator(net, nullptr, rng);
  EXPECT_TRUE(sim.replicas_consistent());
  // The bootstrap broadcast is charged: transmissions > 0 even before any
  // event (the sink distributed the initial code).
  EXPECT_GT(sim.stats().flood_transmissions, 0);
  EXPECT_EQ(sim.stats().records_disseminated, 0);
}

TEST(Simulator, ReplicasConvergeAfterEveryEvent) {
  Rng rng(102);
  for (int trial = 0; trial < 5; ++trial) {
    wsn::Network net = mrlc::testing::small_random_network(12, 0.6, rng, 0.5, 0.99);
    double bound = 0.0;
    ProtocolSimulator sim = make_simulator(net, &bound, rng);
    for (int event = 0; event < 40; ++event) {
      const wsn::EdgeId link =
          static_cast<wsn::EdgeId>(rng.uniform_int(0, net.link_count() - 1));
      if (rng.bernoulli(0.5)) {
        net.set_link_prr(link, std::max(0.05, net.link_prr(link) * 0.7));
        sim.on_link_degraded(net, link);
      } else {
        net.set_link_prr(link, std::min(0.99, net.link_prr(link) * 1.3));
        sim.on_link_improved(net, link);
      }
      ASSERT_TRUE(sim.replicas_consistent())
          << "trial " << trial << " event " << event;
      // Every replica decodes to the live tree.
      for (int v = 0; v < net.node_count(); ++v) {
        EXPECT_EQ(prufer::decode(sim.replica(v).code(), net.node_count()),
                  sim.tree().parents());
      }
    }
  }
}

TEST(Simulator, FloodTransmissionCountIsTreelike) {
  Rng rng(103);
  wsn::Network net = mrlc::testing::small_random_network(16, 0.7, rng, 0.5, 0.99);
  double bound = 0.0;
  ProtocolSimulator sim = make_simulator(net, &bound, rng);
  int events_with_updates = 0;
  for (int event = 0; event < 60; ++event) {
    const wsn::EdgeId link =
        static_cast<wsn::EdgeId>(rng.uniform_int(0, net.link_count() - 1));
    net.set_link_prr(link, std::max(0.05, net.link_prr(link) * 0.6));
    if (sim.on_link_degraded(net, link)) ++events_with_updates;
  }
  for (int t : sim.stats().transmissions_per_event) {
    // A flood transmits at most once per node, at least once when an
    // update happened, and never from pure leaves.
    EXPECT_GE(t, 0);
    EXPECT_LE(t, net.node_count());
  }
  if (events_with_updates > 0) {
    const double avg = static_cast<double>(sim.stats().flood_transmissions) /
                       static_cast<double>(events_with_updates);
    EXPECT_LT(avg, net.node_count()) << "Fig. 13: fewer than n messages per update";
  }
}

TEST(Simulator, SequenceDedupIgnoresReplays) {
  Rng rng(104);
  wsn::Network net = mrlc::testing::small_random_network(8, 0.8, rng);
  ProtocolSimulator sim = make_simulator(net, nullptr, rng);
  // Directly exercise a replica: applying the same record twice must be a
  // no-op the second time.
  SensorReplica replica = sim.replica(3);
  UpdateRecord record;
  record.sequence = 7;
  record.initiator = 1;
  // Find a legal parent change on the current tree.
  const auto parents = sim.tree().parents();
  for (int child = 1; child < net.node_count(); ++child) {
    for (int parent = 0; parent < net.node_count(); ++parent) {
      if (parent == child || parents[static_cast<std::size_t>(child)] == parent) continue;
      // avoid cycles: parent must not be in child's subtree
      prufer::ParentArray trial = parents;
      trial[static_cast<std::size_t>(child)] = parent;
      bool ok = true;
      try {
        prufer::validate_parent_array(trial);
      } catch (const std::invalid_argument&) {
        ok = false;
      }
      if (ok) {
        record.changes.emplace_back(child, parent);
        break;
      }
    }
    if (!record.changes.empty()) break;
  }
  ASSERT_FALSE(record.changes.empty());
  EXPECT_TRUE(replica.apply(record));
  EXPECT_FALSE(replica.apply(record));  // replay ignored
  UpdateRecord stale = record;
  stale.sequence = 3;  // older than what the replica has seen
  EXPECT_FALSE(replica.apply(stale));
}

TEST(Simulator, RejectsMalformedRecords) {
  Rng rng(105);
  wsn::Network net = mrlc::testing::small_random_network(6, 0.9, rng);
  ProtocolSimulator sim = make_simulator(net, nullptr, rng);
  SensorReplica replica = sim.replica(2);
  UpdateRecord bad;
  bad.sequence = 9;
  bad.changes.emplace_back(0, 1);  // the sink cannot be re-parented
  EXPECT_THROW(replica.apply(bad), std::invalid_argument);
}

}  // namespace
}  // namespace mrlc::dist

// --------------------------------------------------- eversion repair path --

namespace mrlc::dist {
namespace {

TEST(Maintainer, EversionRepairWhenChildHasNoCrossingLink) {
  // Tree 0 <- 1 <- 2 <- 3 with the only alternative link (3, 0): when
  // (0, 1) degrades, child 1 has no direct replacement, so the component
  // {1, 2, 3} must be re-rooted at 3 and attached to the sink — the
  // generalized Link-Getting-Worse repair.
  wsn::Network net(4, 0);
  const auto e01 = net.add_link(0, 1, 0.95);
  net.add_link(1, 2, 0.9);
  net.add_link(2, 3, 0.9);
  net.add_link(3, 0, 0.85);
  auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1, 2});
  const double bound = net.energy_model().node_lifetime(3000.0, 3);
  DistributedMaintainer m(net, tree, bound);

  net.set_link_prr(e01, 0.10);  // now worse than the (3, 0) alternative
  ASSERT_TRUE(m.on_link_degraded(net, e01));
  // The tree everted: 3 hangs off the sink, parents along the path flipped.
  EXPECT_EQ(m.tree().parent(3), 0);
  EXPECT_EQ(m.tree().parent(2), 3);
  EXPECT_EQ(m.tree().parent(1), 2);
  EXPECT_GE(wsn::network_lifetime(net, m.tree()), bound);
  // Replicated code still matches.
  EXPECT_EQ(prufer::decode(m.code(), 4), m.tree().parents());
}

TEST(Maintainer, EversionRefusedWhenLifetimeWouldBreak) {
  // Same topology, but node 3 is energy-starved: after eversion it would
  // carry a child (node 2) and violate the bound, so the repair must be
  // refused and the degraded link kept.
  wsn::Network net(4, 0);
  const auto e01 = net.add_link(0, 1, 0.95);
  net.add_link(1, 2, 0.9);
  net.add_link(2, 3, 0.9);
  net.add_link(3, 0, 0.85);
  net.set_initial_energy(3, 400.0);
  auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1, 2});
  // Bound: node 3 may have zero children (it is a leaf now), but not one.
  const double bound = net.energy_model().node_lifetime(400.0, 0) * 0.99;
  ASSERT_GE(wsn::network_lifetime(net, tree), bound);
  DistributedMaintainer m(net, tree, bound);

  net.set_link_prr(e01, 0.10);
  EXPECT_FALSE(m.on_link_degraded(net, e01));
  EXPECT_EQ(m.tree().parent(1), 0);  // unchanged
  EXPECT_GE(wsn::network_lifetime(net, m.tree()), bound);
}

}  // namespace
}  // namespace mrlc::dist

// ------------------------------------------------------- tiny networks ----

namespace mrlc::dist {
namespace {

TEST(Simulator, TwoNodeNetworkWorks) {
  wsn::Network net(2, 0);
  net.add_link(0, 1, 0.9);
  auto tree = wsn::AggregationTree::from_parents(net, {-1, 0});
  const double bound = net.energy_model().node_lifetime(3000.0, 1) * 0.5;
  ProtocolSimulator sim(net, std::move(tree), bound);
  EXPECT_TRUE(sim.replicas_consistent());
  // Degrading the only link cannot find a replacement: a clean no-op.
  net.set_link_prr(0, 0.2);
  EXPECT_FALSE(sim.on_link_degraded(net, 0));
  EXPECT_TRUE(sim.replicas_consistent());
}

TEST(Maintainer, BridgeLinkHasNoReplacement) {
  // The degraded link is a bridge: the component cannot reconnect any
  // other way, so the protocol must keep it (degraded but alive).
  wsn::Network net(4, 0);
  net.add_link(0, 1, 0.9);
  const auto bridge = net.add_link(1, 2, 0.9);
  net.add_link(2, 3, 0.9);
  auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1, 2});
  const double bound = net.energy_model().node_lifetime(3000.0, 2);
  DistributedMaintainer m(net, std::move(tree), bound);
  net.set_link_prr(bridge, 0.05);
  EXPECT_FALSE(m.on_link_degraded(net, bridge));
  EXPECT_EQ(m.tree().parent(2), 1);  // still using the bridge
}

}  // namespace
}  // namespace mrlc::dist
