#include <gtest/gtest.h>

#include "baselines/greedy_mrlc.hpp"
#include "baselines/mst_baseline.hpp"
#include "common/rng.hpp"
#include "core/exact.hpp"
#include "core/ira.hpp"
#include "helpers.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::baselines {
namespace {

using mrlc::testing::small_random_network;

TEST(GreedyMrlc, EqualsMstWhenBoundIsLoose) {
  Rng rng(51);
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net = small_random_network(8, 0.7, rng);
    const GreedyMrlcResult greedy = greedy_mrlc(net, 1.0);  // trivial bound
    const MstResult mst = mst_baseline(net);
    EXPECT_NEAR(greedy.cost, mst.cost, 1e-9);
    EXPECT_EQ(greedy.cap_relaxations, 0);
    EXPECT_TRUE(greedy.meets_bound);
  }
}

TEST(GreedyMrlc, RespectsChildrenCapsWhenUnrelaxed) {
  Rng rng(52);
  for (int trial = 0; trial < 15; ++trial) {
    const wsn::Network net = small_random_network(8, 0.7, rng);
    const double bound = net.energy_model().node_lifetime(3000.0, 3);
    const GreedyMrlcResult res = greedy_mrlc(net, bound);
    if (res.cap_relaxations == 0) {
      EXPECT_TRUE(res.meets_bound) << "trial " << trial;
      for (int v = 0; v < net.node_count(); ++v) {
        EXPECT_LE(static_cast<double>(res.tree.children_count(v)),
                  net.max_children_real(v, bound) + 1e-9);
      }
    }
  }
}

TEST(GreedyMrlc, NeverBeatsExactOptimum) {
  Rng rng(53);
  for (int trial = 0; trial < 15; ++trial) {
    const wsn::Network net = small_random_network(7, 0.7, rng);
    const double bound = net.energy_model().node_lifetime(3000.0, 3);
    const GreedyMrlcResult res = greedy_mrlc(net, bound);
    if (!res.meets_bound) continue;
    const auto exact = core::exact_mrlc(net, bound);
    ASSERT_TRUE(exact.has_value());
    EXPECT_GE(res.cost, exact->cost - 1e-9) << "trial " << trial;
  }
}

TEST(GreedyMrlc, IraIsAtLeastAsGoodOnAverage) {
  // The ablation claim: across instances, IRA's LP machinery never loses
  // to the greedy sweep on cost (both in direct-bound mode).
  Rng rng(54);
  double greedy_total = 0.0;
  double ira_total = 0.0;
  int compared = 0;
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  for (int trial = 0; trial < 20; ++trial) {
    const wsn::Network net = small_random_network(9, 0.6, rng);
    const double bound = net.energy_model().node_lifetime(3000.0, 4);
    const GreedyMrlcResult greedy = greedy_mrlc(net, bound);
    const core::IraResult ira = core::IterativeRelaxation(options).solve(net, bound);
    greedy_total += greedy.cost;
    ira_total += ira.cost;
    ++compared;
  }
  ASSERT_GT(compared, 0);
  EXPECT_LE(ira_total, greedy_total + 1e-9);
}

TEST(GreedyMrlc, GetsStuckAndRelaxesOnAdversarialInstance) {
  // Gadget: the two cheapest edges saturate the hub under a 1-child cap,
  // after which the leaves are unreachable within the caps — greedy must
  // relax, while an exact tree within the caps does not exist either
  // (every spanning tree of a star violates a 1-child cap), so relaxation
  // is the correct outcome.
  wsn::Network net(4, 0);
  net.add_link(0, 1, 0.99);
  net.add_link(0, 2, 0.98);
  net.add_link(0, 3, 0.97);
  const double bound = net.energy_model().node_lifetime(3000.0, 1);  // <= 1 child
  const GreedyMrlcResult res = greedy_mrlc(net, bound);
  EXPECT_GT(res.cap_relaxations, 0);
  EXPECT_FALSE(res.meets_bound);
  EXPECT_EQ(res.tree.children_count(0), 3);  // star is the only tree
}

TEST(GreedyMrlc, RelaxationBudgetIsEnforced) {
  wsn::Network net(4, 0);
  net.add_link(0, 1, 0.99);
  net.add_link(0, 2, 0.98);
  net.add_link(0, 3, 0.97);
  GreedyMrlcOptions options;
  options.max_cap_relaxations = 0;
  const double bound = net.energy_model().node_lifetime(3000.0, 1);
  EXPECT_THROW(greedy_mrlc(net, bound, options), InfeasibleError);
}

TEST(GreedyMrlc, GuardsBadInput) {
  mrlc::testing::ToyNetwork toy;
  EXPECT_THROW(greedy_mrlc(toy.net, 0.0), std::invalid_argument);
  GreedyMrlcOptions options;
  options.max_cap_relaxations = -1;
  EXPECT_THROW(greedy_mrlc(toy.net, 1.0, options), std::invalid_argument);
  wsn::Network disconnected(3, 0);
  disconnected.add_link(0, 1, 0.9);
  EXPECT_THROW(greedy_mrlc(disconnected, 1.0), InfeasibleError);
}

TEST(GreedyMrlc, MetricsAreConsistent) {
  Rng rng(55);
  const wsn::Network net = small_random_network(8, 0.7, rng);
  const double bound = net.energy_model().node_lifetime(3000.0, 4);
  const GreedyMrlcResult res = greedy_mrlc(net, bound);
  EXPECT_NEAR(res.cost, wsn::tree_cost(net, res.tree), 1e-9);
  EXPECT_NEAR(res.reliability, wsn::tree_reliability(net, res.tree), 1e-12);
  EXPECT_NEAR(res.lifetime, wsn::network_lifetime(net, res.tree), 1e-6);
}

}  // namespace
}  // namespace mrlc::baselines
