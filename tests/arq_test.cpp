#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "radio/arq.hpp"
#include "radio/channel.hpp"

namespace mrlc::radio {
namespace {

// --------------------------------------------------------------- channel --

TEST(Channel, DeriveMatchesStationaryPrrAndBurst) {
  const GilbertElliottParams p = derive_gilbert_elliott(0.7, 8.0);
  EXPECT_DOUBLE_EQ(p.bad_to_good, 1.0 / 8.0);
  // pi_G = p_bg / (p_bg + p_gb) must equal the PRR exactly.
  EXPECT_NEAR(p.bad_to_good / (p.bad_to_good + p.good_to_bad), 0.7, 1e-15);
}

TEST(Channel, DeriveFallsBackWhenBurstInfeasible) {
  // At PRR 0.05 an 8-slot burst would need p_gb > 1; the fallback keeps the
  // stationary PRR exact with the longest feasible burst (1 - q) / q slots.
  const GilbertElliottParams p = derive_gilbert_elliott(0.05, 8.0);
  EXPECT_DOUBLE_EQ(p.good_to_bad, 1.0);
  EXPECT_NEAR(p.bad_to_good, 0.05 / 0.95, 1e-15);
  EXPECT_NEAR(p.bad_to_good / (p.bad_to_good + p.good_to_bad), 0.05, 1e-15);
}

TEST(Channel, DerivePerfectLinkNeverLeavesGood) {
  const GilbertElliottParams p = derive_gilbert_elliott(1.0, 8.0);
  EXPECT_DOUBLE_EQ(p.good_to_bad, 0.0);
  EXPECT_THROW(derive_gilbert_elliott(0.0, 8.0), std::invalid_argument);
  EXPECT_THROW(derive_gilbert_elliott(0.5, 0.5), std::invalid_argument);
}

TEST(Channel, GilbertElliottLongRunLossMatchesStationaryPrr) {
  // ~1e5 slots on one link: the empirical delivery ratio must match the
  // nominal PRR (the parameterization's stationary guarantee).  Burst
  // correlation inflates the variance, hence the loose 0.02 tolerance.
  for (const double q : {0.9, 0.7, 0.3}) {
    wsn::Network net(2, 0);
    net.add_link(0, 1, q);
    ChannelConfig config;
    config.model = ChannelModel::kGilbertElliott;
    config.mean_bad_burst = 8.0;
    Rng rng(90);
    ChannelSet channels(net, config, rng);
    const int kSlots = 100000;
    int delivered = 0;
    for (int s = 0; s < kSlots; ++s) {
      if (channels.transmit(0, rng)) ++delivered;
    }
    EXPECT_NEAR(static_cast<double>(delivered) / kSlots, q, 0.02) << "q " << q;
  }
}

TEST(Channel, GilbertElliottMeanBurstLengthMatchesTarget) {
  // Failure runs are exactly Bad-state sojourns (Good always delivers, Bad
  // always drops), so their mean length must be ~ mean_bad_burst slots.
  wsn::Network net(2, 0);
  net.add_link(0, 1, 0.7);
  ChannelConfig config;
  config.model = ChannelModel::kGilbertElliott;
  config.mean_bad_burst = 8.0;
  Rng rng(91);
  ChannelSet channels(net, config, rng);
  const int kSlots = 200000;
  long long runs = 0;
  long long lost = 0;
  bool in_run = false;
  for (int s = 0; s < kSlots; ++s) {
    if (!channels.transmit(0, rng)) {
      ++lost;
      if (!in_run) ++runs;
      in_run = true;
    } else {
      in_run = false;
    }
  }
  ASSERT_GT(runs, 1000);
  EXPECT_NEAR(static_cast<double>(lost) / static_cast<double>(runs), 8.0, 0.5);
}

TEST(Channel, BernoulliDrawsAreIndependentOfHistory) {
  // Under Bernoulli the mean run length is 1 / q regardless of history —
  // distinguishing the two models at identical long-run loss.
  wsn::Network net(2, 0);
  net.add_link(0, 1, 0.7);
  Rng rng(92);
  ChannelSet channels(net, ChannelConfig{}, rng);
  const int kSlots = 200000;
  long long runs = 0;
  long long lost = 0;
  bool in_run = false;
  for (int s = 0; s < kSlots; ++s) {
    if (!channels.transmit(0, rng)) {
      ++lost;
      if (!in_run) ++runs;
      in_run = true;
    } else {
      in_run = false;
    }
  }
  // Mean failure-run length under i.i.d. loss: 1 / q ~ 1.43.
  EXPECT_NEAR(static_cast<double>(lost) / static_cast<double>(runs),
              1.0 / 0.7, 0.05);
}

TEST(Channel, SyncFollowsChangedQualities) {
  wsn::Network net(2, 0);
  net.add_link(0, 1, 0.9);
  Rng rng(93);
  ChannelSet channels(net, ChannelConfig{}, rng);
  net.set_link_prr(0, 0.05);
  channels.sync(net);
  int delivered = 0;
  for (int s = 0; s < 10000; ++s) {
    if (channels.transmit(0, rng)) ++delivered;
  }
  EXPECT_NEAR(delivered / 10000.0, 0.05, 0.02);

  wsn::Network other(3, 0);
  other.add_link(0, 1, 0.5);
  other.add_link(1, 2, 0.5);
  EXPECT_THROW(channels.sync(other), std::invalid_argument);
  EXPECT_THROW(channels.transmit(5, rng), std::invalid_argument);
}

TEST(Channel, DeterministicGivenSeed) {
  wsn::Network net(2, 0);
  net.add_link(0, 1, 0.6);
  ChannelConfig config;
  config.model = ChannelModel::kGilbertElliott;
  Rng rng1(94), rng2(94);
  ChannelSet a(net, config, rng1);
  ChannelSet b(net, config, rng2);
  for (int s = 0; s < 1000; ++s) {
    EXPECT_EQ(a.transmit(0, rng1), b.transmit(0, rng2));
  }
}

// ------------------------------------------------------------ ARQ policy --

TEST(ArqPolicy, BackoffDoublesUpToCap) {
  ArqPolicy policy;
  policy.backoff_base_slots = 2;
  policy.backoff_cap_exponent = 3;
  EXPECT_EQ(policy.backoff_slots(1), 2u);
  EXPECT_EQ(policy.backoff_slots(2), 4u);
  EXPECT_EQ(policy.backoff_slots(3), 8u);
  EXPECT_EQ(policy.backoff_slots(4), 16u);
  EXPECT_EQ(policy.backoff_slots(5), 16u);   // capped
  EXPECT_EQ(policy.backoff_slots(100), 16u); // stays capped
  EXPECT_THROW(policy.backoff_slots(0), std::invalid_argument);

  ArqPolicy zero;
  zero.backoff_base_slots = 0;
  EXPECT_EQ(zero.backoff_slots(7), 0u);
}

TEST(ArqPolicy, AckPrrDerivedFromAirtimeFraction) {
  ArqPolicy policy;
  policy.ack_fraction = 0.1;
  EXPECT_NEAR(policy.ack_prr(0.5), std::pow(0.5, 0.1), 1e-15);
  EXPECT_DOUBLE_EQ(policy.ack_prr(1.0), 1.0);
  // ACKs are shorter, so always at least as reliable as the data frame.
  for (const double q : {0.1, 0.5, 0.9}) EXPECT_GE(policy.ack_prr(q), q);
  policy.ack_prr_override = 0.25;
  EXPECT_DOUBLE_EQ(policy.ack_prr(0.9), 0.25);
}

TEST(ArqPolicy, Validation) {
  ArqPolicy policy;
  policy.max_attempts = 0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy = ArqPolicy{};
  policy.ack_fraction = 0.0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy = ArqPolicy{};
  policy.ack_prr_override = 1.5;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy = ArqPolicy{};
  policy.backoff_cap_exponent = 63;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
}

// ------------------------------------------------------------- ARQ round --

TEST(ArqRound, PerfectLinksOneTransactionPerNode) {
  wsn::Network net(4, 0);
  net.add_link(0, 1, 1.0);
  net.add_link(1, 2, 1.0);
  net.add_link(2, 3, 1.0);
  const auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1, 2});
  ArqPolicy policy;
  Rng rng(95);
  ChannelSet channels(net, ChannelConfig{}, rng);
  std::vector<double> consumed(4, 0.0);
  const ArqRoundResult res =
      simulate_arq_round(net, tree, policy, channels, rng, &consumed);
  EXPECT_EQ(res.data_transmissions, 3u);
  EXPECT_EQ(res.ack_transmissions, 3u);
  EXPECT_EQ(res.duplicates_suppressed, 0u);
  EXPECT_EQ(res.ack_losses, 0u);
  EXPECT_EQ(res.packets_dropped, 0u);
  EXPECT_EQ(res.slots_elapsed, 3u);
  EXPECT_EQ(res.readings_delivered, 4);
  EXPECT_TRUE(res.round_complete);

  // Exact energy: leaf 3 pays one data Tx + one ACK Rx; node 0 (sink) pays
  // one data Rx + one ACK Tx; middle nodes pay both roles.
  const double tx = net.energy_model().tx_joules;
  const double rx = net.energy_model().rx_joules;
  const double f = policy.ack_fraction;
  EXPECT_NEAR(consumed[3], tx + f * rx, 1e-15);
  EXPECT_NEAR(consumed[0], rx + f * tx, 1e-15);
  EXPECT_NEAR(consumed[1], tx + f * rx + rx + f * tx, 1e-15);
  EXPECT_NEAR(consumed[2], tx + f * rx + rx + f * tx, 1e-15);
}

TEST(ArqRound, LostAcksCauseDuplicatesNotDataLoss) {
  // Perfect data links but every ACK lost: the sender burns all attempts
  // and reports failure, yet the reading arrived on attempt 1 and the
  // receiver suppressed the retransmitted copies.
  wsn::Network net(2, 0);
  net.add_link(0, 1, 1.0);
  const auto tree = wsn::AggregationTree::from_parents(net, {-1, 0});
  ArqPolicy policy;
  policy.max_attempts = 3;
  policy.ack_prr_override = 0.0;
  Rng rng(96);
  ChannelSet channels(net, ChannelConfig{}, rng);
  bool observed_ack = true;
  int observed_attempts = 0;
  const ArqRoundResult res = simulate_arq_round(
      net, tree, policy, channels, rng, nullptr,
      [&](wsn::EdgeId, bool acked, int attempts) {
        observed_ack = acked;
        observed_attempts = attempts;
      });
  EXPECT_EQ(res.data_transmissions, 3u);
  EXPECT_EQ(res.ack_transmissions, 3u);
  EXPECT_EQ(res.ack_losses, 3u);
  EXPECT_EQ(res.duplicates_suppressed, 2u);
  EXPECT_EQ(res.packets_dropped, 0u);
  EXPECT_EQ(res.readings_delivered, 2);  // the data did arrive
  EXPECT_TRUE(res.round_complete);
  // Sender view: transaction failed after all attempts.
  EXPECT_FALSE(observed_ack);
  EXPECT_EQ(observed_attempts, 3);
  // Slots: 3 attempts + backoff after failures 1 and 2 (1 + 2 slots).
  EXPECT_EQ(res.slots_elapsed, 3u + 1u + 2u);
}

TEST(ArqRound, ReadingsConservationHoldsOnRandomInstances) {
  Rng rng(97);
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net =
        mrlc::testing::small_random_network(12, 0.4, rng, 0.3, 0.95);
    const auto tree = mrlc::testing::random_tree(net, rng);
    ChannelConfig config;
    config.model = trial % 2 == 0 ? ChannelModel::kBernoulli
                                  : ChannelModel::kGilbertElliott;
    ChannelSet channels(net, config, rng);
    ArqPolicy policy;
    policy.max_attempts = 2;
    for (int round = 0; round < 20; ++round) {
      const ArqRoundResult res =
          simulate_arq_round(net, tree, policy, channels, rng);
      EXPECT_EQ(res.readings_delivered + res.readings_lost, net.node_count());
      EXPECT_GE(res.readings_delivered, 1);  // the sink always has its own
      EXPECT_LE(res.data_transmissions,
                static_cast<std::uint64_t>((net.node_count() - 1) *
                                           policy.max_attempts));
    }
  }
}

TEST(ArqRounds, HistogramCountsEveryTransaction) {
  mrlc::testing::ToyNetwork toy;
  const auto tree = toy.tree_b();
  ArqPolicy policy;
  policy.max_attempts = 4;
  Rng rng(98);
  const int kRounds = 500;
  const ArqAggregateResult agg =
      simulate_arq_rounds(toy.net, tree, policy, ChannelConfig{}, kRounds, rng);
  ASSERT_EQ(agg.attempts_histogram.size(), 4u);
  std::uint64_t transactions = 0;
  for (const std::uint64_t count : agg.attempts_histogram) transactions += count;
  EXPECT_EQ(transactions, static_cast<std::uint64_t>(kRounds * 5));
  EXPECT_GT(agg.delivery_ratio, 0.8);
  EXPECT_LE(agg.delivery_ratio, 1.0);
  EXPECT_GT(agg.joules_per_reading, 0.0);
}

TEST(ArqRounds, DeliveryBeatsNoRetxOnLossyLinks) {
  // The whole point of ARQ: a mediocre chain delivers far more readings
  // with 8 confirmed attempts than with a single unconfirmed shot.
  wsn::Network net(5, 0);
  for (int v = 1; v < 5; ++v) net.add_link(v - 1, v, 0.6);
  const auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1, 2, 3});
  ArqPolicy one_shot;
  one_shot.max_attempts = 1;
  ArqPolicy arq;
  arq.max_attempts = 8;
  Rng rng1(99), rng2(99);
  const ArqAggregateResult single =
      simulate_arq_rounds(net, tree, one_shot, ChannelConfig{}, 2000, rng1);
  const ArqAggregateResult retried =
      simulate_arq_rounds(net, tree, arq, ChannelConfig{}, 2000, rng2);
  EXPECT_GT(retried.delivery_ratio, single.delivery_ratio + 0.3);
  EXPECT_GT(retried.round_success_ratio, 0.8);
}

TEST(ArqDepletion, ExtrapolatesFirstDeath) {
  mrlc::testing::ToyNetwork toy;
  const auto tree = toy.tree_b();
  Rng rng(100);
  const ArqDepletionResult res = simulate_arq_depletion(
      toy.net, tree, ArqPolicy{}, ChannelConfig{}, 500, rng);
  EXPECT_GT(res.rounds_survived, 0.0);
  EXPECT_GE(res.first_dead, 0);
  EXPECT_LT(res.first_dead, toy.net.node_count());
  ASSERT_EQ(res.joules_per_round.size(), 6u);
  for (const double rate : res.joules_per_round) EXPECT_GE(rate, 0.0);
  EXPECT_THROW(simulate_arq_depletion(toy.net, tree, ArqPolicy{},
                                      ChannelConfig{}, 0, rng),
               std::invalid_argument);
}

// -------------------------------------------------------------- config io --

TEST(DataPlaneConfig, RoundTripPreservesEverything) {
  DataPlaneConfig original;
  original.has_arq = true;
  original.arq.max_attempts = 12;
  original.arq.backoff_base_slots = 2;
  original.arq.backoff_cap_exponent = 4;
  original.arq.ack_fraction = 0.125;
  original.has_channel = true;
  original.channel.model = ChannelModel::kGilbertElliott;
  original.channel.mean_bad_burst = 16.5;

  std::ostringstream os;
  write_dataplane_config(os, original);
  std::istringstream is(os.str());
  const DataPlaneConfig parsed = read_dataplane_config(is);
  EXPECT_TRUE(parsed.has_arq);
  EXPECT_TRUE(parsed.has_channel);
  EXPECT_EQ(parsed.arq.max_attempts, 12);
  EXPECT_EQ(parsed.arq.backoff_base_slots, 2);
  EXPECT_EQ(parsed.arq.backoff_cap_exponent, 4);
  EXPECT_DOUBLE_EQ(parsed.arq.ack_fraction, 0.125);
  EXPECT_EQ(parsed.channel.model, ChannelModel::kGilbertElliott);
  EXPECT_DOUBLE_EQ(parsed.channel.mean_bad_burst, 16.5);
}

TEST(DataPlaneConfig, AbsentBlockYieldsDefaults) {
  std::istringstream is("mrlc-network v1\nnodes 2 sink 0\nlink 0 1 0.9\n");
  const DataPlaneConfig parsed = read_dataplane_config(is);
  EXPECT_FALSE(parsed.has_arq);
  EXPECT_FALSE(parsed.has_channel);
}

TEST(DataPlaneConfig, UnknownKeysAreSkippedForForwardCompatibility) {
  std::istringstream is(
      "arq attempts 6 jitter-model gaussian ack-fraction 0.2\n"
      "channel gilbert-elliott burst 4 fade-margin 3.0\n");
  const DataPlaneConfig parsed = read_dataplane_config(is);
  EXPECT_EQ(parsed.arq.max_attempts, 6);
  EXPECT_DOUBLE_EQ(parsed.arq.ack_fraction, 0.2);
  EXPECT_DOUBLE_EQ(parsed.channel.mean_bad_burst, 4.0);
}

TEST(DataPlaneConfig, MalformedValuesRejected) {
  {
    std::istringstream is("arq attempts banana\n");
    EXPECT_THROW(read_dataplane_config(is), std::invalid_argument);
  }
  {
    std::istringstream is("arq attempts\n");
    EXPECT_THROW(read_dataplane_config(is), std::invalid_argument);
  }
  {
    std::istringstream is("channel rayleigh\n");
    EXPECT_THROW(read_dataplane_config(is), std::invalid_argument);
  }
  {
    std::istringstream is("arq attempts 0\n");  // fails validate()
    EXPECT_THROW(read_dataplane_config(is), std::invalid_argument);
  }
}

}  // namespace
}  // namespace mrlc::radio
