/// \file metrics_test.cpp
/// \brief Unit tests for the observability layer (common/metrics.hpp,
/// common/trace.hpp): concurrency, histogram accuracy, JSON shape, the
/// runtime kill switch, and phase nesting.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

namespace mrlc {
namespace {

/// Every test runs against the same process-wide registry; reset first and
/// force-enable so test order and the MRLC_METRICS env var don't matter.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::set_enabled(true);
    metrics::reset();
  }
};

TEST_F(MetricsTest, CounterAccumulatesAndResets) {
  metrics::Counter& c = metrics::counter("test.counter_basic");
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST_F(MetricsTest, CounterReferenceIsStable) {
  metrics::Counter& a = metrics::counter("test.counter_stable");
  // Registering many other instruments must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    metrics::counter("test.counter_stable_filler_" + std::to_string(i));
  }
  metrics::Counter& b = metrics::counter("test.counter_stable");
  EXPECT_EQ(&a, &b);
}

TEST_F(MetricsTest, ConcurrentIncrementsAreLossless) {
  metrics::Counter& c = metrics::counter("test.counter_concurrent");
  metrics::Histogram& h = metrics::histogram("test.hist_concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(i % 128);
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  EXPECT_EQ(c.value(), static_cast<long long>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<long long>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  metrics::Gauge& g = metrics::gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(MetricsTest, HistogramExactForSmallValues) {
  metrics::Histogram& h = metrics::histogram("test.hist_small");
  for (long long v = 0; v < metrics::Histogram::kSubBuckets; ++v) h.record(v);
  // Values below kSubBuckets occupy exact unit buckets: every percentile
  // must be the exact sample.
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), metrics::Histogram::kSubBuckets - 1);
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(1.0), metrics::Histogram::kSubBuckets - 1);
  EXPECT_EQ(h.sum(), metrics::Histogram::kSubBuckets *
                         (metrics::Histogram::kSubBuckets - 1) / 2);
}

TEST_F(MetricsTest, HistogramPercentilesWithinRelativeError) {
  metrics::Histogram& h = metrics::histogram("test.hist_pct");
  constexpr long long kN = 10'000;
  for (long long v = 1; v <= kN; ++v) h.record(v);
  const double tolerance =
      1.0 / static_cast<double>(metrics::Histogram::kSubBuckets);
  for (const double p : {0.50, 0.90, 0.99}) {
    const auto expected = static_cast<double>(
        static_cast<long long>(std::ceil(p * static_cast<double>(kN))));
    const auto got = static_cast<double>(h.percentile(p));
    EXPECT_NEAR(got, expected, expected * tolerance)
        << "p=" << p << " expected~" << expected << " got " << got;
  }
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), kN);
  EXPECT_NEAR(h.mean(), static_cast<double>(kN + 1) / 2.0, 1e-9);
}

TEST_F(MetricsTest, HistogramClampsNegativeSamples) {
  metrics::Histogram& h = metrics::histogram("test.hist_negative");
  h.record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST_F(MetricsTest, DisabledInstrumentsAreNoOps) {
  metrics::Counter& c = metrics::counter("test.disabled_counter");
  metrics::Gauge& g = metrics::gauge("test.disabled_gauge");
  metrics::Histogram& h = metrics::histogram("test.disabled_hist");
  metrics::set_enabled(false);
  c.add(7);
  g.set(3.0);
  h.record(9);
  {
    trace::ScopedPhase phase("test_disabled_phase");
  }
  metrics::set_enabled(true);
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(metrics::to_json_string().find("test_disabled_phase"),
            std::string::npos);
}

TEST_F(MetricsTest, ScopedPhasesNestIntoPaths) {
  {
    trace::ScopedPhase outer("test_outer");
    {
      trace::ScopedPhase inner("test_inner");
    }
    {
      trace::ScopedPhase inner("test_inner");  // same node, count -> 2
    }
  }
  const std::string json = metrics::to_json_string();
  EXPECT_NE(json.find("\"path\": \"test_outer\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"path\": \"test_outer/test_inner\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos) << json;
}

TEST_F(MetricsTest, JsonIsWellFormedAndRoundTrips) {
  metrics::counter("test.json_counter").add(3);
  metrics::gauge("test.json_gauge").set(0.5);
  metrics::histogram("test.json_hist").record(12);
  {
    trace::ScopedPhase phase("test_json_phase");
  }
  const std::string json = metrics::to_json_string();

  // Structural spot checks (a real parse happens in the CLI golden test,
  // which runs the output through python's json module).
  EXPECT_NE(json.find("\"schema\": \"mrlc-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_phase\""), std::string::npos);

  // Balanced braces/brackets outside of strings — cheap well-formedness.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char ch : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (ch == '\\') {
      escaped = true;
    } else if (ch == '"') {
      in_string = !in_string;
    } else if (!in_string && (ch == '{' || ch == '[')) {
      ++depth;
    } else if (!in_string && (ch == '}' || ch == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  // Emission is idempotent: reading the registry does not mutate it.
  EXPECT_EQ(json, metrics::to_json_string());
}

TEST_F(MetricsTest, ZeroTimesModeZeroesPhaseWallTime) {
  {
    trace::ScopedPhase phase("test_zero_times");
  }
  const std::string json = metrics::to_json_string(/*zero_times=*/true);
  const std::size_t at = json.find("\"test_zero_times\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"total_ms\": 0,", at), std::string::npos) << json;
}

TEST_F(MetricsTest, ResetClearsEverything) {
  metrics::counter("test.reset_counter").add(5);
  metrics::histogram("test.reset_hist").record(100);
  {
    trace::ScopedPhase phase("test_reset_phase");
  }
  metrics::reset();
  EXPECT_EQ(metrics::counter("test.reset_counter").value(), 0);
  EXPECT_EQ(metrics::histogram("test.reset_hist").count(), 0);
  // The phase node stays registered but its accumulators are zeroed.
  const std::string json = metrics::to_json_string();
  const std::size_t at = json.find("\"test_reset_phase\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"count\": 0", at), std::string::npos);
}

TEST_F(MetricsTest, ParallelForPhasesDoNotCorruptCursor) {
  // Phases opened on worker threads must not leak into each other: the
  // cursor is thread-local, so each worker builds its own path from root.
  std::atomic<int> entered{0};
  parallel_for(64, [&](int) {
    trace::ScopedPhase phase("test_parallel_phase");
    entered.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(entered.load(), 64);
  const std::string json = metrics::to_json_string();
  EXPECT_NE(json.find("\"path\": \"test_parallel_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 64"), std::string::npos) << json;
}

// ------------------------------------------------- sharded-slot behavior --
//
// Counters and histograms spread writers over per-thread cacheline-aligned
// shards and merge on read (docs/metrics.md "Shard-merge semantics").  The
// tests below pin down the merge contract: nothing lost, nothing double
// counted, and a mid-flight snapshot always covers every finished sample.

TEST_F(MetricsTest, ShardedCounterMergesMixedSignDeltasExactly) {
  metrics::Counter& c = metrics::counter("test.counter_sharded_mixed");
  constexpr int kThreads = 12;  // deliberately more threads than shards
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(3);
        c.add(-1);  // reconciliation-style negative delta
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  EXPECT_EQ(c.value(), static_cast<long long>(kThreads) * kPerThread * 2);
}

TEST_F(MetricsTest, ConcurrentHistogramEqualsSerialHistogramOfSameSamples) {
  metrics::Histogram& concurrent = metrics::histogram("test.hist_shard_conc");
  metrics::Histogram& serial = metrics::histogram("test.hist_shard_serial");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4'000;
  // Same multiset of samples either way: thread t records f(t, i), the
  // serial loop records every f(t, i) on one thread.
  const auto sample = [](int t, int i) {
    return static_cast<long long>((i * 37 + t * 101) % 5000);
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&concurrent, t, &sample] {
      for (int i = 0; i < kPerThread; ++i) concurrent.record(sample(t, i));
    });
  }
  for (std::thread& thread : pool) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) serial.record(sample(t, i));
  }

  EXPECT_EQ(concurrent.count(), serial.count());
  EXPECT_EQ(concurrent.sum(), serial.sum());
  EXPECT_EQ(concurrent.min(), serial.min());
  EXPECT_EQ(concurrent.max(), serial.max());
  EXPECT_DOUBLE_EQ(concurrent.mean(), serial.mean());
  for (const double p : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(concurrent.percentile(p), serial.percentile(p)) << "p=" << p;
  }
}

TEST_F(MetricsTest, SnapshotDuringRecordingNeverLosesAFinishedSample) {
  metrics::Histogram& h = metrics::histogram("test.hist_snapshot_race");
  metrics::Counter& c = metrics::counter("test.counter_snapshot_race");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  constexpr long long kTotal = static_cast<long long>(kThreads) * kPerThread;
  // Recorders publish how many samples they have *finished* recording; the
  // observer first acquires that figure, then snapshots.  Every published
  // sample happened-before the snapshot, so the merged reads must cover at
  // least that many — and can never exceed the grand total.
  std::atomic<long long> published{0};
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(i & 1023);
        c.add();
        published.fetch_add(1, std::memory_order_release);
      }
    });
  }

  long long last_hist = 0;
  long long last_counter = 0;
  while (published.load(std::memory_order_acquire) < kTotal) {
    const long long floor = published.load(std::memory_order_acquire);
    const long long hist_count = h.count();
    const long long counter_value = c.value();
    ASSERT_GE(hist_count, floor) << "snapshot lost a finished record()";
    ASSERT_GE(counter_value, floor) << "snapshot lost a finished add()";
    ASSERT_LE(hist_count, kTotal) << "snapshot double-counted a record()";
    ASSERT_LE(counter_value, kTotal) << "snapshot double-counted an add()";
    // Merged snapshots are monotone while recording only moves forward.
    ASSERT_GE(hist_count, last_hist);
    ASSERT_GE(counter_value, last_counter);
    last_hist = hist_count;
    last_counter = counter_value;
  }
  for (std::thread& thread : recorders) thread.join();
  long long expected_sum = 0;
  for (int i = 0; i < kPerThread; ++i) expected_sum += i & 1023;
  EXPECT_EQ(h.count(), kTotal);
  EXPECT_EQ(h.sum(), expected_sum * kThreads);
  EXPECT_EQ(c.value(), kTotal);
}

}  // namespace
}  // namespace mrlc
