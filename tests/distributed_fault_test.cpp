#include <gtest/gtest.h>

#include <queue>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "core/ira.hpp"
#include "distributed/churn.hpp"
#include "distributed/failure.hpp"
#include "distributed/maintainer.hpp"
#include "distributed/simulator.hpp"
#include "prufer/codec.hpp"
#include "helpers.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::dist {
namespace {

using mrlc::testing::small_random_network;

constexpr double kSlack = 1.0 - 1e-12;

/// True iff `v` reaches the sink over the alive topology.
bool physically_connected(const wsn::Network& net, wsn::VertexId v) {
  std::vector<bool> seen(static_cast<std::size_t>(net.node_count()), false);
  std::queue<wsn::VertexId> frontier;
  frontier.push(net.sink());
  seen[static_cast<std::size_t>(net.sink())] = true;
  while (!frontier.empty()) {
    const wsn::VertexId u = frontier.front();
    frontier.pop();
    if (u == v) return true;
    for (graph::EdgeId id : net.topology().incident(u)) {
      const wsn::VertexId w = net.topology().edge(id).other(u);
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        frontier.push(w);
      }
    }
  }
  return false;
}

// ------------------------------------------------------ maintainer repairs --

TEST(FaultRecovery, LeafDeathHealsTrivially) {
  // Path 0 <- 1 <- 2: losing leaf 2 orphans nobody.
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(1, 2, 0.9);
  auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1});
  const double bound = net.energy_model().node_lifetime(3000.0, 2);
  DistributedMaintainer maintainer(net, tree, bound);

  net.fail_node(2);
  const RepairOutcome outcome = maintainer.on_node_failed(net, 2);
  EXPECT_EQ(outcome.status, RepairStatus::kHealed);
  EXPECT_EQ(outcome.reattached_subtrees, 0);
  EXPECT_TRUE(outcome.detached.empty());
  EXPECT_FALSE(maintainer.tree().contains(2));
  EXPECT_EQ(maintainer.tree().member_count(), 2);
  EXPECT_EQ(maintainer.tree().children_count(1), 0);
  EXPECT_GE(wsn::network_lifetime(net, maintainer.tree()), bound * kSlack);
  EXPECT_EQ(maintainer.stats().node_failures, 1);
}

TEST(FaultRecovery, OrphanedSubtreeReattaches) {
  // 0 <- 2 <- 3 <- 4 with spare links (3,1) and (1,0): killing 2 orphans
  // the subtree {3, 4}, which must re-hang off 1.
  wsn::Network net(5, 0);
  net.add_link(0, 2, 0.9);
  net.add_link(2, 3, 0.9);
  net.add_link(3, 4, 0.9);
  net.add_link(3, 1, 0.8);
  net.add_link(1, 0, 0.95);
  auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 0, 2, 3});
  const double bound = net.energy_model().node_lifetime(3000.0, 3);
  DistributedMaintainer maintainer(net, tree, bound);

  net.fail_node(2);
  const RepairOutcome outcome = maintainer.on_node_failed(net, 2);
  EXPECT_EQ(outcome.status, RepairStatus::kHealed);
  EXPECT_EQ(outcome.reattached_subtrees, 1);
  EXPECT_EQ(maintainer.tree().parent(3), 1);
  EXPECT_EQ(maintainer.tree().parent(4), 3);
  EXPECT_EQ(maintainer.tree().member_count(), 4);
  EXPECT_GE(wsn::network_lifetime(net, maintainer.tree()), bound * kSlack);
  EXPECT_EQ(maintainer.stats().reattachments, 1);
  // The healed tree is whole again (minus the dead node), but it is not a
  // spanning tree of all five labels, so no Prüfer code exists for it.
  EXPECT_TRUE(maintainer.code().empty());
}

TEST(FaultRecovery, PartitionReportedAndRetriedLater) {
  // 3 hangs off 2 and has no other link: killing 2 partitions {3}.
  wsn::Network net(4, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(0, 2, 0.9);
  net.add_link(2, 3, 0.9);
  auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 0, 2});
  const double bound = net.energy_model().node_lifetime(3000.0, 3);
  DistributedMaintainer maintainer(net, tree, bound);

  net.fail_node(2);
  const RepairOutcome outcome = maintainer.on_node_failed(net, 2);
  EXPECT_EQ(outcome.status, RepairStatus::kPartitioned);
  ASSERT_EQ(outcome.detached.size(), 1u);
  EXPECT_EQ(outcome.detached[0], 3);
  EXPECT_FALSE(maintainer.tree().contains(3));
  EXPECT_EQ(maintainer.tree().member_count(), 2);
  EXPECT_EQ(maintainer.stats().partitions, 1);
  // Member-only metrics keep working on the partial tree.
  EXPECT_GE(wsn::network_lifetime(net, maintainer.tree()), bound * kSlack);

  // A new link restores physical connectivity; the retry re-admits node 3.
  net.add_link(3, 1, 0.85);
  EXPECT_EQ(maintainer.retry_detached(net), 1);
  EXPECT_TRUE(maintainer.tree().contains(3));
  EXPECT_EQ(maintainer.tree().parent(3), 1);
  EXPECT_EQ(maintainer.tree().member_count(), 3);
  EXPECT_GE(wsn::network_lifetime(net, maintainer.tree()), bound * kSlack);
}

TEST(FaultRecovery, LcRelaxationIsOptIn) {
  // After 2 dies, orphan 3's only candidate parent is 1, whose battery is
  // too small to take a child under LC.  Default policy: partition.
  // With allow_lc_relaxation: heal, record the lowered bound.
  const auto build = [] {
    wsn::Network net(4, 0);
    net.add_link(0, 1, 0.9);
    net.add_link(0, 2, 0.9);
    net.add_link(2, 3, 0.9);
    net.add_link(1, 3, 0.9);
    net.set_initial_energy(0, 1e6);  // mains-powered sink never bottlenecks
    net.set_initial_energy(1, 2500.0);
    return net;
  };
  const double bound = wsn::EnergyModel{}.node_lifetime(3000.0, 1);

  {
    wsn::Network net = build();
    auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 0, 2});
    ASSERT_GE(wsn::network_lifetime(net, tree), bound * kSlack);
    DistributedMaintainer strict(net, tree, bound);
    net.fail_node(2);
    const RepairOutcome outcome = strict.on_node_failed(net, 2);
    EXPECT_EQ(outcome.status, RepairStatus::kPartitioned);
    EXPECT_EQ(outcome.detached, std::vector<wsn::VertexId>{3});
    EXPECT_EQ(strict.lifetime_bound(), bound);
  }
  {
    wsn::Network net = build();
    auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 0, 2});
    MaintainerOptions options;
    options.allow_lc_relaxation = true;
    DistributedMaintainer relaxed(net, tree, bound, options);
    net.fail_node(2);
    const RepairOutcome outcome = relaxed.on_node_failed(net, 2);
    EXPECT_EQ(outcome.status, RepairStatus::kHealedDegraded);
    EXPECT_TRUE(outcome.detached.empty());
    EXPECT_EQ(relaxed.tree().parent(3), 1);
    EXPECT_LT(outcome.effective_bound, bound);
    EXPECT_EQ(relaxed.lifetime_bound(), outcome.effective_bound);
    EXPECT_GE(wsn::network_lifetime(net, relaxed.tree()),
              outcome.effective_bound * kSlack);
    EXPECT_EQ(relaxed.stats().lc_relaxations, 1);
  }
}

TEST(FaultRecovery, RandomNetworksHealOrPartitionCorrectly) {
  Rng rng(501);
  int healed = 0;
  int partitioned = 0;
  for (int trial = 0; trial < 6; ++trial) {
    // Dense graphs exercise heals; sparse ones (average degree ~2.7) leave
    // some victims' subtrees with no path home, exercising partitions.
    const double density = trial < 3 ? 0.12 : 0.055;
    wsn::Network net = small_random_network(50, density, rng, 0.6, 0.99);
    const double bound = net.energy_model().node_lifetime(3000.0, 8);
    core::IraOptions ira_options;
    ira_options.bound_mode = core::BoundMode::kDirect;
    const core::IraResult ira =
        core::IterativeRelaxation(ira_options).solve(net, bound);
    if (!ira.meets_bound) continue;
    MaintainerOptions options;
    options.allow_lc_relaxation = true;  // partitions then imply disconnection
    DistributedMaintainer maintainer(net, ira.tree, bound, options);

    const FailureSchedule schedule =
        random_crash_schedule(net, 8, 1000.0, rng);
    for (const FailureEvent& event : schedule.events) {
      net.fail_node(event.node);
      const RepairOutcome outcome = maintainer.on_node_failed(net, event.node);
      const wsn::AggregationTree& tree = maintainer.tree();

      // Members are exactly the alive nodes minus everything ever detached;
      // no dead node may remain a member.
      EXPECT_FALSE(tree.contains(event.node));
      for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
        if (tree.contains(v)) EXPECT_TRUE(net.node_alive(v));
      }
      // Whatever remains on the tree satisfies the bound in force.
      EXPECT_GE(wsn::network_lifetime(net, tree),
                maintainer.lifetime_bound() * kSlack);
      EXPECT_LE(maintainer.lifetime_bound(), bound);

      switch (outcome.status) {
        case RepairStatus::kHealed:
          EXPECT_TRUE(outcome.detached.empty());
          EXPECT_EQ(outcome.effective_bound, maintainer.lifetime_bound());
          ++healed;
          break;
        case RepairStatus::kHealedDegraded:
          EXPECT_TRUE(outcome.detached.empty());
          EXPECT_LT(outcome.effective_bound, bound);
          break;
        case RepairStatus::kPartitioned:
          ASSERT_FALSE(outcome.detached.empty());
          // With relaxation on, a partition means physical disconnection.
          for (wsn::VertexId v : outcome.detached) {
            EXPECT_FALSE(physically_connected(net, v)) << "node " << v;
          }
          ++partitioned;
          break;
      }
    }
  }
  EXPECT_GT(healed, 0) << "schedules never exercised a heal";
  EXPECT_GT(partitioned, 0) << "schedules never exercised a partition";
}

// ------------------------------------------------------- failure schedules --

TEST(FailureSchedule, CrashScheduleIsDistinctSortedAndSeeded) {
  Rng rng_a(7);
  Rng rng_b(7);
  wsn::Network net(20, 0);  // topology irrelevant for crash scheduling
  const FailureSchedule a = random_crash_schedule(net, 10, 500.0, rng_a);
  const FailureSchedule b = random_crash_schedule(net, 10, 500.0, rng_b);
  ASSERT_EQ(a.size(), 10);
  std::vector<bool> seen(20, false);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events[i].node, b.events[i].node) << "not seed-deterministic";
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_NE(a.events[i].node, net.sink());
    EXPECT_FALSE(seen[static_cast<std::size_t>(a.events[i].node)]) << "duplicate victim";
    seen[static_cast<std::size_t>(a.events[i].node)] = true;
    if (i > 0) EXPECT_GE(a.events[i].time, a.events[i - 1].time);
    EXPECT_GT(a.events[i].time, 0.0);
    EXPECT_LT(a.events[i].time, 500.0);
  }
  EXPECT_THROW(random_crash_schedule(net, 20, 500.0, rng_a), std::invalid_argument);
}

TEST(FailureSchedule, DepletionDeathsFollowEnergyRates) {
  // Star: every leaf sends to the sink; the leaf with the smallest battery
  // dies first.
  Rng rng(11);
  wsn::Network net(4, 0);
  net.add_link(0, 1, 1.0);
  net.add_link(0, 2, 1.0);
  net.add_link(0, 3, 1.0);
  net.set_initial_energy(1, 1000.0);
  net.set_initial_energy(2, 2000.0);
  net.set_initial_energy(3, 3000.0);
  auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 0, 0});
  const FailureSchedule schedule =
      depletion_schedule(net, tree, radio::RetxPolicy{}, 2, 50, rng);
  ASSERT_EQ(schedule.size(), 2);
  EXPECT_EQ(schedule.events[0].node, 1);
  EXPECT_EQ(schedule.events[1].node, 2);
  EXPECT_EQ(schedule.events[0].kind, FailureKind::kDepletion);
  EXPECT_LT(schedule.events[0].time, schedule.events[1].time);
}

TEST(FailureSchedule, RoundTripsThroughText) {
  FailureSchedule schedule;
  schedule.events.push_back({12.5, 3, FailureKind::kCrash});
  schedule.events.push_back({90.0, 7, FailureKind::kDepletion});
  std::stringstream buffer;
  buffer << "mrlc-network v1\nnodes 8 sink 0\n";  // a network block to skip
  write_fault_schedule(buffer, schedule);
  const FailureSchedule parsed = read_fault_schedule(buffer);
  ASSERT_EQ(parsed.size(), 2);
  EXPECT_EQ(parsed.events[0].time, 12.5);
  EXPECT_EQ(parsed.events[0].node, 3);
  EXPECT_EQ(parsed.events[0].kind, FailureKind::kCrash);
  EXPECT_EQ(parsed.events[1].node, 7);
  EXPECT_EQ(parsed.events[1].kind, FailureKind::kDepletion);

  std::stringstream empty("mrlc-network v1\nnodes 2 sink 0\nlink 0 1 0.9\n");
  EXPECT_TRUE(read_fault_schedule(empty).empty());
}

TEST(FailureSchedule, CompactNetworkKeepsSurvivors) {
  Rng rng(13);
  wsn::Network net = small_random_network(12, 0.5, rng, 0.6, 0.95);
  net.set_initial_energy(5, 1234.0);
  net.fail_node(3);
  net.fail_node(7);
  const CompactNetwork compact = compact_alive_network(net);
  EXPECT_EQ(compact.net.node_count(), 10);
  EXPECT_EQ(compact.net.sink(), 0);
  EXPECT_EQ(compact.original[0], net.sink());
  EXPECT_EQ(compact.net.link_count(), net.topology().alive_edge_count());
  for (int c = 0; c < compact.net.node_count(); ++c) {
    EXPECT_TRUE(net.node_alive(compact.original[static_cast<std::size_t>(c)]));
    EXPECT_EQ(compact.net.initial_energy(c),
              net.initial_energy(compact.original[static_cast<std::size_t>(c)]));
  }
}

// --------------------------------------------------------- replica resync --

prufer::Code path_code() {
  // 0 <- 1 <- 2 <- 3
  return prufer::encode({-1, 0, 1, 2});
}

TEST(SensorReplica, IntegrateBuffersOutOfOrderRecords) {
  SensorReplica replica(/*id=*/2, path_code(), /*node_count=*/4);

  UpdateRecord second;
  second.sequence = 2;
  second.changes.emplace_back(2, 0);
  EXPECT_EQ(replica.integrate(second), SensorReplica::Integration::kBuffered);
  EXPECT_EQ(replica.applied_sequence(), 0u);  // gap: record 1 missing
  EXPECT_EQ(replica.known_sequence(), 2u);
  EXPECT_EQ(replica.missing_sequences(), std::vector<std::uint64_t>{1});
  EXPECT_EQ(replica.parents()[2], 1) << "buffered records must not apply";

  EXPECT_EQ(replica.integrate(second), SensorReplica::Integration::kDuplicate);

  UpdateRecord first;
  first.sequence = 1;
  first.changes.emplace_back(3, 1);
  EXPECT_EQ(replica.integrate(first), SensorReplica::Integration::kApplied);
  EXPECT_EQ(replica.applied_sequence(), 2u) << "gap fill must drain the buffer";
  EXPECT_TRUE(replica.missing_sequences().empty());
  EXPECT_EQ(replica.parents()[3], 1);
  EXPECT_EQ(replica.parents()[2], 0);
  EXPECT_TRUE(replica.has_record(1));
  EXPECT_TRUE(replica.has_record(2));

  EXPECT_EQ(replica.integrate(first), SensorReplica::Integration::kDuplicate);
}

TEST(SensorReplica, DigestsRevealGapsWithoutRecords) {
  SensorReplica replica(/*id=*/1, path_code(), /*node_count=*/4);
  replica.observe_sequence(3);
  EXPECT_EQ(replica.known_sequence(), 3u);
  EXPECT_EQ(replica.missing_sequences(),
            (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_FALSE(replica.has_record(2));
  // Digests never regress.
  replica.observe_sequence(1);
  EXPECT_EQ(replica.known_sequence(), 3u);
}

TEST(SensorReplica, DetachRecordsDropTheCodeUntilTheTreeIsWhole) {
  SensorReplica replica(/*id=*/0, path_code(), /*node_count=*/4);
  EXPECT_FALSE(replica.code().empty());

  UpdateRecord detach;
  detach.sequence = 1;
  detach.changes.emplace_back(2, -1);  // subtree {2, 3} cut off
  EXPECT_TRUE(replica.apply(detach));
  EXPECT_TRUE(replica.code().empty()) << "partial trees have no Prüfer code";
  EXPECT_EQ(replica.parents()[2], -1);
  EXPECT_EQ(replica.parents()[3], 2) << "off-tree interior pointers survive";

  UpdateRecord rejoin;
  rejoin.sequence = 2;
  rejoin.changes.emplace_back(2, 0);
  EXPECT_TRUE(replica.apply(rejoin));
  EXPECT_FALSE(replica.code().empty());
  EXPECT_EQ(prufer::decode(replica.code(), 4),
            (prufer::ParentArray{-1, 0, 0, 2}));
}

// ------------------------------------------------ lossy flood convergence --

TEST(LossySimulator, ReplicasConvergeAfterEveryEvent) {
  Rng rng(601);
  long long missed_total = 0;
  long long resync_rounds_total = 0;
  int events_seen = 0;
  for (int trial = 0; trial < 5; ++trial) {
    wsn::Network net = small_random_network(12, 0.6, rng, 0.6, 0.95);
    const double bound = net.energy_model().node_lifetime(3000.0, 6);
    core::IraOptions ira_options;
    ira_options.bound_mode = core::BoundMode::kDirect;
    const core::IraResult ira =
        core::IterativeRelaxation(ira_options).solve(net, bound);
    if (!ira.meets_bound) continue;

    FloodOptions flood;
    flood.lossy = true;
    flood.control_retx = 1;
    flood.seed = 9000 + static_cast<std::uint64_t>(trial);
    MaintainerOptions options;
    options.allow_lc_relaxation = true;
    ProtocolSimulator sim(net, ira.tree, bound, options, flood);
    ASSERT_TRUE(sim.replicas_consistent());

    ChurnOptions churn_options;
    churn_options.cost_noise_sigma = 0.05;
    ChurnProcess churn(net, churn_options);
    for (int step = 0; step < 25; ++step) {
      for (const LinkEvent& event : churn.step(net, rng)) {
        if (event.kind == LinkEvent::Kind::kDegraded) {
          sim.on_link_degraded(net, event.link);
        } else {
          sim.on_link_improved(net, event.link);
        }
        EXPECT_TRUE(sim.replicas_consistent())
            << "trial " << trial << " step " << step;
        ++events_seen;
      }
    }

    // Two node deaths on top of the churn.
    for (int death = 0; death < 2; ++death) {
      wsn::VertexId victim = -1;
      for (wsn::VertexId v = net.node_count() - 1; v > 0; --v) {
        if (net.node_alive(v) && sim.tree().contains(v)) {
          victim = v;
          break;
        }
      }
      ASSERT_NE(victim, -1);
      sim.on_node_failed(net, victim);
      EXPECT_TRUE(sim.replicas_consistent())
          << "trial " << trial << " death " << death;
      ++events_seen;
    }

    missed_total += sim.stats().flood_deliveries_missed;
    resync_rounds_total += sim.stats().resync_rounds;
    EXPECT_EQ(sim.stats().resync_exhausted, 0);
  }
  ASSERT_GT(events_seen, 0);
  // The loss model must actually bite somewhere across the trials, and
  // anti-entropy must be what repaired it.
  EXPECT_GT(missed_total, 0);
  EXPECT_GT(resync_rounds_total, 0);
}

TEST(LossySimulator, ReliableModeKeepsLegacyAccounting) {
  Rng rng(77);
  wsn::Network net = small_random_network(10, 0.6, rng, 0.6, 1.0);
  const double bound = net.energy_model().node_lifetime(3000.0, 6);
  core::IraOptions ira_options;
  ira_options.bound_mode = core::BoundMode::kDirect;
  const core::IraResult ira =
      core::IterativeRelaxation(ira_options).solve(net, bound);
  if (!ira.meets_bound) GTEST_SKIP() << "instance too tight";
  ProtocolSimulator sim(net, ira.tree, bound);
  EXPECT_EQ(sim.stats().digest_beacons, 0);
  EXPECT_EQ(sim.stats().resync_requests, 0);
  EXPECT_EQ(sim.stats().flood_deliveries_missed, 0);
  EXPECT_EQ(sim.resync(net), 0) << "resync is a no-op without lossy mode";
}

TEST(LossySimulator, NodeFailureFloodsReachSurvivors) {
  // Deterministic line: 0 <- 1 <- 2 <- 3 <- 4 plus (1,4) backup; kill 2.
  wsn::Network net(5, 0);
  net.add_link(0, 1, 0.95);
  net.add_link(1, 2, 0.95);
  net.add_link(2, 3, 0.95);
  net.add_link(3, 4, 0.95);
  net.add_link(1, 4, 0.9);
  auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1, 2, 3});
  const double bound = net.energy_model().node_lifetime(3000.0, 3);
  FloodOptions flood;
  flood.lossy = true;
  flood.control_retx = 3;
  flood.seed = 42;
  ProtocolSimulator sim(net, tree, bound, MaintainerOptions{}, flood);

  const RepairOutcome outcome = sim.on_node_failed(net, 2);
  EXPECT_EQ(outcome.status, RepairStatus::kHealed);
  EXPECT_TRUE(sim.replicas_consistent());
  // Survivors agree that 3 now routes through 4 -> 1 (the only way home).
  EXPECT_EQ(sim.tree().parent(4), 1);
  EXPECT_EQ(sim.tree().parent(3), 4);
  for (wsn::VertexId v : {0, 1, 3, 4}) {
    EXPECT_EQ(sim.replica(v).parents(), sim.tree().parents()) << "node " << v;
  }
  EXPECT_TRUE(sim.replica(2).dead());
}

}  // namespace
}  // namespace mrlc::dist
