#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/exact.hpp"
#include "core/feasibility.hpp"
#include "core/ira.hpp"
#include "helpers.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {
namespace {

using mrlc::testing::small_random_network;

TEST(LpFeasible, MonotoneInBound) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net = small_random_network(8, 0.6, rng);
    double previous_feasible = true;
    for (const int children : {8, 6, 4, 2, 1}) {
      // Decreasing children = increasing bound = harder.
      const double bound = net.energy_model().node_lifetime(3000.0, children);
      const bool feasible = lp_lifetime_feasible(net, bound);
      // Once infeasible at a loose bound, must stay infeasible when tighter.
      if (!previous_feasible) {
        EXPECT_FALSE(feasible) << "children " << children;
      }
      previous_feasible = feasible;
    }
  }
}

TEST(LpFeasible, FalseIsAProofOfInfeasibility) {
  // LP infeasibility must imply exact infeasibility (LP is a relaxation).
  Rng rng(42);
  for (int trial = 0; trial < 15; ++trial) {
    const wsn::Network net = small_random_network(7, 0.5, rng);
    for (const int children : {1, 2, 3}) {
      const double bound = net.energy_model().node_lifetime(3000.0, children) * 1.001;
      if (!lp_lifetime_feasible(net, bound)) {
        EXPECT_FALSE(exact_mrlc(net, bound).has_value())
            << "trial " << trial << " children " << children;
      }
    }
  }
}

TEST(LpFeasible, TrueOnAnyTreeLifetime) {
  // The bound achieved by a concrete tree is always LP-feasible.
  Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net = small_random_network(8, 0.6, rng);
    const auto tree = mrlc::testing::random_tree(net, rng);
    const double achieved = wsn::network_lifetime(net, tree);
    EXPECT_TRUE(lp_lifetime_feasible(net, achieved * 0.999)) << "trial " << trial;
  }
}

TEST(Bracket, ContainsExactOptimum) {
  Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net = small_random_network(7, 0.6, rng);
    const auto best = exact_max_lifetime(net);
    ASSERT_TRUE(best.has_value());
    const LifetimeBracket bracket = bracket_max_lifetime(net);
    EXPECT_LE(bracket.lower, best->lifetime * (1.0 + 1e-9)) << "trial " << trial;
    EXPECT_GE(bracket.upper, best->lifetime * (1.0 - 1e-9)) << "trial " << trial;
  }
}

TEST(Bracket, LowerIsConstructive) {
  Rng rng(45);
  const wsn::Network net = small_random_network(10, 0.6, rng);
  const LifetimeBracket bracket = bracket_max_lifetime(net);
  EXPECT_GT(bracket.lower, 0.0);
  EXPECT_GE(bracket.upper, bracket.lower * (1.0 - 1e-9));
}

TEST(Bracket, TightOnPathNetworks) {
  // On a path there is exactly one spanning tree; both bounds must land on
  // its lifetime (up to search tolerance).
  wsn::Network net(5, 0);
  for (int v = 1; v < 5; ++v) net.add_link(v - 1, v, 0.9);
  const LifetimeBracket bracket = bracket_max_lifetime(net, 1e-6);
  const double path_lifetime = net.energy_model().node_lifetime(3000.0, 1);
  EXPECT_NEAR(bracket.lower, path_lifetime, path_lifetime * 1e-9);
  EXPECT_NEAR(bracket.upper, path_lifetime, path_lifetime * 1e-4);
}

TEST(Bracket, StarNetworkIsHubLimited) {
  // Star around the sink: the sink must keep n-1 children.
  wsn::Network net(6, 0);
  for (int v = 1; v < 6; ++v) net.add_link(0, v, 0.9);
  const LifetimeBracket bracket = bracket_max_lifetime(net, 1e-6);
  const double hub_lifetime = net.energy_model().node_lifetime(3000.0, 5);
  EXPECT_NEAR(bracket.lower, hub_lifetime, hub_lifetime * 1e-9);
  EXPECT_NEAR(bracket.upper, hub_lifetime, hub_lifetime * 1e-3);
}

TEST(Bracket, GuardsBadInput) {
  mrlc::testing::ToyNetwork toy;
  EXPECT_THROW(bracket_max_lifetime(toy.net, 0.0), std::invalid_argument);
  EXPECT_THROW(bracket_max_lifetime(toy.net, 1.5), std::invalid_argument);
  EXPECT_THROW(lp_lifetime_feasible(toy.net, -1.0), std::invalid_argument);
  wsn::Network disconnected(3, 0);
  disconnected.add_link(0, 1, 0.9);
  EXPECT_THROW(bracket_max_lifetime(disconnected), InfeasibleError);
}

TEST(Bracket, IraSucceedsWithinTheBracket) {
  // The bracket is actionable: IRA (direct) must solve at the lower bound.
  Rng rng(46);
  for (int trial = 0; trial < 8; ++trial) {
    const wsn::Network net = small_random_network(9, 0.6, rng);
    const LifetimeBracket bracket = bracket_max_lifetime(net);
    IraOptions options;
    options.bound_mode = BoundMode::kDirect;
    EXPECT_NO_THROW({
      const IraResult res = IterativeRelaxation(options).solve(net, bracket.lower);
      EXPECT_GT(res.reliability, 0.0);
    }) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mrlc::core
