#include <gtest/gtest.h>

#include "baselines/mst_baseline.hpp"
#include "common/rng.hpp"
#include "core/retx_ira.hpp"
#include "helpers.hpp"
#include "radio/depletion_sim.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {
namespace {

using mrlc::testing::small_random_network;

// ---------------------------------------------------- retx-aware metrics --

TEST(RetxMetrics, MatchesHandComputedRates) {
  // Chain 0 <- 1 <- 2 with q = 0.5 everywhere.
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.5);
  net.add_link(1, 2, 0.5);
  const auto tree = wsn::AggregationTree::from_parents(net, {-1, 0, 1});
  const double tx = net.energy_model().tx_joules;
  const double rx = net.energy_model().rx_joules;
  // Node 1: sends through q=0.5 (Tx/0.5) and receives node 2's retries
  // (Rx/0.5).
  EXPECT_NEAR(wsn::node_lifetime_retx(net, tree, 1),
              3000.0 / (tx / 0.5 + rx / 0.5), 1e-6);
  // Node 2 (leaf): only the send term.
  EXPECT_NEAR(wsn::node_lifetime_retx(net, tree, 2), 3000.0 / (tx / 0.5), 1e-6);
  // Sink: only the receive term.
  EXPECT_NEAR(wsn::node_lifetime_retx(net, tree, 0), 3000.0 / (rx / 0.5), 1e-6);
}

TEST(RetxMetrics, PerfectLinksReduceToEq1) {
  mrlc::testing::ToyNetwork toy;
  // Build a tree using only q = 1.0 links plus the 0.8 link (4, 0).
  const auto tree = toy.tree_b();
  for (int v = 0; v < toy.net.node_count(); ++v) {
    // With q = 1 links the retx lifetime equals Eq. 1's (modulo the sink's
    // Tx term, which Eq. 1 charges and the retx model does not).
    if (v == toy.net.sink()) continue;
    double q_ok = true;
    if (toy.net.link_prr(tree.parent_edge(v)) < 1.0) q_ok = false;
    for (int c = 0; c < toy.net.node_count(); ++c) {
      if (tree.parent(c) == v && toy.net.link_prr(tree.parent_edge(c)) < 1.0) {
        q_ok = false;
      }
    }
    if (q_ok) {
      EXPECT_NEAR(wsn::node_lifetime_retx(toy.net, tree, v),
                  wsn::node_lifetime(toy.net, tree, v), 1e-6)
          << "node " << v;
    }
  }
}

TEST(RetxMetrics, AgreesWithDepletionSimulation) {
  Rng rng(71);
  const wsn::Network net = small_random_network(8, 0.7, rng, 0.4, 0.95);
  const auto tree = mrlc::testing::random_tree(net, rng);
  radio::RetxPolicy retx;
  retx.enabled = true;
  Rng sim_rng(72);
  const radio::DepletionResult dep =
      radio::simulate_depletion(net, tree, retx, 5000, sim_rng);
  const double analytic = wsn::network_lifetime_retx(net, tree);
  EXPECT_NEAR(dep.rounds_survived, analytic, analytic * 0.05);
}

// -------------------------------------------------------- retx-aware IRA --

TEST(RetxIra, ReturnedTreeMeetsTheRetxBound) {
  Rng rng(73);
  int solved = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const wsn::Network net = small_random_network(9, 0.6, rng, 0.4, 0.99);
    // A bound around half of what the best single chain could do.
    const double bound =
        3000.0 / (net.energy_model().tx_joules / 0.6) * 0.25;
    try {
      const RetxIraResult res = retx_aware_ira(net, bound);
      ++solved;
      EXPECT_TRUE(res.meets_bound) << "trial " << trial;
      EXPECT_GE(res.lifetime_retx, bound * (1 - 1e-9));
      EXPECT_EQ(res.tree.edge_ids().size(),
                static_cast<std::size_t>(net.node_count() - 1));
    } catch (const InfeasibleError&) {
      // conservative rows may refuse borderline instances
    }
  }
  EXPECT_GT(solved, 5);
}

TEST(RetxIra, AvoidsLowQualityHubsThatPlainIraTolerates) {
  // A hub with mediocre links: under Eq. 1 its children count is all that
  // matters, but under the retx model every mediocre child link burns the
  // hub's battery.  Construct so the retx-aware solver must route around.
  wsn::Network net(5, 0);
  net.add_link(0, 1, 0.95);
  net.add_link(1, 2, 0.35);  // cheap-ish in count, expensive in retx energy
  net.add_link(1, 3, 0.35);
  net.add_link(1, 4, 0.35);
  net.add_link(2, 3, 0.90);
  net.add_link(3, 4, 0.90);
  net.add_link(0, 2, 0.80);
  const double tx = net.energy_model().tx_joules;
  // Bound tight enough that node 1 cannot afford three 0.35-quality
  // children (rate 3*Rx/0.35 + Tx/0.95) but a chain is fine.
  const double bound = 3000.0 / (tx / 0.35) * 0.9;
  const RetxIraResult res = retx_aware_ira(net, bound);
  EXPECT_TRUE(res.meets_bound);
  EXPECT_LT(res.tree.children_count(1), 3);
}

TEST(RetxIra, InfeasibleWhenEvenALeafBlowsTheBudget) {
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.5);
  net.add_link(1, 2, 0.5);
  // Node 2 must send through q = 0.5: rate >= Tx/0.5.  Ask for more.
  const double max_leaf_lifetime = 3000.0 / (net.energy_model().tx_joules / 0.5);
  EXPECT_THROW(retx_aware_ira(net, max_leaf_lifetime * 1.1), InfeasibleError);
}

TEST(RetxIra, LooseBoundReturnsTheMst) {
  Rng rng(74);
  const wsn::Network net = small_random_network(8, 0.7, rng, 0.5, 1.0);
  const RetxIraResult res = retx_aware_ira(net, 1.0);
  const baselines::MstResult mst = baselines::mst_baseline(net);
  EXPECT_NEAR(res.cost, mst.cost, 1e-9);
}

TEST(RetxIra, RejectsBadInput) {
  mrlc::testing::ToyNetwork toy;
  EXPECT_THROW(retx_aware_ira(toy.net, 0.0), std::invalid_argument);
  wsn::Network disconnected(3, 0);
  disconnected.add_link(0, 1, 0.9);
  EXPECT_THROW(retx_aware_ira(disconnected, 1.0), InfeasibleError);
}

}  // namespace
}  // namespace mrlc::core
