#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "distributed/dataplane.hpp"
#include "distributed/link_estimator.hpp"
#include "helpers.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::dist {
namespace {

wsn::Network one_link_network(double prr) {
  wsn::Network net(2, 0);
  net.add_link(0, 1, prr);
  return net;
}

// --------------------------------------------------------- link estimator --

TEST(LinkEstimator, SeededAtSurveyPrr) {
  const wsn::Network net = one_link_network(0.9);
  LinkEstimatorBank bank(net);
  EXPECT_NEAR(bank.estimate(0), 0.9, 1e-12);
  EXPECT_NEAR(bank.reported(0), 0.9, 1e-12);
  EXPECT_EQ(bank.sample_count(0), 0);
  EXPECT_TRUE(bank.poll().empty());
}

TEST(LinkEstimator, NoEventBeforeWarmup) {
  const wsn::Network net = one_link_network(0.9);
  EstimatorOptions options;
  options.min_samples = 10;
  LinkEstimatorBank bank(net, options);
  for (int i = 0; i < 9; ++i) bank.observe(0, false);
  EXPECT_TRUE(bank.poll().empty());  // estimate collapsed but still warming up
  EXPECT_LT(bank.estimate(0), 0.9);
}

TEST(LinkEstimator, FailureStreakEmitsDegradeEvent) {
  const wsn::Network net = one_link_network(0.9);
  LinkEstimatorBank bank(net);
  for (int i = 0; i < 20; ++i) bank.observe(0, false);
  const std::vector<LinkEvent> events = bank.poll();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].link, 0);
  EXPECT_EQ(events[0].kind, LinkEvent::Kind::kDegraded);
  EXPECT_NEAR(events[0].old_prr, 0.9, 1e-12);
  EXPECT_LT(events[0].new_prr, 0.9 * (1.0 - bank.options().degrade_threshold));
  // The event moved the reported anchor: no immediate re-report.
  EXPECT_TRUE(bank.poll().empty());
  EXPECT_NEAR(bank.reported(0), events[0].new_prr, 1e-12);
}

TEST(LinkEstimator, SuccessStreakEmitsImproveEventPastHysteresis) {
  const wsn::Network net = one_link_network(0.5);
  LinkEstimatorBank bank(net);
  std::vector<LinkEvent> events;
  for (int i = 0; i < 100 && events.empty(); ++i) {
    bank.observe(0, true);
    events = bank.poll();
  }
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, LinkEvent::Kind::kImproved);
  // Hysteresis: the improvement had to clear the higher bar.
  EXPECT_GE(events[0].new_prr,
            0.5 * (1.0 + bank.options().improve_threshold) - 1e-12);
}

TEST(LinkEstimator, LaterObservationSupersedesQueuedEvent) {
  const wsn::Network net = one_link_network(0.9);
  LinkEstimatorBank bank(net);
  // Queue a degrade, then keep feeding before anyone polls: still exactly
  // one event for the link, carrying the latest estimate.
  for (int i = 0; i < 40; ++i) bank.observe(0, false);
  const std::vector<LinkEvent> events = bank.poll();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].new_prr, bank.estimate(0), 1e-12);
}

TEST(LinkEstimator, EstimateClampedToFloor) {
  const wsn::Network net = one_link_network(0.9);
  LinkEstimatorBank bank(net);
  for (int i = 0; i < 2000; ++i) bank.observe(0, false);
  EXPECT_GE(bank.estimate(0), bank.options().min_prr - 1e-15);
}

TEST(LinkEstimator, CompensationDividesAckBiasOut) {
  // Samples are ACK outcomes ~ q * q_ack; with compensation = q_ack the
  // published estimate recovers q.
  const double q = 0.81;
  const double q_ack = 0.9;
  const wsn::Network net = one_link_network(q);
  EstimatorOptions options;
  options.sample_compensation = q_ack;
  options.ewma_alpha = 0.01;
  LinkEstimatorBank bank(net, options);
  EXPECT_NEAR(bank.estimate(0), q, 1e-12);  // seed is bias-consistent
  Rng rng(110);
  for (int i = 0; i < 20000; ++i) bank.observe(0, rng.bernoulli(q * q_ack));
  EXPECT_NEAR(bank.estimate(0), q, 0.08);
}

TEST(LinkEstimator, WriteEstimatesUpdatesBelievedView) {
  const wsn::Network net = one_link_network(0.9);
  wsn::Network believed = net;
  LinkEstimatorBank bank(net);
  for (int i = 0; i < 20; ++i) bank.observe(0, false);
  bank.write_estimates(believed);
  EXPECT_NEAR(believed.link_prr(0), bank.estimate(0), 1e-12);
  EXPECT_NEAR(net.link_prr(0), 0.9, 1e-12);  // the truth is untouched
}

TEST(LinkEstimator, Validation) {
  EstimatorOptions options;
  options.ewma_alpha = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = EstimatorOptions{};
  options.min_samples = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = EstimatorOptions{};
  options.sample_compensation = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  const wsn::Network net = one_link_network(0.9);
  LinkEstimatorBank bank(net);
  EXPECT_THROW(bank.observe(3, true), std::invalid_argument);
  EXPECT_THROW(bank.estimate(-1), std::invalid_argument);
}

// ------------------------------------------------------------- dataplane --

struct Fixture {
  wsn::Network net;
  wsn::AggregationTree tree;
  double bound = 0.0;
};

Fixture make_fixture(std::uint64_t seed) {
  Rng rng(seed);
  Fixture fx{mrlc::testing::small_random_network(10, 0.5, rng, 0.7, 0.99),
             wsn::AggregationTree{}, 0.0};
  fx.tree = mrlc::testing::random_tree(fx.net, rng);
  // Half of the tree's own lifetime: comfortably met at construction, so
  // the maintainer has room to repair without immediate LC pressure.
  fx.bound = 0.5 * wsn::network_lifetime(fx.net, fx.tree);
  return fx;
}

DataPlaneOptions small_options(RepairMode repair) {
  DataPlaneOptions options;
  options.rounds = 60;
  options.repair = repair;
  options.churn.cost_noise_sigma = 0.05;  // noisy enough to trigger events
  return options;
}

TEST(DataPlane, RunsAllRepairModes) {
  const Fixture fx = make_fixture(120);
  for (const RepairMode mode :
       {RepairMode::kNone, RepairMode::kOracle, RepairMode::kEstimator}) {
    const DataPlaneResult res =
        run_dataplane(fx.net, fx.tree, fx.bound, small_options(mode));
    EXPECT_EQ(res.rounds, 60);
    EXPECT_GE(res.delivery_ratio, 0.0);
    EXPECT_LE(res.delivery_ratio, 1.0);
    EXPECT_GE(res.round_success_ratio, 0.0);
    EXPECT_LE(res.round_success_ratio, 1.0);
    EXPECT_GT(res.avg_data_tx_per_round, 0.0);
    EXPECT_GT(res.avg_ack_tx_per_round, 0.0);
    EXPECT_GE(res.avg_slots_per_round, res.avg_data_tx_per_round);
    EXPECT_GT(res.measured_lifetime_rounds, 0.0);
    EXPECT_GT(res.joules_per_reading, 0.0);
    EXPECT_GT(res.final_reliability, 0.0);
    if (mode == RepairMode::kNone) {
      EXPECT_EQ(res.repairs_applied, 0);
      EXPECT_EQ(res.degraded_events, 0);
      EXPECT_EQ(res.improved_events, 0);
    }
  }
}

TEST(DataPlane, DeterministicGivenSeed) {
  const Fixture fx = make_fixture(121);
  const DataPlaneOptions options = small_options(RepairMode::kEstimator);
  const DataPlaneResult a = run_dataplane(fx.net, fx.tree, fx.bound, options);
  const DataPlaneResult b = run_dataplane(fx.net, fx.tree, fx.bound, options);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.repairs_applied, b.repairs_applied);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.false_positive_events, b.false_positive_events);
  EXPECT_DOUBLE_EQ(a.measured_lifetime_rounds, b.measured_lifetime_rounds);
}

TEST(DataPlane, EstimatorModeAccountsDetections) {
  const Fixture fx = make_fixture(122);
  DataPlaneOptions options = small_options(RepairMode::kEstimator);
  options.rounds = 200;
  const DataPlaneResult res =
      run_dataplane(fx.net, fx.tree, fx.bound, options);
  // Every estimator event is classified exactly once.
  EXPECT_EQ(res.degraded_events + res.improved_events,
            res.detections + res.false_positive_events);
  EXPECT_GE(res.missed_events, 0);
  EXPECT_GE(res.estimate_mae, 0.0);
  EXPECT_LE(res.estimate_mae, 1.0);
  if (res.detections > 0) {
    EXPECT_GE(res.mean_detection_lag_rounds, 0.0);
  }
}

TEST(DataPlane, GilbertElliottChannelRunsAndDeliversLess) {
  // Same instance and seed, bursty vs i.i.d. losses: with ARQ's few
  // attempts, bursts that outlast the retry budget cost deliveries.
  const Fixture fx = make_fixture(123);
  DataPlaneOptions iid = small_options(RepairMode::kNone);
  iid.rounds = 150;
  iid.arq.max_attempts = 3;
  DataPlaneOptions bursty = iid;
  bursty.channel.model = radio::ChannelModel::kGilbertElliott;
  bursty.channel.mean_bad_burst = 12.0;
  const DataPlaneResult a = run_dataplane(fx.net, fx.tree, fx.bound, iid);
  const DataPlaneResult b = run_dataplane(fx.net, fx.tree, fx.bound, bursty);
  EXPECT_GT(a.delivery_ratio, 0.0);
  EXPECT_GT(b.delivery_ratio, 0.0);
  EXPECT_LT(b.delivery_ratio, a.delivery_ratio + 0.05);
}

TEST(DataPlane, Validation) {
  const Fixture fx = make_fixture(124);
  DataPlaneOptions options;
  options.rounds = 0;
  EXPECT_THROW(run_dataplane(fx.net, fx.tree, fx.bound, options),
               std::invalid_argument);
  options = DataPlaneOptions{};
  options.probe_probability = 1.5;
  EXPECT_THROW(run_dataplane(fx.net, fx.tree, fx.bound, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace mrlc::dist
