#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/rng.hpp"
#include "helpers.hpp"
#include "wsn/io.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::wsn {
namespace {

TEST(NetworkIo, RoundTripPreservesEverything) {
  Rng rng(61);
  for (int trial = 0; trial < 25; ++trial) {
    wsn::Network original = mrlc::testing::small_random_network(10, 0.5, rng);
    for (int v = 0; v < original.node_count(); ++v) {
      original.set_initial_energy(v, rng.uniform(1000.0, 5000.0));
    }
    const Network parsed = network_from_string(network_to_string(original));
    ASSERT_EQ(parsed.node_count(), original.node_count());
    ASSERT_EQ(parsed.sink(), original.sink());
    ASSERT_EQ(parsed.link_count(), original.link_count());
    for (int v = 0; v < original.node_count(); ++v) {
      EXPECT_DOUBLE_EQ(parsed.initial_energy(v), original.initial_energy(v));
    }
    for (EdgeId id = 0; id < original.link_count(); ++id) {
      const graph::Edge& a = original.topology().edge(id);
      const graph::Edge& b = parsed.topology().edge(id);
      EXPECT_EQ(a.u, b.u);
      EXPECT_EQ(a.v, b.v);
      EXPECT_DOUBLE_EQ(parsed.link_prr(id), original.link_prr(id));
    }
  }
}

TEST(NetworkIo, RoundTripIsBitExact) {
  // max_digits10 output must reproduce the identical double, bit for bit,
  // including adversarial values that 15-digit printing would corrupt.
  Rng rng(63);
  for (int trial = 0; trial < 50; ++trial) {
    wsn::Network original(3, 0);
    // PRRs with long binary expansions: irrational-ish draws plus values
    // one ulp away from a short decimal.
    const double q1 = std::nextafter(0.9, 1.0);
    const double q2 = rng.uniform(1e-3, 1.0);
    original.add_link(0, 1, q1);
    original.add_link(1, 2, q2);
    original.set_initial_energy(1, std::nextafter(3000.0, 0.0));
    original.set_initial_energy(2, rng.uniform(1.0, 1e7));
    const Network parsed = network_from_string(network_to_string(original));
    for (EdgeId id = 0; id < original.link_count(); ++id) {
      const double a = parsed.link_prr(id);
      const double b = original.link_prr(id);
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
    }
    for (int v = 0; v < original.node_count(); ++v) {
      EXPECT_DOUBLE_EQ(parsed.initial_energy(v), original.initial_energy(v));
    }
  }
}

TEST(NetworkIo, AuxiliaryBlocksAndExtensionLinesSkipped) {
  // Version tolerance: appended config blocks (fault schedules, ARQ/channel
  // data-plane config) and forward-compatible "x-" lines must not break the
  // network reader.
  const std::string text =
      "mrlc-network v1\n"
      "nodes 3 sink 0\n"
      "link 0 1 0.9\n"
      "link 1 2 0.8\n"
      "arq attempts 8 backoff 1 cap 5 ack-fraction 0.1\n"
      "channel gilbert-elliott burst 8\n"
      "fault-schedule v1\n"
      "fault 10 2 crash\n"
      "x-future-field 1 2 3\n";
  const Network net = network_from_string(text);
  EXPECT_EQ(net.node_count(), 3);
  EXPECT_EQ(net.link_count(), 2);
}

TEST(NetworkIo, CommentsAndBlanksIgnored) {
  const std::string text =
      "# a network\n"
      "mrlc-network v1\n"
      "\n"
      "nodes 3 sink 0   # three nodes\n"
      "link 0 1 0.9\n"
      "   link 1 2 0.8  \n";
  const Network net = network_from_string(text);
  EXPECT_EQ(net.node_count(), 3);
  EXPECT_EQ(net.link_count(), 2);
  EXPECT_DOUBLE_EQ(net.initial_energy(1), 3000.0);  // default
}

TEST(NetworkIo, MalformedInputsRejectedWithLineNumbers) {
  const struct {
    const char* text;
    const char* needle;
  } kCases[] = {
      {"", "empty"},
      {"wrong header\n", "header"},
      {"mrlc-network v1\n", "nodes"},
      {"mrlc-network v1\nnodes 0 sink 0\n", "at least one"},
      {"mrlc-network v1\nnodes 3 sink 9\n", "sink"},
      {"mrlc-network v1\nnodes 3 sink 0\nlink 0 5 0.9\n", "out of range"},
      {"mrlc-network v1\nnodes 3 sink 0\nlink 0 1 1.5\n", "PRR"},
      {"mrlc-network v1\nnodes 3 sink 0\nlink 0 1\n", "expected"},
      {"mrlc-network v1\nnodes 3 sink 0\nenergy 0 -5\n", "energy"},
      {"mrlc-network v1\nnodes 3 sink 0\nbogus 1 2 3\n", "unknown keyword"},
  };
  for (const auto& c : kCases) {
    EXPECT_THROW(network_from_string(c.text), std::invalid_argument) << c.text;
    try {
      network_from_string(c.text);
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << c.needle << "'";
    }
  }
}

TEST(NetworkIo, NonFiniteValuesRejected) {
  // The text parser cannot even produce non-finite doubles (num_get rejects
  // "inf"/"nan" tokens and overflows), but the programmatic setters are an
  // API of their own and must hold the same line.
  Network net(3, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(1, 2, 0.8);
  EXPECT_THROW(net.set_initial_energy(0, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(net.set_initial_energy(0, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(net.set_initial_energy(0, -1.0), std::invalid_argument);
  EXPECT_THROW(net.set_initial_energy(0, 0.0), std::invalid_argument);
  EXPECT_THROW(net.add_link(0, 2, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(net.add_link(0, 2, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(net.set_link_prr(0, 0.0), std::invalid_argument);
  // The network is untouched by the rejected writes.
  EXPECT_DOUBLE_EQ(net.link_prr(0), 0.9);
  EXPECT_NO_THROW(net.validate());
}

TEST(NetworkIo, CorruptCorpusEveryFileRejected) {
  // Every file in tests/data/corrupt/ must fail with a typed parse error —
  // never an unhandled crash, never a silently constructed network.
  namespace fs = std::filesystem;
  int seen = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(MRLC_CORRUPT_DIR)) {
    if (entry.path().extension() != ".net") continue;
    ++seen;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.is_open()) << entry.path();
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_THROW(network_from_string(text.str()), std::invalid_argument)
        << entry.path();
    try {
      network_from_string(text.str());
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("parse error"), std::string::npos)
          << entry.path() << ": " << e.what();
    }
  }
  EXPECT_GE(seen, 10) << "corrupt corpus went missing from " << MRLC_CORRUPT_DIR;
}

TEST(NetworkIo, LineNumbersAreReported) {
  try {
    network_from_string("mrlc-network v1\nnodes 3 sink 0\nlink 0 1 0.9\nlink 9 9 0.9\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
  }
}

TEST(TreeIo, RoundTripPreservesParents) {
  Rng rng(62);
  for (int trial = 0; trial < 25; ++trial) {
    const Network net = mrlc::testing::small_random_network(9, 0.6, rng);
    const AggregationTree tree = mrlc::testing::random_tree(net, rng);
    const AggregationTree parsed = tree_from_string(tree_to_string(tree), net);
    EXPECT_EQ(parsed.parents(), tree.parents());
  }
}

TEST(TreeIo, MalformedTreesRejected) {
  mrlc::testing::ToyNetwork toy;
  const struct {
    const char* text;
    const char* needle;
  } kCases[] = {
      {"", "empty"},
      {"mrlc-tree v1\nnodes 9\n", "does not match"},
      {"mrlc-tree v1\nnodes 6\nparent 0 4\n", "sink has no parent"},
      {"mrlc-tree v1\nnodes 6\nparent 1 0\nparent 1 0\n", "duplicate"},
      {"mrlc-tree v1\nnodes 6\nparent 1 0\n", "missing parent"},
      // 2 -> 0 is not a network link in the toy instance.
      {"mrlc-tree v1\nnodes 6\nparent 1 0\nparent 2 0\nparent 3 4\nparent 4 0\n"
       "parent 5 0\n",
       "not in the network"},
  };
  for (const auto& c : kCases) {
    EXPECT_THROW(tree_from_string(c.text, toy.net), std::invalid_argument) << c.text;
    try {
      tree_from_string(c.text, toy.net);
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << c.needle << "'";
    }
  }
}

TEST(TreeIo, ParsedTreeSupportsMetrics) {
  mrlc::testing::ToyNetwork toy;
  const AggregationTree original = toy.tree_b();
  const AggregationTree parsed = tree_from_string(tree_to_string(original), toy.net);
  EXPECT_NEAR(tree_reliability(toy.net, parsed), 0.648, 1e-12);
}

}  // namespace
}  // namespace mrlc::wsn
