/// \file stress_test.cpp
/// \brief Adversarial and long-running consistency checks: pivot-rule
/// agreement on random LPs, parser fuzzing, long churn runs, and
/// mutation-sequence invariants.

#include <gtest/gtest.h>

#include <string>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/ira.hpp"
#include "distributed/churn.hpp"
#include "distributed/simulator.hpp"
#include "helpers.hpp"
#include "lp/simplex.hpp"
#include "radio/depletion_sim.hpp"
#include "wsn/io.hpp"
#include "wsn/metrics.hpp"

namespace mrlc {
namespace {

using mrlc::testing::small_random_network;

// ------------------------------------------ simplex pivot-rule agreement --

class SimplexPivotAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SimplexPivotAgreement, DantzigAndBlandFindTheSameOptimum) {
  const int vars = GetParam();
  Rng rng(static_cast<std::uint64_t>(vars) * 13 + 7);
  for (int trial = 0; trial < 25; ++trial) {
    lp::Model model;
    for (int v = 0; v < vars; ++v) {
      model.add_variable(rng.uniform(-2.0, 2.0), 0.0, rng.uniform(0.5, 3.0));
    }
    const int rows = vars / 2 + 1;
    for (int r = 0; r < rows; ++r) {
      // Mixed relations with rhs that keeps the origin feasible for <=
      // rows; >= rows get rhs 0 so the origin satisfies them too, keeping
      // the instance feasible while still exercising phase 1.
      const bool ge = rng.bernoulli(0.3);
      const lp::RowId row = model.add_constraint(
          ge ? lp::Relation::kGreaterEqual : lp::Relation::kLessEqual,
          ge ? 0.0 : rng.uniform(0.5, 4.0));
      for (int t = 0; t < 4; ++t) {
        model.add_term(row, static_cast<int>(rng.uniform_int(0, vars - 1)),
                       rng.uniform(ge ? 0.0 : -1.0, 2.0));
      }
    }

    lp::SimplexOptions dantzig;  // default: Dantzig with Bland fallback
    lp::SimplexOptions bland;
    bland.bland_after = 0;  // Bland from the first pivot
    const lp::Solution a = lp::SimplexSolver(dantzig).solve(model);
    const lp::Solution b = lp::SimplexSolver(bland).solve(model);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.status == lp::SolveStatus::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-6) << "trial " << trial;
      EXPECT_TRUE(model.is_feasible(a.values, 1e-6));
      EXPECT_TRUE(model.is_feasible(b.values, 1e-6));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimplexPivotAgreement,
                         ::testing::Values(4, 8, 16, 32));

// -------------------------------------------------------- parser fuzzing --

TEST(IoFuzz, RandomTokenSoupNeverCrashes) {
  // Any byte soup must either parse (valid) or throw invalid_argument —
  // never crash, hang, or return a half-built network.
  Rng rng(9090);
  const char* tokens[] = {"mrlc-network", "v1",   "nodes", "sink", "link",
                          "energy",       "0",    "1",     "2",    "16",
                          "-3",           "0.5",  "1.5",   "nan",  "#x",
                          "bogus",        "\t",   "9e999", "-1e9", "v2"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const int lines = static_cast<int>(rng.uniform_int(0, 12));
    for (int l = 0; l < lines; ++l) {
      const int words = static_cast<int>(rng.uniform_int(1, 6));
      for (int w = 0; w < words; ++w) {
        text += tokens[rng.uniform_int(0, 19)];
        text += ' ';
      }
      text += '\n';
    }
    try {
      const wsn::Network net = wsn::network_from_string(text);
      EXPECT_GE(net.node_count(), 1);  // parsed => structurally valid
    } catch (const std::invalid_argument&) {
      // expected for almost every draw
    }
  }
}

TEST(IoFuzz, TreeParserRejectsGarbageAgainstRealNetwork) {
  mrlc::testing::ToyNetwork toy;
  Rng rng(9191);
  const char* tokens[] = {"mrlc-tree", "v1", "nodes", "parent",
                          "0",         "1",  "5",     "6",
                          "-1",        "#",  "x",     "parent parent"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = rng.bernoulli(0.7) ? "mrlc-tree v1\n" : "";
    const int lines = static_cast<int>(rng.uniform_int(0, 8));
    for (int l = 0; l < lines; ++l) {
      const int words = static_cast<int>(rng.uniform_int(1, 4));
      for (int w = 0; w < words; ++w) {
        text += tokens[rng.uniform_int(0, 11)];
        text += ' ';
      }
      text += '\n';
    }
    try {
      const wsn::AggregationTree tree = wsn::tree_from_string(text, toy.net);
      EXPECT_EQ(tree.node_count(), toy.net.node_count());
    } catch (const std::invalid_argument&) {
    }
  }
}

// ------------------------------------------------ tree mutation sequences --

TEST(TreeMutation, RandomReparentSequencePreservesInvariants) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net = small_random_network(12, 0.6, rng);
    wsn::AggregationTree tree = mrlc::testing::random_tree(net, rng);
    for (int step = 0; step < 200; ++step) {
      // Pick a random legal reparent and apply it.
      const wsn::VertexId child =
          static_cast<wsn::VertexId>(rng.uniform_int(1, net.node_count() - 1));
      const auto incident = net.topology().incident(child);
      const graph::EdgeId via =
          incident[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(incident.size()) - 1))];
      const wsn::VertexId parent = net.topology().edge(via).other(child);
      if (tree.in_subtree(child, parent)) continue;
      tree.reparent(net, child, parent, via);

      // Children counts always equal a from-scratch recount.
      const wsn::AggregationTree rebuilt =
          wsn::AggregationTree::from_parents(net, tree.parents());
      for (int v = 0; v < net.node_count(); ++v) {
        ASSERT_EQ(tree.children_count(v), rebuilt.children_count(v))
            << "trial " << trial << " step " << step;
      }
      // Still a spanning tree reachable from the sink.
      ASSERT_EQ(tree.edge_ids().size(),
                static_cast<std::size_t>(net.node_count() - 1));
    }
  }
}

// ----------------------------------------------------- long churn stress --

TEST(LongChurn, FiveHundredEventsKeepEveryInvariant) {
  Rng rng(555);
  wsn::Network net = small_random_network(16, 0.5, rng, 0.5, 0.99);
  const double bound = net.energy_model().node_lifetime(3000.0, 8);
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IraResult initial = core::IterativeRelaxation(options).solve(net, bound);
  dist::ProtocolSimulator sim(net, initial.tree, bound);

  dist::ChurnOptions churn_options;
  churn_options.cost_noise_sigma = 0.08;
  dist::ChurnProcess churn(net, churn_options);
  int events = 0;
  for (int step = 0; step < 500; ++step) {
    for (const dist::LinkEvent& event : churn.step(net, rng)) {
      ++events;
      if (event.kind == dist::LinkEvent::Kind::kDegraded) {
        sim.on_link_degraded(net, event.link);
      } else {
        sim.on_link_improved(net, event.link);
      }
    }
    if (step % 50 == 0) {
      ASSERT_TRUE(sim.replicas_consistent()) << "step " << step;
      ASSERT_GE(wsn::network_lifetime(net, sim.tree()), bound * (1 - 1e-12));
    }
  }
  EXPECT_GT(events, 100) << "the churn settings must actually produce events";
  EXPECT_TRUE(sim.replicas_consistent());
}

// ------------------------------------------------ depletion param sweeps --

class DepletionQualitySweep : public ::testing::TestWithParam<double> {};

TEST_P(DepletionQualitySweep, RetxLifetimeScalesWithQuality) {
  const double q = GetParam();
  wsn::Network net(5, 0);
  for (int v = 1; v < 5; ++v) net.add_link(v - 1, v, q);
  const auto tree = wsn::AggregationTree::from_parents(
      net, std::vector<int>{-1, 0, 1, 2, 3});
  Rng rng(static_cast<std::uint64_t>(q * 1e5) + 1);
  radio::RetxPolicy retx;
  retx.enabled = true;
  const radio::DepletionResult res =
      radio::simulate_depletion(net, tree, retx, 3000, rng);
  // Middle nodes burn ~(Tx + Rx)/q; the bottleneck lifetime follows.
  const double expected_rate =
      (net.energy_model().tx_joules + net.energy_model().rx_joules) / q;
  const double expected_lifetime = 3000.0 / expected_rate;
  EXPECT_NEAR(res.rounds_survived, expected_lifetime, expected_lifetime * 0.06)
      << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Qualities, DepletionQualitySweep,
                         ::testing::Values(0.4, 0.6, 0.8, 0.95));

// ------------------------------------------------------ parallel solving --

TEST(ParallelStress, ConcurrentIraSolvesAreIndependent) {
  // The solver objects are const-callable and share no mutable state:
  // 32 concurrent solves must reproduce the serial results bit-for-bit.
  // Size the pool explicitly — CI machines may report 1 hardware thread,
  // and the point is genuine concurrency (this also runs under TSan).
  const unsigned before = default_thread_count();
  set_default_thread_count(4);
  Rng rng(31337);
  std::vector<wsn::Network> nets;
  for (int i = 0; i < 32; ++i) nets.push_back(small_random_network(10, 0.6, rng));
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IterativeRelaxation solver(options);
  auto bound_of = [](const wsn::Network& net) {
    return net.energy_model().node_lifetime(3000.0, 6);
  };

  std::vector<double> serial(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    serial[i] = solver.solve(nets[i], bound_of(nets[i])).cost;
  }
  std::vector<double> parallel(nets.size());
  default_pool().for_each(static_cast<int>(nets.size()), [&](int i) {
    parallel[static_cast<std::size_t>(i)] =
        solver
            .solve(nets[static_cast<std::size_t>(i)],
                   bound_of(nets[static_cast<std::size_t>(i)]))
            .cost;
  });
  EXPECT_EQ(parallel, serial);
  set_default_thread_count(before);
}

}  // namespace
}  // namespace mrlc
