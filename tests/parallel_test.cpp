/// \file parallel_test.cpp
/// \brief Concurrency battery for the thread pool and the parallel solver
/// core.
///
/// Three layers, increasingly end-to-end:
///
///  1. `ThreadPool` lifecycle: reuse across dispatches, worker-index
///     plumbing, exception capture from concurrent workers, nested calls
///     running inline, resizing.
///  2. In-process determinism: the IRA cutting-plane solver and the exact
///     branch-and-bound produce the identical tree, cost, and metric
///     counters for every pool width (the guarantee the parallel
///     separation sweep and frontier waves were designed around).
///  3. CLI determinism: `mrlc_solve --threads 1` and `--threads 8` emit
///     byte-identical trees and (timings aside) identical metrics JSON on
///     seed workloads, exercising the whole binary the way a user would.
///
/// The whole file runs under ThreadSanitizer in scripts/ci.sh's tsan
/// stage; tests that want real concurrency size their pools explicitly
/// instead of trusting hardware_concurrency (CI boxes may report 1).

#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/mst_baseline.hpp"
#include "common/budget.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/branch_bound.hpp"
#include "core/ira.hpp"
#include "helpers.hpp"
#include "scenario/random_net.hpp"
#include "wsn/metrics.hpp"

namespace {

using namespace mrlc;

// --------------------------------------------------------- pool lifecycle --

TEST(ThreadPool, ReusedAcrossDispatchesVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    constexpr int kCount = 1000;
    std::vector<std::atomic<int>> visits(kCount);
    pool.for_each(kCount, [&](int i) {
      visits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (int i = 0; i < kCount; ++i) {
      ASSERT_EQ(visits[static_cast<std::size_t>(i)].load(), 1)
          << "round " << round << " index " << i;
    }
  }
}

TEST(ThreadPool, WorkerIndexIsInRangeAndBothBodyShapesWork) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::atomic<int> bad_worker{0};
  std::atomic<int> sum{0};
  pool.for_each(200, [&](int i, unsigned worker) {
    if (worker >= pool.thread_count()) bad_worker.fetch_add(1);
    sum.fetch_add(i);
  });
  EXPECT_EQ(bad_worker.load(), 0);
  EXPECT_EQ(sum.load(), 200 * 199 / 2);

  // The single-argument shape dispatches through the same trampoline.
  std::atomic<int> count{0};
  pool.for_each(64, [&](int i) {
    (void)i;
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SerialPoolRethrowsTheFirstExceptionInIndexOrder) {
  ThreadPool pool(1);
  try {
    pool.for_each(100, [](int i) {
      if (i == 3 || i == 7) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
}

TEST(ThreadPool, ConcurrentExceptionIsOneOfTheThrownSetAndPoolSurvives) {
  ThreadPool pool(4);
  try {
    pool.for_each(500, [](int i) {
      if (i % 97 == 3) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    const int index = std::stoi(e.what());
    EXPECT_EQ(index % 97, 3) << "exception came from a non-throwing index";
  }

  // The failed dispatch must not poison the pool.
  std::atomic<int> count{0};
  pool.for_each(256, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 256);
}

TEST(ThreadPool, NestedForEachRunsInlineOnTheOuterWorker) {
  ThreadPool pool(4);
  constexpr int kOuter = 8;
  constexpr int kInner = 50;
  std::atomic<int> total{0};
  std::atomic<int> escaped{0};  // inner iterations on a different thread
  pool.for_each(kOuter, [&](int) {
    const std::thread::id outer_thread = std::this_thread::get_id();
    EXPECT_TRUE(ThreadPool::in_pool_work());
    pool.for_each(kInner, [&](int) {
      if (std::this_thread::get_id() != outer_thread) escaped.fetch_add(1);
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
  EXPECT_EQ(escaped.load(), 0);
  EXPECT_FALSE(ThreadPool::in_pool_work());
}

TEST(ThreadPool, ResizeRebuildsTheWorkerSet) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.thread_count(), 2u);
  pool.resize(5);
  EXPECT_EQ(pool.thread_count(), 5u);
  std::atomic<int> count{0};
  pool.for_each(300, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 300);
  pool.resize(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  pool.resize(0);  // hardware concurrency, but never less than one worker
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, NegativeCountIsRejected) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_each(-1, [](int) {}), std::invalid_argument);
}

TEST(ThreadPool, MaxWorkersCapsTheFanOut) {
  ThreadPool pool(4);
  std::atomic<int> bad_worker{0};
  pool.for_each(
      100,
      [&](int, unsigned worker) {
        if (worker >= 2) bad_worker.fetch_add(1);
      },
      /*max_workers=*/2);
  EXPECT_EQ(bad_worker.load(), 0);
}

TEST(DefaultPool, SetDefaultThreadCountResizesTheSharedPool) {
  const unsigned before = default_thread_count();
  set_default_thread_count(2);
  EXPECT_EQ(default_thread_count(), 2u);
  std::atomic<int> count{0};
  parallel_for(128, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 128);
  set_default_thread_count(before);
}

TEST(ThreadPool, BudgetCancelRacingActiveChargesIsStickyAndClean) {
  // The service watchdog flips `Budget::cancel()` from outside the worker
  // that is charging at its serial checkpoints.  Under TSan (this file is
  // in the tsan smoke set) this pins the contract: the race is clean, the
  // cancellation is observed promptly, and exhaustion is sticky.
  ThreadPool pool(8);
  constexpr long long kSafetyBound = 200'000'000;
  for (int round = 0; round < 50; ++round) {
    Budget budget;
    budget.set_work_limit(kSafetyBound * 2);  // never the stop reason
    std::atomic<long long> charged{0};
    pool.for_each(8, [&](int i) {
      if (i == 0) {
        long long n = 0;
        while (budget.charge() && n < kSafetyBound) ++n;
        charged.store(n);
      } else {
        budget.cancel();
      }
    });
    EXPECT_TRUE(budget.cancelled());
    EXPECT_TRUE(budget.exhausted());
    EXPECT_FALSE(budget.charge());  // sticky after the race settles
    EXPECT_LT(charged.load(), kSafetyBound) << "cancellation was lost";
  }
}

// --------------------------------------------- in-process determinism -----

/// Everything the solver outputs that must not depend on the pool width.
struct SolveFingerprint {
  std::vector<graph::EdgeId> ira_edges;
  double ira_cost = 0.0;
  std::vector<graph::EdgeId> bb_edges;
  double bb_cost = 0.0;
  std::uint64_t bb_explored = 0;
  long long maxflow_calls = 0;
  long long separation_calls = 0;
  long long violated_sets = 0;
  long long nodes_expanded = 0;
  long long nodes_pruned = 0;
  long long incumbent_updates = 0;

  bool operator==(const SolveFingerprint&) const = default;
};

SolveFingerprint solve_with_threads(unsigned threads) {
  set_default_thread_count(threads);
  metrics::set_enabled(true);
  metrics::reset();

  SolveFingerprint fp;
  {
    scenario::RandomNetworkConfig config;
    config.node_count = 16;
    config.link_probability = 0.6;
    Rng rng(99);
    const wsn::Network net = scenario::make_random_network(config, rng);
    const double bound = baselines::mst_baseline(net).lifetime;
    core::IraOptions options;
    options.bound_mode = core::BoundMode::kDirect;
    const core::IraResult ira = core::IterativeRelaxation(options).solve(net, bound);
    fp.ira_edges = ira.tree.edge_ids();
    fp.ira_cost = wsn::tree_cost(net, ira.tree);
  }
  {
    // A binding bound (max ~2 children per node) defeats the greedy warm
    // start's immediate prune, so the search genuinely expands nodes and
    // the frontier waves genuinely run on the pool.
    Rng rng(3000);
    const wsn::Network net =
        mrlc::testing::small_random_network(12, 0.9, rng, 0.5, 1.0);
    const double bound = net.energy_model().node_lifetime(3000.0, 2) * 0.99;
    const auto bb = core::branch_bound_mrlc(net, bound, {});
    if (!bb.has_value()) {
      ADD_FAILURE() << "seed instance must be feasible";
      return fp;
    }
    fp.bb_edges = bb->tree.edge_ids();
    fp.bb_cost = bb->cost;
    fp.bb_explored = bb->nodes_explored;
  }
  fp.maxflow_calls = metrics::counter("separation.maxflow_calls").value();
  fp.separation_calls = metrics::counter("separation.calls").value();
  fp.violated_sets = metrics::counter("separation.violated_sets").value();
  fp.nodes_expanded = metrics::counter("branch_bound.nodes_expanded").value();
  fp.nodes_pruned = metrics::counter("branch_bound.nodes_pruned").value();
  fp.incumbent_updates = metrics::counter("branch_bound.incumbent_updates").value();
  return fp;
}

// gtest macros with ASSERT inside helpers need void returns; wrap.
void run_solve_with_threads(unsigned threads, SolveFingerprint& out) {
  out = SolveFingerprint{};
  SolveFingerprint fp;
  {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    fp = solve_with_threads(threads);
  }
  out = fp;
}

TEST(Determinism, SolverTreeAndCountersAreIdenticalForEveryPoolWidth) {
  const unsigned before = default_thread_count();
  SolveFingerprint serial;
  run_solve_with_threads(1, serial);
  EXPECT_FALSE(serial.ira_edges.empty());
  EXPECT_GT(serial.maxflow_calls, 0);
  EXPECT_GT(serial.nodes_expanded, 0);

  for (const unsigned threads : {2u, 8u}) {
    SolveFingerprint parallel;
    run_solve_with_threads(threads, parallel);
    EXPECT_EQ(parallel.ira_edges, serial.ira_edges) << "threads=" << threads;
    EXPECT_EQ(parallel.ira_cost, serial.ira_cost) << "threads=" << threads;
    EXPECT_EQ(parallel.bb_edges, serial.bb_edges) << "threads=" << threads;
    EXPECT_EQ(parallel.bb_cost, serial.bb_cost) << "threads=" << threads;
    EXPECT_TRUE(parallel == serial)
        << "fingerprint mismatch at threads=" << threads << ": maxflow "
        << parallel.maxflow_calls << "/" << serial.maxflow_calls
        << ", expanded " << parallel.nodes_expanded << "/"
        << serial.nodes_expanded << ", pruned " << parallel.nodes_pruned << "/"
        << serial.nodes_pruned;
  }
  set_default_thread_count(before);
}

TEST(Determinism, BranchBoundBudgetGuardTripsIdenticallyWhenParallel) {
  const unsigned before = default_thread_count();
  Rng rng(3000);
  const wsn::Network net =
      mrlc::testing::small_random_network(12, 0.9, rng, 0.5, 1.0);
  const double bound = net.energy_model().node_lifetime(3000.0, 2) * 0.99;
  core::BranchBoundOptions options;
  options.max_nodes_explored = 5;
  for (const unsigned threads : {1u, 8u}) {
    set_default_thread_count(threads);
    EXPECT_THROW(core::branch_bound_mrlc(net, bound, options),
                 std::invalid_argument)
        << "threads=" << threads;
  }
  set_default_thread_count(before);
}

// --------------------------------------------------- CLI determinism ------

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
#ifndef _WIN32
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
  return status;
#endif
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Blanks the phase wall-times, the only legitimately nondeterministic
/// values in a metrics document.
std::string scrub_wall_times(const std::string& json) {
  static const std::regex total_ms("\"total_ms\": [0-9.eE+-]+");
  return std::regex_replace(json, total_ms, "\"total_ms\": X");
}

TEST(DeterminismCli, SolveEmitsByteIdenticalTreesAcrossThreadCounts) {
  for (const int seed : {7, 8, 9}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string net = tmp_path("par_net_" + std::to_string(seed) + ".txt");
    ASSERT_EQ(run_command(std::string(MRLC_TOOL_GEN) + " dfl --nodes 16 --seed " +
                          std::to_string(seed) + " > " + net),
              0);

    const std::string tree1 = tmp_path("par_tree1_" + std::to_string(seed));
    const std::string tree8 = tmp_path("par_tree8_" + std::to_string(seed));
    const std::string json1 = tmp_path("par_json1_" + std::to_string(seed));
    const std::string json8 = tmp_path("par_json8_" + std::to_string(seed));
    const int rc1 = run_command(
        std::string(MRLC_TOOL_SOLVE) + " ira --lifetime 100 --threads 1" +
        " --metrics-json " + json1 + " < " + net + " > " + tree1 + " 2>/dev/null");
    const int rc8 = run_command(
        std::string(MRLC_TOOL_SOLVE) + " ira --lifetime 100 --threads 8" +
        " --metrics-json " + json8 + " < " + net + " > " + tree8 + " 2>/dev/null");
    EXPECT_EQ(rc1, rc8);
    EXPECT_EQ(read_file(tree1), read_file(tree8)) << "tree output diverged";
    EXPECT_EQ(scrub_wall_times(read_file(json1)), scrub_wall_times(read_file(json8)))
        << "metrics (counters/histograms) diverged";
  }
}

}  // namespace
