/// \file infeasible_test.cpp
/// \brief The "no solution exists" contract, end to end: disconnected
/// topologies and unachievable lifetime bounds must surface as typed
/// `InfeasibleError`s (or `nullopt` / a typed status where the API says
/// so) from every solver entry point — with a useful message and without
/// leaving partial state behind that breaks a later feasible solve.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "baselines/mst_baseline.hpp"
#include "core/anytime.hpp"
#include "core/branch_bound.hpp"
#include "core/feasibility.hpp"
#include "core/ira.hpp"
#include "core/retx_ira.hpp"
#include "helpers.hpp"
#include "wsn/network.hpp"

namespace mrlc::core {
namespace {

/// 4 nodes, one link: nodes 2 and 3 can never reach the sink.
wsn::Network disconnected_network() {
  wsn::Network net(4, 0);
  net.add_link(0, 1, 0.9);
  return net;
}

/// A lifetime no node can reach even as a leaf: with 3000 J batteries and
/// Tx = 1.6e-4 J the ceiling is 3000 / 1.6e-4 = 1.875e7 rounds.
constexpr double kAbsurdBound = 1e9;

/// A path 0-1-2-3: the two interior nodes must each relay a child, so the
/// network lifetime tops out at I / (Tx + Rx) ~ 1.07e7 rounds even though
/// every node could individually idle as a leaf until 1.875e7.
wsn::Network path_network() {
  wsn::Network net(4, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(1, 2, 0.9);
  net.add_link(2, 3, 0.9);
  return net;
}

TEST(Infeasible, IraRejectsDisconnectedTopology) {
  const wsn::Network net = disconnected_network();
  for (const BoundMode mode : {BoundMode::kPaperStrict, BoundMode::kDirect}) {
    IraOptions options;
    options.bound_mode = mode;
    try {
      IterativeRelaxation(options).solve(net, 100.0);
      FAIL() << "expected InfeasibleError";
    } catch (const InfeasibleError& e) {
      EXPECT_NE(std::string(e.what()).find("connected"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Infeasible, IraRejectsUnachievableBoundInBothModes) {
  const testing::ToyNetwork toy;
  // kPaperStrict: L' = I_min*LC / (I_min - 2*Rx*LC) is undefined here.
  IraOptions strict;
  strict.bound_mode = BoundMode::kPaperStrict;
  EXPECT_THROW(IterativeRelaxation(strict).solve(toy.net, kAbsurdBound),
               InfeasibleError);
  // kDirect: the LP itself is infeasible (every children cap is negative).
  IraOptions direct;
  direct.bound_mode = BoundMode::kDirect;
  EXPECT_THROW(IterativeRelaxation(direct).solve(toy.net, kAbsurdBound),
               InfeasibleError);
}

TEST(Infeasible, IraRejectsBoundBeyondRelayCapacity) {
  // Leaf-achievable but relay-infeasible: the degree rows, not the
  // per-node ceilings, must carry the proof.
  const wsn::Network net = path_network();
  IraOptions direct;
  direct.bound_mode = BoundMode::kDirect;
  EXPECT_THROW(IterativeRelaxation(direct).solve(net, 1.5e7), InfeasibleError);
  // The same instance is solvable at its MST lifetime.
  const double feasible = baselines::mst_baseline(net).lifetime;
  EXPECT_NO_THROW(IterativeRelaxation(direct).solve(net, feasible));
}

TEST(Infeasible, SolverObjectSurvivesAnInfeasibleSolve) {
  // The solver is stateless across calls: an infeasible throw must not
  // poison a later feasible solve on the very same object.
  const testing::ToyNetwork toy;
  IraOptions options;
  options.bound_mode = BoundMode::kDirect;
  const IterativeRelaxation solver(options);
  EXPECT_THROW(solver.solve(toy.net, kAbsurdBound), InfeasibleError);
  const double feasible = baselines::mst_baseline(toy.net).lifetime;
  const IraResult result = solver.solve(toy.net, feasible);
  EXPECT_TRUE(result.meets_bound);
  EXPECT_EQ(result.tree.node_count(), toy.net.node_count());
}

TEST(Infeasible, RetxIraRejectsDisconnectedAndUnachievable) {
  EXPECT_THROW(retx_aware_ira(disconnected_network(), 100.0),
               InfeasibleError);
  const testing::ToyNetwork toy;
  EXPECT_THROW(retx_aware_ira(toy.net, kAbsurdBound), InfeasibleError);
}

TEST(Infeasible, FeasibilityProbesRefuteAbsurdBounds) {
  const testing::ToyNetwork toy;
  EXPECT_FALSE(lp_lifetime_feasible(toy.net, kAbsurdBound));
  EXPECT_THROW(lp_lifetime_feasible(disconnected_network(), 100.0),
               InfeasibleError);

  const LifetimeBracket bracket = bracket_max_lifetime(toy.net);
  EXPECT_GT(bracket.lower, 0.0);
  EXPECT_LE(bracket.lower, bracket.upper);
  // Anything above the LP-certified ceiling must be rejected by IRA...
  IraOptions direct;
  direct.bound_mode = BoundMode::kDirect;
  EXPECT_THROW(IterativeRelaxation(direct).solve(toy.net, bracket.upper * 2.0),
               InfeasibleError);
  // ...and the constructive lower bound must actually solve.
  EXPECT_NO_THROW(IterativeRelaxation(direct).solve(toy.net, bracket.lower));
}

TEST(Infeasible, BranchBoundReportsNoTreeOrThrowsTyped) {
  // The exact solver's "no solution" channel is nullopt for unachievable
  // bounds and InfeasibleError (from validate) for broken topologies.
  const testing::ToyNetwork toy;
  EXPECT_EQ(branch_bound_mrlc(toy.net, kAbsurdBound, {}), std::nullopt);
  EXPECT_THROW(branch_bound_mrlc(disconnected_network(), 100.0, {}),
               InfeasibleError);
}

TEST(Infeasible, AnytimeTurnsInfeasibilityIntoTypedStatus) {
  // The anytime front end never throws for bad instances: both flavours of
  // infeasibility come back as kInfeasible with the diagnosis in `message`.
  const AnytimeResult disconnected =
      solve_anytime(disconnected_network(), 100.0);
  EXPECT_EQ(disconnected.status, AnytimeStatus::kInfeasible);
  EXPECT_NE(disconnected.message.find("connected"), std::string::npos)
      << disconnected.message;

  const testing::ToyNetwork toy;
  const AnytimeResult unachievable = solve_anytime(toy.net, kAbsurdBound);
  EXPECT_EQ(unachievable.status, AnytimeStatus::kInfeasible);
  EXPECT_FALSE(unachievable.message.empty());
}

}  // namespace
}  // namespace mrlc::core
