/// \file variant_test.cpp
/// \brief The cross-variant correctness battery for the ProblemVariant
/// interface (core/variant.hpp).
///
/// Three layers, mirroring the refactor's promises:
///
/// 1. **Parity** — `variant=mrlc` routed through the interface is
///    bit-identical to the historical `IterativeRelaxation` (trees, costs,
///    every per-solve counter), and every variant is invariant across
///    warm/cold LP reoptimization, sparse/dense engines, and thread counts
///    (>= 48 seeded instances per variant).
/// 2. **Ground truth** — at n <= 10 every spanning tree can be enumerated
///    (Prüfer-backed `graph::for_each_spanning_tree`), so each variant's
///    branch-and-bound is checked against the true optimum of its own
///    objective over its own feasible set, and the LP path is checked to
///    never beat that optimum.
/// 3. **Physics** — the `etx` objective is what the ARQ data plane actually
///    measures: simulated expected transmissions match Σ 1/q_e and the etx
///    tree beats the stock MRLC tree on lossy channels.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baselines/mst_baseline.hpp"
#include "common/budget.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/anytime.hpp"
#include "core/branch_bound.hpp"
#include "core/exact.hpp"
#include "core/ira.hpp"
#include "core/variant.hpp"
#include "graph/enumeration.hpp"
#include "graph/mst.hpp"
#include "helpers.hpp"
#include "lp/simplex.hpp"
#include "radio/packet_sim.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::core {
namespace {

using mrlc::testing::small_random_network;

// ------------------------------------------------------------ helpers --

/// Conservative lifetime of a concrete tree: the bound at which the
/// weighted energy rows (each incident edge charged its worst role, the
/// exact caps branch-and-bound and the etx LP use) accept this tree.
double conservative_tree_lifetime(const wsn::Network& net,
                                  const wsn::AggregationTree& tree) {
  const int n = net.node_count();
  std::vector<double> rate(static_cast<std::size_t>(n), 0.0);
  for (graph::EdgeId e : tree.edge_ids()) {
    const graph::Edge& edge = net.topology().edge(e);
    rate[static_cast<std::size_t>(edge.u)] +=
        conservative_energy_rate(net, edge.u, e);
    rate[static_cast<std::size_t>(edge.v)] +=
        conservative_energy_rate(net, edge.v, e);
  }
  double lifetime = 1e300;
  for (int v = 0; v < n; ++v) {
    if (rate[static_cast<std::size_t>(v)] > 0.0) {
      lifetime = std::min(lifetime, net.initial_energy(v) /
                                        rate[static_cast<std::size_t>(v)]);
    }
  }
  return lifetime;
}

/// True when `tree` satisfies the conservative energy rows at `bound` —
/// the exact feasible set the etx branch-and-bound searches.
bool conservative_feasible(const wsn::Network& net,
                           const wsn::AggregationTree& tree, double bound) {
  return conservative_tree_lifetime(net, tree) >= bound * (1.0 - 1e-9);
}

/// A bound every variant can certainly meet on `net` (so sweeps exercise
/// real solves, not blanket infeasibility): children-based for mrlc, the
/// MST's own conservative lifetime for etx, advisory for min_energy, the
/// ladder floor for max_lifetime.
double feasible_bound(VariantId id, const wsn::Network& net) {
  switch (id) {
    case VariantId::kMrlc:
      return net.energy_model().node_lifetime(net.min_initial_energy(), 4) *
             0.99;
    case VariantId::kEtx: {
      const auto mst = graph::prim_mst(net.topology(), net.sink());
      const auto tree = wsn::AggregationTree::from_edges(net, mst->edges);
      return conservative_tree_lifetime(net, tree) * 0.999;
    }
    case VariantId::kMinEnergy:
      return 1.0;  // advisory only
    case VariantId::kMaxLifetime:
      return lifetime_candidates(net).front();  // every tree's floor
  }
  return 1.0;
}

struct EnumeratedBest {
  double objective = 0.0;
  wsn::AggregationTree tree;
};

/// Brute-force optimum of `id`'s objective over `id`'s feasible set by
/// enumerating every spanning tree; nullopt when no tree is feasible.
std::optional<EnumeratedBest> enumerate_best(VariantId id,
                                             const wsn::Network& net,
                                             double bound) {
  const ProblemVariant& variant = problem_variant(id);
  std::optional<EnumeratedBest> best;
  graph::for_each_spanning_tree(
      net.topology(), [&](const graph::SpanningTree& st) {
        auto tree = wsn::AggregationTree::from_edges(net, st.edges);
        const bool feasible =
            id == VariantId::kMinEnergy ||
            (id == VariantId::kEtx ? conservative_feasible(net, tree, bound)
                                   : variant.tree_feasible(net, tree, bound));
        if (!feasible) return true;
        const double objective = variant.tree_objective(net, tree);
        const bool improves =
            !best.has_value() || (variant.maximizing()
                                      ? objective > best->objective + 1e-15
                                      : objective < best->objective - 1e-15);
        if (improves) best = EnumeratedBest{objective, std::move(tree)};
        return true;
      });
  return best;
}

// -------------------------------------------------------- identifiers --

TEST(VariantIdentifiers, TokensRoundTripAndUnknownsAreRejected) {
  ASSERT_EQ(all_variants().size(), 4u);
  for (const VariantId id : all_variants()) {
    const auto parsed = variant_from_string(to_string(id));
    ASSERT_TRUE(parsed.has_value()) << to_string(id);
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_EQ(std::string(to_string(VariantId::kMrlc)), "mrlc");
  EXPECT_EQ(std::string(to_string(VariantId::kEtx)), "etx");
  EXPECT_EQ(std::string(to_string(VariantId::kMinEnergy)), "min_energy");
  EXPECT_EQ(std::string(to_string(VariantId::kMaxLifetime)), "max_lifetime");
  EXPECT_FALSE(variant_from_string("").has_value());
  EXPECT_FALSE(variant_from_string("MRLC").has_value());
  EXPECT_FALSE(variant_from_string("mrlc-retx").has_value());
  EXPECT_FALSE(variant_from_string("minenergy").has_value());
}

TEST(VariantIdentifiers, SingletonsExposeTheirIdsAndCertificates) {
  for (const VariantId id : all_variants()) {
    const ProblemVariant& variant = problem_variant(id);
    EXPECT_EQ(variant.id(), id);
    EXPECT_EQ(std::string(variant.name()), to_string(id));
    EXPECT_FALSE(std::string(variant.certificate()).empty());
    EXPECT_EQ(variant.maximizing(), id == VariantId::kMaxLifetime);
  }
  // Same stateless instance on every call (thread-safe singletons).
  EXPECT_EQ(&problem_variant(VariantId::kEtx),
            &problem_variant(VariantId::kEtx));
}

// ------------------------------------------- mrlc bit-identical route --

/// The tentpole gate: `solve_variant(kMrlc)` must reproduce the historical
/// `IterativeRelaxation` solve bit for bit — tree bytes, cost bits, and
/// every per-solve counter including the pivot count.
class MrlcRouteSweep : public ::testing::TestWithParam<BoundMode> {};

TEST_P(MrlcRouteSweep, BitIdenticalToHistoricalIra) {
  const BoundMode mode = GetParam();
  Rng rng(mode == BoundMode::kPaperStrict ? 515u : 516u);
  IraOptions options;
  options.bound_mode = mode;
  int solved = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const wsn::Network net = small_random_network(10, 0.5, rng, 0.5, 1.0);
    const double bound =
        net.energy_model().node_lifetime(net.min_initial_energy(), 4) * 0.99;

    std::optional<IraResult> legacy;
    std::optional<VariantResult> routed;
    bool legacy_threw = false;
    bool routed_threw = false;
    try {
      legacy = IterativeRelaxation(options).solve(net, bound);
    } catch (const InfeasibleError&) {
      legacy_threw = true;
    }
    try {
      routed = solve_variant(VariantId::kMrlc, net, bound, options);
    } catch (const InfeasibleError&) {
      routed_threw = true;
    }
    ASSERT_EQ(legacy_threw, routed_threw) << "trial " << trial;
    if (legacy_threw) continue;
    ++solved;

    EXPECT_EQ(routed->tree.parents(), legacy->tree.parents()) << trial;
    EXPECT_EQ(routed->cost, legacy->cost) << trial;
    EXPECT_EQ(routed->objective, legacy->cost) << trial;
    EXPECT_EQ(routed->reliability, legacy->reliability) << trial;
    EXPECT_EQ(routed->lifetime, legacy->lifetime) << trial;
    EXPECT_EQ(routed->meets_bound, legacy->meets_bound) << trial;
    EXPECT_EQ(routed->stats.outer_iterations, legacy->stats.outer_iterations);
    EXPECT_EQ(routed->stats.lp_solves, legacy->stats.lp_solves) << trial;
    EXPECT_EQ(routed->stats.simplex_iterations,
              legacy->stats.simplex_iterations)
        << trial;
    EXPECT_EQ(routed->stats.cuts_added, legacy->stats.cuts_added) << trial;
    EXPECT_EQ(routed->stats.edges_removed, legacy->stats.edges_removed);
    EXPECT_EQ(routed->stats.constraints_removed,
              legacy->stats.constraints_removed)
        << trial;
    EXPECT_EQ(routed->stats.used_fallback, legacy->stats.used_fallback);
  }
  EXPECT_GE(solved, 8) << "sweep degenerated to blanket infeasibility";
}

INSTANTIATE_TEST_SUITE_P(BoundModes, MrlcRouteSweep,
                         ::testing::Values(BoundMode::kPaperStrict,
                                           BoundMode::kDirect),
                         [](const auto& info) {
                           return info.param == BoundMode::kPaperStrict
                                      ? "PaperStrict"
                                      : "Direct";
                         });

// --------------------------------------------------- VariantParity ----

/// One solve under an explicit (warm_start, engine, threads) config.
struct SolveOutcome {
  bool infeasible = false;
  VariantResult result;
};

SolveOutcome run_config(VariantId id, const wsn::Network& net, double bound,
                        bool warm, lp::Engine engine, unsigned threads) {
  const lp::Engine saved_engine = lp::default_engine();
  const unsigned saved_threads = default_thread_count();
  lp::set_default_engine(engine);
  set_default_thread_count(threads);
  SolveOutcome out;
  try {
    IraOptions options;
    options.warm_start = warm;
    out.result = solve_variant(id, net, bound, options);
  } catch (const InfeasibleError&) {
    out.infeasible = true;
  }
  set_default_thread_count(saved_threads);
  lp::set_default_engine(saved_engine);
  return out;
}

struct ParityCase {
  VariantId id;
  int nodes;
  double density;
};

/// >= 48 seeded instances per variant (4 shapes x 12 seeds), each solved
/// under all 8 of warm/cold x sparse/dense x threads {1, 8}: trees, costs,
/// and per-solve counters must be bit-identical.  The pivot count is the
/// one documented exception — warm starting and the engine change the
/// pivot *path*, never the optimum (same carve-out as WarmColdSweep).
class VariantParitySweep : public ::testing::TestWithParam<ParityCase> {};

TEST_P(VariantParitySweep, AllEngineConfigsAreBitIdentical) {
  const auto [id, nodes, density] = GetParam();
  int solved = 0;
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(static_cast<std::uint64_t>(nodes) * 7717 +
            static_cast<std::uint64_t>(seed) * 13 +
            static_cast<std::uint64_t>(id));
    const wsn::Network net =
        small_random_network(nodes, density, rng, 0.5, 1.0);
    const double bound = feasible_bound(id, net);

    const SolveOutcome reference =
        run_config(id, net, bound, /*warm=*/true, lp::Engine::kSparse, 1);
    if (!reference.infeasible) ++solved;

    for (const bool warm : {true, false}) {
      for (const lp::Engine engine :
           {lp::Engine::kSparse, lp::Engine::kDense}) {
        for (const unsigned threads : {1u, 8u}) {
          const SolveOutcome probe =
              run_config(id, net, bound, warm, engine, threads);
          const std::string label =
              std::string(to_string(id)) + " seed " + std::to_string(seed) +
              (warm ? " warm" : " cold") +
              (engine == lp::Engine::kSparse ? " sparse" : " dense") +
              " threads " + std::to_string(threads);
          ASSERT_EQ(probe.infeasible, reference.infeasible) << label;
          if (probe.infeasible) continue;
          const VariantResult& a = probe.result;
          const VariantResult& b = reference.result;
          EXPECT_EQ(a.tree.parents(), b.tree.parents()) << label;
          EXPECT_EQ(a.objective, b.objective) << label;
          EXPECT_EQ(a.cost, b.cost) << label;
          EXPECT_EQ(a.reliability, b.reliability) << label;
          EXPECT_EQ(a.lifetime, b.lifetime) << label;
          EXPECT_EQ(a.bound_metric, b.bound_metric) << label;
          EXPECT_EQ(a.internal_bound, b.internal_bound) << label;
          EXPECT_EQ(a.meets_bound, b.meets_bound) << label;
          EXPECT_EQ(a.stats.outer_iterations, b.stats.outer_iterations)
              << label;
          EXPECT_EQ(a.stats.lp_solves, b.stats.lp_solves) << label;
          EXPECT_EQ(a.stats.cuts_added, b.stats.cuts_added) << label;
          EXPECT_EQ(a.stats.edges_removed, b.stats.edges_removed) << label;
          EXPECT_EQ(a.stats.constraints_removed, b.stats.constraints_removed)
              << label;
          EXPECT_EQ(a.stats.used_fallback, b.stats.used_fallback) << label;
        }
      }
    }
  }
  EXPECT_GE(solved, 6) << "sweep degenerated to blanket infeasibility";
}

std::string parity_case_name(
    const ::testing::TestParamInfo<ParityCase>& info) {
  std::string name = to_string(info.param.id);
  name += "_n" + std::to_string(info.param.nodes) + "_p" +
          std::to_string(static_cast<int>(info.param.density * 100));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, VariantParitySweep,
    ::testing::Values(
        ParityCase{VariantId::kMrlc, 8, 0.6}, ParityCase{VariantId::kMrlc, 10, 0.5},
        ParityCase{VariantId::kMrlc, 12, 0.4}, ParityCase{VariantId::kMrlc, 12, 0.7},
        ParityCase{VariantId::kEtx, 8, 0.6}, ParityCase{VariantId::kEtx, 10, 0.5},
        ParityCase{VariantId::kEtx, 12, 0.4}, ParityCase{VariantId::kEtx, 12, 0.7},
        ParityCase{VariantId::kMinEnergy, 8, 0.6},
        ParityCase{VariantId::kMinEnergy, 10, 0.5},
        ParityCase{VariantId::kMinEnergy, 12, 0.4},
        ParityCase{VariantId::kMinEnergy, 12, 0.7},
        ParityCase{VariantId::kMaxLifetime, 8, 0.6},
        ParityCase{VariantId::kMaxLifetime, 10, 0.5},
        ParityCase{VariantId::kMaxLifetime, 12, 0.4},
        ParityCase{VariantId::kMaxLifetime, 12, 0.7}),
    parity_case_name);

// ------------------------------------------------ brute-force ground --

/// Exact branch-and-bound == enumerated optimum, per variant, at n <= 8.
/// (The feasible set matches what each search actually explores: plain
/// lifetime for mrlc/max_lifetime, conservative energy rows for etx,
/// everything for min_energy.)
class BruteForceSweep : public ::testing::TestWithParam<VariantId> {};

TEST_P(BruteForceSweep, BranchBoundMatchesEnumeratedOptimum) {
  const VariantId id = GetParam();
  Rng rng(4040 + static_cast<std::uint64_t>(id));
  int compared = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const int nodes = 6 + trial % 3;  // 6, 7, 8
    const wsn::Network net = small_random_network(nodes, 0.6, rng, 0.4, 1.0);
    const double bound = feasible_bound(id, net);
    const auto enumerated = enumerate_best(id, net, bound);
    const auto bb = branch_bound_variant(id, net, bound);
    ASSERT_EQ(enumerated.has_value(), bb.has_value())
        << to_string(id) << " trial " << trial;
    if (!enumerated.has_value()) continue;
    EXPECT_NEAR(bb->objective, enumerated->objective, 1e-9)
        << to_string(id) << " trial " << trial;
    if (id != VariantId::kMinEnergy) {
      EXPECT_TRUE(problem_variant(id).tree_feasible(net, bb->tree,
                                                    bound * (1.0 - 1e-9)))
          << to_string(id) << " trial " << trial;
    }
    ++compared;
  }
  EXPECT_GE(compared, 8);
}

TEST_P(BruteForceSweep, SolveVariantNeverBeatsTheEnumeratedOptimum) {
  const VariantId id = GetParam();
  const ProblemVariant& variant = problem_variant(id);
  Rng rng(5050 + static_cast<std::uint64_t>(id));
  int checked = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const int nodes = 6 + trial % 3;
    const wsn::Network net = small_random_network(nodes, 0.6, rng, 0.4, 1.0);
    const double bound = feasible_bound(id, net);
    const auto enumerated = enumerate_best(id, net, bound);
    if (!enumerated.has_value()) continue;
    VariantResult res;
    try {
      res = solve_variant(id, net, bound);
    } catch (const InfeasibleError&) {
      continue;  // strict-mode mrlc may reject what LC-enumeration accepts
    }
    // The solve's tree is a real spanning tree with consistent metrics...
    EXPECT_EQ(res.tree.edge_ids().size(),
              static_cast<std::size_t>(nodes - 1));
    EXPECT_NEAR(res.objective, variant.tree_objective(net, res.tree), 1e-9);
    // ...and cannot beat the true optimum of its own feasible set (for
    // etx only when its tree sits inside the conservative set itself).
    const bool comparable =
        id == VariantId::kEtx
            ? conservative_feasible(net, res.tree, bound)
            : (id == VariantId::kMinEnergy ||
               variant.tree_feasible(net, res.tree, bound));
    if (!comparable) continue;
    if (variant.maximizing()) {
      EXPECT_LE(res.objective, enumerated->objective + 1e-9)
          << to_string(id) << " trial " << trial;
    } else {
      EXPECT_GE(res.objective, enumerated->objective - 1e-9)
          << to_string(id) << " trial " << trial;
    }
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

INSTANTIATE_TEST_SUITE_P(Variants, BruteForceSweep,
                         ::testing::ValuesIn(all_variants()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(BruteForce, MinEnergyLpRoundIsExactlyTheEnumeratedOptimum) {
  // Subtour-LP extreme points are integral, so the single certified LP
  // round must land on the true minimum-energy tree — not near it, on it.
  Rng rng(6060);
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net =
        small_random_network(6 + trial % 3, 0.6, rng, 0.4, 1.0);
    const auto enumerated =
        enumerate_best(VariantId::kMinEnergy, net, 1.0);
    ASSERT_TRUE(enumerated.has_value());
    const VariantResult res = solve_variant(VariantId::kMinEnergy, net, 1.0);
    EXPECT_NEAR(res.objective, enumerated->objective, 1e-9) << trial;
  }
}

TEST(BruteForce, MaxLifetimeSolveMatchesExactAndCertificateIsSound) {
  Rng rng(7070);
  int closed = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net =
        small_random_network(6 + trial % 3, 0.6, rng, 0.4, 1.0);
    const auto exact = exact_max_lifetime(net);
    ASSERT_TRUE(exact.has_value());
    const double floor = lifetime_candidates(net).front();
    const VariantResult res =
        solve_variant(VariantId::kMaxLifetime, net, floor);
    // Soundness: never claims more than the true maximum, and the LP
    // certificate really is an upper bound on it.
    EXPECT_LE(res.objective, exact->lifetime * (1.0 + 1e-9)) << trial;
    EXPECT_GE(res.internal_bound, exact->lifetime * (1.0 - 1e-9)) << trial;
    // Branch-and-bound closes the gap exactly.
    const auto bb = branch_bound_variant(VariantId::kMaxLifetime, net, floor);
    ASSERT_TRUE(bb.has_value()) << trial;
    EXPECT_NEAR(bb->objective, exact->lifetime, exact->lifetime * 1e-9)
        << trial;
    if (res.objective >= exact->lifetime * (1.0 - 1e-9)) ++closed;
  }
  // The ladder scan is allowed to fall short of the optimum on hard draws,
  // but it must actually close most of these tiny instances.
  EXPECT_GE(closed, 5);
}

TEST(BruteForce, MaxLifetimeInfeasibleAboveTheLadderTop) {
  Rng rng(7171);
  const wsn::Network net = small_random_network(7, 0.6, rng, 0.4, 1.0);
  const double top = lifetime_candidates(net).back();
  EXPECT_THROW(solve_variant(VariantId::kMaxLifetime, net, top * 2.0),
               InfeasibleError);
  EXPECT_FALSE(
      branch_bound_variant(VariantId::kMaxLifetime, net, top * 2.0)
          .has_value());
}

// --------------------------------------------------- etx × ARQ loop ---

TEST(EtxIntegration, MeasuredArqTransmissionsMatchTheEtxObjective) {
  Rng rng(8080);
  radio::RetxPolicy retx;
  retx.enabled = true;
  for (int trial = 0; trial < 5; ++trial) {
    const wsn::Network net = small_random_network(10, 0.6, rng, 0.35, 0.95);
    const double bound = feasible_bound(VariantId::kEtx, net);
    const VariantResult res = solve_variant(VariantId::kEtx, net, bound);
    Rng sim_rng(900 + static_cast<std::uint64_t>(trial));
    const radio::AggregateResult agg =
        radio::simulate_rounds(net, res.tree, retx, 4000, sim_rng);
    // Σ 1/q_e is exactly the expected per-round transmission count under
    // retransmit-until-delivered — the objective is physical, not a proxy.
    EXPECT_NEAR(agg.avg_packets_per_round, res.objective,
                res.objective * 0.08)
        << "trial " << trial;
  }
}

/// Unconstrained, etx and mrlc always agree: -ln q and 1/q are both
/// strictly decreasing in q, induce the same edge ordering, and the MST
/// depends only on that ordering.  The variants only separate when their
/// *constraints* force a reroute — and then they reroute differently:
/// mrlc drops the link with the best q_direct/q_cross ratio (it compares
/// ln(q_d) - ln(q_c)), etx drops the one with the smallest 1/q_c - 1/q_d
/// difference.  This instance pins that divergence: the sink can keep
/// only two direct children, and the two candidate reroutes rank in
/// opposite order under the two objectives.
wsn::Network reroute_tradeoff_network() {
  wsn::Network net(4, 0);
  net.add_link(1, 0, 0.95);
  net.add_link(2, 0, 0.90);  // etx reroutes this (cheap in 1/q terms)
  net.add_link(3, 0, 0.35);  // mrlc reroutes this (cheap in ln q terms)
  net.add_link(2, 1, 0.60);
  net.add_link(3, 1, 0.25);
  return net;
}

TEST(EtxIntegration, EtxTreeBeatsStockMrlcTreeUnderLossyArq) {
  const wsn::Network net = reroute_tradeoff_network();
  const ProblemVariant& etx = problem_variant(VariantId::kEtx);

  // Both sides use the exact search: this is a divergence witness, so we
  // want each variant's true constrained optimum, not the IRA heuristic
  // (which is free to relax a binding row and report meets_bound=false).
  //
  // etx at a bound whose sink energy row rejects all-three-direct but
  // accepts either reroute: it keeps the lossy 0.35 link direct and moves
  // node 2 behind node 1 (ETX 5.576 vs 6.164 the other way).
  const double etx_bound =
      net.min_initial_energy() / (net.energy_model().rx_joules * 4.5);
  const auto etx_res = branch_bound_variant(VariantId::kEtx, net, etx_bound);

  // Stock mrlc with LC above the three-children lifetime: the sink keeps
  // two direct children and mrlc reroutes node 3 instead (cost 1.543 vs
  // 1.612), buying reliability with retransmission energy.
  const double mrlc_bound =
      net.energy_model().node_lifetime(net.min_initial_energy(), 2) * 0.9;
  const auto mrlc_res = branch_bound_variant(VariantId::kMrlc, net, mrlc_bound);

  ASSERT_TRUE(etx_res.has_value());
  ASSERT_TRUE(mrlc_res.has_value());
  EXPECT_GE(mrlc_res->lifetime, mrlc_bound);
  ASSERT_NE(etx_res->tree.parents(), mrlc_res->tree.parents());
  const double analytic_etx = etx_res->objective;
  const double analytic_mrlc = etx.tree_objective(net, mrlc_res->tree);
  EXPECT_LT(analytic_etx, analytic_mrlc);

  // The ARQ data plane agrees: the etx tree spends measurably fewer
  // transmissions per round, and both measurements match Σ 1/q_e.
  radio::RetxPolicy retx;
  retx.enabled = true;
  Rng sim_a(1700);
  Rng sim_b(1700);  // same channel draws for both trees
  const double measured_etx =
      radio::simulate_rounds(net, etx_res->tree, retx, 6000, sim_a)
          .avg_packets_per_round;
  const double measured_mrlc =
      radio::simulate_rounds(net, mrlc_res->tree, retx, 6000, sim_b)
          .avg_packets_per_round;
  EXPECT_LT(measured_etx, measured_mrlc);
  EXPECT_NEAR(measured_etx, analytic_etx, analytic_etx * 0.05);
  EXPECT_NEAR(measured_mrlc, analytic_mrlc, analytic_mrlc * 0.05);
}

// ------------------------------------------------------ anytime layer --

TEST(AnytimeVariants, EachVariantConvergesWithItsOwnObjectiveAndGap) {
  Rng rng(9090);
  const wsn::Network net = small_random_network(10, 0.6, rng, 0.5, 1.0);
  for (const VariantId id : all_variants()) {
    AnytimeOptions options;
    options.variant = id;
    const double bound = feasible_bound(id, net);
    const AnytimeResult res = solve_anytime(net, bound, options);
    EXPECT_EQ(res.status, AnytimeStatus::kOptimal) << to_string(id);
    EXPECT_EQ(res.variant, id);
    EXPECT_EQ(res.tree.edge_ids().size(),
              static_cast<std::size_t>(net.node_count() - 1))
        << to_string(id);
    EXPECT_NEAR(res.objective,
                problem_variant(id).tree_objective(net, res.tree), 1e-9)
        << to_string(id);
    EXPECT_GE(res.gap, 0.0) << to_string(id);
    if (problem_variant(id).maximizing()) {
      EXPECT_GE(res.dual_bound, res.objective - 1e-9) << to_string(id);
    } else {
      EXPECT_LE(res.dual_bound, res.objective + 1e-9) << to_string(id);
    }
    EXPECT_FALSE(res.message.empty()) << to_string(id);
  }
}

TEST(AnytimeVariants, ZeroBudgetDegradesToASeededIncumbentPerVariant) {
  Rng rng(9191);
  const wsn::Network net = small_random_network(10, 0.6, rng, 0.5, 1.0);
  for (const VariantId id : all_variants()) {
    Budget budget;
    budget.set_work_limit(0);
    AnytimeOptions options;
    options.variant = id;
    options.budget = &budget;
    const AnytimeResult res =
        solve_anytime(net, feasible_bound(id, net), options);
    EXPECT_EQ(res.status, AnytimeStatus::kFeasibleBudgetExhausted)
        << to_string(id);
    EXPECT_TRUE(res.from_incumbent) << to_string(id);
    EXPECT_EQ(res.tree.edge_ids().size(),
              static_cast<std::size_t>(net.node_count() - 1))
        << to_string(id);
    EXPECT_TRUE(std::isfinite(res.gap)) << to_string(id);
    EXPECT_GE(res.gap, 0.0) << to_string(id);
    EXPECT_EQ(budget.used(), 0) << to_string(id);
  }
}

}  // namespace
}  // namespace mrlc::core
