#include <gtest/gtest.h>

#include <set>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/lp_formulation.hpp"
#include "core/separation.hpp"
#include "graph/enumeration.hpp"
#include "graph/mst.hpp"
#include "graph/traversal.hpp"
#include "lp/simplex.hpp"

namespace mrlc::core {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

// ----------------------------------------------------------- separation --

TEST(Separation, SubsetInternalWeight) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1, 1.0);
  const EdgeId e12 = g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  std::vector<double> x(static_cast<std::size_t>(g.edge_count()), 0.0);
  x[static_cast<std::size_t>(e01)] = 0.5;
  x[static_cast<std::size_t>(e12)] = 0.75;
  EXPECT_DOUBLE_EQ(subset_internal_weight(g, x, {0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(subset_internal_weight(g, x, {0, 1, 2}), 1.25);
  EXPECT_DOUBLE_EQ(subset_internal_weight(g, x, {0, 3}), 0.0);
}

TEST(Separation, CleanTreeHasNoViolation) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const std::vector<double> x(static_cast<std::size_t>(g.edge_count()), 1.0);
  EXPECT_TRUE(find_violated_subtours(g, x).empty());
}

TEST(Separation, DetectsIntegralCycle) {
  // Triangle {0,1,2} fully selected plus a pendant: x(E(S)) = 3 > |S|-1 = 2.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  std::vector<double> x{1.0, 1.0, 1.0, 0.0};
  const auto violated = find_violated_subtours(g, x);
  ASSERT_FALSE(violated.empty());
  bool found = false;
  for (const auto& s : violated) {
    if (std::set<VertexId>(s.begin(), s.end()) == std::set<VertexId>{0, 1, 2}) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Separation, DetectsFractionalCycle) {
  // Each triangle edge at 0.8: x(E(S)) = 2.4 > 2.
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  std::vector<double> x{0.8, 0.8, 0.8, 1.0, 0.8};
  const auto violated = find_violated_subtours(g, x);
  ASSERT_FALSE(violated.empty());
  for (const auto& s : violated) {
    EXPECT_GT(subset_internal_weight(g, x, s),
              static_cast<double>(s.size()) - 1.0 + 1e-9);
  }
}

TEST(Separation, MinCutFindsViolatingSetExactly) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  std::vector<double> x{1.0, 1.0, 1.0, 0.0};
  // S = {0,1,2} avoids vertex 3: force 0 in, 3 out.
  const SeparationCut cut = min_subtour_cut(g, x, 0, 3);
  EXPECT_LT(cut.f_value, 2.0 - 1e-9);
  EXPECT_EQ(std::set<VertexId>(cut.subset.begin(), cut.subset.end()),
            (std::set<VertexId>{0, 1, 2}));
}

TEST(Separation, ReturnedSetsAreAlwaysTrulyViolated) {
  // Property: whatever the oracle returns must violate its subtour row.
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 6;
    Graph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.bernoulli(0.7)) g.add_edge(u, v, 1.0);
      }
    }
    if (g.edge_count() == 0) continue;
    // Random x scaled so that sum = n - 1 (the spanning constraint).
    std::vector<double> x(static_cast<std::size_t>(g.edge_count()), 0.0);
    double sum = 0.0;
    for (auto& xi : x) {
      xi = rng.uniform();
      sum += xi;
    }
    for (auto& xi : x) xi = std::min(1.0, xi * static_cast<double>(n - 1) / sum);
    for (const auto& s : find_violated_subtours(g, x)) {
      EXPECT_GT(subset_internal_weight(g, x, s),
                static_cast<double>(s.size()) - 1.0)
          << "trial " << trial;
    }
  }
}

// -------------------------------------------- LP + cuts => MST (Lemma 1) --

/// With no degree caps, the cutting-plane LP is the Subtour LP; its extreme
/// optimum must be integral and equal to the MST (Lemma 1 of the paper).
TEST(SubtourLp, ExtremePointIsIntegralMst) {
  Rng rng(99);
  const lp::SimplexSolver solver;
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 7;
    Graph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.bernoulli(0.6)) g.add_edge(u, v, rng.uniform(0.5, 3.0));
      }
    }
    if (!graph::is_connected(g)) continue;

    MrlcLpFormulation formulation(
        g, std::vector<std::optional<double>>(static_cast<std::size_t>(n)));
    const CutLpResult res = solve_with_subtour_cuts(formulation, solver);
    ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);

    const auto mst = graph::kruskal_mst(g);
    ASSERT_TRUE(mst.has_value());
    EXPECT_NEAR(res.objective, mst->total_weight, 1e-6) << "trial " << trial;

    int fractional = 0;
    int selected = 0;
    for (double xe : res.edge_values) {
      if (xe > 1e-6 && xe < 1.0 - 1e-6) ++fractional;
      if (xe > 1.0 - 1e-6) ++selected;
    }
    EXPECT_EQ(fractional, 0) << "trial " << trial;
    EXPECT_EQ(selected, n - 1) << "trial " << trial;
  }
}

TEST(SubtourLp, InfeasibleOnDisconnectedGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  MrlcLpFormulation formulation(g, std::vector<std::optional<double>>(4));
  const CutLpResult res = solve_with_subtour_cuts(formulation, lp::SimplexSolver());
  // Either the base LP is already infeasible (x <= 1 caps the two edges at
  // total 2 < 3) or a cut exposes it.
  EXPECT_EQ(res.status, lp::SolveStatus::kInfeasible);
}

TEST(SubtourLp, DegreeCapsRestrictSolutions) {
  // Star + path alternatives: capping the center's degree forces the path.
  Graph g(4);
  g.add_edge(0, 1, 1.0);   // cheap star edges
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(1, 2, 5.0);   // expensive path edges
  g.add_edge(2, 3, 5.0);
  std::vector<std::optional<double>> caps(4);
  caps[0] = 1.0;  // center may keep only one incident edge
  MrlcLpFormulation formulation(g, caps);
  const CutLpResult res = solve_with_subtour_cuts(formulation, lp::SimplexSolver());
  ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);
  // One cheap edge + two expensive ones.
  EXPECT_NEAR(res.objective, 11.0, 1e-6);
}

TEST(SubtourLp, RedundantCapsAreDropped) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  std::vector<std::optional<double>> caps(3);
  caps[1] = 10.0;  // >= n-1, must be ignored
  MrlcLpFormulation formulation(g, caps);
  EXPECT_EQ(formulation.model().constraint_count(), 1);  // only the span row
}

TEST(SubtourLp, FormulationValidatesInput) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(MrlcLpFormulation(g, std::vector<std::optional<double>>(2)),
               std::invalid_argument);
  MrlcLpFormulation f(g, std::vector<std::optional<double>>(3));
  EXPECT_THROW(f.add_subtour_row({0}), std::invalid_argument);
  EXPECT_THROW(f.add_subtour_row({0, 0}), std::invalid_argument);
  EXPECT_THROW(f.add_subtour_row({0, 99}), std::invalid_argument);
}

TEST(DegreeCaps, LifetimeCapsEncodeChildrenBounds) {
  wsn::Network net(3, 0);
  net.add_link(0, 1, 1.0);
  net.add_link(1, 2, 1.0);
  for (int v = 0; v < 3; ++v) net.set_initial_energy(v, 3000.0);
  const double bound = 1e6;  // rounds
  const auto caps = lifetime_degree_caps(net, {true, true, true}, bound);
  const double children = net.max_children_real(0, bound);
  ASSERT_TRUE(caps[0].has_value());
  ASSERT_TRUE(caps[1].has_value());
  EXPECT_DOUBLE_EQ(*caps[0], children);        // sink: children = degree
  EXPECT_DOUBLE_EQ(*caps[1], children + 1.0);  // non-sink: one edge to parent
}

TEST(DegreeCaps, UnconstrainedVerticesGetNullopt) {
  wsn::Network net(3, 0);
  net.add_link(0, 1, 1.0);
  net.add_link(1, 2, 1.0);
  const auto caps = lifetime_degree_caps(net, {false, true, false}, 1e6);
  EXPECT_FALSE(caps[0].has_value());
  EXPECT_TRUE(caps[1].has_value());
  EXPECT_FALSE(caps[2].has_value());
}

}  // namespace
}  // namespace mrlc::core

// ------------------------------------------------------- weighted rows ----

namespace mrlc::core {
namespace {

TEST(WeightedRows, EnergyWeightedCapsSteerTheSolution) {
  // Two ways to span: a "cheap in cost, expensive in energy" star vs an
  // energy-light path.  With unit rows the star wins; with energy weights
  // the cap forbids it.
  graph::Graph g(4);
  const auto s1 = g.add_edge(0, 1, 1.0);
  const auto s2 = g.add_edge(0, 2, 1.0);
  const auto s3 = g.add_edge(0, 3, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 2.0);

  const lp::SimplexSolver solver;
  std::vector<std::optional<double>> caps(4);
  caps[0] = 5.0;  // generous in unit terms

  // Unit rows: the cap never binds; the cheap star is chosen (cost 3).
  {
    MrlcLpFormulation unit(g, caps);
    const CutLpResult res = solve_with_subtour_cuts(unit, solver);
    ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);
    EXPECT_NEAR(res.objective, 3.0, 1e-6);
  }
  // Weighted rows: each star edge charges 4 energy at the hub, so barely
  // more than one fits the budget of 5.  Unlike unit rows, weighted caps
  // admit *fractional* extreme points, so the LP value lies strictly
  // between the unconstrained optimum (3) and the best integral tree
  // under the cap (5 = one star edge + two path edges).
  {
    MrlcLpFormulation weighted(
        g, caps, [&](graph::VertexId v, graph::EdgeId e) {
          const bool star_edge = e == s1 || e == s2 || e == s3;
          return v == 0 && star_edge ? 4.0 : 0.1;
        });
    const CutLpResult res = solve_with_subtour_cuts(weighted, solver);
    ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);
    EXPECT_GT(res.objective, 4.0);         // the cap genuinely binds
    EXPECT_LE(res.objective, 5.0 + 1e-6);  // valid lower bound on the tree
    // The fractional point respects the weighted row.
    double hub_energy = 0.0;
    for (const graph::EdgeId e : {s1, s2, s3}) {
      hub_energy += 4.0 * res.edge_values[static_cast<std::size_t>(e)];
    }
    EXPECT_LE(hub_energy, 5.0 + 1e-6);
  }
}

TEST(WeightedRows, WeightedCapIsNotDroppedAsRedundant) {
  // With unit rows a cap >= n-1 is dropped; with weights it must be kept
  // (a weighted sum can exceed n-1 easily).
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  std::vector<std::optional<double>> caps(3);
  caps[1] = 2.5;  // >= n-1 = 2
  MrlcLpFormulation unit(g, caps);
  EXPECT_EQ(unit.model().constraint_count(), 1);  // span row only
  MrlcLpFormulation weighted(g, caps,
                             [](graph::VertexId, graph::EdgeId) { return 10.0; });
  EXPECT_EQ(weighted.model().constraint_count(), 2);  // span + the cap
}

}  // namespace
}  // namespace mrlc::core

// --------------------------------------------------------- cut pool ----

namespace mrlc::core {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(SubtourCutPool, RemembersSortedDeduplicatedSets) {
  SubtourCutPool pool;
  pool.remember({2, 0, 1});
  pool.remember({1, 2, 0});  // same set, different order: deduplicated
  pool.remember({3, 4});
  ASSERT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.sets()[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(pool.sets()[1], (std::vector<VertexId>{3, 4}));
}

TEST(SubtourCutPool, HotVerticesOrderedByAppearanceCount) {
  SubtourCutPool pool;
  pool.remember({0, 1, 2});
  pool.remember({1, 2, 3});
  pool.remember({2, 4, 5});
  // Counts: v2 = 3, v1 = 2, rest = 1 or 0; ties break by ascending id.
  const std::vector<VertexId> hot = pool.hot_vertices(7);
  ASSERT_EQ(hot.size(), 7u);
  EXPECT_EQ(hot[0], 2);
  EXPECT_EQ(hot[1], 1);
  EXPECT_EQ(hot[2], 0);  // tied at 1 appearance with 3, 4, 5 — lowest id first
  EXPECT_EQ(hot[3], 3);
  EXPECT_EQ(hot[4], 4);
  EXPECT_EQ(hot[5], 5);
  EXPECT_EQ(hot[6], 6);  // never seen, still listed (count 0)
}

TEST(SubtourCutPool, SecondSeparationCallIsServedFromPoolWithoutFlows) {
  metrics::set_enabled(true);
  // Triangle {0,1,2} violated, pendant keeps the support connected so the
  // component heuristic (stage 1) finds nothing and stage 2 must run.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const std::vector<double> x{0.8, 0.8, 0.8, 1.0};

  metrics::Counter& flows = metrics::counter("separation.maxflow_calls");
  metrics::Counter& hits = metrics::counter("separation.pool_hits");

  SubtourCutPool pool;
  const long long flows0 = flows.value();
  const auto first = find_violated_subtours(g, x, 1e-6, SeparationMode::kExact,
                                            &pool);
  ASSERT_FALSE(first.empty());
  EXPECT_GT(flows.value(), flows0);  // the first call needed real max-flows
  EXPECT_GE(pool.size(), 1u);

  // Same fractional point again (as after an outer-iteration LP rebuild):
  // the pooled set still separates it, so no flow runs at all.
  const long long flows1 = flows.value();
  const long long hits1 = hits.value();
  const auto second = find_violated_subtours(g, x, 1e-6, SeparationMode::kExact,
                                             &pool);
  ASSERT_FALSE(second.empty());
  EXPECT_EQ(flows.value(), flows1);
  EXPECT_GT(hits.value(), hits1);
  EXPECT_EQ(second[0], first[0]);
}

TEST(SubtourCutPool, PooledOracleFindsSameSetsAsStateless) {
  // The pool is an accelerator, not a filter: on a fresh pool the pooled
  // oracle returns exactly what the stateless oracle returns.
  Rng rng(991);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(4, 9));
    Graph g(n);
    for (VertexId a = 0; a < n; ++a) {
      for (VertexId b = a + 1; b < n; ++b) {
        if (rng.uniform(0.0, 1.0) < 0.6) g.add_edge(a, b, 1.0);
      }
    }
    std::vector<double> x(static_cast<std::size_t>(g.edge_count()));
    for (double& v : x) v = rng.uniform(0.0, 1.0);
    const auto stateless = find_violated_subtours(g, x);
    SubtourCutPool pool;
    const auto pooled =
        find_violated_subtours(g, x, 1e-6, SeparationMode::kExact, &pool);
    EXPECT_EQ(stateless, pooled) << "trial " << trial;
    EXPECT_EQ(pool.size(), pooled.size()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mrlc::core
