/// \file service_test.cpp
/// \brief Wire codec, warm cache, and solver-service robustness suite.
///
/// The service tests run the real solver on small instances through the
/// in-process `SolverService` API (no sockets — transport plumbing is
/// covered by the CLI smoke in scripts/ci.sh).  Determinism-sensitive
/// cases pin `batch_size` and enqueue before `start()` so batch
/// composition, cache arrival order, and shed decisions are fixed.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include "baselines/mst_baseline.hpp"
#include "common/faultpoint.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "core/anytime.hpp"
#include "helpers.hpp"
#include "service/cache.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "wsn/io.hpp"
#include "wsn/metrics.hpp"

namespace {

using namespace mrlc;
using namespace mrlc::service;

// ---------------------------------------------------------------- wire --

WireRequest sample_request() {
  WireRequest request;
  request.id = "req-42";
  request.lifetime = 123.5;
  request.budget = 1000;
  request.deadline_ms = 250;
  request.network_text = "mrlc-network v1\nfake payload bytes\n";
  return request;
}

TEST(Wire, RequestRoundTrip) {
  const WireRequest original = sample_request();
  const WireRequest decoded = decode_request(encode_request(original));
  EXPECT_EQ(decoded.id, original.id);
  EXPECT_EQ(decoded.variant, original.variant);
  EXPECT_DOUBLE_EQ(decoded.lifetime, original.lifetime);
  EXPECT_EQ(decoded.budget, original.budget);
  EXPECT_EQ(decoded.deadline_ms, original.deadline_ms);
  EXPECT_EQ(decoded.network_text, original.network_text);
}

TEST(Wire, OptionalRequestFieldsDefaultToUnlimited) {
  WireRequest request = sample_request();
  request.budget = -1;
  request.deadline_ms = -1;
  const WireRequest decoded = decode_request(encode_request(request));
  EXPECT_EQ(decoded.budget, -1);
  EXPECT_EQ(decoded.deadline_ms, -1);
}

TEST(Wire, ResponseRoundTrip) {
  WireResponse response;
  response.id = "req-42";
  response.status = ResponseStatus::kBudgetExhausted;
  response.detail = "budget exhausted between IRA outer iterations";
  response.has_solution = true;
  response.cost = 1.25;
  response.reliability = 0.875;
  response.lifetime = 4000.0;
  response.gap = 0.125;
  response.budget_used = 77;
  response.cache = "miss";
  response.tree_text = "mrlc-tree v1\nsome tree bytes\n";
  const WireResponse decoded = decode_response(encode_response(response));
  EXPECT_EQ(decoded.id, response.id);
  EXPECT_EQ(decoded.status, response.status);
  EXPECT_EQ(decoded.detail, response.detail);
  EXPECT_TRUE(decoded.has_solution);
  EXPECT_DOUBLE_EQ(decoded.cost, response.cost);
  EXPECT_DOUBLE_EQ(decoded.reliability, response.reliability);
  EXPECT_EQ(decoded.budget_used, response.budget_used);
  EXPECT_EQ(decoded.cache, "miss");
  EXPECT_EQ(decoded.tree_text, response.tree_text);
}

TEST(Wire, EveryStatusTokenRoundTrips) {
  for (const ResponseStatus status :
       {ResponseStatus::kOk, ResponseStatus::kBudgetExhausted,
        ResponseStatus::kCancelled, ResponseStatus::kInfeasible,
        ResponseStatus::kRejectedOverload, ResponseStatus::kRejectedDraining,
        ResponseStatus::kInvalidRequest, ResponseStatus::kInternalError}) {
    EXPECT_EQ(status_from_string(to_string(status)), status);
  }
  EXPECT_THROW(status_from_string("nonsense"), WireError);
}

TEST(Wire, RejectsMalformedRequestPayloads) {
  const std::string good = encode_request(sample_request());
  const std::vector<std::string> bad = {
      "",                                          // empty
      "mrlc-request v2\n",                         // wrong version
      "mrlc-response v1\n",                        // wrong document type
      "mrlc-request v1\nlifetime 1\nnetwork 0\n",  // missing id
      "mrlc-request v1\nid a\nvariant mrlc\nlifetime 1\n",  // missing network
      "mrlc-request v1\nid a\nid b\nvariant mrlc\nlifetime 1\nnetwork 0\n",
      "mrlc-request v1\nid a\nvariant mrlc\nlifetime xyz\nnetwork 0\n",
      "mrlc-request v1\nid a\nvariant mrlc\nlifetime 1\nbudget -3\nnetwork 0\n",
      "mrlc-request v1\nid a\nvariant mrlc\nlifetime 1\nnetwork 99\nshort\n",
      "mrlc-request v1\nid a\nvariant mrlc\nlifetime 1\nwhatkey 1\nnetwork 0\n",
      good + "trailing garbage",                   // bytes after the block
  };
  for (const std::string& payload : bad) {
    EXPECT_THROW(decode_request(payload), WireError) << payload;
  }
}

TEST(Wire, FramingRoundTripsThroughChunkedReader) {
  const std::string p1 = encode_request(sample_request());
  const std::string p2 = "mrlc-response v1\nid x\nstatus ok\n"
                         "budget-used 0\ncache none\nqueue-ms 0\nsolve-ms 0\n";
  const std::string stream = frame(p1) + frame(p2);
  FrameReader reader;
  std::vector<std::string> out;
  // Feed a byte at a time: the reader must reassemble frames regardless of
  // how the transport fragments them.
  for (const char c : stream) {
    reader.feed(&c, 1);
    std::string payload;
    while (reader.next(payload)) out.push_back(payload);
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], p1);
  EXPECT_EQ(out[1], p2);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Wire, FrameReaderRejectsBadMagicAndOversizedLength) {
  {
    FrameReader reader;
    reader.feed("XXXX\x01\x00\x00\x00Z", 9);
    std::string payload;
    EXPECT_THROW(reader.next(payload), WireError);
    // Poisoned: even a later valid frame is refused.
    EXPECT_THROW(reader.next(payload), WireError);
  }
  {
    FrameReader reader;
    const std::string huge = {'M', 'R', 'F', '1', '\xFF', '\xFF', '\xFF', '\x7F'};
    reader.feed(huge.data(), huge.size());
    std::string payload;
    EXPECT_THROW(reader.next(payload), WireError);
  }
}

// --------------------------------------------------------------- cache --

TEST(WarmCache, TopologyHashMatchesFnv1aReferenceVectors) {
  // Published FNV-1a 64-bit test vectors; pins the on-disk/log format.
  EXPECT_EQ(topology_hash(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(topology_hash("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(topology_hash("foobar"), 0x85944171F73967E8ULL);
}

TEST(WarmCache, ResultHitRequiresExactKey) {
  WarmCache cache(4);
  CachedResult result;
  result.tree_text = "tree";
  const std::string key = WarmCache::result_key("mrlc", 100.0, -1);
  cache.store_result(1, key, result);
  EXPECT_NE(cache.find_result(1, key), nullptr);
  EXPECT_EQ(cache.find_result(1, WarmCache::result_key("mrlc", 101.0, -1)),
            nullptr);
  EXPECT_EQ(cache.find_result(1, WarmCache::result_key("mrlc", 100.0, 5)),
            nullptr);
  EXPECT_EQ(cache.find_result(2, key), nullptr);
  EXPECT_EQ(cache.stats().result_hits, 1);
  EXPECT_EQ(cache.stats().result_misses, 3);
}

TEST(WarmCache, LruEvictsTheColdestTopology) {
  WarmCache cache(2);
  const std::string key = WarmCache::result_key("mrlc", 1.0, -1);
  cache.store_result(1, key, CachedResult{});
  cache.store_result(2, key, CachedResult{});
  ASSERT_NE(cache.find_result(1, key), nullptr);  // 1 is now hottest
  cache.store_result(3, key, CachedResult{});     // evicts 2
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_NE(cache.find_result(1, key), nullptr);
  EXPECT_EQ(cache.find_result(2, key), nullptr);
  EXPECT_NE(cache.find_result(3, key), nullptr);
}

TEST(WarmCache, PoolLeaseIsExclusiveUntilReleased) {
  WarmCache cache(4);
  core::SubtourCutPool* pool = cache.lease(7, "mrlc");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(cache.lease(7, "mrlc"), nullptr);  // second lease refused
  cache.release(7, "mrlc");
  EXPECT_EQ(cache.lease(7, "mrlc"), pool);  // same warmed pool comes back
  cache.release(7, "mrlc");
  EXPECT_EQ(cache.stats().pool_leases, 2);
}

TEST(WarmCache, PoolsAreKeyedPerVariant) {
  // Regression: the pool lease used to be keyed by topology alone, so an
  // etx solve could replay subtour cuts separated under the mrlc
  // objective (cross-variant warmth made a solve's separation trajectory
  // depend on which *other* variants previously ran on the topology).
  WarmCache cache(4);
  core::SubtourCutPool* mrlc_pool = cache.lease(7, "mrlc");
  ASSERT_NE(mrlc_pool, nullptr);
  core::SubtourCutPool* etx_pool = cache.lease(7, "etx");
  ASSERT_NE(etx_pool, nullptr);        // not blocked by the mrlc lease
  EXPECT_NE(etx_pool, mrlc_pool);      // and a distinct pool object
  EXPECT_EQ(cache.lease(7, "etx"), nullptr);  // per-variant exclusivity
  cache.release(7, "mrlc");
  cache.release(7, "etx");
  EXPECT_EQ(cache.lease(7, "mrlc"), mrlc_pool);  // each variant keeps its
  EXPECT_EQ(cache.lease(7, "etx"), etx_pool);    // own warmed pool
  cache.release(7, "mrlc");
  cache.release(7, "etx");
  EXPECT_EQ(cache.stats().pool_leases, 4);
}

TEST(WarmCache, ReleaseOfWrongVariantLeaseIsALogicError) {
  WarmCache cache(4);
  ASSERT_NE(cache.lease(7, "mrlc"), nullptr);
  EXPECT_THROW(cache.release(7, "etx"), std::logic_error);
  cache.release(7, "mrlc");
}

TEST(WarmCache, LeasedEntriesSurviveEvictionPressure) {
  WarmCache cache(1);
  core::SubtourCutPool* pool = cache.lease(1, "mrlc");
  ASSERT_NE(pool, nullptr);
  // Capacity is full with a leased entry: new topologies are refused
  // rather than dangling the borrowed pool.
  EXPECT_EQ(cache.lease(2, "mrlc"), nullptr);
  cache.release(1, "mrlc");
  EXPECT_NE(cache.lease(2, "mrlc"), nullptr);  // now 1 is evictable
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(WarmCache, AnyLeasedVariantPoolBlocksEviction) {
  WarmCache cache(1);
  ASSERT_NE(cache.lease(1, "mrlc"), nullptr);
  ASSERT_NE(cache.lease(1, "etx"), nullptr);
  cache.release(1, "mrlc");
  // The etx pool is still borrowed: topology 1 must not be evicted.
  EXPECT_EQ(cache.lease(2, "mrlc"), nullptr);
  cache.release(1, "etx");
  EXPECT_NE(cache.lease(2, "mrlc"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(WarmCache, QuarantineDropsEntryAndBlacklistsHash) {
  WarmCache cache(4);
  const std::string key = WarmCache::result_key("mrlc", 1.0, -1);
  cache.store_result(9, key, CachedResult{});
  core::SubtourCutPool* pool = cache.lease(9, "mrlc");
  ASSERT_NE(pool, nullptr);
  cache.quarantine(9);
  EXPECT_TRUE(cache.is_quarantined(9));
  EXPECT_EQ(cache.stats().poisoned, 1);
  EXPECT_EQ(cache.find_result(9, key), nullptr);   // results gone
  EXPECT_EQ(cache.lease(9, "mrlc"), nullptr);      // no new leases
  cache.store_result(9, key, CachedResult{});      // refused
  EXPECT_EQ(cache.find_result(9, key), nullptr);
  cache.quarantine(9);                             // idempotent
  EXPECT_EQ(cache.stats().poisoned, 1);
}

TEST(WarmCache, ZeroCapacityDisablesEverything) {
  WarmCache cache(0);
  EXPECT_EQ(cache.lease(1, "mrlc"), nullptr);
  cache.store_result(1, "k", CachedResult{});
  EXPECT_EQ(cache.find_result(1, "k"), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
}

// ------------------------------------------------------------- service --

/// Thread-safe reply collector (replies arrive from the dispatcher).
struct ReplyLog {
  std::mutex mutex;
  std::vector<WireResponse> replies;

  SolverService::ReplyFn sink() {
    return [this](const WireResponse& r) {
      std::lock_guard<std::mutex> lock(mutex);
      replies.push_back(r);
    };
  }
  std::size_t size() {
    std::lock_guard<std::mutex> lock(mutex);
    return replies.size();
  }
  WireResponse by_id(const std::string& id) {
    std::lock_guard<std::mutex> lock(mutex);
    for (const WireResponse& r : replies) {
      if (r.id == id) return r;
    }
    ADD_FAILURE() << "no reply with id " << id;
    return {};
  }
};

struct ServiceFixture : ::testing::Test {
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }

  /// Deterministic connected instance plus an LC every spanning tree of
  /// interest can meet (the MST's own lifetime).
  static wsn::Network make_network(std::uint64_t seed, int nodes = 10) {
    Rng rng(seed);
    return mrlc::testing::small_random_network(nodes, 0.5, rng);
  }
  static double feasible_lifetime(const wsn::Network& net) {
    return wsn::network_lifetime(net, baselines::mst_baseline(net).tree);
  }
  static WireRequest make_request(const wsn::Network& net, std::string id,
                                  double lifetime) {
    WireRequest request;
    request.id = std::move(id);
    request.lifetime = lifetime;
    request.network_text = wsn::network_to_string(net);
    return request;
  }
};

TEST_F(ServiceFixture, SolveMatchesDirectAnytimeByteForByte) {
  const wsn::Network net = make_network(11);
  const double lc = feasible_lifetime(net);

  ServiceOptions options;
  options.auto_start = false;
  options.batch_size = 1;
  SolverService service(options);
  ReplyLog log;
  service.submit(make_request(net, "a", lc), log.sink());
  service.start();
  service.drain();

  const WireResponse reply = log.by_id("a");
  EXPECT_EQ(reply.status, ResponseStatus::kOk);
  EXPECT_EQ(reply.cache, "miss");
  ASSERT_TRUE(reply.has_solution);

  // First contact leases an *empty* pool, so the trajectory matches a
  // pool-free direct solve exactly — the parity the CI smoke also checks
  // against one-shot mrlc_solve.
  core::AnytimeResult direct = core::solve_anytime(net, lc);
  EXPECT_EQ(reply.tree_text, wsn::tree_to_string(direct.tree));
  EXPECT_DOUBLE_EQ(reply.cost, direct.cost);
}

TEST_F(ServiceFixture, RepeatRequestIsServedFromCacheByteIdentical) {
  const wsn::Network net = make_network(12);
  const double lc = feasible_lifetime(net);

  ServiceOptions options;
  options.auto_start = false;
  options.batch_size = 1;  // two batches: the second sees the stored result
  SolverService service(options);
  ReplyLog log;
  service.submit(make_request(net, "first", lc), log.sink());
  service.submit(make_request(net, "second", lc), log.sink());
  service.start();
  service.drain();

  const WireResponse first = log.by_id("first");
  const WireResponse second = log.by_id("second");
  EXPECT_EQ(first.status, ResponseStatus::kOk);
  EXPECT_EQ(second.status, ResponseStatus::kOk);
  EXPECT_EQ(first.cache, "miss");
  EXPECT_EQ(second.cache, "hit");
  EXPECT_EQ(first.tree_text, second.tree_text);
  EXPECT_DOUBLE_EQ(first.cost, second.cost);
  EXPECT_EQ(service.cache_stats().result_hits, 1);
}

TEST_F(ServiceFixture, EveryVariantRoundTripsWithDirectSolveParity) {
  const wsn::Network net = make_network(21);
  const double mrlc_lc = feasible_lifetime(net);

  ServiceOptions options;
  options.auto_start = false;
  options.batch_size = 1;
  SolverService service(options);
  ReplyLog log;
  for (const core::VariantId id : core::all_variants()) {
    // A loose bound keeps every variant feasible; mrlc uses its usual MST
    // lifetime so this stays aligned with the other service tests.
    const double lc = id == core::VariantId::kMrlc ? mrlc_lc : 1.0;
    WireRequest request = make_request(net, core::to_string(id), lc);
    request.variant = core::to_string(id);
    service.submit(std::move(request), log.sink());
  }
  service.start();
  service.drain();

  for (const core::VariantId id : core::all_variants()) {
    const WireResponse reply = log.by_id(core::to_string(id));
    EXPECT_EQ(reply.status, ResponseStatus::kOk) << core::to_string(id);
    EXPECT_EQ(reply.cache, "miss") << core::to_string(id);
    ASSERT_TRUE(reply.has_solution) << core::to_string(id);

    // Same parity contract as the mrlc byte-for-byte test: first contact
    // leases an empty pool, so each variant's reply must match a pool-free
    // direct anytime solve of that variant exactly.
    core::AnytimeOptions direct_options;
    direct_options.variant = id;
    const double lc = id == core::VariantId::kMrlc ? mrlc_lc : 1.0;
    const core::AnytimeResult direct =
        core::solve_anytime(net, lc, direct_options);
    EXPECT_EQ(reply.tree_text, wsn::tree_to_string(direct.tree))
        << core::to_string(id);
    EXPECT_DOUBLE_EQ(reply.cost, direct.cost) << core::to_string(id);
  }
}

TEST_F(ServiceFixture, ResultCacheNeverCrossServesVariants) {
  const wsn::Network net = make_network(22);

  ServiceOptions options;
  options.auto_start = false;
  options.batch_size = 1;  // one batch per request: each sees prior stores
  SolverService service(options);
  ReplyLog log;
  // Identical network, lifetime, and budget — only the variant differs, so
  // any key that forgets the variant would serve mrlc's tree to etx.
  WireRequest first = make_request(net, "mrlc-first", 1.0);
  WireRequest cross = make_request(net, "etx-cross", 1.0);
  cross.variant = "etx";
  WireRequest repeat = make_request(net, "mrlc-repeat", 1.0);
  service.submit(std::move(first), log.sink());
  service.submit(std::move(cross), log.sink());
  service.submit(std::move(repeat), log.sink());
  service.start();
  service.drain();

  EXPECT_EQ(log.by_id("mrlc-first").cache, "miss");
  EXPECT_EQ(log.by_id("etx-cross").cache, "miss");
  EXPECT_EQ(log.by_id("mrlc-repeat").cache, "hit");
  EXPECT_EQ(service.cache_stats().result_hits, 1);
}

TEST_F(ServiceFixture, OverloadShedsWithTypedRepliesDeterministically) {
  const wsn::Network net = make_network(13);
  const double lc = feasible_lifetime(net);

  ServiceOptions options;
  options.auto_start = false;  // nothing drains, so occupancy is exact
  options.queue_capacity = 2;
  SolverService service(options);
  ReplyLog log;
  for (int i = 0; i < 5; ++i) {
    service.submit(make_request(net, "r" + std::to_string(i), lc), log.sink());
  }
  // Sheds reply inline: exactly the 3 submissions beyond capacity.
  EXPECT_EQ(log.size(), 3u);
  for (const std::string id : {"r2", "r3", "r4"}) {
    EXPECT_EQ(log.by_id(id).status, ResponseStatus::kRejectedOverload);
  }
  service.start();
  service.drain();
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.by_id("r0").status, ResponseStatus::kOk);
  EXPECT_EQ(log.by_id("r1").status, ResponseStatus::kOk);
}

TEST_F(ServiceFixture, DrainRejectsNewSubmissionsTyped) {
  SolverService service;  // auto-started, empty
  service.drain();
  ReplyLog log;
  service.submit(make_request(make_network(14), "late", 1.0), log.sink());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.by_id("late").status, ResponseStatus::kRejectedDraining);
}

TEST_F(ServiceFixture, MalformedPayloadsGetTypedRepliesAndServiceSurvives) {
  const wsn::Network net = make_network(15);
  const double lc = feasible_lifetime(net);

  ServiceOptions options;
  options.auto_start = false;
  SolverService service(options);
  ReplyLog log;
  service.submit_payload("complete garbage", log.sink());
  ASSERT_EQ(log.size(), 1u);  // decode failures reply inline

  // A syntactically valid request whose *network* is corrupt fails inside
  // the worker, typed, without hurting the good request beside it.
  WireRequest corrupt = make_request(net, "corrupt", lc);
  corrupt.network_text = "mrlc-network v1\nnot a real network\n";
  service.submit(std::move(corrupt), log.sink());
  service.submit(make_request(net, "good", lc), log.sink());
  service.start();
  service.drain();

  EXPECT_EQ(log.replies.front().status, ResponseStatus::kInvalidRequest);
  EXPECT_EQ(log.by_id("corrupt").status, ResponseStatus::kInvalidRequest);
  EXPECT_EQ(log.by_id("good").status, ResponseStatus::kOk);
}

TEST_F(ServiceFixture, UnsupportedVariantIsRejectedTyped) {
  ServiceOptions options;
  options.auto_start = false;
  SolverService service(options);
  ReplyLog log;
  WireRequest request = make_request(make_network(16), "odd", 1.0);
  request.variant = "mrlc-retx";  // reserved, not served yet
  service.submit(std::move(request), log.sink());
  service.start();
  service.drain();
  EXPECT_EQ(log.by_id("odd").status, ResponseStatus::kInvalidRequest);
}

TEST_F(ServiceFixture, ZeroBudgetDegradesToSeededIncumbent) {
  const wsn::Network net = make_network(17);
  const double lc = feasible_lifetime(net);

  ServiceOptions options;
  options.auto_start = false;
  SolverService service(options);
  ReplyLog log;
  WireRequest request = make_request(net, "zero", lc);
  request.budget = 0;  // hard zero: no LP work at all
  service.submit(std::move(request), log.sink());
  service.start();
  service.drain();

  const WireResponse reply = log.by_id("zero");
  EXPECT_EQ(reply.status, ResponseStatus::kBudgetExhausted);
  ASSERT_TRUE(reply.has_solution);
  EXPECT_FALSE(reply.tree_text.empty());
  EXPECT_EQ(reply.budget_used, 0);
  const wsn::AggregationTree tree = wsn::tree_from_string(reply.tree_text, net);
  EXPECT_GE(wsn::network_lifetime(net, tree), lc * (1.0 - 1e-12));
}

TEST_F(ServiceFixture, ExpiredDeadlineDegradesToSeededIncumbent) {
  const wsn::Network net = make_network(18);
  const double lc = feasible_lifetime(net);

  ServiceOptions options;
  options.auto_start = false;
  SolverService service(options);
  ReplyLog log;
  WireRequest request = make_request(net, "dead", lc);
  request.deadline_ms = 0;  // already expired at admission
  service.submit(std::move(request), log.sink());
  service.start();
  service.drain();

  const WireResponse reply = log.by_id("dead");
  EXPECT_EQ(reply.status, ResponseStatus::kBudgetExhausted);
  ASSERT_TRUE(reply.has_solution);
  EXPECT_EQ(reply.budget_used, 0);
}

TEST_F(ServiceFixture, WorkerCrashFaultYieldsCancelledAndServiceSurvives) {
  const wsn::Network net = make_network(19);
  const double lc = feasible_lifetime(net);
  fault::configure("service.worker_crash:1");

  ServiceOptions options;
  options.auto_start = false;
  options.batch_size = 1;  // victim selection = first prepped request
  SolverService service(options);
  ReplyLog log;
  service.submit(make_request(net, "victim", lc), log.sink());
  service.submit(make_request(net, "healthy", lc), log.sink());
  service.start();
  service.drain();

  const WireResponse victim = log.by_id("victim");
  EXPECT_EQ(victim.status, ResponseStatus::kCancelled);
  // Graceful degradation even under the crash: the watchdog's cancel path
  // still ships the seeded incumbent.
  EXPECT_TRUE(victim.has_solution);
  EXPECT_EQ(log.by_id("healthy").status, ResponseStatus::kOk);
  EXPECT_EQ(fault::injected_count(), 1);
  EXPECT_EQ(fault::recovered_count(), 1);
}

TEST_F(ServiceFixture, CachePoisonFaultQuarantinesTheTopology) {
  const wsn::Network net = make_network(20);
  const double lc = feasible_lifetime(net);
  fault::configure("service.cache_poison:1");

  ServiceOptions options;
  options.auto_start = false;
  options.batch_size = 1;
  SolverService service(options);
  ReplyLog log;
  service.submit(make_request(net, "poisoned", lc), log.sink());
  service.submit(make_request(net, "after", lc), log.sink());
  service.start();
  service.drain();

  // The poisoned entry is dropped before its result could be stored, so
  // the follow-up request solves fresh (still correctly) instead of
  // hitting state under suspicion.
  EXPECT_EQ(log.by_id("poisoned").status, ResponseStatus::kOk);
  const WireResponse after = log.by_id("after");
  EXPECT_EQ(after.status, ResponseStatus::kOk);
  EXPECT_EQ(after.cache, "miss");
  EXPECT_EQ(service.cache_stats().poisoned, 1);
  EXPECT_EQ(service.cache_stats().result_hits, 0);
  EXPECT_EQ(log.by_id("poisoned").tree_text, after.tree_text);
  EXPECT_EQ(fault::recovered_count(), 1);
}

TEST_F(ServiceFixture, SlowRequestFaultOnlyAddsLatency) {
  const wsn::Network net = make_network(21);
  const double lc = feasible_lifetime(net);
  fault::configure("service.slow_request:1");

  ServiceOptions options;
  options.auto_start = false;
  SolverService service(options);
  ReplyLog log;
  service.submit(make_request(net, "slow", lc), log.sink());
  service.start();
  service.drain();

  EXPECT_EQ(log.by_id("slow").status, ResponseStatus::kOk);
  EXPECT_EQ(fault::recovered_count(), 1);
}

TEST_F(ServiceFixture, TreesAndCacheCountersAreThreadCountInvariant) {
  // The determinism contract: fixed submissions + pinned batch size give
  // identical trees and cache counters whether solves run on 1 worker
  // thread or 8 (batch composition is pinned and every cache mutation and
  // fault-arrival decision happens at a serial checkpoint).
  std::vector<std::string> trees_by_run[2];
  CacheStats stats_by_run[2];
  for (int run = 0; run < 2; ++run) {
    set_default_thread_count(run == 0 ? 1 : 8);
    const wsn::Network a = make_network(22);
    const wsn::Network b = make_network(23);
    ServiceOptions options;
    options.auto_start = false;
    options.batch_size = 4;  // pinned: must NOT follow the pool width
    options.record_timings = false;
    SolverService service(options);
    ReplyLog log;
    int next = 0;
    for (const wsn::Network* net : {&a, &b, &a, &b, &a}) {
      service.submit(
          make_request(*net, "r" + std::to_string(next++),
                       feasible_lifetime(*net)),
          log.sink());
    }
    service.start();
    service.drain();
    for (int i = 0; i < next; ++i) {
      trees_by_run[run].push_back(log.by_id("r" + std::to_string(i)).tree_text);
    }
    stats_by_run[run] = service.cache_stats();
  }
  set_default_thread_count(0);  // restore hardware default for later tests
  EXPECT_EQ(trees_by_run[0], trees_by_run[1]);
  EXPECT_EQ(stats_by_run[0].result_hits, stats_by_run[1].result_hits);
  EXPECT_EQ(stats_by_run[0].result_misses, stats_by_run[1].result_misses);
  // Batch 1 holds [a, b, a, b]: results are stored at finalize, so the
  // same-batch repeats still miss; only batch 2's trailing `a` hits.
  EXPECT_EQ(stats_by_run[0].result_hits, 1);
}

// ------------------------------------------------------------- soak ----

TEST_F(ServiceFixture, MetricsSnapshotCarriesEveryGoldenServiceKey) {
  // The deterministic service instruments are a documented contract
  // (docs/metrics.md, tests/data/service_metrics_keys.golden): the
  // metrics document a drained daemon flushes must contain every key,
  // registered eagerly so even never-bumped counters appear.
  const wsn::Network net = make_network(77);
  {
    SolverService service;
    ReplyLog log;
    service.submit(make_request(net, "m0", feasible_lifetime(net)),
                   log.sink());
    service.drain();
    ASSERT_EQ(log.size(), 1u);
  }
  const std::string json = metrics::to_json_string(true);

  std::ifstream golden(MRLC_SERVICE_METRICS_GOLDEN);
  ASSERT_TRUE(golden.is_open())
      << "cannot open " << MRLC_SERVICE_METRICS_GOLDEN;
  std::string line;
  int checked = 0;
  while (std::getline(golden, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(json.find("\"" + line + "\""), std::string::npos)
        << "metrics document is missing golden key " << line;
    ++checked;
  }
  EXPECT_GT(checked, 0) << "golden file listed no keys";
}

TEST_F(ServiceFixture, SoakMixedGoodCorruptAndExpiringRequests) {
  // 500 requests: rotating healthy topologies, corrupt-corpus payloads,
  // zero-deadline degraders, and raw-garbage frames.  Every submission
  // gets exactly one typed reply and the drain finishes clean — under the
  // ASan suite this is also the leak gauntlet.
  std::vector<std::string> corrupt_corpus;
  for (const auto& entry :
       std::filesystem::directory_iterator(MRLC_CORRUPT_DIR)) {
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    corrupt_corpus.push_back(buffer.str());
  }
  ASSERT_FALSE(corrupt_corpus.empty());

  const wsn::Network nets[3] = {make_network(31, 8), make_network(32, 9),
                                make_network(33, 10)};
  double lcs[3];
  for (int i = 0; i < 3; ++i) lcs[i] = feasible_lifetime(nets[i]);

  ServiceOptions options;
  options.auto_start = false;
  options.batch_size = 4;
  options.queue_capacity = 600;  // soak admission, shed is covered elsewhere
  options.record_timings = false;
  SolverService service(options);
  ReplyLog log;

  constexpr int kRequests = 500;
  int expected_invalid = 0;
  for (int i = 0; i < kRequests; ++i) {
    const std::string id = "soak-" + std::to_string(i);
    switch (i % 5) {
      case 0:
      case 1: {  // healthy solve (cache-heavy after the first pass)
        const int which = i % 3;
        service.submit(make_request(nets[which], id, lcs[which]), log.sink());
        break;
      }
      case 2: {  // corrupt network body -> invalid_request from the worker
        WireRequest request = make_request(nets[0], id, lcs[0]);
        request.network_text = corrupt_corpus[static_cast<std::size_t>(i) %
                                              corrupt_corpus.size()];
        service.submit(std::move(request), log.sink());
        ++expected_invalid;
        break;
      }
      case 3: {  // deadline already expired -> graceful incumbent
        WireRequest request = make_request(nets[1], id, lcs[1]);
        request.deadline_ms = 0;
        // Distinct budget => distinct result-cache key: without this the
        // healthy solves' converged result (same topology, lifetime, and
        // unlimited budget) would legitimately serve these as `ok` hits.
        request.budget = 1000000007;
        service.submit(std::move(request), log.sink());
        break;
      }
      case 4:  // undecodable payload -> inline invalid_request
        service.submit_payload("frame of pure noise #" + std::to_string(i),
                               log.sink());
        ++expected_invalid;
        break;
    }
  }
  service.start();
  service.drain();

  ASSERT_EQ(log.size(), static_cast<std::size_t>(kRequests));
  int ok = 0, degraded = 0, invalid = 0;
  for (const WireResponse& reply : log.replies) {
    switch (reply.status) {
      case ResponseStatus::kOk: ++ok; break;
      case ResponseStatus::kBudgetExhausted: ++degraded; break;
      case ResponseStatus::kInvalidRequest: ++invalid; break;
      default:
        ADD_FAILURE() << "unexpected status " << to_string(reply.status)
                      << " for " << reply.id;
    }
  }
  EXPECT_EQ(ok, 200);        // cases 0/1
  EXPECT_EQ(degraded, 100);  // case 3
  EXPECT_EQ(invalid, expected_invalid);
  EXPECT_GT(service.cache_stats().result_hits, 0);
}

}  // namespace
