#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "graph/dsu.hpp"
#include "graph/enumeration.hpp"
#include "graph/graph.hpp"
#include "graph/maxflow.hpp"
#include "graph/mst.hpp"
#include "graph/traversal.hpp"

namespace mrlc::graph {
namespace {

Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  return g;
}

/// G(n, p) with unit-ish weights, for property sweeps.
Graph random_graph(int n, double p, Rng& rng) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) g.add_edge(u, v, rng.uniform(0.1, 10.0));
    }
  }
  return g;
}

// ---------------------------------------------------------------- graph --

TEST(Graph, BasicAccounting) {
  Graph g = triangle();
  EXPECT_EQ(g.vertex_count(), 3);
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_EQ(g.alive_edge_count(), 3);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_DOUBLE_EQ(g.edge(1).weight, 2.0);
}

TEST(Graph, RejectsBadEdges) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(g.edge(0), std::invalid_argument);
}

TEST(Graph, EdgeOtherEndpoint) {
  Graph g = triangle();
  EXPECT_EQ(g.edge(0).other(0), 1);
  EXPECT_EQ(g.edge(0).other(1), 0);
  EXPECT_THROW(g.edge(0).other(2), std::invalid_argument);
}

TEST(Graph, FindEdgeBothOrders) {
  Graph g = triangle();
  EXPECT_EQ(g.find_edge(1, 2), 1);
  EXPECT_EQ(g.find_edge(2, 1), 1);
  Graph g2(4);
  g2.add_edge(0, 1, 1.0);
  EXPECT_EQ(g2.find_edge(2, 3), -1);
}

TEST(Graph, RemoveEdgeUpdatesAdjacency) {
  Graph g = triangle();
  g.remove_edge(0);
  EXPECT_FALSE(g.is_alive(0));
  EXPECT_EQ(g.alive_edge_count(), 2);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.find_edge(0, 1), -1);
  g.remove_edge(0);  // idempotent
  EXPECT_EQ(g.alive_edge_count(), 2);
}

TEST(Graph, FilteredPreservesEdgeIds) {
  Graph g = triangle();
  const Graph f = g.filtered({true, false, true});
  EXPECT_EQ(f.alive_edge_count(), 2);
  EXPECT_TRUE(f.is_alive(0));
  EXPECT_FALSE(f.is_alive(1));
  EXPECT_TRUE(f.is_alive(2));
  EXPECT_DOUBLE_EQ(f.edge(2).weight, 3.0);
  EXPECT_THROW(g.filtered({true}), std::invalid_argument);
}

TEST(Graph, SetWeight) {
  Graph g = triangle();
  g.set_weight(2, 9.0);
  EXPECT_DOUBLE_EQ(g.edge(2).weight, 9.0);
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_EQ(g.degree(0), 2);
}

// ------------------------------------------------------------------ dsu --

TEST(Dsu, UniteAndFind) {
  DisjointSetUnion dsu(5);
  EXPECT_EQ(dsu.set_count(), 5);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(1, 2));
  EXPECT_FALSE(dsu.unite(0, 2));
  EXPECT_TRUE(dsu.connected(0, 2));
  EXPECT_FALSE(dsu.connected(0, 3));
  EXPECT_EQ(dsu.set_count(), 3);
  EXPECT_EQ(dsu.set_size(1), 3);
  EXPECT_EQ(dsu.set_size(4), 1);
}

TEST(Dsu, OutOfRangeThrows) {
  DisjointSetUnion dsu(2);
  EXPECT_THROW(dsu.find(2), std::invalid_argument);
  EXPECT_THROW(dsu.find(-1), std::invalid_argument);
}

// ------------------------------------------------------------ traversal --

TEST(Traversal, ComponentsOfDisconnectedGraph) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[2], c.label[3]);
  EXPECT_NE(c.label[0], c.label[2]);
  EXPECT_NE(c.label[4], c.label[0]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Traversal, SingleVertexIsConnected) {
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(Traversal, BfsTreeDepthsAndParents) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  const BfsTree t = bfs_tree(g, 0);
  EXPECT_EQ(t.parent_vertex[0], 0);
  EXPECT_EQ(t.depth[2], 2);
  EXPECT_EQ(t.parent_vertex[2], 1);
  EXPECT_EQ(t.parent_edge[3], 2);
}

TEST(Traversal, BfsTreeUnreachable) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const BfsTree t = bfs_tree(g, 0);
  EXPECT_EQ(t.depth[2], -1);
  EXPECT_EQ(t.parent_vertex[2], -1);
}

TEST(Traversal, ReachableWithoutEdgeSplitsTree) {
  Graph g(4);
  const EdgeId bridge = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(1, 3, 1.0);
  const auto side = reachable_without_edge(g, 1, bridge);
  const std::set<VertexId> s(side.begin(), side.end());
  EXPECT_EQ(s, (std::set<VertexId>{1, 2, 3}));
  const auto all = reachable_without_edge(g, 1, -1);
  EXPECT_EQ(all.size(), 4u);
}

// ------------------------------------------------------------------ mst --

TEST(Mst, TriangleTakesTwoCheapest) {
  const Graph g = triangle();
  const auto prim = prim_mst(g, 0);
  const auto kruskal = kruskal_mst(g);
  ASSERT_TRUE(prim.has_value());
  ASSERT_TRUE(kruskal.has_value());
  EXPECT_DOUBLE_EQ(prim->total_weight, 3.0);
  EXPECT_DOUBLE_EQ(kruskal->total_weight, 3.0);
}

TEST(Mst, DisconnectedReturnsNullopt) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(prim_mst(g, 0).has_value());
  EXPECT_FALSE(kruskal_mst(g).has_value());
}

TEST(Mst, RespectsRemovedEdges) {
  Graph g = triangle();
  g.remove_edge(0);  // force the expensive path
  const auto t = prim_mst(g, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->total_weight, 5.0);
}

TEST(Mst, EmptyAndSingleton) {
  EXPECT_THROW(prim_mst(Graph(0), 0), std::invalid_argument);  // root out of range
  const auto t = prim_mst(Graph(1), 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->edges.empty());
}

TEST(Mst, PrimEqualsKruskalOnRandomGraphs) {
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = random_graph(10, 0.5, rng);
    const auto p = prim_mst(g, 0);
    const auto k = kruskal_mst(g);
    ASSERT_EQ(p.has_value(), k.has_value());
    if (p.has_value()) {
      EXPECT_NEAR(p->total_weight, k->total_weight, 1e-9);
      EXPECT_EQ(p->edges.size(), 9u);
    }
  }
}

// -------------------------------------------------------------- maxflow --

TEST(MaxFlow, SimplePath) {
  MaxFlow f(3);
  f.add_arc(0, 1, 5.0);
  f.add_arc(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 2), 3.0);
}

TEST(MaxFlow, ParallelPaths) {
  MaxFlow f(4);
  f.add_arc(0, 1, 2.0);
  f.add_arc(1, 3, 2.0);
  f.add_arc(0, 2, 3.0);
  f.add_arc(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 3), 3.0);
}

TEST(MaxFlow, ClassicCLRSNetwork) {
  // CLRS figure 26.1: max flow 23.
  MaxFlow f(6);
  f.add_arc(0, 1, 16);
  f.add_arc(0, 2, 13);
  f.add_arc(1, 2, 10);
  f.add_arc(2, 1, 4);
  f.add_arc(1, 3, 12);
  f.add_arc(3, 2, 9);
  f.add_arc(2, 4, 14);
  f.add_arc(4, 3, 7);
  f.add_arc(3, 5, 20);
  f.add_arc(4, 5, 4);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 5), 23.0);
}

TEST(MaxFlow, MinCutMatchesFlow) {
  MaxFlow f(4);
  f.add_arc(0, 1, 1.0);
  f.add_arc(0, 2, 1.0);
  f.add_arc(1, 3, 2.0);
  f.add_arc(2, 3, 0.5);
  const double flow = f.max_flow(0, 3);
  EXPECT_DOUBLE_EQ(flow, 1.5);
  const auto side = f.min_cut_source_side(0);
  const std::set<int> s(side.begin(), side.end());
  EXPECT_TRUE(s.count(0));
  EXPECT_FALSE(s.count(3));
}

TEST(MaxFlow, ResetRestoresCapacities) {
  MaxFlow f(2);
  f.add_arc(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 1), 0.0);  // saturated
  f.reset();
  EXPECT_DOUBLE_EQ(f.max_flow(0, 1), 4.0);
}

TEST(MaxFlow, UndirectedEdgeCarriesBothWays) {
  MaxFlow f(3);
  f.add_undirected(0, 1, 2.0);
  f.add_undirected(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 2), 2.0);
  f.reset();
  EXPECT_DOUBLE_EQ(f.max_flow(2, 0), 2.0);
}

TEST(MaxFlow, RejectsBadInput) {
  MaxFlow f(2);
  EXPECT_THROW(f.add_arc(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(f.max_flow(0, 0), std::invalid_argument);
  EXPECT_THROW(MaxFlow(2, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------- enumeration --

TEST(Enumeration, CayleyCountsForCompleteGraphs) {
  // Cayley: K_n has n^(n-2) spanning trees.
  for (int n = 2; n <= 6; ++n) {
    Graph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) g.add_edge(u, v, 1.0);
    }
    std::uint64_t expected = 1;
    for (int i = 0; i < n - 2; ++i) expected *= static_cast<std::uint64_t>(n);
    EXPECT_EQ(count_spanning_trees(g), expected) << "n=" << n;
  }
}

TEST(Enumeration, CycleGraphHasNTrees) {
  const int n = 7;
  Graph g(n);
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n, 1.0);
  EXPECT_EQ(count_spanning_trees(g), static_cast<std::uint64_t>(n));
}

TEST(Enumeration, TreeHasExactlyOne) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(1, 3, 1.0);
  EXPECT_EQ(count_spanning_trees(g), 1u);
}

TEST(Enumeration, DisconnectedHasNone) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_EQ(count_spanning_trees(g), 0u);
}

TEST(Enumeration, LimitStopsEarly) {
  Graph g(6);
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) g.add_edge(u, v, 1.0);
  }
  EXPECT_EQ(count_spanning_trees(g, 10), 10u);
}

TEST(Enumeration, MinEnumeratedMatchesMst) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_graph(7, 0.6, rng);
    const auto mst = kruskal_mst(g);
    double best = 1e18;
    bool any = false;
    for_each_spanning_tree(g, [&](const SpanningTree& t) {
      best = std::min(best, t.total_weight);
      any = true;
      return true;
    });
    ASSERT_EQ(mst.has_value(), any);
    if (any) {
      EXPECT_NEAR(best, mst->total_weight, 1e-9);
    }
  }
}

TEST(Enumeration, EveryVisitIsASpanningTree) {
  Rng rng(78);
  const Graph g = random_graph(6, 0.7, rng);
  for_each_spanning_tree(g, [&](const SpanningTree& t) {
    EXPECT_EQ(t.edges.size(), 5u);
    DisjointSetUnion dsu(6);
    for (EdgeId id : t.edges) {
      EXPECT_TRUE(dsu.unite(g.edge(id).u, g.edge(id).v));
    }
    EXPECT_EQ(dsu.set_count(), 1);
    return true;
  });
}

}  // namespace
}  // namespace mrlc::graph

// --------------------------------------------------------- shortest path --

#include "graph/shortest_path.hpp"

namespace mrlc::graph {
namespace {

TEST(Dijkstra, SimplePathDistances) {
  Graph g(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(2, 3, 4.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.distance[3], 9.0);
  EXPECT_EQ(sp.parent_vertex[3], 2);
  EXPECT_EQ(sp.parent_vertex[0], 0);
}

TEST(Dijkstra, PicksCheaperDetour) {
  Graph g(4);
  g.add_edge(0, 3, 10.0);  // direct but expensive
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[3], 3.0);
  EXPECT_EQ(sp.parent_vertex[3], 2);
}

TEST(Dijkstra, UnreachableVerticesStayInfinite) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_TRUE(std::isinf(sp.distance[2]));
  EXPECT_EQ(sp.parent_vertex[2], -1);
}

TEST(Dijkstra, CustomWeightFunction) {
  Graph g(3);
  const EdgeId a = g.add_edge(0, 1, 100.0);  // stored weight ignored
  const EdgeId b = g.add_edge(1, 2, 100.0);
  const ShortestPaths sp =
      dijkstra(g, 0, [&](EdgeId id) { return id == a ? 1.0 : 2.0; });
  (void)b;
  EXPECT_DOUBLE_EQ(sp.distance[2], 3.0);
}

TEST(Dijkstra, RejectsNegativeWeights) {
  Graph g(2);
  g.add_edge(0, 1, -1.0);
  EXPECT_THROW(dijkstra(g, 0), std::invalid_argument);
  EXPECT_THROW(dijkstra(g, 5), std::invalid_argument);
}

TEST(Dijkstra, AgreesWithBfsOnUnitWeights) {
  Rng rng(333);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g(10);
    for (int u = 0; u < 10; ++u) {
      for (int v = u + 1; v < 10; ++v) {
        if (rng.bernoulli(0.3)) g.add_edge(u, v, 1.0);
      }
    }
    const ShortestPaths sp = dijkstra(g, 0);
    const BfsTree bfs = bfs_tree(g, 0);
    for (int v = 0; v < 10; ++v) {
      if (bfs.depth[static_cast<std::size_t>(v)] == -1) {
        EXPECT_TRUE(std::isinf(sp.distance[static_cast<std::size_t>(v)]));
      } else {
        EXPECT_DOUBLE_EQ(sp.distance[static_cast<std::size_t>(v)],
                         bfs.depth[static_cast<std::size_t>(v)]);
      }
    }
  }
}

}  // namespace
}  // namespace mrlc::graph

// -------------------------------------------------------------- kirchhoff --

#include "graph/kirchhoff.hpp"

namespace mrlc::graph {
namespace {

TEST(Kirchhoff, MatchesCayleyOnCompleteGraphs) {
  for (int n = 2; n <= 8; ++n) {
    Graph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) g.add_edge(u, v, 1.0);
    }
    double expected = 1.0;
    for (int i = 0; i < n - 2; ++i) expected *= n;
    EXPECT_NEAR(count_spanning_trees_kirchhoff(g), expected, expected * 1e-9)
        << "n=" << n;
  }
}

TEST(Kirchhoff, MatchesEnumerationOnRandomGraphs) {
  Rng rng(444);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = random_graph(7, 0.55, rng);
    const double kirchhoff = count_spanning_trees_kirchhoff(g);
    const auto enumerated = static_cast<double>(count_spanning_trees(g));
    EXPECT_NEAR(kirchhoff, enumerated, std::max(1e-6, enumerated * 1e-9))
        << "trial " << trial;
  }
}

TEST(Kirchhoff, ZeroForDisconnected) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_NEAR(count_spanning_trees_kirchhoff(g), 0.0, 1e-9);
}

TEST(Kirchhoff, ParallelEdgesCountSeparately) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 1.0);
  EXPECT_NEAR(count_spanning_trees_kirchhoff(g), 3.0, 1e-9);
}

TEST(Kirchhoff, TrivialGraphs) {
  EXPECT_DOUBLE_EQ(count_spanning_trees_kirchhoff(Graph(0)), 1.0);
  EXPECT_DOUBLE_EQ(count_spanning_trees_kirchhoff(Graph(1)), 1.0);
  Graph two(2);
  EXPECT_NEAR(count_spanning_trees_kirchhoff(two), 0.0, 1e-9);  // no edge
}

TEST(Kirchhoff, ScalesWhereEnumerationCannot) {
  // K16 has 16^14 ~ 7.2e16 spanning trees; Kirchhoff gets it instantly.
  Graph g(16);
  for (int u = 0; u < 16; ++u) {
    for (int v = u + 1; v < 16; ++v) g.add_edge(u, v, 1.0);
  }
  const double count = count_spanning_trees_kirchhoff(g);
  EXPECT_NEAR(count, std::pow(16.0, 14.0), std::pow(16.0, 14.0) * 1e-6);
}

}  // namespace
}  // namespace mrlc::graph
