#include <gtest/gtest.h>

#include "baselines/aaml.hpp"
#include "baselines/mst_baseline.hpp"
#include "common/rng.hpp"
#include "core/exact.hpp"
#include "graph/traversal.hpp"
#include "helpers.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::baselines {
namespace {

using mrlc::testing::small_random_network;

// ---------------------------------------------------------------- MST ----

TEST(MstBaseline, PicksCheapestTreeOnToy) {
  mrlc::testing::ToyNetwork toy;
  const MstResult res = mst_baseline(toy.net);
  // Fig. 4(b) is the minimum-cost tree: reliability 0.648.
  EXPECT_NEAR(res.reliability, 0.648, 1e-12);
  EXPECT_NEAR(res.cost, wsn::tree_cost(toy.net, res.tree), 1e-12);
}

TEST(MstBaseline, ThrowsOnDisconnected) {
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.9);
  EXPECT_THROW(mst_baseline(net), InfeasibleError);
}

TEST(MstBaseline, IsCostLowerBoundOverAllTrees) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const wsn::Network net = small_random_network(7, 0.6, rng);
    const MstResult mst = mst_baseline(net);
    const auto exact = core::exact_mrlc(net, 1.0);  // unconstrained optimum
    ASSERT_TRUE(exact.has_value());
    EXPECT_NEAR(mst.cost, exact->cost, 1e-9);
  }
}

// --------------------------------------------------------------- AAML ----

TEST(Aaml, ImprovesOrMatchesBfsTreeLifetime) {
  Rng rng(22);
  AamlOptions options;
  options.initial = AamlInitialTree::kBfs;
  for (int trial = 0; trial < 20; ++trial) {
    const wsn::Network net = small_random_network(8, 0.6, rng);
    const graph::BfsTree bfs = graph::bfs_tree(net.topology(), net.sink());
    auto parents = bfs.parent_vertex;
    parents[static_cast<std::size_t>(net.sink())] = -1;
    const auto start = wsn::AggregationTree::from_parents(net, parents);
    const AamlResult res = aaml(net, options);
    EXPECT_GE(res.lifetime, wsn::network_lifetime(net, start) - 1e-9);
  }
}

TEST(Aaml, LexicographicModeReachesNearOptimalLifetime) {
  // The strongest configuration (lexicographic acceptance from a BFS
  // start) should reach a large fraction of the exact maximum lifetime on
  // small random instances.
  Rng rng(23);
  int hits = 0;
  const int trials = 20;
  AamlOptions options;
  options.mode = AamlSearchMode::kLexicographic;
  options.initial = AamlInitialTree::kBfs;
  for (int trial = 0; trial < trials; ++trial) {
    const wsn::Network net = small_random_network(7, 0.7, rng);
    const AamlResult res = aaml(net, options);
    const auto best = core::exact_max_lifetime(net);
    ASSERT_TRUE(best.has_value());
    EXPECT_LE(res.lifetime, best->lifetime + 1e-6);
    if (res.lifetime >= best->lifetime * 0.99) ++hits;
  }
  EXPECT_GE(hits, trials / 2) << "lexicographic AAML should often reach the optimum";
}

TEST(Aaml, StrictMinModeStopsAtTiedBottlenecks) {
  // The paper-faithful configuration gets stuck once two nodes tie at the
  // bottleneck lifetime, so it can never beat the lexicographic variant.
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    const wsn::Network net = small_random_network(8, 0.7, rng);
    AamlOptions strict;  // defaults: strict-min from a random tree
    AamlOptions lex;
    lex.mode = AamlSearchMode::kLexicographic;
    lex.initial = AamlInitialTree::kBfs;
    EXPECT_LE(aaml(net, strict).lifetime, aaml(net, lex).lifetime + 1e-6);
  }
}

TEST(Aaml, RandomInitialTreeIsSeeded) {
  Rng rng(30);
  const wsn::Network net = small_random_network(10, 0.6, rng);
  AamlOptions a;
  a.seed = 5;
  AamlOptions b;
  b.seed = 5;
  EXPECT_EQ(aaml(net, a).tree.parents(), aaml(net, b).tree.parents());
  AamlOptions c;
  c.seed = 6;
  // Different seeds normally give different trees (not guaranteed, but on a
  // 10-node graph with many spanning trees a collision is vanishingly
  // unlikely for these fixed seeds).
  EXPECT_NE(aaml(net, a).tree.parents(), aaml(net, c).tree.parents());
}

TEST(Aaml, IgnoresLinkQuality) {
  // Two networks identical except for PRRs must yield identical trees.
  wsn::Network net1(4, 0), net2(4, 0);
  const double q1[] = {0.99, 0.5, 0.7, 0.9, 0.6};
  const double q2[] = {0.51, 0.96, 0.55, 0.98, 0.97};
  const int us[] = {0, 0, 1, 1, 2};
  const int vs[] = {1, 2, 2, 3, 3};
  for (int i = 0; i < 5; ++i) {
    net1.add_link(us[i], vs[i], q1[i]);
    net2.add_link(us[i], vs[i], q2[i]);
  }
  EXPECT_EQ(aaml(net1).tree.parents(), aaml(net2).tree.parents());
}

TEST(Aaml, BalancesStarWhenPossible) {
  // Sink with 3 spokes plus chords: starting from the BFS star, AAML
  // should offload the sink.
  wsn::Network net(4, 0);
  net.add_link(0, 1, 0.9);
  net.add_link(0, 2, 0.9);
  net.add_link(0, 3, 0.9);
  net.add_link(1, 2, 0.9);
  net.add_link(2, 3, 0.9);
  AamlOptions options;
  options.initial = AamlInitialTree::kBfs;
  const AamlResult res = aaml(net, options);
  const auto best = core::exact_max_lifetime(net);
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(res.lifetime, best->lifetime, best->lifetime * 0.01);
  EXPECT_GT(res.steps, 0);
}

TEST(Aaml, RespectsStepCap) {
  Rng rng(24);
  const wsn::Network net = small_random_network(8, 0.7, rng);
  AamlOptions options;
  options.max_steps = 0;
  const AamlResult res = aaml(net, options);
  EXPECT_EQ(res.steps, 0);  // must return the BFS tree untouched
}

TEST(Aaml, HeterogeneousEnergyShiftsLoadToRichNodes) {
  // A poor node should not end up as a heavy internal node.
  Rng rng(25);
  for (int trial = 0; trial < 10; ++trial) {
    wsn::Network net = small_random_network(8, 0.8, rng);
    net.set_initial_energy(3, 500.0);  // starving node 3
    const AamlResult res = aaml(net);
    // Node 3's lifetime must not be the unique bottleneck if it can be a
    // leaf: verify AAML never leaves it with more children than needed.
    const auto best = core::exact_max_lifetime(net);
    ASSERT_TRUE(best.has_value());
    EXPECT_GE(res.lifetime, best->lifetime * 0.6);
  }
}

TEST(Aaml, ThrowsOnDisconnected) {
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.9);
  EXPECT_THROW(aaml(net), InfeasibleError);
}

TEST(Aaml, ResultMetricsAreConsistent) {
  Rng rng(26);
  const wsn::Network net = small_random_network(8, 0.7, rng);
  const AamlResult res = aaml(net);
  EXPECT_NEAR(res.cost, wsn::tree_cost(net, res.tree), 1e-9);
  EXPECT_NEAR(res.reliability, wsn::tree_reliability(net, res.tree), 1e-12);
  EXPECT_NEAR(res.lifetime, wsn::network_lifetime(net, res.tree), 1e-6);
}

}  // namespace
}  // namespace mrlc::baselines

// -------------------------------------------------------------- ETX SPT --

#include "baselines/etx_spt.hpp"

namespace mrlc::baselines {
namespace {

TEST(EtxSpt, PrefersReliableMultiHopOverLossyDirect) {
  // Direct link 2->0 has ETX 1/0.5 = 2; the two-hop route via 1 has
  // ETX 1/0.95 + 1/0.95 ~ 2.1 > 2, so ETX keeps the direct lossy link —
  // exactly the failure mode the paper criticizes.
  wsn::Network net(3, 0);
  net.add_link(0, 1, 0.95);
  net.add_link(1, 2, 0.95);
  net.add_link(0, 2, 0.5);
  const EtxSptResult res = etx_spt(net);
  EXPECT_EQ(res.tree.parent(2), 0);
  EXPECT_NEAR(res.max_path_etx, 2.0, 1e-9);
  // The MST (cost space) would have chosen the reliable two-hop route.
  const MstResult mst = mst_baseline(net);
  EXPECT_GT(mst.reliability, res.reliability);
}

TEST(EtxSpt, EqualsBfsOnUniformLinks) {
  // With identical link qualities, minimizing hop-count == minimizing ETX.
  Rng rng(91);
  for (int trial = 0; trial < 10; ++trial) {
    wsn::Network net = mrlc::testing::small_random_network(9, 0.5, rng, 0.8, 0.8001);
    const EtxSptResult res = etx_spt(net);
    const graph::BfsTree bfs = graph::bfs_tree(net.topology(), net.sink());
    for (int v = 0; v < net.node_count(); ++v) {
      if (v == net.sink()) continue;
      // Same depth (paths may differ among equal-ETX ties).
      int spt_depth = 0;
      for (wsn::VertexId w = v; res.tree.parent(w) != -1; w = res.tree.parent(w)) {
        ++spt_depth;
      }
      EXPECT_EQ(spt_depth, bfs.depth[static_cast<std::size_t>(v)]) << "node " << v;
    }
  }
}

TEST(EtxSpt, LifetimeBlindHubFormation) {
  // A perfect hub next to the sink: every node's best ETX path goes
  // through it, so it collects all children and bottlenecks the lifetime.
  wsn::Network net(6, 0);
  net.add_link(0, 1, 0.99);          // the hub
  for (int v = 2; v < 6; ++v) {
    net.add_link(1, v, 0.99);        // hub to leaves
    net.add_link(0, v, 0.30);        // lossy direct links
  }
  const EtxSptResult res = etx_spt(net);
  EXPECT_EQ(res.tree.children_count(1), 4);
  // Compare against the exact max-lifetime tree: the hub formation costs
  // lifetime.
  const auto best = core::exact_max_lifetime(net);
  ASSERT_TRUE(best.has_value());
  EXPECT_LT(res.lifetime, best->lifetime);
}

TEST(EtxSpt, MetricsConsistentAndThrowsOnDisconnected) {
  Rng rng(92);
  const wsn::Network net = mrlc::testing::small_random_network(10, 0.5, rng);
  const EtxSptResult res = etx_spt(net);
  EXPECT_NEAR(res.cost, wsn::tree_cost(net, res.tree), 1e-9);
  EXPECT_NEAR(res.reliability, wsn::tree_reliability(net, res.tree), 1e-12);
  EXPECT_GE(res.max_path_etx, 1.0);

  wsn::Network disconnected(3, 0);
  disconnected.add_link(0, 1, 0.9);
  EXPECT_THROW(etx_spt(disconnected), InfeasibleError);
}

}  // namespace
}  // namespace mrlc::baselines
