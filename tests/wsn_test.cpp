#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/energy.hpp"
#include "wsn/metrics.hpp"
#include "wsn/network.hpp"

namespace mrlc::wsn {
namespace {

// --------------------------------------------------------------- energy --

TEST(EnergyModel, DefaultsMatchPaper) {
  const EnergyModel m;
  EXPECT_DOUBLE_EQ(m.tx_joules, 1.6e-4);
  EXPECT_DOUBLE_EQ(m.rx_joules, 1.2e-4);
}

TEST(EnergyModel, LifetimeFormulaEq1) {
  const EnergyModel m;
  // L(v) = I / (Tx + Rx * c)
  EXPECT_DOUBLE_EQ(m.node_lifetime(3000.0, 0), 3000.0 / 1.6e-4);
  EXPECT_DOUBLE_EQ(m.node_lifetime(3000.0, 2), 3000.0 / (1.6e-4 + 2 * 1.2e-4));
  EXPECT_THROW(m.node_lifetime(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(m.node_lifetime(1.0, -1), std::invalid_argument);
}

TEST(EnergyModel, MaxChildrenInvertsLifetime) {
  const EnergyModel m;
  // Lifetime at the bound's children count equals the bound exactly.
  const double bound = 5e6;
  const double c = m.max_children_real(3000.0, bound);
  EXPECT_NEAR(3000.0 / (m.tx_joules + m.rx_joules * c), bound, 1e-3);
}

TEST(EnergyModel, MaxChildrenCanBeNegative) {
  const EnergyModel m;
  // A bound above the leaf lifetime is unattainable even with 0 children.
  const double leaf = m.node_lifetime(3000.0, 0);
  EXPECT_LT(m.max_children_real(3000.0, leaf * 2.0), 0.0);
}

TEST(EnergyModel, ValidationRejectsNonPositive) {
  EnergyModel m;
  m.tx_joules = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

// -------------------------------------------------------------- network --

TEST(Network, CostIsNegLogPrr) {
  Network net(2, 0);
  const EdgeId e = net.add_link(0, 1, 0.5);
  EXPECT_DOUBLE_EQ(net.link_prr(e), 0.5);
  EXPECT_DOUBLE_EQ(net.link_cost(e), -std::log(0.5));
  EXPECT_DOUBLE_EQ(Network::cost_to_prr(net.link_cost(e)), 0.5);
}

TEST(Network, PerfectLinkHasZeroCost) {
  Network net(2, 0);
  const EdgeId e = net.add_link(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(net.link_cost(e), 0.0);
}

TEST(Network, RejectsBadPrr) {
  Network net(2, 0);
  EXPECT_THROW(net.add_link(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(net.add_link(0, 1, 1.5), std::invalid_argument);
  EXPECT_THROW(net.add_link(0, 1, -0.2), std::invalid_argument);
}

TEST(Network, SetPrrKeepsCostInSync) {
  Network net(2, 0);
  const EdgeId e = net.add_link(0, 1, 0.9);
  net.set_link_prr(e, 0.6);
  EXPECT_DOUBLE_EQ(net.link_prr(e), 0.6);
  EXPECT_DOUBLE_EQ(net.link_cost(e), -std::log(0.6));
  EXPECT_DOUBLE_EQ(net.topology().edge(e).weight, -std::log(0.6));
}

TEST(Network, EnergyAccessors) {
  Network net(3, 0);
  net.set_initial_energy(1, 1500.0);
  EXPECT_DOUBLE_EQ(net.initial_energy(0), 3000.0);  // default
  EXPECT_DOUBLE_EQ(net.initial_energy(1), 1500.0);
  EXPECT_DOUBLE_EQ(net.min_initial_energy(), 1500.0);
  EXPECT_THROW(net.set_initial_energy(0, 0.0), std::invalid_argument);
  EXPECT_THROW(net.set_initial_energy(5, 1.0), std::invalid_argument);
}

TEST(Network, ValidateDetectsDisconnection) {
  Network net(3, 0);
  net.add_link(0, 1, 0.9);
  EXPECT_THROW(net.validate(), InfeasibleError);
  net.add_link(1, 2, 0.9);
  EXPECT_NO_THROW(net.validate());
}

TEST(Network, ConstructionGuards) {
  EXPECT_THROW(Network(0, 0), std::invalid_argument);
  EXPECT_THROW(Network(3, 5), std::invalid_argument);
}

// ----------------------------------------------------- aggregation tree --

TEST(AggregationTree, FromEdgesOrientsAwayFromSink) {
  mrlc::testing::ToyNetwork toy;
  const AggregationTree t = toy.tree_a();
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.parent(0), -1);
  EXPECT_EQ(t.parent(2), 4);
  EXPECT_EQ(t.parent(3), 4);
  EXPECT_EQ(t.parent(4), 0);
  EXPECT_EQ(t.children_count(4), 2);
  EXPECT_EQ(t.children_count(0), 3);
  EXPECT_EQ(t.children_count(2), 0);
}

TEST(AggregationTree, FromEdgesRejectsNonTrees) {
  mrlc::testing::ToyNetwork toy;
  // Too few edges.
  EXPECT_THROW(AggregationTree::from_edges(
                   toy.net, std::vector<EdgeId>{toy.e10, toy.e40}),
               std::invalid_argument);
  // Cycle: 2-4, 3-4, 2-3 plus fillers.
  EXPECT_THROW(AggregationTree::from_edges(
                   toy.net, std::vector<EdgeId>{toy.e24, toy.e34, toy.e23,
                                                toy.e10, toy.e50}),
               InfeasibleError);
}

TEST(AggregationTree, FromParentsValidates) {
  mrlc::testing::ToyNetwork toy;
  // Valid: 1->0, 4->0, 5->0, 2->4, 3->4.
  const AggregationTree t =
      AggregationTree::from_parents(toy.net, {-1, 0, 4, 4, 0, 0});
  EXPECT_EQ(t.children_count(4), 2);
  // Link (2,0) does not exist in the network.
  EXPECT_THROW(AggregationTree::from_parents(toy.net, {-1, 0, 0, 4, 0, 0}),
               InfeasibleError);
  // Wrong root marker.
  EXPECT_THROW(AggregationTree::from_parents(toy.net, {1, -1, 4, 4, 0, 0}),
               std::invalid_argument);
}

TEST(AggregationTree, EdgeIdsRoundTrip) {
  mrlc::testing::ToyNetwork toy;
  const AggregationTree t = toy.tree_b();
  const auto ids = t.edge_ids();
  EXPECT_EQ(ids.size(), 5u);
  const AggregationTree t2 = AggregationTree::from_edges(toy.net, ids);
  EXPECT_EQ(t2.parents(), t.parents());
}

TEST(AggregationTree, InSubtree) {
  mrlc::testing::ToyNetwork toy;
  const AggregationTree t = toy.tree_a();  // 2,3 under 4
  EXPECT_TRUE(t.in_subtree(4, 2));
  EXPECT_TRUE(t.in_subtree(4, 4));
  EXPECT_TRUE(t.in_subtree(0, 5));
  EXPECT_FALSE(t.in_subtree(4, 5));
  EXPECT_FALSE(t.in_subtree(2, 4));
}

TEST(AggregationTree, ReparentMovesSubtree) {
  mrlc::testing::ToyNetwork toy;
  AggregationTree t = toy.tree_a();
  // Fig. 4(a) -> Fig. 4(b): node 2 moves from parent 4 to parent 3.
  t.reparent(toy.net, 2, 3, toy.e23);
  EXPECT_EQ(t.parent(2), 3);
  EXPECT_EQ(t.children_count(4), 1);
  EXPECT_EQ(t.children_count(3), 1);
  EXPECT_NEAR(tree_reliability(toy.net, t), 0.648, 1e-12);
}

TEST(AggregationTree, ReparentRejectsCycles) {
  mrlc::testing::ToyNetwork toy;
  AggregationTree t = toy.tree_a();
  // 4 -> 2 would put 4 under its own subtree.
  EXPECT_THROW(t.reparent(toy.net, 4, 2, toy.e24), std::invalid_argument);
  // The sink cannot be re-parented.
  EXPECT_THROW(t.reparent(toy.net, 0, 4, toy.e40), std::invalid_argument);
  // via edge must join the two endpoints.
  EXPECT_THROW(t.reparent(toy.net, 2, 3, toy.e10), std::invalid_argument);
}

TEST(AggregationTree, ChildrenListsMatchCounts) {
  mrlc::testing::ToyNetwork toy;
  const AggregationTree t = toy.tree_a();
  const auto lists = t.children_lists();
  for (int v = 0; v < t.node_count(); ++v) {
    EXPECT_EQ(static_cast<int>(lists[static_cast<std::size_t>(v)].size()),
              t.children_count(v));
  }
}

// -------------------------------------------------------------- metrics --

TEST(Metrics, ToyExampleFig4Reliability) {
  mrlc::testing::ToyNetwork toy;
  // The paper's toy numbers: 0.36 for tree (a), 0.648 for tree (b).
  EXPECT_NEAR(tree_reliability(toy.net, toy.tree_a()), 0.36, 1e-12);
  EXPECT_NEAR(tree_reliability(toy.net, toy.tree_b()), 0.648, 1e-12);
}

TEST(Metrics, CostIsNegLogReliability) {
  mrlc::testing::ToyNetwork toy;
  const AggregationTree t = toy.tree_a();
  EXPECT_NEAR(tree_cost(toy.net, t), -std::log(tree_reliability(toy.net, t)),
              1e-12);
}

TEST(Metrics, LifetimeIsMinOverNodes) {
  mrlc::testing::ToyNetwork toy;
  const AggregationTree t = toy.tree_a();
  double min_lifetime = 1e300;
  for (VertexId v = 0; v < toy.net.node_count(); ++v) {
    min_lifetime = std::min(min_lifetime, node_lifetime(toy.net, t, v));
  }
  EXPECT_DOUBLE_EQ(network_lifetime(toy.net, t), min_lifetime);
  // Sink has 3 children — it is the bottleneck with uniform energy.
  EXPECT_EQ(bottleneck_node(toy.net, t), 0);
}

TEST(Metrics, MeetsLifetime) {
  mrlc::testing::ToyNetwork toy;
  const AggregationTree t = toy.tree_a();
  const double l = network_lifetime(toy.net, t);
  EXPECT_TRUE(meets_lifetime(toy.net, t, l));
  EXPECT_TRUE(meets_lifetime(toy.net, t, l * 0.5));
  EXPECT_FALSE(meets_lifetime(toy.net, t, l * 1.01));
}

TEST(Metrics, HeterogeneousEnergyShiftsBottleneck) {
  mrlc::testing::ToyNetwork toy;
  const AggregationTree t = toy.tree_a();
  // Starve node 3 (a leaf): it becomes the bottleneck despite 0 children.
  toy.net.set_initial_energy(3, 1.0);
  EXPECT_EQ(bottleneck_node(toy.net, t), 3);
}

}  // namespace
}  // namespace mrlc::wsn
