#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "distributed/dataplane.hpp"
#include "distributed/event_queue.hpp"
#include "helpers.hpp"
#include "wsn/metrics.hpp"

namespace mrlc::dist {
namespace {

// ------------------------------------------------------------ event queue --

TEST(EventQueue, PopsInTimeNodeSeqOrder) {
  EventQueue q;
  q.push(Event{5, 2, 0, EventKind::kNodeRound});
  q.push(Event{1, 7, 3, EventKind::kNodeRound});
  q.push(Event{5, 1, 9, EventKind::kChurnWake});
  q.push(Event{1, 7, 1, EventKind::kTxnWake});
  q.push(Event{1, 0, 4, EventKind::kNodeRound});
  ASSERT_EQ(q.size(), 5u);

  const Event a = q.pop();  // (1, 0, 4)
  EXPECT_EQ(a.time, 1u);
  EXPECT_EQ(a.node, 0);
  const Event b = q.pop();  // (1, 7, 1) before (1, 7, 3)
  EXPECT_EQ(b.node, 7);
  EXPECT_EQ(b.seq, 1u);
  const Event c = q.pop();
  EXPECT_EQ(c.seq, 3u);
  const Event d = q.pop();  // (5, 1, 9) before (5, 2, 0)
  EXPECT_EQ(d.node, 1);
  EXPECT_EQ(q.pop().node, 2);
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------- parity helpers --

/// Pins the default pool width for one scope.
struct ThreadGuard {
  unsigned saved = default_thread_count();
  explicit ThreadGuard(unsigned threads) { set_default_thread_count(threads); }
  ~ThreadGuard() { set_default_thread_count(saved); }
};

/// The counters both engines must move identically, plus the DES-only
/// instruments (compared between DES runs, skipped cross-engine).
const char* const kSharedCounters[] = {
    "dataplane.rounds", "dataplane.degraded_events", "dataplane.improved_events",
    "dataplane.repairs_applied", "dataplane.detections",
    "dataplane.false_positives", "dataplane.metrics_flushes", "arq.rounds",
    "arq.transactions", "arq.data_tx", "arq.retransmissions", "arq.ack_tx",
    "arq.ack_losses", "arq.duplicates_suppressed", "arq.packets_dropped"};
const char* const kDesCounters[] = {"dataplane.events_scheduled",
                                    "dataplane.events_processed", "des.windows",
                                    "des.checkpoints"};

std::vector<long long> counter_snapshot(bool include_des) {
  std::vector<long long> values;
  for (const char* name : kSharedCounters) {
    values.push_back(metrics::counter(name).value());
  }
  if (include_des) {
    for (const char* name : kDesCounters) {
      values.push_back(metrics::counter(name).value());
    }
  }
  values.push_back(metrics::histogram("arq.attempts_per_transaction").count());
  values.push_back(metrics::histogram("arq.attempts_per_transaction").sum());
  values.push_back(metrics::histogram("dataplane.detection_lag_rounds").count());
  values.push_back(metrics::histogram("dataplane.detection_lag_rounds").sum());
  return values;
}

std::vector<long long> counter_delta(const std::vector<long long>& before,
                                     const std::vector<long long>& after) {
  std::vector<long long> delta(after.size());
  for (std::size_t i = 0; i < after.size(); ++i) delta[i] = after[i] - before[i];
  return delta;
}

/// Bit-exact field compare; NaN == NaN (mean lag is NaN with 0 detections).
void expect_bitwise_equal(const DataPlaneResult& a, const DataPlaneResult& b,
                          const std::string& label) {
  SCOPED_TRACE(label);
  auto bits = [](double x) { return std::bit_cast<std::uint64_t>(x); };
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(bits(a.delivery_ratio), bits(b.delivery_ratio));
  EXPECT_EQ(bits(a.round_success_ratio), bits(b.round_success_ratio));
  EXPECT_EQ(bits(a.avg_data_tx_per_round), bits(b.avg_data_tx_per_round));
  EXPECT_EQ(bits(a.avg_ack_tx_per_round), bits(b.avg_ack_tx_per_round));
  EXPECT_EQ(bits(a.avg_slots_per_round), bits(b.avg_slots_per_round));
  EXPECT_EQ(a.duplicates_suppressed, b.duplicates_suppressed);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(bits(a.joules_per_reading), bits(b.joules_per_reading));
  EXPECT_EQ(bits(a.measured_lifetime_rounds), bits(b.measured_lifetime_rounds));
  EXPECT_EQ(a.degraded_events, b.degraded_events);
  EXPECT_EQ(a.improved_events, b.improved_events);
  EXPECT_EQ(a.repairs_applied, b.repairs_applied);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(bits(a.mean_detection_lag_rounds), bits(b.mean_detection_lag_rounds));
  EXPECT_EQ(a.false_positive_events, b.false_positive_events);
  EXPECT_EQ(a.missed_events, b.missed_events);
  EXPECT_EQ(bits(a.estimate_mae), bits(b.estimate_mae));
  EXPECT_EQ(bits(a.final_reliability), bits(b.final_reliability));
  EXPECT_EQ(bits(a.final_lifetime), bits(b.final_lifetime));
  EXPECT_EQ(a.bound_met, b.bound_met);
}

struct Instance {
  wsn::Network net;
  wsn::AggregationTree tree;
  double bound;
};

Instance make_instance(std::uint64_t seed) {
  Rng rng(seed);
  wsn::Network net = mrlc::testing::small_random_network(12, 0.5, rng);
  wsn::AggregationTree tree = mrlc::testing::random_tree(net, rng);
  const double bound = 0.5 * wsn::network_lifetime(net, tree);
  return Instance{std::move(net), std::move(tree), bound};
}

DataPlaneResult run_with(const Instance& inst, const DataPlaneOptions& options) {
  return run_dataplane(inst.net, inst.tree, inst.bound, options);
}

// ------------------------------------------------------------------ parity --

/// Every repair mode x channel model x seed: the event engine and the
/// legacy serial loop must produce byte-identical results and move the
/// shared counters by the same amounts.
TEST(DesEngine, EngineParitySweep) {
  const RepairMode modes[] = {RepairMode::kNone, RepairMode::kOracle,
                              RepairMode::kEstimator};
  const bool bursty[] = {false, true};
  const std::uint64_t seeds[] = {17, 4242};
  for (const RepairMode mode : modes) {
    for (const bool burst : bursty) {
      for (const std::uint64_t seed : seeds) {
        const Instance inst = make_instance(seed);
        DataPlaneOptions options;
        options.rounds = 60;
        options.repair = mode;
        options.seed = seed * 1000 + 7;
        options.channel.model = burst ? radio::ChannelModel::kGilbertElliott
                                      : radio::ChannelModel::kBernoulli;
        const std::string label =
            "mode=" + std::to_string(static_cast<int>(mode)) +
            " burst=" + std::to_string(burst) + " seed=" + std::to_string(seed);

        options.engine = DataPlaneEngine::kLegacy;
        auto before = counter_snapshot(false);
        const DataPlaneResult legacy = run_with(inst, options);
        const auto legacy_delta =
            counter_delta(before, counter_snapshot(false));

        options.engine = DataPlaneEngine::kDes;
        before = counter_snapshot(false);
        const DataPlaneResult des = run_with(inst, options);
        const auto des_delta = counter_delta(before, counter_snapshot(false));

        expect_bitwise_equal(legacy, des, label);
        EXPECT_EQ(legacy_delta, des_delta) << label;
      }
    }
  }
}

/// The DES result must not depend on how many workers drain the shards.
TEST(DesEngine, ThreadCountInvariance) {
  for (const RepairMode mode :
       {RepairMode::kNone, RepairMode::kEstimator}) {
    const Instance inst = make_instance(91);
    DataPlaneOptions options;
    options.rounds = 48;
    options.repair = mode;
    options.engine = DataPlaneEngine::kDes;
    options.channel.model = radio::ChannelModel::kGilbertElliott;

    DataPlaneResult one, eight;
    std::vector<long long> delta_one, delta_eight;
    {
      ThreadGuard guard(1);
      auto before = counter_snapshot(true);
      one = run_with(inst, options);
      delta_one = counter_delta(before, counter_snapshot(true));
    }
    {
      ThreadGuard guard(8);
      auto before = counter_snapshot(true);
      eight = run_with(inst, options);
      delta_eight = counter_delta(before, counter_snapshot(true));
    }
    expect_bitwise_equal(one, eight,
                         "threads mode=" + std::to_string(static_cast<int>(mode)));
    EXPECT_EQ(delta_one, delta_eight);
  }
}

/// In kNone mode the window width only changes barrier cadence, not bits.
TEST(DesEngine, WindowWidthInvariance) {
  const Instance inst = make_instance(5);
  DataPlaneOptions options;
  options.rounds = 50;
  options.repair = RepairMode::kNone;
  options.engine = DataPlaneEngine::kDes;
  options.window_rounds = 1;
  const DataPlaneResult narrow = run_with(inst, options);
  options.window_rounds = 8;
  const DataPlaneResult wide = run_with(inst, options);
  options.window_rounds = 50;
  const DataPlaneResult whole = run_with(inst, options);
  expect_bitwise_equal(narrow, wide, "W=1 vs W=8");
  expect_bitwise_equal(narrow, whole, "W=1 vs W=50");
}

/// A budget that dies mid-run truncates both engines at the same round.
TEST(DesEngine, BudgetTruncationParity) {
  const Instance inst = make_instance(33);
  DataPlaneOptions options;
  options.rounds = 200;
  options.repair = RepairMode::kNone;
  options.window_rounds = 8;

  Budget legacy_budget;
  legacy_budget.set_work_limit(37);
  options.budget = &legacy_budget;
  options.engine = DataPlaneEngine::kLegacy;
  const DataPlaneResult legacy = run_with(inst, options);

  Budget des_budget;
  des_budget.set_work_limit(37);
  options.budget = &des_budget;
  options.engine = DataPlaneEngine::kDes;
  const DataPlaneResult des = run_with(inst, options);

  EXPECT_EQ(legacy.rounds, 37);
  expect_bitwise_equal(legacy, des, "budget=37");
  EXPECT_EQ(legacy_budget.used(), des_budget.used());
}

/// The periodic flush writes a parseable snapshot and counts itself.
TEST(DesEngine, MetricsFlushWritesSnapshots) {
  const Instance inst = make_instance(2);
  const std::string path = ::testing::TempDir() + "des_flush_metrics.json";
  DataPlaneOptions options;
  options.rounds = 32;
  options.repair = RepairMode::kNone;
  options.engine = DataPlaneEngine::kDes;
  options.window_rounds = 4;
  options.metrics_flush_every = 2;  // every other window -> 4 snapshots
  options.metrics_flush_path = path;

  const long long before = metrics::counter("dataplane.metrics_flushes").value();
  (void)run_with(inst, options);
  EXPECT_EQ(metrics::counter("dataplane.metrics_flushes").value() - before, 4);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"dataplane.events_processed\""), std::string::npos);
  EXPECT_NE(text.find("\"des.windows\""), std::string::npos);
  std::remove(path.c_str());
}

/// The DES instruments move: every (node, round) wakes exactly once in
/// the fused modes, and scheduled = seeds + processed.
TEST(DesEngine, EventAccounting) {
  const Instance inst = make_instance(8);
  DataPlaneOptions options;
  options.rounds = 20;
  options.repair = RepairMode::kNone;
  options.engine = DataPlaneEngine::kDes;
  const auto before = counter_snapshot(true);
  (void)run_with(inst, options);
  const long long processed =
      metrics::counter("dataplane.events_processed").value() -
      before[std::size(kSharedCounters) + 1];
  const long long scheduled =
      metrics::counter("dataplane.events_scheduled").value() -
      before[std::size(kSharedCounters)];
  const int n = inst.net.node_count();
  EXPECT_EQ(processed, static_cast<long long>(n) * options.rounds);
  EXPECT_EQ(scheduled, processed + n);
  EXPECT_GT(metrics::gauge("des.safe_time").value(), 0.0);
}

}  // namespace
}  // namespace mrlc::dist
