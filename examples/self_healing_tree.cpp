/// \file self_healing_tree.cpp
/// \brief The distributed updating protocol in action (Section VI): a
/// deployed network whose link qualities drift over time, with every node
/// maintaining the shared Prüfer code and repairing the tree locally.
///
/// The walkthrough narrates individual events: a tree link degrading (the
/// child re-parents via the Link-Getting-Worse scheme), a dormant link
/// recovering (ILU chases the improvement around the induced cycle), and
/// finally node deaths under *lossy* control floods, where the orphaned
/// subtrees reattach and the replicas re-converge via anti-entropy resync.

#include <iomanip>
#include <iostream>

#include "baselines/aaml.hpp"
#include "common/rng.hpp"
#include "core/ira.hpp"
#include "distributed/failure.hpp"
#include "distributed/simulator.hpp"
#include "prufer/codec.hpp"
#include "scenario/dfl.hpp"
#include "scenario/random_net.hpp"
#include "wsn/metrics.hpp"

namespace {

void print_code(const mrlc::prufer::Code& code) {
  std::cout << "(";
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::cout << (i == 0 ? "" : ", ") << code[i];
  }
  std::cout << ")";
}

}  // namespace

int main() {
  using namespace mrlc;

  // --- Build and solve the initial deployment. ---------------------------
  scenario::DflSystem sys = scenario::make_dfl_system();
  const baselines::AamlResult aaml =
      baselines::aaml(scenario::filter_links(sys.network, 0.95));
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IraResult initial =
      core::IterativeRelaxation(options).solve(sys.network, aaml.lifetime);

  dist::ProtocolSimulator protocol(sys.network, initial.tree, aaml.lifetime);
  std::cout << "initial tree: reliability " << std::setprecision(4)
            << initial.reliability << ", lifetime " << initial.lifetime
            << " rounds\nsink broadcasts Prüfer code ";
  print_code(protocol.maintainer().code());
  std::cout << " — all " << sys.network.node_count()
            << " replicas seeded (bootstrap flood: "
            << protocol.stats().flood_transmissions << " transmissions)\n\n";

  Rng rng(77);

  // --- Event 1: a tree link turns bad. ------------------------------------
  const auto tree_edges = protocol.tree().edge_ids();
  const wsn::EdgeId victim = tree_edges[tree_edges.size() / 2];
  const graph::Edge& ve = sys.network.topology().edge(victim);
  std::cout << "EVENT: link (" << ve.u << ", " << ve.v << ") degrades "
            << sys.network.link_prr(victim) << " -> 0.40\n";
  sys.network.set_link_prr(victim, 0.40);
  if (protocol.on_link_degraded(sys.network, victim)) {
    std::cout << "  child re-parented via the Link-Getting-Worse scheme; new code ";
    print_code(protocol.maintainer().code());
    std::cout << "\n  (" << protocol.stats().transmissions_per_event.back()
              << " flood transmissions; replicas consistent: "
              << (protocol.replicas_consistent() ? "yes" : "NO") << ")\n";
  } else {
    std::cout << "  no better reconnection available; tree kept\n";
  }

  // --- Event 2: a dormant link recovers. ----------------------------------
  // Find a non-tree link and make it excellent.
  std::vector<bool> in_tree(static_cast<std::size_t>(sys.network.link_count()), false);
  for (wsn::EdgeId id : protocol.tree().edge_ids()) {
    in_tree[static_cast<std::size_t>(id)] = true;
  }
  for (wsn::EdgeId id = 0; id < sys.network.link_count(); ++id) {
    if (in_tree[static_cast<std::size_t>(id)]) continue;
    if (sys.network.link_prr(id) > 0.9) continue;
    const graph::Edge& e = sys.network.topology().edge(id);
    std::cout << "\nEVENT: dormant link (" << e.u << ", " << e.v << ") recovers "
              << sys.network.link_prr(id) << " -> 0.997\n";
    sys.network.set_link_prr(id, 0.997);
    if (protocol.on_link_improved(sys.network, id)) {
      std::cout << "  ILU adopted it (possibly displacing a chain of links); new code ";
      print_code(protocol.maintainer().code());
      std::cout << '\n';
    } else {
      std::cout << "  ILU found no profitable swap (lifetime budget or cost)\n";
    }
    break;
  }

  // --- Long-run churn. -----------------------------------------------------
  std::cout << "\nrunning 200 churn events (random degradations + recoveries)...\n";
  for (int event = 0; event < 200; ++event) {
    const wsn::EdgeId link =
        static_cast<wsn::EdgeId>(rng.uniform_int(0, sys.network.link_count() - 1));
    if (rng.bernoulli(0.5)) {
      sys.network.set_link_prr(link,
                               std::max(0.05, sys.network.link_prr(link) * 0.8));
      protocol.on_link_degraded(sys.network, link);
    } else {
      sys.network.set_link_prr(link,
                               std::min(0.997, sys.network.link_prr(link) * 1.15));
      protocol.on_link_improved(sys.network, link);
    }
  }
  const auto& stats = protocol.maintainer().stats();
  const double reliability = wsn::tree_reliability(sys.network, protocol.tree());
  const double lifetime = wsn::network_lifetime(sys.network, protocol.tree());
  std::cout << "after churn: reliability " << reliability << ", lifetime " << lifetime
            << " rounds (constraint " << protocol.maintainer().lifetime_bound()
            << ": "
            << (lifetime >= protocol.maintainer().lifetime_bound() ? "still met"
                                                                   : "violated")
            << ")\n"
            << "protocol work: " << stats.updates_applied << " updates over "
            << stats.degradation_events + stats.improvement_events << " events, "
            << protocol.stats().flood_transmissions
            << " flood transmissions total; replicas consistent: "
            << (protocol.replicas_consistent() ? "yes" : "NO") << '\n';

  // --- Node failures under lossy control floods. ---------------------------
  // A fresh G(30, 0.15) deployment where control packets themselves are
  // dropped with the link's PRR: floods retransmit, and gaps left by lost
  // deliveries are closed by digest beacons + anti-entropy pulls.
  std::cout << "\n--- node failures, lossy control plane ---\n";
  Rng net_rng(4242);
  scenario::RandomNetworkConfig net_config;
  net_config.node_count = 30;
  net_config.link_probability = 0.15;
  net_config.prr_min = 0.6;
  net_config.prr_max = 0.99;
  wsn::Network net = scenario::make_random_network(net_config, net_rng);
  const double bound = net.energy_model().node_lifetime(3000.0, 8);
  const core::IraResult start = core::IterativeRelaxation(options).solve(net, bound);

  dist::FloodOptions flood;
  flood.lossy = true;
  flood.control_retx = 2;
  flood.seed = 4243;
  dist::ProtocolSimulator lossy(net, start.tree, bound, {}, flood);

  Rng fault_rng(4244);
  const dist::FailureSchedule schedule =
      dist::random_crash_schedule(net, 3, 500.0, fault_rng);
  for (const dist::FailureEvent& event : schedule.events) {
    std::cout << "EVENT: node " << event.node << " dies at t=" << std::fixed
              << std::setprecision(1) << event.time << '\n' << std::defaultfloat
              << std::setprecision(4);
    const dist::RepairOutcome outcome = lossy.on_node_failed(net, event.node);
    switch (outcome.status) {
      case dist::RepairStatus::kHealed:
        std::cout << "  healed: " << outcome.reattached_subtrees
                  << " orphaned subtree(s) reattached";
        break;
      case dist::RepairStatus::kHealedDegraded:
        std::cout << "  healed with a relaxed lifetime bound ("
                  << outcome.effective_bound << " rounds)";
        break;
      case dist::RepairStatus::kPartitioned:
        std::cout << "  PARTITIONED: " << outcome.detached.size()
                  << " node(s) unreachable under the bound";
        break;
    }
    std::cout << " (" << outcome.cascade_moves << " cascade moves)\n";
  }
  const dist::SimulatorStats& lstats = lossy.stats();
  std::cout << "lossy control plane: " << lstats.control_messages()
            << " messages (" << lstats.flood_transmissions << " flood, "
            << lstats.digest_beacons << " digest, "
            << lstats.resync_requests + lstats.resync_responses << " resync), "
            << lstats.flood_deliveries_missed << " deliveries lost, "
            << lstats.resync_rounds << " anti-entropy rounds\n"
            << "replicas consistent after resync: "
            << (lossy.replicas_consistent() ? "yes" : "NO") << '\n';
  return 0;
}
