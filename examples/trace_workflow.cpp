/// \file trace_workflow.cpp
/// \brief Working from collected traces: the file-based workflow that the
/// `mrlc_gen` / `mrlc_solve` CLI tools automate, shown via the library API.
///
/// A deployment team typically (1) surveys the site and records link
/// qualities, (2) plans the tree offline, (3) ships the plan to the sink.
/// This example round-trips all three steps through the plain-text
/// formats (`wsn/io.hpp`), using the one-call `MrlcSolver` facade with
/// exact certification.

#include <iostream>
#include <sstream>

#include "core/solver.hpp"
#include "scenario/dfl.hpp"
#include "wsn/io.hpp"
#include "wsn/metrics.hpp"

int main() {
  using namespace mrlc;

  // --- 1. Site survey: here synthesized; in the field, a beacon sweep. ---
  const scenario::DflSystem sys = scenario::make_dfl_system();
  const std::string survey_file = wsn::network_to_string(sys.network);
  std::cout << "survey file (" << survey_file.size() << " bytes, "
            << sys.network.link_count() << " links); first lines:\n";
  std::istringstream preview(survey_file);
  std::string line;
  for (int i = 0; i < 4 && std::getline(preview, line); ++i) {
    std::cout << "    " << line << '\n';
  }

  // --- 2. Offline planning: parse, probe, solve, certify. ----------------
  const wsn::Network net = wsn::network_from_string(survey_file);
  const core::LifetimeBracket achievable = core::bracket_max_lifetime(net);
  std::cout << "\nachievable lifetime: [" << achievable.lower << ", "
            << achievable.upper << "] rounds\n";

  const double requirement = achievable.lower * 0.4;  // healthy margin
  core::SolverOptions options;
  options.certify_with_exact = true;
  const core::SolveReport report = core::MrlcSolver(options).solve(net, requirement);
  std::cout << "requirement " << requirement << " rounds -> " << report.narrative
            << '\n';
  if (report.optimality_gap.has_value()) {
    std::cout << "certified against branch-and-bound: gap = "
              << *report.optimality_gap << " nats"
              << (*report.optimality_gap < 1e-9 ? " (provably optimal)" : "")
              << '\n';
  }

  // --- 3. Ship the plan: serialize the tree, reload it sink-side. --------
  const std::string plan_file = wsn::tree_to_string(report.result.tree);
  const wsn::AggregationTree deployed = wsn::tree_from_string(plan_file, net);
  std::cout << "\nplan file round-trip: "
            << (deployed.parents() == report.result.tree.parents() ? "intact"
                                                                   : "CORRUPTED")
            << "; deployed tree reliability "
            << wsn::tree_reliability(net, deployed) << '\n';
  return 0;
}
