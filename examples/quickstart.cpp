/// \file quickstart.cpp
/// \brief Five-minute tour of the public API: describe a network, solve
/// MRLC with IRA, inspect the resulting aggregation tree.
///
/// The instance is the paper's own toy example (Fig. 4): a sink and five
/// sensors with a mix of perfect and flaky links.

#include <iostream>

#include "core/ira.hpp"
#include "wsn/metrics.hpp"
#include "wsn/network.hpp"

int main() {
  using namespace mrlc;

  // 1. Describe the WSN: node count, sink id, per-link packet reception
  //    ratios, per-node battery energy (defaults to 3000 J / two AAs).
  wsn::Network net(/*node_count=*/6, /*sink=*/0);
  net.add_link(1, 0, 1.0);
  net.add_link(4, 0, 0.8);
  net.add_link(5, 0, 1.0);
  net.add_link(2, 4, 0.5);
  net.add_link(3, 4, 0.9);
  net.add_link(2, 3, 0.9);

  // 2. Pick the lifetime the deployment must survive (in aggregation
  //    rounds) and run the Iterative Relaxation Algorithm.
  const double required_rounds = 2.0e6;
  const core::IraResult result = core::IterativeRelaxation().solve(net, required_rounds);

  // 3. Inspect the tree.
  std::cout << "aggregation tree (child -> parent):\n";
  for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
    if (v == result.tree.root()) continue;
    std::cout << "  " << v << " -> " << result.tree.parent(v)
              << "  (link PRR " << net.link_prr(result.tree.parent_edge(v)) << ")\n";
  }
  std::cout << "reliability Q(T): " << result.reliability << '\n'
            << "cost C(T) = -ln Q(T): " << result.cost << '\n'
            << "network lifetime: " << result.lifetime << " rounds"
            << " (required " << required_rounds << ")\n"
            << "bound satisfied: " << (result.meets_bound ? "yes" : "no") << '\n';

  // 4. The solver reports InfeasibleError if no tree can meet the bound:
  try {
    core::IterativeRelaxation().solve(net, 1.0e7);
  } catch (const InfeasibleError& e) {
    std::cout << "as expected, a 1e7-round bound is infeasible: " << e.what() << '\n';
  }
  return 0;
}
