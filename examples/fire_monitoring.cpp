/// \file fire_monitoring.cpp
/// \brief Time-critical monitoring scenario from the paper's introduction:
/// fire monitoring disables retransmissions and ACKs (stale data is
/// useless), so per-round delivery probability is exactly the tree
/// reliability Q(T) — and the deployment still has to survive a whole dry
/// season on one battery set.
///
/// This example sizes the lifetime constraint from mission requirements,
/// solves MRLC on a 32-node random deployment, and quantifies what the
/// reliability gain means in missed-alarm terms.

#include <cmath>
#include <iostream>

#include "baselines/aaml.hpp"
#include "baselines/mst_baseline.hpp"
#include "common/rng.hpp"
#include "core/ira.hpp"
#include "scenario/random_net.hpp"
#include "wsn/metrics.hpp"

int main() {
  using namespace mrlc;

  // --- Deployment: 32 sensors, mixed-quality links. ---------------------
  Rng rng(2026);
  scenario::RandomNetworkConfig config;
  config.node_count = 32;
  config.link_probability = 0.3;
  config.prr_min = 0.7;       // forest links are worse than testbed links
  config.prr_max = 1.0;
  config.energy_min_j = 800;  // the deployment is half-depleted and uneven
  config.energy_max_j = 3000;
  const wsn::Network net = scenario::make_random_network(config, rng);

  // --- Mission: 9 months of sensing at one reading per 10 seconds. ------
  const double rounds_per_day = 24.0 * 3600.0 / 10.0;
  const double mission_rounds = rounds_per_day * 274.0;
  std::cout << "fire-monitoring mission: 9 months at 0.1 Hz = " << mission_rounds
            << " aggregation rounds\n\n";

  // --- Solve. ------------------------------------------------------------
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IraResult ira =
      core::IterativeRelaxation(options).solve(net, mission_rounds);
  const baselines::AamlResult aaml = baselines::aaml(net);
  const baselines::MstResult mst = baselines::mst_baseline(net);

  auto report = [&](const char* name, double reliability, double lifetime) {
    // With no retransmissions, a reading is seen within k rounds with
    // probability 1 - (1 - Q)^k; report rounds-to-99% as detection latency.
    const double rounds_to_99 =
        std::log(0.01) / std::log(std::max(1e-12, 1.0 - reliability));
    std::cout << "  " << name << ": Q(T) = " << reliability
              << ", lifetime = " << lifetime / rounds_per_day << " days"
              << ", rounds until a fire is seen w.p. 99%: " << rounds_to_99 << '\n';
  };
  std::cout << "candidate trees:\n";
  report("IRA  (mission-constrained)", ira.reliability, ira.lifetime);
  report("AAML (lifetime only)      ", aaml.reliability, aaml.lifetime);
  report("MST  (reliability only)   ", mst.reliability, mst.lifetime);

  std::cout << "\nmission check for IRA: lifetime covers "
            << ira.lifetime / mission_rounds << "x the mission ("
            << (ira.meets_bound ? "constraint met" : "constraint violated") << ")\n";

  // --- Stretch mission: what if command extends the deployment? ---------
  // Beyond the achievable lifetime the solver degrades predictably: the
  // direct relaxation reports how far the best tree falls short (never
  // more than two children per node beyond the cap), instead of silently
  // shipping a tree that dies early.
  const double stretch_rounds = rounds_per_day * 420.0;
  std::cout << "\nstretch mission (14 months = " << stretch_rounds << " rounds):\n";
  try {
    const core::IraResult stretch =
        core::IterativeRelaxation(options).solve(net, stretch_rounds);
    std::cout << "  best tree survives " << stretch.lifetime / rounds_per_day
              << " days (" << (stretch.meets_bound
                                   ? "mission met"
                                   : "short of the mission — reported, not hidden")
              << "), Q(T) = " << stretch.reliability << "\n";
  } catch (const InfeasibleError& e) {
    std::cout << "  solver proved it impossible: " << e.what() << "\n";
  }
  return 0;
}
