/// \file dfl_monitoring.cpp
/// \brief Device-free-localization deployment walkthrough (the paper's own
/// evaluation scenario): synthesize the 16-tripod testbed, estimate link
/// qualities from beacons, compare tree-construction strategies, and
/// validate the chosen tree with packet-level simulation.

#include <iostream>

#include "baselines/aaml.hpp"
#include "baselines/mst_baseline.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/ira.hpp"
#include "radio/packet_sim.hpp"
#include "scenario/dfl.hpp"
#include "scenario/random_net.hpp"
#include "wsn/metrics.hpp"

int main() {
  using namespace mrlc;

  // --- Deploy the testbed and estimate link qualities from beacons. -----
  const scenario::DflSystem sys = scenario::make_dfl_system();
  std::cout << "DFL testbed: " << sys.network.node_count()
            << " tripods on a 3.6 m square, " << sys.network.link_count()
            << " usable links (PRR estimated from 1000 beacon rounds)\n\n";

  // --- Candidate trees. -------------------------------------------------
  // AAML ignores link quality, so (as in the paper) it gets the graph with
  // links below 0.95 PRR filtered out.
  const baselines::AamlResult aaml =
      baselines::aaml(scenario::filter_links(sys.network, 0.95));
  const baselines::MstResult mst = baselines::mst_baseline(sys.network);
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  const core::IraResult ira =
      core::IterativeRelaxation(options).solve(sys.network, aaml.lifetime);

  Table table({"strategy", "reliability", "lifetime_rounds", "battery_years@1Hz"});
  auto years = [](double rounds) { return rounds / (3600.0 * 24.0 * 365.0); };
  table.begin_row().add("AAML (lifetime only)").add(aaml.reliability, 3)
      .add(aaml.lifetime, 0).add(years(aaml.lifetime), 2);
  table.begin_row().add("MST (reliability only)").add(mst.reliability, 3)
      .add(mst.lifetime, 0).add(years(mst.lifetime), 2);
  table.begin_row().add("IRA (both)").add(ira.reliability, 3)
      .add(ira.lifetime, 0).add(years(ira.lifetime), 2);
  table.print(std::cout);

  // --- Validate the IRA tree with a packet-level simulation. ------------
  Rng rng(99);
  const radio::AggregateResult sim =
      radio::simulate_rounds(sys.network, ira.tree, radio::RetxPolicy{}, 50000, rng);
  std::cout << "\npacket-level check of the IRA tree over 50k rounds:\n"
            << "  complete rounds: " << sim.round_success_ratio * 100.0
            << "% (analytic Q(T) = " << ira.reliability * 100.0 << "%)\n"
            << "  avg readings delivered per round: " << sim.avg_readings_delivered
            << " of " << sys.network.node_count() << '\n';

  std::cout << "\nIRA keeps AAML's lifetime while matching MST-class "
               "reliability — the paper's core claim.\n";
  return 0;
}
