file(REMOVE_RECURSE
  "CMakeFiles/dfl_monitoring.dir/dfl_monitoring.cpp.o"
  "CMakeFiles/dfl_monitoring.dir/dfl_monitoring.cpp.o.d"
  "dfl_monitoring"
  "dfl_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfl_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
