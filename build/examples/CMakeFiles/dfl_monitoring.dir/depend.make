# Empty dependencies file for dfl_monitoring.
# This may be replaced when dependencies are built.
