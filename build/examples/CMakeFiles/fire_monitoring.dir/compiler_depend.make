# Empty compiler generated dependencies file for fire_monitoring.
# This may be replaced when dependencies are built.
