file(REMOVE_RECURSE
  "CMakeFiles/fire_monitoring.dir/fire_monitoring.cpp.o"
  "CMakeFiles/fire_monitoring.dir/fire_monitoring.cpp.o.d"
  "fire_monitoring"
  "fire_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fire_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
