# Empty compiler generated dependencies file for self_healing_tree.
# This may be replaced when dependencies are built.
