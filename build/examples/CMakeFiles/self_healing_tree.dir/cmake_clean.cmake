file(REMOVE_RECURSE
  "CMakeFiles/self_healing_tree.dir/self_healing_tree.cpp.o"
  "CMakeFiles/self_healing_tree.dir/self_healing_tree.cpp.o.d"
  "self_healing_tree"
  "self_healing_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_healing_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
