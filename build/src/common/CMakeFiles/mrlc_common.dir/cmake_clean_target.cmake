file(REMOVE_RECURSE
  "libmrlc_common.a"
)
