# Empty compiler generated dependencies file for mrlc_common.
# This may be replaced when dependencies are built.
