file(REMOVE_RECURSE
  "CMakeFiles/mrlc_common.dir/rng.cpp.o"
  "CMakeFiles/mrlc_common.dir/rng.cpp.o.d"
  "CMakeFiles/mrlc_common.dir/statistics.cpp.o"
  "CMakeFiles/mrlc_common.dir/statistics.cpp.o.d"
  "CMakeFiles/mrlc_common.dir/table.cpp.o"
  "CMakeFiles/mrlc_common.dir/table.cpp.o.d"
  "libmrlc_common.a"
  "libmrlc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
