# Empty dependencies file for mrlc_lp.
# This may be replaced when dependencies are built.
