file(REMOVE_RECURSE
  "libmrlc_lp.a"
)
