file(REMOVE_RECURSE
  "CMakeFiles/mrlc_lp.dir/model.cpp.o"
  "CMakeFiles/mrlc_lp.dir/model.cpp.o.d"
  "CMakeFiles/mrlc_lp.dir/simplex.cpp.o"
  "CMakeFiles/mrlc_lp.dir/simplex.cpp.o.d"
  "libmrlc_lp.a"
  "libmrlc_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
