
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/branch_bound.cpp" "src/core/CMakeFiles/mrlc_core.dir/branch_bound.cpp.o" "gcc" "src/core/CMakeFiles/mrlc_core.dir/branch_bound.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/core/CMakeFiles/mrlc_core.dir/exact.cpp.o" "gcc" "src/core/CMakeFiles/mrlc_core.dir/exact.cpp.o.d"
  "/root/repo/src/core/feasibility.cpp" "src/core/CMakeFiles/mrlc_core.dir/feasibility.cpp.o" "gcc" "src/core/CMakeFiles/mrlc_core.dir/feasibility.cpp.o.d"
  "/root/repo/src/core/ira.cpp" "src/core/CMakeFiles/mrlc_core.dir/ira.cpp.o" "gcc" "src/core/CMakeFiles/mrlc_core.dir/ira.cpp.o.d"
  "/root/repo/src/core/lp_formulation.cpp" "src/core/CMakeFiles/mrlc_core.dir/lp_formulation.cpp.o" "gcc" "src/core/CMakeFiles/mrlc_core.dir/lp_formulation.cpp.o.d"
  "/root/repo/src/core/retx_ira.cpp" "src/core/CMakeFiles/mrlc_core.dir/retx_ira.cpp.o" "gcc" "src/core/CMakeFiles/mrlc_core.dir/retx_ira.cpp.o.d"
  "/root/repo/src/core/separation.cpp" "src/core/CMakeFiles/mrlc_core.dir/separation.cpp.o" "gcc" "src/core/CMakeFiles/mrlc_core.dir/separation.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/mrlc_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/mrlc_core.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrlc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mrlc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mrlc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/wsn/CMakeFiles/mrlc_wsn.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mrlc_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
