file(REMOVE_RECURSE
  "libmrlc_core.a"
)
