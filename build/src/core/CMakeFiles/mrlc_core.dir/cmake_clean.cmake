file(REMOVE_RECURSE
  "CMakeFiles/mrlc_core.dir/branch_bound.cpp.o"
  "CMakeFiles/mrlc_core.dir/branch_bound.cpp.o.d"
  "CMakeFiles/mrlc_core.dir/exact.cpp.o"
  "CMakeFiles/mrlc_core.dir/exact.cpp.o.d"
  "CMakeFiles/mrlc_core.dir/feasibility.cpp.o"
  "CMakeFiles/mrlc_core.dir/feasibility.cpp.o.d"
  "CMakeFiles/mrlc_core.dir/ira.cpp.o"
  "CMakeFiles/mrlc_core.dir/ira.cpp.o.d"
  "CMakeFiles/mrlc_core.dir/lp_formulation.cpp.o"
  "CMakeFiles/mrlc_core.dir/lp_formulation.cpp.o.d"
  "CMakeFiles/mrlc_core.dir/retx_ira.cpp.o"
  "CMakeFiles/mrlc_core.dir/retx_ira.cpp.o.d"
  "CMakeFiles/mrlc_core.dir/separation.cpp.o"
  "CMakeFiles/mrlc_core.dir/separation.cpp.o.d"
  "CMakeFiles/mrlc_core.dir/solver.cpp.o"
  "CMakeFiles/mrlc_core.dir/solver.cpp.o.d"
  "libmrlc_core.a"
  "libmrlc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
