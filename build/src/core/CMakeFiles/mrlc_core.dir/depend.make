# Empty dependencies file for mrlc_core.
# This may be replaced when dependencies are built.
