# Empty compiler generated dependencies file for mrlc_distributed.
# This may be replaced when dependencies are built.
