file(REMOVE_RECURSE
  "CMakeFiles/mrlc_distributed.dir/churn.cpp.o"
  "CMakeFiles/mrlc_distributed.dir/churn.cpp.o.d"
  "CMakeFiles/mrlc_distributed.dir/maintainer.cpp.o"
  "CMakeFiles/mrlc_distributed.dir/maintainer.cpp.o.d"
  "CMakeFiles/mrlc_distributed.dir/simulator.cpp.o"
  "CMakeFiles/mrlc_distributed.dir/simulator.cpp.o.d"
  "libmrlc_distributed.a"
  "libmrlc_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
