file(REMOVE_RECURSE
  "libmrlc_distributed.a"
)
