# Empty compiler generated dependencies file for mrlc_scenario.
# This may be replaced when dependencies are built.
