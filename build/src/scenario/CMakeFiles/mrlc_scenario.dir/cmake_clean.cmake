file(REMOVE_RECURSE
  "CMakeFiles/mrlc_scenario.dir/dfl.cpp.o"
  "CMakeFiles/mrlc_scenario.dir/dfl.cpp.o.d"
  "CMakeFiles/mrlc_scenario.dir/random_net.cpp.o"
  "CMakeFiles/mrlc_scenario.dir/random_net.cpp.o.d"
  "libmrlc_scenario.a"
  "libmrlc_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
