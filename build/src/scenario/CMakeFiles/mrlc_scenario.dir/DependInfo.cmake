
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scenario/dfl.cpp" "src/scenario/CMakeFiles/mrlc_scenario.dir/dfl.cpp.o" "gcc" "src/scenario/CMakeFiles/mrlc_scenario.dir/dfl.cpp.o.d"
  "/root/repo/src/scenario/random_net.cpp" "src/scenario/CMakeFiles/mrlc_scenario.dir/random_net.cpp.o" "gcc" "src/scenario/CMakeFiles/mrlc_scenario.dir/random_net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrlc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wsn/CMakeFiles/mrlc_wsn.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/mrlc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mrlc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
