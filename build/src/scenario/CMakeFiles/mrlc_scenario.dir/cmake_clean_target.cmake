file(REMOVE_RECURSE
  "libmrlc_scenario.a"
)
