file(REMOVE_RECURSE
  "libmrlc_baselines.a"
)
