
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aaml.cpp" "src/baselines/CMakeFiles/mrlc_baselines.dir/aaml.cpp.o" "gcc" "src/baselines/CMakeFiles/mrlc_baselines.dir/aaml.cpp.o.d"
  "/root/repo/src/baselines/etx_spt.cpp" "src/baselines/CMakeFiles/mrlc_baselines.dir/etx_spt.cpp.o" "gcc" "src/baselines/CMakeFiles/mrlc_baselines.dir/etx_spt.cpp.o.d"
  "/root/repo/src/baselines/greedy_mrlc.cpp" "src/baselines/CMakeFiles/mrlc_baselines.dir/greedy_mrlc.cpp.o" "gcc" "src/baselines/CMakeFiles/mrlc_baselines.dir/greedy_mrlc.cpp.o.d"
  "/root/repo/src/baselines/mst_baseline.cpp" "src/baselines/CMakeFiles/mrlc_baselines.dir/mst_baseline.cpp.o" "gcc" "src/baselines/CMakeFiles/mrlc_baselines.dir/mst_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrlc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mrlc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/wsn/CMakeFiles/mrlc_wsn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
