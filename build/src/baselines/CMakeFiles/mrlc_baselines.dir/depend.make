# Empty dependencies file for mrlc_baselines.
# This may be replaced when dependencies are built.
