file(REMOVE_RECURSE
  "CMakeFiles/mrlc_baselines.dir/aaml.cpp.o"
  "CMakeFiles/mrlc_baselines.dir/aaml.cpp.o.d"
  "CMakeFiles/mrlc_baselines.dir/etx_spt.cpp.o"
  "CMakeFiles/mrlc_baselines.dir/etx_spt.cpp.o.d"
  "CMakeFiles/mrlc_baselines.dir/greedy_mrlc.cpp.o"
  "CMakeFiles/mrlc_baselines.dir/greedy_mrlc.cpp.o.d"
  "CMakeFiles/mrlc_baselines.dir/mst_baseline.cpp.o"
  "CMakeFiles/mrlc_baselines.dir/mst_baseline.cpp.o.d"
  "libmrlc_baselines.a"
  "libmrlc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
