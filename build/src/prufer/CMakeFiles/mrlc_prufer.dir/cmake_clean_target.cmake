file(REMOVE_RECURSE
  "libmrlc_prufer.a"
)
