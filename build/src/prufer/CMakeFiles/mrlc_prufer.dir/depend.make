# Empty dependencies file for mrlc_prufer.
# This may be replaced when dependencies are built.
