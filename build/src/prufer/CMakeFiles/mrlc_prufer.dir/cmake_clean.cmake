file(REMOVE_RECURSE
  "CMakeFiles/mrlc_prufer.dir/codec.cpp.o"
  "CMakeFiles/mrlc_prufer.dir/codec.cpp.o.d"
  "CMakeFiles/mrlc_prufer.dir/updates.cpp.o"
  "CMakeFiles/mrlc_prufer.dir/updates.cpp.o.d"
  "libmrlc_prufer.a"
  "libmrlc_prufer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_prufer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
