
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dsu.cpp" "src/graph/CMakeFiles/mrlc_graph.dir/dsu.cpp.o" "gcc" "src/graph/CMakeFiles/mrlc_graph.dir/dsu.cpp.o.d"
  "/root/repo/src/graph/enumeration.cpp" "src/graph/CMakeFiles/mrlc_graph.dir/enumeration.cpp.o" "gcc" "src/graph/CMakeFiles/mrlc_graph.dir/enumeration.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/mrlc_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/mrlc_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/kirchhoff.cpp" "src/graph/CMakeFiles/mrlc_graph.dir/kirchhoff.cpp.o" "gcc" "src/graph/CMakeFiles/mrlc_graph.dir/kirchhoff.cpp.o.d"
  "/root/repo/src/graph/maxflow.cpp" "src/graph/CMakeFiles/mrlc_graph.dir/maxflow.cpp.o" "gcc" "src/graph/CMakeFiles/mrlc_graph.dir/maxflow.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "src/graph/CMakeFiles/mrlc_graph.dir/mst.cpp.o" "gcc" "src/graph/CMakeFiles/mrlc_graph.dir/mst.cpp.o.d"
  "/root/repo/src/graph/shortest_path.cpp" "src/graph/CMakeFiles/mrlc_graph.dir/shortest_path.cpp.o" "gcc" "src/graph/CMakeFiles/mrlc_graph.dir/shortest_path.cpp.o.d"
  "/root/repo/src/graph/traversal.cpp" "src/graph/CMakeFiles/mrlc_graph.dir/traversal.cpp.o" "gcc" "src/graph/CMakeFiles/mrlc_graph.dir/traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrlc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
