# Empty compiler generated dependencies file for mrlc_graph.
# This may be replaced when dependencies are built.
