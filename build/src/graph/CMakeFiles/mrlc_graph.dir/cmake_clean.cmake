file(REMOVE_RECURSE
  "CMakeFiles/mrlc_graph.dir/dsu.cpp.o"
  "CMakeFiles/mrlc_graph.dir/dsu.cpp.o.d"
  "CMakeFiles/mrlc_graph.dir/enumeration.cpp.o"
  "CMakeFiles/mrlc_graph.dir/enumeration.cpp.o.d"
  "CMakeFiles/mrlc_graph.dir/graph.cpp.o"
  "CMakeFiles/mrlc_graph.dir/graph.cpp.o.d"
  "CMakeFiles/mrlc_graph.dir/kirchhoff.cpp.o"
  "CMakeFiles/mrlc_graph.dir/kirchhoff.cpp.o.d"
  "CMakeFiles/mrlc_graph.dir/maxflow.cpp.o"
  "CMakeFiles/mrlc_graph.dir/maxflow.cpp.o.d"
  "CMakeFiles/mrlc_graph.dir/mst.cpp.o"
  "CMakeFiles/mrlc_graph.dir/mst.cpp.o.d"
  "CMakeFiles/mrlc_graph.dir/shortest_path.cpp.o"
  "CMakeFiles/mrlc_graph.dir/shortest_path.cpp.o.d"
  "CMakeFiles/mrlc_graph.dir/traversal.cpp.o"
  "CMakeFiles/mrlc_graph.dir/traversal.cpp.o.d"
  "libmrlc_graph.a"
  "libmrlc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
