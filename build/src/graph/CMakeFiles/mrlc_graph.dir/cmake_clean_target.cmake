file(REMOVE_RECURSE
  "libmrlc_graph.a"
)
