
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/depletion_sim.cpp" "src/radio/CMakeFiles/mrlc_radio.dir/depletion_sim.cpp.o" "gcc" "src/radio/CMakeFiles/mrlc_radio.dir/depletion_sim.cpp.o.d"
  "/root/repo/src/radio/packet_sim.cpp" "src/radio/CMakeFiles/mrlc_radio.dir/packet_sim.cpp.o" "gcc" "src/radio/CMakeFiles/mrlc_radio.dir/packet_sim.cpp.o.d"
  "/root/repo/src/radio/power_trace.cpp" "src/radio/CMakeFiles/mrlc_radio.dir/power_trace.cpp.o" "gcc" "src/radio/CMakeFiles/mrlc_radio.dir/power_trace.cpp.o.d"
  "/root/repo/src/radio/propagation.cpp" "src/radio/CMakeFiles/mrlc_radio.dir/propagation.cpp.o" "gcc" "src/radio/CMakeFiles/mrlc_radio.dir/propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrlc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wsn/CMakeFiles/mrlc_wsn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mrlc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
