file(REMOVE_RECURSE
  "CMakeFiles/mrlc_radio.dir/depletion_sim.cpp.o"
  "CMakeFiles/mrlc_radio.dir/depletion_sim.cpp.o.d"
  "CMakeFiles/mrlc_radio.dir/packet_sim.cpp.o"
  "CMakeFiles/mrlc_radio.dir/packet_sim.cpp.o.d"
  "CMakeFiles/mrlc_radio.dir/power_trace.cpp.o"
  "CMakeFiles/mrlc_radio.dir/power_trace.cpp.o.d"
  "CMakeFiles/mrlc_radio.dir/propagation.cpp.o"
  "CMakeFiles/mrlc_radio.dir/propagation.cpp.o.d"
  "libmrlc_radio.a"
  "libmrlc_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
