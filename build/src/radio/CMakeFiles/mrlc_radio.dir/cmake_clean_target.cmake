file(REMOVE_RECURSE
  "libmrlc_radio.a"
)
