# Empty compiler generated dependencies file for mrlc_radio.
# This may be replaced when dependencies are built.
