file(REMOVE_RECURSE
  "libmrlc_wsn.a"
)
