# Empty dependencies file for mrlc_wsn.
# This may be replaced when dependencies are built.
