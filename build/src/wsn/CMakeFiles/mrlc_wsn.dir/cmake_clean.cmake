file(REMOVE_RECURSE
  "CMakeFiles/mrlc_wsn.dir/aggregation_tree.cpp.o"
  "CMakeFiles/mrlc_wsn.dir/aggregation_tree.cpp.o.d"
  "CMakeFiles/mrlc_wsn.dir/io.cpp.o"
  "CMakeFiles/mrlc_wsn.dir/io.cpp.o.d"
  "CMakeFiles/mrlc_wsn.dir/metrics.cpp.o"
  "CMakeFiles/mrlc_wsn.dir/metrics.cpp.o.d"
  "CMakeFiles/mrlc_wsn.dir/network.cpp.o"
  "CMakeFiles/mrlc_wsn.dir/network.cpp.o.d"
  "libmrlc_wsn.a"
  "libmrlc_wsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_wsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
