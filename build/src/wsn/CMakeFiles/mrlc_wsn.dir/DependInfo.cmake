
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsn/aggregation_tree.cpp" "src/wsn/CMakeFiles/mrlc_wsn.dir/aggregation_tree.cpp.o" "gcc" "src/wsn/CMakeFiles/mrlc_wsn.dir/aggregation_tree.cpp.o.d"
  "/root/repo/src/wsn/io.cpp" "src/wsn/CMakeFiles/mrlc_wsn.dir/io.cpp.o" "gcc" "src/wsn/CMakeFiles/mrlc_wsn.dir/io.cpp.o.d"
  "/root/repo/src/wsn/metrics.cpp" "src/wsn/CMakeFiles/mrlc_wsn.dir/metrics.cpp.o" "gcc" "src/wsn/CMakeFiles/mrlc_wsn.dir/metrics.cpp.o.d"
  "/root/repo/src/wsn/network.cpp" "src/wsn/CMakeFiles/mrlc_wsn.dir/network.cpp.o" "gcc" "src/wsn/CMakeFiles/mrlc_wsn.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrlc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mrlc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
