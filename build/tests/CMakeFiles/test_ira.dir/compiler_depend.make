# Empty compiler generated dependencies file for test_ira.
# This may be replaced when dependencies are built.
