file(REMOVE_RECURSE
  "CMakeFiles/test_ira.dir/ira_test.cpp.o"
  "CMakeFiles/test_ira.dir/ira_test.cpp.o.d"
  "test_ira"
  "test_ira.pdb"
  "test_ira[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ira.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
