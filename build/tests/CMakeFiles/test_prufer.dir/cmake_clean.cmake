file(REMOVE_RECURSE
  "CMakeFiles/test_prufer.dir/prufer_test.cpp.o"
  "CMakeFiles/test_prufer.dir/prufer_test.cpp.o.d"
  "test_prufer"
  "test_prufer.pdb"
  "test_prufer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prufer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
