# Empty compiler generated dependencies file for test_prufer.
# This may be replaced when dependencies are built.
