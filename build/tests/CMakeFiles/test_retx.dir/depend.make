# Empty dependencies file for test_retx.
# This may be replaced when dependencies are built.
