file(REMOVE_RECURSE
  "CMakeFiles/test_retx.dir/retx_test.cpp.o"
  "CMakeFiles/test_retx.dir/retx_test.cpp.o.d"
  "test_retx"
  "test_retx.pdb"
  "test_retx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
