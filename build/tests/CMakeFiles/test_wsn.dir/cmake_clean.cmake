file(REMOVE_RECURSE
  "CMakeFiles/test_wsn.dir/wsn_test.cpp.o"
  "CMakeFiles/test_wsn.dir/wsn_test.cpp.o.d"
  "test_wsn"
  "test_wsn.pdb"
  "test_wsn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
