# Empty dependencies file for test_wsn.
# This may be replaced when dependencies are built.
