# Empty compiler generated dependencies file for test_separation.
# This may be replaced when dependencies are built.
