file(REMOVE_RECURSE
  "CMakeFiles/test_separation.dir/separation_test.cpp.o"
  "CMakeFiles/test_separation.dir/separation_test.cpp.o.d"
  "test_separation"
  "test_separation.pdb"
  "test_separation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
