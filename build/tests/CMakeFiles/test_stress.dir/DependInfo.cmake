
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stress_test.cpp" "tests/CMakeFiles/test_stress.dir/stress_test.cpp.o" "gcc" "tests/CMakeFiles/test_stress.dir/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrlc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mrlc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mrlc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/wsn/CMakeFiles/mrlc_wsn.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/mrlc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mrlc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mrlc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/prufer/CMakeFiles/mrlc_prufer.dir/DependInfo.cmake"
  "/root/repo/build/src/distributed/CMakeFiles/mrlc_distributed.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/mrlc_scenario.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
