# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_wsn[1]_include.cmake")
include("/root/repo/build/tests/test_radio[1]_include.cmake")
include("/root/repo/build/tests/test_prufer[1]_include.cmake")
include("/root/repo/build/tests/test_separation[1]_include.cmake")
include("/root/repo/build/tests/test_ira[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_feasibility[1]_include.cmake")
include("/root/repo/build/tests/test_greedy[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_churn[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_retx[1]_include.cmake")
