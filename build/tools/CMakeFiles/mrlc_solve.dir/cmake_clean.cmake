file(REMOVE_RECURSE
  "CMakeFiles/mrlc_solve.dir/mrlc_solve.cpp.o"
  "CMakeFiles/mrlc_solve.dir/mrlc_solve.cpp.o.d"
  "mrlc_solve"
  "mrlc_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
