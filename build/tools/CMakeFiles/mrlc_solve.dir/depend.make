# Empty dependencies file for mrlc_solve.
# This may be replaced when dependencies are built.
