# Empty dependencies file for mrlc_gen.
# This may be replaced when dependencies are built.
