file(REMOVE_RECURSE
  "CMakeFiles/mrlc_gen.dir/mrlc_gen.cpp.o"
  "CMakeFiles/mrlc_gen.dir/mrlc_gen.cpp.o.d"
  "mrlc_gen"
  "mrlc_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlc_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
