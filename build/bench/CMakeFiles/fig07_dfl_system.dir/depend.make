# Empty dependencies file for fig07_dfl_system.
# This may be replaced when dependencies are built.
