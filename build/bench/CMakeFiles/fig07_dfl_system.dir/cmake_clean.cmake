file(REMOVE_RECURSE
  "CMakeFiles/fig07_dfl_system.dir/fig07_dfl_system.cpp.o"
  "CMakeFiles/fig07_dfl_system.dir/fig07_dfl_system.cpp.o.d"
  "fig07_dfl_system"
  "fig07_dfl_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dfl_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
