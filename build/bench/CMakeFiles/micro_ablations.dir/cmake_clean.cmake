file(REMOVE_RECURSE
  "CMakeFiles/micro_ablations.dir/micro_ablations.cpp.o"
  "CMakeFiles/micro_ablations.dir/micro_ablations.cpp.o.d"
  "micro_ablations"
  "micro_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
