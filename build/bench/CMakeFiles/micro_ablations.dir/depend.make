# Empty dependencies file for micro_ablations.
# This may be replaced when dependencies are built.
