# Empty dependencies file for fig01_retransmission_cost.
# This may be replaced when dependencies are built.
