file(REMOVE_RECURSE
  "CMakeFiles/fig01_retransmission_cost.dir/fig01_retransmission_cost.cpp.o"
  "CMakeFiles/fig01_retransmission_cost.dir/fig01_retransmission_cost.cpp.o.d"
  "fig01_retransmission_cost"
  "fig01_retransmission_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_retransmission_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
