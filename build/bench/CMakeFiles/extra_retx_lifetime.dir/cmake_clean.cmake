file(REMOVE_RECURSE
  "CMakeFiles/extra_retx_lifetime.dir/extra_retx_lifetime.cpp.o"
  "CMakeFiles/extra_retx_lifetime.dir/extra_retx_lifetime.cpp.o.d"
  "extra_retx_lifetime"
  "extra_retx_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_retx_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
