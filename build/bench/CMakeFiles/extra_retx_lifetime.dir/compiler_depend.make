# Empty compiler generated dependencies file for extra_retx_lifetime.
# This may be replaced when dependencies are built.
