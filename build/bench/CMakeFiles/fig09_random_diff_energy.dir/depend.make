# Empty dependencies file for fig09_random_diff_energy.
# This may be replaced when dependencies are built.
