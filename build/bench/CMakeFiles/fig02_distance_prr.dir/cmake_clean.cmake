file(REMOVE_RECURSE
  "CMakeFiles/fig02_distance_prr.dir/fig02_distance_prr.cpp.o"
  "CMakeFiles/fig02_distance_prr.dir/fig02_distance_prr.cpp.o.d"
  "fig02_distance_prr"
  "fig02_distance_prr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_distance_prr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
