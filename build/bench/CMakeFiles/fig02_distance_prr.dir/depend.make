# Empty dependencies file for fig02_distance_prr.
# This may be replaced when dependencies are built.
