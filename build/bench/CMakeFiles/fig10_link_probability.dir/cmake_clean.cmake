file(REMOVE_RECURSE
  "CMakeFiles/fig10_link_probability.dir/fig10_link_probability.cpp.o"
  "CMakeFiles/fig10_link_probability.dir/fig10_link_probability.cpp.o.d"
  "fig10_link_probability"
  "fig10_link_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_link_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
