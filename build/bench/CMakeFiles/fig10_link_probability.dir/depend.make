# Empty dependencies file for fig10_link_probability.
# This may be replaced when dependencies are built.
