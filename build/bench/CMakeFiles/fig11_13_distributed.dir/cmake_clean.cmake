file(REMOVE_RECURSE
  "CMakeFiles/fig11_13_distributed.dir/fig11_13_distributed.cpp.o"
  "CMakeFiles/fig11_13_distributed.dir/fig11_13_distributed.cpp.o.d"
  "fig11_13_distributed"
  "fig11_13_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_13_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
