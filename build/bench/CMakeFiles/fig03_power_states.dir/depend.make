# Empty dependencies file for fig03_power_states.
# This may be replaced when dependencies are built.
