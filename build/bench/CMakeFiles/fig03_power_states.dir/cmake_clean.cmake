file(REMOVE_RECURSE
  "CMakeFiles/fig03_power_states.dir/fig03_power_states.cpp.o"
  "CMakeFiles/fig03_power_states.dir/fig03_power_states.cpp.o.d"
  "fig03_power_states"
  "fig03_power_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_power_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
