# Empty dependencies file for fig08_random_same_energy.
# This may be replaced when dependencies are built.
