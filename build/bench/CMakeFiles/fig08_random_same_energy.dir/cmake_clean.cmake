file(REMOVE_RECURSE
  "CMakeFiles/fig08_random_same_energy.dir/fig08_random_same_energy.cpp.o"
  "CMakeFiles/fig08_random_same_energy.dir/fig08_random_same_energy.cpp.o.d"
  "fig08_random_same_energy"
  "fig08_random_same_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_random_same_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
