/// \file mrlc_serve.cpp
/// \brief Long-running MRLC solver daemon.
///
/// Serves framed mrlc-request-v1 payloads (see docs/file_formats.md) over
/// a Unix-domain socket or a stdin/stdout pipe, scheduling solves on the
/// persistent worker pool through `service::SolverService`.  The daemon is
/// built to stay up: malformed frames drop only their connection, corrupt
/// payloads get typed `invalid_request` replies, injected worker faults
/// become typed `cancelled` replies, and overload sheds with
/// `rejected_overload` instead of queueing without bound.
///
/// Shutdown is cooperative: SIGTERM/SIGINT (or stdin EOF in --stdio mode)
/// stops admissions, finishes every queued request, flushes replies and —
/// when `--metrics-json` is set — the final metrics document, then exits 0.

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/faultpoint.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage:\n"
         "  mrlc_serve --socket PATH [options]   # Unix-domain socket daemon\n"
         "  mrlc_serve --stdio       [options]   # framed requests on stdin,\n"
         "                                       # replies on stdout\n"
         "options:\n"
         "  --queue-capacity N       admission queue bound (default 64);\n"
         "                           overflow sheds with rejected_overload\n"
         "  --batch-size N           requests dispatched per batch (default:\n"
         "                           worker pool width; pin for determinism)\n"
         "  --cache-capacity N       warm-cache topologies (default 16; 0\n"
         "                           disables caching)\n"
         "  --cache-pool-sets N      cut-pool bound per cached topology\n"
         "                           (default 256)\n"
         "  --default-deadline-ms N  deadline for requests that carry none\n"
         "  --no-timings             zero wall-clock reply fields and skip\n"
         "                           latency histograms (byte-deterministic\n"
         "                           replies)\n"
         "  --threads N              worker threads (0 = hardware)\n"
         "  --inject SPEC            arm fault points: name[:K][,...]\n"
         "  --metrics-json PATH      write final metrics at drain\n"
         "exit codes:  0 clean drain   4 bad usage   5 internal error\n";
  std::exit(4);
}

/// Self-pipe written by the signal handler; the event loops poll it.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_shutdown_signal(int) {
  const char byte = 1;
  // write(2) is async-signal-safe; a full pipe just means a signal is
  // already pending, so the failure is ignorable.
  [[maybe_unused]] ssize_t rc = ::write(g_signal_pipe[1], &byte, 1);
}

void install_signal_handlers() {
  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "mrlc_serve: pipe() failed: " << std::strerror(errno) << '\n';
    std::exit(5);
  }
  struct sigaction sa{};
  sa.sa_handler = on_shutdown_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a vanished peer must not kill the daemon
}

void emit_metrics(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "mrlc_serve: cannot open metrics file " << path << '\n';
    return;
  }
  mrlc::metrics::write_json(out);
}

/// One accepted socket connection: incremental frame parsing on the event
/// loop thread, reply writes from the dispatcher thread under `write_mutex`
/// (kept alive by shared_ptr until the last in-flight reply lands).
struct Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  int fd;
  mrlc::service::FrameReader reader;
  std::mutex write_mutex;
  bool dead = false;  ///< peer gone; drop replies instead of writing
};

void send_reply(const std::shared_ptr<Connection>& conn,
                const mrlc::service::WireResponse& response) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->dead) return;
  try {
    mrlc::service::write_frame_fd(conn->fd,
                                  mrlc::service::encode_response(response));
  } catch (const mrlc::service::WireError&) {
    conn->dead = true;  // peer vanished mid-reply; the request still counted
  }
}

int serve_socket(const std::string& path, mrlc::service::SolverService& service) {
  ::unlink(path.c_str());
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::cerr << "mrlc_serve: socket path too long\n";
    return 4;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "mrlc_serve: socket() failed: " << std::strerror(errno) << '\n';
    return 5;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener, 64) != 0) {
    std::cerr << "mrlc_serve: bind/listen('" << path
              << "') failed: " << std::strerror(errno) << '\n';
    ::close(listener);
    return 5;
  }
  // Readiness marker: scripts wait for this exact line before connecting.
  std::cerr << "mrlc_serve: ready on " << path << '\n';

  std::unordered_map<int, std::shared_ptr<Connection>> connections;
  char buf[64 * 1024];
  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back({g_signal_pipe[0], POLLIN, 0});
    fds.push_back({listener, POLLIN, 0});
    for (const auto& [fd, conn] : connections) fds.push_back({fd, POLLIN, 0});
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      std::cerr << "mrlc_serve: poll failed: " << std::strerror(errno) << '\n';
      break;
    }
    if (fds[0].revents & POLLIN) break;  // shutdown signal
    if (fds[1].revents & POLLIN) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) connections.emplace(fd, std::make_shared<Connection>(fd));
    }
    std::vector<int> closed;
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const auto it = connections.find(fds[i].fd);
      if (it == connections.end()) continue;
      const std::shared_ptr<Connection> conn = it->second;
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
        closed.push_back(conn->fd);
        continue;
      }
      try {
        conn->reader.feed(buf, static_cast<std::size_t>(n));
        std::string payload;
        while (conn->reader.next(payload)) {
          service.submit_payload(payload,
                                 [conn](const mrlc::service::WireResponse& r) {
                                   send_reply(conn, r);
                                 });
        }
      } catch (const mrlc::service::WireError& e) {
        // Unresynchronizable framing (bad magic / absurd length): tell the
        // peer once and drop only this connection — the daemon lives on.
        mrlc::service::WireResponse bad;
        bad.id = "-";
        bad.status = mrlc::service::ResponseStatus::kInvalidRequest;
        bad.detail = e.what();
        send_reply(conn, bad);
        closed.push_back(conn->fd);
      }
    }
    for (const int fd : closed) {
      const auto it = connections.find(fd);
      if (it != connections.end()) {
        std::lock_guard<std::mutex> lock(it->second->write_mutex);
        it->second->dead = true;
      }
      connections.erase(fd);
    }
  }

  ::close(listener);
  ::unlink(path.c_str());
  std::cerr << "mrlc_serve: draining\n";
  service.drain();  // in-flight replies still reach live connections
  return 0;
}

int serve_stdio(mrlc::service::SolverService& service) {
  std::cerr << "mrlc_serve: ready on stdio\n";
  const auto conn = std::make_shared<Connection>(-1);
  conn->fd = STDOUT_FILENO;
  char buf[64 * 1024];
  for (;;) {
    struct pollfd fds[2] = {{g_signal_pipe[0], POLLIN, 0},
                            {STDIN_FILENO, POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      std::cerr << "mrlc_serve: poll failed: " << std::strerror(errno) << '\n';
      break;
    }
    if (fds[0].revents & POLLIN) break;  // shutdown signal
    if (!(fds[1].revents & (POLLIN | POLLHUP))) continue;
    const ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
    if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
    if (n <= 0) break;  // EOF: the peer is done submitting
    try {
      conn->reader.feed(buf, static_cast<std::size_t>(n));
      std::string payload;
      while (conn->reader.next(payload)) {
        service.submit_payload(payload,
                               [conn](const mrlc::service::WireResponse& r) {
                                 send_reply(conn, r);
                               });
      }
    } catch (const mrlc::service::WireError& e) {
      mrlc::service::WireResponse bad;
      bad.id = "-";
      bad.status = mrlc::service::ResponseStatus::kInvalidRequest;
      bad.detail = e.what();
      send_reply(conn, bad);
      break;  // framing on a pipe cannot resync
    }
  }
  std::cerr << "mrlc_serve: draining\n";
  service.drain();
  conn->fd = -1;  // stdout is not ours to close
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    mrlc::fault::configure_from_env();
  } catch (const std::exception& e) {
    std::cerr << "mrlc_serve: MRLC_FAULTS: " << e.what() << '\n';
    return 4;
  }

  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage();
    key = key.substr(2);
    if (key == "stdio" || key == "no-timings") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    } else {
      usage();
    }
  }
  const bool stdio = flags.count("stdio") != 0;
  const bool socket_mode = flags.count("socket") != 0;
  if (stdio == socket_mode) usage();  // exactly one transport

  if (flags.count("inject")) {
    try {
      mrlc::fault::configure(flags["inject"]);
    } catch (const std::exception& e) {
      std::cerr << "mrlc_serve: --inject: " << e.what() << '\n';
      return 4;
    }
  }
  if (flags.count("threads")) {
    try {
      mrlc::set_default_thread_count(
          static_cast<unsigned>(std::stoul(flags["threads"])));
    } catch (const std::exception&) {
      std::cerr << "mrlc_serve: --threads expects a non-negative integer\n";
      return 4;
    }
  }

  mrlc::service::ServiceOptions options;
  try {
    if (flags.count("queue-capacity")) {
      options.queue_capacity = std::stoul(flags["queue-capacity"]);
    }
    if (flags.count("batch-size")) {
      options.batch_size = std::stoi(flags["batch-size"]);
    }
    if (flags.count("cache-capacity")) {
      options.cache_capacity = std::stoul(flags["cache-capacity"]);
    }
    if (flags.count("cache-pool-sets")) {
      options.cache_pool_sets = std::stoul(flags["cache-pool-sets"]);
    }
    if (flags.count("default-deadline-ms")) {
      options.default_deadline_ms = std::stoll(flags["default-deadline-ms"]);
    }
  } catch (const std::exception&) {
    usage();
  }
  options.record_timings = flags.count("no-timings") == 0;

  install_signal_handlers();

  // Eager registration so the final metrics document carries the fault
  // instruments even at zero (mirrors mrlc_solve).
  mrlc::metrics::counter("faults.injected");
  mrlc::metrics::counter("faults.recovered");

  int exit_code = 5;
  try {
    mrlc::service::SolverService service(options);
    exit_code = stdio ? serve_stdio(service)
                      : serve_socket(flags["socket"], service);
    // drain() already ran inside the serve loop; fall through to flush.
  } catch (const std::exception& e) {
    std::cerr << "mrlc_serve: internal error: " << e.what() << '\n';
    exit_code = 5;
  }
  if (mrlc::fault::injected_count() > 0 || mrlc::fault::recovered_count() > 0) {
    std::cerr << "faults: " << mrlc::fault::injected_count() << " injected, "
              << mrlc::fault::recovered_count() << " recovered\n";
  }
  if (flags.count("metrics-json")) emit_metrics(flags["metrics-json"]);
  std::cerr << "mrlc_serve: drained\n";
  return exit_code;
}
