/// \file mrlc_bench.cpp
/// \brief Machine-readable solver benchmark sweep.
///
/// Runs a fixed set of named workloads (IRA on the DFL testbed and on
/// random G(n, p) instances, branch-and-bound, the ARQ data plane, and a
/// solver-service request mix with deterministic shed/cache behaviour), times
/// each repeat with a steady-clock stopwatch, and snapshots the metrics
/// registry per workload.  Output is one JSON document (schema
/// "mrlc-bench-v1", documented in docs/metrics.md) suitable for diffing
/// across commits with scripts/bench_compare.py.
///
/// Usage:
///   mrlc_bench [--out PATH] [--repeats N] [--workload NAME] [--list]
///              [--no-timings] [--threads N]
///
/// All workloads are seeded, so every counter in the output is
/// bit-reproducible; only the wall-clock figures vary run to run.
/// `--no-timings` zeroes them, making the whole file deterministic (used
/// by the CI golden check).  `--threads` sizes the solver thread pool
/// (default 1 so baselines stay comparable across machines; counters are
/// identical for every thread count, only wall time changes) and is
/// recorded in the output's `config` block so bench_compare.py refuses to
/// compare wall times across different pool widths.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/utsname.h>
#endif

#include "baselines/mst_baseline.hpp"
#include "core/variant.hpp"
#include "common/budget.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "core/anytime.hpp"
#include "core/branch_bound.hpp"
#include "core/ira.hpp"
#include "distributed/dataplane.hpp"
#include "lp/simplex.hpp"
#include "scenario/dfl.hpp"
#include "scenario/random_net.hpp"
#include "service/server.hpp"
#include "wsn/io.hpp"
#include "wsn/metrics.hpp"

namespace {

using namespace mrlc;

struct Workload {
  std::string name;
  std::string description;
  /// One full repeat; must do all its work through seeded RNGs so the
  /// metric counters are identical across repeats and machines.
  std::function<void(int repeat)> run;
};

/// LC bound every workload uses: the MST's own lifetime.  The MST achieves
/// it by construction, so IRA and branch-and-bound are always feasible and
/// the bench never trips the infeasibility path.
double mst_bound(const wsn::Network& net) {
  return baselines::mst_baseline(net).lifetime;
}

wsn::Network random_net(int nodes, double p, std::uint64_t seed) {
  scenario::RandomNetworkConfig config;
  config.node_count = nodes;
  config.link_probability = p;
  Rng rng(seed);
  return scenario::make_random_network(config, rng);
}

/// A lifetime bound the etx variant can always meet: the bound at which
/// the MST satisfies the *conservative* energy rows the variant's LP
/// enforces (every incident edge charged its worst role), so the LP is
/// integrally feasible by construction and the bench never trips the
/// infeasibility path.
double etx_bound(const wsn::Network& net) {
  const baselines::MstResult mst = baselines::mst_baseline(net);
  std::vector<double> rate(static_cast<std::size_t>(net.node_count()), 0.0);
  for (const graph::EdgeId e : mst.tree.edge_ids()) {
    const graph::Edge& edge = net.topology().edge(e);
    rate[static_cast<std::size_t>(edge.u)] +=
        core::conservative_energy_rate(net, edge.u, e);
    rate[static_cast<std::size_t>(edge.v)] +=
        core::conservative_energy_rate(net, edge.v, e);
  }
  double bound = std::numeric_limits<double>::infinity();
  for (wsn::VertexId v = 0; v < net.node_count(); ++v) {
    if (rate[static_cast<std::size_t>(v)] > 0.0) {
      bound = std::min(bound, net.initial_energy(v) /
                                  rate[static_cast<std::size_t>(v)]);
    }
  }
  return bound;
}

/// One IRA repeat, optionally under an anytime work budget (--budget).
/// With `budget_units == 0` this is byte-for-byte the historical direct
/// IRA path (no Budget object exists, no anytime layer runs), so stock
/// bench documents are unchanged.
void run_ira(const wsn::Network& net, std::int64_t budget_units) {
  if (budget_units > 0) {
    Budget budget;
    budget.set_work_limit(budget_units);
    core::AnytimeOptions options;
    options.budget = &budget;
    core::solve_anytime(net, mst_bound(net), options);
    return;
  }
  core::IraOptions options;
  options.bound_mode = core::BoundMode::kDirect;
  core::IterativeRelaxation(options).solve(net, mst_bound(net));
}

/// The --variant hook for the ira_* workloads: mrlc keeps the historical
/// path above untouched; other variants solve the same instances through
/// the variant front door (etx swaps in its conservative-feasible bound).
void run_ira_variant(const wsn::Network& net, core::VariantId variant,
                     std::int64_t budget_units) {
  if (variant == core::VariantId::kMrlc) {
    run_ira(net, budget_units);
    return;
  }
  const double bound =
      variant == core::VariantId::kEtx ? etx_bound(net) : mst_bound(net);
  if (budget_units > 0) {
    Budget budget;
    budget.set_work_limit(budget_units);
    core::AnytimeOptions options;
    options.budget = &budget;
    options.variant = variant;
    core::solve_anytime(net, bound, options);
    return;
  }
  core::solve_variant(variant, net, bound);
}

/// Solver-service throughput workload: 32 requests over 4 topologies with
/// repeats (warm-cache hits), enqueued against a deliberately undersized
/// queue before the dispatcher starts, so exactly 8 are shed inline and the
/// remaining 24 run in a fixed batch pattern.  Everything that matters —
/// shed count, cache hits/misses, per-status counters — lands in the
/// `service.*` metrics snapshot; bench_compare.py derives queries/sec and
/// reads the p99 latency histogram from there.  The qps gauge and the
/// latency histograms are wall-clock figures and only exist when timings
/// are on, keeping `--no-timings` output bit-reproducible.
void run_service_mixed(int repeat, bool with_timings) {
  service::ServiceOptions options;
  options.queue_capacity = 24;  // 32 submissions -> 8 deterministic sheds
  options.batch_size = 4;      // pin batch composition across --threads
  options.cache_capacity = 8;
  options.record_timings = with_timings;
  options.auto_start = false;  // enqueue the whole workload, then start
  service::SolverService service(options);

  std::vector<std::string> texts;
  std::vector<double> bounds;
  for (int t = 0; t < 4; ++t) {
    const wsn::Network net = random_net(
        16, 0.6, 6000 + static_cast<std::uint64_t>(4 * repeat + t));
    texts.push_back(wsn::network_to_string(net));
    bounds.push_back(mst_bound(net));
  }
  for (int i = 0; i < 32; ++i) {
    service::WireRequest request;
    request.id = "bench-" + std::to_string(i);
    request.lifetime = bounds[static_cast<std::size_t>(i % 4)];
    request.network_text = texts[static_cast<std::size_t>(i % 4)];
    service.submit(std::move(request),
                   [](const service::WireResponse&) {});
  }

  const trace::Stopwatch watch;
  service.start();
  service.drain();
  if (with_timings) {
    const double secs = std::max(watch.elapsed_ms() / 1000.0, 1e-9);
    metrics::gauge("service.bench_qps").set(24.0 / secs);
  }
}

std::vector<Workload> make_workloads(std::int64_t budget_units,
                                     bool with_timings,
                                     core::VariantId variant,
                                     dist::DataPlaneEngine dataplane_engine) {
  std::vector<Workload> out;

  out.push_back({"ira_dfl_n16", "IRA on the 16-node DFL testbed instance",
                 [budget_units, variant](int) {
                   const wsn::Network net = scenario::make_dfl_system().network;
                   run_ira_variant(net, variant, budget_units);
                 }});

  out.push_back({"ira_random_n16_p07",
                 "IRA on G(16, 0.7) instances, one fresh draw per repeat",
                 [budget_units, variant](int repeat) {
                   const wsn::Network net = random_net(
                       16, 0.7, 1000 + static_cast<std::uint64_t>(repeat));
                   run_ira_variant(net, variant, budget_units);
                 }});

  out.push_back({"ira_random_n24_p04",
                 "IRA on sparser G(24, 0.4) instances (more cut rounds)",
                 [budget_units, variant](int repeat) {
                   const wsn::Network net = random_net(
                       24, 0.4, 2000 + static_cast<std::uint64_t>(repeat));
                   run_ira_variant(net, variant, budget_units);
                 }});

  out.push_back({"ira_random_n48_p04",
                 "IRA on G(48, 0.4) instances — the warm-start stress case "
                 "(many cut rounds over a large LP)",
                 [budget_units, variant](int repeat) {
                   const wsn::Network net = random_net(
                       48, 0.4, 5000 + static_cast<std::uint64_t>(repeat));
                   run_ira_variant(net, variant, budget_units);
                 }});

  out.push_back({"ira_random_n128_p015",
                 "IRA on G(128, 0.15) — the sparse-LP scale case (hundreds "
                 "of edge variables; dense tableau for A/B via --engine)",
                 [budget_units, variant](int repeat) {
                   const wsn::Network net = random_net(
                       128, 0.15, 7000 + static_cast<std::uint64_t>(repeat));
                   run_ira_variant(net, variant, budget_units);
                 }});

  out.push_back({"ira_dfl_n32",
                 "IRA on a 32-node DFL perimeter (7.2 m square, same tripod "
                 "spacing) — longer-range fractional cycles than n16",
                 [budget_units, variant](int) {
                   scenario::DflConfig config;
                   config.side_m = 7.2;  // 32 tripods at the default 0.9 m
                   const wsn::Network net =
                       scenario::make_dfl_system(config).network;
                   run_ira_variant(net, variant, budget_units);
                 }});

  out.push_back({"bb_random_n14", "exact branch-and-bound on G(14, 0.5)",
                 [](int repeat) {
                   const wsn::Network net = random_net(
                       14, 0.5, 3000 + static_cast<std::uint64_t>(repeat));
                   core::branch_bound_mrlc(net, mst_bound(net), {});
                 }});

  out.push_back({"etx_random_n48",
                 "etx variant (min expected ARQ transmissions under "
                 "conservative energy rows) on G(48, 0.4) instances",
                 [](int repeat) {
                   const wsn::Network net = random_net(
                       48, 0.4, 8000 + static_cast<std::uint64_t>(repeat));
                   core::solve_variant(core::VariantId::kEtx, net,
                                       etx_bound(net));
                 }});

  out.push_back({"minenergy_n32",
                 "min-energy aggregation tree (one certified Subtour-LP "
                 "round) on G(32, 0.4) instances",
                 [](int repeat) {
                   const wsn::Network net = random_net(
                       32, 0.4, 9000 + static_cast<std::uint64_t>(repeat));
                   core::solve_variant(core::VariantId::kMinEnergy, net,
                                       mst_bound(net));
                 }});

  out.push_back({"dataplane_n16",
                 "200 ARQ convergecast rounds with estimator-driven repair",
                 [dataplane_engine](int repeat) {
                   const wsn::Network net = scenario::make_dfl_system().network;
                   const double bound = mst_bound(net);
                   core::IraOptions ira_options;
                   ira_options.bound_mode = core::BoundMode::kDirect;
                   const core::IraResult ira =
                       core::IterativeRelaxation(ira_options).solve(net, bound);
                   dist::DataPlaneOptions options;
                   options.rounds = 200;
                   options.engine = dataplane_engine;
                   options.seed = 4000 + static_cast<std::uint64_t>(repeat);
                   dist::run_dataplane(net, ira.tree, bound, options);
                 }});

  out.push_back({"dataplane_des_n100k",
                 "20 estimator-repair convergecast rounds on a 400x250 grid "
                 "(100k nodes, BFS initial tree) through the selected "
                 "data-plane engine",
                 [dataplane_engine](int repeat) {
                   scenario::GridNetworkConfig config;
                   config.rows = 400;
                   config.cols = 250;
                   Rng rng(11000 + static_cast<std::uint64_t>(repeat));
                   const wsn::Network net =
                       scenario::make_grid_network(config, rng);
                   const wsn::AggregationTree tree =
                       scenario::bfs_spanning_tree(net);
                   const double bound =
                       0.5 * wsn::network_lifetime(net, tree);
                   dist::DataPlaneOptions options;
                   options.rounds = 20;
                   options.engine = dataplane_engine;
                   options.seed = 11000 + static_cast<std::uint64_t>(repeat);
                   dist::run_dataplane(net, tree, bound, options);
                 }});

  out.push_back({"service_mixed_n16",
                 "solver service: 32 requests over 4 G(16, 0.6) topologies "
                 "with repeats (warm cache), deterministic shed, batch 4",
                 [with_timings](int repeat) {
                   run_service_mixed(repeat, with_timings);
                 }});

  return out;
}

std::string json_escape(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string git_revision() {
#ifndef _WIN32
  FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64] = {};
    const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, pipe);
    ::pclose(pipe);
    std::string rev(buf, got);
    while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
      rev.pop_back();
    }
    if (!rev.empty()) return rev;
  }
#endif
  return "unknown";
}

std::string machine_system() {
#ifndef _WIN32
  struct utsname info {};
  if (::uname(&info) == 0) {
    return std::string(info.sysname) + " " + info.release + " " + info.machine;
  }
#endif
  return "unknown";
}

/// Re-indents an embedded JSON document so it nests readably.
std::string indent_block(const std::string& json, const std::string& pad) {
  std::string out;
  for (char c : json) {
    out += c;
    if (c == '\n') out += pad;
  }
  while (!out.empty() && (out.back() == ' ' || out.back() == '\n')) out.pop_back();
  return out;
}

[[noreturn]] void usage() {
  std::cerr << "usage: mrlc_bench [--out PATH] [--repeats N] [--workload NAME]\n"
               "                  [--list] [--no-timings] [--threads N]\n"
               "                  [--budget UNITS] [--engine sparse|dense]\n"
               "                  [--variant NAME]\n"
               "  --budget UNITS  run the IRA workloads through the anytime\n"
               "                  solver with a fresh work budget per repeat\n"
               "                  (0 = unlimited, the classic direct path)\n"
               "  --engine NAME   LP engine for every workload (default\n"
               "                  sparse; dense is the historical tableau,\n"
               "                  kept for A/B comparison)\n"
               "  --variant NAME  problem variant for the ira_* workloads\n"
               "                  (mrlc | etx | min_energy | max_lifetime;\n"
               "                  default mrlc = the historical path);\n"
               "                  recorded in config.variant so\n"
               "                  bench_compare.py groups runs by variant\n"
               "  --dataplane-engine NAME\n"
               "                  engine for the dataplane_* workloads\n"
               "                  (des | legacy; default des — results are\n"
               "                  bit-identical, only the wall time moves)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_solver.json";
  int repeats = 3;
  std::string only;
  bool list_only = false;
  bool with_timings = true;
  // Default 1 (not hardware concurrency): bench baselines checked into the
  // repo must mean the same thing on every machine.
  unsigned threads = 1;
  std::int64_t budget_units = 0;
  std::string engine = "sparse";
  std::string variant_name = "mrlc";
  std::string dataplane_engine_name = "des";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list_only = true;
    } else if (arg == "--no-timings") {
      with_timings = false;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--repeats" && i + 1 < argc) {
      repeats = std::stoi(argv[++i]);
      if (repeats < 1) usage();
    } else if (arg == "--workload" && i + 1 < argc) {
      only = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--budget" && i + 1 < argc) {
      budget_units = std::stoll(argv[++i]);
      if (budget_units < 0) usage();
    } else if (arg == "--engine" && i + 1 < argc) {
      engine = argv[++i];
      if (engine != "sparse" && engine != "dense") usage();
    } else if (arg == "--variant" && i + 1 < argc) {
      variant_name = argv[++i];
      if (!mrlc::core::variant_from_string(variant_name).has_value()) usage();
    } else if (arg == "--dataplane-engine" && i + 1 < argc) {
      dataplane_engine_name = argv[++i];
      if (dataplane_engine_name != "des" && dataplane_engine_name != "legacy") {
        usage();
      }
    } else {
      usage();
    }
  }
  mrlc::set_default_thread_count(threads);
  mrlc::lp::set_default_engine(engine == "dense" ? mrlc::lp::Engine::kDense
                                                 : mrlc::lp::Engine::kSparse);
  const mrlc::core::VariantId variant =
      *mrlc::core::variant_from_string(variant_name);
  const mrlc::dist::DataPlaneEngine dataplane_engine =
      dataplane_engine_name == "legacy" ? mrlc::dist::DataPlaneEngine::kLegacy
                                        : mrlc::dist::DataPlaneEngine::kDes;

  const std::vector<Workload> workloads =
      make_workloads(budget_units, with_timings, variant, dataplane_engine);
  if (list_only) {
    for (const Workload& w : workloads) {
      std::cout << w.name << "  " << w.description << '\n';
    }
    return 0;
  }
  if (!only.empty() &&
      std::none_of(workloads.begin(), workloads.end(),
                   [&](const Workload& w) { return w.name == only; })) {
    std::cerr << "mrlc_bench: unknown workload " << only << " (see --list)\n";
    return 2;
  }

  metrics::set_enabled(true);

  std::ostringstream body;
  bool first = true;
  for (const Workload& w : workloads) {
    if (!only.empty() && w.name != only) continue;
    std::cerr << "bench " << w.name << " (" << repeats << " repeats)...\n";
    metrics::reset();

    double min_ms = std::numeric_limits<double>::infinity();
    double max_ms = 0.0;
    double total_ms = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const trace::Stopwatch watch;
      w.run(r);
      const double ms = watch.elapsed_ms();
      min_ms = std::min(min_ms, ms);
      max_ms = std::max(max_ms, ms);
      total_ms += ms;
    }
    if (!with_timings) min_ms = max_ms = total_ms = 0.0;

    body << (first ? "" : ",\n");
    first = false;
    body << "    {\n";
    body << "      \"name\": " << json_escape(w.name) << ",\n";
    body << "      \"description\": " << json_escape(w.description) << ",\n";
    body << "      \"repeats\": " << repeats << ",\n";
    body.precision(6);
    body << "      \"wall_ms\": {\"min\": " << min_ms
         << ", \"mean\": " << total_ms / repeats << ", \"max\": " << max_ms
         << ", \"total\": " << total_ms << "},\n";
    // The per-workload metrics snapshot is a full mrlc-metrics-v1 document
    // (counters are summed over all repeats; phase times are wall time).
    const std::string snapshot = metrics::to_json_string(!with_timings);
    body << "      \"metrics\": " << indent_block(snapshot, "      ") << "\n";
    body << "    }";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "mrlc_bench: cannot open " << out_path << '\n';
    return 1;
  }
  out << "{\n";
  out << "  \"schema\": \"mrlc-bench-v1\",\n";
  out << "  \"git_rev\": " << json_escape(git_revision()) << ",\n";
  out << "  \"machine\": {\"system\": " << json_escape(machine_system())
      << ", \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << "},\n";
  out << "  \"config\": {\"repeats\": " << repeats << ", \"timings\": "
      << (with_timings ? "true" : "false")
      << ", \"threads\": " << mrlc::default_thread_count()
      << ", \"budget\": " << budget_units
      << ", \"engine\": " << json_escape(engine)
      << ", \"variant\": " << json_escape(variant_name)
      << ", \"dataplane_engine\": " << json_escape(dataplane_engine_name)
      << "},\n";
  out << "  \"workloads\": [\n" << body.str() << "\n  ]\n";
  out << "}\n";
  std::cerr << "wrote " << out_path << '\n';
  return 0;
}
