/// \file mrlc_client.cpp
/// \brief One-shot client for a running mrlc_serve daemon.
///
/// Reads an mrlc-network-v1 instance from stdin (exactly like mrlc_solve),
/// ships it as a framed mrlc-request-v1 over the daemon's Unix-domain
/// socket, and prints the returned tree on stdout.  Overload sheds are
/// retried with jittered exponential backoff (service::Client); every
/// other reply maps onto a typed exit code so shell pipelines can branch
/// on the outcome without parsing anything.

#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "service/client.hpp"
#include "service/wire.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage:\n"
         "  mrlc_client --socket PATH --lifetime ROUNDS [options] < net > tree\n"
         "options:\n"
         "  --variant NAME   problem variant (mrlc | etx | min_energy |\n"
         "                   max_lifetime; default mrlc)\n"
         "  --budget N       deterministic work budget forwarded to the solve\n"
         "  --deadline-ms N  wall-clock deadline forwarded to the solve\n"
         "  --id TOKEN       request id echoed in the reply (default req-1)\n"
         "  --repeat N       send the identical request N times (exercises\n"
         "                   the daemon's result cache); the last reply wins\n"
         "  --timeout-ms N   per-attempt reply timeout (default 30000)\n"
         "  --retries N      extra attempts after rejected_overload (default 4)\n"
         "  --backoff-ms N   base backoff before doubling (default 25)\n"
         "  --seed S         backoff jitter seed (pin for reproducible tests)\n"
         "exit codes:\n"
         "  0 solved   2 feasible, budget/deadline exhausted (incumbent\n"
         "  printed)   3 infeasible   4 invalid request or bad usage\n"
         "  5 internal/transport error   6 shed (overload after retries, or\n"
         "  daemon draining)   7 cancelled by the daemon watchdog\n";
  std::exit(4);
}

int exit_code_for(mrlc::service::ResponseStatus status) {
  using mrlc::service::ResponseStatus;
  switch (status) {
    case ResponseStatus::kOk: return 0;
    case ResponseStatus::kBudgetExhausted: return 2;
    case ResponseStatus::kInfeasible: return 3;
    case ResponseStatus::kInvalidRequest: return 4;
    case ResponseStatus::kInternalError: return 5;
    case ResponseStatus::kRejectedOverload: return 6;
    case ResponseStatus::kRejectedDraining: return 6;
    case ResponseStatus::kCancelled: return 7;
  }
  return 5;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage();
    key = key.substr(2);
    if (i + 1 < argc) {
      flags[key] = argv[++i];
    } else {
      usage();
    }
  }
  if (!flags.count("socket") || !flags.count("lifetime")) usage();

  using namespace mrlc::service;
  try {
    WireRequest request;
    request.id = flags.count("id") ? flags["id"] : "req-1";
    if (flags.count("variant")) request.variant = flags["variant"];
    request.lifetime = std::stod(flags["lifetime"]);
    if (flags.count("budget")) request.budget = std::stoll(flags["budget"]);
    if (flags.count("deadline-ms")) {
      request.deadline_ms = std::stoll(flags["deadline-ms"]);
    }
    std::stringstream stdin_buffer;
    stdin_buffer << std::cin.rdbuf();
    request.network_text = stdin_buffer.str();

    ClientOptions options;
    if (flags.count("timeout-ms")) {
      options.timeout_ms = std::stoi(flags["timeout-ms"]);
    }
    if (flags.count("retries")) {
      options.max_retries = std::stoi(flags["retries"]);
    }
    if (flags.count("backoff-ms")) {
      options.backoff_base_ms = std::stoi(flags["backoff-ms"]);
    }
    if (flags.count("seed")) {
      options.backoff_seed = std::stoull(flags["seed"]);
    }

    Client client = Client::connect_unix(flags["socket"], options);
    const int repeat = flags.count("repeat") ? std::stoi(flags["repeat"]) : 1;
    if (repeat < 1) usage();
    WireResponse reply;
    for (int i = 0; i < repeat; ++i) reply = client.call(request);

    std::cerr << "mrlc_client: " << to_string(reply.status);
    if (!reply.detail.empty()) std::cerr << ": " << reply.detail;
    std::cerr << '\n';
    if (reply.has_solution) {
      std::cerr << "mrlc_client: cost " << reply.cost << ", reliability "
                << reply.reliability << ", lifetime " << reply.lifetime
                << ", gap " << reply.gap << ", budget used "
                << reply.budget_used << ", cache " << reply.cache << '\n';
    }
    if (client.retries_used() > 0) {
      std::cerr << "mrlc_client: absorbed " << client.retries_used()
                << " overload shed(s) via backoff\n";
    }
    if (!reply.tree_text.empty()) std::cout << reply.tree_text;
    return exit_code_for(reply.status);
  } catch (const WireError& e) {
    std::cerr << "mrlc_client: transport error: " << e.what() << '\n';
    return 5;
  } catch (const std::invalid_argument&) {
    usage();
  } catch (const std::exception& e) {
    std::cerr << "mrlc_client: internal error: " << e.what() << '\n';
    return 5;
  }
}
