/// \file mrlc_gen.cpp
/// \brief Instance generator CLI: writes mrlc-network files for the two
/// scenario families (the DFL testbed and G(n, p) random networks).
///
/// Usage:
///   mrlc_gen dfl [--seed S] [--tx LEVEL] [--side METERS] > net.txt
///   mrlc_gen random [--seed S] [--nodes N] [--p PROB]
///                   [--prr-min Q] [--prr-max Q]
///                   [--energy-min J] [--energy-max J] > net.txt
///
/// Either mode also takes [--faults K] [--horizon ROUNDS] [--fault-seed S]
/// to append a reproducible crash schedule (a `fault-schedule v1` block) to
/// the network file; `mrlc_solve faults` replays such combined files.
///
/// Either mode also takes [--arq ATTEMPTS] [--ack-fraction F]
/// [--channel bernoulli|gilbert-elliott] [--burst B] to append an
/// `arq`/`channel` data-plane config block; `mrlc_solve dataplane` picks it
/// up as its defaults.
///
/// Either mode also takes [--annotate-cost LIFETIME] [--variant NAME] to
/// solve the freshly generated instance and prepend an `# expected-cost`
/// comment carrying the optimal objective under that problem variant —
/// golden tests diff the annotation to pin generator + solver together.

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>

#include "common/rng.hpp"
#include "core/variant.hpp"
#include "distributed/failure.hpp"
#include "radio/arq.hpp"
#include "scenario/dfl.hpp"
#include "scenario/random_net.hpp"
#include "wsn/io.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage:\n"
               "  mrlc_gen dfl [--seed S] [--tx LEVEL] [--side METERS]\n"
               "  mrlc_gen random [--seed S] [--nodes N] [--p PROB]\n"
               "                  [--prr-min Q] [--prr-max Q]\n"
               "                  [--energy-min J] [--energy-max J]\n"
               "both modes: [--faults K] [--horizon ROUNDS] [--fault-seed S]\n"
               "            [--arq ATTEMPTS] [--ack-fraction F]\n"
               "            [--channel bernoulli|gilbert-elliott] [--burst B]\n"
               "            [--annotate-cost LIFETIME] [--variant NAME]\n"
               "writes an mrlc-network v1 file (plus optional fault-schedule\n"
               "and arq/channel config blocks) to stdout; --annotate-cost\n"
               "solves the instance under --variant (mrlc | etx | min_energy\n"
               "| max_lifetime; default mrlc) at the given lifetime bound and\n"
               "prepends an `# expected-cost` comment with the objective\n";
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0 || i + 1 >= argc) usage();
    flags[key.substr(2)] = argv[++i];
  }
  return flags;
}

double flag_or(const std::map<std::string, std::string>& flags,
               const std::string& name, double fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : std::stod(it->second);
}

/// Appends a seeded crash schedule after the network block when --faults is
/// given; the combined file stays readable by wsn::read_network (fault lines
/// are skipped there) and by dist::read_fault_schedule.
void emit_fault_schedule(const std::map<std::string, std::string>& flags,
                         const mrlc::wsn::Network& net, std::uint64_t net_seed) {
  const int faults = static_cast<int>(flag_or(flags, "faults", 0));
  if (faults <= 0) return;
  const double horizon = flag_or(flags, "horizon", 1000.0);
  const auto fault_seed = static_cast<std::uint64_t>(
      flag_or(flags, "fault-seed", static_cast<double>(net_seed + 1)));
  mrlc::Rng rng(fault_seed);
  const mrlc::dist::FailureSchedule schedule =
      mrlc::dist::random_crash_schedule(net, faults, horizon, rng);
  std::cout << "# " << faults << " crash faults over " << horizon
            << " rounds, fault seed " << fault_seed << '\n';
  mrlc::dist::write_fault_schedule(std::cout, schedule);
}

/// Appends an `arq`/`channel` data-plane config block when any of the
/// data-plane flags is given (mrlc_solve dataplane reads it as defaults).
void emit_dataplane_config(const std::map<std::string, std::string>& flags) {
  mrlc::radio::DataPlaneConfig config;
  if (flags.count("arq")) {
    config.has_arq = true;
    config.arq.max_attempts = static_cast<int>(flag_or(flags, "arq", 8));
  }
  if (flags.count("ack-fraction")) {
    config.has_arq = true;
    config.arq.ack_fraction = flag_or(flags, "ack-fraction", 0.1);
  }
  const auto channel_it = flags.find("channel");
  if (channel_it != flags.end()) {
    config.has_channel = true;
    if (channel_it->second == "bernoulli") {
      config.channel.model = mrlc::radio::ChannelModel::kBernoulli;
    } else if (channel_it->second == "gilbert-elliott" ||
               channel_it->second == "ge") {
      config.channel.model = mrlc::radio::ChannelModel::kGilbertElliott;
    } else {
      usage();
    }
  }
  if (flags.count("burst")) {
    config.has_channel = true;
    config.channel.mean_bad_burst = flag_or(flags, "burst", 8.0);
  }
  if (!config.has_arq && !config.has_channel) return;
  if (config.has_arq) config.arq.validate();
  if (config.has_channel) config.channel.validate();
  mrlc::radio::write_dataplane_config(std::cout, config);
}

/// Solves the generated instance under `--variant` at the `--annotate-cost`
/// lifetime bound and prints the expected-cost annotation comment.  Readers
/// skip `#` lines, so annotated files stay valid mrlc-network-v1 input; the
/// line itself is stable enough to diff in golden tests:
///
///     # expected-cost variant=etx lifetime=500 objective=6.1237311043
void emit_expected_cost(const std::map<std::string, std::string>& flags,
                        const mrlc::wsn::Network& net) {
  const auto bound_it = flags.find("annotate-cost");
  if (bound_it == flags.end()) {
    if (flags.count("variant")) usage();  // --variant needs --annotate-cost
    return;
  }
  const auto variant_it = flags.find("variant");
  const std::string name =
      variant_it == flags.end() ? "mrlc" : variant_it->second;
  const auto id = mrlc::core::variant_from_string(name);
  if (!id.has_value()) usage();
  const double bound = std::stod(bound_it->second);
  const mrlc::core::VariantResult result =
      mrlc::core::solve_variant(*id, net, bound);
  std::cout << "# expected-cost variant=" << mrlc::core::to_string(*id)
            << " lifetime=" << bound << " objective=" << std::setprecision(10)
            << std::fixed << result.objective
            << std::defaultfloat << std::setprecision(6) << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrlc;
  if (argc < 2) usage();
  const std::string mode = argv[1];

  try {
    if (mode == "dfl") {
      const auto flags = parse_flags(argc, argv, 2);
      scenario::DflConfig config;
      config.seed = static_cast<std::uint64_t>(flag_or(flags, "seed", 23));
      config.tx_power_level = static_cast<int>(flag_or(flags, "tx", 19));
      config.side_m = flag_or(flags, "side", 3.6);
      const scenario::DflSystem sys = scenario::make_dfl_system(config);
      std::cout << "# DFL testbed, seed " << config.seed << ", tx level "
                << config.tx_power_level << ", side " << config.side_m << " m\n";
      emit_expected_cost(flags, sys.network);
      wsn::write_network(std::cout, sys.network);
      emit_fault_schedule(flags, sys.network, config.seed);
      emit_dataplane_config(flags);
    } else if (mode == "random") {
      const auto flags = parse_flags(argc, argv, 2);
      scenario::RandomNetworkConfig config;
      config.node_count = static_cast<int>(flag_or(flags, "nodes", 16));
      config.link_probability = flag_or(flags, "p", 0.7);
      config.prr_min = flag_or(flags, "prr-min", 0.95);
      config.prr_max = flag_or(flags, "prr-max", 1.0);
      config.energy_min_j = flag_or(flags, "energy-min", 3000.0);
      config.energy_max_j = flag_or(flags, "energy-max", 3000.0);
      const auto seed = static_cast<std::uint64_t>(flag_or(flags, "seed", 1));
      Rng rng(seed);
      const wsn::Network net = scenario::make_random_network(config, rng);
      std::cout << "# G(n, p) instance, n " << config.node_count << ", p "
                << config.link_probability << '\n';
      emit_expected_cost(flags, net);
      wsn::write_network(std::cout, net);
      emit_fault_schedule(flags, net, seed);
      emit_dataplane_config(flags);
    } else {
      usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "mrlc_gen: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
