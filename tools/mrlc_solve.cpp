/// \file mrlc_solve.cpp
/// \brief MRLC solver CLI: reads an mrlc-network file from stdin, builds an
/// aggregation tree with the requested algorithm, reports metrics on
/// stderr, and writes the mrlc-tree file to stdout.
///
/// Usage:
///   mrlc_solve ira    --lifetime ROUNDS [--strict] < net.txt > tree.txt
///   mrlc_solve greedy --lifetime ROUNDS            < net.txt > tree.txt
///   mrlc_solve mst                                  < net.txt > tree.txt
///   mrlc_solve aaml   [--lex]                       < net.txt > tree.txt
///   mrlc_solve probe                                < net.txt
///   mrlc_solve faults --lifetime ROUNDS [--relax] [--lossy] [--retx N]
///                     [--seed S]                   < net+faults.txt
///
/// `probe` brackets the maximum achievable lifetime instead of solving.
/// `faults` replays the fault-schedule block appended by `mrlc_gen --faults`
/// against the distributed maintainer and reports each repair outcome.

#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "baselines/aaml.hpp"
#include "baselines/greedy_mrlc.hpp"
#include "baselines/mst_baseline.hpp"
#include "core/feasibility.hpp"
#include "core/solver.hpp"
#include "core/ira.hpp"
#include "distributed/failure.hpp"
#include "distributed/simulator.hpp"
#include "wsn/io.hpp"
#include "wsn/metrics.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage:\n"
               "  mrlc_solve auto   --lifetime ROUNDS [--certify] < net > tree\n"
               "  mrlc_solve ira    --lifetime ROUNDS [--strict]  < net > tree\n"
               "  mrlc_solve greedy --lifetime ROUNDS             < net > tree\n"
               "  mrlc_solve mst                                  < net > tree\n"
               "  mrlc_solve aaml   [--lex]                       < net > tree\n"
               "  mrlc_solve probe                                < net\n"
               "  mrlc_solve faults --lifetime ROUNDS [--relax] [--lossy]\n"
               "                    [--retx N] [--seed S]         < net+faults\n";
  std::exit(2);
}

const char* status_name(mrlc::dist::RepairStatus status) {
  switch (status) {
    case mrlc::dist::RepairStatus::kHealed: return "healed";
    case mrlc::dist::RepairStatus::kHealedDegraded: return "healed-degraded";
    case mrlc::dist::RepairStatus::kPartitioned: return "partitioned";
  }
  return "?";
}

/// Replays a crash/depletion schedule through the message-level simulator.
int replay_faults(mrlc::wsn::Network& net, const std::string& input,
                  std::map<std::string, std::string>& flags) {
  using namespace mrlc;
  if (!flags.count("lifetime")) usage();
  const double bound = std::stod(flags["lifetime"]);

  std::istringstream schedule_in(input);
  const dist::FailureSchedule schedule = dist::read_fault_schedule(schedule_in);
  if (schedule.empty()) {
    std::cerr << "mrlc_solve: input has no fault-schedule block "
                 "(generate one with mrlc_gen --faults)\n";
    return 2;
  }

  core::IraOptions ira_options;
  ira_options.bound_mode = core::BoundMode::kDirect;
  const core::IraResult ira = core::IterativeRelaxation(ira_options).solve(net, bound);
  std::cerr << "initial tree: reliability " << wsn::tree_reliability(net, ira.tree)
            << ", lifetime " << wsn::network_lifetime(net, ira.tree)
            << " rounds, bound " << (ira.meets_bound ? "met" : "VIOLATED") << '\n';

  dist::MaintainerOptions maintainer_options;
  maintainer_options.allow_lc_relaxation = flags.count("relax") > 0;
  dist::FloodOptions flood;
  flood.lossy = flags.count("lossy") > 0;
  if (flags.count("retx")) flood.control_retx = std::stoi(flags["retx"]);
  if (flags.count("seed")) flood.seed = std::stoull(flags["seed"]);
  dist::ProtocolSimulator sim(net, ira.tree, bound, maintainer_options, flood);

  std::cout << "# fault replay: " << schedule.size() << " scheduled deaths, "
            << (flood.lossy ? "lossy" : "reliable") << " control floods\n";
  for (const dist::FailureEvent& event : schedule.events) {
    std::cout << "t=" << event.time << " node " << event.node << ' '
              << (event.kind == dist::FailureKind::kCrash ? "crash" : "depletion");
    if (!net.node_alive(event.node)) {
      std::cout << ": already dead, skipped\n";
      continue;
    }
    const long long messages_before = sim.stats().control_messages();
    const dist::RepairOutcome outcome = sim.on_node_failed(net, event.node);
    std::cout << ": " << status_name(outcome.status) << ", reattached "
              << outcome.reattached_subtrees << " subtree(s), "
              << outcome.cascade_moves << " cascade move(s), "
              << outcome.detached.size() << " node(s) detached, "
              << (sim.stats().control_messages() - messages_before)
              << " control messages\n";
  }

  const dist::MaintainerStats& stats = sim.maintainer().stats();
  const wsn::AggregationTree& tree = sim.tree();
  std::cout << "summary: " << stats.node_failures << " deaths, "
            << stats.reattachments << " reattachments, " << stats.cascade_moves
            << " cascade moves, " << stats.partitions << " partitioned subtrees, "
            << stats.lc_relaxations << " LC relaxations\n";
  std::cout << "final tree: " << tree.member_count() << '/'
            << net.alive_node_count() << " alive nodes attached, reliability "
            << wsn::tree_reliability(net, tree) << ", lifetime "
            << wsn::network_lifetime(net, tree) << " rounds (bound in force "
            << sim.maintainer().lifetime_bound() << ")\n";
  std::cout << "control plane: " << sim.stats().control_messages()
            << " messages total (" << sim.stats().flood_transmissions
            << " flood, " << sim.stats().digest_beacons << " digest, "
            << sim.stats().resync_requests + sim.stats().resync_responses
            << " resync), replicas "
            << (sim.replicas_consistent() ? "consistent" : "INCONSISTENT") << '\n';
  return 0;
}

void report(const mrlc::wsn::Network& net, const mrlc::wsn::AggregationTree& tree,
            const std::string& name) {
  using namespace mrlc;
  std::cerr << name << ": reliability " << wsn::tree_reliability(net, tree)
            << ", cost " << wsn::tree_cost(net, tree) << " (-ln Q)"
            << ", lifetime " << wsn::network_lifetime(net, tree) << " rounds\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrlc;
  if (argc < 2) usage();
  const std::string mode = argv[1];

  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage();
    key = key.substr(2);
    if (key == "strict" || key == "lex" || key == "certify" || key == "relax" ||
        key == "lossy") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    } else {
      usage();
    }
  }

  try {
    // Slurp stdin once: the faults mode re-parses the same text for the
    // appended fault-schedule block.
    std::stringstream stdin_buffer;
    stdin_buffer << std::cin.rdbuf();
    const std::string input = stdin_buffer.str();
    wsn::Network net = wsn::network_from_string(input);
    net.validate();

    if (mode == "faults") {
      return replay_faults(net, input, flags);
    }

    if (mode == "probe") {
      const core::LifetimeBracket bracket = core::bracket_max_lifetime(net);
      std::cout << "achievable-lifetime lower bound: " << bracket.lower
                << " rounds (constructive)\n"
                << "LP-certified upper bound:        " << bracket.upper
                << " rounds (" << bracket.probes << " LP probes)\n";
      return 0;
    }

    wsn::AggregationTree tree;
    if (mode == "auto") {
      if (!flags.count("lifetime")) usage();
      core::SolverOptions options;
      options.certify_with_exact = flags.count("certify") > 0;
      const core::SolveReport rep =
          core::MrlcSolver(options).solve(net, std::stod(flags["lifetime"]));
      tree = rep.result.tree;
      std::cerr << rep.narrative << '\n';
    } else if (mode == "ira" || mode == "greedy") {
      if (!flags.count("lifetime")) usage();
      const double bound = std::stod(flags["lifetime"]);
      if (mode == "ira") {
        core::IraOptions options;
        options.bound_mode = flags.count("strict") ? core::BoundMode::kPaperStrict
                                                   : core::BoundMode::kDirect;
        const core::IraResult res = core::IterativeRelaxation(options).solve(net, bound);
        tree = res.tree;
        std::cerr << "bound " << bound << ": "
                  << (res.meets_bound ? "met" : "VIOLATED (within +2 children/node)")
                  << '\n';
      } else {
        const baselines::GreedyMrlcResult res = baselines::greedy_mrlc(net, bound);
        tree = res.tree;
        std::cerr << "bound " << bound << ": " << (res.meets_bound ? "met" : "VIOLATED")
                  << " (cap relaxations: " << res.cap_relaxations << ")\n";
      }
    } else if (mode == "mst") {
      tree = baselines::mst_baseline(net).tree;
    } else if (mode == "aaml") {
      baselines::AamlOptions options;
      if (flags.count("lex")) {
        options.mode = baselines::AamlSearchMode::kLexicographic;
        options.initial = baselines::AamlInitialTree::kBfs;
      }
      tree = baselines::aaml(net, options).tree;
    } else {
      usage();
    }

    report(net, tree, mode);
    wsn::write_tree(std::cout, tree);
  } catch (const InfeasibleError& e) {
    std::cerr << "infeasible: " << e.what() << '\n';
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "mrlc_solve: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
