/// \file mrlc_solve.cpp
/// \brief MRLC solver CLI: reads an mrlc-network file from stdin, builds an
/// aggregation tree with the requested algorithm, reports metrics on
/// stderr, and writes the mrlc-tree file to stdout.
///
/// Usage:
///   mrlc_solve ira    --lifetime ROUNDS [--strict] < net.txt > tree.txt
///   mrlc_solve greedy --lifetime ROUNDS            < net.txt > tree.txt
///   mrlc_solve mst                                  < net.txt > tree.txt
///   mrlc_solve aaml   [--lex]                       < net.txt > tree.txt
///   mrlc_solve probe                                < net.txt
///
/// `probe` brackets the maximum achievable lifetime instead of solving.

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "baselines/aaml.hpp"
#include "baselines/greedy_mrlc.hpp"
#include "baselines/mst_baseline.hpp"
#include "core/feasibility.hpp"
#include "core/solver.hpp"
#include "core/ira.hpp"
#include "wsn/io.hpp"
#include "wsn/metrics.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage:\n"
               "  mrlc_solve auto   --lifetime ROUNDS [--certify] < net > tree\n"
               "  mrlc_solve ira    --lifetime ROUNDS [--strict]  < net > tree\n"
               "  mrlc_solve greedy --lifetime ROUNDS             < net > tree\n"
               "  mrlc_solve mst                                  < net > tree\n"
               "  mrlc_solve aaml   [--lex]                       < net > tree\n"
               "  mrlc_solve probe                                < net\n";
  std::exit(2);
}

void report(const mrlc::wsn::Network& net, const mrlc::wsn::AggregationTree& tree,
            const std::string& name) {
  using namespace mrlc;
  std::cerr << name << ": reliability " << wsn::tree_reliability(net, tree)
            << ", cost " << wsn::tree_cost(net, tree) << " (-ln Q)"
            << ", lifetime " << wsn::network_lifetime(net, tree) << " rounds\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrlc;
  if (argc < 2) usage();
  const std::string mode = argv[1];

  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage();
    key = key.substr(2);
    if (key == "strict" || key == "lex" || key == "certify") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    } else {
      usage();
    }
  }

  try {
    const wsn::Network net = wsn::read_network(std::cin);
    net.validate();

    if (mode == "probe") {
      const core::LifetimeBracket bracket = core::bracket_max_lifetime(net);
      std::cout << "achievable-lifetime lower bound: " << bracket.lower
                << " rounds (constructive)\n"
                << "LP-certified upper bound:        " << bracket.upper
                << " rounds (" << bracket.probes << " LP probes)\n";
      return 0;
    }

    wsn::AggregationTree tree;
    if (mode == "auto") {
      if (!flags.count("lifetime")) usage();
      core::SolverOptions options;
      options.certify_with_exact = flags.count("certify") > 0;
      const core::SolveReport rep =
          core::MrlcSolver(options).solve(net, std::stod(flags["lifetime"]));
      tree = rep.result.tree;
      std::cerr << rep.narrative << '\n';
    } else if (mode == "ira" || mode == "greedy") {
      if (!flags.count("lifetime")) usage();
      const double bound = std::stod(flags["lifetime"]);
      if (mode == "ira") {
        core::IraOptions options;
        options.bound_mode = flags.count("strict") ? core::BoundMode::kPaperStrict
                                                   : core::BoundMode::kDirect;
        const core::IraResult res = core::IterativeRelaxation(options).solve(net, bound);
        tree = res.tree;
        std::cerr << "bound " << bound << ": "
                  << (res.meets_bound ? "met" : "VIOLATED (within +2 children/node)")
                  << '\n';
      } else {
        const baselines::GreedyMrlcResult res = baselines::greedy_mrlc(net, bound);
        tree = res.tree;
        std::cerr << "bound " << bound << ": " << (res.meets_bound ? "met" : "VIOLATED")
                  << " (cap relaxations: " << res.cap_relaxations << ")\n";
      }
    } else if (mode == "mst") {
      tree = baselines::mst_baseline(net).tree;
    } else if (mode == "aaml") {
      baselines::AamlOptions options;
      if (flags.count("lex")) {
        options.mode = baselines::AamlSearchMode::kLexicographic;
        options.initial = baselines::AamlInitialTree::kBfs;
      }
      tree = baselines::aaml(net, options).tree;
    } else {
      usage();
    }

    report(net, tree, mode);
    wsn::write_tree(std::cout, tree);
  } catch (const InfeasibleError& e) {
    std::cerr << "infeasible: " << e.what() << '\n';
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "mrlc_solve: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
