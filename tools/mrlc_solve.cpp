/// \file mrlc_solve.cpp
/// \brief MRLC solver CLI: reads an mrlc-network file from stdin, builds an
/// aggregation tree with the requested algorithm, reports metrics on
/// stderr, and writes the mrlc-tree file to stdout.
///
/// Usage:
///   mrlc_solve ira    --lifetime ROUNDS [--strict] < net.txt > tree.txt
///   mrlc_solve greedy --lifetime ROUNDS            < net.txt > tree.txt
///   mrlc_solve mst                                  < net.txt > tree.txt
///   mrlc_solve aaml   [--lex]                       < net.txt > tree.txt
///   mrlc_solve probe                                < net.txt
///   mrlc_solve faults --lifetime ROUNDS [--relax] [--lossy] [--retx N]
///                     [--seed S]                   < net+faults.txt
///   mrlc_solve dataplane --lifetime ROUNDS [--rounds N]
///                     [--repair none|oracle|estimator]
///                     [--channel bernoulli|gilbert-elliott] [--burst B]
///                     [--attempts N] [--ack-fraction F] [--probe P]
///                     [--churn-sigma S] [--seed S]  < net.txt
///
/// `probe` brackets the maximum achievable lifetime instead of solving.
/// `faults` replays the fault-schedule block appended by `mrlc_gen --faults`
/// against the distributed maintainer and reports each repair outcome.
/// `dataplane` runs the closed loop of churn, ARQ convergecast, online link
/// estimation and Section-VI repair; an `arq`/`channel` config block
/// appended to the network file (see `mrlc_gen --arq`) supplies defaults
/// that the flags override.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "baselines/aaml.hpp"
#include "common/budget.hpp"
#include "common/faultpoint.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "baselines/greedy_mrlc.hpp"
#include "baselines/mst_baseline.hpp"
#include "core/anytime.hpp"
#include "core/feasibility.hpp"
#include "core/solver.hpp"
#include "core/ira.hpp"
#include "distributed/dataplane.hpp"
#include "distributed/failure.hpp"
#include "lp/simplex.hpp"
#include "distributed/simulator.hpp"
#include "radio/arq.hpp"
#include "wsn/io.hpp"
#include "wsn/metrics.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage:\n"
               "  mrlc_solve auto   --lifetime ROUNDS [--certify] < net > tree\n"
               "  mrlc_solve ira    --lifetime ROUNDS [--strict]\n"
               "                    [--variant mrlc|etx|min_energy|max_lifetime]\n"
               "                    < net > tree\n"
               "  mrlc_solve greedy --lifetime ROUNDS             < net > tree\n"
               "  mrlc_solve mst                                  < net > tree\n"
               "  mrlc_solve aaml   [--lex]                       < net > tree\n"
               "  mrlc_solve probe                                < net\n"
               "  mrlc_solve faults --lifetime ROUNDS [--relax] [--lossy]\n"
               "                    [--retx N] [--seed S]         < net+faults\n"
               "  mrlc_solve dataplane --lifetime ROUNDS [--rounds N]\n"
               "                    [--repair none|oracle|estimator]\n"
               "                    [--channel bernoulli|gilbert-elliott]\n"
               "                    [--burst B] [--attempts N]\n"
               "                    [--ack-fraction F] [--probe P]\n"
               "                    [--churn-sigma S] [--seed S]\n"
               "                    [--dataplane-engine legacy|des]\n"
               "                    [--window-rounds W]\n"
               "                    [--metrics-flush-every N]\n"
               "                    [--metrics-flush-path PATH] < net\n"
               "global flags:\n"
               "  --variant NAME        problem variant for ira/auto (default\n"
               "                        mrlc; etx minimizes expected ARQ\n"
               "                        transmissions under energy budgets,\n"
               "                        min_energy the expected radio energy,\n"
               "                        max_lifetime maximizes the lifetime\n"
               "                        with --lifetime as a floor)\n"
               "  --metrics-json PATH   write solver metrics (counters, phase\n"
               "                        timings) as JSON after the run\n"
               "  --threads N           worker threads for the parallel solver\n"
               "  --engine sparse|dense LP engine (default sparse; dense is\n"
               "                        the historical tableau oracle)\n"
               "  --lp-crosscheck       audit every sparse LP solve against\n"
               "                        the dense oracle (testing; ~2x cost)\n"
               "                        core (0 = hardware concurrency); the\n"
               "                        tree and counters are identical for\n"
               "                        every N\n"
               "  --deadline-ms N       wall-clock budget; ira/auto then run\n"
               "                        anytime: on exhaustion the best\n"
               "                        incumbent tree and a certified gap\n"
               "                        are returned with exit code 2\n"
               "  --budget N            deterministic work budget (simplex\n"
               "                        pivots + separation max-flows); same\n"
               "                        anytime semantics, bit-reproducible\n"
               "  --inject SPEC         arm fault points: name[:K][,...]\n"
               "                        (K = fire on the Kth arrival only;\n"
               "                        also via env MRLC_FAULTS)\n"
               "exit codes:\n"
               "  0 solved   2 feasible, budget exhausted (incumbent printed)\n"
               "  3 infeasible   4 bad usage or malformed input   5 internal\n";
  std::exit(4);
}

const char* status_name(mrlc::dist::RepairStatus status) {
  switch (status) {
    case mrlc::dist::RepairStatus::kHealed: return "healed";
    case mrlc::dist::RepairStatus::kHealedDegraded: return "healed-degraded";
    case mrlc::dist::RepairStatus::kPartitioned: return "partitioned";
  }
  return "?";
}

/// Replays a crash/depletion schedule through the message-level simulator.
int replay_faults(mrlc::wsn::Network& net, const std::string& input,
                  std::map<std::string, std::string>& flags) {
  using namespace mrlc;
  if (!flags.count("lifetime")) usage();
  const double bound = std::stod(flags["lifetime"]);

  std::istringstream schedule_in(input);
  const dist::FailureSchedule schedule = dist::read_fault_schedule(schedule_in);
  if (schedule.empty()) {
    std::cerr << "mrlc_solve: input has no fault-schedule block "
                 "(generate one with mrlc_gen --faults)\n";
    return 4;
  }

  core::IraOptions ira_options;
  ira_options.bound_mode = core::BoundMode::kDirect;
  const core::IraResult ira = core::IterativeRelaxation(ira_options).solve(net, bound);
  std::cerr << "initial tree: reliability " << wsn::tree_reliability(net, ira.tree)
            << ", lifetime " << wsn::network_lifetime(net, ira.tree)
            << " rounds, bound " << (ira.meets_bound ? "met" : "VIOLATED") << '\n';

  dist::MaintainerOptions maintainer_options;
  maintainer_options.allow_lc_relaxation = flags.count("relax") > 0;
  dist::FloodOptions flood;
  flood.lossy = flags.count("lossy") > 0;
  if (flags.count("retx")) flood.control_retx = std::stoi(flags["retx"]);
  if (flags.count("seed")) flood.seed = std::stoull(flags["seed"]);
  dist::ProtocolSimulator sim(net, ira.tree, bound, maintainer_options, flood);

  std::cout << "# fault replay: " << schedule.size() << " scheduled deaths, "
            << (flood.lossy ? "lossy" : "reliable") << " control floods\n";
  for (const dist::FailureEvent& event : schedule.events) {
    std::cout << "t=" << event.time << " node " << event.node << ' '
              << (event.kind == dist::FailureKind::kCrash ? "crash" : "depletion");
    if (!net.node_alive(event.node)) {
      std::cout << ": already dead, skipped\n";
      continue;
    }
    const long long messages_before = sim.stats().control_messages();
    const dist::RepairOutcome outcome = sim.on_node_failed(net, event.node);
    std::cout << ": " << status_name(outcome.status) << ", reattached "
              << outcome.reattached_subtrees << " subtree(s), "
              << outcome.cascade_moves << " cascade move(s), "
              << outcome.detached.size() << " node(s) detached, "
              << (sim.stats().control_messages() - messages_before)
              << " control messages\n";
  }

  const dist::MaintainerStats& stats = sim.maintainer().stats();
  const wsn::AggregationTree& tree = sim.tree();
  std::cout << "summary: " << stats.node_failures << " deaths, "
            << stats.reattachments << " reattachments, " << stats.cascade_moves
            << " cascade moves, " << stats.partitions << " partitioned subtrees, "
            << stats.lc_relaxations << " LC relaxations\n";
  std::cout << "final tree: " << tree.member_count() << '/'
            << net.alive_node_count() << " alive nodes attached, reliability "
            << wsn::tree_reliability(net, tree) << ", lifetime "
            << wsn::network_lifetime(net, tree) << " rounds (bound in force "
            << sim.maintainer().lifetime_bound() << ")\n";
  std::cout << "control plane: " << sim.stats().control_messages()
            << " messages total (" << sim.stats().flood_transmissions
            << " flood, " << sim.stats().digest_beacons << " digest, "
            << sim.stats().resync_requests + sim.stats().resync_responses
            << " resync), replicas "
            << (sim.replicas_consistent() ? "consistent" : "INCONSISTENT") << '\n';
  return 0;
}

/// Runs the closed-loop ARQ data plane (churn -> ARQ -> estimator -> repair).
int run_dataplane_cmd(const mrlc::wsn::Network& net, const std::string& input,
                      std::map<std::string, std::string>& flags) {
  using namespace mrlc;
  if (!flags.count("lifetime")) usage();
  const double bound = std::stod(flags["lifetime"]);

  dist::DataPlaneOptions options;
  // Defaults from an appended `arq`/`channel` config block, if any.
  {
    std::istringstream config_in(input);
    const radio::DataPlaneConfig config = radio::read_dataplane_config(config_in);
    if (config.has_arq) options.arq = config.arq;
    if (config.has_channel) options.channel = config.channel;
  }
  if (flags.count("rounds")) options.rounds = std::stoi(flags["rounds"]);
  if (flags.count("repair")) {
    const std::string& mode = flags["repair"];
    if (mode == "none") {
      options.repair = dist::RepairMode::kNone;
    } else if (mode == "oracle") {
      options.repair = dist::RepairMode::kOracle;
    } else if (mode == "estimator") {
      options.repair = dist::RepairMode::kEstimator;
    } else {
      usage();
    }
  }
  if (flags.count("channel")) {
    const std::string& model = flags["channel"];
    if (model == "bernoulli") {
      options.channel.model = radio::ChannelModel::kBernoulli;
    } else if (model == "gilbert-elliott" || model == "ge") {
      options.channel.model = radio::ChannelModel::kGilbertElliott;
    } else {
      usage();
    }
  }
  if (flags.count("burst")) options.channel.mean_bad_burst = std::stod(flags["burst"]);
  if (flags.count("attempts")) options.arq.max_attempts = std::stoi(flags["attempts"]);
  if (flags.count("ack-fraction")) options.arq.ack_fraction = std::stod(flags["ack-fraction"]);
  if (flags.count("probe")) options.probe_probability = std::stod(flags["probe"]);
  if (flags.count("churn-sigma")) {
    options.churn.cost_noise_sigma = std::stod(flags["churn-sigma"]);
  }
  if (flags.count("seed")) options.seed = std::stoull(flags["seed"]);
  if (flags.count("dataplane-engine")) {
    const std::string& engine = flags["dataplane-engine"];
    if (engine == "legacy") {
      options.engine = dist::DataPlaneEngine::kLegacy;
    } else if (engine == "des") {
      options.engine = dist::DataPlaneEngine::kDes;
    } else {
      usage();
    }
  }
  if (flags.count("window-rounds")) {
    options.window_rounds = std::stoi(flags["window-rounds"]);
  }
  if (flags.count("metrics-flush-every")) {
    options.metrics_flush_every = std::stoi(flags["metrics-flush-every"]);
  }
  if (flags.count("metrics-flush-path")) {
    options.metrics_flush_path = flags["metrics-flush-path"];
  }
  mrlc::Budget budget;
  if (flags.count("budget")) {
    budget.set_work_limit(std::stoll(flags["budget"]));
    options.budget = &budget;  // one unit per simulated round
  }
  if (flags.count("deadline-ms")) {
    budget.set_deadline_ms(std::stoll(flags["deadline-ms"]));
    options.budget = &budget;
  }
  options.validate();
  options.arq.validate();
  options.channel.validate();
  options.estimator.validate();

  core::IraOptions ira_options;
  ira_options.bound_mode = core::BoundMode::kDirect;
  const core::IraResult ira = core::IterativeRelaxation(ira_options).solve(net, bound);
  std::cerr << "initial tree: reliability " << wsn::tree_reliability(net, ira.tree)
            << ", lifetime " << wsn::network_lifetime(net, ira.tree)
            << " rounds, bound " << (ira.meets_bound ? "met" : "VIOLATED") << '\n';

  const dist::DataPlaneResult res = run_dataplane(net, ira.tree, bound, options);

  const char* repair_name = options.repair == dist::RepairMode::kNone
                                ? "none"
                                : options.repair == dist::RepairMode::kOracle
                                      ? "oracle"
                                      : "estimator";
  const char* channel_name =
      options.channel.model == radio::ChannelModel::kBernoulli ? "bernoulli"
                                                               : "gilbert-elliott";
  std::cout << "# dataplane: " << res.rounds << " rounds, repair " << repair_name
            << ", channel " << channel_name << '\n';
  std::cout << "delivery ratio        " << res.delivery_ratio << '\n';
  std::cout << "round success ratio   " << res.round_success_ratio << '\n';
  std::cout << "data tx / round       " << res.avg_data_tx_per_round << '\n';
  std::cout << "ack tx / round        " << res.avg_ack_tx_per_round << '\n';
  std::cout << "slots / round         " << res.avg_slots_per_round << '\n';
  std::cout << "duplicates suppressed " << res.duplicates_suppressed << '\n';
  std::cout << "packets dropped       " << res.packets_dropped << '\n';
  std::cout << "joules / reading      " << res.joules_per_reading << '\n';
  std::cout << "measured lifetime     " << res.measured_lifetime_rounds
            << " rounds (bound " << bound << ")\n";
  std::cout << "repairs applied       " << res.repairs_applied << " ("
            << res.degraded_events << " degraded, " << res.improved_events
            << " improved events)\n";
  if (options.repair == dist::RepairMode::kEstimator) {
    std::cout << "estimator             " << res.detections << " detections (lag "
              << res.mean_detection_lag_rounds << " rounds), "
              << res.false_positive_events << " false positives, "
              << res.missed_events << " missed, MAE " << res.estimate_mae << '\n';
  }
  std::cout << "final tree            reliability " << res.final_reliability
            << ", lifetime " << res.final_lifetime << " rounds, bound "
            << (res.bound_met ? "met" : "VIOLATED") << '\n';
  return 0;
}

void report(const mrlc::wsn::Network& net, const mrlc::wsn::AggregationTree& tree,
            const std::string& name) {
  using namespace mrlc;
  std::cerr << name << ": reliability " << wsn::tree_reliability(net, tree)
            << ", cost " << wsn::tree_cost(net, tree) << " (-ln Q)"
            << ", lifetime " << wsn::network_lifetime(net, tree) << " rounds\n";
}

/// Writes the metrics registry to `path`; reports failure on stderr but
/// never turns a successful solve into a nonzero exit.
void emit_metrics(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "mrlc_solve: cannot open metrics file " << path << '\n';
    return;
  }
  mrlc::metrics::write_json(out);
}

/// Builds the budget token from `--budget` / `--deadline-ms`; returns true
/// when either flag was present (the token is then armed).
bool configure_budget(std::map<std::string, std::string>& flags,
                      mrlc::Budget& budget) {
  bool armed = false;
  if (flags.count("budget")) {
    budget.set_work_limit(std::stoll(flags["budget"]));
    armed = true;
  }
  if (flags.count("deadline-ms")) {
    budget.set_deadline_ms(std::stoll(flags["deadline-ms"]));
    armed = true;
  }
  return armed;
}

int run(const std::string& mode, std::map<std::string, std::string>& flags) {
  using namespace mrlc;
  try {
    // Slurp stdin once: the faults mode re-parses the same text for the
    // appended fault-schedule block.
    std::stringstream stdin_buffer;
    stdin_buffer << std::cin.rdbuf();
    const std::string input = stdin_buffer.str();
    wsn::Network net = wsn::network_from_string(input);
    net.validate();

    if (mode == "faults") {
      return replay_faults(net, input, flags);
    }

    if (mode == "dataplane") {
      return run_dataplane_cmd(net, input, flags);
    }

    if (mode == "probe") {
      const core::LifetimeBracket bracket = core::bracket_max_lifetime(net);
      std::cout << "achievable-lifetime lower bound: " << bracket.lower
                << " rounds (constructive)\n"
                << "LP-certified upper bound:        " << bracket.upper
                << " rounds (" << bracket.probes << " LP probes)\n";
      return 0;
    }

    // An explicit --variant routes ira/auto through the problem-variant
    // front door.  The flag-absent path below is the historical one,
    // byte-for-byte; `--variant mrlc` must agree with it on stdout (the
    // parity gate in scripts/ci.sh compares the two).
    if (flags.count("variant") && (mode == "ira" || mode == "auto")) {
      const std::optional<core::VariantId> variant =
          core::variant_from_string(flags["variant"]);
      if (!variant.has_value()) {
        std::cerr << "mrlc_solve: unknown variant '" << flags["variant"]
                  << "' (expected mrlc, etx, min_energy or max_lifetime)\n";
        return 4;
      }
      if (!flags.count("lifetime")) usage();
      const double bound = std::stod(flags["lifetime"]);
      Budget budget;
      if (configure_budget(flags, budget)) {
        core::AnytimeOptions options;
        options.budget = &budget;
        options.variant = *variant;
        const core::AnytimeResult res = core::solve_anytime(net, bound, options);
        std::cerr << "anytime[" << core::to_string(*variant)
                  << "]: " << core::to_string(res.status) << ": "
                  << res.message << '\n';
        if (res.status == core::AnytimeStatus::kInfeasible) return 3;
        std::cerr << "objective " << res.objective << ", dual bound "
                  << res.dual_bound << ", certified gap " << res.gap
                  << ", budget used " << budget.used() << " work units\n";
        report(net, res.tree, mode);
        wsn::write_tree(std::cout, res.tree);
        return res.status == core::AnytimeStatus::kOptimal ? 0 : 2;
      }
      core::IraOptions options;
      options.bound_mode = flags.count("strict") ? core::BoundMode::kPaperStrict
                                                 : core::BoundMode::kDirect;
      const core::VariantResult res =
          core::solve_variant(*variant, net, bound, options);
      std::cerr << "variant " << core::to_string(res.variant) << ": objective "
                << res.objective << ", bound metric " << res.bound_metric
                << " (bound " << bound << ": "
                << (res.meets_bound ? "met" : "VIOLATED") << ")\n";
      if (*variant == core::VariantId::kMaxLifetime) {
        std::cerr << "LP-certified lifetime upper bound: " << res.internal_bound
                  << " rounds\n";
      }
      std::cerr << "certificate: "
                << core::problem_variant(*variant).certificate() << '\n';
      report(net, res.tree, mode);
      wsn::write_tree(std::cout, res.tree);
      return 0;
    }

    // With a budget or deadline the LP-tier modes run through the anytime
    // layer: typed status, best incumbent on exhaustion, certified gap —
    // and exit code 2 instead of an exception when the budget runs out.
    Budget budget;
    const bool has_budget = configure_budget(flags, budget);
    if (has_budget && (mode == "ira" || mode == "auto")) {
      if (!flags.count("lifetime")) usage();
      if (flags.count("strict")) {
        std::cerr << "mrlc_solve: note: anytime solving always uses the "
                     "direct relaxation; --strict is ignored\n";
      }
      core::AnytimeOptions options;
      options.budget = &budget;
      const core::AnytimeResult res =
          core::solve_anytime(net, std::stod(flags["lifetime"]), options);
      std::cerr << "anytime: " << core::to_string(res.status) << ": "
                << res.message << '\n';
      if (res.status == core::AnytimeStatus::kInfeasible) return 3;
      std::cerr << "dual bound " << res.dual_bound << " nats, certified gap "
                << res.gap << " nats, budget used " << budget.used()
                << " work units\n";
      report(net, res.tree, mode);
      wsn::write_tree(std::cout, res.tree);
      return res.status == core::AnytimeStatus::kOptimal ? 0 : 2;
    }

    wsn::AggregationTree tree;
    if (mode == "auto") {
      if (!flags.count("lifetime")) usage();
      core::SolverOptions options;
      options.certify_with_exact = flags.count("certify") > 0;
      const core::SolveReport rep =
          core::MrlcSolver(options).solve(net, std::stod(flags["lifetime"]));
      tree = rep.result.tree;
      std::cerr << rep.narrative << '\n';
    } else if (mode == "ira" || mode == "greedy") {
      if (!flags.count("lifetime")) usage();
      const double bound = std::stod(flags["lifetime"]);
      if (mode == "ira") {
        core::IraOptions options;
        options.bound_mode = flags.count("strict") ? core::BoundMode::kPaperStrict
                                                   : core::BoundMode::kDirect;
        const core::IraResult res = core::IterativeRelaxation(options).solve(net, bound);
        tree = res.tree;
        std::cerr << "bound " << bound << ": "
                  << (res.meets_bound ? "met" : "VIOLATED (within +2 children/node)")
                  << '\n';
      } else {
        const baselines::GreedyMrlcResult res = baselines::greedy_mrlc(net, bound);
        tree = res.tree;
        std::cerr << "bound " << bound << ": " << (res.meets_bound ? "met" : "VIOLATED")
                  << " (cap relaxations: " << res.cap_relaxations << ")\n";
      }
    } else if (mode == "mst") {
      tree = baselines::mst_baseline(net).tree;
    } else if (mode == "aaml") {
      baselines::AamlOptions options;
      if (flags.count("lex")) {
        options.mode = baselines::AamlSearchMode::kLexicographic;
        options.initial = baselines::AamlInitialTree::kBfs;
      }
      tree = baselines::aaml(net, options).tree;
    } else {
      usage();
    }

    report(net, tree, mode);
    wsn::write_tree(std::cout, tree);
  } catch (const InfeasibleError& e) {
    std::cerr << "infeasible: " << e.what() << '\n';
    return 3;
  } catch (const BudgetExhaustedError& e) {
    // Only reachable from paths that bypass the anytime layer (e.g. a
    // budget on the dataplane's inner IRA); still a typed, documented exit.
    std::cerr << "budget exhausted: " << e.what() << '\n';
    return 2;
  } catch (const std::invalid_argument& e) {
    // Malformed input files, bad flag values, broken preconditions.
    std::cerr << "mrlc_solve: invalid input: " << e.what() << '\n';
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "mrlc_solve: internal error: " << e.what() << '\n';
    return 5;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Fault points arm before anything else so even the parser is covered.
  try {
    mrlc::fault::configure_from_env();
  } catch (const std::exception& e) {
    std::cerr << "mrlc_solve: MRLC_FAULTS: " << e.what() << '\n';
    return 4;
  }
  if (argc < 2) usage();
  const std::string mode = argv[1];

  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage();
    key = key.substr(2);
    if (key == "strict" || key == "lex" || key == "certify" || key == "relax" ||
        key == "lossy" || key == "lp-crosscheck") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    } else {
      usage();
    }
  }

  if (flags.count("inject")) {
    try {
      mrlc::fault::configure(flags["inject"]);
    } catch (const std::exception& e) {
      std::cerr << "mrlc_solve: --inject: " << e.what() << '\n';
      return 4;
    }
  }

  if (flags.count("threads")) {
    try {
      mrlc::set_default_thread_count(
          static_cast<unsigned>(std::stoul(flags["threads"])));
    } catch (const std::exception&) {
      std::cerr << "mrlc_solve: --threads expects a non-negative integer\n";
      return 4;
    }
  }

  if (flags.count("engine")) {
    const std::string& engine = flags["engine"];
    if (engine == "sparse") {
      mrlc::lp::set_default_engine(mrlc::lp::Engine::kSparse);
    } else if (engine == "dense") {
      mrlc::lp::set_default_engine(mrlc::lp::Engine::kDense);
    } else {
      std::cerr << "mrlc_solve: --engine expects sparse or dense\n";
      return 4;
    }
  }
  if (flags.count("lp-crosscheck")) {
    mrlc::lp::set_default_cross_check(true);
  }

  // Eagerly register the solver-status instruments so every mrlc_solve
  // metrics document carries them (zero-valued when unused); library code
  // registers the same keys lazily to keep bench output byte-stable.
  mrlc::metrics::counter("solver.budget_hits");
  mrlc::metrics::counter("faults.injected");
  mrlc::metrics::counter("faults.recovered");
  mrlc::metrics::gauge("solver.status");
  for (const mrlc::core::VariantId id : mrlc::core::all_variants()) {
    mrlc::metrics::counter(std::string("ira.variant_solves.") +
                           mrlc::core::to_string(id));
  }
  mrlc::metrics::gauge("solver.variant");

  const int exit_code = run(mode, flags);
  if (mrlc::fault::injected_count() > 0 || mrlc::fault::recovered_count() > 0) {
    std::cerr << "faults: " << mrlc::fault::injected_count() << " injected, "
              << mrlc::fault::recovered_count() << " recovered\n";
  }
  // The exit code doubles as the machine-readable solver status.
  mrlc::metrics::gauge("solver.status").set(exit_code);
  // Metrics are emitted even when the solve failed: the partial counters
  // (LP solves before an infeasibility, say) are exactly what one wants
  // when diagnosing the failure.
  if (flags.count("metrics-json")) emit_metrics(flags["metrics-json"]);
  return exit_code;
}
