#pragma once

/// \file parallel.hpp
/// \brief Minimal data-parallel loop for embarrassingly parallel sweeps.
///
/// The random-graph experiments (Figs. 8-10) run hundreds of independent
/// instances; `parallel_for` fans them out over hardware threads with
/// static chunking.  The body must be thread-safe with respect to shared
/// state (the benches give each index its own RNG stream via `Rng::fork`
/// and write results into pre-sized slots, so no synchronization is
/// needed).
///
/// Exceptions thrown by the body are captured and the first one is
/// rethrown on the calling thread after all workers join, so failures are
/// not silently swallowed.

#include <algorithm>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace mrlc {

/// Invokes `body(i)` for every i in [0, count) across up to
/// `max_threads` threads (0 = hardware concurrency).  Iterations are
/// distributed in contiguous blocks; order within a block is ascending.
inline void parallel_for(int count, const std::function<void(int)>& body,
                         unsigned max_threads = 0) {
  MRLC_REQUIRE(count >= 0, "iteration count must be non-negative");
  if (count == 0) return;

  unsigned workers = max_threads == 0 ? std::thread::hardware_concurrency()
                                      : max_threads;
  if (workers == 0) workers = 1;
  workers = std::min<unsigned>(workers, static_cast<unsigned>(count));

  if (workers == 1) {
    for (int i = 0; i < count; ++i) body(i);
    return;
  }

  std::vector<std::thread> pool;
  std::vector<std::exception_ptr> failures(workers);
  const int chunk = (count + static_cast<int>(workers) - 1) / static_cast<int>(workers);
  for (unsigned w = 0; w < workers; ++w) {
    const int begin = static_cast<int>(w) * chunk;
    const int end = std::min(count, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&, w, begin, end] {
      try {
        for (int i = begin; i < end; ++i) body(i);
      } catch (...) {
        failures[w] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& failure : failures) {
    if (failure) std::rethrow_exception(failure);
  }
}

}  // namespace mrlc
