#pragma once

/// \file parallel.hpp
/// \brief Persistent thread pool for the solver's data-parallel hot loops.
///
/// The pool is created once and reused across calls: dispatching a loop is
/// a mutex/condvar handshake, not a round of thread spawns, and the body is
/// passed through a templated trampoline so no `std::function` allocation
/// or indirect call happens per iteration.  Three properties the solver
/// core relies on:
///
/// * **Determinism.**  Iterations write into caller-owned slots indexed by
///   `i`; the pool never reorders or drops indices, so any reduction the
///   caller performs over the slots in index order is bit-identical
///   regardless of the worker count (see `core/separation.cpp` and
///   `core/branch_bound.cpp`, which exploit exactly this).
/// * **Nested calls serialize.**  A `for_each` issued from inside a pool
///   worker (directly or through any library call) runs inline on that
///   worker, so nesting can neither deadlock the pool nor oversubscribe
///   the machine.
/// * **Deterministic failure.**  Exceptions thrown by the body are
///   captured per iteration; after all workers quiesce the exception with
///   the smallest iteration index among those observed is rethrown on the
///   calling thread (with one worker this is exactly the first failure, as
///   in a serial loop).
///
/// The body may take either `(int i)` or `(int i, unsigned worker)`; the
/// worker index is in `[0, thread_count())` and is stable for the duration
/// of one `for_each`, which makes per-worker scratch buffers trivial:
///
///     std::vector<Scratch> scratch(pool.thread_count());
///     pool.for_each(count, [&](int i, unsigned w) { use(scratch[w], i); });
///
/// `default_pool()` is the process-wide instance used by the solver core;
/// `set_default_thread_count()` (driven by the tools' `--threads` flag)
/// resizes it.  The legacy `parallel_for` free function survives as a thin
/// compatibility wrapper over the pool.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace mrlc {

/// \brief Reusable worker-thread pool with templated (allocation-free)
/// loop bodies.  See the file comment for the contract.
class ThreadPool {
 public:
  /// \brief Creates a pool of `threads` workers (0 = hardware concurrency).
  /// The calling thread of each `for_each` participates as worker 0, so a
  /// pool of `threads` keeps `threads - 1` helper threads parked.
  explicit ThreadPool(unsigned threads = 0) { start(resolve(threads)); }

  ~ThreadPool() { stop(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \return the worker count (caller + helpers) loops may fan out over.
  unsigned thread_count() const noexcept { return workers_; }

  /// \brief Rebuilds the pool with a new worker count (0 = hardware
  /// concurrency).  Must not be called from inside a `for_each` body.
  void resize(unsigned threads) {
    std::lock_guard<std::mutex> dispatch(dispatch_mutex_);
    const unsigned target = resolve(threads);
    if (target == workers_) return;
    stop();
    start(target);
  }

  /// \brief Invokes `body(i)` (or `body(i, worker)`) for every i in
  /// [0, count), fanning out over at most `max_workers` workers (0 = all).
  /// Blocks until every iteration completed; rethrows the smallest-index
  /// captured exception.  Safe to call concurrently from several threads
  /// (calls serialize) and reentrantly from a body (runs inline).
  template <typename Body>
  void for_each(int count, Body&& body, unsigned max_workers = 0) {
    MRLC_REQUIRE(count >= 0, "iteration count must be non-negative");
    if (count == 0) return;
    unsigned effective = workers_;
    if (max_workers != 0) effective = std::min(effective, max_workers);
    effective = std::min(effective, static_cast<unsigned>(count));
    if (effective <= 1 || in_pool_work()) {
      run_serial(body, count);
      return;
    }

    std::lock_guard<std::mutex> dispatch(dispatch_mutex_);
    job_.kernel = &kernel_trampoline<std::remove_reference_t<Body>>;
    job_.ctx = static_cast<void*>(&body);
    job_.count = count;
    job_.chunk = std::max(1, count / (static_cast<int>(effective) * 4));
    job_.cursor.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    failure_index_ = std::numeric_limits<int>::max();
    failure_ = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_.workers = effective;
      pending_ = effective - 1;  // helpers with index in [1, effective)
      ++epoch_;
    }
    work_ready_.notify_all();

    run_worker(0);  // the caller is worker 0

    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_done_.wait(lock, [&] { return pending_ == 0; });
    }
    if (failure_ != nullptr) {
      std::exception_ptr failure = failure_;
      failure_ = nullptr;
      std::rethrow_exception(failure);
    }
  }

  /// \return true on a thread currently executing pool work (used to run
  /// nested calls inline; exposed for tests).
  static bool in_pool_work() noexcept { return in_pool_work_flag(); }

 private:
  /// One dispatched loop; `cursor` hands out contiguous index blocks.
  struct Job {
    void (*kernel)(void* ctx, ThreadPool& pool, int begin, int end,
                   unsigned worker) = nullptr;
    void* ctx = nullptr;
    std::atomic<int> cursor{0};
    int count = 0;
    int chunk = 1;
    unsigned workers = 0;
  };

  static bool& in_pool_work_flag() noexcept {
    thread_local bool flag = false;
    return flag;
  }

  static unsigned resolve(unsigned threads) {
    if (threads == 0) threads = std::thread::hardware_concurrency();
    return threads == 0 ? 1 : threads;
  }

  /// Calls the body with or without the worker index, whichever it takes.
  template <typename Body>
  static void invoke(Body& body, int i, unsigned worker) {
    if constexpr (std::is_invocable_v<Body&, int, unsigned>) {
      body(i, worker);
    } else {
      body(i);
    }
  }

  template <typename Body>
  void run_serial(Body& body, int count) {
    const bool was_inside = in_pool_work_flag();
    in_pool_work_flag() = true;
    try {
      for (int i = 0; i < count; ++i) invoke(body, i, 0);
    } catch (...) {
      in_pool_work_flag() = was_inside;
      throw;
    }
    in_pool_work_flag() = was_inside;
  }

  /// The only per-body generated code: iterates one claimed block, catching
  /// per iteration so the failing index is known exactly.
  template <typename Body>
  static void kernel_trampoline(void* ctx, ThreadPool& pool, int begin, int end,
                                unsigned worker) {
    Body& body = *static_cast<Body*>(ctx);
    for (int i = begin; i < end; ++i) {
      if (pool.failed_.load(std::memory_order_relaxed)) return;
      try {
        invoke(body, i, worker);
      } catch (...) {
        pool.record_failure(i, std::current_exception());
        return;
      }
    }
  }

  void record_failure(int index, std::exception_ptr failure) {
    std::lock_guard<std::mutex> lock(failure_mutex_);
    if (index < failure_index_) {
      failure_index_ = index;
      failure_ = std::move(failure);
    }
    failed_.store(true, std::memory_order_relaxed);
  }

  /// Claims and runs index blocks until the job's cursor is exhausted.
  void run_worker(unsigned worker) {
    in_pool_work_flag() = true;
    while (!failed_.load(std::memory_order_relaxed)) {
      const int begin = job_.cursor.fetch_add(job_.chunk, std::memory_order_relaxed);
      if (begin >= job_.count) break;
      const int end = std::min(job_.count, begin + job_.chunk);
      job_.kernel(job_.ctx, *this, begin, end, worker);
    }
    in_pool_work_flag() = false;
  }

  void helper_loop(unsigned worker) {
    std::uint64_t seen = 0;
    for (;;) {
      unsigned job_workers = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
        if (shutdown_) return;
        seen = epoch_;
        job_workers = job_.workers;
      }
      if (worker >= job_workers) continue;  // not needed for this loop
      run_worker(worker);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
      }
      work_done_.notify_all();
    }
  }

  void start(unsigned workers) {
    workers_ = workers;
    shutdown_ = false;
    epoch_ = 0;
    helpers_.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w) {
      helpers_.emplace_back([this, w] { helper_loop(w); });
    }
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& helper : helpers_) helper.join();
    helpers_.clear();
  }

  std::mutex dispatch_mutex_;  ///< serializes concurrent for_each callers
  std::mutex mutex_;           ///< guards epoch_/pending_/shutdown_
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<std::thread> helpers_;
  unsigned workers_ = 1;
  std::uint64_t epoch_ = 0;
  unsigned pending_ = 0;
  bool shutdown_ = false;
  Job job_;

  std::mutex failure_mutex_;
  std::atomic<bool> failed_{false};
  int failure_index_ = std::numeric_limits<int>::max();
  std::exception_ptr failure_;
};

/// \brief The process-wide pool used by the solver core (separation sweep,
/// branch-and-bound waves) and the bench drivers.  Created on first use
/// with `default_thread_count()` workers.
ThreadPool& default_pool();

/// \brief Resizes the default pool (0 = hardware concurrency).  Wired to
/// the tools' `--threads` flag; call before solving, not from a body.
void set_default_thread_count(unsigned threads);

/// \return the default pool's current worker count.
unsigned default_thread_count();

/// Invokes `body(i)` for every i in [0, count) over the default pool, using
/// at most `max_threads` workers (0 = all).  Compatibility wrapper kept for
/// callers that predate `ThreadPool`; new code should use the pool's
/// templated `for_each`, which avoids the `std::function` allocation and
/// per-iteration indirect call this signature forces.
inline void parallel_for(int count, const std::function<void(int)>& body,
                         unsigned max_threads = 0) {
  MRLC_REQUIRE(count >= 0, "iteration count must be non-negative");
  if (count == 0) return;
  if (max_threads == 1) {  // documented guarantee: ascending serial order
    for (int i = 0; i < count; ++i) body(i);
    return;
  }
  default_pool().for_each(count, [&body](int i) { body(i); }, max_threads);
}

}  // namespace mrlc
