#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace mrlc {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MRLC_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::begin_row() {
  MRLC_REQUIRE(cells_.empty() || cells_.back().size() == headers_.size(),
               "previous row is incomplete");
  cells_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  MRLC_REQUIRE(!cells_.empty(), "begin_row before add");
  MRLC_REQUIRE(cells_.back().size() < headers_.size(), "row has too many cells");
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << '\n';
  };

  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : "  ") << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : cells_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : cells_) print_row(row);
}

}  // namespace mrlc
