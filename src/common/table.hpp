#pragma once

/// \file table.hpp
/// \brief Column-aligned plain-text tables and CSV output.
///
/// The benchmark binaries print the same rows/series the paper's figures
/// report; this helper keeps that output readable and machine-parsable
/// (every table can also be emitted as CSV).

#include <iosfwd>
#include <string>
#include <vector>

namespace mrlc {

/// A simple row/column table.  Cells are strings; numeric convenience
/// overloads format with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row.  Cells are appended with `add`.
  Table& begin_row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 4);
  Table& add(long long value);
  Table& add(int value) { return add(static_cast<long long>(value)); }
  Table& add(std::size_t value) { return add(static_cast<long long>(value)); }

  std::size_t rows() const noexcept { return cells_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

  /// Renders with aligned columns and a header separator.
  void print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-ish quoting for commas/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision (helper shared with Table).
std::string format_double(double value, int precision);

}  // namespace mrlc
