#pragma once

/// \file statistics.hpp
/// \brief Small online/offline statistics helpers used by simulations and
/// benchmark harnesses to summarize Monte-Carlo runs.

#include <cstddef>
#include <span>
#include <vector>

namespace mrlc {

/// Welford online accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Summary of a sample: n, mean, stddev, min, percentiles, max.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Linear-interpolated percentile of a sample; `q` in [0, 1].
/// Returns 0 for an empty sample.
double percentile(std::span<const double> sorted_values, double q);

/// Computes the full summary (copies + sorts internally).
Summary summarize(std::span<const double> values);

/// Convenience: arithmetic mean (0 for empty input).
double mean_of(std::span<const double> values);

}  // namespace mrlc
