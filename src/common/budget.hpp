#pragma once

/// \file budget.hpp
/// \brief Cooperative cancellation / resource-budget token for the solver.
///
/// A `Budget` is threaded (as a nullable pointer in the options structs)
/// through every long-running loop in the solver: simplex pivots, the
/// cutting-plane rounds, separation sweeps, IRA outer iterations,
/// branch-and-bound waves, and data-plane rounds.  It carries up to three
/// independent stop conditions:
///
/// * a **work-unit limit** — deterministic, used by tests and the anytime
///   acceptance gates.  One unit is one simplex pivot or one separation
///   max-flow; branch-and-bound charges its explored-node totals at wave
///   boundaries.  Because every `charge` happens at a *serial* checkpoint
///   (pivot loops are single-threaded; parallel stages charge at their
///   serial merge points with constant batch sizes), the exhaustion point
///   is a pure function of the instance — identical for every thread
///   count;
/// * a **wall-clock deadline** — for production callers (`--deadline-ms`).
///   The steady clock is only consulted every `kDeadlineStride` charges so
///   the per-pivot cost stays a couple of arithmetic ops;
/// * an external **cancel flag** — flipped from any thread via `cancel()`.
///
/// The token never throws by itself.  Loops poll `exhausted()` (or the
/// return value of `charge`) at their deterministic checkpoints and unwind
/// through their own typed paths (`lp::SolveStatus::kInterrupted`,
/// `BudgetExhaustedError`), which the anytime layer (`core/anytime.hpp`)
/// converts into a typed status plus the best incumbent — never an
/// exception at the public API.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mrlc {

class Budget {
 public:
  Budget() = default;
  // Atomic members make the token immovable; share it by pointer (that is
  // how the options structs carry it anyway).
  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Caps the total chargeable work at `units` (>= 0).  Zero is a *hard*
  /// zero: the token reports `exhausted()` immediately, before any charge,
  /// so callers that check at their entry checkpoint (the IRA outer loop,
  /// the cut loop) never start the work — the anytime layer then returns
  /// the seeded incumbent with zero units used.  Unset by default
  /// (unlimited).
  void set_work_limit(std::int64_t units) {
    work_limit_ = units < 0 ? -1 : units;
    if (work_limit_ == 0) exhausted_.store(true, std::memory_order_relaxed);
  }

  /// Sets the deadline to `ms` milliseconds from now.  Like the hard-zero
  /// work limit, `ms <= 0` means "already expired": the token is exhausted
  /// before any work runs instead of after the first clock-poll stride.
  void set_deadline_ms(std::int64_t ms) {
    deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    has_deadline_ = true;
    if (ms <= 0) exhausted_.store(true, std::memory_order_relaxed);
  }

  /// Requests cooperative cancellation; safe from any thread.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Records `n` units of completed work and re-evaluates the stop
  /// conditions.  \return true while the budget still has headroom; false
  /// once exhausted or cancelled (sticky).  Call only from deterministic
  /// serial checkpoints — never from inside a parallel region.
  bool charge(std::int64_t n = 1) {
    const std::int64_t used =
        used_.fetch_add(n, std::memory_order_relaxed) + n;
    if (work_limit_ >= 0 && used > work_limit_) {
      exhausted_.store(true, std::memory_order_relaxed);
    } else if (has_deadline_ && used / kDeadlineStride !=
                                    (used - n) / kDeadlineStride) {
      if (std::chrono::steady_clock::now() >= deadline_) {
        exhausted_.store(true, std::memory_order_relaxed);
      }
    }
    return !exhausted();
  }

  /// True once the work limit is overrun, the deadline has passed (as
  /// observed by a prior `charge`), or `cancel()` was called.  Cheap: two
  /// relaxed atomic loads, no clock read.
  bool exhausted() const noexcept {
    return exhausted_.load(std::memory_order_relaxed) || cancelled();
  }

  /// Units charged so far (diagnostics).
  std::int64_t used() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }

  std::int64_t work_limit() const noexcept { return work_limit_; }
  bool has_deadline() const noexcept { return has_deadline_; }

 private:
  /// Clock-poll stride: the deadline is checked once per this many charged
  /// units, bounding the charge cost between polls to pure arithmetic.
  static constexpr std::int64_t kDeadlineStride = 64;

  std::atomic<std::int64_t> used_{0};
  std::int64_t work_limit_ = -1;  ///< -1 = unlimited
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<bool> exhausted_{false};
  std::atomic<bool> cancelled_{false};
};

}  // namespace mrlc
