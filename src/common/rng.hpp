#pragma once

/// \file rng.hpp
/// \brief Deterministic, seedable random number generation.
///
/// All simulations in this library are reproducible: every stochastic
/// component takes an explicit `Rng&` (or a seed) instead of touching global
/// state.  The generator is xoshiro256** seeded through SplitMix64, which is
/// fast, has a 256-bit state, and passes BigCrush — more than adequate for
/// Monte-Carlo packet simulation.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.hpp"

namespace mrlc {

/// SplitMix64 step; used to expand a 64-bit seed into generator state and as
/// a cheap stateless hash for per-entity sub-streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xC0FFEE123456789AULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) {
    MRLC_REQUIRE(lo <= hi, "uniform range must be ordered");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MRLC_REQUIRE(lo <= hi, "uniform_int range must be ordered");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    auto l = static_cast<std::uint64_t>(m);
    if (l < span) {
      const std::uint64_t threshold = (0 - span) % span;
      while (l < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * span;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) {
    MRLC_REQUIRE(sigma >= 0.0, "normal sigma must be non-negative");
    return mean + sigma * normal();
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent sub-stream generator; useful for giving each
  /// simulated sensor node its own deterministic randomness.
  Rng fork(std::uint64_t stream_id) noexcept {
    std::uint64_t mix = (*this)() ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1));
    return Rng(splitmix64(mix));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace mrlc
