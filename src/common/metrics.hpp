#pragma once

/// \file metrics.hpp
/// \brief Process-wide observability: cheap thread-safe counters, gauges,
/// and histograms with a JSON emitter.
///
/// The solver's hot loops (IRA outer iterations, simplex pivots, separation
/// cuts, branch-and-bound nodes, ARQ retransmissions) record into named
/// instruments held by a global registry.  Design goals, in order:
///
/// 1. **Near-zero overhead when disabled.**  Every mutation first performs
///    one relaxed atomic load of the global enable flag and branches away.
///    Defining `MRLC_METRICS_DISABLED` at compile time replaces that check
///    with `constexpr false`, so the mutation bodies (and, with them, the
///    instrument lookups) are dead-code-eliminated entirely.
/// 2. **Thread safety without locks — or shared cachelines — on the hot
///    path.**  Instruments are registered once under a mutex and then
///    mutated with relaxed atomics only.  Counters and histograms are
///    additionally *sharded*: each thread mutates its own cacheline-aligned
///    slot (assigned round-robin on first use), so `common/parallel.hpp`
///    fan-outs hammering the same counter from every hardware thread no
///    longer bounce one cacheline between cores.  Readers merge the shards
///    on access; see `docs/metrics.md` for what a mid-flight snapshot
///    guarantees.
/// 3. **Stable addresses.**  `metrics::counter("x")` returns a reference
///    that remains valid for the life of the process, so call sites cache
///    it in a function-local static and pay the registry lookup once.
///
/// The enable flag defaults to *on* and is initialized from the
/// `MRLC_METRICS` environment variable (`0`, `off`, or `false` disable);
/// `set_enabled()` overrides it programmatically.  See `docs/metrics.md`
/// for the emitted JSON schema and the full instrument inventory.
///
/// Typical call site:
///
///     static metrics::Counter& pivots = metrics::counter("simplex.pivots");
///     pivots.add(iterations);

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>

namespace mrlc::metrics {

#if defined(MRLC_METRICS_DISABLED)
/// Compile-time kill switch: everything below compiles to no-ops.
constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#else
namespace detail {
/// The runtime enable flag (relaxed loads only on hot paths).
std::atomic<bool>& enabled_flag() noexcept;
}  // namespace detail

/// \brief True when instruments record; one relaxed atomic load.
inline bool enabled() noexcept {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

/// \brief Turns recording on or off at runtime (overrides `MRLC_METRICS`).
/// \param on  the new state; instruments keep their accumulated values.
void set_enabled(bool on) noexcept;
#endif

namespace detail {

/// Number of per-thread slots in a sharded instrument (power of two).
/// Threads are assigned slots round-robin on first use, so up to
/// kShardCount concurrent writers proceed with zero cacheline sharing;
/// beyond that, slots are reused (still correct, just contended).
inline constexpr unsigned kShardCount = 16;

/// \return this thread's shard slot in [0, kShardCount), stable for the
/// thread's lifetime.  Persistent pool workers therefore keep their slot
/// across dispatches.
inline unsigned shard_slot() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kShardCount - 1);
  return slot;
}

/// One cacheline-aligned accumulator cell, padded so adjacent shards never
/// share a line.
struct alignas(64) ShardCell {
  std::atomic<long long> value{0};
};

}  // namespace detail

/// \brief Monotonically increasing integer instrument, sharded per thread.
///
/// `add` is a relaxed fetch-add on the calling thread's own shard, guarded
/// by the enable flag; safe to call concurrently from any thread and free
/// of cross-thread cacheline bouncing for up to `detail::kShardCount`
/// concurrent writers.  `value()` merges the shards: the result counts
/// every `add` that happened-before the read exactly once and never
/// double-counts (each add touches exactly one shard once); concurrent
/// adds may or may not be included.
class Counter {
 public:
  /// \brief Adds `delta` to the calling thread's shard (no-op while
  /// metrics are disabled).
  /// \param delta  amount to add; negative deltas are allowed for callers
  ///        that reconcile overcounts, but the conventional use is >= 0.
  void add(long long delta = 1) noexcept {
    if (!enabled()) return;
    shards_[detail::shard_slot()].value.fetch_add(delta,
                                                  std::memory_order_relaxed);
  }

  /// \return the current accumulated value (sum over all shards).
  long long value() const noexcept {
    long long total = 0;
    for (const detail::ShardCell& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// \brief Resets every shard to zero (registry `reset()` helper).
  void reset() noexcept {
    for (detail::ShardCell& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  detail::ShardCell shards_[detail::kShardCount];
};

/// \brief Last-write-wins floating-point instrument (e.g. a ratio or the
/// size of the active working set at the end of a phase).
class Gauge {
 public:
  /// \brief Stores `value` (no-op while metrics are disabled).
  void set(double value) noexcept {
    if (!enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  /// \return the last stored value (0.0 if never set).
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  /// \brief Resets the stored value to zero.
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Lock-free histogram of non-negative integer samples with bounded
/// relative error, in the style of HdrHistogram, sharded per thread.
///
/// Values below `kSubBuckets` land in exact unit buckets; larger values are
/// bucketed logarithmically with `kSubBuckets` linear sub-buckets per
/// power of two, so any reconstructed value (and therefore any percentile)
/// is within a relative error of `1 / kSubBuckets` (6.25%) of the true
/// sample.
///
/// Each recording thread owns one of `kShards` shards (its round-robin
/// slot, see `detail::shard_slot`), so hot loops recording from every
/// worker touch disjoint cachelines; readers merge the shards.  Snapshot
/// semantics under concurrent recording: a `record()` that happened-before
/// the read is reflected in full (its bucket, count, sum, min and max all
/// included — the sample is never lost or double-counted); a concurrent
/// `record()` may be reflected partially (e.g. counted but not yet summed),
/// so mid-flight `mean()`/`percentile()` are approximate.  After the
/// recording threads quiesce, every accessor is exact.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;                  ///< log2 resolution
  static constexpr long long kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBucketCount = 64 * kSubBuckets;     ///< covers all int64
  static constexpr unsigned kShards = 8;  ///< per-thread slots (power of two)

  /// \brief Records one sample into the calling thread's shard (negative
  /// samples clamp to 0; no-op while metrics are disabled).
  void record(long long value) noexcept;

  /// \return number of samples recorded (merged over shards).
  long long count() const noexcept;
  /// \return sum of all samples (exact, unlike the bucketed distribution).
  long long sum() const noexcept;
  /// \return smallest sample recorded, or 0 when empty.
  long long min() const noexcept;
  /// \return largest sample recorded, or 0 when empty.
  long long max() const noexcept;
  /// \return exact mean of the samples, or 0.0 when empty.
  double mean() const noexcept;

  /// \brief Approximate quantile from the merged bucketed distribution.
  /// \param p  quantile in [0, 1] (0.5 = median).
  /// \return a value within 1/kSubBuckets relative error of the true
  ///         p-quantile, or 0 when the histogram is empty.
  long long percentile(double p) const noexcept;

  /// \brief Clears all samples in every shard.
  void reset() noexcept;

 private:
  /// One thread's slice of the distribution, cacheline-aligned so shards
  /// never false-share.  min/max hold open-interval sentinels while empty
  /// so every record() can use the same CAS loop (no racy first-sample
  /// special case); the merged accessors mask the sentinels back to 0.
  struct alignas(64) Shard {
    std::atomic<long long> buckets[kBucketCount] = {};
    std::atomic<long long> count{0};
    std::atomic<long long> sum{0};
    std::atomic<long long> min{std::numeric_limits<long long>::max()};
    std::atomic<long long> max{std::numeric_limits<long long>::min()};
  };

  static int bucket_index(long long value) noexcept;
  static long long bucket_representative(int index) noexcept;

  Shard shards_[kShards];
};

/// \brief One node of the scoped-phase timing tree (see `common/trace.hpp`).
///
/// Nodes are interned by (parent, name) in the registry and never freed, so
/// raw pointers to them are stable.  Accumulators are relaxed atomics:
/// multiple threads may time the same phase concurrently.
struct PhaseNode {
  std::string name;            ///< this segment ("lp", not "ira/lp")
  PhaseNode* parent = nullptr; ///< nullptr for the synthetic root
  std::atomic<long long> count{0};     ///< completed enters of this phase
  std::atomic<long long> total_ns{0};  ///< inclusive wall time, steady clock

  /// \return the full "a/b/c" path from the root to this node.
  std::string path() const;
};

/// \brief Returns (registering on first use) the counter named `name`.
/// The reference is process-lifetime stable; cache it in a static.
Counter& counter(std::string_view name);

/// \brief Returns (registering on first use) the gauge named `name`.
Gauge& gauge(std::string_view name);

/// \brief Returns (registering on first use) the histogram named `name`.
Histogram& histogram(std::string_view name);

/// \brief Zeroes every registered instrument and phase accumulator without
/// unregistering anything (bench runners call this between workloads).
void reset();

/// \brief Emits the full registry as JSON (schema `mrlc-metrics-v1`,
/// documented in docs/metrics.md): counters, gauges, histogram summaries,
/// and the phase-timing tree, all sorted by name for stable diffs.
/// \param os  destination stream; the document ends with a newline.
/// \param zero_times  emit every phase `total_ms` as 0 — counters in this
///        codebase are seeded-deterministic, so this makes the whole
///        document bit-reproducible (used by `mrlc_bench --no-timings`).
void write_json(std::ostream& os, bool zero_times = false);

/// \return `write_json` output as a string (convenience for tests/tools).
std::string to_json_string(bool zero_times = false);

namespace detail {
/// Interns a phase child under `parent` (nullptr = root); used by trace.hpp.
PhaseNode* intern_phase(PhaseNode* parent, std::string_view name);
/// Thread-local pointer to the currently open phase (nullptr = root scope).
PhaseNode*& current_phase() noexcept;
}  // namespace detail

}  // namespace mrlc::metrics
