#include "common/parallel.hpp"

namespace mrlc {

ThreadPool& default_pool() {
  // Leaked (like the metrics registry) so worker shutdown never races
  // static destructors in other translation units; the threads park on a
  // condition variable and cost nothing while idle.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void set_default_thread_count(unsigned threads) {
  default_pool().resize(threads);
}

unsigned default_thread_count() { return default_pool().thread_count(); }

}  // namespace mrlc
