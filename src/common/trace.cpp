#include "common/trace.hpp"

namespace mrlc::trace {

ScopedPhase::ScopedPhase(std::string_view name) {
  if (!metrics::enabled()) return;
  metrics::PhaseNode*& current = metrics::detail::current_phase();
  parent_ = current;
  node_ = metrics::detail::intern_phase(parent_, name);
  current = node_;
  start_ = std::chrono::steady_clock::now();
}

ScopedPhase::~ScopedPhase() {
  if (node_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  node_->total_ns.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(),
      std::memory_order_relaxed);
  node_->count.fetch_add(1, std::memory_order_relaxed);
  metrics::detail::current_phase() = parent_;
}

double Stopwatch::elapsed_ms() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         1e6;
}

}  // namespace mrlc::trace
