#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mrlc {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> sorted_values, double q) {
  MRLC_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must lie in [0, 1]");
  if (sorted_values.empty()) return 0.0;
  if (sorted_values.size() == 1) return sorted_values[0];
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  RunningStats rs;
  for (double v : sorted) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile(sorted, 0.25);
  s.median = percentile(sorted, 0.50);
  s.p75 = percentile(sorted, 0.75);
  return s;
}

double mean_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

}  // namespace mrlc
