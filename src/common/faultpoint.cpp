#include "common/faultpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "common/metrics.hpp"

namespace mrlc::fault {

namespace {

struct Point {
  const char* name;
  std::atomic<bool> armed{false};
  /// 0 = fire on every arrival; K > 0 = fire on the Kth arrival only.
  std::atomic<long long> fire_at{0};
  std::atomic<long long> arrivals{0};
};

/// The registry is a fixed array: fault points are code locations, not
/// runtime data, and a fixed array keeps `fire` lock-free.
Point& points(int i) {
  static Point registry[8] = {
      {"lp.force_cold"},      {"lp.drop_basis"},        {"parallel.task_fail"},
      {"cutpool.corrupt"},    {"separation.flow_fail"}, {"service.worker_crash"},
      {"service.cache_poison"}, {"service.slow_request"},
  };
  return registry[i];
}
constexpr int kPointCount = 8;

std::atomic<int> armed_count{0};
std::atomic<long long> injected_total{0};
std::atomic<long long> recovered_total{0};
std::mutex configure_mutex;

Point* find(const std::string& name) {
  for (int i = 0; i < kPointCount; ++i) {
    if (name == points(i).name) return &points(i);
  }
  return nullptr;
}

}  // namespace

const std::vector<std::string>& registered() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (int i = 0; i < kPointCount; ++i) out.emplace_back(points(i).name);
    return out;
  }();
  return names;
}

void configure(const std::string& spec) {
  std::lock_guard<std::mutex> lock(configure_mutex);
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t comma = spec.find(',', at);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(at, comma - at);
    at = comma + 1;
    if (entry.empty()) continue;

    long long fire_at = 0;
    const std::size_t colon = entry.find(':');
    if (colon != std::string::npos) {
      const std::string count = entry.substr(colon + 1);
      entry.erase(colon);
      try {
        std::size_t used = 0;
        fire_at = std::stoll(count, &used);
        if (used != count.size() || fire_at < 1) throw std::invalid_argument("");
      } catch (const std::exception&) {
        throw std::invalid_argument("fault spec '" + entry + ":" + count +
                                    "': count must be a positive integer");
      }
    }
    Point* point = find(entry);
    if (point == nullptr) {
      std::string known;
      for (const std::string& name : registered()) {
        known += known.empty() ? name : ", " + name;
      }
      throw std::invalid_argument("unknown fault point '" + entry +
                                  "' (registered: " + known + ")");
    }
    point->fire_at.store(fire_at, std::memory_order_relaxed);
    point->arrivals.store(0, std::memory_order_relaxed);
    if (!point->armed.exchange(true, std::memory_order_relaxed)) {
      armed_count.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void configure_from_env() {
  const char* spec = std::getenv("MRLC_FAULTS");
  if (spec != nullptr && spec[0] != '\0') configure(spec);
}

void reset() {
  std::lock_guard<std::mutex> lock(configure_mutex);
  for (int i = 0; i < kPointCount; ++i) {
    Point& point = points(i);
    if (point.armed.exchange(false, std::memory_order_relaxed)) {
      armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    point.fire_at.store(0, std::memory_order_relaxed);
    point.arrivals.store(0, std::memory_order_relaxed);
  }
  injected_total.store(0, std::memory_order_relaxed);
  recovered_total.store(0, std::memory_order_relaxed);
}

bool fire(const char* name) {
  if (armed_count.load(std::memory_order_relaxed) == 0) return false;
  Point* point = find(name);
  if (point == nullptr || !point->armed.load(std::memory_order_relaxed)) {
    return false;
  }
  const long long arrival =
      point->arrivals.fetch_add(1, std::memory_order_relaxed) + 1;
  const long long fire_at = point->fire_at.load(std::memory_order_relaxed);
  if (fire_at != 0 && arrival != fire_at) return false;
  injected_total.fetch_add(1, std::memory_order_relaxed);
  // Registered lazily (inside the fired path) so fault-free runs never add
  // the key to the metrics registry — keeps bench output byte-identical.
  static metrics::Counter& injected = metrics::counter("faults.injected");
  injected.add();
  return true;
}

void note_recovered(const char*) {
  recovered_total.fetch_add(1, std::memory_order_relaxed);
  static metrics::Counter& recovered = metrics::counter("faults.recovered");
  recovered.add();
}

long long injected_count() {
  return injected_total.load(std::memory_order_relaxed);
}

long long recovered_count() {
  return recovered_total.load(std::memory_order_relaxed);
}

}  // namespace mrlc::fault
