#pragma once

/// \file faultpoint.hpp
/// \brief Deterministic fault-injection harness.
///
/// A *fault point* is a named location in the solver where a specific
/// internal failure can be forced on demand: an LP warm start abandoned, a
/// basis dropped, a thread-pool task throwing, a cut-pool recheck handed a
/// corrupted set, a separation max-flow failing.  Each registered point is
/// paired with an *audited recovery path* (or a typed error) so the test
/// battery and the CI smoke stage can prove the blast radius of every
/// failure mode: a forced fault either recovers to the exact same tree and
/// cost as a clean run, or exits with a typed non-zero status — never a
/// silently wrong answer.
///
/// Arming.  Faults are armed via the `MRLC_FAULTS` environment variable or
/// `mrlc_solve --inject`, both taking a comma-separated spec:
///
///     MRLC_FAULTS=lp.force_cold                 # fire on every arrival
///     MRLC_FAULTS=cutpool.corrupt:3             # fire on the 3rd arrival only
///     MRLC_FAULTS=lp.drop_basis,separation.flow_fail
///
/// Unarmed points cost one relaxed atomic load per arrival (a process-wide
/// armed count), so shipping the hooks in release builds is free.  The
/// one-shot `:K` form counts arrivals with an atomic, which is only
/// deterministic at serial fault points; the always-on form (used by the
/// CI smoke stage) is deterministic everywhere.
///
/// Registered points and their designed outcomes:
///
/// | fault point            | forced failure                      | outcome         |
/// |------------------------|-------------------------------------|-----------------|
/// | `lp.force_cold`        | warm resolve abandons its basis     | recover (cold)  |
/// | `lp.drop_basis`        | retained basis silently invalidated | recover (cold)  |
/// | `parallel.task_fail`   | a pool task throws mid-batch        | typed error     |
/// | `cutpool.corrupt`      | pooled subtour set corrupted        | recover (skip)  |
/// | `separation.flow_fail` | batch max-flow fails                | recover (retry) |
/// | `service.worker_crash` | a service worker dies mid-solve     | typed CANCELLED |
/// | `service.cache_poison` | a warm cache entry is poisoned      | recover (drop)  |
/// | `service.slow_request` | a request stalls for tens of ms     | recover (none)  |
///
/// The three `service.*` points live in the solver daemon
/// (`src/service/server.cpp`): a crashed worker turns into a typed
/// `cancelled` reply (the request dies, the daemon does not), a poisoned
/// cache entry is dropped and its topology quarantined (never retried),
/// and a slow request simply burns wall clock so deadline/overload paths
/// can be exercised on demand.  The full inventory and recovery contract
/// is tabulated in docs/algorithms.md §14.
///
/// Counters: `faults.injected` increments on every fired fault,
/// `faults.recovered` on every audited recovery (so injected == recovered
/// on a run that exits 0).

#include <string>
#include <vector>

namespace mrlc::fault {

/// Names of every registered fault point, for `--inject` validation, docs,
/// and the CI sweep.
const std::vector<std::string>& registered();

/// Arms the faults in `spec` (comma-separated `name` or `name:K` entries;
/// see file comment).  Cumulative with earlier calls.
/// \throws std::invalid_argument on an unknown name or malformed count.
void configure(const std::string& spec);

/// Arms from the `MRLC_FAULTS` environment variable (no-op when unset).
/// \throws std::invalid_argument as `configure`.
void configure_from_env();

/// Disarms every fault and resets arrival counters (tests).
void reset();

/// \brief The hook: returns true when the named fault should fire at this
/// arrival.  Fires count into `faults.injected`.  Unarmed cost: one
/// relaxed atomic load.  `name` must be a registered point (enforced at
/// configure time, not here — hot path).
bool fire(const char* name);

/// Records that a fired fault was absorbed by its audited recovery path
/// (counts into `faults.recovered`).
void note_recovered(const char* name);

/// Fires since process start / last reset (test assertions).
long long injected_count();
long long recovered_count();

}  // namespace mrlc::fault
