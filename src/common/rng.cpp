#include "common/rng.hpp"

#include <cmath>

namespace mrlc {

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

}  // namespace mrlc
