#pragma once

/// \file check.hpp
/// \brief Precondition / invariant checking helpers shared by all modules.
///
/// The library follows the C++ Core Guidelines convention that broken
/// preconditions are programming errors: they throw `std::invalid_argument`
/// (bad caller input) or `std::logic_error` (broken internal invariant)
/// rather than returning sentinel values.

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mrlc {

/// Exception thrown when an algorithm detects that the requested problem
/// instance is structurally unsolvable (e.g. a disconnected topology or an
/// unachievable lifetime bound).  Distinct from precondition violations so
/// callers can recover from "no solution exists" without catching logic bugs.
class InfeasibleError : public std::runtime_error {
 public:
  explicit InfeasibleError(const std::string& what) : std::runtime_error(what) {}
};

/// Exception thrown inside the solver when a `Budget` (common/budget.hpp)
/// runs out before the algorithm converges.  Internal control flow only:
/// the anytime layer (`core::solve_anytime`) catches it and returns the
/// best incumbent with a typed status, so budget exhaustion never escapes
/// the public anytime API as an exception.
class BudgetExhaustedError : public std::runtime_error {
 public:
  explicit BudgetExhaustedError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_requires(std::string_view cond, std::string_view msg,
                                        std::string_view file, int line) {
  std::ostringstream os;
  os << "precondition failed: " << cond << " (" << msg << ") at " << file << ":" << line;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_ensures(std::string_view cond, std::string_view msg,
                                       std::string_view file, int line) {
  std::ostringstream os;
  os << "invariant failed: " << cond << " (" << msg << ") at " << file << ":" << line;
  throw std::logic_error(os.str());
}

}  // namespace detail

/// Check a caller-facing precondition; throws std::invalid_argument on failure.
#define MRLC_REQUIRE(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) ::mrlc::detail::throw_requires(#cond, msg, __FILE__, __LINE__); \
  } while (false)

/// Check an internal invariant / postcondition; throws std::logic_error.
#define MRLC_ENSURE(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) ::mrlc::detail::throw_ensures(#cond, msg, __FILE__, __LINE__); \
  } while (false)

}  // namespace mrlc
