#pragma once

/// \file trace.hpp
/// \brief RAII scoped phase timers feeding the metrics registry.
///
/// A `ScopedPhase` measures the steady-clock wall time between its
/// construction and destruction and accumulates it into a node of the
/// process-wide phase tree (`metrics::PhaseNode`).  Nesting is automatic
/// via a thread-local cursor: a `ScopedPhase("lp")` opened while
/// `ScopedPhase("ira")` is active records under the path `ira/lp`.  The
/// same phase name under the same parent shares one accumulator across
/// calls and threads, so per-phase totals aggregate naturally over a whole
/// run (or a whole `parallel_for` fan-out).
///
///     void IterativeRelaxation::solve(...) {
///       trace::ScopedPhase phase("ira");          // path: ira
///       ...
///       { trace::ScopedPhase lp("cut_lp"); ... }  // path: ira/cut_lp
///     }
///
/// Overhead: two `steady_clock::now()` calls plus two relaxed atomic adds
/// per scope while metrics are enabled; a single relaxed load (or nothing,
/// under `MRLC_METRICS_DISABLED`) while disabled.  Intended for phases
/// entered at most a few thousand times per second — wrap the cut loop,
/// not the pivot.
///
/// The timers deliberately tolerate the enable flag flipping mid-scope: a
/// scope opened while disabled never records, a scope opened while enabled
/// records even if recording is disabled before it closes (its node
/// pointer is already resolved, so this is safe and keeps totals
/// consistent with counts).

#include <chrono>
#include <string_view>

#include "common/metrics.hpp"

namespace mrlc::trace {

/// \brief RAII wall-time measurement of one phase entry (see file comment).
class ScopedPhase {
 public:
  /// \brief Opens the phase `name` under the thread's current phase.
  /// \param name  path segment ("ira", "cut_lp"); must not contain '/'.
  explicit ScopedPhase(std::string_view name);

  /// \brief Closes the phase: accumulates elapsed time and pops the cursor.
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  metrics::PhaseNode* node_ = nullptr;
  metrics::PhaseNode* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Plain steady-clock stopwatch for callers that want a duration as
/// a value (bench runners) rather than a registry entry.  Unaffected by the
/// metrics enable flag.
class Stopwatch {
 public:
  /// \brief Starts timing at construction.
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// \return wall milliseconds elapsed since construction or the last
  ///         restart().
  double elapsed_ms() const;

  /// \brief Resets the start point to now.
  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mrlc::trace
