#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

namespace mrlc::metrics {

namespace {

/// Reads the MRLC_METRICS environment variable once at startup.
bool initial_enabled_state() {
  const char* env = std::getenv("MRLC_METRICS");
  if (env == nullptr) return true;
  const std::string value(env);
  return !(value == "0" || value == "off" || value == "false" ||
           value == "no");
}

/// The global instrument registry.  Instruments live in node-stable
/// containers (std::map) so references handed out never move; the mutex
/// guards registration and JSON emission only — mutation is atomic.
struct Registry {
  std::mutex mutex;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  PhaseNode phase_root;                      // name "", parent nullptr
  std::deque<std::unique_ptr<PhaseNode>> phase_arena;

  static Registry& instance() {
    static Registry* r = new Registry();  // leaked: outlive static dtors
    return *r;
  }
};

void reset_phase_tree(PhaseNode& node, Registry& reg) {
  node.count.store(0, std::memory_order_relaxed);
  node.total_ns.store(0, std::memory_order_relaxed);
  for (auto& child : reg.phase_arena) {
    child->count.store(0, std::memory_order_relaxed);
    child->total_ns.store(0, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------- JSON helpers --

void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(std::numeric_limits<double>::max_digits10);
  tmp << v;
  os << tmp.str();
}

/// Children of `node`, name-sorted for stable output.  The arena is the
/// only owner of interned nodes, so scanning it by parent is exact.
std::vector<const PhaseNode*> phase_children(const PhaseNode* node,
                                             const Registry& reg) {
  std::vector<const PhaseNode*> out;
  for (const auto& candidate : reg.phase_arena) {
    if (candidate->parent == node) out.push_back(candidate.get());
  }
  std::sort(out.begin(), out.end(), [](const PhaseNode* a, const PhaseNode* b) {
    return a->name < b->name;
  });
  return out;
}

void write_phase(std::ostream& os, const PhaseNode* node, const Registry& reg,
                 int indent, bool zero_times) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "{\"name\": ";
  json_escape(os, node->name);
  os << ", \"path\": ";
  json_escape(os, node->path());
  os << ", \"count\": " << node->count.load(std::memory_order_relaxed)
     << ", \"total_ms\": ";
  json_number(os, zero_times
                      ? 0.0
                      : static_cast<double>(
                            node->total_ns.load(std::memory_order_relaxed)) /
                            1e6);
  const auto children = phase_children(node, reg);
  os << ", \"children\": [";
  for (std::size_t i = 0; i < children.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_phase(os, children[i], reg, indent + 2, zero_times);
  }
  if (!children.empty()) os << '\n' << pad;
  os << "]}";
}

}  // namespace

#if !defined(MRLC_METRICS_DISABLED)
namespace detail {
std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{initial_enabled_state()};
  return flag;
}
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}
#endif

// --------------------------------------------------------------- Histogram --

void Histogram::record(long long value) noexcept {
  if (!enabled()) return;
  if (value < 0) value = 0;
  // All mutation lands in the calling thread's own shard; other shards'
  // cachelines are never touched.  kShards divides detail::kShardCount, so
  // a thread's slot maps to a stable shard here too.
  Shard& shard = shards_[detail::shard_slot() & (kShards - 1)];
  const int index = bucket_index(value);
  shard.buckets[index].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  // min/max start at the LLONG_MAX/LLONG_MIN sentinels, so the first
  // sample tightens them via the same CAS loop as every other sample —
  // no special case, hence no seeding race between concurrent recorders.
  long long seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen && !shard.min.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen && !shard.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

long long Histogram::count() const noexcept {
  long long total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

long long Histogram::sum() const noexcept {
  long long total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

long long Histogram::min() const noexcept {
  long long merged = std::numeric_limits<long long>::max();
  for (const Shard& shard : shards_) {
    merged = std::min(merged, shard.min.load(std::memory_order_relaxed));
  }
  return merged == std::numeric_limits<long long>::max() ? 0 : merged;  // empty
}

long long Histogram::max() const noexcept {
  long long merged = std::numeric_limits<long long>::min();
  for (const Shard& shard : shards_) {
    merged = std::max(merged, shard.max.load(std::memory_order_relaxed));
  }
  return merged == std::numeric_limits<long long>::min() ? 0 : merged;  // empty
}

double Histogram::mean() const noexcept {
  const long long n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

int Histogram::bucket_index(long long value) noexcept {
  const auto v = static_cast<unsigned long long>(value);
  if (v < static_cast<unsigned long long>(kSubBuckets)) {
    return static_cast<int>(v);  // exact unit buckets for small values
  }
  // major = floor(log2 v) >= kSubBucketBits; the top kSubBucketBits bits
  // after the leading one select the linear sub-bucket.
  const int major = std::bit_width(v) - 1;
  const int shift = major - kSubBucketBits;
  const auto minor =
      static_cast<long long>((v >> shift) - kSubBuckets);  // in [0, kSubBuckets)
  return static_cast<int>((major - kSubBucketBits + 1) * kSubBuckets + minor);
}

long long Histogram::bucket_representative(int index) noexcept {
  if (index < kSubBuckets) return index;
  const int major = index / kSubBuckets + kSubBucketBits - 1;
  const int minor = index % kSubBuckets;
  const int shift = major - kSubBucketBits;
  // Midpoint of the bucket's value range [lo, lo + 2^shift).
  const long long lo = ((static_cast<long long>(kSubBuckets) + minor) << shift);
  return lo + ((1LL << shift) >> 1);
}

long long Histogram::percentile(double p) const noexcept {
  const long long n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<long long>(std::ceil(p * static_cast<double>(n)));
  long long seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    for (const Shard& shard : shards_) {
      seen += shard.buckets[i].load(std::memory_order_relaxed);
    }
    if (seen >= rank) {
      // Clamp to the exact extremes so p=0/p=1 are honest.  A racing
      // first record() may have tightened only one extreme; skip the
      // clamp then (std::clamp requires lo <= hi).
      const long long lo = min();
      const long long hi = max();
      const long long rep = bucket_representative(i);
      return hi < lo ? rep : std::clamp(rep, lo, hi);
    }
  }
  return max();
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) bucket.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<long long>::max(),
                    std::memory_order_relaxed);
    shard.max.store(std::numeric_limits<long long>::min(),
                    std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------- PhaseNode --

std::string PhaseNode::path() const {
  if (parent == nullptr) return name;  // root ("" by construction)
  const std::string prefix = parent->path();
  return prefix.empty() ? name : prefix + "/" + name;
}

// ---------------------------------------------------------------- Registry --

Counter& counter(std::string_view name) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.counters.find(name);
  if (it != reg.counters.end()) return it->second;
  return reg.counters.try_emplace(std::string(name)).first->second;
}

Gauge& gauge(std::string_view name) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.gauges.find(name);
  if (it != reg.gauges.end()) return it->second;
  return reg.gauges.try_emplace(std::string(name)).first->second;
}

Histogram& histogram(std::string_view name) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.histograms.find(name);
  if (it == reg.histograms.end()) {
    it = reg.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void reset() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& [name, c] : reg.counters) c.reset();
  for (auto& [name, g] : reg.gauges) g.reset();
  for (auto& [name, h] : reg.histograms) h->reset();
  reset_phase_tree(reg.phase_root, reg);
}

namespace detail {

PhaseNode* intern_phase(PhaseNode* parent, std::string_view name) {
  Registry& reg = Registry::instance();
  if (parent == nullptr) parent = &reg.phase_root;
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& candidate : reg.phase_arena) {
    if (candidate->parent == parent && candidate->name == name) {
      return candidate.get();
    }
  }
  auto node = std::make_unique<PhaseNode>();
  node->name = std::string(name);
  node->parent = parent;
  reg.phase_arena.push_back(std::move(node));
  return reg.phase_arena.back().get();
}

PhaseNode*& current_phase() noexcept {
  thread_local PhaseNode* current = nullptr;
  return current;
}

}  // namespace detail

void write_json(std::ostream& os, bool zero_times) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);

  os << "{\n";
  os << "  \"schema\": \"mrlc-metrics-v1\",\n";
  os << "  \"enabled\": " << (enabled() ? "true" : "false") << ",\n";

  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : reg.counters) {
    os << (first ? "\n" : ",\n") << "    ";
    json_escape(os, name);
    os << ": " << c.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : reg.gauges) {
    os << (first ? "\n" : ",\n") << "    ";
    json_escape(os, name);
    os << ": ";
    json_number(os, g.value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : reg.histograms) {
    os << (first ? "\n" : ",\n") << "    ";
    json_escape(os, name);
    os << ": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"min\": " << h->min() << ", \"max\": " << h->max()
       << ", \"mean\": ";
    json_number(os, h->mean());
    os << ", \"p50\": " << h->percentile(0.50)
       << ", \"p90\": " << h->percentile(0.90)
       << ", \"p99\": " << h->percentile(0.99) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  // Phases: the root is synthetic; emit its children as top-level phases.
  os << "  \"phases\": [";
  const auto roots = phase_children(&reg.phase_root, reg);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_phase(os, roots[i], reg, 4, zero_times);
  }
  os << (roots.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
}

std::string to_json_string(bool zero_times) {
  std::ostringstream os;
  write_json(os, zero_times);
  return os.str();
}

}  // namespace mrlc::metrics
