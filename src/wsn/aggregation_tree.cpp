#include "wsn/aggregation_tree.hpp"

#include <queue>

#include "graph/dsu.hpp"

namespace mrlc::wsn {

AggregationTree AggregationTree::from_edges(const Network& net,
                                            std::span<const EdgeId> edges) {
  const int n = net.node_count();
  MRLC_REQUIRE(static_cast<int>(edges.size()) == n - 1,
               "a spanning tree of n nodes has n-1 edges");

  // Adjacency restricted to the chosen edges.
  std::vector<std::vector<std::pair<VertexId, EdgeId>>> adj(static_cast<std::size_t>(n));
  graph::DisjointSetUnion dsu(n);
  for (EdgeId id : edges) {
    const graph::Edge& e = net.topology().edge(id);
    if (!dsu.unite(e.u, e.v)) {
      throw InfeasibleError("edge set contains a cycle; not a spanning tree");
    }
    adj[static_cast<std::size_t>(e.u)].emplace_back(e.v, id);
    adj[static_cast<std::size_t>(e.v)].emplace_back(e.u, id);
  }
  if (dsu.set_count() != 1) {
    throw InfeasibleError("edge set does not connect all nodes");
  }

  AggregationTree t;
  t.root_ = net.sink();
  t.parent_.assign(static_cast<std::size_t>(n), -1);
  t.parent_edge_.assign(static_cast<std::size_t>(n), -1);

  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::queue<VertexId> frontier;
  frontier.push(t.root_);
  seen[static_cast<std::size_t>(t.root_)] = true;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (const auto& [w, id] : adj[static_cast<std::size_t>(v)]) {
      if (seen[static_cast<std::size_t>(w)]) continue;
      seen[static_cast<std::size_t>(w)] = true;
      t.parent_[static_cast<std::size_t>(w)] = v;
      t.parent_edge_[static_cast<std::size_t>(w)] = id;
      frontier.push(w);
    }
  }
  t.recount_children();
  return t;
}

AggregationTree AggregationTree::from_parents(const Network& net,
                                              std::vector<VertexId> parents) {
  const int n = net.node_count();
  MRLC_REQUIRE(static_cast<int>(parents.size()) == n, "parent array has wrong size");
  MRLC_REQUIRE(parents[static_cast<std::size_t>(net.sink())] == -1,
               "sink must have parent -1");

  AggregationTree t;
  t.root_ = net.sink();
  t.parent_ = std::move(parents);
  t.parent_edge_.assign(static_cast<std::size_t>(n), -1);

  graph::DisjointSetUnion dsu(n);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId p = t.parent_[static_cast<std::size_t>(v)];
    if (v == t.root_) continue;
    MRLC_REQUIRE(p >= 0 && p < n && p != v, "non-sink node needs a valid parent");
    const EdgeId id = net.topology().find_edge(v, p);
    if (id == -1) {
      throw InfeasibleError("parent array uses a link that is not in the network");
    }
    if (!dsu.unite(v, p)) {
      throw InfeasibleError("parent array contains a cycle");
    }
    t.parent_edge_[static_cast<std::size_t>(v)] = id;
  }
  MRLC_ENSURE(dsu.set_count() == 1, "parent array must connect all nodes");
  t.recount_children();
  return t;
}

AggregationTree AggregationTree::from_forest(const Network& net,
                                             std::vector<VertexId> parents) {
  const int n = net.node_count();
  MRLC_REQUIRE(static_cast<int>(parents.size()) == n, "parent array has wrong size");
  MRLC_REQUIRE(parents[static_cast<std::size_t>(net.sink())] == -1,
               "sink must have parent -1");

  AggregationTree t;
  t.root_ = net.sink();
  t.parent_ = std::move(parents);
  t.parent_edge_.assign(static_cast<std::size_t>(n), -1);

  graph::DisjointSetUnion dsu(n);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId p = t.parent_[static_cast<std::size_t>(v)];
    if (p == -1) continue;  // root, or the root of an off-tree subtree
    MRLC_REQUIRE(p >= 0 && p < n && p != v, "parent out of range");
    const EdgeId id = net.topology().find_edge(v, p);
    if (id == -1) {
      throw InfeasibleError("parent array uses a link that is not in the network");
    }
    if (!dsu.unite(v, p)) {
      throw InfeasibleError("parent array contains a cycle");
    }
    t.parent_edge_[static_cast<std::size_t>(v)] = id;
  }

  // Membership: nodes whose parent chain reaches the sink.
  t.member_.assign(static_cast<std::size_t>(n), 0);
  t.member_count_ = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (dsu.find(v) == dsu.find(t.root_)) {
      t.member_[static_cast<std::size_t>(v)] = 1;
      ++t.member_count_;
    }
  }
  if (t.member_count_ == n) {
    t.member_.clear();  // full spanning tree: keep the cheap representation
  }
  t.recount_children();
  return t;
}

void AggregationTree::recount_children() {
  children_count_.assign(parent_.size(), 0);
  for (VertexId v = 0; v < node_count(); ++v) {
    const VertexId p = parent_[static_cast<std::size_t>(v)];
    if (p != -1) ++children_count_[static_cast<std::size_t>(p)];
  }
}

std::vector<EdgeId> AggregationTree::edge_ids() const {
  std::vector<EdgeId> out;
  out.reserve(parent_.size() - 1);
  for (VertexId v = 0; v < node_count(); ++v) {
    if (v != root_ && contains(v)) {
      out.push_back(parent_edge_[static_cast<std::size_t>(v)]);
    }
  }
  return out;
}

std::vector<std::vector<VertexId>> AggregationTree::children_lists() const {
  std::vector<std::vector<VertexId>> lists(parent_.size());
  for (VertexId v = 0; v < node_count(); ++v) {
    const VertexId p = parent_[static_cast<std::size_t>(v)];
    if (p != -1) lists[static_cast<std::size_t>(p)].push_back(v);
  }
  return lists;
}

bool AggregationTree::in_subtree(VertexId subtree_root, VertexId query) const {
  MRLC_REQUIRE(subtree_root >= 0 && subtree_root < node_count(), "vertex out of range");
  MRLC_REQUIRE(query >= 0 && query < node_count(), "vertex out of range");
  // Walk up from `query`; the walk terminates because parents form a tree.
  for (VertexId v = query; v != -1; v = parent_[static_cast<std::size_t>(v)]) {
    if (v == subtree_root) return true;
  }
  return false;
}

void AggregationTree::reparent(const Network& net, VertexId child, VertexId new_parent,
                               EdgeId via_edge) {
  MRLC_REQUIRE(child >= 0 && child < node_count(), "child out of range");
  MRLC_REQUIRE(child != root_, "the sink cannot be re-parented");
  MRLC_REQUIRE(new_parent >= 0 && new_parent < node_count(), "new parent out of range");
  const graph::Edge& e = net.topology().edge(via_edge);
  MRLC_REQUIRE((e.u == child && e.v == new_parent) || (e.v == child && e.u == new_parent),
               "via_edge must join child and new parent");
  MRLC_REQUIRE(!in_subtree(child, new_parent),
               "re-parenting into the child's own subtree would create a cycle");
  MRLC_REQUIRE(contains(child) && contains(new_parent),
               "re-parenting is defined on tree members only; off-tree "
               "subtrees reattach via from_forest");

  const VertexId old_parent = parent_[static_cast<std::size_t>(child)];
  if (old_parent != -1) --children_count_[static_cast<std::size_t>(old_parent)];
  parent_[static_cast<std::size_t>(child)] = new_parent;
  parent_edge_[static_cast<std::size_t>(child)] = via_edge;
  ++children_count_[static_cast<std::size_t>(new_parent)];
}

}  // namespace mrlc::wsn
