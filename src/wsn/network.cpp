#include "wsn/network.hpp"

#include <algorithm>

#include "graph/traversal.hpp"

namespace mrlc::wsn {

Network::Network(int node_count, VertexId sink, EnergyModel energy)
    : topology_(node_count),
      initial_energy_(static_cast<std::size_t>(node_count), 3000.0),
      sink_(sink),
      energy_(energy) {
  MRLC_REQUIRE(node_count >= 1, "network needs at least one node");
  MRLC_REQUIRE(sink >= 0 && sink < node_count, "sink out of range");
  energy_.validate();
}

EdgeId Network::add_link(VertexId u, VertexId v, double prr) {
  const double cost = prr_to_cost(prr);
  const EdgeId id = topology_.add_edge(u, v, cost);
  prr_.push_back(prr);
  return id;
}

void Network::set_link_prr(EdgeId link, double prr) {
  MRLC_REQUIRE(link >= 0 && link < static_cast<int>(prr_.size()), "link out of range");
  const double cost = prr_to_cost(prr);
  prr_[static_cast<std::size_t>(link)] = prr;
  topology_.set_weight(link, cost);
}

void Network::set_initial_energy(VertexId v, double joules) {
  MRLC_REQUIRE(v >= 0 && v < node_count(), "node out of range");
  MRLC_REQUIRE(joules > 0.0, "initial energy must be positive");
  initial_energy_[static_cast<std::size_t>(v)] = joules;
}

double Network::initial_energy(VertexId v) const {
  MRLC_REQUIRE(v >= 0 && v < node_count(), "node out of range");
  return initial_energy_[static_cast<std::size_t>(v)];
}

double Network::min_initial_energy() const {
  return *std::min_element(initial_energy_.begin(), initial_energy_.end());
}

void Network::validate() const {
  for (double e : initial_energy_) {
    MRLC_REQUIRE(e > 0.0, "all nodes need positive initial energy");
  }
  for (double q : prr_) {
    MRLC_REQUIRE(q > 0.0 && q <= 1.0, "all PRRs must lie in (0, 1]");
  }
  if (!graph::is_connected(topology_)) {
    throw InfeasibleError("network topology is not connected: no spanning tree exists");
  }
}

}  // namespace mrlc::wsn
