#include "wsn/network.hpp"

#include <algorithm>

#include "graph/traversal.hpp"

namespace mrlc::wsn {

Network::Network(int node_count, VertexId sink, EnergyModel energy)
    : topology_(node_count),
      initial_energy_(static_cast<std::size_t>(node_count), 3000.0),
      sink_(sink),
      energy_(energy) {
  MRLC_REQUIRE(node_count >= 1, "network needs at least one node");
  MRLC_REQUIRE(sink >= 0 && sink < node_count, "sink out of range");
  energy_.validate();
}

EdgeId Network::add_link(VertexId u, VertexId v, double prr) {
  const double cost = prr_to_cost(prr);
  const EdgeId id = topology_.add_edge(u, v, cost);
  prr_.push_back(prr);
  return id;
}

void Network::set_link_prr(EdgeId link, double prr) {
  MRLC_REQUIRE(link >= 0 && link < static_cast<int>(prr_.size()), "link out of range");
  const double cost = prr_to_cost(prr);
  prr_[static_cast<std::size_t>(link)] = prr;
  topology_.set_weight(link, cost);
}

void Network::set_initial_energy(VertexId v, double joules) {
  MRLC_REQUIRE(v >= 0 && v < node_count(), "node out of range");
  // isfinite first: "joules > 0" alone would wave +inf through (NaN already
  // fails every comparison) and an infinite battery breaks every lifetime
  // bound downstream.
  MRLC_REQUIRE(std::isfinite(joules) && joules > 0.0,
               "initial energy must be positive and finite");
  initial_energy_[static_cast<std::size_t>(v)] = joules;
}

double Network::initial_energy(VertexId v) const {
  MRLC_REQUIRE(v >= 0 && v < node_count(), "node out of range");
  return initial_energy_[static_cast<std::size_t>(v)];
}

double Network::min_initial_energy() const {
  return *std::min_element(initial_energy_.begin(), initial_energy_.end());
}

void Network::fail_node(VertexId v) {
  MRLC_REQUIRE(v >= 0 && v < node_count(), "node out of range");
  MRLC_REQUIRE(v != sink_, "the sink cannot fail");
  if (node_alive_.empty()) {
    node_alive_.assign(static_cast<std::size_t>(node_count()), 1);
  }
  if (!node_alive_[static_cast<std::size_t>(v)]) return;
  node_alive_[static_cast<std::size_t>(v)] = 0;
  // Copy the incident list: remove_edge mutates it while we iterate.
  const auto incident = topology_.incident(v);
  const std::vector<EdgeId> links(incident.begin(), incident.end());
  for (EdgeId id : links) topology_.remove_edge(id);
}

int Network::alive_node_count() const {
  if (node_alive_.empty()) return node_count();
  return static_cast<int>(
      std::count(node_alive_.begin(), node_alive_.end(), 1));
}

void Network::validate() const {
  for (double e : initial_energy_) {
    MRLC_REQUIRE(std::isfinite(e) && e > 0.0,
                 "all nodes need positive finite initial energy");
  }
  for (double q : prr_) {
    MRLC_REQUIRE(q > 0.0 && q <= 1.0, "all PRRs must lie in (0, 1]");
  }
  if (node_alive_.empty()) {
    if (!graph::is_connected(topology_)) {
      throw InfeasibleError(
          "network topology is not connected: no spanning tree exists");
    }
    return;
  }
  // With failures injected, require connectivity of the surviving nodes
  // only (dead nodes have no alive links and would otherwise always fail
  // the plain check).
  const graph::Components comps = graph::connected_components(topology_);
  const int sink_label = comps.label[static_cast<std::size_t>(sink_)];
  for (VertexId v = 0; v < node_count(); ++v) {
    if (!node_alive(v)) continue;
    if (comps.label[static_cast<std::size_t>(v)] != sink_label) {
      throw InfeasibleError(
          "surviving network is not connected: no spanning tree exists");
    }
  }
}

}  // namespace mrlc::wsn
