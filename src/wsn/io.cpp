#include "wsn/io.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

namespace mrlc::wsn {

namespace {

[[noreturn]] void parse_fail(int line, const std::string& message) {
  std::ostringstream os;
  os << "parse error at line " << line << ": " << message;
  throw std::invalid_argument(os.str());
}

/// Splits the stream into (line number, significant line) pairs.
std::vector<std::pair<int, std::string>> significant_lines(std::istream& is) {
  std::vector<std::pair<int, std::string>> lines;
  std::string raw;
  int number = 0;
  while (std::getline(is, raw)) {
    ++number;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    // Trim.
    const auto begin = raw.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = raw.find_last_not_of(" \t\r");
    lines.emplace_back(number, raw.substr(begin, end - begin + 1));
  }
  return lines;
}

}  // namespace

void write_network(std::ostream& os, const Network& net) {
  os << "mrlc-network v1\n";
  os << "nodes " << net.node_count() << " sink " << net.sink() << '\n';
  // max_digits10 guarantees a bit-exact double round-trip through text.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (VertexId v = 0; v < net.node_count(); ++v) {
    os << "energy " << v << ' ' << net.initial_energy(v) << '\n';
  }
  for (EdgeId id = 0; id < net.link_count(); ++id) {
    const graph::Edge& e = net.topology().edge(id);
    os << "link " << e.u << ' ' << e.v << ' ' << net.link_prr(id) << '\n';
  }
}

Network read_network(std::istream& is) {
  const auto lines = significant_lines(is);
  if (lines.empty()) parse_fail(0, "empty input");
  if (lines[0].second != "mrlc-network v1") {
    parse_fail(lines[0].first, "expected header 'mrlc-network v1'");
  }
  if (lines.size() < 2) parse_fail(lines[0].first, "missing 'nodes' line");

  int node_count = 0;
  VertexId sink = 0;
  {
    std::istringstream ls(lines[1].second);
    std::string kw_nodes, kw_sink;
    if (!(ls >> kw_nodes >> node_count >> kw_sink >> sink) || kw_nodes != "nodes" ||
        kw_sink != "sink") {
      parse_fail(lines[1].first, "expected 'nodes <n> sink <s>'");
    }
    if (node_count < 1) parse_fail(lines[1].first, "need at least one node");
    if (sink < 0 || sink >= node_count) parse_fail(lines[1].first, "sink out of range");
  }

  Network net(node_count, sink);
  for (std::size_t i = 2; i < lines.size(); ++i) {
    const auto& [number, text] = lines[i];
    std::istringstream ls(text);
    std::string keyword;
    ls >> keyword;
    if (keyword == "energy") {
      int v = -1;
      double joules = 0.0;
      if (!(ls >> v >> joules)) parse_fail(number, "expected 'energy <node> <joules>'");
      if (v < 0 || v >= node_count) parse_fail(number, "energy node out of range");
      try {
        net.set_initial_energy(v, joules);
      } catch (const std::invalid_argument& e) {
        parse_fail(number, e.what());
      }
    } else if (keyword == "link") {
      int u = -1;
      int v = -1;
      double prr = 0.0;
      if (!(ls >> u >> v >> prr)) parse_fail(number, "expected 'link <u> <v> <prr>'");
      if (u < 0 || u >= node_count || v < 0 || v >= node_count) {
        parse_fail(number, "link endpoint out of range");
      }
      try {
        net.add_link(u, v, prr);
      } catch (const std::invalid_argument& e) {
        parse_fail(number, e.what());
      }
    } else if (keyword == "fault" || keyword == "fault-schedule" ||
               keyword == "arq" || keyword == "channel") {
      // Auxiliary blocks may be appended to a network file (the fault
      // schedule of dist::write_fault_schedule, the ARQ/channel config of
      // radio::write_dataplane_config); they are parsed by separate readers.
      continue;
    } else if (keyword.rfind("x-", 0) == 0) {
      // Version tolerance: forward-compatible extension lines ("x-...")
      // from newer writers are skipped rather than rejected.
      continue;
    } else {
      parse_fail(number, "unknown keyword '" + keyword + "'");
    }
  }
  return net;
}

void write_tree(std::ostream& os, const AggregationTree& tree) {
  os << "mrlc-tree v1\n";
  os << "nodes " << tree.node_count() << '\n';
  for (VertexId v = 0; v < tree.node_count(); ++v) {
    if (v == tree.root()) continue;
    os << "parent " << v << ' ' << tree.parent(v) << '\n';
  }
}

AggregationTree read_tree(std::istream& is, const Network& net) {
  const auto lines = significant_lines(is);
  if (lines.empty()) parse_fail(0, "empty input");
  if (lines[0].second != "mrlc-tree v1") {
    parse_fail(lines[0].first, "expected header 'mrlc-tree v1'");
  }
  if (lines.size() < 2) parse_fail(lines[0].first, "missing 'nodes' line");

  int node_count = 0;
  {
    std::istringstream ls(lines[1].second);
    std::string kw;
    if (!(ls >> kw >> node_count) || kw != "nodes") {
      parse_fail(lines[1].first, "expected 'nodes <n>'");
    }
    if (node_count != net.node_count()) {
      parse_fail(lines[1].first, "tree node count does not match the network");
    }
  }

  std::vector<VertexId> parents(static_cast<std::size_t>(node_count), -1);
  std::vector<bool> seen(static_cast<std::size_t>(node_count), false);
  for (std::size_t i = 2; i < lines.size(); ++i) {
    const auto& [number, text] = lines[i];
    std::istringstream ls(text);
    std::string kw;
    int child = -1;
    int parent = -1;
    if (!(ls >> kw >> child >> parent) || kw != "parent") {
      parse_fail(number, "expected 'parent <child> <parent>'");
    }
    if (child < 0 || child >= node_count || parent < 0 || parent >= node_count) {
      parse_fail(number, "parent entry out of range");
    }
    if (child == net.sink()) parse_fail(number, "the sink has no parent");
    if (seen[static_cast<std::size_t>(child)]) {
      parse_fail(number, "duplicate parent entry for a node");
    }
    seen[static_cast<std::size_t>(child)] = true;
    parents[static_cast<std::size_t>(child)] = parent;
  }
  for (VertexId v = 0; v < node_count; ++v) {
    if (v != net.sink() && parents[static_cast<std::size_t>(v)] == -1) {
      parse_fail(lines.back().first, "missing parent entry for node " +
                                         std::to_string(v));
    }
  }
  try {
    return AggregationTree::from_parents(net, std::move(parents));
  } catch (const std::exception& e) {
    parse_fail(lines.back().first, e.what());
  }
}

std::string network_to_string(const Network& net) {
  std::ostringstream os;
  write_network(os, net);
  return os.str();
}

Network network_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_network(is);
}

std::string tree_to_string(const AggregationTree& tree) {
  std::ostringstream os;
  write_tree(os, tree);
  return os.str();
}

AggregationTree tree_from_string(const std::string& text, const Network& net) {
  std::istringstream is(text);
  return read_tree(is, net);
}

}  // namespace mrlc::wsn
