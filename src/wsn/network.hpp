#pragma once

/// \file network.hpp
/// \brief The WSN instance: topology + per-link PRR + per-node energy.
///
/// Mirrors Section III-B of the paper: an undirected connected graph
/// `G = (V, E)` with sink `v0`, link packet reception ratios
/// `q_e ∈ (0, 1]`, per-node initial energies `I(v)`, and the per-packet
/// energy model.  The underlying `graph::Graph` stores the link *cost*
/// `c_e = -log q_e` (paper Eq. 9) as the edge weight, so graph algorithms
/// (MST, LP objective) operate directly in cost space.

#include <cmath>
#include <vector>

#include "graph/graph.hpp"
#include "wsn/energy.hpp"

namespace mrlc::wsn {

using graph::EdgeId;
using graph::VertexId;

class Network {
 public:
  /// Creates a network of `node_count` nodes with the given sink, default
  /// energy model, and no links.  Initial energies default to 3000 J (two
  /// AA batteries, per the paper's evaluation setup).
  explicit Network(int node_count, VertexId sink = 0,
                   EnergyModel energy = EnergyModel{});

  int node_count() const noexcept { return topology_.vertex_count(); }
  VertexId sink() const noexcept { return sink_; }
  const EnergyModel& energy_model() const noexcept { return energy_; }

  /// Adds a bidirectional link with packet reception ratio `prr` in (0, 1].
  EdgeId add_link(VertexId u, VertexId v, double prr);

  /// Updates a link's PRR (the distributed protocol simulates quality
  /// drift); keeps the cost weight in sync.
  void set_link_prr(EdgeId link, double prr);

  /// Soft-deletes a link (edge id stays valid, the link disappears from
  /// adjacency and `alive_edge_ids`).  Models a permanent link loss.
  void remove_link(EdgeId link) { topology_.remove_edge(link); }

  /// Marks a node as dead (crash or battery depletion) and removes all of
  /// its incident links.  The sink cannot fail.  Idempotent.
  void fail_node(VertexId v);

  /// False once `fail_node(v)` has been called.
  bool node_alive(VertexId v) const {
    MRLC_REQUIRE(v >= 0 && v < node_count(), "node out of range");
    return node_alive_.empty() || node_alive_[static_cast<std::size_t>(v)];
  }

  /// Number of nodes that have not failed.
  int alive_node_count() const;

  double link_prr(EdgeId link) const {
    MRLC_REQUIRE(link >= 0 && link < static_cast<int>(prr_.size()), "link out of range");
    return prr_[static_cast<std::size_t>(link)];
  }

  /// Link cost c_e = -log q_e (natural log; any fixed base only rescales
  /// costs uniformly and the paper does not pin one down).
  double link_cost(EdgeId link) const { return topology_.edge(link).weight; }

  int link_count() const noexcept { return topology_.edge_count(); }

  void set_initial_energy(VertexId v, double joules);
  double initial_energy(VertexId v) const;

  /// Minimum initial energy over all nodes (the paper's `I_min`).
  double min_initial_energy() const;

  const graph::Graph& topology() const noexcept { return topology_; }

  /// Real-valued bound on how many children node `v` may have while its
  /// lifetime stays >= `bound` (see EnergyModel::max_children_real).
  double max_children_real(VertexId v, double bound) const {
    return energy_.max_children_real(initial_energy(v), bound);
  }

  /// Throws InfeasibleError if the topology restricted to alive nodes is
  /// not connected; throws std::invalid_argument on broken per-element
  /// data.  Dead nodes (see `fail_node`) are excluded from the check.
  void validate() const;

  /// Converts a PRR to a cost.  PRR must lie in (0, 1].
  static double prr_to_cost(double prr) {
    MRLC_REQUIRE(prr > 0.0 && prr <= 1.0, "PRR must lie in (0, 1]");
    return -std::log(prr);
  }
  static double cost_to_prr(double cost) {
    MRLC_REQUIRE(cost >= 0.0, "cost must be non-negative");
    return std::exp(-cost);
  }

 private:
  graph::Graph topology_;
  std::vector<double> prr_;
  std::vector<double> initial_energy_;
  /// Empty while no node has failed (the common case); lazily sized by
  /// `fail_node` so pre-failure networks pay nothing.
  std::vector<char> node_alive_;
  VertexId sink_;
  EnergyModel energy_;
};

}  // namespace mrlc::wsn
