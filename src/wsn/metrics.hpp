#pragma once

/// \file metrics.hpp
/// \brief Lifetime / reliability / cost of an aggregation tree
/// (Section III-B, Eqs. 1, 2, and the definitions of L and Q(T)).

#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::wsn {

/// L(v) = I(v) / (Tx + Rx * Ch_T(v))  (paper Eq. 1).  The sink is treated
/// like every other node, as in the paper's formula.
double node_lifetime(const Network& net, const AggregationTree& tree, VertexId v);

/// L = min_v L(v): rounds until the first node dies.
double network_lifetime(const Network& net, const AggregationTree& tree);

/// The node attaining the minimum lifetime (smallest id on ties).
VertexId bottleneck_node(const Network& net, const AggregationTree& tree);

/// Q(T) = prod of tree-link PRRs: probability that one full aggregation
/// round delivers every node's reading (no retransmissions).
double tree_reliability(const Network& net, const AggregationTree& tree);

/// C(T) = sum of tree-link costs = -log Q(T)  (paper Lemma 3).
double tree_cost(const Network& net, const AggregationTree& tree);

/// True iff every node's lifetime is >= `bound` (the MRLC constraint).
bool meets_lifetime(const Network& net, const AggregationTree& tree, double bound);

}  // namespace mrlc::wsn

namespace mrlc::wsn {

/// Retransmission-aware lifetime (extension; see core/retx_ira.hpp).
/// When a deployment *does* retransmit until delivery (ETX policy), a
/// node's per-round energy becomes
///   Tx / q(parent edge)  +  sum_children Rx / q(child edge):
/// every send is retried 1/q times in expectation, and the parent's radio
/// spends Rx per arriving (re)transmission.  The sink has no parent term.
double node_lifetime_retx(const Network& net, const AggregationTree& tree,
                          VertexId v);

/// min_v node_lifetime_retx — rounds until the first battery dies under
/// the ETX retransmission policy.
double network_lifetime_retx(const Network& net, const AggregationTree& tree);

}  // namespace mrlc::wsn
