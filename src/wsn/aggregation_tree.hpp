#pragma once

/// \file aggregation_tree.hpp
/// \brief A data aggregation tree: a spanning tree rooted at the sink where
/// every non-sink node knows its parent (Section III-B).
///
/// Stored as a parent array plus the edge id connecting each node to its
/// parent, which makes the lifetime formula (children counts), the
/// distributed re-parenting operations, and Prüfer encoding all O(1)/O(n).

#include <span>
#include <vector>

#include "wsn/network.hpp"

namespace mrlc::wsn {

class AggregationTree {
 public:
  /// An empty tree (0 nodes); useful as a placeholder in result structs.
  /// Every factory below returns a validated non-empty tree.
  AggregationTree() = default;

  /// Builds a tree by orienting the given spanning edge set away from the
  /// network's sink (BFS).  Throws InfeasibleError if the edges do not form
  /// a spanning tree of the network.
  static AggregationTree from_edges(const Network& net, std::span<const EdgeId> edges);

  /// Builds from an explicit parent array (`parent[sink] == -1`).  Each
  /// (child, parent) pair must be an existing network link.  Throws on
  /// malformed input (cycles, missing links, wrong root).
  static AggregationTree from_parents(const Network& net,
                                      std::vector<VertexId> parents);

  /// Builds a *partial* tree (a forest) from a parent array where non-sink
  /// nodes may carry parent -1.  Nodes reaching the sink through parent
  /// pointers are tree *members*; every other node is off-tree (dead, or a
  /// subtree cut off by a node failure the maintainer could not heal).
  /// Off-tree subtrees keep their internal parent pointers so they can be
  /// reattached later.  Throws on cycles or links absent from the network.
  static AggregationTree from_forest(const Network& net,
                                     std::vector<VertexId> parents);

  int node_count() const noexcept { return static_cast<int>(parent_.size()); }
  VertexId root() const noexcept { return root_; }

  /// Parent vertex; -1 for the root.
  VertexId parent(VertexId v) const {
    MRLC_REQUIRE(v >= 0 && v < node_count(), "vertex out of range");
    return parent_[static_cast<std::size_t>(v)];
  }

  /// Network edge id to the parent; -1 for the root.
  EdgeId parent_edge(VertexId v) const {
    MRLC_REQUIRE(v >= 0 && v < node_count(), "vertex out of range");
    return parent_edge_[static_cast<std::size_t>(v)];
  }

  int children_count(VertexId v) const {
    MRLC_REQUIRE(v >= 0 && v < node_count(), "vertex out of range");
    return children_count_[static_cast<std::size_t>(v)];
  }

  /// True iff `v` is connected to the root through parent pointers.  Always
  /// true for full spanning trees (the common case).
  bool contains(VertexId v) const {
    MRLC_REQUIRE(v >= 0 && v < node_count(), "vertex out of range");
    return member_.empty() || member_[static_cast<std::size_t>(v)] != 0;
  }

  /// Number of tree members (== node_count() for full spanning trees).
  int member_count() const {
    return member_.empty() ? node_count() : member_count_;
  }

  /// Tree edge ids of all *member* non-root nodes, in child order.  For a
  /// full spanning tree this is the usual n-1 edges; off-tree subtrees'
  /// internal edges are excluded.
  std::vector<EdgeId> edge_ids() const;

  const std::vector<VertexId>& parents() const noexcept { return parent_; }

  /// Children lists (computed on demand; O(n)).
  std::vector<std::vector<VertexId>> children_lists() const;

  /// True iff `query` lies in the subtree rooted at `subtree_root`
  /// (inclusive).  O(depth).
  bool in_subtree(VertexId subtree_root, VertexId query) const;

  /// Re-attaches `child` (which must not be the root) to `new_parent` via
  /// network link `via_edge`.  Rejects moves that would create a cycle
  /// (new_parent inside child's subtree) or use a link that does not join
  /// the two vertices.
  void reparent(const Network& net, VertexId child, VertexId new_parent,
                EdgeId via_edge);

 private:
  void recount_children();

  VertexId root_ = 0;
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<int> children_count_;
  /// Empty for full spanning trees; else 1 for nodes reaching the root.
  std::vector<char> member_;
  int member_count_ = 0;
};

}  // namespace mrlc::wsn
