#include "wsn/metrics.hpp"

#include <limits>

namespace mrlc::wsn {

double node_lifetime(const Network& net, const AggregationTree& tree, VertexId v) {
  return net.energy_model().node_lifetime(net.initial_energy(v),
                                          tree.children_count(v));
}

double network_lifetime(const Network& net, const AggregationTree& tree) {
  double min_lifetime = std::numeric_limits<double>::infinity();
  for (VertexId v = 0; v < net.node_count(); ++v) {
    if (!tree.contains(v)) continue;  // off-tree nodes do not forward traffic
    min_lifetime = std::min(min_lifetime, node_lifetime(net, tree, v));
  }
  return min_lifetime;
}

VertexId bottleneck_node(const Network& net, const AggregationTree& tree) {
  VertexId best = tree.root();
  double best_lifetime = std::numeric_limits<double>::infinity();
  for (VertexId v = 0; v < net.node_count(); ++v) {
    if (!tree.contains(v)) continue;
    const double life = node_lifetime(net, tree, v);
    if (life < best_lifetime) {
      best_lifetime = life;
      best = v;
    }
  }
  return best;
}

double tree_reliability(const Network& net, const AggregationTree& tree) {
  double q = 1.0;
  for (EdgeId id : tree.edge_ids()) q *= net.link_prr(id);
  return q;
}

double tree_cost(const Network& net, const AggregationTree& tree) {
  double c = 0.0;
  for (EdgeId id : tree.edge_ids()) c += net.link_cost(id);
  return c;
}

bool meets_lifetime(const Network& net, const AggregationTree& tree, double bound) {
  return network_lifetime(net, tree) >= bound;
}

}  // namespace mrlc::wsn

namespace mrlc::wsn {

double node_lifetime_retx(const Network& net, const AggregationTree& tree,
                          VertexId v) {
  const EnergyModel& energy = net.energy_model();
  double joules_per_round = 0.0;
  if (tree.parent(v) != -1) {
    joules_per_round += energy.tx_joules / net.link_prr(tree.parent_edge(v));
  }
  for (VertexId child = 0; child < tree.node_count(); ++child) {
    if (tree.parent(child) == v) {
      joules_per_round += energy.rx_joules / net.link_prr(tree.parent_edge(child));
    }
  }
  if (joules_per_round <= 0.0) {
    return std::numeric_limits<double>::infinity();  // isolated sink
  }
  return net.initial_energy(v) / joules_per_round;
}

double network_lifetime_retx(const Network& net, const AggregationTree& tree) {
  double min_lifetime = std::numeric_limits<double>::infinity();
  for (VertexId v = 0; v < net.node_count(); ++v) {
    if (!tree.contains(v)) continue;
    min_lifetime = std::min(min_lifetime, node_lifetime_retx(net, tree, v));
  }
  return min_lifetime;
}

}  // namespace mrlc::wsn
