#pragma once

/// \file io.hpp
/// \brief Plain-text serialization of networks and aggregation trees.
///
/// Format (line-oriented, '#' comments and blank lines ignored):
///
///     mrlc-network v1
///     nodes 16 sink 0
///     energy 0 3000
///     energy 1 2750.5
///     ...
///     link 0 1 0.997
///     link 1 2 0.85
///     ...
///
/// and for trees:
///
///     mrlc-tree v1
///     nodes 16
///     parent 1 0
///     parent 2 5
///     ...            # one line per non-root node
///
/// Energies default to 3000 J when omitted.  The reader validates
/// everything (node ranges, PRR domain, tree shape) and throws
/// std::invalid_argument with a line number on malformed input.  This is
/// what lets the command-line tools operate on real collected traces.

#include <iosfwd>
#include <string>

#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::wsn {

/// Writes `net` in the format above.
void write_network(std::ostream& os, const Network& net);

/// Parses a network.  \throws std::invalid_argument on malformed input
/// (with a 1-based line number in the message).
Network read_network(std::istream& is);

/// Writes `tree` (parent list) in the format above.
void write_tree(std::ostream& os, const AggregationTree& tree);

/// Parses a tree for `net` (the network supplies link lookup/validation).
AggregationTree read_tree(std::istream& is, const Network& net);

/// Convenience: serialize to / parse from strings (used heavily in tests).
std::string network_to_string(const Network& net);
Network network_from_string(const std::string& text);
std::string tree_to_string(const AggregationTree& tree);
AggregationTree tree_from_string(const std::string& text, const Network& net);

}  // namespace mrlc::wsn
