#pragma once

/// \file energy.hpp
/// \brief Per-packet energy model (Section III-B of the paper).
///
/// The paper measures TelosB motes with a PowerMonitor and concludes that
/// idle consumption (~80 uW) is negligible next to sending (~80 mW) and
/// receiving (~60 mW); network lifetime is therefore estimated from the
/// per-packet send/receive energies only.  The evaluation uses
/// Tx = 1.6e-4 J and Rx = 1.2e-4 J per packet with 3000 J batteries.

#include "common/check.hpp"

namespace mrlc::wsn {

/// Energy charged per packet sent / received, in joules.
struct EnergyModel {
  double tx_joules = 1.6e-4;  ///< per packet sent (paper Section VII)
  double rx_joules = 1.2e-4;  ///< per packet received

  void validate() const {
    MRLC_REQUIRE(tx_joules > 0.0, "Tx energy must be positive");
    MRLC_REQUIRE(rx_joules > 0.0, "Rx energy must be positive");
  }

  /// Lifetime (rounds) of a node with `initial_energy` joules and
  /// `children` children in the aggregation tree (paper Eq. 1):
  ///   L(v) = I(v) / (Tx + Rx * Ch(v)).
  double node_lifetime(double initial_energy, int children) const {
    MRLC_REQUIRE(initial_energy >= 0.0, "initial energy must be non-negative");
    MRLC_REQUIRE(children >= 0, "children count must be non-negative");
    return initial_energy / (tx_joules + rx_joules * static_cast<double>(children));
  }

  /// Largest children count that keeps a node's lifetime >= `bound`:
  ///   B(I, LC) = floor-free real value (I/LC - Tx) / Rx.
  /// May be negative when even a leaf (0 children) cannot reach `bound`.
  double max_children_real(double initial_energy, double bound) const {
    MRLC_REQUIRE(initial_energy >= 0.0, "initial energy must be non-negative");
    MRLC_REQUIRE(bound > 0.0, "lifetime bound must be positive");
    return (initial_energy / bound - tx_joules) / rx_joules;
  }
};

}  // namespace mrlc::wsn
