#include "radio/packet_sim.hpp"

#include <algorithm>
#include <vector>

namespace mrlc::radio {

RoundResult simulate_round(const wsn::Network& net, const wsn::AggregationTree& tree,
                           const RetxPolicy& policy, Rng& rng) {
  MRLC_REQUIRE(policy.max_attempts_per_link >= 1, "need at least one attempt");
  const int n = net.node_count();

  // Post-order: process children before parents.  Sorting vertices by
  // decreasing depth gives a valid order in O(n log n).
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  std::vector<wsn::VertexId> order(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  for (int v = 0; v < n; ++v) {
    int d = 0;
    for (wsn::VertexId w = v; tree.parent(w) != -1; w = tree.parent(w)) ++d;
    depth[static_cast<std::size_t>(v)] = d;
  }
  std::sort(order.begin(), order.end(), [&](wsn::VertexId a, wsn::VertexId b) {
    return depth[static_cast<std::size_t>(a)] > depth[static_cast<std::size_t>(b)];
  });

  // readings[v]: sensor readings currently aggregated at v (own + received).
  std::vector<int> readings(static_cast<std::size_t>(n), 1);
  RoundResult out;
  for (wsn::VertexId v : order) {
    if (v == tree.root()) continue;
    const wsn::EdgeId link = tree.parent_edge(v);
    const double q = net.link_prr(link);
    bool delivered = false;
    for (int attempt = 0; attempt < policy.max_attempts_per_link; ++attempt) {
      ++out.packets_sent;
      if (rng.bernoulli(q)) {
        delivered = true;
        break;
      }
      if (!policy.enabled) break;  // no retransmissions: lose the packet
    }
    if (delivered) {
      readings[static_cast<std::size_t>(tree.parent(v))] +=
          readings[static_cast<std::size_t>(v)];
    }
  }
  out.readings_delivered = readings[static_cast<std::size_t>(tree.root())];
  out.round_complete = out.readings_delivered == n;
  return out;
}

AggregateResult simulate_rounds(const wsn::Network& net,
                                const wsn::AggregationTree& tree,
                                const RetxPolicy& policy, int rounds, Rng& rng) {
  MRLC_REQUIRE(rounds >= 1, "need at least one round");
  AggregateResult agg;
  std::uint64_t packets = 0;
  std::uint64_t delivered = 0;
  int complete = 0;
  for (int r = 0; r < rounds; ++r) {
    const RoundResult res = simulate_round(net, tree, policy, rng);
    packets += res.packets_sent;
    delivered += static_cast<std::uint64_t>(res.readings_delivered);
    complete += res.round_complete ? 1 : 0;
  }
  const auto denom = static_cast<double>(rounds);
  agg.avg_packets_per_round = static_cast<double>(packets) / denom;
  agg.avg_readings_delivered = static_cast<double>(delivered) / denom;
  agg.round_success_ratio = static_cast<double>(complete) / denom;
  return agg;
}

}  // namespace mrlc::radio
