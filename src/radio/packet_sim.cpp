#include "radio/packet_sim.hpp"

#include <algorithm>
#include <vector>

namespace mrlc::radio {

namespace {

/// Histogram cap: buckets 1..31 attempts, bucket 32 collects every longer
/// run (max_attempts_per_link defaults to 10000 — a full-size histogram
/// would be pointlessly sparse).
constexpr int kMaxHistogramBuckets = 32;

int histogram_size(const RetxPolicy& policy) {
  return std::min(policy.max_attempts_per_link, kMaxHistogramBuckets);
}

RoundResult simulate_round_impl(const wsn::Network& net,
                                const wsn::AggregationTree& tree,
                                const RetxPolicy& policy, ChannelSet* channels,
                                Rng& rng,
                                std::vector<std::uint64_t>* histogram) {
  MRLC_REQUIRE(policy.max_attempts_per_link >= 1, "need at least one attempt");
  const int n = net.node_count();

  // Post-order: process children before parents.  Sorting vertices by
  // decreasing depth gives a valid order in O(n log n).
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  std::vector<wsn::VertexId> order(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  for (int v = 0; v < n; ++v) {
    int d = 0;
    for (wsn::VertexId w = v; tree.parent(w) != -1; w = tree.parent(w)) ++d;
    depth[static_cast<std::size_t>(v)] = d;
  }
  std::sort(order.begin(), order.end(), [&](wsn::VertexId a, wsn::VertexId b) {
    return depth[static_cast<std::size_t>(a)] > depth[static_cast<std::size_t>(b)];
  });

  // readings[v]: sensor readings currently aggregated at v (own + received).
  std::vector<int> readings(static_cast<std::size_t>(n), 1);
  RoundResult out;
  for (wsn::VertexId v : order) {
    if (v == tree.root()) continue;
    const wsn::EdgeId link = tree.parent_edge(v);
    const double q = net.link_prr(link);
    bool delivered = false;
    int attempts = 0;
    for (int attempt = 0; attempt < policy.max_attempts_per_link; ++attempt) {
      ++out.packets_sent;
      ++attempts;
      const bool success =
          channels != nullptr ? channels->transmit(link, rng) : rng.bernoulli(q);
      if (success) {
        delivered = true;
        break;
      }
      if (!policy.enabled) break;  // no retransmissions: lose the packet
    }
    if (delivered) {
      readings[static_cast<std::size_t>(tree.parent(v))] +=
          readings[static_cast<std::size_t>(v)];
    } else {
      ++out.packets_dropped;
    }
    if (histogram != nullptr) {
      const auto bucket = static_cast<std::size_t>(
          std::min(attempts, static_cast<int>(histogram->size())) - 1);
      ++(*histogram)[bucket];
    }
  }
  out.readings_delivered = readings[static_cast<std::size_t>(tree.root())];
  out.readings_lost = n - out.readings_delivered;
  out.round_complete = out.readings_delivered == n;
  return out;
}

AggregateResult simulate_rounds_impl(const wsn::Network& net,
                                     const wsn::AggregationTree& tree,
                                     const RetxPolicy& policy,
                                     ChannelSet* channels, int rounds, Rng& rng) {
  MRLC_REQUIRE(rounds >= 1, "need at least one round");
  AggregateResult agg;
  agg.retry_histogram.assign(static_cast<std::size_t>(histogram_size(policy)), 0);
  std::uint64_t packets = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;
  int complete = 0;
  for (int r = 0; r < rounds; ++r) {
    const RoundResult res = simulate_round_impl(net, tree, policy, channels, rng,
                                                &agg.retry_histogram);
    packets += res.packets_sent;
    dropped += res.packets_dropped;
    delivered += static_cast<std::uint64_t>(res.readings_delivered);
    complete += res.round_complete ? 1 : 0;
  }
  const auto denom = static_cast<double>(rounds);
  agg.avg_packets_per_round = static_cast<double>(packets) / denom;
  agg.avg_packets_dropped_per_round = static_cast<double>(dropped) / denom;
  agg.avg_readings_delivered = static_cast<double>(delivered) / denom;
  agg.round_success_ratio = static_cast<double>(complete) / denom;
  return agg;
}

}  // namespace

RoundResult simulate_round(const wsn::Network& net, const wsn::AggregationTree& tree,
                           const RetxPolicy& policy, Rng& rng) {
  return simulate_round_impl(net, tree, policy, nullptr, rng, nullptr);
}

RoundResult simulate_round(const wsn::Network& net, const wsn::AggregationTree& tree,
                           const RetxPolicy& policy, ChannelSet& channels,
                           Rng& rng) {
  return simulate_round_impl(net, tree, policy, &channels, rng, nullptr);
}

AggregateResult simulate_rounds(const wsn::Network& net,
                                const wsn::AggregationTree& tree,
                                const RetxPolicy& policy, int rounds, Rng& rng) {
  return simulate_rounds_impl(net, tree, policy, nullptr, rounds, rng);
}

AggregateResult simulate_rounds(const wsn::Network& net,
                                const wsn::AggregationTree& tree,
                                const RetxPolicy& policy,
                                const ChannelConfig& channel, int rounds,
                                Rng& rng) {
  ChannelSet channels(net, channel, rng);
  return simulate_rounds_impl(net, tree, policy, &channels, rounds, rng);
}

}  // namespace mrlc::radio
