#pragma once

/// \file power_trace.hpp
/// \brief Synthetic TelosB power-draw traces (substitute for Fig. 3).
///
/// The paper measured three motes with a Monsoon PowerMonitor: one
/// continuously sending 34-byte packets (~80 mW average), one receiving
/// (~60 mW), one idle with the radio off (~80 uW).  We synthesize traces
/// with the same averages: a base draw per state, per-packet bursts for the
/// active states, and measurement noise.  Downstream modules only consume
/// the per-packet Tx/Rx constants (see wsn::EnergyModel), so the traces
/// exist to regenerate the figure and to document the energy model's origin.

#include <vector>

#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace mrlc::radio {

enum class RadioState { kSending, kReceiving, kIdle };

/// Per-state generator parameters (milliwatts / milliseconds).
struct PowerTraceParams {
  double sample_period_ms = 0.2;       ///< PowerMonitor-like 5 kHz sampling
  double send_mean_mw = 80.0;          ///< paper Fig. 3(a)
  double receive_mean_mw = 60.0;       ///< paper Fig. 3(b)
  double idle_mean_mw = 0.08;          ///< 80 uW, paper Fig. 3(c)
  double burst_amplitude_mw = 25.0;    ///< packet-burst swing around the mean
  double packet_period_ms = 10.0;      ///< packet every 10 ms while active
  double packet_duration_ms = 1.2;     ///< 34-byte frame at 250 kbps + turnaround
  double noise_sigma_mw = 1.5;         ///< measurement noise (active states)
  double idle_noise_sigma_mw = 0.005;  ///< measurement noise (idle)
};

/// One sampled trace: instantaneous power in mW at uniform sample times.
struct PowerTrace {
  RadioState state = RadioState::kIdle;
  double sample_period_ms = 0.0;
  std::vector<double> samples_mw;

  double duration_ms() const {
    return sample_period_ms * static_cast<double>(samples_mw.size());
  }
  double average_mw() const;
  /// Energy of the whole trace in millijoules.
  double energy_mj() const;
};

/// Generates a trace of the given length for one radio state.
PowerTrace synthesize_trace(RadioState state, double duration_ms,
                            const PowerTraceParams& params, Rng& rng);

/// Per-state summary used by the Fig. 3 bench.
Summary summarize_trace(const PowerTrace& trace);

}  // namespace mrlc::radio
