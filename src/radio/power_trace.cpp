#include "radio/power_trace.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mrlc::radio {

double PowerTrace::average_mw() const {
  if (samples_mw.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_mw) total += s;
  return total / static_cast<double>(samples_mw.size());
}

double PowerTrace::energy_mj() const {
  // mW * ms = uJ; convert to mJ.
  return average_mw() * duration_ms() * 1e-3;
}

PowerTrace synthesize_trace(RadioState state, double duration_ms,
                            const PowerTraceParams& params, Rng& rng) {
  MRLC_REQUIRE(duration_ms > 0.0, "duration must be positive");
  MRLC_REQUIRE(params.sample_period_ms > 0.0, "sample period must be positive");

  PowerTrace trace;
  trace.state = state;
  trace.sample_period_ms = params.sample_period_ms;
  const auto count = static_cast<std::size_t>(duration_ms / params.sample_period_ms);
  trace.samples_mw.reserve(count);

  const bool active = state != RadioState::kIdle;
  const double mean = state == RadioState::kSending  ? params.send_mean_mw
                      : state == RadioState::kReceiving ? params.receive_mean_mw
                                                        : params.idle_mean_mw;
  const double noise_sigma =
      active ? params.noise_sigma_mw : params.idle_noise_sigma_mw;

  // During a packet burst the radio draws above the between-packet level;
  // the duty cycle is chosen so the long-run average equals `mean`.
  const double duty = std::clamp(params.packet_duration_ms / params.packet_period_ms,
                                 1e-6, 1.0 - 1e-6);
  const double burst_level = mean + params.burst_amplitude_mw * (1.0 - duty);
  const double floor_level = mean - params.burst_amplitude_mw * duty;

  for (std::size_t i = 0; i < count; ++i) {
    const double t_ms = static_cast<double>(i) * params.sample_period_ms;
    double level = mean;
    if (active) {
      const double phase = std::fmod(t_ms, params.packet_period_ms);
      level = phase < params.packet_duration_ms ? burst_level : floor_level;
    }
    trace.samples_mw.push_back(std::max(0.0, level + rng.normal(0.0, noise_sigma)));
  }
  return trace;
}

Summary summarize_trace(const PowerTrace& trace) {
  return summarize(trace.samples_mw);
}

}  // namespace mrlc::radio
