#include "radio/channel.hpp"

namespace mrlc::radio {

GilbertElliottParams derive_gilbert_elliott(double prr, double mean_bad_burst) {
  MRLC_REQUIRE(prr > 0.0 && prr <= 1.0, "PRR must lie in (0, 1]");
  MRLC_REQUIRE(mean_bad_burst >= 1.0, "mean bad burst must be >= 1 slot");
  GilbertElliottParams p;
  if (prr >= 1.0) {
    // Perfect link: never leave Good (the Bad state is unreachable; p_bg
    // stays 1 so a hypothetical Bad start exits immediately).
    p.good_to_bad = 0.0;
    p.bad_to_good = 1.0;
    return p;
  }
  // pi_G = p_bg / (p_bg + p_gb) = q  =>  p_gb = p_bg * (1 - q) / q.
  p.bad_to_good = 1.0 / mean_bad_burst;
  p.good_to_bad = p.bad_to_good * (1.0 - prr) / prr;
  if (p.good_to_bad > 1.0) {
    // The requested burst is unreachable at this PRR (would need to leave
    // Good with probability > 1).  Keep the stationary PRR exact and use
    // the longest feasible burst instead: p_gb = 1, p_bg = q / (1 - q).
    p.good_to_bad = 1.0;
    p.bad_to_good = prr / (1.0 - prr);
  }
  return p;
}

ChannelSet::ChannelSet(const wsn::Network& net, ChannelConfig config, Rng& rng)
    : config_(config) {
  config_.validate();
  const auto links = static_cast<std::size_t>(net.link_count());
  prr_.reserve(links);
  for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
    prr_.push_back(net.link_prr(id));
  }
  if (config_.model == ChannelModel::kGilbertElliott) {
    params_.reserve(links);
    bad_.reserve(links);
    for (double q : prr_) {
      params_.push_back(derive_gilbert_elliott(q, config_.mean_bad_burst));
      // Stationary start: Bad with probability 1 - q.
      bad_.push_back(rng.bernoulli(1.0 - q) ? 1 : 0);
    }
  }
}

bool ChannelSet::transmit(wsn::EdgeId link, Rng& rng) {
  MRLC_REQUIRE(link >= 0 && link < link_count(), "link out of range");
  const auto i = static_cast<std::size_t>(link);
  if (config_.model == ChannelModel::kBernoulli) {
    return rng.bernoulli(prr_[i]);
  }
  const bool delivered = bad_[i] == 0;
  const GilbertElliottParams& p = params_[i];
  if (bad_[i] != 0) {
    if (rng.bernoulli(p.bad_to_good)) bad_[i] = 0;
  } else {
    if (rng.bernoulli(p.good_to_bad)) bad_[i] = 1;
  }
  return delivered;
}

void ChannelSet::sync(const wsn::Network& net) {
  MRLC_REQUIRE(net.link_count() == link_count(),
               "network does not match the anchored channel set");
  for (wsn::EdgeId id = 0; id < net.link_count(); ++id) {
    sync_link(id, net.link_prr(id));
  }
}

void ChannelSet::sync_link(wsn::EdgeId link, double q) {
  MRLC_REQUIRE(link >= 0 && link < link_count(), "link out of range");
  const auto i = static_cast<std::size_t>(link);
  if (q == prr_[i]) return;
  prr_[i] = q;
  if (config_.model == ChannelModel::kGilbertElliott) {
    params_[i] = derive_gilbert_elliott(q, config_.mean_bad_burst);
  }
}

bool ChannelSet::in_bad_state(wsn::EdgeId link) const {
  MRLC_REQUIRE(link >= 0 && link < link_count(), "link out of range");
  return !bad_.empty() && bad_[static_cast<std::size_t>(link)] != 0;
}

}  // namespace mrlc::radio
