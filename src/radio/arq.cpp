#include "radio/arq.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/metrics.hpp"

namespace mrlc::radio {

double ArqPolicy::ack_prr(double data_prr) const {
  if (ack_prr_override >= 0.0) return ack_prr_override;
  MRLC_REQUIRE(data_prr > 0.0 && data_prr <= 1.0, "PRR must lie in (0, 1]");
  return std::pow(data_prr, ack_fraction);
}

std::uint64_t ArqPolicy::backoff_slots(int failures) const {
  MRLC_REQUIRE(failures >= 1, "backoff needs at least one failure");
  const int exponent = std::min(failures - 1, backoff_cap_exponent);
  return static_cast<std::uint64_t>(backoff_base_slots) << exponent;
}

namespace {

/// Children-before-parents order (decreasing depth), as in packet_sim.
std::vector<wsn::VertexId> bottom_up_order(const wsn::AggregationTree& tree) {
  const int n = tree.node_count();
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  std::vector<wsn::VertexId> order(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    order[static_cast<std::size_t>(v)] = v;
    int d = 0;
    for (wsn::VertexId w = v; tree.parent(w) != -1; w = tree.parent(w)) ++d;
    depth[static_cast<std::size_t>(v)] = d;
  }
  std::sort(order.begin(), order.end(), [&](wsn::VertexId a, wsn::VertexId b) {
    return depth[static_cast<std::size_t>(a)] > depth[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace

ArqTransactionResult simulate_arq_transaction(const ArqPolicy& policy,
                                              double q_ack, ChannelSet& channels,
                                              wsn::EdgeId link, double tx_joules,
                                              double rx_joules, Rng& rng) {
  const double ack_tx = policy.ack_fraction * tx_joules;
  const double ack_rx = policy.ack_fraction * rx_joules;
  ArqTransactionResult out;
  int failures = 0;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    ++out.data_transmissions;
    ++out.slots_elapsed;
    out.sender_joules += tx_joules;
    // The receiver's radio listens through every attempt — a corrupt frame
    // costs it the same airtime as a good one.
    out.receiver_joules += rx_joules;
    if (channels.transmit(link, rng)) {
      if (out.data_held) {
        ++out.duplicates_suppressed;  // ACK was lost; receiver drops the copy
      } else {
        out.data_held = true;
      }
      ++out.ack_transmissions;
      out.receiver_joules += ack_tx;
      // The sender listens for the ACK whether or not it arrives.
      out.sender_joules += ack_rx;
      if (rng.bernoulli(q_ack)) {
        out.acked = true;
        break;
      }
      ++out.ack_losses;
    }
    ++failures;
    if (attempt + 1 < policy.max_attempts) {
      out.slots_elapsed += policy.backoff_slots(failures);
    }
  }
  out.attempts = failures + (out.acked ? 1 : 0);
  return out;
}

ArqRoundResult simulate_arq_round(const wsn::Network& net,
                                  const wsn::AggregationTree& tree,
                                  const ArqPolicy& policy, ChannelSet& channels,
                                  Rng& rng, std::vector<double>* consumed,
                                  const ArqObserver& observer) {
  policy.validate();
  const int n = net.node_count();
  MRLC_REQUIRE(consumed == nullptr ||
                   static_cast<int>(consumed->size()) == n,
               "consumed vector must have one entry per node");
  const double tx = net.energy_model().tx_joules;
  const double rx = net.energy_model().rx_joules;

  auto charge = [&](wsn::VertexId v, double joules) {
    if (consumed != nullptr) (*consumed)[static_cast<std::size_t>(v)] += joules;
  };

  // readings[v]: sensor readings currently aggregated at v (own + received).
  std::vector<int> readings(static_cast<std::size_t>(n), 1);
  static metrics::Histogram& attempts_hist =
      metrics::histogram("arq.attempts_per_transaction");
  long long transactions = 0;
  ArqRoundResult out;
  for (wsn::VertexId v : bottom_up_order(tree)) {
    if (v == tree.root() || !tree.contains(v)) continue;
    const wsn::EdgeId link = tree.parent_edge(v);
    const wsn::VertexId parent = tree.parent(v);
    const double q_ack = policy.ack_prr(net.link_prr(link));

    const ArqTransactionResult txn =
        simulate_arq_transaction(policy, q_ack, channels, link, tx, rx, rng);
    out.data_transmissions += txn.data_transmissions;
    out.ack_transmissions += txn.ack_transmissions;
    out.duplicates_suppressed += txn.duplicates_suppressed;
    out.ack_losses += txn.ack_losses;
    out.slots_elapsed += txn.slots_elapsed;
    charge(v, txn.sender_joules);
    charge(parent, txn.receiver_joules);
    if (txn.data_held) {
      readings[static_cast<std::size_t>(parent)] +=
          readings[static_cast<std::size_t>(v)];
    } else {
      ++out.packets_dropped;
    }
    ++transactions;
    attempts_hist.record(txn.attempts);
    if (observer) observer(link, txn.acked, txn.attempts);
  }
  out.readings_delivered = readings[static_cast<std::size_t>(tree.root())];
  out.readings_lost = n - out.readings_delivered;
  out.round_complete = out.readings_delivered == n;

  static metrics::Counter& rounds = metrics::counter("arq.rounds");
  static metrics::Counter& transactions_total = metrics::counter("arq.transactions");
  static metrics::Counter& data_tx = metrics::counter("arq.data_tx");
  static metrics::Counter& retx = metrics::counter("arq.retransmissions");
  static metrics::Counter& ack_tx_count = metrics::counter("arq.ack_tx");
  static metrics::Counter& ack_loss_count = metrics::counter("arq.ack_losses");
  static metrics::Counter& duplicates =
      metrics::counter("arq.duplicates_suppressed");
  static metrics::Counter& dropped = metrics::counter("arq.packets_dropped");
  rounds.add();
  transactions_total.add(transactions);
  data_tx.add(static_cast<long long>(out.data_transmissions));
  retx.add(static_cast<long long>(out.data_transmissions) - transactions);
  ack_tx_count.add(static_cast<long long>(out.ack_transmissions));
  ack_loss_count.add(static_cast<long long>(out.ack_losses));
  duplicates.add(static_cast<long long>(out.duplicates_suppressed));
  dropped.add(static_cast<long long>(out.packets_dropped));
  return out;
}

ArqAggregateResult simulate_arq_rounds(const wsn::Network& net,
                                       const wsn::AggregationTree& tree,
                                       const ArqPolicy& policy,
                                       const ChannelConfig& channel, int rounds,
                                       Rng& rng) {
  MRLC_REQUIRE(rounds >= 1, "need at least one round");
  policy.validate();
  const int n = net.node_count();
  ChannelSet channels(net, channel, rng);

  ArqAggregateResult agg;
  agg.attempts_histogram.assign(static_cast<std::size_t>(policy.max_attempts), 0);
  std::vector<double> consumed(static_cast<std::size_t>(n), 0.0);
  const ArqObserver observer = [&](wsn::EdgeId, bool, int attempts) {
    ++agg.attempts_histogram[static_cast<std::size_t>(attempts - 1)];
  };

  std::uint64_t delivered_total = 0;
  std::uint64_t slots_total = 0;
  int complete = 0;
  ArqRoundResult sums;
  for (int r = 0; r < rounds; ++r) {
    const ArqRoundResult res =
        simulate_arq_round(net, tree, policy, channels, rng, &consumed, observer);
    sums.data_transmissions += res.data_transmissions;
    sums.ack_transmissions += res.ack_transmissions;
    sums.duplicates_suppressed += res.duplicates_suppressed;
    sums.packets_dropped += res.packets_dropped;
    slots_total += res.slots_elapsed;
    delivered_total += static_cast<std::uint64_t>(res.readings_delivered - 1);
    complete += res.round_complete ? 1 : 0;
  }
  const auto denom = static_cast<double>(rounds);
  agg.avg_data_tx_per_round = static_cast<double>(sums.data_transmissions) / denom;
  agg.avg_ack_tx_per_round = static_cast<double>(sums.ack_transmissions) / denom;
  agg.avg_duplicates_per_round =
      static_cast<double>(sums.duplicates_suppressed) / denom;
  agg.avg_dropped_per_round = static_cast<double>(sums.packets_dropped) / denom;
  agg.avg_slots_per_round = static_cast<double>(slots_total) / denom;
  agg.delivery_ratio = n > 1 ? static_cast<double>(delivered_total) /
                                   (denom * static_cast<double>(n - 1))
                             : 1.0;
  agg.round_success_ratio = static_cast<double>(complete) / denom;
  double joules_total = 0.0;
  for (double j : consumed) joules_total += j;
  agg.joules_per_reading =
      delivered_total > 0 ? joules_total / static_cast<double>(delivered_total)
                          : std::numeric_limits<double>::infinity();
  return agg;
}

ArqDepletionResult simulate_arq_depletion(const wsn::Network& net,
                                          const wsn::AggregationTree& tree,
                                          const ArqPolicy& policy,
                                          const ChannelConfig& channel,
                                          int sample_rounds, Rng& rng) {
  MRLC_REQUIRE(sample_rounds >= 1, "need at least one sample round");
  const int n = net.node_count();
  ChannelSet channels(net, channel, rng);
  std::vector<double> consumed(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < sample_rounds; ++r) {
    simulate_arq_round(net, tree, policy, channels, rng, &consumed);
  }

  ArqDepletionResult out;
  out.joules_per_round.assign(static_cast<std::size_t>(n), 0.0);
  out.rounds_survived = std::numeric_limits<double>::infinity();
  for (wsn::VertexId v = 0; v < n; ++v) {
    const double rate =
        consumed[static_cast<std::size_t>(v)] / static_cast<double>(sample_rounds);
    out.joules_per_round[static_cast<std::size_t>(v)] = rate;
    if (rate <= 0.0) continue;
    const double rounds = net.initial_energy(v) / rate;
    if (rounds < out.rounds_survived) {
      out.rounds_survived = rounds;
      out.first_dead = v;
    }
  }
  return out;
}

// ------------------------------------------------------------- config io --

void write_dataplane_config(std::ostream& os, const DataPlaneConfig& config) {
  config.arq.validate();
  config.channel.validate();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "arq attempts " << config.arq.max_attempts << " backoff "
     << config.arq.backoff_base_slots << " cap " << config.arq.backoff_cap_exponent
     << " ack-fraction " << config.arq.ack_fraction << '\n';
  os << "channel "
     << (config.channel.model == ChannelModel::kGilbertElliott ? "gilbert-elliott"
                                                               : "bernoulli")
     << " burst " << config.channel.mean_bad_burst << '\n';
}

DataPlaneConfig read_dataplane_config(std::istream& is) {
  DataPlaneConfig config;
  std::string raw;
  int number = 0;
  auto fail = [&](const std::string& message) {
    std::ostringstream os;
    os << "parse error at line " << number << ": " << message;
    throw std::invalid_argument(os.str());
  };
  while (std::getline(is, raw)) {
    ++number;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    std::string keyword;
    if (!(ls >> keyword)) continue;
    if (keyword == "arq") {
      config.has_arq = true;
      std::string key;
      while (ls >> key) {
        std::string value;
        if (!(ls >> value)) fail("arq key '" + key + "' has no value");
        try {
          if (key == "attempts") {
            config.arq.max_attempts = std::stoi(value);
          } else if (key == "backoff") {
            config.arq.backoff_base_slots = std::stoi(value);
          } else if (key == "cap") {
            config.arq.backoff_cap_exponent = std::stoi(value);
          } else if (key == "ack-fraction") {
            config.arq.ack_fraction = std::stod(value);
          }
          // Unknown keys are skipped: the block is forward compatible.
        } catch (const std::exception&) {
          fail("bad value for arq key '" + key + "'");
        }
      }
    } else if (keyword == "channel") {
      config.has_channel = true;
      std::string model;
      if (!(ls >> model)) fail("channel line needs a model name");
      if (model == "gilbert-elliott") {
        config.channel.model = ChannelModel::kGilbertElliott;
      } else if (model == "bernoulli") {
        config.channel.model = ChannelModel::kBernoulli;
      } else {
        fail("unknown channel model '" + model + "'");
      }
      std::string key;
      while (ls >> key) {
        std::string value;
        if (!(ls >> value)) fail("channel key '" + key + "' has no value");
        try {
          if (key == "burst") config.channel.mean_bad_burst = std::stod(value);
        } catch (const std::exception&) {
          fail("bad value for channel key '" + key + "'");
        }
      }
    }
  }
  if (config.has_arq) config.arq.validate();
  if (config.has_channel) config.channel.validate();
  return config;
}

}  // namespace mrlc::radio
