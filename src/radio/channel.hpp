#pragma once

/// \file channel.hpp
/// \brief Per-link loss processes: i.i.d. Bernoulli and Gilbert–Elliott
/// burst channels behind one slot-level `transmit` interface.
///
/// The paper (and `packet_sim`) draws every link success as an independent
/// Bernoulli(q_e) trial.  Real 802.15.4 links fade in *bursts*: a link that
/// just dropped a frame is much more likely to drop the next one.  The
/// classic model is Gilbert–Elliott — a two-state Markov chain per link
/// (Good: frames delivered; Bad: frames lost) advanced once per slot:
///
///     P(G -> B) = p_gb          P(B -> G) = p_bg
///
/// We parameterize each link so that
///
/// * the stationary delivery probability equals the link's nominal PRR:
///       pi_G = p_bg / (p_bg + p_gb) = q_e,  and
/// * the mean Bad-state sojourn is `ChannelConfig::mean_bad_burst` slots
///   (p_bg = 1 / burst), matching the observed burstiness of indoor links.
///
/// When the requested burst length is unreachable for a very lossy link
/// (the implied p_gb would exceed 1), the burst is shortened to the longest
/// feasible value instead — the stationary PRR constraint always wins, so
/// long-run loss rates match the Bernoulli model exactly and only the
/// correlation structure differs.

#include <vector>

#include "common/rng.hpp"
#include "wsn/network.hpp"

namespace mrlc::radio {

enum class ChannelModel {
  kBernoulli,       ///< i.i.d. per-slot draws (the paper's assumption)
  kGilbertElliott,  ///< two-state burst-loss Markov chain per link
};

/// Selects and parameterizes the per-link loss process.
struct ChannelConfig {
  ChannelModel model = ChannelModel::kBernoulli;
  /// Target mean Bad-state sojourn in slots (Gilbert–Elliott only); the
  /// per-link value may be shorter when PRR is very low (see file comment).
  double mean_bad_burst = 8.0;

  void validate() const {
    MRLC_REQUIRE(mean_bad_burst >= 1.0, "mean bad burst must be >= 1 slot");
  }
};

/// Per-link Gilbert–Elliott transition probabilities.
struct GilbertElliottParams {
  double good_to_bad = 0.0;  ///< p_gb
  double bad_to_good = 1.0;  ///< p_bg
};

/// Derives transition probabilities with stationary delivery ratio exactly
/// `prr` and mean bad burst min(`mean_bad_burst`, longest feasible).
/// `prr` must lie in (0, 1]; `prr == 1` yields an always-Good chain.
GilbertElliottParams derive_gilbert_elliott(double prr, double mean_bad_burst);

/// One loss process per network link, advanced by `transmit` draws.
/// Deterministic given the Rng stream; Gilbert–Elliott state is seeded from
/// each link's stationary distribution at construction.
class ChannelSet {
 public:
  /// Anchors a process on every link of `net`; `rng` draws the initial
  /// Gilbert–Elliott states (unused for Bernoulli).
  ChannelSet(const wsn::Network& net, ChannelConfig config, Rng& rng);

  /// Spends one slot transmitting on `link`; returns true when the frame is
  /// delivered.  Gilbert–Elliott resolves the outcome in the current state,
  /// then advances the chain.
  bool transmit(wsn::EdgeId link, Rng& rng);

  /// Re-derives per-link parameters after link qualities changed (churn).
  /// Only changed links are touched; burst state carries over.  `net` must
  /// be the network the set was anchored to (same link count).
  void sync(const wsn::Network& net);

  /// Per-link `sync`: re-anchors one link at PRR `q` (no-op when unchanged).
  /// Touches only that link's state, so concurrent calls on *distinct*
  /// links are safe — the discrete-event engine lets each link's owner
  /// re-derive its channel right after churning it.
  void sync_link(wsn::EdgeId link, double q);

  const ChannelConfig& config() const noexcept { return config_; }
  int link_count() const noexcept { return static_cast<int>(prr_.size()); }

  /// Test hook: current chain state (always false under Bernoulli).
  bool in_bad_state(wsn::EdgeId link) const;

 private:
  ChannelConfig config_;
  std::vector<double> prr_;
  std::vector<GilbertElliottParams> params_;
  std::vector<char> bad_;  ///< Gilbert–Elliott state; empty for Bernoulli
};

}  // namespace mrlc::radio
