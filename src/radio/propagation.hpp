#pragma once

/// \file propagation.hpp
/// \brief Distance/power -> PRR link model for TelosB-class (CC2420) radios.
///
/// The paper motivates MRLC with testbed measurements (Fig. 2): packet
/// reception ratio vs. distance for several TelosB transmission power
/// levels.  We do not have that hardware, so this module substitutes the
/// standard log-normal-shadowing path-loss model combined with the
/// Zuniga–Krishnamachari SNR->PRR curve for non-coherent FSK with Manchester
///-like encoding — the model that the original Fig. 2 shape (a sharp
/// "transitional region" between ~100% and ~0% reception) comes from in the
/// WSN literature.  Default parameters are calibrated so that:
///   * at 4 ft every power level delivers ~100%,
///   * power level 19 degrades gently to ~50% at 16 ft,
///   * power levels 15 and 11 collapse below 10% by 16 ft,
/// matching the published curve shapes.

#include "common/rng.hpp"

namespace mrlc::radio {

/// Model parameters; see file comment for calibration rationale.
struct PropagationParams {
  double reference_path_loss_db = 55.0;  ///< PL(d0 = 1 m)
  double path_loss_exponent = 4.0;       ///< near-ground indoor deployment
  double shadowing_sigma_db = 3.2;       ///< log-normal shadowing std-dev
  double noise_floor_dbm = -96.0;        ///< CC2420 sensitivity region
  double frame_bytes = 34.0;             ///< paper's packet size
  double min_prr = 1e-6;                 ///< clamp: Network requires PRR > 0
  /// Ceiling on deliverable PRR: even a perfect SNR leaves residual losses
  /// (collisions, CRC, queue drops), so no deployed link is truly 1.0.
  /// Calibrated so the best testbed links drop ~3 beacons per 1000 —
  /// which is what the paper's Fig. 7 MST cost (55 millibits over 15
  /// links) implies about their best links.
  double max_prr = 0.997;

  void validate() const;
};

/// TelosB/CC2420 register power level (3..31) -> output power in dBm.
/// Levels between datasheet entries are linearly interpolated.
double telosb_tx_power_dbm(int level);

/// Mean (no shadowing) path loss at distance `meters` (> 0).
double mean_path_loss_db(const PropagationParams& params, double meters);

/// SNR->PRR curve for a `frame_bytes` frame (Zuniga–Krishnamachari).
double prr_from_snr_db(double snr_db, double frame_bytes);

/// Deterministic expected PRR (shadowing = 0) at the given power/distance.
double expected_prr(const PropagationParams& params, double tx_dbm, double meters);

/// PRR with one log-normal shadowing draw — models a *specific* deployed
/// link, whose quality is a fixed (but random across links) value.
double sample_prr(const PropagationParams& params, double tx_dbm, double meters,
                  Rng& rng);

/// Feet -> meters helper (the paper reports distances in feet).
constexpr double feet_to_meters(double feet) { return feet * 0.3048; }

}  // namespace mrlc::radio
