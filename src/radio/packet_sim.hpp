#pragma once

/// \file packet_sim.hpp
/// \brief Packet-level Monte-Carlo simulation of data aggregation rounds.
///
/// Reproduces the paper's motivation experiment (Fig. 1): with an ETX-style
/// retransmit-until-received policy, the number of packets per aggregation
/// round explodes as link quality drops — the energy argument for selecting
/// reliable trees instead of retransmitting.  The no-retransmission mode
/// implements the paper's delivery semantics (a reading reaches the sink iff
/// every link on its path succeeds).

#include <cstdint>

#include "common/rng.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::radio {

/// Outcome of simulating one aggregation round.
struct RoundResult {
  std::uint64_t packets_sent = 0;   ///< total transmissions incl. retries
  int readings_delivered = 0;       ///< sensor readings that reached the sink
  bool round_complete = false;      ///< every reading was delivered
};

/// Retransmission policy for `simulate_round`.
struct RetxPolicy {
  bool enabled = false;
  /// Safety valve so a near-dead link cannot stall the simulation; the
  /// packet is dropped after this many failed attempts.
  int max_attempts_per_link = 10000;
};

/// Simulates a single aggregation round on `tree`.
///
/// Processing is bottom-up (post-order): each node aggregates whatever
/// arrived from its children with its own reading into one packet and
/// transmits it to the parent.  Link successes are Bernoulli(q_e) draws.
/// With retransmissions enabled, a failed transmission is retried (each
/// retry is a new packet); without, the packet is simply lost and the
/// readings it carried never reach the sink.
RoundResult simulate_round(const wsn::Network& net, const wsn::AggregationTree& tree,
                           const RetxPolicy& policy, Rng& rng);

/// Aggregate statistics over `rounds` simulated rounds.
struct AggregateResult {
  double avg_packets_per_round = 0.0;
  double avg_readings_delivered = 0.0;
  double round_success_ratio = 0.0;  ///< empirical estimate of Q(T)
};

AggregateResult simulate_rounds(const wsn::Network& net,
                                const wsn::AggregationTree& tree,
                                const RetxPolicy& policy, int rounds, Rng& rng);

}  // namespace mrlc::radio
