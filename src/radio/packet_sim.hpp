#pragma once

/// \file packet_sim.hpp
/// \brief Packet-level Monte-Carlo simulation of data aggregation rounds.
///
/// Reproduces the paper's motivation experiment (Fig. 1): with an ETX-style
/// retransmit-until-received policy, the number of packets per aggregation
/// round explodes as link quality drops — the energy argument for selecting
/// reliable trees instead of retransmitting.  The no-retransmission mode
/// implements the paper's delivery semantics (a reading reaches the sink iff
/// every link on its path succeeds).
///
/// Link successes default to independent Bernoulli(q_e) draws; the
/// overloads taking a `ChannelSet` run the same round logic over any
/// configured loss process (e.g. Gilbert–Elliott burst channels, whose
/// state persists across rounds).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "radio/channel.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::radio {

/// Outcome of simulating one aggregation round.
struct RoundResult {
  std::uint64_t packets_sent = 0;    ///< total transmissions incl. retries
  std::uint64_t packets_dropped = 0; ///< packets that exhausted their attempts
  int readings_delivered = 0;        ///< readings at the sink, incl. its own
  int readings_lost = 0;             ///< == node_count - readings_delivered
  bool round_complete = false;       ///< every reading was delivered
};

/// Retransmission policy for `simulate_round`.
struct RetxPolicy {
  bool enabled = false;
  /// Safety valve so a near-dead link cannot stall the simulation; the
  /// packet is dropped after this many failed attempts.
  int max_attempts_per_link = 10000;
};

/// Simulates a single aggregation round on `tree`.
///
/// Processing is bottom-up (post-order): each node aggregates whatever
/// arrived from its children with its own reading into one packet and
/// transmits it to the parent.  Link successes are Bernoulli(q_e) draws.
/// With retransmissions enabled, a failed transmission is retried (each
/// retry is a new packet); without, the packet is simply lost and the
/// readings it carried never reach the sink.
RoundResult simulate_round(const wsn::Network& net, const wsn::AggregationTree& tree,
                           const RetxPolicy& policy, Rng& rng);

/// Same round, but link successes come from `channels` (Bernoulli or
/// Gilbert–Elliott; burst state persists across calls).
RoundResult simulate_round(const wsn::Network& net, const wsn::AggregationTree& tree,
                           const RetxPolicy& policy, ChannelSet& channels, Rng& rng);

/// Aggregate statistics over `rounds` simulated rounds.
struct AggregateResult {
  double avg_packets_per_round = 0.0;
  double avg_packets_dropped_per_round = 0.0;
  double avg_readings_delivered = 0.0;
  double round_success_ratio = 0.0;  ///< empirical estimate of Q(T)
  /// retry_histogram[k] = transmissions-per-packet count: packets that used
  /// exactly k+1 attempts.  The last bucket also absorbs exhausted packets
  /// (attempts == max); size == min(max_attempts_per_link, 32), where the
  /// final bucket then collects every longer run.
  std::vector<std::uint64_t> retry_histogram;
};

AggregateResult simulate_rounds(const wsn::Network& net,
                                const wsn::AggregationTree& tree,
                                const RetxPolicy& policy, int rounds, Rng& rng);

/// Aggregate over a configured channel model (state persists across rounds).
AggregateResult simulate_rounds(const wsn::Network& net,
                                const wsn::AggregationTree& tree,
                                const RetxPolicy& policy,
                                const ChannelConfig& channel, int rounds,
                                Rng& rng);

}  // namespace mrlc::radio
