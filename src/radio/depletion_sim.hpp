#pragma once

/// \file depletion_sim.hpp
/// \brief Packet-level battery depletion: how long does the tree *really*
/// live, with losses and retransmissions accounted per packet?
///
/// The paper's lifetime formula (Eq. 1) charges every node
/// `Tx + Rx * children` per round, which implicitly assumes every packet
/// is sent exactly once and received successfully.  This module measures
/// the actual per-round energy rates from the packet simulator and
/// extrapolates to first-node-death:
///
/// * no retransmissions, perfect links  -> matches Eq. 1 exactly;
/// * no retransmissions, lossy links    -> matches Eq. 1 for every node
///   that transmits (the sink, which Eq. 1 charges a Tx it never spends,
///   lives longer);
/// * ETX retransmissions                -> nodes die much *sooner*
///   (each retry burns another Tx at the sender and another Rx of
///   listening at the receiver), which is Fig. 1's energy argument.
///
/// Energy accounting: the sender pays Tx per transmission attempt; the
/// receiver pays Rx per attempt as well — its radio listens through
/// corrupt frames just like good ones.

#include "radio/packet_sim.hpp"

namespace mrlc::radio {

struct DepletionResult {
  /// Extrapolated rounds until the first node exhausts its battery.
  double rounds_survived = 0.0;
  wsn::VertexId first_dead = -1;
  /// Measured average energy per round per node (joules).
  std::vector<double> joules_per_round;
  /// Eq. 1 prediction for the same tree, for comparison.
  double analytic_lifetime = 0.0;
};

/// Measures per-node energy rates over `sample_rounds` simulated rounds
/// and extrapolates the network lifetime.
/// \param sample_rounds Monte-Carlo rounds used to estimate the rates.
DepletionResult simulate_depletion(const wsn::Network& net,
                                   const wsn::AggregationTree& tree,
                                   const RetxPolicy& policy, int sample_rounds,
                                   Rng& rng);

}  // namespace mrlc::radio
