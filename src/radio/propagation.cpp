#include "radio/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mrlc::radio {

void PropagationParams::validate() const {
  MRLC_REQUIRE(path_loss_exponent > 0.0, "path loss exponent must be positive");
  MRLC_REQUIRE(shadowing_sigma_db >= 0.0, "shadowing sigma must be non-negative");
  MRLC_REQUIRE(frame_bytes > 0.0, "frame size must be positive");
  MRLC_REQUIRE(min_prr > 0.0 && min_prr < 1.0, "min PRR must lie in (0, 1)");
  MRLC_REQUIRE(max_prr > min_prr && max_prr <= 1.0,
               "max PRR must lie in (min_prr, 1]");
}

double telosb_tx_power_dbm(int level) {
  MRLC_REQUIRE(level >= 3 && level <= 31, "TelosB power level must lie in [3, 31]");
  // CC2420 datasheet operating points (register PA_LEVEL -> dBm).
  struct Point {
    int level;
    double dbm;
  };
  static constexpr Point kPoints[] = {
      {3, -25.0}, {7, -15.0}, {11, -10.0}, {15, -7.0},
      {19, -5.0}, {23, -3.0}, {27, -1.0},  {31, 0.0},
  };
  const Point* hi = kPoints;
  while (hi->level < level) ++hi;
  if (hi->level == level) return hi->dbm;
  const Point* lo = hi - 1;
  const double t = static_cast<double>(level - lo->level) /
                   static_cast<double>(hi->level - lo->level);
  return lo->dbm + t * (hi->dbm - lo->dbm);
}

double mean_path_loss_db(const PropagationParams& params, double meters) {
  MRLC_REQUIRE(meters > 0.0, "distance must be positive");
  return params.reference_path_loss_db +
         10.0 * params.path_loss_exponent * std::log10(meters);
}

double prr_from_snr_db(double snr_db, double frame_bytes) {
  MRLC_REQUIRE(frame_bytes > 0.0, "frame size must be positive");
  // Zuniga & Krishnamachari, "Analyzing the transitional region in low power
  // wireless links": NC-FSK bit error with CC2420-style processing gain,
  //   Pe = 0.5 * exp(-gamma / 2 * 1 / 0.64),
  // frame success = (1 - Pe)^(8 * frame_bytes).
  const double gamma = std::pow(10.0, snr_db / 10.0);
  const double bit_error = 0.5 * std::exp(-gamma / 2.0 / 0.64);
  const double bits = 8.0 * frame_bytes;
  return std::pow(1.0 - bit_error, bits);
}

namespace {

double clamp_prr(const PropagationParams& params, double prr) {
  return std::clamp(prr, params.min_prr, params.max_prr);
}

}  // namespace

double expected_prr(const PropagationParams& params, double tx_dbm, double meters) {
  params.validate();
  const double rx_dbm = tx_dbm - mean_path_loss_db(params, meters);
  return clamp_prr(params, prr_from_snr_db(rx_dbm - params.noise_floor_dbm,
                                           params.frame_bytes));
}

double sample_prr(const PropagationParams& params, double tx_dbm, double meters,
                  Rng& rng) {
  params.validate();
  const double shadowing = rng.normal(0.0, params.shadowing_sigma_db);
  const double rx_dbm = tx_dbm - mean_path_loss_db(params, meters) + shadowing;
  return clamp_prr(params, prr_from_snr_db(rx_dbm - params.noise_floor_dbm,
                                           params.frame_bytes));
}

}  // namespace mrlc::radio
