#pragma once

/// \file arq.hpp
/// \brief Stop-and-wait ARQ data plane for aggregation rounds.
///
/// `packet_sim` grants senders free, infallible knowledge of whether a
/// frame arrived.  This module drops that idealization: delivery is
/// confirmed by an explicit ACK frame that can itself be lost, so a sender
/// may retransmit a frame the receiver already holds (the receiver
/// suppresses the duplicate), and a sender may give up on a reading that
/// in fact arrived.  Per (child -> parent) transaction:
///
///     for attempt in 1 .. max_attempts:
///         child sends DATA            (child pays Tx, parent pays Rx)
///         if DATA survives the channel:
///             parent accepts or suppresses duplicate, sends ACK
///                                     (parent pays ack Tx, child pays ack Rx)
///             if ACK survives:  transaction done (acked)
///         child backs off base << min(failures - 1, cap) slots and retries
///
/// ACK frames are much shorter than data frames; with per-symbol error
/// independence a frame of relative airtime `f` sees PRR q^f, so the ACK
/// PRR is `link_prr ^ ack_fraction` and ACK energy is `ack_fraction` of
/// the per-packet Tx/Rx costs.  Every energy term integrates with the
/// depletion accounting so lifetime *under ARQ* is measurable and can be
/// compared against `core::retx_ira`'s guaranteed bound.
///
/// Slot accounting (`slots_elapsed`) charges one slot per data attempt
/// plus the backoff gaps — the per-round latency of a TDMA-style schedule
/// that serializes the tree's transactions.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "common/rng.hpp"
#include "radio/channel.hpp"
#include "wsn/aggregation_tree.hpp"
#include "wsn/network.hpp"

namespace mrlc::radio {

/// Knobs of the stop-and-wait link layer.
struct ArqPolicy {
  int max_attempts = 8;        ///< data transmissions per transaction, incl. the first
  int backoff_base_slots = 1;  ///< backoff after the k-th failure: base << min(k-1, cap)
  int backoff_cap_exponent = 5;
  /// ACK airtime relative to a data frame: scales both the ACK's PRR
  /// (q^fraction) and its energy cost (fraction * Tx / Rx).
  double ack_fraction = 0.1;
  /// Test hook: fixed ACK PRR in [0, 1] when >= 0 (overrides derivation).
  double ack_prr_override = -1.0;

  void validate() const {
    MRLC_REQUIRE(max_attempts >= 1, "need at least one attempt");
    MRLC_REQUIRE(backoff_base_slots >= 0, "backoff base must be >= 0");
    MRLC_REQUIRE(backoff_cap_exponent >= 0 && backoff_cap_exponent < 63,
                 "backoff cap exponent out of range");
    MRLC_REQUIRE(ack_fraction > 0.0 && ack_fraction <= 1.0,
                 "ack fraction must lie in (0, 1]");
    MRLC_REQUIRE(ack_prr_override <= 1.0, "ack PRR override must be <= 1");
  }

  /// ACK delivery probability given the link's data-frame PRR.
  double ack_prr(double data_prr) const;
  /// Backoff in slots after `failures` (>= 1) failed attempts.
  std::uint64_t backoff_slots(int failures) const;
};

/// Outcome of one ARQ aggregation round.
struct ArqRoundResult {
  std::uint64_t data_transmissions = 0;
  std::uint64_t ack_transmissions = 0;
  std::uint64_t duplicates_suppressed = 0;  ///< retransmissions of already-held data
  std::uint64_t ack_losses = 0;             ///< ACKs sent but not heard
  std::uint64_t packets_dropped = 0;        ///< transactions whose data never arrived
  std::uint64_t slots_elapsed = 0;          ///< attempts + backoff gaps (latency)
  int readings_delivered = 0;               ///< incl. the sink's own reading
  int readings_lost = 0;                    ///< == node_count - readings_delivered
  bool round_complete = false;
};

/// Per-transaction sample for a link estimator: `acked` is what the
/// *sender* observed — false covers both data loss and ACK loss, exactly
/// the ambiguity a real estimator lives with.  `attempts` is the number of
/// data transmissions the transaction used (1 .. max_attempts).
using ArqObserver =
    std::function<void(wsn::EdgeId link, bool acked, int attempts)>;

/// Outcome of one (child -> parent) stop-and-wait transaction — the unit
/// the discrete-event data-plane engine schedules.  Energy is accumulated
/// locally (sender = data Tx + ACK Rx, receiver = data Rx + ACK Tx) so the
/// caller can apply it at a serial checkpoint in a canonical order instead
/// of racing on a shared per-node accumulator.
struct ArqTransactionResult {
  bool data_held = false;  ///< the receiver holds the round's aggregate
  bool acked = false;      ///< the sender saw an ACK
  int attempts = 0;        ///< data transmissions used (1 .. max_attempts)
  std::uint32_t data_transmissions = 0;
  std::uint32_t ack_transmissions = 0;
  std::uint32_t duplicates_suppressed = 0;
  std::uint32_t ack_losses = 0;
  std::uint64_t slots_elapsed = 0;  ///< attempts + backoff gaps
  double sender_joules = 0.0;
  double receiver_joules = 0.0;
};

/// Runs one stop-and-wait transaction on `link`.  `q_ack` is the ACK
/// delivery probability (normally `policy.ack_prr(net.link_prr(link))`).
/// Draws from `rng` exactly as the attempt loop of `simulate_arq_round`
/// always has: one channel draw per data attempt plus one Bernoulli per
/// delivered frame.  The caller owns metrics, readings propagation, and
/// energy application; this function touches only the channel state of
/// `link`, which makes it safe to run concurrently for links owned by
/// distinct logical processes.
ArqTransactionResult simulate_arq_transaction(const ArqPolicy& policy,
                                              double q_ack, ChannelSet& channels,
                                              wsn::EdgeId link, double tx_joules,
                                              double rx_joules, Rng& rng);

/// Simulates one aggregation round under stop-and-wait ARQ.  `channels`
/// supplies the per-link loss process (and persists burst state across
/// rounds).  When `consumed` is non-null it must have node_count entries;
/// per-node energy (data + ACK) is accumulated into it.  `observer`, when
/// set, receives one sample per transaction.
ArqRoundResult simulate_arq_round(const wsn::Network& net,
                                  const wsn::AggregationTree& tree,
                                  const ArqPolicy& policy, ChannelSet& channels,
                                  Rng& rng, std::vector<double>* consumed = nullptr,
                                  const ArqObserver& observer = {});

/// Aggregate statistics over many ARQ rounds.
struct ArqAggregateResult {
  double avg_data_tx_per_round = 0.0;
  double avg_ack_tx_per_round = 0.0;
  double avg_duplicates_per_round = 0.0;
  double avg_dropped_per_round = 0.0;
  double avg_slots_per_round = 0.0;
  double delivery_ratio = 0.0;       ///< delivered non-sink readings / (n-1)
  double round_success_ratio = 0.0;  ///< rounds with every reading delivered
  /// attempts_histogram[k] = transactions that used exactly k+1 data
  /// attempts (acked or given up); size == policy.max_attempts.
  std::vector<std::uint64_t> attempts_histogram;
  /// Average joules spent network-wide per delivered non-sink reading.
  double joules_per_reading = 0.0;
};

ArqAggregateResult simulate_arq_rounds(const wsn::Network& net,
                                       const wsn::AggregationTree& tree,
                                       const ArqPolicy& policy,
                                       const ChannelConfig& channel, int rounds,
                                       Rng& rng);

/// Battery depletion under ARQ: measures per-node energy rates over
/// `sample_rounds` and extrapolates to first-node-death, like
/// `simulate_depletion` but with the full ARQ energy accounting.
struct ArqDepletionResult {
  double rounds_survived = 0.0;
  wsn::VertexId first_dead = -1;
  std::vector<double> joules_per_round;
};

ArqDepletionResult simulate_arq_depletion(const wsn::Network& net,
                                          const wsn::AggregationTree& tree,
                                          const ArqPolicy& policy,
                                          const ChannelConfig& channel,
                                          int sample_rounds, Rng& rng);

// ---------------------------------------------------------------------------
// Data-plane configuration block (mrlc-network v1 extension)
//
//     arq attempts 8 backoff 1 cap 5 ack-fraction 0.1
//     channel gilbert-elliott burst 8
//
// `wsn::read_network` skips these lines (like the fault-schedule block);
// this reader picks them out of the same text.  Parsing is version
// tolerant: unknown key/value pairs on either line are ignored, so future
// fields do not break old readers.

struct DataPlaneConfig {
  ArqPolicy arq;
  ChannelConfig channel;
  bool has_arq = false;      ///< an `arq` line was present
  bool has_channel = false;  ///< a `channel` line was present
};

/// Appends the config block (both lines) to a network file.
void write_dataplane_config(std::ostream& os, const DataPlaneConfig& config);

/// Extracts the config block from a (possibly combined) network file;
/// returns defaults with has_* false when no block is present.
/// \throws std::invalid_argument on malformed known fields.
DataPlaneConfig read_dataplane_config(std::istream& is);

}  // namespace mrlc::radio
