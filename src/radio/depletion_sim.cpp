#include "radio/depletion_sim.hpp"

#include <algorithm>
#include <limits>

#include "wsn/metrics.hpp"

namespace mrlc::radio {

DepletionResult simulate_depletion(const wsn::Network& net,
                                   const wsn::AggregationTree& tree,
                                   const RetxPolicy& policy, int sample_rounds,
                                   Rng& rng) {
  MRLC_REQUIRE(sample_rounds >= 1, "need at least one sample round");
  const int n = net.node_count();
  const double tx = net.energy_model().tx_joules;
  const double rx = net.energy_model().rx_joules;

  // Depth-sorted processing order (children before parents), as in
  // simulate_round; duplicated here because we need per-node accounting.
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  std::vector<wsn::VertexId> order(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    order[static_cast<std::size_t>(v)] = v;
    int d = 0;
    for (wsn::VertexId w = v; tree.parent(w) != -1; w = tree.parent(w)) ++d;
    depth[static_cast<std::size_t>(v)] = d;
  }
  std::sort(order.begin(), order.end(), [&](wsn::VertexId a, wsn::VertexId b) {
    return depth[static_cast<std::size_t>(a)] > depth[static_cast<std::size_t>(b)];
  });

  std::vector<double> consumed(static_cast<std::size_t>(n), 0.0);
  for (int round = 0; round < sample_rounds; ++round) {
    for (wsn::VertexId v : order) {
      if (v == tree.root()) continue;
      const wsn::EdgeId link = tree.parent_edge(v);
      const double q = net.link_prr(link);
      const wsn::VertexId parent = tree.parent(v);
      for (int attempt = 0; attempt < policy.max_attempts_per_link; ++attempt) {
        consumed[static_cast<std::size_t>(v)] += tx;
        // The parent's radio listens through every attempt — a corrupt
        // frame costs the receiver the same airtime as a good one.
        consumed[static_cast<std::size_t>(parent)] += rx;
        if (rng.bernoulli(q)) break;
        if (!policy.enabled) break;
      }
    }
  }

  DepletionResult out;
  out.joules_per_round.assign(static_cast<std::size_t>(n), 0.0);
  out.rounds_survived = std::numeric_limits<double>::infinity();
  for (wsn::VertexId v = 0; v < n; ++v) {
    const double rate = consumed[static_cast<std::size_t>(v)] /
                        static_cast<double>(sample_rounds);
    out.joules_per_round[static_cast<std::size_t>(v)] = rate;
    if (rate <= 0.0) continue;  // the sink of a 1-node tree consumes nothing
    const double rounds = net.initial_energy(v) / rate;
    if (rounds < out.rounds_survived) {
      out.rounds_survived = rounds;
      out.first_dead = v;
    }
  }
  out.analytic_lifetime = wsn::network_lifetime(net, tree);
  return out;
}

}  // namespace mrlc::radio
