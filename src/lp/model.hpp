#pragma once

/// \file model.hpp
/// \brief Linear program description consumed by `SimplexSolver`.
///
/// The paper's formulation (Section IV-C) assumes an off-the-shelf LP
/// solver; this module plus `simplex.hpp` is our from-scratch substitute.
/// Only minimization is supported (MRLC minimizes tree cost); callers that
/// need maximization negate the objective.

#include <limits>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace mrlc::lp {

using VarId = int;
using RowId = int;

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One term `coefficient * variable` in a constraint row.
struct Term {
  VarId var = 0;
  double coefficient = 0.0;
};

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A linear program: min c'x  s.t.  row relations,  l <= x <= u.
///
/// Lower bounds must be finite (the MRLC LPs only need x >= 0); upper
/// bounds may be +inf.  Duplicate terms on the same (row, var) pair are
/// summed.
class Model {
 public:
  /// Adds a variable and returns its id.
  VarId add_variable(double objective_coefficient, double lower = 0.0,
                     double upper = kInfinity, std::string name = {});

  /// Adds an empty constraint row; populate with `add_term`.
  RowId add_constraint(Relation relation, double rhs, std::string name = {});

  /// Adds a constraint with its terms in one call.  (Named differently from
  /// `add_constraint` because brace-initialized term lists would otherwise
  /// be ambiguous with the `name` overload.)
  RowId add_row(Relation relation, double rhs, const std::vector<Term>& terms,
                std::string name = {});

  void add_term(RowId row, VarId var, double coefficient);

  /// Replaces the objective coefficient of `v`.  An attached `LpInstance`
  /// must be told via `LpInstance::update_objective` to stay in sync.
  void set_objective_coefficient(VarId v, double coefficient);

  /// Replaces the right-hand side of row `r`.  An attached `LpInstance`
  /// must be told via `LpInstance::update_rhs` to stay in sync.
  void set_rhs(RowId r, double rhs);

  int variable_count() const noexcept { return static_cast<int>(vars_.size()); }
  int constraint_count() const noexcept { return static_cast<int>(rows_.size()); }

  double objective_coefficient(VarId v) const { return var_at(v).objective; }
  double lower_bound(VarId v) const { return var_at(v).lower; }
  double upper_bound(VarId v) const { return var_at(v).upper; }
  const std::string& variable_name(VarId v) const { return var_at(v).name; }

  Relation relation(RowId r) const { return row_at(r).relation; }
  double rhs(RowId r) const { return row_at(r).rhs; }
  const std::vector<Term>& terms(RowId r) const { return row_at(r).terms; }
  const std::string& constraint_name(RowId r) const { return row_at(r).name; }

  /// Evaluates the left-hand side of a row at a candidate point.
  double evaluate_row(RowId r, const std::vector<double>& x) const;

  /// Evaluates the objective at a candidate point.
  double evaluate_objective(const std::vector<double>& x) const;

  /// True if `x` satisfies all rows and bounds within `tolerance`.
  bool is_feasible(const std::vector<double>& x, double tolerance = 1e-7) const;

 private:
  struct Variable {
    double objective = 0.0;
    double lower = 0.0;
    double upper = kInfinity;
    std::string name;
  };
  struct Row {
    Relation relation = Relation::kLessEqual;
    double rhs = 0.0;
    std::vector<Term> terms;
    std::string name;
  };

  const Variable& var_at(VarId v) const {
    MRLC_REQUIRE(v >= 0 && v < variable_count(), "variable id out of range");
    return vars_[static_cast<std::size_t>(v)];
  }
  const Row& row_at(RowId r) const {
    MRLC_REQUIRE(r >= 0 && r < constraint_count(), "row id out of range");
    return rows_[static_cast<std::size_t>(r)];
  }

  std::vector<Variable> vars_;
  std::vector<Row> rows_;
};

}  // namespace mrlc::lp
