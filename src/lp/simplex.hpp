#pragma once

/// \file simplex.hpp
/// \brief Shared LP solver types and the stateless `SimplexSolver` facade.
///
/// Two interchangeable engines implement the simplex method behind the
/// persistent `lp::LpInstance` (instance.hpp):
///
///  * **sparse** (sparse.hpp, the default): a bounded-variable revised
///    simplex over CSR/CSC row storage with a product-form factorized
///    basis, devex pricing and periodic refactorization.  Finite variable
///    bounds (the `x_e <= 1` box of every MRLC edge variable, weighted
///    degree caps) are handled implicitly by the ratio test instead of
///    being expanded into explicit tableau rows, which is what makes
///    n in the hundreds-to-thousands tractable;
///  * **dense** (dense.hpp): the historical dense two-phase tableau,
///    retained verbatim as a numerical cross-check oracle
///    (`SimplexOptions::cross_check`) and for A/B comparison.
///
/// Both return *basic feasible* optima, i.e. extreme points of the feasible
/// polytope — exactly what the Iterative Relaxation Algorithm needs
/// (Algorithm 1, Line 5 asks for "an extreme point solution of
/// LP(G, L', W)").  Anti-cycling in both engines: an automatic switch to
/// Bland's rule on long degenerate streaks guards against cycling on the
/// degenerate spanning-tree polytopes these LPs produce.

#include <vector>

#include "common/budget.hpp"
#include "lp/model.hpp"

namespace mrlc::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  /// The attached `Budget` (SimplexOptions::budget) ran out mid-solve.
  /// Distinct from kIterationLimit (the solver's own pivot cap) so the
  /// anytime layer can report "budget exhausted" rather than "numerical
  /// trouble".  The basis is abandoned; callers must not read `values`.
  kInterrupted,
};

/// Which simplex implementation an `LpInstance` runs.
enum class Engine {
  /// Resolve to the process-wide default (`lp::default_engine()`).
  kDefault,
  /// Sparse bounded-variable revised simplex (sparse.hpp).
  kSparse,
  /// Dense two-phase tableau (dense.hpp) — the cross-check oracle.
  kDense,
};

/// \brief Process-wide engine used when `SimplexOptions::engine` is
/// `Engine::kDefault`.  Starts as `Engine::kSparse`.
/// \return the current default engine (never `Engine::kDefault`).
Engine default_engine() noexcept;

/// \brief Overrides the process-wide default engine (CLI `--engine`).
/// \param engine  `kSparse` or `kDense`; `kDefault` is rejected.
void set_default_engine(Engine engine);

/// \brief Process-wide default for `SimplexOptions::cross_check` (CLI
/// `--lp-crosscheck`): when set, every `LpInstance` runs the dense shadow
/// oracle even if its own options don't ask for it.
/// \return the current default (starts false).
bool default_cross_check() noexcept;

/// \brief Sets the process-wide cross-check default.
/// \param enabled  true to audit every sparse solve against the dense
///                 oracle (roughly doubles LP cost).
void set_default_cross_check(bool enabled) noexcept;

/// Entering-variable pricing rule of the sparse engine (the dense oracle
/// always prices with Dantzig's rule, as it historically did).
enum class Pricing {
  /// Devex reference-framework weights (Harris): near-steepest-edge
  /// quality at Dantzig cost.  The default.
  kDevex,
  /// Devex updates plus *exact* steepest-edge weight recomputation
  /// (gamma_j = 1 + ||B^-1 A_j||^2) at every refactorization.
  kSteepestEdge,
  /// Most-negative reduced cost, no weights.  A/B baseline.
  kDantzig,
};

/// Result of a solve.  `values` / `is_basic` are indexed by the model's
/// variable ids.  `is_basic` marks variables that are basic in the final
/// tableau; nonbasic variables sit exactly at a bound.
struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  std::vector<bool> is_basic;
  int iterations = 0;
  /// True when this solve reoptimized from a previous basis (dual simplex
  /// warm start, `LpInstance::resolve`) instead of a cold two-phase run.
  bool warm_started = false;
};

/// Bit-exact image of an engine's factorized basis, exposed for the
/// fault-replay tests: two instances that executed the same solve/sync
/// trajectory must produce `==`-equal snapshots (including every double).
struct BasisSnapshot {
  /// Per basis row: the engine-internal column id that is basic in it.
  std::vector<int> basic;
  /// Per basis row: the primal value of that basic column.
  std::vector<double> basic_values;
  /// Per engine-internal column: 1 when nonbasic at its upper bound
  /// (sparse engine only; dense encodes bounds as rows and leaves this
  /// empty).
  std::vector<signed char> nonbasic_at_upper;

  bool operator==(const BasisSnapshot& other) const {
    return basic == other.basic && basic_values == other.basic_values &&
           nonbasic_at_upper == other.nonbasic_at_upper;
  }
};

/// Solver options.
struct SimplexOptions {
  double pivot_tolerance = 1e-9;      ///< entries smaller than this can't pivot
  double cost_tolerance = 1e-9;       ///< reduced costs above -tol are optimal
  int max_iterations = 200000;        ///< hard cap across both phases
  int bland_after = 5000;             ///< switch to Bland's rule after this many
                                      ///< pivots without objective progress
  /// Anti-cycling: also switch to Bland's rule after this many *consecutive*
  /// degenerate (zero-ratio) pivots.  Degenerate spanning-tree polytopes can
  /// stall long before `bland_after` fires on total non-progress; a streak
  /// this long is the signature of an incipient cycle.  Each switchover is
  /// counted in `simplex.bland_activations`.
  int bland_degenerate_streak = 40;
  /// Optional cooperative budget, charged one unit per pivot (the pivot
  /// loops are serial, so the charge points are deterministic).  When it
  /// runs out mid-solve the status is `kInterrupted`.  Not owned; null
  /// means unlimited and leaves the solver's behavior bit-identical to a
  /// budget-free build.
  Budget* budget = nullptr;
  /// Engine selection; `kDefault` resolves to `lp::default_engine()` at
  /// `LpInstance` construction time.
  Engine engine = Engine::kDefault;
  /// Entering-variable pricing of the sparse engine.
  Pricing pricing = Pricing::kDevex;
  /// Sparse engine: refactorize (reinvert the product-form basis) after
  /// this many pivots.  Each reinversion also recomputes the basic values
  /// and reduced costs from scratch, and the drift between incremental and
  /// recomputed values is checked against `drift_tolerance`.
  int refactor_interval = 64;
  /// Sparse engine: incremental basic values that drift further than this
  /// from their refactorized recomputation count as a numerical-drift
  /// event (`simplex.sparse_drift_events`); the recomputed values win.
  double drift_tolerance = 1e-7;
  /// Run the dense tableau as a shadow oracle next to the sparse engine:
  /// every solve/resolve is executed by both, and a status or objective
  /// disagreement (or a sparse solution that violates the model) throws.
  /// Testing/CI only — roughly doubles solve cost.  Ignored when the
  /// resolved engine is already dense.
  bool cross_check = false;
  /// Record `simplex.*` metrics for this instance's solves.  The dense
  /// shadow oracle runs with this off so cross-checked runs don't
  /// double-count pivots.
  bool record_metrics = true;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves `model` (minimization).  Never throws on infeasible/unbounded
  /// inputs — that is reported via `Solution::status`.
  ///
  /// Stateless facade: each call performs a cold solve with the configured
  /// engine.  Callers that re-solve the same LP after row additions
  /// (cutting planes) should hold an `lp::LpInstance` (instance.hpp) and
  /// use its warm-started `resolve` path instead.
  Solution solve(const Model& model) const;

  const SimplexOptions& options() const noexcept { return options_; }

 private:
  SimplexOptions options_;
};

}  // namespace mrlc::lp
