#pragma once

/// \file simplex.hpp
/// \brief Dense two-phase primal simplex solver.
///
/// Returns *basic feasible* optima, i.e. extreme points of the feasible
/// polytope — exactly what the Iterative Relaxation Algorithm needs
/// (Algorithm 1, Line 5 asks for "an extreme point solution of
/// LP(G, L', W)").  Dantzig pricing with an automatic switch to Bland's
/// rule guards against cycling on the degenerate spanning-tree polytopes
/// these LPs produce.
///
/// Scale: the MRLC LPs have O(|E|) variables and O(|V| + cuts) rows with
/// |V| <= a few hundred, so a dense tableau is simple, robust, and fast
/// enough (milliseconds per solve at the paper's n = 16).

#include <vector>

#include "common/budget.hpp"
#include "lp/model.hpp"

namespace mrlc::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  /// The attached `Budget` (SimplexOptions::budget) ran out mid-solve.
  /// Distinct from kIterationLimit (the solver's own pivot cap) so the
  /// anytime layer can report "budget exhausted" rather than "numerical
  /// trouble".  The basis is abandoned; callers must not read `values`.
  kInterrupted,
};

/// Result of a solve.  `values` / `is_basic` are indexed by the model's
/// variable ids.  `is_basic` marks variables that are basic in the final
/// tableau; nonbasic variables sit exactly at a bound.
struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  std::vector<bool> is_basic;
  int iterations = 0;
  /// True when this solve reoptimized from a previous basis (dual simplex
  /// warm start, `LpInstance::resolve`) instead of a cold two-phase run.
  bool warm_started = false;
};

/// Solver options.
struct SimplexOptions {
  double pivot_tolerance = 1e-9;      ///< entries smaller than this can't pivot
  double cost_tolerance = 1e-9;       ///< reduced costs above -tol are optimal
  int max_iterations = 200000;        ///< hard cap across both phases
  int bland_after = 5000;             ///< switch to Bland's rule after this many
                                      ///< pivots without objective progress
  /// Anti-cycling: also switch to Bland's rule after this many *consecutive*
  /// degenerate (zero-ratio) pivots.  Degenerate spanning-tree polytopes can
  /// stall long before `bland_after` fires on total non-progress; a streak
  /// this long is the signature of an incipient cycle.  Each switchover is
  /// counted in `simplex.bland_activations`.
  int bland_degenerate_streak = 40;
  /// Optional cooperative budget, charged one unit per pivot (the pivot
  /// loops are serial, so the charge points are deterministic).  When it
  /// runs out mid-solve the status is `kInterrupted`.  Not owned; null
  /// means unlimited and leaves the solver's behavior bit-identical to a
  /// budget-free build.
  Budget* budget = nullptr;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves `model` (minimization).  Never throws on infeasible/unbounded
  /// inputs — that is reported via `Solution::status`.
  ///
  /// Stateless facade: each call performs a cold two-phase solve.  Callers
  /// that re-solve the same LP after row additions (cutting planes) should
  /// hold an `lp::LpInstance` (instance.hpp) and use its warm-started
  /// `resolve` path instead.
  Solution solve(const Model& model) const;

  const SimplexOptions& options() const noexcept { return options_; }

 private:
  SimplexOptions options_;
};

}  // namespace mrlc::lp
