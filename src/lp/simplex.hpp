#pragma once

/// \file simplex.hpp
/// \brief Dense two-phase primal simplex solver.
///
/// Returns *basic feasible* optima, i.e. extreme points of the feasible
/// polytope — exactly what the Iterative Relaxation Algorithm needs
/// (Algorithm 1, Line 5 asks for "an extreme point solution of
/// LP(G, L', W)").  Dantzig pricing with an automatic switch to Bland's
/// rule guards against cycling on the degenerate spanning-tree polytopes
/// these LPs produce.
///
/// Scale: the MRLC LPs have O(|E|) variables and O(|V| + cuts) rows with
/// |V| <= a few hundred, so a dense tableau is simple, robust, and fast
/// enough (milliseconds per solve at the paper's n = 16).

#include <vector>

#include "lp/model.hpp"

namespace mrlc::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

/// Result of a solve.  `values` / `is_basic` are indexed by the model's
/// variable ids.  `is_basic` marks variables that are basic in the final
/// tableau; nonbasic variables sit exactly at a bound.
struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  std::vector<bool> is_basic;
  int iterations = 0;
};

/// Solver options.
struct SimplexOptions {
  double pivot_tolerance = 1e-9;      ///< entries smaller than this can't pivot
  double cost_tolerance = 1e-9;       ///< reduced costs above -tol are optimal
  int max_iterations = 200000;        ///< hard cap across both phases
  int bland_after = 5000;             ///< switch to Bland's rule after this many
                                      ///< pivots without objective progress
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves `model` (minimization).  Never throws on infeasible/unbounded
  /// inputs — that is reported via `Solution::status`.
  Solution solve(const Model& model) const;

 private:
  SimplexOptions options_;
};

}  // namespace mrlc::lp
