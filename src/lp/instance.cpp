#include "lp/instance.hpp"

#include <cmath>

#include "common/check.hpp"

namespace mrlc::lp {

namespace {

/// Relative objective disagreement between the engines that fails the
/// cross-check audit.
constexpr double kAuditObjectiveTol = 1e-6;
/// Row violation of the sparse solution that fails the cross-check audit.
constexpr double kAuditFeasibilityTol = 1e-6;

Engine resolve_engine(const SimplexOptions& options) {
  return options.engine == Engine::kDefault ? default_engine()
                                            : options.engine;
}

}  // namespace

LpInstance::LpInstance(const Model& model, SimplexOptions options)
    : options_(options), engine_(resolve_engine(options)), model_(&model) {
  options_.cross_check = options_.cross_check || default_cross_check();
  if (engine_ == Engine::kDense) {
    dense_ = std::make_unique<DenseLpCore>(model, options_);
    return;
  }
  sparse_ = std::make_unique<SparseLpCore>(model, options_);
  if (options_.cross_check) {
    SimplexOptions shadow = options_;
    shadow.engine = Engine::kDense;
    shadow.record_metrics = false;  // don't double-count simplex.* metrics
    shadow.budget = nullptr;        // the audit must not drain the budget
    oracle_ = std::make_unique<DenseLpCore>(model, shadow);
  }
}

LpInstance::LpInstance(const Model& model, int visible_rows,
                       SimplexOptions options)
    : options_(options), engine_(resolve_engine(options)), model_(&model) {
  options_.cross_check = options_.cross_check || default_cross_check();
  if (engine_ == Engine::kDense) {
    dense_ = std::make_unique<DenseLpCore>(model, visible_rows, options_);
    return;
  }
  sparse_ = std::make_unique<SparseLpCore>(model, visible_rows, options_);
  if (options_.cross_check) {
    SimplexOptions shadow = options_;
    shadow.engine = Engine::kDense;
    shadow.record_metrics = false;
    shadow.budget = nullptr;
    oracle_ = std::make_unique<DenseLpCore>(model, visible_rows, shadow);
  }
}

LpInstance::~LpInstance() = default;
LpInstance::LpInstance(LpInstance&&) noexcept = default;
LpInstance& LpInstance::operator=(LpInstance&&) noexcept = default;

void LpInstance::audit(const Solution& ours, bool warm_call) {
  if (oracle_ == nullptr) return;
  const Solution theirs = warm_call ? oracle_->resolve() : oracle_->solve();
  // A budget interruption only exists on the audited side (the oracle runs
  // unbudgeted); there is nothing to compare.
  if (ours.status == SolveStatus::kInterrupted) return;
  MRLC_ENSURE(ours.status == theirs.status,
              "cross-check: sparse and dense engines disagree on status");
  if (ours.status != SolveStatus::kOptimal) return;
  const double scale = 1.0 + std::abs(theirs.objective);
  MRLC_ENSURE(
      std::abs(ours.objective - theirs.objective) <= kAuditObjectiveTol * scale,
      "cross-check: sparse and dense optimal objectives disagree");
  // Basis feasibility of the sparse point, judged by the model itself.
  for (RowId r = 0; r < model_->constraint_count(); ++r) {
    const double lhs = model_->evaluate_row(r, ours.values);
    const double rhs = model_->rhs(r);
    bool ok = true;
    switch (model_->relation(r)) {
      case Relation::kLessEqual: ok = lhs <= rhs + kAuditFeasibilityTol; break;
      case Relation::kGreaterEqual:
        ok = lhs >= rhs - kAuditFeasibilityTol;
        break;
      case Relation::kEqual:
        ok = std::abs(lhs - rhs) <= kAuditFeasibilityTol;
        break;
    }
    MRLC_ENSURE(ok, "cross-check: sparse solution violates a model row");
  }
}

Solution LpInstance::solve() {
  if (dense_ != nullptr) return dense_->solve();
  Solution out = sparse_->solve();
  audit(out, /*warm_call=*/false);
  return out;
}

Solution LpInstance::resolve() {
  if (dense_ != nullptr) return dense_->resolve();
  Solution out = sparse_->resolve();
  audit(out, /*warm_call=*/true);
  return out;
}

int LpInstance::sync_new_rows() {
  if (oracle_ != nullptr) oracle_->sync_new_rows();
  if (dense_ != nullptr) return dense_->sync_new_rows();
  return sparse_->sync_new_rows();
}

int LpInstance::sync_new_rows(int up_to_rows) {
  if (oracle_ != nullptr) oracle_->sync_new_rows(up_to_rows);
  if (dense_ != nullptr) return dense_->sync_new_rows(up_to_rows);
  return sparse_->sync_new_rows(up_to_rows);
}

void LpInstance::update_rhs(RowId row) {
  if (oracle_ != nullptr) oracle_->update_rhs(row);
  if (dense_ != nullptr) {
    dense_->update_rhs(row);
    return;
  }
  sparse_->update_rhs(row);
}

void LpInstance::update_objective(VarId v) {
  if (oracle_ != nullptr) oracle_->update_objective(v);
  if (dense_ != nullptr) {
    dense_->update_objective(v);
    return;
  }
  sparse_->update_objective(v);
}

bool LpInstance::has_basis() const noexcept {
  return dense_ != nullptr ? dense_->has_basis() : sparse_->has_basis();
}

BasisSnapshot LpInstance::basis_snapshot() const {
  return dense_ != nullptr ? dense_->basis_snapshot()
                           : sparse_->basis_snapshot();
}

long long LpInstance::cold_fallbacks() const noexcept {
  return dense_ != nullptr ? dense_->cold_fallbacks()
                           : sparse_->cold_fallbacks();
}

long long LpInstance::warm_solves() const noexcept {
  return dense_ != nullptr ? dense_->warm_solves() : sparse_->warm_solves();
}

long long LpInstance::degenerate_pivots() const noexcept {
  return dense_ != nullptr ? dense_->degenerate_pivots()
                           : sparse_->degenerate_pivots();
}

long long LpInstance::bland_activations() const noexcept {
  return dense_ != nullptr ? dense_->bland_activations()
                           : sparse_->bland_activations();
}

}  // namespace mrlc::lp
