#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace mrlc::lp {

namespace {

/// Dense tableau state for one solve.  Columns are laid out as
/// [shifted structural variables | slack/surplus | artificials]; the
/// right-hand side is stored separately.
class Tableau {
 public:
  Tableau(const Model& model, const SimplexOptions& options)
      : model_(model), options_(options) {
    build();
  }

  long long degenerate_pivots() const noexcept { return degenerate_pivots_; }

  Solution run() {
    Solution out;
    // ---- Phase 1: minimize the sum of artificials. ----------------------
    if (artificial_count_ > 0) {
      load_costs_phase1();
      const SolveStatus s1 = optimize(&out.iterations);
      if (s1 == SolveStatus::kIterationLimit) {
        out.status = s1;
        return out;
      }
      // Phase 1 is bounded below by zero, so kUnbounded cannot happen.
      if (phase_objective() > 1e-6) {
        out.status = SolveStatus::kInfeasible;
        return out;
      }
      drive_out_artificials();
    }
    // ---- Phase 2: the real objective over structural + slack columns. ---
    load_costs_phase2();
    const SolveStatus s2 = optimize(&out.iterations);
    out.status = s2;
    if (s2 != SolveStatus::kOptimal) return out;

    extract(out);
    return out;
  }

 private:
  // One row of the constraint matrix after normalization to
  //   sum a_j y_j  (relation)  b   with  b >= 0.
  struct NormalizedRow {
    std::vector<double> coeffs;  // dense over shifted structural variables
    Relation relation = Relation::kLessEqual;
    double rhs = 0.0;
  };

  void build() {
    const int n = model_.variable_count();
    shifted_count_ = n;

    // Shift x = l + y so every structural variable has lower bound 0.
    shift_.resize(static_cast<std::size_t>(n));
    for (VarId v = 0; v < n; ++v) {
      shift_[static_cast<std::size_t>(v)] = model_.lower_bound(v);
    }

    std::vector<NormalizedRow> rows;
    auto add_row = [&](std::vector<double> coeffs, Relation rel, double rhs) {
      if (rhs < 0.0) {
        for (double& c : coeffs) c = -c;
        rhs = -rhs;
        rel = rel == Relation::kLessEqual    ? Relation::kGreaterEqual
              : rel == Relation::kGreaterEqual ? Relation::kLessEqual
                                               : Relation::kEqual;
      }
      rows.push_back(NormalizedRow{std::move(coeffs), rel, rhs});
    };

    for (RowId r = 0; r < model_.constraint_count(); ++r) {
      std::vector<double> coeffs(static_cast<std::size_t>(n), 0.0);
      double rhs = model_.rhs(r);
      for (const Term& t : model_.terms(r)) {
        coeffs[static_cast<std::size_t>(t.var)] += t.coefficient;
        rhs -= t.coefficient * shift_[static_cast<std::size_t>(t.var)];
      }
      add_row(std::move(coeffs), model_.relation(r), rhs);
    }
    // Finite upper bounds become explicit rows  y_v <= u_v - l_v.
    for (VarId v = 0; v < n; ++v) {
      const double u = model_.upper_bound(v);
      if (std::isfinite(u)) {
        std::vector<double> coeffs(static_cast<std::size_t>(n), 0.0);
        coeffs[static_cast<std::size_t>(v)] = 1.0;
        add_row(std::move(coeffs), Relation::kLessEqual,
                u - shift_[static_cast<std::size_t>(v)]);
      }
    }

    row_count_ = static_cast<int>(rows.size());
    // Column layout: structural | slack/surplus | artificial.
    slack_count_ = 0;
    artificial_count_ = 0;
    for (const auto& row : rows) {
      if (row.relation != Relation::kEqual) ++slack_count_;
      if (row.relation != Relation::kLessEqual) ++artificial_count_;
    }
    column_count_ = shifted_count_ + slack_count_ + artificial_count_;

    matrix_.assign(static_cast<std::size_t>(row_count_) *
                       static_cast<std::size_t>(column_count_),
                   0.0);
    rhs_.assign(static_cast<std::size_t>(row_count_), 0.0);
    basis_.assign(static_cast<std::size_t>(row_count_), -1);
    artificial_start_ = shifted_count_ + slack_count_;

    int next_slack = shifted_count_;
    int next_artificial = artificial_start_;
    for (int i = 0; i < row_count_; ++i) {
      const NormalizedRow& row = rows[static_cast<std::size_t>(i)];
      for (int j = 0; j < shifted_count_; ++j) {
        at(i, j) = row.coeffs[static_cast<std::size_t>(j)];
      }
      rhs_[static_cast<std::size_t>(i)] = row.rhs;
      switch (row.relation) {
        case Relation::kLessEqual:
          at(i, next_slack) = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_slack++;
          break;
        case Relation::kGreaterEqual:
          at(i, next_slack) = -1.0;
          ++next_slack;
          at(i, next_artificial) = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_artificial++;
          break;
        case Relation::kEqual:
          at(i, next_artificial) = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_artificial++;
          break;
      }
    }
  }

  double& at(int row, int col) {
    return matrix_[static_cast<std::size_t>(row) * static_cast<std::size_t>(column_count_) +
                   static_cast<std::size_t>(col)];
  }
  double at(int row, int col) const {
    return matrix_[static_cast<std::size_t>(row) * static_cast<std::size_t>(column_count_) +
                   static_cast<std::size_t>(col)];
  }

  /// (Re)computes the reduced-cost row  z_j = c_j - c_B' (B^{-1} A)_j  and
  /// the objective value for the given raw column costs.
  void load_costs(const std::vector<double>& costs) {
    costs_ = costs;
    reduced_.assign(static_cast<std::size_t>(column_count_), 0.0);
    objective_ = 0.0;
    for (int j = 0; j < column_count_; ++j) {
      reduced_[static_cast<std::size_t>(j)] = costs_[static_cast<std::size_t>(j)];
    }
    for (int i = 0; i < row_count_; ++i) {
      const double cb = costs_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
      if (cb == 0.0) continue;
      for (int j = 0; j < column_count_; ++j) {
        reduced_[static_cast<std::size_t>(j)] -= cb * at(i, j);
      }
      objective_ += cb * rhs_[static_cast<std::size_t>(i)];
    }
  }

  void load_costs_phase1() {
    std::vector<double> costs(static_cast<std::size_t>(column_count_), 0.0);
    for (int j = artificial_start_; j < column_count_; ++j) {
      costs[static_cast<std::size_t>(j)] = 1.0;
    }
    phase1_ = true;
    load_costs(costs);
  }

  void load_costs_phase2() {
    std::vector<double> costs(static_cast<std::size_t>(column_count_), 0.0);
    for (VarId v = 0; v < model_.variable_count(); ++v) {
      costs[static_cast<std::size_t>(v)] = model_.objective_coefficient(v);
    }
    phase1_ = false;
    load_costs(costs);
  }

  double phase_objective() const { return objective_; }

  /// In phase 2 an artificial column must never re-enter the basis.
  bool column_allowed(int j) const { return phase1_ || j < artificial_start_; }

  SolveStatus optimize(int* iteration_counter) {
    int since_progress = 0;
    double last_objective = objective_;
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      ++*iteration_counter;
      const bool bland = since_progress > options_.bland_after;

      // --- pricing ---
      int entering = -1;
      double best = -options_.cost_tolerance;
      for (int j = 0; j < column_count_; ++j) {
        if (!column_allowed(j)) continue;
        const double rc = reduced_[static_cast<std::size_t>(j)];
        if (rc < best) {
          entering = j;
          if (bland) break;  // Bland: first improving column
          best = rc;
        } else if (bland && rc < -options_.cost_tolerance) {
          entering = j;
          break;
        }
      }
      if (entering == -1) return SolveStatus::kOptimal;

      // --- ratio test ---
      int leaving = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < row_count_; ++i) {
        const double a = at(i, entering);
        if (a <= options_.pivot_tolerance) continue;
        const double ratio = rhs_[static_cast<std::size_t>(i)] / a;
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && leaving != -1 &&
             basis_[static_cast<std::size_t>(i)] <
                 basis_[static_cast<std::size_t>(leaving)])) {
          best_ratio = ratio;
          leaving = i;
        }
      }
      if (leaving == -1) return SolveStatus::kUnbounded;

      if (best_ratio <= 1e-12) ++degenerate_pivots_;
      pivot(leaving, entering);

      if (objective_ < last_objective - 1e-12) {
        last_objective = objective_;
        since_progress = 0;
      } else {
        ++since_progress;
      }
    }
    return SolveStatus::kIterationLimit;
  }

  void pivot(int leaving_row, int entering_col) {
    const double p = at(leaving_row, entering_col);
    // Normalize the pivot row.
    const double inv = 1.0 / p;
    for (int j = 0; j < column_count_; ++j) at(leaving_row, j) *= inv;
    rhs_[static_cast<std::size_t>(leaving_row)] *= inv;
    at(leaving_row, entering_col) = 1.0;  // kill rounding noise

    for (int i = 0; i < row_count_; ++i) {
      if (i == leaving_row) continue;
      const double factor = at(i, entering_col);
      if (std::abs(factor) <= 1e-14) continue;
      for (int j = 0; j < column_count_; ++j) {
        at(i, j) -= factor * at(leaving_row, j);
      }
      at(i, entering_col) = 0.0;
      rhs_[static_cast<std::size_t>(i)] -= factor * rhs_[static_cast<std::size_t>(leaving_row)];
      if (rhs_[static_cast<std::size_t>(i)] < 0.0 &&
          rhs_[static_cast<std::size_t>(i)] > -1e-10) {
        rhs_[static_cast<std::size_t>(i)] = 0.0;  // clamp degeneracy noise
      }
    }
    // Update the reduced-cost row the same way.
    const double rc = reduced_[static_cast<std::size_t>(entering_col)];
    if (std::abs(rc) > 0.0) {
      for (int j = 0; j < column_count_; ++j) {
        reduced_[static_cast<std::size_t>(j)] -= rc * at(leaving_row, j);
      }
      reduced_[static_cast<std::size_t>(entering_col)] = 0.0;
      objective_ += rc * rhs_[static_cast<std::size_t>(leaving_row)];
    }
    basis_[static_cast<std::size_t>(leaving_row)] = entering_col;
  }

  /// After phase 1, pivots basic artificials out (or detects their rows as
  /// redundant, in which case the row stays with a zero-valued artificial —
  /// phase 2 forbids it from moving, which keeps the row inert).
  void drive_out_artificials() {
    for (int i = 0; i < row_count_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b < artificial_start_) continue;
      // Basic artificial at value ~0 (phase 1 succeeded).  Pivot on any
      // usable non-artificial column in this row.
      for (int j = 0; j < artificial_start_; ++j) {
        if (std::abs(at(i, j)) > 1e-7) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  void extract(Solution& out) const {
    const int n = model_.variable_count();
    out.values.assign(static_cast<std::size_t>(n), 0.0);
    out.is_basic.assign(static_cast<std::size_t>(n), false);
    for (VarId v = 0; v < n; ++v) {
      out.values[static_cast<std::size_t>(v)] = shift_[static_cast<std::size_t>(v)];
    }
    for (int i = 0; i < row_count_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b < shifted_count_) {
        out.values[static_cast<std::size_t>(b)] =
            shift_[static_cast<std::size_t>(b)] + rhs_[static_cast<std::size_t>(i)];
        out.is_basic[static_cast<std::size_t>(b)] = true;
      }
    }
    out.objective = model_.evaluate_objective(out.values);
  }

  const Model& model_;
  const SimplexOptions& options_;

  int shifted_count_ = 0;
  int slack_count_ = 0;
  int artificial_count_ = 0;
  int artificial_start_ = 0;
  int row_count_ = 0;
  int column_count_ = 0;
  bool phase1_ = false;
  long long degenerate_pivots_ = 0;  ///< pivots with a ~zero ratio (no progress)

  std::vector<double> shift_;
  std::vector<double> matrix_;
  std::vector<double> rhs_;
  std::vector<int> basis_;
  std::vector<double> costs_;
  std::vector<double> reduced_;
  double objective_ = 0.0;
};

}  // namespace

Solution SimplexSolver::solve(const Model& model) const {
  if (model.variable_count() == 0) {
    // Empty model: feasible iff every row is satisfied by the empty point.
    Solution out;
    bool ok = true;
    for (RowId r = 0; r < model.constraint_count(); ++r) {
      const double rhs = model.rhs(r);
      switch (model.relation(r)) {
        case Relation::kLessEqual: ok = ok && rhs >= -1e-9; break;
        case Relation::kGreaterEqual: ok = ok && rhs <= 1e-9; break;
        case Relation::kEqual: ok = ok && std::abs(rhs) <= 1e-9; break;
      }
    }
    out.status = ok ? SolveStatus::kOptimal : SolveStatus::kInfeasible;
    return out;
  }
  trace::ScopedPhase phase("simplex");
  Tableau tableau(model, options_);
  Solution solution = tableau.run();

  static metrics::Counter& solves = metrics::counter("simplex.solves");
  static metrics::Counter& pivots = metrics::counter("simplex.pivots");
  static metrics::Counter& degenerate =
      metrics::counter("simplex.degenerate_pivots");
  static metrics::Histogram& per_solve =
      metrics::histogram("simplex.pivots_per_solve");
  solves.add();
  pivots.add(solution.iterations);
  degenerate.add(tableau.degenerate_pivots());
  per_solve.record(solution.iterations);
  return solution;
}

}  // namespace mrlc::lp
