#include "lp/simplex.hpp"

#include "lp/instance.hpp"

namespace mrlc::lp {

Solution SimplexSolver::solve(const Model& model) const {
  // Stateless facade over the persistent solver: build a throwaway
  // instance and run its cold two-phase path (which also records the
  // simplex.* metrics).
  LpInstance instance(model, options_);
  return instance.solve();
}

}  // namespace mrlc::lp
