#include "lp/simplex.hpp"

#include <atomic>

#include "common/check.hpp"
#include "lp/instance.hpp"

namespace mrlc::lp {

namespace {

std::atomic<Engine> g_default_engine{Engine::kSparse};
std::atomic<bool> g_default_cross_check{false};

}  // namespace

Engine default_engine() noexcept {
  return g_default_engine.load(std::memory_order_relaxed);
}

void set_default_engine(Engine engine) {
  MRLC_REQUIRE(engine != Engine::kDefault,
               "the default engine must be a concrete engine");
  g_default_engine.store(engine, std::memory_order_relaxed);
}

bool default_cross_check() noexcept {
  return g_default_cross_check.load(std::memory_order_relaxed);
}

void set_default_cross_check(bool enabled) noexcept {
  g_default_cross_check.store(enabled, std::memory_order_relaxed);
}

Solution SimplexSolver::solve(const Model& model) const {
  // Stateless facade over the persistent solver: build a throwaway
  // instance and run its cold path (which also records the simplex.*
  // metrics).
  LpInstance instance(model, options_);
  return instance.solve();
}

}  // namespace mrlc::lp
