#pragma once

/// \file instance.hpp
/// \brief `LpInstance` — the persistent warm-startable LP solver facade.
///
/// `LpInstance` is the type every caller holds (the subtour cut loop, the
/// anytime tier, the service daemon's warm cache).  Since the sparse
/// rebuild it is a thin facade that routes to one of two engines, selected
/// by `SimplexOptions::engine` (with `Engine::kDefault` resolving to the
/// process-wide `lp::default_engine()` at construction time):
///
///  * `SparseLpCore` (sparse.hpp) — the default: bounded-variable revised
///    simplex over CSR storage with a product-form factorized basis, devex
///    pricing and periodic refactorization;
///  * `DenseLpCore` (dense.hpp) — the historical dense tableau, retained
///    pivot-for-pivot as the cross-check oracle.
///
/// With `SimplexOptions::cross_check` set (and the sparse engine active),
/// every mutation and solve is mirrored onto a shadow `DenseLpCore` (with
/// metrics recording off and no budget, so the audit never perturbs the
/// run), and the two engines' verdicts are compared after each solve:
/// statuses must agree, optimal objectives must match to a relative 1e-6,
/// and the sparse solution must satisfy every visible model row.  Any
/// disagreement throws — this is the testing/CI guard-rail that keeps the
/// fast engine honest against the simple one.
///
/// The warm-start contract (PR 5) is engine-independent and documented on
/// the members below: `sync_new_rows` / `resolve` for cutting planes,
/// `update_rhs` / `update_objective` for coefficient edits, the
/// bounded-visibility replay constructor for fault recovery, and the
/// audited cold-fallback path (`simplex.cold_fallbacks`) that turns any
/// numerical doubt into a from-scratch solve, never a wrong answer.

#include <memory>

#include "lp/dense.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "lp/sparse.hpp"

namespace mrlc::lp {

class LpInstance {
 public:
  /// Attaches to `model`.  The model is the single source of truth: rows
  /// appended to it are ingested with `sync_new_rows`, and the cold
  /// (re)build path reads the full model, so instance and model can never
  /// disagree about the LP being solved.
  /// \param model    LP to solve; must outlive the instance, and variables
  ///                 must not be added after attachment.
  /// \param options  solver knobs; `options.engine` picks the engine.
  explicit LpInstance(const Model& model, SimplexOptions options = {});

  /// Bounded attachment for trajectory replay (fault recovery): the cold
  /// build only reads the first `visible_rows` model rows, and later rows
  /// become visible through the bounded `sync_new_rows(int)` overload.
  /// Replaying a recorded solve/sync trajectory on such an instance
  /// reconstructs the exact basis the original instance held — including
  /// on degenerate LPs with multiple optimal vertices, where a plain cold
  /// re-solve over the full model may land elsewhere.
  /// \param model         LP to solve (must outlive the instance).
  /// \param visible_rows  replay horizon, `0 <= visible_rows <= rows`.
  /// \param options       solver knobs.
  LpInstance(const Model& model, int visible_rows, SimplexOptions options);

  ~LpInstance();
  LpInstance(LpInstance&&) noexcept;
  LpInstance& operator=(LpInstance&&) noexcept;

  /// Cold solve: rebuilds the engine state from the model (including every
  /// row appended so far) and solves from scratch.  On success the final
  /// basis is retained for later `resolve` calls.
  /// \return the solution (status, objective, values, iterations).
  Solution solve();

  /// Warm reoptimization from the previous optimal basis: dual simplex
  /// until primal feasible, then primal cleanup.  Falls back to `solve()`
  /// when no basis is available or on numerical trouble; the fallback is
  /// observable via `cold_fallbacks()` and `Solution::warm_started ==
  /// false`.
  /// \return the solution.
  Solution resolve();

  /// Ingests rows appended to the model since the last sync (or build).
  /// Non-equality rows are added incrementally in the current basis;
  /// equality rows invalidate the basis so the next solve is cold.
  /// \return number of model rows ingested by this call.
  int sync_new_rows();
  /// Bounded overload — the replay primitive: raises the visibility
  /// horizon to exactly `up_to_rows`.
  /// \param up_to_rows  new horizon; must not retreat below the rows
  ///                    already ingested nor exceed the model.
  /// \return number of model rows ingested by this call.
  int sync_new_rows(int up_to_rows);

  /// Propagates `model.rhs(row)` after a `Model::set_rhs` edit.  The basis
  /// is kept; call `resolve()` to restore feasibility/optimality.
  /// \param row  model row id (must already be ingested).
  void update_rhs(RowId row);

  /// Propagates `model.objective_coefficient(v)` after a
  /// `Model::set_objective_coefficient` edit.  The basis is kept; call
  /// `resolve()` to restore optimality.
  /// \param v  model variable id.
  void update_objective(VarId v);

  /// \return true when a retained optimal basis makes the next `resolve`
  /// warm.
  bool has_basis() const noexcept;

  /// \brief Bit-exact image of the active engine's retained basis, for the
  /// fault-replay tests (two instances that executed the same trajectory
  /// must compare `==`).
  /// \return empty snapshot when no basis is retained.
  BasisSnapshot basis_snapshot() const;

  /// \return the concrete engine this instance resolved to at construction.
  Engine engine() const noexcept { return engine_; }

  /// \return warm resolves abandoned for the audited cold path, cumulative.
  long long cold_fallbacks() const noexcept;
  /// \return successful warm resolves, cumulative.
  long long warm_solves() const noexcept;
  /// \return zero-step pivots taken, cumulative across solves.
  long long degenerate_pivots() const noexcept;
  /// \return Bland's-rule switchovers, cumulative across solves.
  long long bland_activations() const noexcept;

 private:
  void audit(const Solution& ours, bool warm_call);

  SimplexOptions options_;
  Engine engine_;
  const Model* model_;
  std::unique_ptr<SparseLpCore> sparse_;
  std::unique_ptr<DenseLpCore> dense_;
  /// Shadow oracle (cross_check mode): mirrors every mutation and solve.
  std::unique_ptr<DenseLpCore> oracle_;
};

}  // namespace mrlc::lp
