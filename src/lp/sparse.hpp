#pragma once

/// \file sparse.hpp
/// \brief Sparse bounded-variable revised simplex — the default LP engine.
///
/// The MRLC constraint matrix is overwhelmingly sparse: a spanning-tree row
/// touches every edge variable once, a degree row touches deg(v) of them, a
/// subtour row |E(S)|.  The dense tableau (dense.hpp) stores all of it —
/// plus one *explicit row* per finite upper bound, so every `x_e <= 1` box
/// constraint costs a full tableau row and the working set grows like
/// O((rows + vars)^2).  `SparseLpCore` replaces that with:
///
///  * **CSR row storage** (`row_ptr_` / `row_cols_` / `row_vals_`): the
///    constraint matrix exactly as ingested, append-only, used for residual
///    checks, drift audits and the `simplex.sparse_nnz` instrument — plus a
///    column-major adjacency view (`cols_`) that the pricing and ftran
///    loops walk;
///  * **bounded-variable handling**: every variable carries `[lower, upper]`
///    directly; nonbasic variables sit at a *bound* (not necessarily zero)
///    and the ratio test performs *bound flips* (`simplex.sparse_bound_flips`)
///    when the entering variable hits its opposite bound before any basic
///    variable blocks — no bound rows, no shift bookkeeping;
///  * **a product-form factorized basis** (eta file): `ftran`/`btran` apply
///    the eta transformations instead of materializing B⁻¹A, with a
///    deterministic Gauss–Jordan reinversion every
///    `SimplexOptions::refactor_interval` pivots
///    (`simplex.sparse_refactorizations`) that also recomputes the basic
///    values and audits their incremental drift against
///    `SimplexOptions::drift_tolerance` (`simplex.sparse_drift_events`);
///  * **devex pricing** (default) with an exact steepest-edge option and a
///    Dantzig baseline — see `lp::Pricing`.
///
/// The warm-start surface is contract-identical to `DenseLpCore` (PR 5):
/// `sync_new_rows` appends a violated cut with its slack basic and leaves a
/// dual-feasible, primal-infeasible basis for `resolve`'s dual simplex;
/// equality rows invalidate the basis; `update_rhs` / `update_objective`
/// keep the basis and mark the derived state stale; any numerical trouble
/// falls back to the audited cold path (`simplex.cold_fallbacks`), never a
/// wrong answer.  The bounded-visibility constructor supports the fault
/// recovery trajectory replay, and `basis_snapshot()` exposes the basis
/// bit-exactly so the replay tests can assert reconstruction.

#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace mrlc::lp {

class SparseLpCore {
 public:
  /// Attaches to `model`; same single-source-of-truth contract as the dense
  /// engine.
  /// \param model    LP to solve; must outlive the instance, and variables
  ///                 must not be added after attachment.
  /// \param options  solver knobs; `engine` is ignored (the facade already
  ///                 routed here).
  explicit SparseLpCore(const Model& model, SimplexOptions options = {});

  /// Bounded attachment for trajectory replay (fault recovery): the cold
  /// build reads only the first `visible_rows` model rows; later rows enter
  /// through `sync_new_rows(int)`.
  /// \param model         LP to solve (must outlive the instance).
  /// \param visible_rows  replay horizon, `0 <= visible_rows <= rows`.
  /// \param options       solver knobs.
  SparseLpCore(const Model& model, int visible_rows, SimplexOptions options);

  /// Cold solve: rebuilds the sparse storage from the model, starts from
  /// the all-logical basis, runs a composite Phase 1 (minimize total bound
  /// violation) and a Phase 2 with the configured pricing.
  /// \return solution; on `kOptimal` the basis is retained for `resolve`.
  Solution solve();

  /// Warm reoptimization: dual simplex until primal feasible, then primal
  /// cleanup, from the retained basis.  Falls back to `solve()` when no
  /// basis is available or on numerical trouble (counted in
  /// `cold_fallbacks()`).
  /// \return solution; `warm_started` marks a successful warm path.
  Solution resolve();

  /// Ingests model rows appended since the last sync.  Non-equality rows
  /// join incrementally with their logical column basic; equality rows
  /// invalidate the basis (cold next solve).
  /// \return number of model rows ingested by this call.
  int sync_new_rows();
  /// Bounded overload: raises the replay horizon to exactly `up_to_rows`.
  /// \param up_to_rows  new horizon; must not retreat below the rows
  ///                    already ingested nor exceed the model.
  /// \return number of model rows ingested by this call.
  int sync_new_rows(int up_to_rows);

  /// Propagates `model.rhs(row)` after a `Model::set_rhs` edit; the basis
  /// is kept and the basic values are recomputed on the next `resolve`.
  /// \param row  model row id (must already be ingested).
  void update_rhs(RowId row);

  /// Propagates `model.objective_coefficient(v)` after a cost edit; the
  /// basis is kept and the reduced costs are recomputed on the next
  /// `resolve`.
  /// \param v  model variable id.
  void update_objective(VarId v);

  /// \return true when a retained basis makes the next `resolve` warm.
  bool has_basis() const noexcept { return have_basis_; }

  /// \brief Bit-exact image of the retained basis for the fault-replay
  /// tests: basic column per row, primal value per basic column, and the
  /// at-upper flag per column.
  /// \return empty snapshot when no basis is retained.
  BasisSnapshot basis_snapshot() const;

  /// \return warm resolves abandoned for the audited cold path, cumulative.
  long long cold_fallbacks() const noexcept { return cold_fallbacks_; }
  /// \return successful warm resolves, cumulative.
  long long warm_solves() const noexcept { return warm_solves_; }
  /// \return zero-step pivots taken, cumulative across solves.
  long long degenerate_pivots() const noexcept { return degenerate_pivots_; }
  /// \return Bland's-rule switchovers, cumulative across solves.
  long long bland_activations() const noexcept { return bland_activations_; }

 private:
  /// Variable status: basic, or nonbasic resting at one of its bounds.
  enum class VarState : signed char { kAtLower = 0, kAtUpper = 1, kBasic = 2 };

  struct ColEntry {
    int row;
    double val;
  };

  /// One product-form eta: column `B⁻¹a` with pivot row `pivot_row`; the
  /// off-pivot nonzeros live in `[entry_start, entry_end)` of the shared
  /// pools.
  struct Eta {
    int pivot_row;
    double pivot_val;
    int entry_start;
    int entry_end;
  };

  // --- storage / build ---
  void build();
  void append_row_storage(RowId row);   ///< CSR/CSC + logical column
  int visible_row_count() const;
  bool ingest_row(RowId row);           ///< warm append; false = equality
  int sync_visible();

  // --- factorization ---
  bool reinvert();                      ///< rebuild eta file; false = singular
  void ftran(std::vector<double>& v) const;
  void btran(std::vector<double>& v) const;
  void compute_basic_values();          ///< x_B = B⁻¹(b − N x_N), audited
  bool refactor_if_needed(bool force);  ///< false = singular basis
  void recompute_reduced_costs();
  void recompute_steepest_edge_weights();

  // --- iteration pieces ---
  void load_phase2_costs();
  void scatter_column(int col, std::vector<double>& v) const;
  double row_dot(int col, const std::vector<double>& rho) const;
  void append_eta(int pivot_row, const std::vector<double>& alpha);
  void apply_pivot(int r, int entering, int direction, double step,
                   const std::vector<double>& alpha, VarState leave_state);

  SolveStatus primal_optimize(int* iteration_counter, bool phase1);
  SolveStatus dual_optimize(int* iteration_counter);

  Solution cold_solve_locked();
  void extract(Solution& out) const;
  /// Cumulative counters captured before a solve so `record_solve` can emit
  /// per-solve deltas.
  struct Marks {
    long long degenerate, bland, refact, resets, flips, drift;
  };
  Marks mark() const;
  void record_solve(const Solution& out, bool warm, bool fallback,
                    const Marks& before);

  const Model& model_;
  SimplexOptions options_;

  // --- constraint matrix (CSR + column adjacency), append-only ---
  std::vector<int> row_ptr_;            ///< size rows+1
  std::vector<int> row_cols_;           ///< structural column ids, flat
  std::vector<double> row_vals_;
  std::vector<double> row_rhs_;
  std::vector<Relation> row_relation_;
  std::vector<std::vector<ColEntry>> cols_;  ///< per column: (row, coeff)

  // --- columns: structurals then one logical per row ---
  int structural_count_ = 0;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;            ///< phase-2 objective per column
  std::vector<double> x_;               ///< primal value per column
  std::vector<VarState> state_;
  std::vector<double> reduced_;         ///< reduced cost per column
  std::vector<double> weight_;          ///< devex/steepest-edge weight
  std::vector<int> logical_of_row_;

  // --- basis ---
  std::vector<int> basic_;              ///< basis row -> column id
  std::vector<Eta> etas_;
  std::vector<int> eta_rows_;           ///< shared off-pivot entry pool
  std::vector<double> eta_vals_;
  int pivots_since_refactor_ = 0;
  bool factor_stale_ = true;            ///< eta file doesn't cover basic_
  bool values_stale_ = false;           ///< x_B needs recomputation
  bool values_valid_ = false;           ///< x_ has ever been computed
  bool costs_stale_ = false;            ///< cost_ needs reload from model

  bool have_basis_ = false;
  int model_rows_ingested_ = 0;
  int visible_rows_ = -1;               ///< replay horizon; -1 = whole model
  double objective_ = 0.0;              ///< incremental, progress test only

  long long degenerate_pivots_ = 0;
  long long bland_activations_ = 0;
  long long cold_fallbacks_ = 0;
  long long warm_solves_ = 0;
  // Sparse-engine instruments, cumulative (deltas recorded per solve).
  long long refactorizations_ = 0;
  long long devex_resets_ = 0;
  long long bound_flips_ = 0;
  long long drift_events_ = 0;

  // Scratch (reused across iterations): `work_`/`rho_` sized to rows,
  // `row_scratch_` to columns (caches one pivot row of B⁻¹A).
  mutable std::vector<double> work_;
  mutable std::vector<double> rho_;
  mutable std::vector<double> row_scratch_;
};

}  // namespace mrlc::lp
