#include "lp/dense.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace mrlc::lp {

namespace {

/// Primal feasibility tolerance: rhs entries above this (in absolute value)
/// count as infeasible and wake the dual simplex.
constexpr double kFeasibilityTol = 1e-9;
/// Residual rhs violation that disqualifies a warm result (fallback).
constexpr double kWarmAcceptTol = 1e-6;
/// Coefficients below this are treated as exact zeros during elimination.
constexpr double kEliminationTol = 1e-14;

}  // namespace

DenseLpCore::DenseLpCore(const Model& model, SimplexOptions options)
    : model_(model), options_(options) {}

DenseLpCore::DenseLpCore(const Model& model, int visible_rows,
                       SimplexOptions options)
    : model_(model), options_(options), visible_rows_(visible_rows) {
  MRLC_REQUIRE(visible_rows >= 0 && visible_rows <= model.constraint_count(),
               "visible row horizon out of range");
}

int DenseLpCore::visible_row_count() const {
  const int total = model_.constraint_count();
  return visible_rows_ < 0 ? total : std::min(visible_rows_, total);
}

// ---------------------------------------------------------------- build --

void DenseLpCore::build() {
  const int n = model_.variable_count();
  shifted_count_ = n;

  // Shift x = l + y so every structural variable has lower bound 0.
  shift_.assign(static_cast<std::size_t>(n), 0.0);
  for (VarId v = 0; v < n; ++v) {
    shift_[static_cast<std::size_t>(v)] = model_.lower_bound(v);
  }

  // One row of the constraint matrix after normalization to
  //   sum a_j y_j  (relation)  b   with  b >= 0.
  struct NormalizedRow {
    std::vector<double> coeffs;  // dense over shifted structural variables
    Relation relation = Relation::kLessEqual;
    double rhs = 0.0;
    double sign = 1.0;           // -1 when the row was negated for b >= 0
    RowId model_row = -1;        // -1 for synthesized bound rows
  };

  std::vector<NormalizedRow> rows;
  auto add_row = [&](std::vector<double> coeffs, Relation rel, double rhs,
                     RowId model_row) {
    double sign = 1.0;
    if (rhs < 0.0) {
      for (double& c : coeffs) c = -c;
      rhs = -rhs;
      sign = -1.0;
      rel = rel == Relation::kLessEqual    ? Relation::kGreaterEqual
            : rel == Relation::kGreaterEqual ? Relation::kLessEqual
                                             : Relation::kEqual;
    }
    rows.push_back(NormalizedRow{std::move(coeffs), rel, rhs, sign, model_row});
  };

  const int visible = visible_row_count();
  for (RowId r = 0; r < visible; ++r) {
    std::vector<double> coeffs(static_cast<std::size_t>(n), 0.0);
    double rhs = model_.rhs(r);
    for (const Term& t : model_.terms(r)) {
      coeffs[static_cast<std::size_t>(t.var)] += t.coefficient;
      rhs -= t.coefficient * shift_[static_cast<std::size_t>(t.var)];
    }
    add_row(std::move(coeffs), model_.relation(r), rhs, r);
  }
  // Finite upper bounds become explicit rows  y_v <= u_v - l_v.
  for (VarId v = 0; v < n; ++v) {
    const double u = model_.upper_bound(v);
    if (std::isfinite(u)) {
      std::vector<double> coeffs(static_cast<std::size_t>(n), 0.0);
      coeffs[static_cast<std::size_t>(v)] = 1.0;
      add_row(std::move(coeffs), Relation::kLessEqual,
              u - shift_[static_cast<std::size_t>(v)], -1);
    }
  }

  row_count_ = static_cast<int>(rows.size());
  // Column layout: structural | slack/surplus | artificial.  Later warm row
  // additions append their slack columns past `artificial_end_`.
  slack_count_ = 0;
  artificial_count_ = 0;
  for (const auto& row : rows) {
    if (row.relation != Relation::kEqual) ++slack_count_;
    if (row.relation != Relation::kLessEqual) ++artificial_count_;
  }
  column_count_ = shifted_count_ + slack_count_ + artificial_count_;
  stride_ = column_count_ + 32;  // headroom for warm-added cut slacks

  matrix_.assign(static_cast<std::size_t>(row_count_) *
                     static_cast<std::size_t>(stride_),
                 0.0);
  rhs_.assign(static_cast<std::size_t>(row_count_), 0.0);
  basis_.assign(static_cast<std::size_t>(row_count_), -1);
  unit_col_.assign(static_cast<std::size_t>(row_count_), -1);
  row_sign_.assign(static_cast<std::size_t>(row_count_), 1.0);
  norm_rhs_.assign(static_cast<std::size_t>(row_count_), 0.0);
  tableau_row_of_model_row_.assign(
      static_cast<std::size_t>(model_.constraint_count()), -1);
  artificial_start_ = shifted_count_ + slack_count_;
  artificial_end_ = artificial_start_ + artificial_count_;

  int next_slack = shifted_count_;
  int next_artificial = artificial_start_;
  for (int i = 0; i < row_count_; ++i) {
    const NormalizedRow& row = rows[static_cast<std::size_t>(i)];
    for (int j = 0; j < shifted_count_; ++j) {
      at(i, j) = row.coeffs[static_cast<std::size_t>(j)];
    }
    rhs_[static_cast<std::size_t>(i)] = row.rhs;
    norm_rhs_[static_cast<std::size_t>(i)] = row.rhs;
    row_sign_[static_cast<std::size_t>(i)] = row.sign;
    if (row.model_row != -1) {
      tableau_row_of_model_row_[static_cast<std::size_t>(row.model_row)] = i;
    }
    switch (row.relation) {
      case Relation::kLessEqual:
        at(i, next_slack) = 1.0;
        unit_col_[static_cast<std::size_t>(i)] = next_slack;
        basis_[static_cast<std::size_t>(i)] = next_slack++;
        break;
      case Relation::kGreaterEqual:
        at(i, next_slack) = -1.0;
        ++next_slack;
        at(i, next_artificial) = 1.0;
        unit_col_[static_cast<std::size_t>(i)] = next_artificial;
        basis_[static_cast<std::size_t>(i)] = next_artificial++;
        break;
      case Relation::kEqual:
        at(i, next_artificial) = 1.0;
        unit_col_[static_cast<std::size_t>(i)] = next_artificial;
        basis_[static_cast<std::size_t>(i)] = next_artificial++;
        break;
    }
  }
  model_rows_ingested_ = visible;
}

void DenseLpCore::ensure_column_capacity(int columns) {
  if (columns <= stride_) return;
  const int new_stride = std::max(columns, stride_ + stride_ / 2 + 8);
  std::vector<double> grown(static_cast<std::size_t>(row_count_) *
                                static_cast<std::size_t>(new_stride),
                            0.0);
  for (int i = 0; i < row_count_; ++i) {
    std::copy_n(matrix_.begin() + static_cast<std::ptrdiff_t>(i) * stride_,
                column_count_,
                grown.begin() + static_cast<std::ptrdiff_t>(i) * new_stride);
  }
  matrix_ = std::move(grown);
  stride_ = new_stride;
}

int DenseLpCore::append_slack_column() {
  ensure_column_capacity(column_count_ + 1);
  const int col = column_count_++;
  costs_.push_back(0.0);
  reduced_.push_back(0.0);
  return col;
}

// ---------------------------------------------------------------- costs --

void DenseLpCore::load_costs(const std::vector<double>& costs) {
  costs_ = costs;
  reduced_.assign(static_cast<std::size_t>(column_count_), 0.0);
  objective_ = 0.0;
  for (int j = 0; j < column_count_; ++j) {
    reduced_[static_cast<std::size_t>(j)] = costs_[static_cast<std::size_t>(j)];
  }
  for (int i = 0; i < row_count_; ++i) {
    const double cb = costs_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
    if (cb == 0.0) continue;
    for (int j = 0; j < column_count_; ++j) {
      reduced_[static_cast<std::size_t>(j)] -= cb * at(i, j);
    }
    objective_ += cb * rhs_[static_cast<std::size_t>(i)];
  }
}

void DenseLpCore::load_costs_phase1() {
  std::vector<double> costs(static_cast<std::size_t>(column_count_), 0.0);
  for (int j = artificial_start_; j < artificial_end_; ++j) {
    costs[static_cast<std::size_t>(j)] = 1.0;
  }
  phase1_ = true;
  load_costs(costs);
}

void DenseLpCore::load_costs_phase2() {
  std::vector<double> costs(static_cast<std::size_t>(column_count_), 0.0);
  for (VarId v = 0; v < model_.variable_count(); ++v) {
    costs[static_cast<std::size_t>(v)] = model_.objective_coefficient(v);
  }
  phase1_ = false;
  load_costs(costs);
}

// --------------------------------------------------------------- primal --

SolveStatus DenseLpCore::optimize(int* iteration_counter) {
  int since_progress = 0;
  int degenerate_streak = 0;
  bool streak_bland = false;
  bool prev_bland = false;
  double last_objective = objective_;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Budget checkpoint: one unit per pivot, charged serially (this loop is
    // single-threaded) so the interruption point is thread-count invariant.
    if (options_.budget != nullptr && !options_.budget->charge(1)) {
      return SolveStatus::kInterrupted;
    }
    ++*iteration_counter;
    if (!streak_bland && options_.bland_degenerate_streak > 0 &&
        degenerate_streak > options_.bland_degenerate_streak) {
      streak_bland = true;
    }
    const bool bland = since_progress > options_.bland_after || streak_bland;
    if (bland && !prev_bland) ++bland_activations_;
    prev_bland = bland;

    // --- pricing ---
    int entering = -1;
    double best = -options_.cost_tolerance;
    for (int j = 0; j < column_count_; ++j) {
      if (!column_allowed(j)) continue;
      const double rc = reduced_[static_cast<std::size_t>(j)];
      if (rc < best) {
        entering = j;
        if (bland) break;  // Bland: first improving column
        best = rc;
      } else if (bland && rc < -options_.cost_tolerance) {
        entering = j;
        break;
      }
    }
    if (entering == -1) return SolveStatus::kOptimal;

    // --- ratio test ---
    int leaving = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < row_count_; ++i) {
      const double a = at(i, entering);
      if (a <= options_.pivot_tolerance) continue;
      const double ratio = rhs_[static_cast<std::size_t>(i)] / a;
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && leaving != -1 &&
           basis_[static_cast<std::size_t>(i)] <
               basis_[static_cast<std::size_t>(leaving)])) {
        best_ratio = ratio;
        leaving = i;
      }
    }
    if (leaving == -1) return SolveStatus::kUnbounded;

    if (best_ratio <= 1e-12) {
      ++degenerate_pivots_;
      ++degenerate_streak;
    } else {
      degenerate_streak = 0;
      streak_bland = false;
    }
    pivot(leaving, entering);

    if (objective_ < last_objective - 1e-12) {
      last_objective = objective_;
      since_progress = 0;
    } else {
      ++since_progress;
    }
  }
  return SolveStatus::kIterationLimit;
}

// ----------------------------------------------------------------- dual --

SolveStatus DenseLpCore::dual_optimize(int* iteration_counter) {
  // The warm path is only worthwhile when it beats a cold rebuild by a wide
  // margin, so the pivot budget is tight; overruns fall back (counted).
  const int cap = std::min(options_.max_iterations, 100 + 4 * row_count_);
  int degenerate_streak = 0;
  bool streak_bland = false;
  bool prev_bland = false;
  for (int iter = 0; iter < cap; ++iter) {
    if (options_.budget != nullptr && !options_.budget->charge(1)) {
      return SolveStatus::kInterrupted;
    }
    ++*iteration_counter;
    if (!streak_bland && options_.bland_degenerate_streak > 0 &&
        degenerate_streak > options_.bland_degenerate_streak) {
      streak_bland = true;
    }
    if (streak_bland && !prev_bland) ++bland_activations_;
    prev_bland = streak_bland;

    // --- leaving row: most negative rhs (Bland: smallest basis index) ---
    int leaving = -1;
    double most_negative = 0.0;
    for (int i = 0; i < row_count_; ++i) {
      const double b = rhs_[static_cast<std::size_t>(i)];
      if (b >= -kFeasibilityTol) continue;
      if (leaving == -1) {
        leaving = i;
        most_negative = b;
        continue;
      }
      if (streak_bland) {
        if (basis_[static_cast<std::size_t>(i)] <
            basis_[static_cast<std::size_t>(leaving)]) {
          leaving = i;
          most_negative = b;
        }
      } else if (b < most_negative - 1e-12 ||
                 (b < most_negative + 1e-12 &&
                  basis_[static_cast<std::size_t>(i)] <
                      basis_[static_cast<std::size_t>(leaving)])) {
        leaving = i;
        most_negative = b;
      }
    }
    if (leaving == -1) return SolveStatus::kOptimal;  // primal feasible again

    // --- dual ratio test: min reduced_j / -a_rj over a_rj < 0 ------------
    // Ties break toward the smallest column index (ascending scan), which
    // doubles as the entering half of Bland's rule.
    int entering = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int j = 0; j < column_count_; ++j) {
      if (!column_allowed(j)) continue;  // phase 2: artificials stay out
      const double a = at(leaving, j);
      if (a >= -options_.pivot_tolerance) continue;
      const double rc = std::max(reduced_[static_cast<std::size_t>(j)], 0.0);
      const double ratio = rc / (-a);
      if (ratio < best_ratio - 1e-12) {
        best_ratio = ratio;
        entering = j;
      }
    }
    if (entering == -1) {
      // The row proves infeasibility (negative rhs, no negative entry) —
      // modulo rounding, which is why callers re-certify with a cold solve.
      return SolveStatus::kInfeasible;
    }

    if (best_ratio <= 1e-12) {
      ++degenerate_pivots_;
      ++degenerate_streak;
    } else {
      degenerate_streak = 0;
      streak_bland = false;
    }
    pivot(leaving, entering);
  }
  return SolveStatus::kIterationLimit;
}

// ---------------------------------------------------------------- pivot --

void DenseLpCore::pivot(int leaving_row, int entering_col) {
  const double p = at(leaving_row, entering_col);
  // Normalize the pivot row.
  const double inv = 1.0 / p;
  for (int j = 0; j < column_count_; ++j) at(leaving_row, j) *= inv;
  rhs_[static_cast<std::size_t>(leaving_row)] *= inv;
  at(leaving_row, entering_col) = 1.0;  // kill rounding noise

  for (int i = 0; i < row_count_; ++i) {
    if (i == leaving_row) continue;
    const double factor = at(i, entering_col);
    if (std::abs(factor) <= kEliminationTol) continue;
    for (int j = 0; j < column_count_; ++j) {
      at(i, j) -= factor * at(leaving_row, j);
    }
    at(i, entering_col) = 0.0;
    rhs_[static_cast<std::size_t>(i)] -= factor * rhs_[static_cast<std::size_t>(leaving_row)];
    if (rhs_[static_cast<std::size_t>(i)] < 0.0 &&
        rhs_[static_cast<std::size_t>(i)] > -1e-10) {
      rhs_[static_cast<std::size_t>(i)] = 0.0;  // clamp degeneracy noise
    }
  }
  // Update the reduced-cost row the same way.
  const double rc = reduced_[static_cast<std::size_t>(entering_col)];
  if (std::abs(rc) > 0.0) {
    for (int j = 0; j < column_count_; ++j) {
      reduced_[static_cast<std::size_t>(j)] -= rc * at(leaving_row, j);
    }
    reduced_[static_cast<std::size_t>(entering_col)] = 0.0;
    objective_ += rc * rhs_[static_cast<std::size_t>(leaving_row)];
  }
  basis_[static_cast<std::size_t>(leaving_row)] = entering_col;
}

/// After phase 1, pivots basic artificials out (or detects their rows as
/// redundant, in which case the row stays with a zero-valued artificial —
/// phase 2 forbids it from moving, which keeps the row inert).
void DenseLpCore::drive_out_artificials() {
  for (int i = 0; i < row_count_; ++i) {
    const int b = basis_[static_cast<std::size_t>(i)];
    if (!is_artificial(b)) continue;
    // Basic artificial at value ~0 (phase 1 succeeded).  Pivot on any
    // usable non-artificial column in this row.
    for (int j = 0; j < artificial_start_; ++j) {
      if (std::abs(at(i, j)) > 1e-7) {
        pivot(i, j);
        break;
      }
    }
  }
}

// -------------------------------------------------------------- extract --

void DenseLpCore::extract(Solution& out) const {
  const int n = model_.variable_count();
  out.values.assign(static_cast<std::size_t>(n), 0.0);
  out.is_basic.assign(static_cast<std::size_t>(n), false);
  for (VarId v = 0; v < n; ++v) {
    out.values[static_cast<std::size_t>(v)] = shift_[static_cast<std::size_t>(v)];
  }
  for (int i = 0; i < row_count_; ++i) {
    const int b = basis_[static_cast<std::size_t>(i)];
    if (b < shifted_count_) {
      out.values[static_cast<std::size_t>(b)] =
          shift_[static_cast<std::size_t>(b)] + rhs_[static_cast<std::size_t>(i)];
      out.is_basic[static_cast<std::size_t>(b)] = true;
    }
  }
  out.objective = model_.evaluate_objective(out.values);
}

// -------------------------------------------------------------- metrics --

BasisSnapshot DenseLpCore::basis_snapshot() const {
  BasisSnapshot out;
  if (!have_basis_) return out;
  out.basic = basis_;
  out.basic_values = rhs_;
  return out;
}

void DenseLpCore::record_solve(const Solution& out, bool warm, bool fallback,
                              long long degenerate_before,
                              long long bland_before) {
  if (!options_.record_metrics) return;
  static metrics::Counter& solves = metrics::counter("simplex.solves");
  static metrics::Counter& pivots = metrics::counter("simplex.pivots");
  static metrics::Counter& degenerate =
      metrics::counter("simplex.degenerate_pivots");
  static metrics::Histogram& per_solve =
      metrics::histogram("simplex.pivots_per_solve");
  static metrics::Counter& warm_solves = metrics::counter("simplex.warm_solves");
  static metrics::Counter& warm_pivots = metrics::counter("simplex.warm_pivots");
  static metrics::Counter& fallbacks = metrics::counter("simplex.cold_fallbacks");
  static metrics::Counter& bland = metrics::counter("simplex.bland_activations");
  solves.add();
  pivots.add(out.iterations);
  degenerate.add(degenerate_pivots_ - degenerate_before);
  per_solve.record(out.iterations);
  if (warm) {
    warm_solves.add();
    warm_pivots.add(out.iterations);
  }
  if (fallback) fallbacks.add();
  if (bland_activations_ > bland_before) {
    bland.add(bland_activations_ - bland_before);
  }
}

// ---------------------------------------------------------------- edits --

bool DenseLpCore::ingest_row(RowId row) {
  const Relation relation = model_.relation(row);
  if (relation == Relation::kEqual) {
    // Equality rows need an artificial basic column, i.e. a Phase-1 pass;
    // invalidate the basis so the next solve is cold.
    return false;
  }
  const double sign = relation == Relation::kGreaterEqual ? -1.0 : 1.0;

  // Normalize to <= with the structural shift applied (no b >= 0
  // normalization: the dual simplex tolerates negative rhs, that is its
  // whole point).
  std::vector<double> row_buf(static_cast<std::size_t>(stride_), 0.0);
  double rhs = model_.rhs(row);
  for (const Term& t : model_.terms(row)) {
    row_buf[static_cast<std::size_t>(t.var)] += t.coefficient;
    rhs -= t.coefficient * shift_[static_cast<std::size_t>(t.var)];
  }
  if (sign < 0.0) {
    for (int j = 0; j < shifted_count_; ++j) {
      row_buf[static_cast<std::size_t>(j)] = -row_buf[static_cast<std::size_t>(j)];
    }
    rhs = -rhs;
  }
  const double normalized_rhs = rhs;

  const int slack = append_slack_column();
  if (static_cast<int>(row_buf.size()) < stride_) {
    row_buf.resize(static_cast<std::size_t>(stride_), 0.0);
  }
  row_buf[static_cast<std::size_t>(slack)] = 1.0;

  // Express the row in the current basis: eliminate every basic column.
  // Existing rows have zeros in each other's basic columns, so one pass in
  // row order suffices.
  for (int i = 0; i < row_count_; ++i) {
    const int b = basis_[static_cast<std::size_t>(i)];
    const double factor = row_buf[static_cast<std::size_t>(b)];
    if (std::abs(factor) <= kEliminationTol) continue;
    for (int j = 0; j < column_count_; ++j) {
      row_buf[static_cast<std::size_t>(j)] -= factor * at(i, j);
    }
    row_buf[static_cast<std::size_t>(b)] = 0.0;  // kill rounding noise
    rhs -= factor * rhs_[static_cast<std::size_t>(i)];
  }

  // Append as a new tableau row with the fresh slack basic.  The slack has
  // zero cost, so the reduced-cost row and the objective are unchanged.
  matrix_.resize(static_cast<std::size_t>(row_count_ + 1) *
                     static_cast<std::size_t>(stride_),
                 0.0);
  std::copy_n(row_buf.begin(), column_count_,
              matrix_.begin() + static_cast<std::ptrdiff_t>(row_count_) * stride_);
  rhs_.push_back(rhs);
  basis_.push_back(slack);
  unit_col_.push_back(slack);
  row_sign_.push_back(sign);
  norm_rhs_.push_back(normalized_rhs);
  tableau_row_of_model_row_[static_cast<std::size_t>(row)] = row_count_;
  ++row_count_;
  return true;
}

int DenseLpCore::sync_new_rows() {
  visible_rows_ = -1;
  return sync_visible();
}

int DenseLpCore::sync_new_rows(int up_to_rows) {
  MRLC_REQUIRE(up_to_rows >= model_rows_ingested_ &&
                   up_to_rows <= model_.constraint_count(),
               "row horizon must not retreat below ingested rows");
  visible_rows_ = up_to_rows;
  return sync_visible();
}

int DenseLpCore::sync_visible() {
  const int total = visible_row_count();
  const int fresh = total - model_rows_ingested_;
  if (fresh <= 0) return 0;
  if (!have_basis_) {
    // No factorized basis to patch; the next cold solve reads the model.
    model_rows_ingested_ = total;
    return fresh;
  }
  // The mapping vector must cover every model row before ingestion.
  if (static_cast<int>(tableau_row_of_model_row_.size()) < total) {
    tableau_row_of_model_row_.resize(static_cast<std::size_t>(total), -1);
  }
  for (RowId r = model_rows_ingested_; r < total; ++r) {
    if (!ingest_row(r)) {
      have_basis_ = false;
      break;
    }
  }
  model_rows_ingested_ = total;
  return fresh;
}

void DenseLpCore::update_rhs(RowId row) {
  MRLC_REQUIRE(row >= 0 && row < model_.constraint_count(), "row out of range");
  if (!have_basis_) return;  // next cold solve reads the model
  MRLC_REQUIRE(row < model_rows_ingested_, "sync_new_rows before update_rhs");
  const int tr = tableau_row_of_model_row_[static_cast<std::size_t>(row)];
  MRLC_ENSURE(tr != -1, "ingested model row must have a tableau row");

  // Recompute the normalized rhs, diff against the stored value, and push
  // the delta through B^{-1}:  rhs_ = B^{-1} b, so
  //   new rhs_ = rhs_ + (b_new - b_old) * B^{-1} e_tr,
  // where B^{-1} e_tr is exactly the current contents of the row's original
  // unit column (slack/artificial) that the tableau still carries.
  double rhs = model_.rhs(row);
  for (const Term& t : model_.terms(row)) {
    rhs -= t.coefficient * shift_[static_cast<std::size_t>(t.var)];
  }
  rhs *= row_sign_[static_cast<std::size_t>(tr)];

  const double delta = rhs - norm_rhs_[static_cast<std::size_t>(tr)];
  if (delta == 0.0) return;
  norm_rhs_[static_cast<std::size_t>(tr)] = rhs;
  const int unit = unit_col_[static_cast<std::size_t>(tr)];
  for (int i = 0; i < row_count_; ++i) {
    rhs_[static_cast<std::size_t>(i)] += delta * at(i, unit);
  }
  // Objective tracks c_B' B^{-1} b:  delta * c_B' B^{-1} e_tr, where
  // c_B' B^{-1} e_tr = cost(unit) - reduced(unit).
  objective_ += delta * (costs_[static_cast<std::size_t>(unit)] -
                         reduced_[static_cast<std::size_t>(unit)]);
}

void DenseLpCore::update_objective(VarId v) {
  MRLC_REQUIRE(v >= 0 && v < model_.variable_count(), "variable out of range");
  if (!have_basis_) return;  // next cold solve reads the model
  const double target = model_.objective_coefficient(v);
  const double delta = target - costs_[static_cast<std::size_t>(v)];
  if (delta == 0.0) return;
  costs_[static_cast<std::size_t>(v)] = target;
  int basic_row = -1;
  for (int i = 0; i < row_count_; ++i) {
    if (basis_[static_cast<std::size_t>(i)] == v) {
      basic_row = i;
      break;
    }
  }
  if (basic_row == -1) {
    reduced_[static_cast<std::size_t>(v)] += delta;
    return;
  }
  for (int j = 0; j < column_count_; ++j) {
    reduced_[static_cast<std::size_t>(j)] -= delta * at(basic_row, j);
  }
  reduced_[static_cast<std::size_t>(v)] = 0.0;
  objective_ += delta * rhs_[static_cast<std::size_t>(basic_row)];
}

// --------------------------------------------------------------- solves --

Solution DenseLpCore::solve() {
  if (model_.variable_count() == 0) {
    // Empty model: feasible iff every row is satisfied by the empty point.
    Solution out;
    bool ok = true;
    const int visible = visible_row_count();
    for (RowId r = 0; r < visible; ++r) {
      const double rhs = model_.rhs(r);
      switch (model_.relation(r)) {
        case Relation::kLessEqual: ok = ok && rhs >= -1e-9; break;
        case Relation::kGreaterEqual: ok = ok && rhs <= 1e-9; break;
        case Relation::kEqual: ok = ok && std::abs(rhs) <= 1e-9; break;
      }
    }
    out.status = ok ? SolveStatus::kOptimal : SolveStatus::kInfeasible;
    have_basis_ = false;
    model_rows_ingested_ = visible;
    return out;
  }
  trace::ScopedPhase phase("simplex");
  const long long degenerate_before = degenerate_pivots_;
  const long long bland_before = bland_activations_;
  Solution out = cold_solve_locked();
  record_solve(out, /*warm=*/false, /*fallback=*/false, degenerate_before,
               bland_before);
  return out;
}

Solution DenseLpCore::cold_solve_locked() {
  build();
  have_basis_ = false;
  Solution out;
  // ---- Phase 1: minimize the sum of artificials. ----------------------
  if (artificial_count_ > 0) {
    load_costs_phase1();
    const SolveStatus s1 = optimize(&out.iterations);
    if (s1 == SolveStatus::kIterationLimit || s1 == SolveStatus::kInterrupted) {
      out.status = s1;
      return out;
    }
    // Phase 1 is bounded below by zero, so kUnbounded cannot happen.
    if (phase_objective() > 1e-6) {
      out.status = SolveStatus::kInfeasible;
      return out;
    }
    drive_out_artificials();
  }
  // ---- Phase 2: the real objective over structural + slack columns. ---
  load_costs_phase2();
  const SolveStatus s2 = optimize(&out.iterations);
  out.status = s2;
  if (s2 != SolveStatus::kOptimal) return out;

  extract(out);
  have_basis_ = true;
  return out;
}

Solution DenseLpCore::resolve() {
  if (model_.variable_count() == 0 || !have_basis_ ||
      model_rows_ingested_ != visible_row_count()) {
    return solve();
  }
  trace::ScopedPhase phase("simplex");
  const long long degenerate_before = degenerate_pivots_;
  const long long bland_before = bland_activations_;
  Solution out;
  out.warm_started = true;
  phase1_ = false;

  bool trouble = false;
  const SolveStatus dual = dual_optimize(&out.iterations);
  if (dual == SolveStatus::kInterrupted) {
    // Budget ran out mid-reoptimization: the tableau is mid-pivot-sequence
    // (a valid basis, but neither primal feasible nor certified), so the
    // retained state is abandoned rather than trusted or re-solved.
    out.status = SolveStatus::kInterrupted;
    have_basis_ = false;
    record_solve(out, /*warm=*/false, /*fallback=*/false, degenerate_before,
                 bland_before);
    return out;
  }
  if (dual == SolveStatus::kOptimal) {
    const SolveStatus primal = optimize(&out.iterations);
    if (primal == SolveStatus::kInterrupted) {
      out.status = SolveStatus::kInterrupted;
      have_basis_ = false;
      record_solve(out, /*warm=*/false, /*fallback=*/false, degenerate_before,
                   bland_before);
      return out;
    }
    if (primal == SolveStatus::kUnbounded) {
      // A genuinely unbounded direction is certified by the tableau itself;
      // a cold re-solve could only rediscover it.
      out.status = SolveStatus::kUnbounded;
      have_basis_ = false;
      ++warm_solves_;
      record_solve(out, /*warm=*/true, /*fallback=*/false, degenerate_before,
                   bland_before);
      return out;
    }
    if (primal == SolveStatus::kOptimal) {
      bool feasible = true;
      for (int i = 0; i < row_count_; ++i) {
        if (rhs_[static_cast<std::size_t>(i)] < -kWarmAcceptTol) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        out.status = SolveStatus::kOptimal;
        extract(out);
        ++warm_solves_;
        record_solve(out, /*warm=*/true, /*fallback=*/false, degenerate_before,
                     bland_before);
        return out;
      }
    }
    trouble = true;
  } else {
    // kIterationLimit: pivot budget blown.  kInfeasible: an infeasible row
    // surfaced — plausible (cuts can expose genuine infeasibility) but the
    // verdict matters too much to trust floating-point residuals, so the
    // cold path re-certifies it either way.
    trouble = true;
  }
  MRLC_ENSURE(trouble, "unreachable: all warm outcomes handled above");

  ++cold_fallbacks_;
  Solution cold = cold_solve_locked();
  cold.iterations += out.iterations;  // the wasted warm pivots still count
  record_solve(cold, /*warm=*/false, /*fallback=*/true, degenerate_before,
               bland_before);
  return cold;
}

}  // namespace mrlc::lp
