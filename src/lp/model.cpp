#include "lp/model.hpp"

#include <cmath>

namespace mrlc::lp {

VarId Model::add_variable(double objective_coefficient, double lower, double upper,
                          std::string name) {
  MRLC_REQUIRE(std::isfinite(lower), "lower bound must be finite");
  MRLC_REQUIRE(lower <= upper, "variable bounds must be ordered");
  const auto id = static_cast<VarId>(vars_.size());
  vars_.push_back(Variable{objective_coefficient, lower, upper, std::move(name)});
  return id;
}

RowId Model::add_constraint(Relation relation, double rhs, std::string name) {
  MRLC_REQUIRE(std::isfinite(rhs), "constraint rhs must be finite");
  const auto id = static_cast<RowId>(rows_.size());
  rows_.push_back(Row{relation, rhs, {}, std::move(name)});
  return id;
}

RowId Model::add_row(Relation relation, double rhs, const std::vector<Term>& terms,
                     std::string name) {
  const RowId id = add_constraint(relation, rhs, std::move(name));
  for (const Term& t : terms) add_term(id, t.var, t.coefficient);
  return id;
}

void Model::add_term(RowId row, VarId var, double coefficient) {
  MRLC_REQUIRE(row >= 0 && row < constraint_count(), "row id out of range");
  MRLC_REQUIRE(var >= 0 && var < variable_count(), "variable id out of range");
  MRLC_REQUIRE(std::isfinite(coefficient), "coefficient must be finite");
  rows_[static_cast<std::size_t>(row)].terms.push_back(Term{var, coefficient});
}

void Model::set_objective_coefficient(VarId v, double coefficient) {
  MRLC_REQUIRE(v >= 0 && v < variable_count(), "variable id out of range");
  MRLC_REQUIRE(std::isfinite(coefficient), "coefficient must be finite");
  vars_[static_cast<std::size_t>(v)].objective = coefficient;
}

void Model::set_rhs(RowId r, double rhs) {
  MRLC_REQUIRE(r >= 0 && r < constraint_count(), "row id out of range");
  MRLC_REQUIRE(std::isfinite(rhs), "constraint rhs must be finite");
  rows_[static_cast<std::size_t>(r)].rhs = rhs;
}

double Model::evaluate_row(RowId r, const std::vector<double>& x) const {
  MRLC_REQUIRE(static_cast<int>(x.size()) == variable_count(),
               "candidate point has wrong dimension");
  double lhs = 0.0;
  for (const Term& t : row_at(r).terms) {
    lhs += t.coefficient * x[static_cast<std::size_t>(t.var)];
  }
  return lhs;
}

double Model::evaluate_objective(const std::vector<double>& x) const {
  MRLC_REQUIRE(static_cast<int>(x.size()) == variable_count(),
               "candidate point has wrong dimension");
  double obj = 0.0;
  for (VarId v = 0; v < variable_count(); ++v) {
    obj += vars_[static_cast<std::size_t>(v)].objective * x[static_cast<std::size_t>(v)];
  }
  return obj;
}

bool Model::is_feasible(const std::vector<double>& x, double tolerance) const {
  if (static_cast<int>(x.size()) != variable_count()) return false;
  for (VarId v = 0; v < variable_count(); ++v) {
    const auto& var = vars_[static_cast<std::size_t>(v)];
    const double value = x[static_cast<std::size_t>(v)];
    if (value < var.lower - tolerance || value > var.upper + tolerance) return false;
  }
  for (RowId r = 0; r < constraint_count(); ++r) {
    const double lhs = evaluate_row(r, x);
    const auto& row = rows_[static_cast<std::size_t>(r)];
    switch (row.relation) {
      case Relation::kLessEqual:
        if (lhs > row.rhs + tolerance) return false;
        break;
      case Relation::kGreaterEqual:
        if (lhs < row.rhs - tolerance) return false;
        break;
      case Relation::kEqual:
        if (std::abs(lhs - row.rhs) > tolerance) return false;
        break;
    }
  }
  return true;
}

}  // namespace mrlc::lp
