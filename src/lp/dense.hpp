#pragma once

/// \file dense.hpp
/// \brief Dense two-phase tableau engine — the historical LP core, kept as
/// the cross-check oracle.
///
/// This is the pre-sparse implementation of `lp::LpInstance`, moved here
/// verbatim (pivot-for-pivot) when the sparse revised simplex (sparse.hpp)
/// became the default engine.  It remains reachable two ways: explicitly
/// via `SimplexOptions::engine = Engine::kDense`, and implicitly as the
/// shadow oracle behind `SimplexOptions::cross_check`, where every sparse
/// solve is re-run on this tableau and the objectives are asserted equal.
///
/// `DenseLpCore` keeps the factorized basis (the tableau in
/// current-basis form, i.e. B⁻¹A alongside B⁻¹b and the reduced-cost row)
/// alive across calls and supports three incremental edits:
///
///  * `sync_new_rows` / row addition: a row appended to the attached `Model`
///    is expressed in the current basis (one elimination pass), given a
///    fresh slack column as its basic variable, and typically leaves the
///    basis primal-infeasible (the cut it encodes was violated) but *dual*
///    feasible — exactly the precondition of the dual simplex;
///  * `update_rhs`: a changed right-hand side is propagated through B⁻¹
///    (read off the row's original unit column, which the tableau still
///    carries) without refactorization;
///  * `update_objective`: a changed cost updates the reduced-cost row in
///    O(columns) (plus a primal reoptimization if optimality is lost).
///
/// `resolve` then reoptimizes from the previous optimal basis: a dual
/// simplex phase restores primal feasibility in a handful of pivots, and a
/// primal cleanup phase re-certifies optimality.  Any numerical trouble
/// (pivot-budget overrun, a residual infeasibility, an apparent infeasible
/// row) abandons the warm state and falls back to the cold two-phase path —
/// counted in `simplex.cold_fallbacks`, never a wrong answer.
///
/// The cold path (`solve`) is pivot-for-pivot identical to the historical
/// `SimplexSolver` implementation, so forcing `warm_start = false` in the
/// callers reproduces the pre-warm-start trajectories exactly.

#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace mrlc::lp {

class DenseLpCore {
 public:
  /// Attaches to `model`.  The model is the single source of truth: rows
  /// appended to it are ingested with `sync_new_rows`, and the cold
  /// (re)build path reads the full model, so instance and model can never
  /// disagree about the LP being solved.  `model` must outlive the
  /// instance; variables must not be added after attachment.
  explicit DenseLpCore(const Model& model, SimplexOptions options = {});

  /// Bounded attachment for trajectory replay (fault recovery): the cold
  /// build only reads the first `visible_rows` model rows, and later rows
  /// become visible through the bounded `sync_new_rows(int)` overload.
  /// Replaying a recorded solve/sync trajectory on such an instance
  /// reconstructs the exact basis the original instance held — including
  /// on degenerate LPs with multiple optimal vertices, where a plain cold
  /// re-solve over the full model may land elsewhere.
  DenseLpCore(const Model& model, int visible_rows, SimplexOptions options);

  /// Cold two-phase solve: rebuilds the tableau from the model (including
  /// every row appended so far) and runs Phase 1 + Phase 2 from scratch.
  /// On success the final basis is retained for later `resolve` calls.
  Solution solve();

  /// Warm reoptimization from the previous optimal basis: dual simplex
  /// until primal feasible, then primal simplex until optimal.  Falls back
  /// to `solve()` when no basis is available or on numerical trouble (see
  /// file comment); the fallback is observable via `cold_fallbacks()` and
  /// `Solution::warm_started == false`.
  Solution resolve();

  /// Ingests rows appended to the model since the last sync (or build).
  /// Non-equality rows are added incrementally in the current basis;
  /// equality rows (which need an artificial column) invalidate the basis
  /// so the next solve is cold.  \return number of rows ingested.
  /// The parameterless form lifts any replay horizon and ingests every
  /// model row; the bounded form raises the horizon to exactly
  /// `up_to_rows` (which must not retreat below the rows already
  /// ingested) — the replay primitive.
  int sync_new_rows();
  int sync_new_rows(int up_to_rows);

  /// Propagates `model.rhs(row)` after a `Model::set_rhs` edit.  The basis
  /// is kept; call `resolve()` to restore feasibility/optimality.
  void update_rhs(RowId row);

  /// Propagates `model.objective_coefficient(v)` after a
  /// `Model::set_objective_coefficient` edit.  The basis is kept; call
  /// `resolve()` to restore optimality.
  void update_objective(VarId v);

  /// True when a retained optimal basis makes the next `resolve` warm.
  bool has_basis() const noexcept { return have_basis_; }

  /// \brief Bit-exact image of the retained basis (tableau basis columns
  /// and their B⁻¹b values) for the fault-replay tests.
  /// \return empty snapshot when no basis is retained.
  BasisSnapshot basis_snapshot() const;

  long long cold_fallbacks() const noexcept { return cold_fallbacks_; }
  long long warm_solves() const noexcept { return warm_solves_; }
  long long degenerate_pivots() const noexcept { return degenerate_pivots_; }
  long long bland_activations() const noexcept { return bland_activations_; }

 private:
  Solution cold_solve_locked();
  bool ingest_row(RowId row);
  int sync_visible();
  int visible_row_count() const;

  void build();
  void ensure_column_capacity(int columns);
  int append_slack_column();

  double& at(int row, int col) {
    return matrix_[static_cast<std::size_t>(row) * static_cast<std::size_t>(stride_) +
                   static_cast<std::size_t>(col)];
  }
  double at(int row, int col) const {
    return matrix_[static_cast<std::size_t>(row) * static_cast<std::size_t>(stride_) +
                   static_cast<std::size_t>(col)];
  }

  void load_costs(const std::vector<double>& costs);
  void load_costs_phase1();
  void load_costs_phase2();
  double phase_objective() const { return objective_; }
  bool is_artificial(int j) const {
    return j >= artificial_start_ && j < artificial_end_;
  }
  bool column_allowed(int j) const { return phase1_ || !is_artificial(j); }

  SolveStatus optimize(int* iteration_counter);
  SolveStatus dual_optimize(int* iteration_counter);
  void pivot(int leaving_row, int entering_col);
  void drive_out_artificials();
  void extract(Solution& out) const;
  void record_solve(const Solution& out, bool warm, bool fallback,
                    long long degenerate_before, long long bland_before);

  const Model& model_;
  SimplexOptions options_;

  int shifted_count_ = 0;
  int slack_count_ = 0;
  int artificial_count_ = 0;
  int artificial_start_ = 0;
  int artificial_end_ = 0;
  int row_count_ = 0;
  int column_count_ = 0;
  int stride_ = 0;                  ///< column capacity of each matrix row
  bool phase1_ = false;
  bool have_basis_ = false;
  int model_rows_ingested_ = 0;     ///< model rows reflected in the tableau
  int visible_rows_ = -1;           ///< replay horizon; -1 = whole model

  long long degenerate_pivots_ = 0;   ///< cumulative, all solves
  long long bland_activations_ = 0;   ///< cumulative Bland switchovers
  long long cold_fallbacks_ = 0;
  long long warm_solves_ = 0;

  std::vector<double> shift_;
  std::vector<double> matrix_;
  std::vector<double> rhs_;
  std::vector<int> basis_;
  std::vector<double> costs_;
  std::vector<double> reduced_;
  /// Per tableau row: the column that held its +1 unit entry at build time
  /// (slack for <=, artificial for >= and =) — i.e. the column whose
  /// current contents are B⁻¹·e_row, used to propagate rhs edits.
  std::vector<int> unit_col_;
  /// Per tableau row: +1/-1 sign applied during rhs>=0 normalization.
  std::vector<double> row_sign_;
  /// Per tableau row: normalized rhs as built/ingested (pre-B⁻¹), diffed
  /// against the model by `update_rhs` to derive the delta to propagate.
  std::vector<double> norm_rhs_;
  /// Model row -> tableau row (rows can interleave with bound rows).
  std::vector<int> tableau_row_of_model_row_;
  double objective_ = 0.0;
};

}  // namespace mrlc::lp
