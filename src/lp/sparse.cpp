#include "lp/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace mrlc::lp {

namespace {

/// Primal feasibility tolerance: a basic variable this far outside its
/// bounds counts as infeasible (wakes Phase 1 / the dual simplex).
constexpr double kFeasibilityTol = 1e-9;
/// Residual bound violation that disqualifies a warm result (fallback).
constexpr double kWarmAcceptTol = 1e-6;
/// Total Phase-1 infeasibility below this is "feasible".
constexpr double kPhase1Tol = 1e-7;
/// Eta entries below this are dropped (treated as exact zeros).
constexpr double kDropTol = 1e-14;
/// Reinversion pivots smaller than this mean a singular basis.
constexpr double kSingularTol = 1e-11;
/// Devex weights above this trigger a reference-framework reset.
constexpr double kDevexResetThreshold = 1e7;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

SparseLpCore::SparseLpCore(const Model& model, SimplexOptions options)
    : model_(model), options_(options) {}

SparseLpCore::SparseLpCore(const Model& model, int visible_rows,
                           SimplexOptions options)
    : model_(model), options_(options) {
  MRLC_REQUIRE(visible_rows >= 0 && visible_rows <= model.constraint_count(),
               "visible row horizon out of range");
  visible_rows_ = visible_rows;
}

int SparseLpCore::visible_row_count() const {
  return visible_rows_ < 0 ? model_.constraint_count() : visible_rows_;
}

// -------------------------------------------------------------- storage --

void SparseLpCore::append_row_storage(RowId row) {
  const int r = static_cast<int>(row_ptr_.size()) - 1;
  const Relation relation = model_.relation(row);
  for (const Term& t : model_.terms(row)) {
    row_cols_.push_back(t.var);
    row_vals_.push_back(t.coefficient);
    cols_[static_cast<std::size_t>(t.var)].push_back({r, t.coefficient});
  }
  row_ptr_.push_back(static_cast<int>(row_cols_.size()));
  row_rhs_.push_back(model_.rhs(row));
  row_relation_.push_back(relation);

  // Logical column: slack (+1, [0,inf)) for <=, surplus (-1, [0,inf)) for
  // >=, and a fixed [0,0] slack for equality rows (no artificials: Phase 1
  // minimizes bound violations directly, so a fixed logical suffices).
  const int lcol = static_cast<int>(lower_.size());
  const double coeff = relation == Relation::kGreaterEqual ? -1.0 : 1.0;
  cols_.push_back({{r, coeff}});
  lower_.push_back(0.0);
  upper_.push_back(relation == Relation::kEqual ? 0.0 : kInf);
  cost_.push_back(0.0);
  x_.push_back(0.0);
  state_.push_back(VarState::kAtLower);
  reduced_.push_back(0.0);
  weight_.push_back(1.0);
  logical_of_row_.push_back(lcol);
}

void SparseLpCore::build() {
  const int n = model_.variable_count();
  structural_count_ = n;
  row_ptr_.assign(1, 0);
  row_cols_.clear();
  row_vals_.clear();
  row_rhs_.clear();
  row_relation_.clear();
  cols_.assign(static_cast<std::size_t>(n), {});
  lower_.resize(static_cast<std::size_t>(n));
  upper_.resize(static_cast<std::size_t>(n));
  cost_.resize(static_cast<std::size_t>(n));
  x_.resize(static_cast<std::size_t>(n));
  state_.resize(static_cast<std::size_t>(n));
  reduced_.assign(static_cast<std::size_t>(n), 0.0);
  weight_.assign(static_cast<std::size_t>(n), 1.0);
  logical_of_row_.clear();
  for (VarId v = 0; v < n; ++v) {
    const double lo = model_.lower_bound(v);
    const double hi = model_.upper_bound(v);
    MRLC_REQUIRE(lo > -kInf, "variables need a finite lower bound");
    lower_[static_cast<std::size_t>(v)] = lo;
    upper_[static_cast<std::size_t>(v)] = hi;
    cost_[static_cast<std::size_t>(v)] = model_.objective_coefficient(v);
    x_[static_cast<std::size_t>(v)] = lo;
    state_[static_cast<std::size_t>(v)] = VarState::kAtLower;
  }

  const int visible = visible_row_count();
  basic_.clear();
  for (RowId r = 0; r < visible; ++r) {
    append_row_storage(r);
    const int lcol = logical_of_row_.back();
    state_[static_cast<std::size_t>(lcol)] = VarState::kBasic;
    basic_.push_back(lcol);
  }
  model_rows_ingested_ = visible;

  etas_.clear();
  eta_rows_.clear();
  eta_vals_.clear();
  pivots_since_refactor_ = 0;
  factor_stale_ = true;
  values_stale_ = false;
  values_valid_ = false;
  costs_stale_ = false;
  objective_ = 0.0;
}

void SparseLpCore::load_phase2_costs() {
  const std::size_t total = cost_.size();
  for (VarId v = 0; v < structural_count_; ++v) {
    cost_[static_cast<std::size_t>(v)] = model_.objective_coefficient(v);
  }
  for (std::size_t j = static_cast<std::size_t>(structural_count_); j < total;
       ++j) {
    cost_[j] = 0.0;
  }
}

// -------------------------------------------------------- factorization --

void SparseLpCore::ftran(std::vector<double>& v) const {
  for (const Eta& e : etas_) {
    const double piv = v[static_cast<std::size_t>(e.pivot_row)];
    if (piv == 0.0) continue;
    const double t = piv / e.pivot_val;
    v[static_cast<std::size_t>(e.pivot_row)] = t;
    for (int k = e.entry_start; k < e.entry_end; ++k) {
      v[static_cast<std::size_t>(eta_rows_[static_cast<std::size_t>(k)])] -=
          eta_vals_[static_cast<std::size_t>(k)] * t;
    }
  }
}

void SparseLpCore::btran(std::vector<double>& v) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double s = v[static_cast<std::size_t>(it->pivot_row)];
    for (int k = it->entry_start; k < it->entry_end; ++k) {
      s -= eta_vals_[static_cast<std::size_t>(k)] *
           v[static_cast<std::size_t>(eta_rows_[static_cast<std::size_t>(k)])];
    }
    v[static_cast<std::size_t>(it->pivot_row)] = s / it->pivot_val;
  }
}

void SparseLpCore::scatter_column(int col, std::vector<double>& v) const {
  const int rows = static_cast<int>(basic_.size());
  v.assign(static_cast<std::size_t>(rows), 0.0);
  for (const ColEntry& e : cols_[static_cast<std::size_t>(col)]) {
    v[static_cast<std::size_t>(e.row)] += e.val;
  }
}

double SparseLpCore::row_dot(int col, const std::vector<double>& rho) const {
  double s = 0.0;
  for (const ColEntry& e : cols_[static_cast<std::size_t>(col)]) {
    s += e.val * rho[static_cast<std::size_t>(e.row)];
  }
  return s;
}

void SparseLpCore::append_eta(int pivot_row, const std::vector<double>& alpha) {
  Eta e;
  e.pivot_row = pivot_row;
  e.pivot_val = alpha[static_cast<std::size_t>(pivot_row)];
  e.entry_start = static_cast<int>(eta_rows_.size());
  const int rows = static_cast<int>(alpha.size());
  for (int i = 0; i < rows; ++i) {
    if (i == pivot_row) continue;
    const double a = alpha[static_cast<std::size_t>(i)];
    if (std::abs(a) <= kDropTol) continue;
    eta_rows_.push_back(i);
    eta_vals_.push_back(a);
  }
  e.entry_end = static_cast<int>(eta_rows_.size());
  etas_.push_back(e);
}

bool SparseLpCore::reinvert() {
  const int rows = static_cast<int>(basic_.size());
  etas_.clear();
  eta_rows_.clear();
  eta_vals_.clear();
  // Gauss–Jordan product-form reinversion: place the basic columns one by
  // one, each time pivoting on the largest remaining entry (ties to the
  // smallest row) — deterministic, so replayed trajectories refactor
  // identically.
  std::vector<char> pivoted(static_cast<std::size_t>(rows), 0);
  std::vector<int> placed(basic_);
  for (int k = 0; k < rows; ++k) {
    scatter_column(basic_[static_cast<std::size_t>(k)], work_);
    ftran(work_);
    int r = -1;
    double best = kSingularTol;
    for (int i = 0; i < rows; ++i) {
      if (pivoted[static_cast<std::size_t>(i)]) continue;
      const double a = std::abs(work_[static_cast<std::size_t>(i)]);
      if (a > best) {
        best = a;
        r = i;
      }
    }
    if (r == -1) return false;  // singular basis
    append_eta(r, work_);
    pivoted[static_cast<std::size_t>(r)] = 1;
    placed[static_cast<std::size_t>(r)] = basic_[static_cast<std::size_t>(k)];
  }
  basic_.swap(placed);
  ++refactorizations_;
  pivots_since_refactor_ = 0;
  factor_stale_ = false;
  return true;
}

void SparseLpCore::compute_basic_values() {
  const int rows = static_cast<int>(basic_.size());
  const int cols = static_cast<int>(lower_.size());
  const bool audit = values_valid_ && !values_stale_;
  work_.assign(static_cast<std::size_t>(rows), 0.0);
  for (int i = 0; i < rows; ++i) {
    work_[static_cast<std::size_t>(i)] = row_rhs_[static_cast<std::size_t>(i)];
  }
  for (int j = 0; j < cols; ++j) {
    if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
    const double xv = x_[static_cast<std::size_t>(j)];
    if (xv == 0.0) continue;
    for (const ColEntry& e : cols_[static_cast<std::size_t>(j)]) {
      work_[static_cast<std::size_t>(e.row)] -= e.val * xv;
    }
  }
  ftran(work_);
  if (audit) {
    double drift = 0.0;
    for (int i = 0; i < rows; ++i) {
      drift = std::max(
          drift, std::abs(work_[static_cast<std::size_t>(i)] -
                          x_[static_cast<std::size_t>(
                              basic_[static_cast<std::size_t>(i)])]));
    }
    if (drift > options_.drift_tolerance) ++drift_events_;
  }
  for (int i = 0; i < rows; ++i) {
    x_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] =
        work_[static_cast<std::size_t>(i)];
  }
  values_valid_ = true;
  values_stale_ = false;
}

void SparseLpCore::recompute_reduced_costs() {
  const int rows = static_cast<int>(basic_.size());
  const int cols = static_cast<int>(lower_.size());
  rho_.assign(static_cast<std::size_t>(rows), 0.0);
  for (int i = 0; i < rows; ++i) {
    rho_[static_cast<std::size_t>(i)] =
        cost_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])];
  }
  btran(rho_);
  for (int j = 0; j < cols; ++j) {
    reduced_[static_cast<std::size_t>(j)] =
        state_[static_cast<std::size_t>(j)] == VarState::kBasic
            ? 0.0
            : cost_[static_cast<std::size_t>(j)] - row_dot(j, rho_);
  }
}

void SparseLpCore::recompute_steepest_edge_weights() {
  // Exact gamma_j = 1 + ||B^-1 A_j||^2 for every nonbasic column: one ftran
  // per column, so this only runs at refactorization time (the devex-style
  // incremental updates approximate it in between).
  const int cols = static_cast<int>(lower_.size());
  for (int j = 0; j < cols; ++j) {
    if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
    scatter_column(j, work_);
    ftran(work_);
    double norm = 0.0;
    for (const double a : work_) norm += a * a;
    weight_[static_cast<std::size_t>(j)] = 1.0 + norm;
  }
}

bool SparseLpCore::refactor_if_needed(bool force) {
  if (!force && !factor_stale_ &&
      pivots_since_refactor_ < std::max(1, options_.refactor_interval)) {
    return true;
  }
  if (!reinvert()) return false;
  compute_basic_values();
  recompute_reduced_costs();
  if (options_.pricing == Pricing::kSteepestEdge) {
    recompute_steepest_edge_weights();
  }
  return true;
}

// ------------------------------------------------------------- primal ---

SolveStatus SparseLpCore::primal_optimize(int* iteration_counter, bool phase1) {
  const int rows = static_cast<int>(basic_.size());
  const int cols = static_cast<int>(lower_.size());
  int since_progress = 0;
  int degenerate_streak = 0;
  bool streak_bland = false;
  bool prev_bland = false;
  double last_objective = objective_;
  double last_infeas = kInf;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Budget checkpoint: one unit per pivot, charged serially (this loop is
    // single-threaded) so the interruption point is thread-count invariant.
    if (options_.budget != nullptr && !options_.budget->charge(1)) {
      return SolveStatus::kInterrupted;
    }
    ++*iteration_counter;
    if (!refactor_if_needed(false)) return SolveStatus::kIterationLimit;

    if (phase1) {
      // Composite Phase 1: minimize the total bound violation of the basic
      // variables.  The violation gradient g (+/-1 per infeasible row) is
      // recomputed every iteration — its support changes whenever a basic
      // variable crosses a bound, so incremental reduced costs don't apply.
      double infeas = 0.0;
      rho_.assign(static_cast<std::size_t>(rows), 0.0);
      for (int i = 0; i < rows; ++i) {
        const int b = basic_[static_cast<std::size_t>(i)];
        const double v = x_[static_cast<std::size_t>(b)];
        if (v < lower_[static_cast<std::size_t>(b)] - kFeasibilityTol) {
          infeas += lower_[static_cast<std::size_t>(b)] - v;
          rho_[static_cast<std::size_t>(i)] = -1.0;
        } else if (v > upper_[static_cast<std::size_t>(b)] + kFeasibilityTol) {
          infeas += v - upper_[static_cast<std::size_t>(b)];
          rho_[static_cast<std::size_t>(i)] = 1.0;
        }
      }
      if (infeas <= kPhase1Tol) return SolveStatus::kOptimal;  // feasible
      if (infeas < last_infeas - 1e-12) {
        last_infeas = infeas;
        since_progress = 0;
      } else {
        ++since_progress;
      }
      btran(rho_);
      for (int j = 0; j < cols; ++j) {
        reduced_[static_cast<std::size_t>(j)] =
            state_[static_cast<std::size_t>(j)] == VarState::kBasic
                ? 0.0
                : -row_dot(j, rho_);
      }
    }

    if (!streak_bland && options_.bland_degenerate_streak > 0 &&
        degenerate_streak > options_.bland_degenerate_streak) {
      streak_bland = true;
    }
    const bool bland = since_progress > options_.bland_after || streak_bland;
    if (bland && !prev_bland) ++bland_activations_;
    prev_bland = bland;

    // --- pricing ---
    int entering = -1;
    int dir = 0;
    for (int attempt = 0; attempt < 2; ++attempt) {
      entering = -1;
      dir = 0;
      double best_score = 0.0;
      for (int j = 0; j < cols; ++j) {
        const VarState st = state_[static_cast<std::size_t>(j)];
        if (st == VarState::kBasic) continue;
        if (lower_[static_cast<std::size_t>(j)] ==
            upper_[static_cast<std::size_t>(j)]) {
          continue;  // fixed columns never move
        }
        const double d = reduced_[static_cast<std::size_t>(j)];
        int candidate_dir;
        if (st == VarState::kAtLower && d < -options_.cost_tolerance) {
          candidate_dir = 1;
        } else if (st == VarState::kAtUpper && d > options_.cost_tolerance) {
          candidate_dir = -1;
        } else {
          continue;
        }
        if (bland) {  // Bland: first eligible column
          entering = j;
          dir = candidate_dir;
          break;
        }
        double score = d * d;
        if (options_.pricing != Pricing::kDantzig) {
          score /= weight_[static_cast<std::size_t>(j)];
        }
        // The first eligible column is accepted unconditionally: the 1e-12
        // margin only arbitrates *between* candidates.  Gating entry on it
        // would silently declare optimality whenever every eligible column
        // prices below 1e-6 in |d| — which tiny-coefficient objectives
        // (min_energy's joule scale, ~3e-4 per edge) hit routinely.
        if (entering == -1 || score > best_score + 1e-12) {
          best_score = score;
          entering = j;
          dir = candidate_dir;
        } else if (phase1 && entering != -1 && score > best_score - 1e-12 &&
                   cost_[static_cast<std::size_t>(j)] <
                       cost_[static_cast<std::size_t>(entering)]) {
          // Phase-1 ties (common: every edge variable of a violated span
          // row prices identically) break toward the cheapest Phase-2
          // cost, so feasibility is reached on a near-greedy edge set.
          entering = j;
          dir = candidate_dir;
        }
      }
      if (entering == -1 || bland || options_.pricing == Pricing::kDantzig) {
        break;
      }
      if (weight_[static_cast<std::size_t>(entering)] <= kDevexResetThreshold) {
        break;
      }
      // Devex reference-framework reset: the weights have grown past the
      // trust threshold; restart them at the current basis and re-price.
      weight_.assign(weight_.size(), 1.0);
      ++devex_resets_;
    }
    if (entering == -1) {
      return phase1 ? SolveStatus::kInfeasible : SolveStatus::kOptimal;
    }

    // --- entering column and bounded ratio test ---
    scatter_column(entering, work_);
    ftran(work_);
    double t_best = upper_[static_cast<std::size_t>(entering)] -
                    lower_[static_cast<std::size_t>(entering)];
    int limit_row = -1;
    VarState leave_state = VarState::kAtLower;
    for (int i = 0; i < rows; ++i) {
      const double a = work_[static_cast<std::size_t>(i)];
      if (std::abs(a) <= options_.pivot_tolerance) continue;
      const int b = basic_[static_cast<std::size_t>(i)];
      const double v = x_[static_cast<std::size_t>(b)];
      const double lo = lower_[static_cast<std::size_t>(b)];
      const double hi = upper_[static_cast<std::size_t>(b)];
      const double delta = -dir * a;  // d x_b / d t
      double t = kInf;
      VarState ls = VarState::kAtLower;
      if (phase1 && v < lo - kFeasibilityTol) {
        // Infeasible below: blocks only where it *reaches* the lower bound
        // (the gradient changes there); moving further down never blocks.
        if (delta > 0.0) {
          t = (lo - v) / delta;
          ls = VarState::kAtLower;
        }
      } else if (phase1 && v > hi + kFeasibilityTol) {
        if (delta < 0.0) {
          t = (v - hi) / (-delta);
          ls = VarState::kAtUpper;
        }
      } else if (delta < 0.0) {
        if (lo > -kInf) {
          t = std::max(0.0, v - lo) / (-delta);
          ls = VarState::kAtLower;
        }
      } else {
        if (hi < kInf) {
          t = std::max(0.0, hi - v) / delta;
          ls = VarState::kAtUpper;
        }
      }
      if (t == kInf) continue;
      // Same tie-break as the dense engine's ratio test: the smallest basic
      // column id wins near-ties (doubles as the leaving half of Bland).
      if (t < t_best - 1e-12 ||
          (t < t_best + 1e-12 && limit_row != -1 &&
           b < basic_[static_cast<std::size_t>(limit_row)])) {
        t_best = t;
        limit_row = i;
        leave_state = ls;
      }
    }
    if (t_best == kInf) {
      return phase1 ? SolveStatus::kIterationLimit : SolveStatus::kUnbounded;
    }

    const double d_entering = reduced_[static_cast<std::size_t>(entering)];
    if (limit_row == -1) {
      // Bound flip: the entering variable hits its opposite bound before
      // any basic variable blocks.  No basis change, no eta — the whole
      // point of implicit bounds.
      const double t = t_best;
      for (int i = 0; i < rows; ++i) {
        const double a = work_[static_cast<std::size_t>(i)];
        if (a == 0.0) continue;
        x_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] -=
            dir * t * a;
      }
      if (dir > 0) {
        x_[static_cast<std::size_t>(entering)] =
            upper_[static_cast<std::size_t>(entering)];
        state_[static_cast<std::size_t>(entering)] = VarState::kAtUpper;
      } else {
        x_[static_cast<std::size_t>(entering)] =
            lower_[static_cast<std::size_t>(entering)];
        state_[static_cast<std::size_t>(entering)] = VarState::kAtLower;
      }
      ++bound_flips_;
      objective_ += d_entering * dir * t;
      degenerate_streak = 0;
      streak_bland = false;
      if (!phase1 && objective_ < last_objective - 1e-12) {
        last_objective = objective_;
        since_progress = 0;
      } else if (!phase1) {
        ++since_progress;
      }
      continue;
    }

    const double t = std::max(0.0, t_best);
    if (t <= 1e-12) {
      ++degenerate_pivots_;
      ++degenerate_streak;
    } else {
      degenerate_streak = 0;
      streak_bland = false;
    }

    if (!phase1) {
      // Incremental dual update from the pivot row r of B^-1 A:
      //   theta = d_q / alpha_rq,  d_j -= theta * alpha_rj,
      // plus the devex weight update from the same row.
      const double arq = work_[static_cast<std::size_t>(limit_row)];
      rho_.assign(static_cast<std::size_t>(rows), 0.0);
      rho_[static_cast<std::size_t>(limit_row)] = 1.0;
      btran(rho_);
      const double theta = d_entering / arq;
      const double wq = weight_[static_cast<std::size_t>(entering)];
      const int leaving = basic_[static_cast<std::size_t>(limit_row)];
      for (int j = 0; j < cols; ++j) {
        if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
        if (j == entering) continue;
        const double arj = row_dot(j, rho_);
        if (std::abs(arj) <= kDropTol) continue;
        reduced_[static_cast<std::size_t>(j)] -= theta * arj;
        if (options_.pricing != Pricing::kDantzig) {
          const double ratio = arj / arq;
          const double candidate = ratio * ratio * wq;
          if (candidate > weight_[static_cast<std::size_t>(j)]) {
            weight_[static_cast<std::size_t>(j)] = candidate;
          }
        }
      }
      reduced_[static_cast<std::size_t>(leaving)] = -theta;
      reduced_[static_cast<std::size_t>(entering)] = 0.0;
      weight_[static_cast<std::size_t>(leaving)] =
          std::max(1.0, wq / (arq * arq));
      objective_ += d_entering * dir * t;
    }

    apply_pivot(limit_row, entering, dir, t, work_, leave_state);

    if (!phase1) {
      if (objective_ < last_objective - 1e-12) {
        last_objective = objective_;
        since_progress = 0;
      } else {
        ++since_progress;
      }
    }
  }
  return SolveStatus::kIterationLimit;
}

void SparseLpCore::apply_pivot(int r, int entering, int direction, double step,
                               const std::vector<double>& alpha,
                               VarState leave_state) {
  const int rows = static_cast<int>(basic_.size());
  const int leaving = basic_[static_cast<std::size_t>(r)];
  const double enter_from =
      state_[static_cast<std::size_t>(entering)] == VarState::kAtUpper
          ? upper_[static_cast<std::size_t>(entering)]
          : lower_[static_cast<std::size_t>(entering)];
  for (int i = 0; i < rows; ++i) {
    const double a = alpha[static_cast<std::size_t>(i)];
    if (a == 0.0) continue;
    x_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] -=
        direction * step * a;
  }
  x_[static_cast<std::size_t>(entering)] = enter_from + direction * step;
  // Place the leaving variable exactly on its bound (kills rounding noise
  // the way the dense engine clamps its pivot row).
  x_[static_cast<std::size_t>(leaving)] =
      leave_state == VarState::kAtUpper
          ? upper_[static_cast<std::size_t>(leaving)]
          : lower_[static_cast<std::size_t>(leaving)];
  state_[static_cast<std::size_t>(entering)] = VarState::kBasic;
  state_[static_cast<std::size_t>(leaving)] = leave_state;
  basic_[static_cast<std::size_t>(r)] = entering;
  append_eta(r, alpha);
  ++pivots_since_refactor_;
}

// --------------------------------------------------------------- dual ---

SolveStatus SparseLpCore::dual_optimize(int* iteration_counter) {
  const int rows = static_cast<int>(basic_.size());
  const int cols = static_cast<int>(lower_.size());
  // Same tight warm-path pivot budget as the dense engine; overruns fall
  // back (counted).
  const int cap = std::min(options_.max_iterations, 100 + 4 * rows);
  int degenerate_streak = 0;
  bool streak_bland = false;
  bool prev_bland = false;
  row_scratch_.assign(static_cast<std::size_t>(cols), 0.0);
  for (int iter = 0; iter < cap; ++iter) {
    if (options_.budget != nullptr && !options_.budget->charge(1)) {
      return SolveStatus::kInterrupted;
    }
    ++*iteration_counter;
    if (!refactor_if_needed(false)) return SolveStatus::kIterationLimit;
    if (!streak_bland && options_.bland_degenerate_streak > 0 &&
        degenerate_streak > options_.bland_degenerate_streak) {
      streak_bland = true;
    }
    if (streak_bland && !prev_bland) ++bland_activations_;
    prev_bland = streak_bland;

    // --- leaving row: largest bound violation (Bland: smallest basic id) --
    int r = -1;
    double worst = 0.0;
    bool below = false;
    for (int i = 0; i < rows; ++i) {
      const int b = basic_[static_cast<std::size_t>(i)];
      const double v = x_[static_cast<std::size_t>(b)];
      double viol = 0.0;
      bool this_below = false;
      if (v < lower_[static_cast<std::size_t>(b)] - kFeasibilityTol) {
        viol = lower_[static_cast<std::size_t>(b)] - v;
        this_below = true;
      } else if (v > upper_[static_cast<std::size_t>(b)] + kFeasibilityTol) {
        viol = v - upper_[static_cast<std::size_t>(b)];
      } else {
        continue;
      }
      if (r == -1) {
        r = i;
        worst = viol;
        below = this_below;
        continue;
      }
      if (streak_bland) {
        if (b < basic_[static_cast<std::size_t>(r)]) {
          r = i;
          worst = viol;
          below = this_below;
        }
      } else if (viol > worst + 1e-12 ||
                 (viol > worst - 1e-12 &&
                  b < basic_[static_cast<std::size_t>(r)])) {
        r = i;
        worst = viol;
        below = this_below;
      }
    }
    if (r == -1) return SolveStatus::kOptimal;  // primal feasible again

    rho_.assign(static_cast<std::size_t>(rows), 0.0);
    rho_[static_cast<std::size_t>(r)] = 1.0;
    btran(rho_);

    // --- dual ratio test over the sign-eligible nonbasic columns ---------
    // Ties break toward the smallest column index (ascending scan), the
    // entering half of Bland's rule — same as the dense engine.
    int entering = -1;
    int dir = 0;
    double best_ratio = kInf;
    for (int j = 0; j < cols; ++j) {
      const VarState st = state_[static_cast<std::size_t>(j)];
      row_scratch_[static_cast<std::size_t>(j)] = 0.0;
      if (st == VarState::kBasic) continue;
      const double arj = row_dot(j, rho_);
      row_scratch_[static_cast<std::size_t>(j)] = arj;
      if (lower_[static_cast<std::size_t>(j)] ==
          upper_[static_cast<std::size_t>(j)]) {
        continue;  // fixed columns never enter
      }
      if (std::abs(arj) <= options_.pivot_tolerance) continue;
      // x_B(r) changes by -dir_j * arj per unit step of x_j; it must move
      // toward its violated bound.
      int candidate_dir;
      double rc;
      if (st == VarState::kAtLower) {
        candidate_dir = 1;
        rc = std::max(reduced_[static_cast<std::size_t>(j)], 0.0);
      } else {
        candidate_dir = -1;
        rc = std::max(-reduced_[static_cast<std::size_t>(j)], 0.0);
      }
      const double move = -candidate_dir * arj;
      if (below ? move <= 0.0 : move >= 0.0) continue;
      const double ratio = rc / std::abs(arj);
      if (ratio < best_ratio - 1e-12) {
        best_ratio = ratio;
        entering = j;
        dir = candidate_dir;
      }
    }
    if (entering == -1) {
      // The row proves infeasibility (a violated basic no eligible column
      // can fix) — modulo rounding, which is why callers re-certify with a
      // cold solve.
      return SolveStatus::kInfeasible;
    }

    if (best_ratio <= 1e-12) {
      ++degenerate_pivots_;
      ++degenerate_streak;
    } else {
      degenerate_streak = 0;
      streak_bland = false;
    }

    scatter_column(entering, work_);
    ftran(work_);
    const double arq = work_[static_cast<std::size_t>(r)];
    const int leaving = basic_[static_cast<std::size_t>(r)];
    const double v = x_[static_cast<std::size_t>(leaving)];
    const double target = below ? lower_[static_cast<std::size_t>(leaving)]
                                : upper_[static_cast<std::size_t>(leaving)];
    const double t = std::max(0.0, (target - v) / (-dir * arq));

    // Dual update from the cached pivot row.
    const double theta = reduced_[static_cast<std::size_t>(entering)] / arq;
    if (theta != 0.0) {
      for (int j = 0; j < cols; ++j) {
        if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
        if (j == entering) continue;
        const double arj = row_scratch_[static_cast<std::size_t>(j)];
        if (std::abs(arj) <= kDropTol) continue;
        reduced_[static_cast<std::size_t>(j)] -= theta * arj;
      }
    }
    reduced_[static_cast<std::size_t>(leaving)] = -theta;
    reduced_[static_cast<std::size_t>(entering)] = 0.0;

    apply_pivot(r, entering, dir, t, work_,
                below ? VarState::kAtLower : VarState::kAtUpper);
  }
  return SolveStatus::kIterationLimit;
}

// -------------------------------------------------------------- extract --

void SparseLpCore::extract(Solution& out) const {
  const int n = structural_count_;
  out.values.assign(static_cast<std::size_t>(n), 0.0);
  out.is_basic.assign(static_cast<std::size_t>(n), false);
  for (VarId v = 0; v < n; ++v) {
    double xv = x_[static_cast<std::size_t>(v)];
    // Clamp rounding noise onto the box (nonbasic values are already exact).
    const double lo = lower_[static_cast<std::size_t>(v)];
    const double hi = upper_[static_cast<std::size_t>(v)];
    if (xv < lo && xv > lo - 1e-9) xv = lo;
    if (xv > hi && xv < hi + 1e-9) xv = hi;
    out.values[static_cast<std::size_t>(v)] = xv;
    out.is_basic[static_cast<std::size_t>(v)] =
        state_[static_cast<std::size_t>(v)] == VarState::kBasic;
  }
  out.objective = model_.evaluate_objective(out.values);
}

BasisSnapshot SparseLpCore::basis_snapshot() const {
  BasisSnapshot out;
  if (!have_basis_) return out;
  out.basic = basic_;
  out.basic_values.reserve(basic_.size());
  for (const int b : basic_) {
    out.basic_values.push_back(x_[static_cast<std::size_t>(b)]);
  }
  out.nonbasic_at_upper.reserve(state_.size());
  for (const VarState st : state_) {
    out.nonbasic_at_upper.push_back(st == VarState::kAtUpper ? 1 : 0);
  }
  return out;
}

// -------------------------------------------------------------- metrics --

SparseLpCore::Marks SparseLpCore::mark() const {
  return {degenerate_pivots_, bland_activations_, refactorizations_,
          devex_resets_,      bound_flips_,       drift_events_};
}

void SparseLpCore::record_solve(const Solution& out, bool warm, bool fallback,
                                const Marks& before) {
  if (!options_.record_metrics) return;
  static metrics::Counter& solves = metrics::counter("simplex.solves");
  static metrics::Counter& pivots = metrics::counter("simplex.pivots");
  static metrics::Counter& degenerate =
      metrics::counter("simplex.degenerate_pivots");
  static metrics::Histogram& per_solve =
      metrics::histogram("simplex.pivots_per_solve");
  static metrics::Counter& warm_solves = metrics::counter("simplex.warm_solves");
  static metrics::Counter& warm_pivots = metrics::counter("simplex.warm_pivots");
  static metrics::Counter& fallbacks = metrics::counter("simplex.cold_fallbacks");
  static metrics::Counter& bland = metrics::counter("simplex.bland_activations");
  static metrics::Counter& nnz = metrics::counter("simplex.sparse_nnz");
  static metrics::Counter& refact =
      metrics::counter("simplex.sparse_refactorizations");
  static metrics::Counter& resets =
      metrics::counter("simplex.sparse_devex_resets");
  static metrics::Counter& flips =
      metrics::counter("simplex.sparse_bound_flips");
  static metrics::Counter& drift =
      metrics::counter("simplex.sparse_drift_events");
  solves.add();
  pivots.add(out.iterations);
  degenerate.add(degenerate_pivots_ - before.degenerate);
  per_solve.record(out.iterations);
  if (warm) {
    warm_solves.add();
    warm_pivots.add(out.iterations);
  }
  if (fallback) fallbacks.add();
  if (bland_activations_ > before.bland) {
    bland.add(bland_activations_ - before.bland);
  }
  nnz.add(static_cast<long long>(row_cols_.size()));
  refact.add(refactorizations_ - before.refact);
  resets.add(devex_resets_ - before.resets);
  flips.add(bound_flips_ - before.flips);
  drift.add(drift_events_ - before.drift);
}

// ---------------------------------------------------------------- edits --

bool SparseLpCore::ingest_row(RowId row) {
  if (model_.relation(row) == Relation::kEqual) {
    // An equality row's logical is fixed at zero, so it can't absorb the
    // row's current violation as a basic variable; invalidate the basis so
    // the next solve is cold (same contract as the dense engine).
    return false;
  }
  append_row_storage(row);
  // The fresh logical column enters the basis at whatever value closes the
  // row over the current solution:  a'x + c*s = b  =>  s = (b - a'x)/c.
  // A violated cut leaves it negative (primal infeasible, dual feasible) —
  // exactly the dual simplex precondition.  The new row's dual value is 0,
  // so every existing reduced cost is unchanged.
  double ax = 0.0;
  for (const Term& t : model_.terms(row)) {
    ax += t.coefficient * x_[static_cast<std::size_t>(t.var)];
  }
  const double coeff =
      model_.relation(row) == Relation::kGreaterEqual ? -1.0 : 1.0;
  const int lcol = logical_of_row_.back();
  x_[static_cast<std::size_t>(lcol)] = (model_.rhs(row) - ax) / coeff;
  state_[static_cast<std::size_t>(lcol)] = VarState::kBasic;
  basic_.push_back(lcol);
  factor_stale_ = true;
  return true;
}

int SparseLpCore::sync_new_rows() {
  visible_rows_ = -1;
  return sync_visible();
}

int SparseLpCore::sync_new_rows(int up_to_rows) {
  MRLC_REQUIRE(up_to_rows >= model_rows_ingested_ &&
                   up_to_rows <= model_.constraint_count(),
               "row horizon must not retreat below ingested rows");
  visible_rows_ = up_to_rows;
  return sync_visible();
}

int SparseLpCore::sync_visible() {
  const int total = visible_row_count();
  const int fresh = total - model_rows_ingested_;
  if (fresh <= 0) return 0;
  if (!have_basis_) {
    // No retained basis to patch; the next cold solve reads the model.
    model_rows_ingested_ = total;
    return fresh;
  }
  for (RowId r = model_rows_ingested_; r < total; ++r) {
    if (!ingest_row(r)) {
      have_basis_ = false;
      break;
    }
  }
  model_rows_ingested_ = total;
  return fresh;
}

void SparseLpCore::update_rhs(RowId row) {
  MRLC_REQUIRE(row >= 0 && row < model_.constraint_count(), "row out of range");
  if (!have_basis_) return;  // next cold solve reads the model
  MRLC_REQUIRE(row < model_rows_ingested_, "sync_new_rows before update_rhs");
  // Model rows map 1:1 onto internal rows (no bound rows interleave), so
  // the edit is a single store; the basic values are recomputed through
  // the factorization on the next resolve.
  row_rhs_[static_cast<std::size_t>(row)] = model_.rhs(row);
  values_stale_ = true;
}

void SparseLpCore::update_objective(VarId v) {
  MRLC_REQUIRE(v >= 0 && v < model_.variable_count(), "variable out of range");
  if (!have_basis_) return;  // next cold solve reads the model
  costs_stale_ = true;
}

// --------------------------------------------------------------- solves --

Solution SparseLpCore::solve() {
  if (model_.variable_count() == 0) {
    // Empty model: feasible iff every row is satisfied by the empty point.
    Solution out;
    bool ok = true;
    const int visible = visible_row_count();
    for (RowId r = 0; r < visible; ++r) {
      const double rhs = model_.rhs(r);
      switch (model_.relation(r)) {
        case Relation::kLessEqual: ok = ok && rhs >= -1e-9; break;
        case Relation::kGreaterEqual: ok = ok && rhs <= 1e-9; break;
        case Relation::kEqual: ok = ok && std::abs(rhs) <= 1e-9; break;
      }
    }
    out.status = ok ? SolveStatus::kOptimal : SolveStatus::kInfeasible;
    have_basis_ = false;
    model_rows_ingested_ = visible;
    return out;
  }
  trace::ScopedPhase phase("simplex");
  const Marks before = mark();
  Solution out = cold_solve_locked();
  record_solve(out, /*warm=*/false, /*fallback=*/false, before);
  return out;
}

Solution SparseLpCore::cold_solve_locked() {
  build();
  have_basis_ = false;
  Solution out;
  if (!refactor_if_needed(/*force=*/true)) {
    // The all-logical start basis is diag(+/-1); a singular reinversion here
    // means corrupted storage, not bad luck.
    out.status = SolveStatus::kIterationLimit;
    return out;
  }
  // ---- Phase 1: minimize the total bound violation, if any. ------------
  bool feasible = true;
  const int rows = static_cast<int>(basic_.size());
  for (int i = 0; i < rows; ++i) {
    const int b = basic_[static_cast<std::size_t>(i)];
    const double v = x_[static_cast<std::size_t>(b)];
    if (v < lower_[static_cast<std::size_t>(b)] - kFeasibilityTol ||
        v > upper_[static_cast<std::size_t>(b)] + kFeasibilityTol) {
      feasible = false;
      break;
    }
  }
  if (!feasible) {
    const SolveStatus s1 = primal_optimize(&out.iterations, /*phase1=*/true);
    if (s1 != SolveStatus::kOptimal) {
      out.status = s1;
      return out;
    }
  }
  // ---- Phase 2: the real objective, devex weights restarted. -----------
  recompute_reduced_costs();
  weight_.assign(weight_.size(), 1.0);
  if (options_.pricing == Pricing::kSteepestEdge) {
    recompute_steepest_edge_weights();
  }
  objective_ = 0.0;
  for (std::size_t j = 0; j < cost_.size(); ++j) {
    objective_ += cost_[j] * x_[j];
  }
  const SolveStatus s2 = primal_optimize(&out.iterations, /*phase1=*/false);
  out.status = s2;
  if (s2 != SolveStatus::kOptimal) return out;

  extract(out);
  have_basis_ = true;
  return out;
}

Solution SparseLpCore::resolve() {
  if (model_.variable_count() == 0 || !have_basis_ ||
      model_rows_ingested_ != visible_row_count()) {
    return solve();
  }
  trace::ScopedPhase phase("simplex");
  const Marks before = mark();
  Solution out;
  out.warm_started = true;

  bool trouble = false;
  if (costs_stale_) {
    load_phase2_costs();
    costs_stale_ = false;
    // Reduced costs refresh below (with the forced refactor) or here.
    if (!factor_stale_) recompute_reduced_costs();
  }
  if (factor_stale_) {
    // New rows since the last factorization (their logicals joined basic_
    // outside the eta file): fold them in before pivoting.
    if (!refactor_if_needed(/*force=*/true)) trouble = true;
  } else if (values_stale_) {
    compute_basic_values();
  }

  SolveStatus dual = SolveStatus::kIterationLimit;
  if (!trouble) {
    dual = dual_optimize(&out.iterations);
    if (dual == SolveStatus::kInterrupted) {
      // Budget ran out mid-reoptimization: the basis is mid-pivot-sequence
      // (valid, but neither primal feasible nor certified), so the retained
      // state is abandoned rather than trusted or re-solved.
      out.status = SolveStatus::kInterrupted;
      have_basis_ = false;
      record_solve(out, /*warm=*/false, /*fallback=*/false, before);
      return out;
    }
    if (dual == SolveStatus::kOptimal) {
      objective_ = 0.0;
      for (std::size_t j = 0; j < cost_.size(); ++j) {
        objective_ += cost_[j] * x_[j];
      }
      const SolveStatus primal =
          primal_optimize(&out.iterations, /*phase1=*/false);
      if (primal == SolveStatus::kInterrupted) {
        out.status = SolveStatus::kInterrupted;
        have_basis_ = false;
        record_solve(out, /*warm=*/false, /*fallback=*/false, before);
        return out;
      }
      if (primal == SolveStatus::kUnbounded) {
        // A genuinely unbounded direction is certified by the basis itself;
        // a cold re-solve could only rediscover it.
        out.status = SolveStatus::kUnbounded;
        have_basis_ = false;
        ++warm_solves_;
        record_solve(out, /*warm=*/true, /*fallback=*/false, before);
        return out;
      }
      if (primal == SolveStatus::kOptimal) {
        bool ok = true;
        const int rows = static_cast<int>(basic_.size());
        for (int i = 0; i < rows; ++i) {
          const int b = basic_[static_cast<std::size_t>(i)];
          const double v = x_[static_cast<std::size_t>(b)];
          if (v < lower_[static_cast<std::size_t>(b)] - kWarmAcceptTol ||
              v > upper_[static_cast<std::size_t>(b)] + kWarmAcceptTol) {
            ok = false;
            break;
          }
        }
        if (ok) {
          out.status = SolveStatus::kOptimal;
          extract(out);
          ++warm_solves_;
          record_solve(out, /*warm=*/true, /*fallback=*/false, before);
          return out;
        }
      }
      trouble = true;
    } else {
      // kInfeasible or kIterationLimit.  An infeasible verdict matters too
      // much to trust floating-point residuals; the cold path re-certifies
      // it either way.
      trouble = true;
    }
  }
  MRLC_ENSURE(trouble, "unreachable: all warm outcomes handled above");

  ++cold_fallbacks_;
  Solution cold = cold_solve_locked();
  cold.iterations += out.iterations;  // the wasted warm pivots still count
  record_solve(cold, /*warm=*/false, /*fallback=*/true, before);
  return cold;
}

}  // namespace mrlc::lp
