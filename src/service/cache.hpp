#pragma once

/// \file cache.hpp
/// \brief Warm-solve cache for the solver service, keyed by topology hash.
///
/// The service sees streams of requests against a handful of networks
/// (different lifetime thresholds, repeated queries), so two kinds of reuse
/// pay off:
///
/// 1. **Result cache.**  A converged (`ok`) solve for a given
///    (topology, variant, lifetime, budget) tuple is deterministic, so the
///    exact reply — tree bytes included — can be served again without
///    touching the solver.  Byte-for-byte identical replies, `cache hit`
///    marker set.
/// 2. **Subtour cut-pool warmth.**  Violated vertex sets separated for one
///    lifetime threshold usually cut off fractional points for nearby
///    thresholds on the same topology, so each cache entry keeps a bounded
///    `core::SubtourCutPool` *per problem variant* that requests *lease*
///    for the duration of one solve (exclusive — see `lease`).  Pools are
///    keyed by variant because each variant's LP visits different
///    fractional points: cuts separated under one objective are sound but
///    cold for another, and replaying them would make a solve's separation
///    trajectory (and, on degenerate LPs, its tie-broken tree) depend on
///    which *other* variants previously ran on the topology.  Pool warmth
///    accelerates the separation search but, on degenerate LPs, may land
///    on a different equally-optimal tree than a cold solve (see
///    `IraOptions::shared_pool`); callers that need one-shot byte parity
///    solve pool-free.
///
/// Eviction is LRU over topology hashes, bounded by `capacity`.  Entries
/// can be **quarantined**: when a solve against a leased pool reports
/// warm-start cold fallbacks (numerical trouble) — or the
/// `service.cache_poison` fault injects exactly that — the entry is
/// dropped and its hash blacklisted, so subsequent requests for that
/// topology run pool-free rather than against state under suspicion.
///
/// Thread model: NOT thread-safe.  The service mutates the cache only at
/// serial checkpoints (batch prep and finalize, admission order), which is
/// also what keeps hit/miss/eviction counters bit-deterministic across
/// worker thread counts.

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/separation.hpp"

namespace mrlc::service {

/// \brief FNV-1a 64-bit hash of the canonical network text.  Stable across
/// runs and platforms (unlike std::hash), so logs and tests can name
/// topologies by hash.
std::uint64_t topology_hash(const std::string& canonical_network_text);

/// A cached converged solve: everything needed to replay the reply.
struct CachedResult {
  std::string tree_text;
  double cost = 0.0;
  double reliability = 0.0;
  double lifetime = 0.0;
  double gap = 0.0;
  std::int64_t budget_used = 0;
};

/// Monotonic cache counters (mirrored into the metrics registry by the
/// service; kept here so the cache stays metrics-agnostic and testable).
struct CacheStats {
  long long result_hits = 0;
  long long result_misses = 0;
  long long pool_leases = 0;   ///< solves that ran with a warm pool
  long long evictions = 0;     ///< LRU evictions (capacity pressure)
  long long poisoned = 0;      ///< quarantined entries
};

class WarmCache {
 public:
  /// \param capacity  max live topology entries (0 disables caching).
  /// \param pool_sets  `SubtourCutPool::set_capacity` applied to every
  ///        entry pool (0 = unbounded; the service default keeps them
  ///        bounded so long-lived daemons cannot grow per-topology state).
  explicit WarmCache(std::size_t capacity, std::size_t pool_sets = 0);

  /// \brief Looks up a cached converged result.
  /// \param topo  topology hash of the canonical network text.
  /// \param key  result key (variant + lifetime + budget, see
  ///        `result_key`).
  /// \return the cached result, or nullptr (counts a hit/miss either way;
  ///         a hit refreshes LRU recency).
  const CachedResult* find_result(std::uint64_t topo, const std::string& key);

  /// \brief Stores a converged result (creates/refreshes the entry; may
  /// LRU-evict another).  No-op when the topology is quarantined or
  /// capacity is 0.
  void store_result(std::uint64_t topo, const std::string& key,
                    CachedResult result);

  /// \brief Leases the entry's pool for (`topo`, `variant`) for one solve
  /// (exclusive).  Creates the entry/pool if absent (may LRU-evict).
  /// Returns nullptr — and the solve must run pool-free — when the
  /// topology is quarantined, that variant's pool is already leased out
  /// (two same-topology same-variant requests in one batch), or capacity
  /// is 0.  Distinct variants on one topology lease distinct pools and may
  /// be in flight concurrently.  Every successful lease must be paired
  /// with `release` or `quarantine` at the serial finalize checkpoint.
  core::SubtourCutPool* lease(std::uint64_t topo, const std::string& variant);

  /// Returns a lease taken with `lease` (entry keeps its warmed pool).
  void release(std::uint64_t topo, const std::string& variant);

  /// \brief Drops the entry (pool and results) and blacklists the hash:
  /// future `lease`/`store_result` calls for it are refused.  Implicitly
  /// releases an outstanding lease.  Safe to call for never-seen hashes.
  void quarantine(std::uint64_t topo);

  bool is_quarantined(std::uint64_t topo) const {
    return quarantined_.count(topo) != 0;
  }

  std::size_t entry_count() const noexcept { return entries_.size(); }
  const CacheStats& stats() const noexcept { return stats_; }

  /// \brief Canonical result-cache key for a request.  Deadlines are
  /// deliberately excluded: only converged (`ok`) results are ever stored,
  /// and a converged answer is independent of the wall clock that raced it.
  static std::string result_key(const std::string& variant, double lifetime,
                                std::int64_t budget);

 private:
  struct PoolSlot {
    core::SubtourCutPool pool;
    bool leased = false;
  };
  struct Entry {
    /// One cut pool per variant name (created on first lease): warmth never
    /// crosses variants — see the file comment.
    std::unordered_map<std::string, PoolSlot> pools;
    std::unordered_map<std::string, CachedResult> results;
    std::list<std::uint64_t>::iterator lru_pos;

    bool any_leased() const noexcept {
      for (const auto& [name, slot] : pools) {
        if (slot.leased) return true;
      }
      return false;
    }
  };

  /// Moves `topo` to the most-recently-used position.
  void touch(std::uint64_t topo, Entry& entry);
  /// Creates (or refreshes) the entry for `topo`, LRU-evicting as needed.
  Entry* ensure_entry(std::uint64_t topo);

  std::size_t capacity_;
  std::size_t pool_sets_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  ///< front = most recent
  std::unordered_set<std::uint64_t> quarantined_;
  CacheStats stats_;
};

}  // namespace mrlc::service
