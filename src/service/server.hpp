#pragma once

/// \file server.hpp
/// \brief The solver service core: bounded admission, batched dispatch on
/// the persistent thread pool, typed replies, warm caching, and drain.
///
/// `SolverService` is transport-agnostic — `tools/mrlc_serve.cpp` feeds it
/// framed payloads from a Unix socket or stdin and ships the replies back;
/// tests drive it in-process.  The lifecycle of one request:
///
///   submit ──▶ [admission]  full queue → `rejected_overload` (shed)
///                           draining   → `rejected_draining`
///              [queue]      bounded FIFO, depth in `service.queue_depth`
///   dispatcher pops up to `batch_size` requests (admission order) per
///   batch and runs a three-stage pipeline:
///              [serial prep]      hash topology, result-cache lookup
///                                 (hit → reply, no solve), pool lease,
///                                 fault-injection decisions
///              [parallel solve]   `ThreadPool::for_each` over the batch:
///                                 parse, validate, `core::solve_anytime`
///                                 under the per-request `Budget`
///              [serial finalize]  admission order: poison audit, result
///                                 store, metrics, replies
///
/// **Determinism.**  Every cache mutation, fault-arrival decision, and
/// counter bump happens at the serial checkpoints in admission order, and
/// each solve is independently deterministic, so a fixed request sequence
/// with a pinned `batch_size` produces bit-identical trees and counters at
/// any worker thread count.  (Wall-clock metrics are the exception and are
/// gated behind `record_timings`.)
///
/// **Robustness.**  Malformed payloads become `invalid_request` replies;
/// unexpected exceptions inside a worker are caught by the dispatch
/// watchdog and become `internal_error` replies; an injected
/// `service.worker_crash` cancels the victim's budget cooperatively and
/// yields a typed `cancelled` reply — in every case the daemon itself
/// keeps serving.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "service/cache.hpp"
#include "service/wire.hpp"

namespace mrlc::service {

struct ServiceOptions {
  /// Bounded admission queue; a submit against a full queue is shed with
  /// `rejected_overload` (never blocks the transport thread).
  std::size_t queue_capacity = 64;
  /// Requests dispatched per batch.  0 = the worker pool width.  Benchmarks
  /// and determinism tests pin this explicitly so batch composition — and
  /// with it cache/fault arrival order — is independent of `--threads`.
  int batch_size = 0;
  /// Warm-cache topology capacity (0 disables caching entirely).
  std::size_t cache_capacity = 16;
  /// Cut-pool bound per cached topology (`SubtourCutPool::set_capacity`).
  std::size_t cache_pool_sets = 256;
  /// Applied to requests that carry no deadline of their own; < 0 = none.
  std::int64_t default_deadline_ms = -1;
  /// Record wall-clock queue/solve times (reply fields + histograms).
  /// Off = those fields are hard zero and replies are byte-deterministic.
  bool record_timings = true;
  /// Start the dispatcher from the constructor.  Tests and benchmarks use
  /// `false` to enqueue a full workload first (deterministic shed/batch
  /// pattern), then call `start()`.
  bool auto_start = true;
};

class SolverService {
 public:
  /// Reply sink; invoked exactly once per submitted request, either inline
  /// from `submit` (shed/invalid) or from the dispatcher thread.  Must not
  /// call back into the service.
  using ReplyFn = std::function<void(const WireResponse&)>;

  explicit SolverService(ServiceOptions options = {});
  /// Drains (finishing queued work) and joins the dispatcher.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// \brief Admits a decoded request (thread-safe).  Sheds with a typed
  /// reply when the queue is full or the service is draining.
  void submit(WireRequest request, ReplyFn reply);

  /// \brief Admits a raw (unframed) payload; decode failures become
  /// `invalid_request` replies rather than exceptions.
  void submit_payload(const std::string& payload, ReplyFn reply);

  /// Starts the dispatcher (no-op when already started).
  void start();

  /// \brief Stops admissions, finishes every queued and in-flight request,
  /// flushes their replies, and joins the dispatcher.  Idempotent.
  void drain();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Requests currently queued (diagnostics; racy by nature).
  std::size_t queue_depth() const;

  /// Warm-cache counters (serial-checkpoint deterministic).
  const CacheStats& cache_stats() const noexcept { return cache_.stats(); }

 private:
  /// One admitted request waiting in the queue.
  struct Pending {
    WireRequest request;
    ReplyFn reply;
    std::chrono::steady_clock::time_point submitted;
  };
  struct WorkItem;  ///< one batch slot: request, budget, flags, outcome

  void dispatcher_loop();
  void process_batch(std::vector<Pending>& batch);
  /// Builds the typed reply for a solved/failed work item (no cache I/O).
  WireResponse make_reply(const WorkItem& item) const;

  ServiceOptions options_;
  WarmCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Pending> queue_;
  std::atomic<bool> draining_{false};
  bool started_ = false;
  std::thread dispatcher_;
};

}  // namespace mrlc::service
