#include "service/wire.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <sstream>

namespace mrlc::service {

namespace {

/// Formats doubles the same way the io/v1 formats do: max_digits10 so the
/// value round-trips exactly through text.
std::string format_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

double parse_double(const std::string& token, const char* key) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw WireError("");
    return v;
  } catch (const std::exception&) {
    throw WireError(std::string("bad numeric value for '") + key + "'");
  }
}

std::int64_t parse_int(const std::string& token, const char* key) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(token, &pos);
    if (pos != token.size()) throw WireError("");
    return static_cast<std::int64_t>(v);
  } catch (const std::exception&) {
    throw WireError(std::string("bad integer value for '") + key + "'");
  }
}

/// Line-oriented payload cursor.  Splits `key value` lines and hands out
/// trailing byte blocks for `network <n>` / `tree <n>` sections.
class PayloadCursor {
 public:
  explicit PayloadCursor(const std::string& payload) : payload_(payload) {}

  /// Reads the next line (without newline); false at end of payload.
  bool next_line(std::string& line) {
    if (pos_ >= payload_.size()) return false;
    const std::size_t nl = payload_.find('\n', pos_);
    if (nl == std::string::npos) {
      throw WireError("payload line missing trailing newline");
    }
    line = payload_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return true;
  }

  /// Takes exactly `n` raw bytes following the current position.
  std::string take_bytes(std::size_t n, const char* what) {
    if (payload_.size() - pos_ < n) {
      throw WireError(std::string("truncated ") + what + " byte block");
    }
    std::string out = payload_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  bool at_end() const noexcept { return pos_ >= payload_.size(); }

 private:
  const std::string& payload_;
  std::size_t pos_ = 0;
};

/// Splits "key value" (value may contain spaces; key may not).
void split_kv(const std::string& line, std::string& key, std::string& value) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    key = line;
    value.clear();
  } else {
    key = line.substr(0, sp);
    value = line.substr(sp + 1);
  }
}

void require_token(const std::string& value, const char* key) {
  if (value.empty() || value.find_first_of(" \t\n") != std::string::npos) {
    throw WireError(std::string("field '") + key +
                    "' must be a non-empty whitespace-free token");
  }
}

}  // namespace

const char* to_string(ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kBudgetExhausted: return "budget_exhausted";
    case ResponseStatus::kCancelled: return "cancelled";
    case ResponseStatus::kInfeasible: return "infeasible";
    case ResponseStatus::kRejectedOverload: return "rejected_overload";
    case ResponseStatus::kRejectedDraining: return "rejected_draining";
    case ResponseStatus::kInvalidRequest: return "invalid_request";
    case ResponseStatus::kInternalError: return "internal_error";
  }
  return "internal_error";
}

ResponseStatus status_from_string(const std::string& token) {
  static const std::map<std::string, ResponseStatus> table = {
      {"ok", ResponseStatus::kOk},
      {"budget_exhausted", ResponseStatus::kBudgetExhausted},
      {"cancelled", ResponseStatus::kCancelled},
      {"infeasible", ResponseStatus::kInfeasible},
      {"rejected_overload", ResponseStatus::kRejectedOverload},
      {"rejected_draining", ResponseStatus::kRejectedDraining},
      {"invalid_request", ResponseStatus::kInvalidRequest},
      {"internal_error", ResponseStatus::kInternalError},
  };
  const auto it = table.find(token);
  if (it == table.end()) {
    throw WireError("unknown response status token '" + token + "'");
  }
  return it->second;
}

std::string encode_request(const WireRequest& request) {
  require_token(request.id, "id");
  require_token(request.variant, "variant");
  std::ostringstream os;
  os << "mrlc-request v1\n";
  os << "id " << request.id << "\n";
  os << "variant " << request.variant << "\n";
  os << "lifetime " << format_double(request.lifetime) << "\n";
  if (request.budget >= 0) os << "budget " << request.budget << "\n";
  if (request.deadline_ms >= 0) {
    os << "deadline-ms " << request.deadline_ms << "\n";
  }
  os << "network " << request.network_text.size() << "\n";
  os << request.network_text;
  return os.str();
}

WireRequest decode_request(const std::string& payload) {
  PayloadCursor cursor(payload);
  std::string line;
  if (!cursor.next_line(line) || line != "mrlc-request v1") {
    throw WireError("expected 'mrlc-request v1' header line");
  }
  WireRequest request;
  request.variant.clear();
  bool saw_id = false, saw_variant = false, saw_lifetime = false;
  bool saw_budget = false, saw_deadline = false, saw_network = false;
  while (cursor.next_line(line)) {
    std::string key, value;
    split_kv(line, key, value);
    auto once = [&](bool& flag) {
      if (flag) throw WireError("duplicate field '" + key + "'");
      flag = true;
    };
    if (key == "id") {
      once(saw_id);
      require_token(value, "id");
      request.id = value;
    } else if (key == "variant") {
      once(saw_variant);
      require_token(value, "variant");
      request.variant = value;
    } else if (key == "lifetime") {
      once(saw_lifetime);
      request.lifetime = parse_double(value, "lifetime");
    } else if (key == "budget") {
      once(saw_budget);
      request.budget = parse_int(value, "budget");
      if (request.budget < 0) throw WireError("'budget' must be >= 0");
    } else if (key == "deadline-ms") {
      once(saw_deadline);
      request.deadline_ms = parse_int(value, "deadline-ms");
      if (request.deadline_ms < 0) throw WireError("'deadline-ms' must be >= 0");
    } else if (key == "network") {
      once(saw_network);
      const std::int64_t n = parse_int(value, "network");
      if (n < 0) throw WireError("'network' byte count must be >= 0");
      request.network_text =
          cursor.take_bytes(static_cast<std::size_t>(n), "network");
      break;  // the network block is always last
    } else {
      throw WireError("unknown request field '" + key + "'");
    }
  }
  if (!cursor.at_end()) throw WireError("trailing bytes after network block");
  if (!saw_id) throw WireError("missing required field 'id'");
  if (!saw_variant) throw WireError("missing required field 'variant'");
  if (!saw_lifetime) throw WireError("missing required field 'lifetime'");
  if (!saw_network) throw WireError("missing required field 'network'");
  return request;
}

std::string encode_response(const WireResponse& response) {
  require_token(response.id, "id");
  std::ostringstream os;
  os << "mrlc-response v1\n";
  os << "id " << response.id << "\n";
  os << "status " << to_string(response.status) << "\n";
  if (!response.detail.empty()) {
    if (response.detail.find('\n') != std::string::npos) {
      throw WireError("'detail' must be a single line");
    }
    os << "detail " << response.detail << "\n";
  }
  if (response.has_solution) {
    os << "cost " << format_double(response.cost) << "\n";
    os << "reliability " << format_double(response.reliability) << "\n";
    os << "lifetime " << format_double(response.lifetime) << "\n";
    os << "gap " << format_double(response.gap) << "\n";
  }
  os << "budget-used " << response.budget_used << "\n";
  os << "cache " << response.cache << "\n";
  os << "queue-ms " << format_double(response.queue_ms) << "\n";
  os << "solve-ms " << format_double(response.solve_ms) << "\n";
  if (!response.tree_text.empty()) {
    os << "tree " << response.tree_text.size() << "\n";
    os << response.tree_text;
  }
  return os.str();
}

WireResponse decode_response(const std::string& payload) {
  PayloadCursor cursor(payload);
  std::string line;
  if (!cursor.next_line(line) || line != "mrlc-response v1") {
    throw WireError("expected 'mrlc-response v1' header line");
  }
  WireResponse response;
  bool saw_id = false, saw_status = false;
  while (cursor.next_line(line)) {
    std::string key, value;
    split_kv(line, key, value);
    if (key == "id") {
      saw_id = true;
      require_token(value, "id");
      response.id = value;
    } else if (key == "status") {
      saw_status = true;
      response.status = status_from_string(value);
    } else if (key == "detail") {
      response.detail = value;
    } else if (key == "cost") {
      response.cost = parse_double(value, "cost");
      response.has_solution = true;
    } else if (key == "reliability") {
      response.reliability = parse_double(value, "reliability");
    } else if (key == "lifetime") {
      response.lifetime = parse_double(value, "lifetime");
    } else if (key == "gap") {
      response.gap = parse_double(value, "gap");
    } else if (key == "budget-used") {
      response.budget_used = parse_int(value, "budget-used");
    } else if (key == "cache") {
      require_token(value, "cache");
      response.cache = value;
    } else if (key == "queue-ms") {
      response.queue_ms = parse_double(value, "queue-ms");
    } else if (key == "solve-ms") {
      response.solve_ms = parse_double(value, "solve-ms");
    } else if (key == "tree") {
      const std::int64_t n = parse_int(value, "tree");
      if (n < 0) throw WireError("'tree' byte count must be >= 0");
      response.tree_text =
          cursor.take_bytes(static_cast<std::size_t>(n), "tree");
      break;  // the tree block is always last
    } else {
      throw WireError("unknown response field '" + key + "'");
    }
  }
  if (!cursor.at_end()) throw WireError("trailing bytes after tree block");
  if (!saw_id) throw WireError("missing required field 'id'");
  if (!saw_status) throw WireError("missing required field 'status'");
  return response;
}

std::string frame(const std::string& payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw WireError("payload exceeds the frame size cap");
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((n >> shift) & 0xFF));
  }
  out += payload;
  return out;
}

void FrameReader::feed(const char* data, std::size_t n) {
  // Compact lazily: drop consumed prefix once it dominates the buffer so a
  // long-lived connection does not grow without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

bool FrameReader::next(std::string& payload) {
  if (poisoned_) throw WireError("frame stream previously poisoned");
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return false;
  const char* head = buffer_.data() + consumed_;
  if (std::memcmp(head, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    poisoned_ = true;
    throw WireError("bad frame magic (expected MRF1)");
  }
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(static_cast<unsigned char>(head[4 + i]))
         << (8 * i);
  }
  if (n > kMaxPayloadBytes) {
    poisoned_ = true;
    throw WireError("frame length exceeds the payload cap");
  }
  if (avail < kFrameHeaderBytes + n) return false;
  payload.assign(head + kFrameHeaderBytes, n);
  consumed_ += kFrameHeaderBytes + n;
  return true;
}

namespace {

/// Reads exactly `n` bytes from `fd` with an optional poll(2) timeout.
/// \return bytes read before EOF (== n on success).
std::size_t read_exact(int fd, char* out, std::size_t n, int timeout_ms) {
  std::size_t got = 0;
  while (got < n) {
    if (timeout_ms >= 0) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc == 0) throw WireError("timed out waiting for frame bytes");
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw WireError(std::string("poll failed: ") + std::strerror(errno));
      }
    }
    const ssize_t rc = ::read(fd, out + got, n - got);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("read failed: ") + std::strerror(errno));
    }
    if (rc == 0) break;  // EOF
    got += static_cast<std::size_t>(rc);
  }
  return got;
}

}  // namespace

bool read_frame_fd(int fd, std::string& payload, int timeout_ms) {
  char header[kFrameHeaderBytes];
  const std::size_t got = read_exact(fd, header, sizeof(header), timeout_ms);
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof(header)) throw WireError("EOF inside frame header");
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    throw WireError("bad frame magic (expected MRF1)");
  }
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(static_cast<unsigned char>(header[4 + i]))
         << (8 * i);
  }
  if (n > kMaxPayloadBytes) {
    throw WireError("frame length exceeds the payload cap");
  }
  payload.resize(n);
  if (n > 0 && read_exact(fd, payload.data(), n, timeout_ms) < n) {
    throw WireError("EOF inside frame payload");
  }
  return true;
}

void write_frame_fd(int fd, const std::string& payload) {
  const std::string framed = frame(payload);
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t rc = ::write(fd, framed.data() + sent, framed.size() - sent);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("write failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(rc);
  }
}

}  // namespace mrlc::service
