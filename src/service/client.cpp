#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace mrlc::service {

Client Client::connect_unix(const std::string& socket_path,
                            ClientOptions options) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw WireError("socket path too long for sockaddr_un");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw WireError(std::string("socket() failed: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw WireError("connect('" + socket_path +
                    "') failed: " + std::strerror(err));
  }
  return Client(fd, fd, options);
}

Client::Client(int read_fd, int write_fd, ClientOptions options, bool owns_fds)
    : read_fd_(read_fd),
      write_fd_(write_fd),
      owns_fds_(owns_fds),
      options_(options),
      jitter_(options.backoff_seed) {}

Client::~Client() {
  if (!owns_fds_) return;
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
}

Client::Client(Client&& other) noexcept
    : read_fd_(other.read_fd_),
      write_fd_(other.write_fd_),
      owns_fds_(other.owns_fds_),
      options_(other.options_),
      jitter_(other.jitter_),
      retries_used_(other.retries_used_) {
  other.read_fd_ = -1;
  other.write_fd_ = -1;
}

WireResponse Client::call(const WireRequest& request) {
  const std::string payload = encode_request(request);
  for (int attempt = 0;; ++attempt) {
    write_frame_fd(write_fd_, payload);
    std::string reply_payload;
    if (!read_frame_fd(read_fd_, reply_payload, options_.timeout_ms)) {
      throw WireError("daemon closed the connection before replying");
    }
    WireResponse reply = decode_response(reply_payload);
    if (reply.status != ResponseStatus::kRejectedOverload ||
        attempt >= options_.max_retries) {
      return reply;
    }
    ++retries_used_;
    // Jittered exponential backoff: base * 2^attempt, scaled by a uniform
    // factor in [0.5, 1.5) so a burst of shed clients desynchronizes
    // instead of re-stampeding the queue in lockstep.
    const double factor = 0.5 + jitter_.uniform();
    const double sleep_ms =
        static_cast<double>(options_.backoff_base_ms) *
        static_cast<double>(1LL << std::min(attempt, 20)) * factor;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
}

}  // namespace mrlc::service
