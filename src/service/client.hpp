#pragma once

/// \file client.hpp
/// \brief Blocking client for the MRLC solver service.
///
/// Wraps one connection to a running `mrlc_serve` daemon (Unix-domain
/// socket, or an arbitrary fd pair for tests/pipes) and provides a
/// call-style API with the two behaviours a well-mannered service client
/// needs:
///
/// * **Timeouts.**  Every call is bounded by `timeout_ms`, enforced with
///   poll(2) across partial reads — a wedged daemon surfaces as a typed
///   `WireError`, never a hang.
/// * **Backoff on shed.**  `rejected_overload` replies are retried up to
///   `max_retries` times with jittered exponential backoff (deterministic
///   given `backoff_seed`, so tests can pin the schedule).  All other
///   statuses — including `rejected_draining`, which this instance will
///   never stop returning — are handed straight back to the caller.

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "service/wire.hpp"

namespace mrlc::service {

struct ClientOptions {
  int timeout_ms = 30000;     ///< per-attempt reply timeout (< 0 = forever)
  int max_retries = 4;        ///< extra attempts after an overload shed
  int backoff_base_ms = 25;   ///< first retry sleeps ~ this, doubling after
  std::uint64_t backoff_seed = 0x5EEDBACC0FFULL;  ///< jitter stream seed
};

class Client {
 public:
  /// \brief Connects to a daemon's Unix-domain socket.
  /// \throws WireError when the socket cannot be reached.
  static Client connect_unix(const std::string& socket_path,
                             ClientOptions options = {});

  /// Adopts an already-connected fd pair (e.g. pipes to a `--stdio`
  /// daemon).  `read_fd`/`write_fd` may be equal (sockets).
  Client(int read_fd, int write_fd, ClientOptions options = {},
         bool owns_fds = true);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// \brief Sends one request and waits for its reply, retrying overload
  /// sheds with jittered exponential backoff.
  /// \return the final reply (any status except a retried-away overload).
  /// \throws WireError on transport failure, malformed replies, timeout,
  ///         or when retries are exhausted while still shedding (the
  ///         overload reply is returned, not thrown — callers decide).
  WireResponse call(const WireRequest& request);

  /// Overload sheds absorbed by retries so far (diagnostics).
  long long retries_used() const noexcept { return retries_used_; }

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
  bool owns_fds_ = true;
  ClientOptions options_;
  Rng jitter_;
  long long retries_used_ = 0;
};

}  // namespace mrlc::service
